package eflora_test

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
)

// benchRecording mirrors the cmd/eflora-bench Recording schema (that
// package is a main and cannot be imported).
type benchRecording struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// TestHierarchicalScaleRecording pins the headline scaling claim against
// the recorded BENCH_alloc.json: the hierarchical allocator handles 100k
// devices in less wall clock than the exact greedy needs for 10k. The
// recording is regenerated with
//
//	EFLORA_HEAVY_BENCH=1 go run ./cmd/eflora-bench \
//	    -bench 'HierarchicalAllocate|ExactGreedyAllocate' \
//	    -benchtime 1x -o BENCH_alloc.json
//
// so the test stays cheap (a JSON read) while the claim itself is
// re-verifiable on demand.
func TestHierarchicalScaleRecording(t *testing.T) {
	data, err := os.ReadFile("BENCH_alloc.json")
	if err != nil {
		t.Fatalf("missing scale recording: %v", err)
	}
	var rec benchRecording
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("BENCH_alloc.json: %v", err)
	}
	ns := map[string]float64{}
	for _, b := range rec.Benchmarks {
		// Names carry a -N GOMAXPROCS suffix on multi-proc recording hosts.
		name := b.Name
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns[name] = b.NsPerOp
	}
	hier100k, ok := ns["BenchmarkHierarchicalAllocate100k"]
	if !ok {
		t.Fatal("recording lacks BenchmarkHierarchicalAllocate100k")
	}
	exact10k, ok := ns["BenchmarkExactGreedyAllocate10k"]
	if !ok {
		t.Fatal("recording lacks BenchmarkExactGreedyAllocate10k")
	}
	if hier100k <= 0 || exact10k <= 0 {
		t.Fatalf("degenerate recording: hier100k=%v exact10k=%v", hier100k, exact10k)
	}
	if hier100k >= exact10k {
		t.Errorf("hierarchical@100k (%.3gs) not faster than exact greedy@10k (%.3gs); "+
			"re-record BENCH_alloc.json if the host changed", hier100k/1e9, exact10k/1e9)
	}
	for _, name := range []string{"BenchmarkHierarchicalAllocate1k", "BenchmarkHierarchicalAllocate10k"} {
		if ns[name] <= 0 {
			t.Errorf("recording lacks %s", name)
		}
	}
}
