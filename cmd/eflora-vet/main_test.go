package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONSmoke runs the multichecker with -json over a determinism-
// critical package of the real tree and checks the document parses and is
// clean — the same invariant the CI lint gate enforces repo-wide.
func TestJSONSmoke(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-json", "../../internal/sim"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errBuf.String(), out.String())
	}
	var rep struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("parse -json output: %v\n%s", err, out.String())
	}
	if rep.Count != len(rep.Findings) {
		t.Errorf("count %d != len(findings) %d", rep.Count, len(rep.Findings))
	}
	if rep.Count != 0 {
		t.Errorf("internal/sim has %d unannotated findings, want 0:\n%s", rep.Count, out.String())
	}
}

func TestListSmoke(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	for _, name := range []string{"detrand", "hotalloc", "units", "boundedsend"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown analyzer, want 2", code)
	}
}

// TestAnalyzerSubset runs a single analyzer over a package outside its
// scope and expects a clean exit.
func TestAnalyzerSubset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-analyzers", "boundedsend", "../../internal/model"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errBuf.String(), out.String())
	}
}
