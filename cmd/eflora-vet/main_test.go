package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONSmoke runs the multichecker with -json over a determinism-
// critical package of the real tree and checks the document parses and is
// clean — the same invariant the CI lint gate enforces repo-wide.
func TestJSONSmoke(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-json", "../../internal/sim"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errBuf.String(), out.String())
	}
	var rep struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("parse -json output: %v\n%s", err, out.String())
	}
	if rep.Count != len(rep.Findings) {
		t.Errorf("count %d != len(findings) %d", rep.Count, len(rep.Findings))
	}
	if rep.Count != 0 {
		t.Errorf("internal/sim has %d unannotated findings, want 0:\n%s", rep.Count, out.String())
	}
}

func TestListSmoke(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	for _, name := range []string{"detrand", "hotalloc", "units", "boundedsend", "walorder", "locksafe"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown analyzer, want 2", code)
	}
}

// TestAnalyzerSubset runs a single analyzer over a package outside its
// scope and expects a clean exit.
func TestAnalyzerSubset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-analyzers", "boundedsend", "../../internal/model"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errBuf.String(), out.String())
	}
}

// TestSARIFSmoke checks the -sarif document shape on a clean package.
func TestSARIFSmoke(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-sarif", "../../internal/lora"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errBuf.String(), out.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("parse -sarif output: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "eflora-vet" {
		t.Errorf("sarif runs/driver malformed:\n%s", out.String())
	}
	if n := len(log.Runs[0].Results); n != 0 {
		t.Errorf("internal/lora has %d findings, want 0", n)
	}
}

// TestSARIFAndJSONExclusive rejects combining the two output modes.
func TestSARIFAndJSONExclusive(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-json", "-sarif", "../../internal/lora"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for -json -sarif, want 2", code)
	}
}

// TestBaselineRatchet exercises the write/apply cycle: a tree with
// findings is dirty bare, clean against its own baseline, and dirty
// again when the baseline is emptied.
func TestBaselineRatchet(t *testing.T) {
	fixture := "../../internal/analysis/walorder/testdata/prog/walfirst"
	pattern := fixture + "/..."

	var out, errBuf bytes.Buffer
	if code := run([]string{pattern}, &out, &errBuf); code != 1 {
		t.Fatalf("fixture tree exit %d, want 1 (findings expected)\nstderr: %s", code, errBuf.String())
	}

	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-write-baseline", basePath, pattern}, &out, &errBuf); code != 0 {
		t.Fatalf("-write-baseline exit %d, stderr: %s", code, errBuf.String())
	}

	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-baseline", basePath, pattern}, &out, &errBuf); code != 0 {
		t.Fatalf("baselined run exit %d, want 0\nstdout: %s\nstderr: %s",
			code, out.String(), errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "covered by baseline") {
		t.Errorf("baselined run did not report coverage:\n%s", errBuf.String())
	}

	// An empty baseline must surface every finding again.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-baseline", empty, pattern}, &out, &errBuf); code != 1 {
		t.Errorf("empty-baseline run exit %d, want 1", code)
	}
}
