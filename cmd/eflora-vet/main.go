// Command eflora-vet runs the repository's first-party analyzer suite —
// detrand (determinism), hotalloc (zero-alloc hot paths), units
// (dB/dBm/mW safety), boundedsend (non-blocking ingest), walorder
// (WAL-first durability ordering) and locksafe (no blocking calls under
// a mutex) — over the given packages, in the style of a go/analysis
// multichecker, with whole-program call-graph and effect-summary context
// so taint is tracked across package boundaries. It is the CI lint
// gate: the tree must produce zero findings beyond the checked-in
// ratchet baseline.
//
// Usage:
//
//	eflora-vet [flags] [packages]
//
//	-json            emit findings as a JSON document instead of text
//	-sarif           emit findings as a SARIF 2.1.0 document
//	-fix             apply suggested fixes to the source files, then re-report
//	-list            list the analyzers and exit
//	-analyzers       comma-separated subset to run (default: all)
//	-baseline FILE   suppress findings recorded in FILE; fail only on NEW
//	                 findings (and report stale entries to ratchet out)
//	-write-baseline FILE
//	                 write the current findings to FILE as the new baseline
//	-no-program      per-package analysis only (skip call graph + summaries)
//
// Packages are directories or recursive patterns ("./...",
// "./internal/sim"); the default is "./...". Standard toolchain checks
// (go vet's own passes) are not duplicated here — CI runs `go vet ./...`
// alongside. Exit status: 0 clean (or all findings baselined), 1 new
// findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"eflora/internal/analysis"
	"eflora/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eflora-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	fix := fs.Bool("fix", false, "apply suggested fixes to source files")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	baselinePath := fs.String("baseline", "", "ratchet baseline file; fail only on findings not recorded there")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this file as the new baseline")
	noProgram := fs.Bool("no-program", false, "per-package analysis only, without whole-program summaries")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "eflora-vet: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*framework.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "eflora-vet: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, fset, err := analyze(patterns, analyzers, *noProgram)
	if err != nil {
		fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
		return 2
	}

	if *fix {
		applied, err := framework.ApplyFixes(fset, diags)
		if err != nil {
			fmt.Fprintf(stderr, "eflora-vet: applying fixes: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "eflora-vet: applied %d suggested fix(es)\n", applied)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
			return 2
		}
		werr := framework.WriteBaseline(f, framework.NewBaseline(diags))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "eflora-vet: writing baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "eflora-vet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	report := diags
	if *baselinePath != "" {
		base, err := framework.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
			return 2
		}
		covered, fresh := base.Diff(diags)
		for _, k := range base.Stale(diags) {
			fmt.Fprintf(stderr, "eflora-vet: stale baseline entry (fixed — ratchet it out): %s\n",
				framework.DescribeKey(k))
		}
		if len(covered) > 0 {
			fmt.Fprintf(stderr, "eflora-vet: %d finding(s) covered by baseline %s\n",
				len(covered), *baselinePath)
		}
		report = fresh
	}

	switch {
	case *jsonOut:
		if err := framework.WriteJSON(stdout, report); err != nil {
			fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := framework.WriteSARIF(stdout, report, analyzers); err != nil {
			fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
			return 2
		}
	default:
		framework.WriteText(stdout, report)
	}
	if len(report) > 0 {
		return 1
	}
	return 0
}

// analyze runs the suite in whole-program mode (default) or per-package
// mode, returning the findings and the FileSet for -fix.
func analyze(patterns []string, analyzers []*framework.Analyzer, noProgram bool) ([]framework.Diagnostic, *token.FileSet, error) {
	if noProgram {
		loader := framework.NewLoader()
		dirs, err := framework.Expand(patterns)
		if err != nil {
			return nil, nil, err
		}
		var diags []framework.Diagnostic
		for _, dir := range dirs {
			pkg, err := loader.Load(dir)
			if err != nil {
				return nil, nil, err
			}
			pkgDiags, err := framework.RunPackage(pkg, analyzers)
			if err != nil {
				return nil, nil, err
			}
			diags = append(diags, pkgDiags...)
		}
		return diags, loader.Fset, nil
	}
	prog, err := framework.LoadProgram(patterns)
	if err != nil {
		return nil, nil, err
	}
	diags, err := framework.RunProgram(prog, analyzers)
	if err != nil {
		return nil, nil, err
	}
	return diags, prog.Fset, nil
}
