// Command eflora-vet runs the repository's first-party analyzer suite —
// detrand (determinism), hotalloc (zero-alloc hot paths), units
// (dB/dBm/mW safety) and boundedsend (non-blocking ingest) — over the
// given packages, in the style of a go/analysis multichecker. It is the
// CI lint gate: the tree must produce zero unannotated findings.
//
// Usage:
//
//	eflora-vet [flags] [packages]
//
//	-json       emit findings as a JSON document instead of text
//	-fix        apply suggested fixes to the source files, then re-report
//	-list       list the analyzers and exit
//	-analyzers  comma-separated subset to run (default: all)
//
// Packages are directories or recursive patterns ("./...",
// "./internal/sim"); the default is "./...". Standard toolchain checks
// (go vet's own passes) are not duplicated here — CI runs `go vet ./...`
// alongside. Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"eflora/internal/analysis"
	"eflora/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eflora-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	fix := fs.Bool("fix", false, "apply suggested fixes to source files")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*framework.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "eflora-vet: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs, err := framework.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
		return 2
	}
	loader := framework.NewLoader()
	var diags []framework.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
			return 2
		}
		pkgDiags, err := framework.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
			return 2
		}
		diags = append(diags, pkgDiags...)
	}

	if *fix {
		applied, err := framework.ApplyFixes(loader.Fset, diags)
		if err != nil {
			fmt.Fprintf(stderr, "eflora-vet: applying fixes: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "eflora-vet: applied %d suggested fix(es)\n", applied)
	}

	if *jsonOut {
		if err := framework.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "eflora-vet: %v\n", err)
			return 2
		}
	} else {
		framework.WriteText(stdout, diags)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
