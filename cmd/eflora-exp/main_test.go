package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestExpList(t *testing.T) {
	out := capture(t, []string{"-list"})
	for _, want := range []string{"table1", "fig4", "fig10", "ablation-order"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestExpSingleExperiment(t *testing.T) {
	out := capture(t, []string{"-exp", "table1"})
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "39") {
		t.Errorf("table1 output malformed:\n%s", out)
	}
}

func TestExpUnknownID(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run([]string{"-exp", "fig99"}, f); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExpTinyFigure(t *testing.T) {
	out := capture(t, []string{"-exp", "fig10", "-scale", "0.02", "-trials", "1", "-packets", "10"})
	if !strings.Contains(out, "Convergence time") {
		t.Errorf("fig10 output malformed:\n%s", out)
	}
}

func TestExpJSONOutput(t *testing.T) {
	out := capture(t, []string{"-exp", "table4", "-json"})
	var parsed map[string]map[string]float64
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if parsed["table4"]["snr_sf12"] != -20 {
		t.Errorf("JSON values wrong: %v", parsed)
	}
}
