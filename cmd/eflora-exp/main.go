// Command eflora-exp regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for the recorded results).
//
// Usage:
//
//	eflora-exp -exp table1          # one experiment
//	eflora-exp -exp all -scale 0.2  # everything at 20% of paper scale
//	eflora-exp -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"eflora/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eflora-exp:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("eflora-exp", flag.ContinueOnError)
	var (
		id       = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		scale    = fs.Float64("scale", 0.1, "device-count scale relative to the paper (1.0 = full)")
		trials   = fs.Int("trials", 3, "independent repetitions per data point (paper: 100)")
		packets  = fs.Int("packets", 40, "packets per device per simulation")
		seed     = fs.Uint64("seed", 1, "random seed")
		asJSON   = fs.Bool("json", false, "emit each experiment's headline values as JSON instead of text")
		parallel = fs.Int("parallel", 0, "worker goroutines per fan-out level (0 = all CPUs); results are identical at any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, eid := range exp.IDs() {
			title, _ := exp.Title(eid)
			fmt.Fprintf(out, "%-8s %s\n", eid, title)
		}
		return nil
	}
	cfg := exp.Config{
		Scale:            *scale,
		Trials:           *trials,
		PacketsPerDevice: *packets,
		Seed:             *seed,
		Parallelism:      *parallel,
	}
	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	if *asJSON {
		all := make(map[string]map[string]float64, len(ids))
		for _, eid := range ids {
			res, err := exp.Run(eid, cfg)
			if err != nil {
				return err
			}
			all[res.ID] = res.Values
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(all)
	}
	for _, eid := range ids {
		res, err := exp.Run(eid, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "=== %s: %s ===\n\n%s\n", res.ID, res.Title, res.Text)
	}
	return nil
}
