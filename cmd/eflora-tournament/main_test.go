package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eflora/internal/exp"
)

func capture(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestTournamentText(t *testing.T) {
	out := capture(t, []string{"-sizes", "20", "-gateways", "2", "-trials", "1",
		"-strategies", "legacy,eflora", "-parallel", "1"})
	for _, want := range []string{"n=20 devices", "legacy", "eflora", "wall-clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTournamentJSON(t *testing.T) {
	out := capture(t, []string{"-sizes", "20", "-gateways", "2", "-trials", "1",
		"-strategies", "legacy,eflora", "-parallel", "1", "-json"})
	var tour exp.Tournament
	if err := json.Unmarshal([]byte(out), &tour); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(tour.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(tour.Cells))
	}
}

func TestTournamentBenchOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_tournament.json")
	capture(t, []string{"-sizes", "20", "-gateways", "2", "-trials", "1",
		"-strategies", "legacy,eflora", "-parallel", "1", "-bench-out", path})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec recording
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid recording JSON: %v\n%s", err, data)
	}
	names := map[string]bool{}
	for _, b := range rec.Benchmarks {
		names[b.Name] = true
		if b.NsPerOp <= 0 || b.Iterations != 1 {
			t.Errorf("benchmark %s: ns/op=%v iterations=%d", b.Name, b.NsPerOp, b.Iterations)
		}
	}
	for _, want := range []string{"TournamentAllocate/legacy/n=20", "TournamentAllocate/eflora/n=20"} {
		if !names[want] {
			t.Errorf("recording missing %s (have %v)", want, names)
		}
	}
}

func TestTournamentBadFlags(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run([]string{"-sizes", "abc"}, f); err == nil {
		t.Error("bad -sizes accepted")
	}
	if err := run([]string{"-sizes", "10", "-strategies", "nope"}, f); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestBenchRecordingSkipsSkipped(t *testing.T) {
	tour := &exp.Tournament{Gateways: 2, Trials: 1, Cells: []exp.TournamentCell{
		{Strategy: "legacy", Devices: 10, Trials: 1, WallClock: time.Millisecond},
		{Strategy: "exhaustive", Devices: 10, Skipped: true, SkipReason: "ceiling"},
	}}
	rec := benchRecording(tour, time.Unix(0, 0))
	if len(rec.Benchmarks) != 1 || rec.Benchmarks[0].Name != "TournamentAllocate/legacy/n=10" {
		t.Errorf("unexpected benchmarks: %+v", rec.Benchmarks)
	}
	if rec.Date != "1970-01-01" {
		t.Errorf("date = %q", rec.Date)
	}
}
