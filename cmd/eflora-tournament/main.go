// Command eflora-tournament runs every registered allocator strategy over
// a scenario grid and reports fairness versus wall clock. Quality metrics
// come from the analytical model, are averaged over trials, and are
// bit-identical for a given seed at any -parallel value; wall clocks are
// diagnostic.
//
// Usage:
//
//	eflora-tournament -sizes 200,500,1000 -trials 3 -seed 1
//	eflora-tournament -strategies eflora,hier -sizes 2000 -json
//	eflora-tournament -sizes 500 -bench-out BENCH_tournament.json
//
// -bench-out writes the grid in the benchmark-recording JSON schema that
// `eflora-bench -diff` consumes, one entry per cell named
// TournamentAllocate/<strategy>/n=<devices>, so tournament wall clocks can
// be tracked against a baseline recording like any benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"eflora/internal/exp"
)

// recording mirrors the eflora-bench / BENCH_parallel.json schema.
type recording struct {
	Description string      `json:"description"`
	Date        string      `json:"date"`
	Host        host        `json:"host"`
	Benchmarks  []benchmark `json:"benchmarks"`
}

type host struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu"`
	CPUs   int    `json:"cpus"`
}

type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchRecording converts the tournament grid into the recording schema:
// each non-skipped cell becomes one benchmark whose ns/op is the mean
// allocation wall clock.
func benchRecording(t *exp.Tournament, now time.Time) recording {
	rec := recording{
		Description: fmt.Sprintf("eflora-tournament allocator grid (%d gateways, %d trials)", t.Gateways, t.Trials),
		Date:        now.UTC().Format("2006-01-02"),
		Host:        host{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()},
	}
	for _, c := range t.Cells {
		if c.Skipped {
			continue
		}
		rec.Benchmarks = append(rec.Benchmarks, benchmark{
			Name:       fmt.Sprintf("TournamentAllocate/%s/n=%d", c.Strategy, c.Devices),
			Iterations: c.Trials,
			NsPerOp:    float64(c.WallClock.Nanoseconds()),
		})
	}
	return rec
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sizes entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseStrategies(s string) []string {
	if s == "" || s == "all" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("eflora-tournament", flag.ContinueOnError)
	var (
		sizes      = fs.String("sizes", "200,500,1000", "comma-separated device counts")
		gateways   = fs.Int("gateways", 3, "gateways per scenario")
		radius     = fs.Float64("radius", 5000, "deployment disc radius in meters")
		trials     = fs.Int("trials", 3, "independent topologies averaged per cell")
		seed       = fs.Uint64("seed", 1, "random seed")
		parallel   = fs.Int("parallel", 0, "allocator worker goroutines (0 = all CPUs); metrics identical at any value")
		strategies = fs.String("strategies", "all", "comma-separated registry keys, or 'all'")
		asJSON     = fs.Bool("json", false, "emit the full grid as JSON instead of text")
		benchOut   = fs.String("bench-out", "", "also write wall clocks as an eflora-bench recording to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sz, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	t, err := exp.RunTournament(exp.TournamentConfig{
		Sizes:       sz,
		Gateways:    *gateways,
		RadiusM:     *radius,
		Trials:      *trials,
		Seed:        *seed,
		Parallelism: *parallel,
		Strategies:  parseStrategies(*strategies),
	})
	if err != nil {
		return err
	}
	if *benchOut != "" {
		f, err := os.Create(*benchOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(benchRecording(t, time.Now())); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote bench recording to %s\n", *benchOut)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(t)
	}
	_, err = fmt.Fprint(out, t.Render())
	return err
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eflora-tournament:", err)
		os.Exit(1)
	}
}
