// Command eflora-explain loads a scenario file (from eflora -out) and
// prints the analytical model's per-device breakdown — fade margins,
// gateway-capacity factors and collision exposure — for the requested
// devices, or for the network's bottleneck when none are given.
//
// Usage:
//
//	eflora -devices 500 -gateways 3 -out net.json
//	eflora-explain -in net.json            # explain the bottleneck device
//	eflora-explain -in net.json -device 17 -device 42
package main

import (
	"flag"
	"fmt"
	"os"

	"eflora/internal/core"
	"eflora/internal/model"
	"eflora/internal/scenario"
)

// intList collects repeated -device flags.
type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eflora-explain:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("eflora-explain", flag.ContinueOnError)
	var devices intList
	inFile := fs.String("in", "", "scenario file with an allocation (required)")
	fs.Var(&devices, "device", "device index to explain (repeatable; default: the bottleneck)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inFile == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*inFile)
	if err != nil {
		return err
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	a, ok := sc.AllocationOf()
	if !ok {
		return fmt.Errorf("scenario %s has no allocation; run eflora -out first", *inFile)
	}
	net := sc.Network()
	p := model.DefaultParams()
	ev, err := model.NewEvaluator(net, p, a, model.ModeExact)
	if err != nil {
		return err
	}
	min, bottleneck := ev.MinEE()
	fmt.Fprintf(out, "%d devices, %d gateways; network min EE %.3f bits/mJ at device %d\n\n",
		net.N(), net.G(), core.BitsPerMilliJoule(min), bottleneck)
	if len(devices) == 0 {
		devices = intList{bottleneck}
	}
	for _, d := range devices {
		if d < 0 || d >= net.N() {
			return fmt.Errorf("device %d out of range [0, %d)", d, net.N())
		}
		fmt.Fprintln(out, ev.Explain(d).String())
	}
	return nil
}
