package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/scenario"
)

// writeScenario builds a small allocated scenario on disk.
func writeScenario(t *testing.T) string {
	t.Helper()
	netw, err := core.Build(core.Scenario{Devices: 30, Gateways: 2, RadiusM: 2500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := netw.Allocate("legacy", alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := scenario.FromNetwork(netw.Net, &a, "test").Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestExplainBottleneckByDefault(t *testing.T) {
	path := writeScenario(t)
	out := capture(t, []string{"-in", path})
	for _, want := range []string{"network min EE", "PRR", "gw 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainSpecificDevices(t *testing.T) {
	path := writeScenario(t)
	out := capture(t, []string{"-in", path, "-device", "0", "-device", "5"})
	if !strings.Contains(out, "device 0") || !strings.Contains(out, "device 5") {
		t.Errorf("requested devices missing:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run(nil, f); err == nil {
		t.Error("missing -in accepted")
	}
	path := writeScenario(t)
	if err := run([]string{"-in", path, "-device", "999"}, f); err == nil {
		t.Error("out-of-range device accepted")
	}
}
