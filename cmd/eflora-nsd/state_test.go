package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/scenario"
	"eflora/internal/statestore"
)

// TestMain doubles as the daemon-under-test entry point: when the helper
// env var is set, the test binary IS eflora-nsd, so the kill-and-recover
// test can run a real daemon process it is allowed to SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("EFLORA_NSD_HELPER") == "1" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "eflora-nsd helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestParseArgsSnapshotIntervalPointerZero pins the flag side of the
// pointer-zero convention: an absent -snapshot-interval means the default
// cadence, an EXPLICIT zero means disabled — two states a plain duration
// value cannot distinguish.
func TestParseArgsSnapshotIntervalPointerZero(t *testing.T) {
	cfg, err := parseArgs([]string{"-scenario", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.snapshotInterval != nil {
		t.Fatalf("unset flag produced pointer %v", *cfg.snapshotInterval)
	}
	if every, enabled := storeOptions(cfg).SnapshotCadence(); !enabled || every != statestore.DefaultSnapshotInterval {
		t.Fatalf("unset flag cadence = %v, %v; want default, enabled", every, enabled)
	}

	cfg, err = parseArgs([]string{"-scenario", "x", "-snapshot-interval", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.snapshotInterval == nil || *cfg.snapshotInterval != 0 {
		t.Fatalf("explicit zero not captured: %v", cfg.snapshotInterval)
	}
	if _, enabled := storeOptions(cfg).SnapshotCadence(); enabled {
		t.Fatal("explicit -snapshot-interval 0 did not disable periodic snapshots")
	}

	cfg, err = parseArgs([]string{"-scenario", "x", "-snapshot-interval", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if every, enabled := storeOptions(cfg).SnapshotCadence(); !enabled || every != 5*time.Second {
		t.Fatalf("cadence = %v, %v; want 5s, enabled", every, enabled)
	}
}

func TestParseArgsCrashAtValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "x", "-crash-at", "0.5"},                                // no -replay
		{"-scenario", "x", "-replay", "-crash-at", "0.5"},                     // no -state-dir
		{"-scenario", "x", "-replay", "-state-dir", "d", "-crash-at", "1.5"},  // out of range
		{"-scenario", "x", "-replay", "-state-dir", "d", "-crash-at", "-0.5"}, // out of range
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) accepted", args)
		}
	}
	if _, err := parseArgs([]string{"-scenario", "x", "-replay", "-state-dir", "d", "-crash-at", "0.5"}); err != nil {
		t.Errorf("valid crash-drill flags rejected: %v", err)
	}
}

// TestRunReplayCrashDrill runs the crash/restart drill through run():
// snapshot + WAL at the cut, abandon, recover, finish — and the final
// state must be bit-exact against the uninterrupted oracle.
func TestRunReplayCrashDrill(t *testing.T) {
	// Sabotage one device's SF and drift its SNR so the mid-trace control
	// step produces a real reassignment — a WAL record recovery must
	// replay, not just a snapshot to reload.
	src := writeTestScenario(t, 24)
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sc.Allocation.SF[0] = int(lora.SF12)
	path := filepath.Join(t.TempDir(), "drifting.json")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(w); err != nil {
		t.Fatal(err)
	}
	w.Close()

	stateDir := filepath.Join(t.TempDir(), "state")
	args := []string{
		"-replay", "-scenario", path,
		"-packets", "20", "-seed", "7", "-shards", "4", "-http", "",
		"-drift-devices", "1", "-drift-snr", "50",
		"-state-dir", stateDir, "-crash-at", "0.5",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "RECOVERY OK") {
		t.Fatalf("drill did not verify:\n%s", s)
	}
	if !strings.Contains(s, "snapshot + 1 WAL record(s) on disk") {
		t.Errorf("drill produced no WAL tail to replay:\n%s", s)
	}
	if !strings.Contains(s, "replayed 1 WAL record(s)") {
		t.Errorf("recovery did not replay the WAL tail:\n%s", s)
	}
	entries, err := os.ReadDir(stateDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("state dir empty after drill: %v", err)
	}

	// A reused (non-empty) state directory must be refused, not silently
	// recovered into a different scenario run.
	out.Reset()
	if err := run(args, &out); err == nil || !strings.Contains(err.Error(), "already holds state") {
		t.Fatalf("reused state dir accepted: %v", err)
	}
}

// helperDaemon starts this test binary as a real eflora-nsd process and
// parses the bound addresses off its banner line.
func helperDaemon(t *testing.T, args ...string) (cmd *exec.Cmd, udpAddr, httpAddr string) {
	t.Helper()
	cmd = exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EFLORA_NSD_HELPER=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("daemon banner: %v (got %q)", err, line)
	}
	// "eflora-nsd: N devices, S shards, udp HOST:PORT, http HOST:PORT"
	if i := strings.Index(line, "udp "); i >= 0 {
		udpAddr = strings.TrimSpace(strings.SplitN(line[i+4:], ",", 2)[0])
	}
	if i := strings.Index(line, "http "); i >= 0 {
		httpAddr = strings.TrimSpace(strings.TrimSuffix(line[i+5:], "\n"))
	}
	if udpAddr == "" || httpAddr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("could not parse addresses from banner %q", line)
	}
	go func() { _, _ = bufio.NewReader(stdout).WriteTo(os.Stderr) }() // drain
	return cmd, udpAddr, httpAddr
}

// pollMetrics fetches /metrics until pred is satisfied or the deadline
// passes, returning the last body either way.
func pollMetrics(t *testing.T, httpAddr string, pred func(body string) bool) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var body string
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + httpAddr + "/metrics")
		if err == nil {
			b := new(strings.Builder)
			_, _ = bufio.NewReader(resp.Body).WriteTo(b)
			resp.Body.Close()
			body = b.String()
			if pred(body) {
				return body
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("metrics never satisfied predicate; last body:\n%s", body)
	return ""
}

// TestDaemonKillRecover is the kill -9 end-to-end: a real daemon process
// ingests uplinks over real sockets, snapshots them, dies by SIGKILL,
// and a second process on the same state directory must resume with the
// pre-kill counters — then also account an unsolicited LinkADRAns and
// shut down gracefully with a final snapshot.
func TestDaemonKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	scn := writeTestScenario(t, 8)
	stateDir := filepath.Join(t.TempDir(), "state")
	daemonArgs := []string{
		"-scenario", scn, "-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-shards", "2", "-state-dir", stateDir,
		"-snapshot-interval", "50ms", "-flush-every", "10ms",
		"-dedup-window", "0.02", "-realloc-every", "1h",
	}
	cmd, udpAddr, httpAddr := helperDaemon(t, daemonArgs...)
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	conn, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	eui1 := [8]byte{0xAA, 1, 2, 3, 4, 5, 6, 7}
	eui2 := [8]byte{0xBB, 1, 2, 3, 4, 5, 6, 7}
	dev := ingest.DeviceForAddr(ingest.AddrForIndex(0))
	// FCnt 1 seen by two gateways (one duplicate) plus FCnt 2: the same
	// 3/2/1 uplink/delivery/duplicate shape TestDaemonUDPIngest pins.
	phy1, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: 1, FPort: 1, Payload: []byte{1},
	}, dev.Keys)
	if err != nil {
		t.Fatal(err)
	}
	phy2, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: 2, FPort: 1, Payload: []byte{2},
	}, dev.Keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, send := range []struct {
		eui [8]byte
		phy []byte
	}{{eui1, phy1}, {eui2, phy1}, {eui1, phy2}} {
		pkt, err := ingest.EncodePushData(uint16(i+1), send.eui, []ingest.RXPK{rxpkFor(send.phy)})
		if err != nil {
			t.Fatal(err)
		}
		udpExchange(t, conn, pkt, true)
	}

	// Wait until the deliveries landed, then until a snapshot taken AFTER
	// that moment exists — that snapshot provably covers them.
	body := pollMetrics(t, httpAddr, func(b string) bool {
		d, _ := metricValue(b, "eflora_nsd_deliveries_total")
		return d >= 2
	})
	snaps0, _ := metricValue(body, "eflora_nsd_state_snapshots_total")
	pollMetrics(t, httpAddr, func(b string) bool {
		s, _ := metricValue(b, "eflora_nsd_state_snapshots_total")
		return s > snaps0
	})

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no final snapshot
		t.Fatal(err)
	}
	_ = cmd.Wait()
	killed = true

	// Restart on the same state directory: the pre-kill accounting must be
	// back, bit-exact, from disk alone.
	cmd2, udpAddr2, httpAddr2 := helperDaemon(t, daemonArgs...)
	terminated := false
	defer func() {
		if !terminated {
			_ = cmd2.Process.Kill()
			_ = cmd2.Wait()
		}
	}()
	body = pollMetrics(t, httpAddr2, func(b string) bool {
		u, ok := metricValue(b, "eflora_nsd_uplinks_total")
		return ok && u == 3
	})
	for name, want := range map[string]float64{
		"eflora_nsd_uplinks_total":           3,
		"eflora_nsd_deliveries_total":        2,
		"eflora_nsd_duplicates_total":        1,
		"eflora_nsd_tracked_devices":         1,
		"eflora_nsd_state_wal_appends_total": 0,
	} {
		if got, ok := metricValue(body, name); !ok || got != want {
			t.Errorf("after recovery %s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	for _, name := range []string{
		"eflora_nsd_state_wal_seq",
		"eflora_nsd_state_recovery_replayed_total",
		"eflora_nsd_state_recovery_snapshots_skipped_total",
		"eflora_nsd_state_recovery_discarded_bytes_total",
		"eflora_nsd_state_snapshot_bytes",
	} {
		if _, ok := metricValue(body, name); !ok {
			t.Errorf("recovered daemon metrics missing %s", name)
		}
	}

	// An unsolicited LinkADRAns on FPort 0 (no LinkADRReq is pending) must
	// be parsed, attributed, and counted — the MAC uplink path survives
	// recovery too.
	conn2, err := net.Dial("udp", udpAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	ansPhy, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: 10, FPort: 0,
		Payload: lorawan.LinkADRAns{ChannelACK: true, DataRateACK: true, PowerACK: true}.Encode(),
	}, dev.Keys)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := ingest.EncodePushData(42, eui1, []ingest.RXPK{rxpkFor(ansPhy)})
	if err != nil {
		t.Fatal(err)
	}
	udpExchange(t, conn2, pkt, true)
	pollMetrics(t, httpAddr2, func(b string) bool {
		v, _ := metricValue(b, "eflora_nsd_linkadr_unsolicited_total")
		return v >= 1
	})

	// Graceful SIGTERM: the daemon writes a final snapshot and exits 0.
	entriesBefore := countSnapshots(t, stateDir)
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	terminated = true
	if after := countSnapshots(t, stateDir); after < 1 || after < entriesBefore {
		t.Errorf("snapshots after graceful shutdown = %d (was %d)", after, entriesBefore)
	}
}

func countSnapshots(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".efss") {
			n++
		}
	}
	return n
}
