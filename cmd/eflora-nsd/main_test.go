package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"eflora/internal/geo"
	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/model"
	"eflora/internal/scenario"
)

// writeTestScenario creates a small deployment with a feasible allocation
// and returns the file path.
func writeTestScenario(t *testing.T, n int) string {
	t.Helper()
	p := model.DefaultParams()
	net := &model.Network{
		Gateways: []geo.Point{{X: 0, Y: 0}, {X: 1800, Y: 0}, {X: 0, Y: 1800}},
	}
	for i := 0; i < n; i++ {
		r := 200 + float64(i%9)*250
		ang := float64(i) * 2.39996
		net.Devices = append(net.Devices, geo.Point{X: r * math.Cos(ang), Y: r * math.Sin(ang)})
	}
	gains := model.Gains(net, p)
	a := model.NewAllocation(n, p.Plan)
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = p.Plan.MaxTxPowerDBm
		a.Channel[i] = i % p.Plan.NumChannels()
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := scenario.FromNetwork(net, &a, "nsd test").Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func metricValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func TestRunReplayVerifies(t *testing.T) {
	path := writeTestScenario(t, 24)
	deltas := filepath.Join(t.TempDir(), "deltas.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-replay", "-scenario", path,
		"-packets", "4", "-seed", "7", "-shards", "4",
		"-http", "", "-deltas", deltas,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "VERIFY OK") {
		t.Errorf("replay output missing bit-exactness verdict:\n%s", s)
	}
	if !strings.Contains(s, "uplinks/sec") {
		t.Errorf("replay output missing throughput:\n%s", s)
	}
	if !strings.Contains(s, "re-allocation pass") {
		t.Errorf("replay output missing realloc pass:\n%s", s)
	}
}

func TestRunReplayAllocatesWhenScenarioHasNone(t *testing.T) {
	// Strip the allocation so run() must invoke the allocator itself.
	src := writeTestScenario(t, 12)
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sc.Allocation = nil
	path := filepath.Join(t.TempDir(), "noalloc.json")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(w); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var out bytes.Buffer
	err = run([]string{"-replay", "-scenario", path, "-packets", "2", "-shards", "2", "-http", "", "-realloc-every", "0"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "VERIFY OK") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunLiveSmoke(t *testing.T) {
	path := writeTestScenario(t, 8)
	var out bytes.Buffer
	err := run([]string{
		"-scenario", path, "-listen", "127.0.0.1:0", "-http", "",
		"-duration", "200ms", "-flush-every", "20ms", "-realloc-every", "0",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "served 0 uplinks") {
		t.Errorf("live summary missing:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-replay"}, &out); err == nil {
		t.Error("missing -scenario accepted")
	}
	if err := run([]string{"-scenario", "x", "-shards", "0"}, &out); err == nil {
		t.Error("-shards 0 accepted")
	}
}

// udpExchange sends a datagram and returns the (ack) reply, or nil after
// the deadline — for traffic that must not be acknowledged.
func udpExchange(t *testing.T, conn net.Conn, pkt []byte, wantReply bool) []byte {
	t.Helper()
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	timeout := 2 * time.Second
	if !wantReply {
		timeout = 100 * time.Millisecond
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	n, err := conn.Read(buf)
	if err != nil {
		if !wantReply {
			return nil
		}
		t.Fatalf("no ack: %v", err)
	}
	if !wantReply {
		t.Fatalf("unexpected reply % x", buf[:n])
	}
	return buf[:n]
}

func rxpkFor(phy []byte) ingest.RXPK {
	return ingest.RXPK{
		Tmst: 1000, Freq: 868.1, Stat: 1, Modu: "LORA",
		Datr: "SF7BW125", Codr: "4/7", RSSI: -80, LSNR: 5.5,
		Size: len(phy), Data: base64.StdEncoding.EncodeToString(phy),
	}
}

// TestDaemonUDPIngest drives a live daemon over real sockets: PULL_DATA
// keepalives, PUSH_DATA uplinks with a cross-gateway duplicate, a corrupt
// datagram, and the /metrics + /healthz endpoints.
func TestDaemonUDPIngest(t *testing.T) {
	cfg := config{
		scenarioPath: writeTestScenario(t, 8),
		listenAddr:   "127.0.0.1:0",
		httpAddr:     "127.0.0.1:0",
		shards:       2,
		queueDepth:   64,
		dedupWindowS: 0.05,
		flushEvery:   5 * time.Millisecond,
	}
	netw, a, err := loadScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(cfg, netw, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Serve(ctx) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	conn, err := net.Dial("udp", d.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	eui1 := [8]byte{0xAA, 1, 2, 3, 4, 5, 6, 7}
	eui2 := [8]byte{0xBB, 1, 2, 3, 4, 5, 6, 7}

	// Keepalive round-trip.
	ack := udpExchange(t, conn, ingest.EncodePullData(0x1234, eui1), true)
	want := []byte{2, 0x34, 0x12, ingest.PullAck}
	if !bytes.Equal(ack, want) {
		t.Fatalf("PULL_ACK = % x, want % x", ack, want)
	}

	// Device 0 (DevAddr 1) sends FCnt 1; two gateways report it.
	dev := ingest.DeviceForAddr(ingest.AddrForIndex(0))
	phy1, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: 1, FPort: 1, Payload: []byte{1},
	}, dev.Keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, eui := range [][8]byte{eui1, eui2} {
		pkt, err := ingest.EncodePushData(uint16(i+1), eui, []ingest.RXPK{rxpkFor(phy1)})
		if err != nil {
			t.Fatal(err)
		}
		ack := udpExchange(t, conn, pkt, true)
		if len(ack) != 4 || ack[3] != ingest.PushAck {
			t.Fatalf("PUSH_ACK = % x", ack)
		}
	}

	// A second frame so the tracker sees a counter advance.
	phy2, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: 2, FPort: 1, Payload: []byte{2},
	}, dev.Keys)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := ingest.EncodePushData(9, eui1, []ingest.RXPK{rxpkFor(phy2)})
	if err != nil {
		t.Fatal(err)
	}
	udpExchange(t, conn, pkt, true)

	// Garbage datagram: counted as a parse error, never acknowledged.
	udpExchange(t, conn, []byte{1, 2, 3}, false)

	// Poll /metrics until the windows have flushed and counters settle.
	base := "http://" + d.HTTPAddr()
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
		delivered, _ := metricValue(body, "eflora_nsd_deliveries_total")
		if delivered >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never settled:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	checks := map[string]float64{
		"eflora_nsd_uplinks_total":      3,
		"eflora_nsd_deliveries_total":   2,
		"eflora_nsd_duplicates_total":   1,
		"eflora_nsd_rejected_total":     0,
		"eflora_nsd_parse_errors_total": 1,
		"eflora_nsd_gateways":           2,
		"eflora_nsd_tracked_devices":    1,
	}
	for name, want := range checks {
		got, ok := metricValue(body, name)
		if !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	for _, name := range []string{
		`eflora_nsd_ingest_latency_seconds{quantile="0.99"}`,
		`eflora_nsd_shard_depth{shard="0"}`,
		`eflora_nsd_shard_pending{shard="1"}`,
		"eflora_nsd_dedup_hit_rate",
		"eflora_nsd_uptime_seconds",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %s:\n%s", name, body)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(b)) != "ok" {
		t.Errorf("healthz = %q", b)
	}
}

// TestDaemonRealloc drives enough lossy low-SNR traffic through the live
// daemon that the periodic control loop reassigns the device and appends
// a scenario delta.
func TestDaemonRealloc(t *testing.T) {
	deltas := filepath.Join(t.TempDir(), "deltas.jsonl")
	cfg := config{
		scenarioPath: writeTestScenario(t, 8),
		listenAddr:   "127.0.0.1:0",
		httpAddr:     "",
		shards:       2,
		queueDepth:   64,
		dedupWindowS: 0.02,
		flushEvery:   5 * time.Millisecond,
		reallocEvery: 50 * time.Millisecond,
		snrMarginDB:  1,
		minPRR:       0.9,
		minFrames:    4,
		deltasPath:   deltas,
	}
	netw, a, err := loadScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage device 3 so the model-side greedy has a better assignment
	// to move it to once the observed statistics flag it.
	a.SF[3] = lora.SF12
	d, err := newDaemon(cfg, netw, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Serve(ctx) }()

	conn, err := net.Dial("udp", d.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	eui := [8]byte{0xCC}
	dev := ingest.DeviceForAddr(ingest.AddrForIndex(3))
	// Every third counter missing (lossy) and SNR far below the SF12 floor.
	for fcnt := uint32(1); fcnt <= 18; fcnt++ {
		if fcnt%3 == 0 {
			continue
		}
		phy, err := lorawan.Encode(lorawan.Frame{
			MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: fcnt, FPort: 1, Payload: []byte{byte(fcnt)},
		}, dev.Keys)
		if err != nil {
			t.Fatal(err)
		}
		rx := rxpkFor(phy)
		rx.LSNR = lora.SNRThresholdDB(lora.SF12) - 5
		pkt, err := ingest.EncodePushData(uint16(fcnt), eui, []ingest.RXPK{rx})
		if err != nil {
			t.Fatal(err)
		}
		udpExchange(t, conn, pkt, true)
		time.Sleep(2 * time.Millisecond) // let windows open and close distinctly
	}

	deadline := time.Now().Add(5 * time.Second)
	for d.reallocated() == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := d.reallocated(); got == 0 {
		t.Fatal("control loop never reassigned the drifting device")
	}

	f, err := os.Open(deltas)
	if err != nil {
		t.Fatalf("delta file: %v", err)
	}
	defer f.Close()
	ds, err := scenario.ReadDeltas(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("no deltas appended")
	}
	found := false
	for _, delta := range ds {
		for _, c := range delta.Changes {
			if c.Device == 3 {
				found = true
				if c.SF == int(lora.SF12) && c.TPdBm == a.TPdBm[3] && c.Channel == a.Channel[3] {
					t.Errorf("delta kept the sabotaged assignment: %+v", c)
				}
			}
		}
	}
	if !found {
		t.Errorf("device 3 not in any delta: %+v", ds)
	}
}

func TestMetricValueHelper(t *testing.T) {
	body := "a 1\nb 2.5\n"
	if v, ok := metricValue(body, "b"); !ok || v != 2.5 {
		t.Errorf("metricValue = %v, %v", v, ok)
	}
	if _, ok := metricValue(body, "c"); ok {
		t.Error("missing metric found")
	}
}
