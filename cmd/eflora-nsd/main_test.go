package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"eflora/internal/geo"
	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/model"
	"eflora/internal/netserver"
	"eflora/internal/scenario"
)

// writeTestScenario creates a small deployment with a feasible allocation
// and returns the file path.
func writeTestScenario(t *testing.T, n int) string {
	t.Helper()
	p := model.DefaultParams()
	net := &model.Network{
		Gateways: []geo.Point{{X: 0, Y: 0}, {X: 1800, Y: 0}, {X: 0, Y: 1800}},
	}
	for i := 0; i < n; i++ {
		r := 200 + float64(i%9)*250
		ang := float64(i) * 2.39996
		net.Devices = append(net.Devices, geo.Point{X: r * math.Cos(ang), Y: r * math.Sin(ang)})
	}
	gains := model.Gains(net, p)
	a := model.NewAllocation(n, p.Plan)
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = p.Plan.MaxTxPowerDBm
		a.Channel[i] = i % p.Plan.NumChannels()
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := scenario.FromNetwork(net, &a, "nsd test").Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func metricValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func TestRunReplayVerifies(t *testing.T) {
	path := writeTestScenario(t, 24)
	deltas := filepath.Join(t.TempDir(), "deltas.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-replay", "-scenario", path,
		"-packets", "4", "-seed", "7", "-shards", "4",
		"-http", "", "-deltas", deltas,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "VERIFY OK") {
		t.Errorf("replay output missing bit-exactness verdict:\n%s", s)
	}
	if !strings.Contains(s, "uplinks/sec") {
		t.Errorf("replay output missing throughput:\n%s", s)
	}
	if !strings.Contains(s, "re-allocation pass") {
		t.Errorf("replay output missing realloc pass:\n%s", s)
	}
}

func TestRunReplayAllocatesWhenScenarioHasNone(t *testing.T) {
	// Strip the allocation so run() must invoke the allocator itself.
	src := writeTestScenario(t, 12)
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sc.Allocation = nil
	path := filepath.Join(t.TempDir(), "noalloc.json")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(w); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var out bytes.Buffer
	err = run([]string{"-replay", "-scenario", path, "-packets", "2", "-shards", "2", "-http", "", "-realloc-every", "0"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "VERIFY OK") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestRunReplayDownlinkExchange drives the closed loop end to end in
// replay mode: drift injection degrades one device's reported SNR, the
// re-allocation pass moves it, and the downlink exchange must show the
// simulated device applying the new assignment only after a PULL_RESP
// landed in one of its Class-A windows.
func TestRunReplayDownlinkExchange(t *testing.T) {
	// Sabotage the drifting device's SF so the model-side greedy has a
	// better assignment once the degraded statistics flag it.
	src := writeTestScenario(t, 24)
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sc.Allocation.SF[0] = int(lora.SF12)
	path := filepath.Join(t.TempDir(), "drifting.json")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(w); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var out bytes.Buffer
	err = run([]string{
		"-replay", "-scenario", path,
		"-packets", "20", "-seed", "7", "-shards", "4", "-http", "",
		"-drift-devices", "1", "-drift-snr", "50",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "VERIFY OK") {
		t.Errorf("drift injection broke bit-exact accounting:\n%s", s)
	}
	if strings.Contains(s, "moved 0 device(s)") {
		t.Fatalf("drift never triggered a reassignment:\n%s", s)
	}
	if !strings.Contains(s, "device 0 applied SF12->") ||
		!strings.Contains(s, "only after the PULL_RESP landed") {
		t.Errorf("no device demonstrably applied its reassignment:\n%s", s)
	}
	if !strings.Contains(s, "applied (RX1") {
		t.Errorf("downlink summary missing:\n%s", s)
	}
	if !strings.Contains(s, "half-duplex gateways blocked") {
		t.Errorf("half-duplex probe report missing:\n%s", s)
	}
}

func TestRunLiveSmoke(t *testing.T) {
	path := writeTestScenario(t, 8)
	var out bytes.Buffer
	err := run([]string{
		"-scenario", path, "-listen", "127.0.0.1:0", "-http", "",
		"-duration", "200ms", "-flush-every", "20ms", "-realloc-every", "0",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "served 0 uplinks") {
		t.Errorf("live summary missing:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-replay"}, &out); err == nil {
		t.Error("missing -scenario accepted")
	}
	if err := run([]string{"-scenario", "x", "-shards", "0"}, &out); err == nil {
		t.Error("-shards 0 accepted")
	}
}

// udpExchange sends a datagram and returns the (ack) reply, or nil after
// the deadline — for traffic that must not be acknowledged.
func udpExchange(t *testing.T, conn net.Conn, pkt []byte, wantReply bool) []byte {
	t.Helper()
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	timeout := 2 * time.Second
	if !wantReply {
		timeout = 100 * time.Millisecond
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	n, err := conn.Read(buf)
	if err != nil {
		if !wantReply {
			return nil
		}
		t.Fatalf("no ack: %v", err)
	}
	if !wantReply {
		t.Fatalf("unexpected reply % x", buf[:n])
	}
	return buf[:n]
}

func rxpkFor(phy []byte) ingest.RXPK {
	return ingest.RXPK{
		Tmst: 1000, Freq: 868.1, Stat: 1, Modu: "LORA",
		Datr: "SF7BW125", Codr: "4/7", RSSI: -80, LSNR: 5.5,
		Size: len(phy), Data: base64.StdEncoding.EncodeToString(phy),
	}
}

// TestDaemonUDPIngest drives a live daemon over real sockets: PULL_DATA
// keepalives, PUSH_DATA uplinks with a cross-gateway duplicate, a corrupt
// datagram, and the /metrics + /healthz endpoints.
func TestDaemonUDPIngest(t *testing.T) {
	cfg := config{
		scenarioPath: writeTestScenario(t, 8),
		listenAddr:   "127.0.0.1:0",
		httpAddr:     "127.0.0.1:0",
		shards:       2,
		queueDepth:   64,
		dedupWindowS: 0.05,
		flushEvery:   5 * time.Millisecond,
	}
	netw, a, err := loadScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(cfg, netw, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Serve(ctx) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	conn, err := net.Dial("udp", d.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	eui1 := [8]byte{0xAA, 1, 2, 3, 4, 5, 6, 7}
	eui2 := [8]byte{0xBB, 1, 2, 3, 4, 5, 6, 7}

	// Keepalive round-trip.
	ack := udpExchange(t, conn, ingest.EncodePullData(0x1234, eui1), true)
	want := []byte{2, 0x34, 0x12, ingest.PullAck}
	if !bytes.Equal(ack, want) {
		t.Fatalf("PULL_ACK = % x, want % x", ack, want)
	}

	// Device 0 (DevAddr 1) sends FCnt 1; two gateways report it.
	dev := ingest.DeviceForAddr(ingest.AddrForIndex(0))
	phy1, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: 1, FPort: 1, Payload: []byte{1},
	}, dev.Keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, eui := range [][8]byte{eui1, eui2} {
		pkt, err := ingest.EncodePushData(uint16(i+1), eui, []ingest.RXPK{rxpkFor(phy1)})
		if err != nil {
			t.Fatal(err)
		}
		ack := udpExchange(t, conn, pkt, true)
		if len(ack) != 4 || ack[3] != ingest.PushAck {
			t.Fatalf("PUSH_ACK = % x", ack)
		}
	}

	// A second frame so the tracker sees a counter advance.
	phy2, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: 2, FPort: 1, Payload: []byte{2},
	}, dev.Keys)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := ingest.EncodePushData(9, eui1, []ingest.RXPK{rxpkFor(phy2)})
	if err != nil {
		t.Fatal(err)
	}
	udpExchange(t, conn, pkt, true)

	// Garbage datagram: counted as a parse error, never acknowledged.
	udpExchange(t, conn, []byte{1, 2, 3}, false)

	// Poll /metrics until the windows have flushed and counters settle.
	base := "http://" + d.HTTPAddr()
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
		delivered, _ := metricValue(body, "eflora_nsd_deliveries_total")
		if delivered >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never settled:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	checks := map[string]float64{
		"eflora_nsd_uplinks_total":      3,
		"eflora_nsd_deliveries_total":   2,
		"eflora_nsd_duplicates_total":   1,
		"eflora_nsd_rejected_total":     0,
		"eflora_nsd_parse_errors_total": 1,
		"eflora_nsd_gateways":           2,
		"eflora_nsd_tracked_devices":    1,
	}
	for name, want := range checks {
		got, ok := metricValue(body, name)
		if !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	for _, name := range []string{
		`eflora_nsd_ingest_latency_seconds{quantile="0.99"}`,
		`eflora_nsd_shard_depth{shard="0"}`,
		`eflora_nsd_shard_pending{shard="1"}`,
		"eflora_nsd_dedup_hit_rate",
		"eflora_nsd_uptime_seconds",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %s:\n%s", name, body)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(b)) != "ok" {
		t.Errorf("healthz = %q", b)
	}
}

// TestDaemonRealloc drives enough lossy low-SNR traffic through the live
// daemon that the periodic control loop reassigns the device and appends
// a scenario delta.
func TestDaemonRealloc(t *testing.T) {
	deltas := filepath.Join(t.TempDir(), "deltas.jsonl")
	cfg := config{
		scenarioPath: writeTestScenario(t, 8),
		listenAddr:   "127.0.0.1:0",
		httpAddr:     "",
		shards:       2,
		queueDepth:   64,
		dedupWindowS: 0.02,
		flushEvery:   5 * time.Millisecond,
		reallocEvery: 50 * time.Millisecond,
		snrMarginDB:  1,
		minPRR:       0.9,
		minFrames:    4,
		deltasPath:   deltas,
	}
	netw, a, err := loadScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage device 3 so the model-side greedy has a better assignment
	// to move it to once the observed statistics flag it.
	a.SF[3] = lora.SF12
	d, err := newDaemon(cfg, netw, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Serve(ctx) }()

	conn, err := net.Dial("udp", d.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	eui := [8]byte{0xCC}
	dev := ingest.DeviceForAddr(ingest.AddrForIndex(3))
	// Every third counter missing (lossy) and SNR far below the SF12 floor.
	for fcnt := uint32(1); fcnt <= 18; fcnt++ {
		if fcnt%3 == 0 {
			continue
		}
		phy, err := lorawan.Encode(lorawan.Frame{
			MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: fcnt, FPort: 1, Payload: []byte{byte(fcnt)},
		}, dev.Keys)
		if err != nil {
			t.Fatal(err)
		}
		rx := rxpkFor(phy)
		rx.LSNR = lora.SNRThresholdDB(lora.SF12) - 5
		pkt, err := ingest.EncodePushData(uint16(fcnt), eui, []ingest.RXPK{rx})
		if err != nil {
			t.Fatal(err)
		}
		udpExchange(t, conn, pkt, true)
		time.Sleep(2 * time.Millisecond) // let windows open and close distinctly
	}

	deadline := time.Now().Add(5 * time.Second)
	for d.reallocated() == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := d.reallocated(); got == 0 {
		t.Fatal("control loop never reassigned the drifting device")
	}

	f, err := os.Open(deltas)
	if err != nil {
		t.Fatalf("delta file: %v", err)
	}
	defer f.Close()
	ds, err := scenario.ReadDeltas(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("no deltas appended")
	}
	found := false
	for _, delta := range ds {
		for _, c := range delta.Changes {
			if c.Device == 3 {
				found = true
				if c.SF == int(lora.SF12) && c.TPdBm == a.TPdBm[3] && c.Channel == a.Channel[3] {
					t.Errorf("delta kept the sabotaged assignment: %+v", c)
				}
			}
		}
	}
	if !found {
		t.Errorf("device 3 not in any delta: %+v", ds)
	}
}

// readDatagram reads one UDP datagram with a buffer large enough for a
// PULL_RESP, returning nil on deadline.
func readDatagram(t *testing.T, conn net.Conn, timeout time.Duration) []byte {
	t.Helper()
	buf := make([]byte, 2048)
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	n, err := conn.Read(buf)
	if err != nil {
		return nil
	}
	return append([]byte(nil), buf[:n]...)
}

// sendUplinkCollect writes a PUSH_DATA and reads until its PUSH_ACK,
// collecting any PULL_RESP the daemon interleaves (the control loop runs
// on its own timer, so a downlink can race the ack).
func sendUplinkCollect(t *testing.T, conn net.Conn, pkt []byte) [][]byte {
	t.Helper()
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	var resps [][]byte
	for {
		d := readDatagram(t, conn, 2*time.Second)
		if d == nil {
			t.Fatal("no PUSH_ACK")
		}
		if len(d) >= 4 && d[3] == ingest.PullResp {
			resps = append(resps, d)
			continue
		}
		if len(d) == 4 && d[3] == ingest.PushAck {
			return resps
		}
		t.Fatalf("unexpected datagram % x", d)
	}
}

// decodePullResp asserts a datagram is a PULL_RESP carrying a LinkADRReq
// for the device and returns the packet plus the parsed command.
func decodePullResp(t *testing.T, raw []byte, dev netserver.Device) (*ingest.Packet, lorawan.LinkADRReq) {
	t.Helper()
	pkt, err := ingest.DecodeDownstream(raw)
	if err != nil {
		t.Fatalf("PULL_RESP decode: %v", err)
	}
	if pkt.Kind != ingest.PullResp || pkt.TXPK == nil {
		t.Fatalf("not a PULL_RESP: %+v", pkt)
	}
	phy, err := pkt.TXPK.Payload()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := lorawan.DecodeDownlink(phy, dev.Keys, 0)
	if err != nil {
		t.Fatalf("downlink frame: %v", err)
	}
	if fr.DevAddr != dev.DevAddr {
		t.Fatalf("DevAddr = %08x, want %08x", fr.DevAddr, dev.DevAddr)
	}
	if fr.FPort != 0 {
		t.Fatalf("FPort = %d, want 0 (MAC command)", fr.FPort)
	}
	cmd, err := lorawan.ParseLinkADRReq(fr.Payload)
	if err != nil {
		t.Fatalf("LinkADRReq: %v", err)
	}
	return pkt, cmd
}

// TestDaemonDownlinkDelivery closes the loop over real sockets: a
// PULL_DATA establishes the downlink route, lossy low-SNR uplinks make
// the control loop reassign the device, and the daemon must answer with
// a PULL_RESP in RX1, retry exactly once in RX2 after a TX_ACK error,
// and expose the outcome on /metrics.
func TestDaemonDownlinkDelivery(t *testing.T) {
	cfg := config{
		scenarioPath: writeTestScenario(t, 8),
		listenAddr:   "127.0.0.1:0",
		httpAddr:     "127.0.0.1:0",
		shards:       2,
		queueDepth:   64,
		dedupWindowS: 0.02,
		flushEvery:   5 * time.Millisecond,
		reallocEvery: 50 * time.Millisecond,
		snrMarginDB:  1,
		minPRR:       0.9,
		minFrames:    4,
	}
	netw, a, err := loadScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SF[3] = lora.SF12
	d, err := newDaemon(cfg, netw, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Serve(ctx) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	conn, err := net.Dial("udp", d.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The PULL_DATA keepalive registers this socket as the gateway's
	// downlink route.
	eui := [8]byte{0xDD, 1}
	ack := udpExchange(t, conn, ingest.EncodePullData(0x0101, eui), true)
	if len(ack) != 4 || ack[3] != ingest.PullAck {
		t.Fatalf("PULL_ACK = % x", ack)
	}

	dev := ingest.DeviceForAddr(ingest.AddrForIndex(3))
	var resps [][]byte
	for fcnt := uint32(1); fcnt <= 60 && len(resps) == 0; fcnt++ {
		if fcnt%3 == 0 {
			continue // lossy link: every third counter never arrives
		}
		phy, err := lorawan.Encode(lorawan.Frame{
			MType: lorawan.UnconfirmedDataUp, DevAddr: dev.DevAddr, FCnt: fcnt, FPort: 1, Payload: []byte{byte(fcnt)},
		}, dev.Keys)
		if err != nil {
			t.Fatal(err)
		}
		rx := rxpkFor(phy)
		rx.LSNR = lora.SNRThresholdDB(lora.SF12) - 5
		pkt, err := ingest.EncodePushData(uint16(fcnt), eui, []ingest.RXPK{rx})
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, sendUplinkCollect(t, conn, pkt)...)
		if len(resps) == 0 {
			if r := readDatagram(t, conn, 10*time.Millisecond); r != nil {
				resps = append(resps, r)
			}
		}
	}
	if len(resps) == 0 {
		t.Fatal("control loop never sent a PULL_RESP")
	}

	// RX1: the downlink mirrors the uplink's channel parameters and is
	// scheduled RX1Delay (1 s) after the uplink's gateway timestamp.
	pkt1, cmd := decodePullResp(t, resps[0], dev)
	rx := rxpkFor(nil)
	if got := pkt1.TXPK.Tmst; got != uint64(rx.Tmst)+1_000_000 {
		t.Errorf("RX1 tmst = %d, want %d", got, rx.Tmst+1_000_000)
	}
	if pkt1.TXPK.Freq != rx.Freq || pkt1.TXPK.Datr != rx.Datr {
		t.Errorf("RX1 channel = %g %s, want %g %s", pkt1.TXPK.Freq, pkt1.TXPK.Datr, rx.Freq, rx.Datr)
	}
	if !pkt1.TXPK.IPol {
		t.Error("downlink not polarity-inverted")
	}
	if sf, err := lorawan.SFForDataRate(cmd.DataRate); err != nil || sf == lora.SF12 {
		t.Errorf("LinkADRReq kept the sabotaged SF: DR %d (err %v)", cmd.DataRate, err)
	}

	// A TX_ACK error must trigger exactly one RX2 retry.
	nack, err := ingest.EncodeTxAck(pkt1.Token, eui, ingest.TxErrTooLate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(nack); err != nil {
		t.Fatal(err)
	}
	raw2 := readDatagram(t, conn, 2*time.Second)
	if raw2 == nil {
		t.Fatal("no RX2 retry after TX_ACK error")
	}
	pkt2, _ := decodePullResp(t, raw2, dev)
	if pkt2.Token == pkt1.Token {
		t.Error("retry reused the in-flight token")
	}
	if got := pkt2.TXPK.Tmst; got != uint64(rx.Tmst)+2_000_000 {
		t.Errorf("RX2 tmst = %d, want %d", got, rx.Tmst+2_000_000)
	}
	if pkt2.TXPK.Freq != 869.525 || pkt2.TXPK.Datr != "SF12BW125" {
		t.Errorf("RX2 channel = %g %s, want 869.525 SF12BW125", pkt2.TXPK.Freq, pkt2.TXPK.Datr)
	}
	okAck, err := ingest.EncodeTxAck(pkt2.Token, eui, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(okAck); err != nil {
		t.Fatal(err)
	}
	// The RX2 retry was the only second chance: a second error on it is
	// terminal and nothing else may be transmitted.
	if extra := readDatagram(t, conn, 150*time.Millisecond); extra != nil {
		t.Fatalf("unexpected third transmission % x", extra)
	}

	base := "http://" + d.HTTPAddr()
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
		if acked, _ := metricValue(body, "eflora_nsd_downlink_acked_total"); acked >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("downlink metrics never settled:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	checks := map[string]float64{
		"eflora_nsd_downlink_queued_total":  1,
		"eflora_nsd_downlink_sent_total":    2,
		"eflora_nsd_downlink_acked_total":   1,
		"eflora_nsd_downlink_retried_total": 1,
		"eflora_nsd_downlink_failed_total":  0,
		"eflora_nsd_gateway_routes":         1,
	}
	for name, want := range checks {
		if got, ok := metricValue(body, name); !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	for _, name := range []string{
		`eflora_nsd_txack_total{gateway="dd01000000000000",error="TOO_LATE"} 1`,
		`eflora_nsd_txack_total{gateway="dd01000000000000",error="NONE"} 1`,
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %s:\n%s", name, body)
		}
	}
}

func TestMetricValueHelper(t *testing.T) {
	body := "a 1\nb 2.5\n"
	if v, ok := metricValue(body, "b"); !ok || v != 2.5 {
		t.Errorf("metricValue = %v, %v", v, ok)
	}
	if _, ok := metricValue(body, "c"); ok {
		t.Error("missing metric found")
	}
}
