// Command eflora-nsd is the live network-server daemon: it ingests
// gateway uplinks over the Semtech UDP packet-forwarder protocol, fans
// them across a DevAddr-sharded pool of network servers, flushes dedup
// windows on the clock, tracks rolling per-device SNR/PRR statistics,
// and periodically hands drifting devices to the incremental allocator —
// emitting the resulting (SF, TP, channel) moves as scenario-file deltas.
// Operational counters are served on HTTP /metrics (+/healthz).
//
// Usage (live):
//
//	eflora-nsd -scenario net.json -listen :1700 -http :8080 -deltas deltas.jsonl
//
// Usage (load generator / self-benchmark):
//
//	eflora-nsd -replay -scenario net.json -packets 20 -shards 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/downlink"
	"eflora/internal/engine"
	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/model"
	"eflora/internal/netserver"
	"eflora/internal/scenario"
	"eflora/internal/statestore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eflora-nsd:", err)
		os.Exit(1)
	}
}

type config struct {
	scenarioPath string
	listenAddr   string
	httpAddr     string
	shards       int
	queueDepth   int
	dedupWindowS float64
	retainCap    int
	flushEvery   time.Duration
	reallocEvery time.Duration
	snrMarginDB  float64
	minPRR       float64
	minFrames    int
	deltasPath   string
	duration     time.Duration

	// stateDir enables the durable-state subsystem; snapshotInterval
	// follows the pointer-zero convention (nil = default cadence, explicit
	// 0 = WAL-only, no periodic snapshots).
	stateDir         string
	snapshotInterval *time.Duration
	walSegmentBytes  int64

	rx1DelayS  float64
	rx2FreqMHz float64
	rx2Datr    string
	routeTTLS  float64
	dutyCycle  float64

	replay       bool
	packets      int
	seed         uint64
	verify       bool
	allocator    string
	parallelism  int
	driftDevices int
	driftSNRdB   float64
	// crashAt runs the crash/restart drill in -replay mode: ingest up to
	// this fraction of the trace, snapshot + WAL through -state-dir,
	// abandon the serving state mid-flight, recover into a fresh pool, and
	// require the finished run to be bit-exact against a no-crash oracle.
	crashAt float64
}

// storeOptions maps the daemon flags onto the statestore configuration.
func storeOptions(cfg config) statestore.Options {
	return statestore.Options{
		SnapshotInterval: cfg.snapshotInterval,
		SegmentBytes:     cfg.walSegmentBytes,
	}
}

func run(args []string, out io.Writer) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}
	netw, a, err := loadScenario(cfg)
	if err != nil {
		return err
	}
	if cfg.replay {
		return runReplay(cfg, netw, a, out)
	}
	d, err := newDaemon(cfg, netw, a)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.duration)
		defer cancel()
	}
	fmt.Fprintf(out, "eflora-nsd: %d devices, %d shards, udp %s", netw.Net.N(), cfg.shards, d.UDPAddr())
	if cfg.httpAddr != "" {
		fmt.Fprintf(out, ", http %s", d.HTTPAddr())
	}
	fmt.Fprintln(out)
	err = d.Serve(ctx)
	d.writeSummary(out)
	return err
}

// parseArgs resolves the flag set into a validated config.
func parseArgs(args []string) (config, error) {
	fs := flag.NewFlagSet("eflora-nsd", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.scenarioPath, "scenario", "", "scenario file with the deployment (and ideally an allocation)")
	fs.StringVar(&cfg.listenAddr, "listen", ":1700", "UDP address for the Semtech packet-forwarder protocol")
	fs.StringVar(&cfg.httpAddr, "http", ":8080", "HTTP address for /metrics and /healthz (empty = disabled)")
	fs.IntVar(&cfg.shards, "shards", 8, "DevAddr shards (independent network-server locks)")
	fs.IntVar(&cfg.queueDepth, "queue", 1024, "per-shard inbox depth; a full inbox backpressures the reader")
	fs.Float64Var(&cfg.dedupWindowS, "dedup-window", 0.2, "dedup window in seconds")
	fs.IntVar(&cfg.retainCap, "retain", 4096, "per-shard delivery backlog cap (ring); 0 = unbounded")
	fs.DurationVar(&cfg.flushEvery, "flush-every", 100*time.Millisecond, "clock-driven dedup flush interval")
	fs.DurationVar(&cfg.reallocEvery, "realloc-every", 30*time.Second, "online re-allocation interval (0 = disabled)")
	fs.Float64Var(&cfg.snrMarginDB, "snr-margin", 1, "SNR headroom above the SF demodulation floor before a device counts as drifting")
	fs.Float64Var(&cfg.minPRR, "min-prr", 0.7, "packet-reception-ratio floor before a device counts as drifting")
	fs.IntVar(&cfg.minFrames, "min-frames", 8, "deliveries required before trusting a device's statistics")
	fs.StringVar(&cfg.deltasPath, "deltas", "", "append re-allocation deltas to this JSONL file")
	fs.DurationVar(&cfg.duration, "duration", 0, "stop the live daemon after this long (0 = run until signal)")
	fs.StringVar(&cfg.stateDir, "state-dir", "", "durable-state directory: snapshots + delta WAL; recovered on startup (empty = stateless)")
	snapInterval := fs.Duration("snapshot-interval", statestore.DefaultSnapshotInterval, "periodic snapshot cadence; an EXPLICIT 0 disables periodic snapshots (WAL-only), unset means the default")
	fs.Int64Var(&cfg.walSegmentBytes, "wal-segment-bytes", statestore.DefaultSegmentBytes, "WAL segment size-rotation threshold in bytes")
	fs.Float64Var(&cfg.rx1DelayS, "rx1-delay", downlink.DefaultRX1DelayS, "Class-A RX1 window delay after the uplink in seconds (RX2 opens one second later)")
	fs.Float64Var(&cfg.rx2FreqMHz, "rx2-freq", downlink.DefaultRX2FreqMHz, "RX2 window frequency in MHz")
	fs.StringVar(&cfg.rx2Datr, "rx2-datr", downlink.DefaultRX2Datr, "RX2 window data rate identifier")
	fs.Float64Var(&cfg.routeTTLS, "route-ttl", downlink.DefaultRouteTTLS, "seconds of PULL_DATA silence before a gateway's downlink route is evicted")
	fs.Float64Var(&cfg.dutyCycle, "duty-cycle", downlink.DefaultDutyCycle, "downlink duty-cycle budget per frequency (ETSI off-period rule)")
	fs.BoolVar(&cfg.replay, "replay", false, "load-generator mode: synthesize gateway traffic from the scenario + simulator and measure ingest throughput")
	fs.IntVar(&cfg.packets, "packets", 20, "with -replay: simulated reporting periods per device")
	fs.Uint64Var(&cfg.seed, "seed", 1, "with -replay: simulation / traffic seed")
	fs.BoolVar(&cfg.verify, "verify", true, "with -replay: re-ingest sequentially on one shard and require bit-exact counters")
	fs.StringVar(&cfg.allocator, "allocator", "eflora", "allocator used when the scenario file carries no allocation")
	fs.IntVar(&cfg.parallelism, "parallel", 0, "simulator worker goroutines in -replay (0 = all CPUs)")
	fs.IntVar(&cfg.driftDevices, "drift-devices", 0, "with -replay: degrade the reported SNR of this many devices so the re-allocator moves them")
	fs.Float64Var(&cfg.driftSNRdB, "drift-snr", 10, "with -replay: dB of SNR degradation injected per drifting device")
	fs.Float64Var(&cfg.crashAt, "crash-at", 0, "with -replay and -state-dir: crash/restart drill — snapshot and abandon the run at this fraction of the trace, recover, and verify bit-exactness against a no-crash oracle (0 = off)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	// Pointer-zero resolution for -snapshot-interval: only a flag the user
	// actually passed becomes a pointer, so `-snapshot-interval 0` reads
	// as "disabled" while an absent flag reads as "default". (The same
	// pitfall as ConfirmedConfig's AckTimeoutS: a plain zero value cannot
	// distinguish "off" from "unset".)
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "snapshot-interval" {
			cfg.snapshotInterval = snapInterval
		}
	})
	if cfg.scenarioPath == "" {
		return cfg, fmt.Errorf("-scenario is required")
	}
	if cfg.shards <= 0 {
		return cfg, fmt.Errorf("-shards must be positive")
	}
	if cfg.crashAt != 0 {
		if !cfg.replay {
			return cfg, fmt.Errorf("-crash-at requires -replay")
		}
		if cfg.stateDir == "" {
			return cfg, fmt.Errorf("-crash-at requires -state-dir")
		}
		if cfg.crashAt <= 0 || cfg.crashAt >= 1 {
			return cfg, fmt.Errorf("-crash-at must be in (0,1), got %g", cfg.crashAt)
		}
	}
	return cfg, nil
}

// loadScenario reads the deployment and its allocation, computing one
// with the configured allocator when the file has none.
func loadScenario(cfg config) (*core.Network, model.Allocation, error) {
	f, err := os.Open(cfg.scenarioPath)
	if err != nil {
		return nil, model.Allocation{}, err
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		return nil, model.Allocation{}, err
	}
	netw := &core.Network{Net: sc.Network(), Params: model.DefaultParams(), Seed: cfg.seed}
	a, ok := sc.AllocationOf()
	if !ok {
		if a, err = netw.Allocate(cfg.allocator, alloc.Options{Parallelism: cfg.parallelism}); err != nil {
			return nil, model.Allocation{}, err
		}
	}
	return netw, a, nil
}

// applyWALTail folds recovered WAL records into an allocation and a
// tracker: each record is one control-loop step, so its Changes move the
// allocation (and clear the moved devices' rolling statistics, exactly as
// Step did live) and its Resets clear the kept-but-drifting devices.
// Returns the number of device moves replayed.
func applyWALTail(tail []statestore.WALRecord, a *model.Allocation, tracker *ingest.Tracker) uint64 {
	var moves uint64
	for _, r := range tail {
		for _, c := range r.Delta.Changes {
			if c.Device < 0 || c.Device >= len(a.SF) {
				continue
			}
			a.SF[c.Device] = lora.SF(c.SF)
			a.TPdBm[c.Device] = c.TPdBm
			a.Channel[c.Device] = c.Channel
			tracker.Reset(ingest.AddrForIndex(c.Device))
			moves++
		}
		for _, i := range r.Delta.Resets {
			tracker.Reset(ingest.AddrForIndex(i))
		}
	}
	return moves
}

// daemon is the live serving path.
type daemon struct {
	cfg      config
	start    time.Time
	pool     *ingest.Pool
	tracker  *ingest.Tracker
	realloc  *ingest.Reallocator
	frontend *ingest.Frontend

	// routes maps gateway EUIs to their PULL_DATA downlink addresses;
	// sched turns reassignments into Class-A PULL_RESP frames.
	routes  *downlink.Routes
	sched   *downlink.Scheduler
	devices []netserver.Device
	plan    lora.Plan

	// fcntDown is the per-device downlink frame counter.
	fcntMu   sync.Mutex
	fcntDown map[uint32]uint32

	// store is the durable-state subsystem (nil when -state-dir is
	// unset); initAlloc is the allocation the daemon booted with, the
	// fallback snapshot source when online re-allocation is disabled.
	store     *statestore.Store
	initAlloc model.Allocation
	// dlEncodeErr counts reassignments that could not be encoded as a
	// LinkADRReq (e.g. power level outside the MAC command's range).
	dlEncodeErr atomic.Int64

	udp      *net.UDPConn
	httpLis  net.Listener
	httpSrv  *http.Server
	gateways sync.Map // [8]byte EUI -> int index
	gwCount  atomic.Int64
	parseErr atomic.Int64

	deltaMu   sync.Mutex
	deltaFile *os.File
}

func newDaemon(cfg config, netw *core.Network, a model.Allocation) (*daemon, error) {
	d := &daemon{
		cfg:      cfg,
		start:    time.Now(),
		tracker:  ingest.NewTracker(0),
		routes:   downlink.NewRoutes(cfg.routeTTLS),
		devices:  ingest.ProvisionDevices(netw.Net.N()),
		plan:     netw.Params.Plan,
		fcntDown: make(map[uint32]uint32),
	}
	// Durable state: open the directory and recover before anything is
	// built, so the recovered allocation seeds the re-allocator and the
	// recovered dedup/tracker state seeds the pool.
	var recovered *statestore.Recovered
	if cfg.stateDir != "" {
		store, err := statestore.Open(cfg.stateDir, storeOptions(cfg))
		if err != nil {
			return nil, err
		}
		d.store = store
		if recovered, err = store.Recover(); err != nil {
			return nil, err
		}
	}
	var recoveredMoves uint64
	if recovered != nil && recovered.Snapshot != nil {
		snap := recovered.Snapshot
		if len(snap.Alloc.SF) != netw.Net.N() {
			return nil, fmt.Errorf("state-dir snapshot covers %d devices, scenario has %d", len(snap.Alloc.SF), netw.Net.N())
		}
		// The WAL tail carries every control-loop step after the snapshot:
		// replaying it makes the allocation exact; per-device rolling
		// statistics are as-of-last-snapshot plus the recorded resets (the
		// documented recovery invariant).
		a = snap.Alloc.Clone()
		d.tracker.ImportState(snap.Tracker)
		recoveredMoves = snap.Reassigned + applyWALTail(recovered.Tail, &a, d.tracker)
		for _, f := range snap.FCntDown {
			d.fcntDown[f.DevAddr] = f.FCnt
		}
	}
	d.initAlloc = a.Clone()
	d.sched = downlink.NewScheduler(downlink.Config{
		RX1DelayS:  cfg.rx1DelayS,
		RX2FreqMHz: cfg.rx2FreqMHz,
		RX2Datr:    cfg.rx2Datr,
		CodingRate: netw.Params.CodingRate,
		DutyCycle:  cfg.dutyCycle,
	})
	// The receiver frontend runs the same engine.Gateway physics as the
	// simulators over the live RXPK stream, exposing RF-contention
	// counters the dedup/delivery pipeline cannot see.
	d.frontend = ingest.NewFrontend(ingest.FrontendConfig{
		Plan:       netw.Params.Plan,
		NoiseDBm:   netw.Params.NoiseDBm,
		Capacity:   netw.Params.GatewayCapacity,
		CodingRate: netw.Params.CodingRate,
	})
	d.pool = ingest.NewPool(d.devices, ingest.PoolConfig{
		Shards:       cfg.shards,
		QueueDepth:   cfg.queueDepth,
		DedupWindowS: cfg.dedupWindowS,
		RetainCap:    cfg.retainCap,
		OnDelivery: func(_ int, del netserver.Delivery) {
			d.tracker.Observe(del)
			if del.FPort == 0 {
				d.onMACUplink(del)
			}
		},
	})
	if recovered != nil && recovered.Snapshot != nil {
		if err := d.pool.ImportState(recovered.Snapshot.Pool); err != nil {
			return nil, fmt.Errorf("restore pool (re-run with the shard count the state was written at, or clear -state-dir): %w", err)
		}
	}
	if cfg.reallocEvery > 0 {
		inc, err := alloc.NewIncremental(netw.Net, netw.Params, a, alloc.Options{})
		if err != nil {
			return nil, err
		}
		d.realloc = ingest.NewReallocator(inc, d.tracker, ingest.ReallocConfig{
			SNRMarginDB: cfg.snrMarginDB,
			MinPRR:      cfg.minPRR,
			MinFrames:   cfg.minFrames,
		})
		d.realloc.RestoreReassigned(int(recoveredMoves))
	}
	if cfg.deltasPath != "" {
		f, err := os.OpenFile(cfg.deltasPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		d.deltaFile = f
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.listenAddr)
	if err != nil {
		return nil, err
	}
	if d.udp, err = net.ListenUDP("udp", udpAddr); err != nil {
		return nil, err
	}
	if cfg.httpAddr != "" {
		if d.httpLis, err = net.Listen("tcp", cfg.httpAddr); err != nil {
			d.udp.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", d.handleMetrics)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		d.httpSrv = &http.Server{Handler: mux}
	}
	return d, nil
}

// UDPAddr and HTTPAddr report the bound addresses (ephemeral-port safe).
func (d *daemon) UDPAddr() string { return d.udp.LocalAddr().String() }
func (d *daemon) HTTPAddr() string {
	if d.httpLis == nil {
		return ""
	}
	return d.httpLis.Addr().String()
}

// nowS is the server timescale: seconds since daemon start.
func (d *daemon) nowS() float64 { return time.Since(d.start).Seconds() }

// Serve runs until ctx is done.
func (d *daemon) Serve(ctx context.Context) error {
	d.pool.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); d.udpLoop() }()
	if d.httpSrv != nil {
		wg.Add(1)
		go func() { defer wg.Done(); _ = d.httpSrv.Serve(d.httpLis) }()
	}
	flush := time.NewTicker(d.cfg.flushEvery)
	defer flush.Stop()
	var reallocC <-chan time.Time
	if d.realloc != nil && d.cfg.reallocEvery > 0 {
		t := time.NewTicker(d.cfg.reallocEvery)
		defer t.Stop()
		reallocC = t.C
	}
	// Periodic snapshots, honoring the pointer-zero contract: an explicit
	// -snapshot-interval 0 runs WAL-only (final snapshot on shutdown).
	var snapC <-chan time.Time
	if d.store != nil {
		if every, enabled := storeOptions(d.cfg).SnapshotCadence(); enabled {
			t := time.NewTicker(every)
			defer t.Stop()
			snapC = t.C
		}
	}
	for {
		select {
		case <-ctx.Done():
			d.shutdown()
			wg.Wait()
			return nil
		case <-flush.C:
			now := d.nowS()
			d.pool.FlushExpired(now)
			d.frontend.Advance(now)
			d.routes.Evict(now)
			d.sched.Expire(now)
		case <-reallocC:
			if err := d.reallocStep(); err != nil {
				d.shutdown()
				wg.Wait()
				return err
			}
		case <-snapC:
			if err := d.takeSnapshot(); err != nil {
				d.shutdown()
				wg.Wait()
				return err
			}
		}
	}
}

// exportState assembles the daemon's durable state at the current moment.
// Each shard is internally consistent; the WAL sequence covers every
// control-loop delta appended so far (appends and snapshots are both
// serialized on the Serve loop).
func (d *daemon) exportState() *statestore.State {
	a := d.initAlloc
	var reassigned uint64
	if d.realloc != nil {
		a = d.realloc.Allocation()
		reassigned = uint64(d.realloc.Reassigned())
	}
	st := &statestore.State{
		Seq:         d.store.NextSeq() - 1,
		UplinkCount: uint64(d.pool.Counters().Uplinks),
		TakenAtS:    d.nowS(),
		Pool:        d.pool.ExportState(),
		Tracker:     d.tracker.ExportState(),
		Alloc:       a,
		Reassigned:  reassigned,
	}
	d.fcntMu.Lock()
	st.FCntDown = make([]statestore.FCntDownEntry, 0, len(d.fcntDown))
	for addr, fcnt := range d.fcntDown {
		st.FCntDown = append(st.FCntDown, statestore.FCntDownEntry{DevAddr: addr, FCnt: fcnt})
	}
	d.fcntMu.Unlock()
	sort.Slice(st.FCntDown, func(i, j int) bool { return st.FCntDown[i].DevAddr < st.FCntDown[j].DevAddr })
	return st
}

// takeSnapshot makes the WAL durable, then writes a snapshot covering it.
func (d *daemon) takeSnapshot() error {
	if err := d.store.Sync(); err != nil {
		return err
	}
	return d.store.WriteSnapshot(d.exportState())
}

// onMACUplink handles an FPort-0 uplink: the payload is the decrypted MAC
// command stream, which for this daemon means a LinkADRAns acknowledging
// (or rejecting) a queued reassignment.
func (d *daemon) onMACUplink(del netserver.Delivery) {
	if d.realloc == nil {
		return
	}
	if ans, err := lorawan.ParseLinkADRAns(del.Payload); err == nil {
		d.realloc.NoteAns(del.DevAddr, ans)
	}
}

func (d *daemon) shutdown() {
	d.udp.Close()
	if d.httpSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = d.httpSrv.Shutdown(sctx)
		cancel()
	}
	d.pool.Drain()
	d.pool.Flush()
	d.pool.Close() // stops the shard workers; state export still works
	if d.realloc != nil {
		_ = d.reallocStep() // final pass so observed drift is not lost
	}
	// Final snapshot: SIGTERM hands the next process a zero-replay boot.
	if d.store != nil {
		if err := d.takeSnapshot(); err != nil {
			fmt.Fprintln(os.Stderr, "eflora-nsd: final snapshot:", err)
		}
		if err := d.store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "eflora-nsd: state close:", err)
		}
	}
	if d.deltaFile != nil {
		d.deltaFile.Close()
	}
}

// reallocStep runs one control-loop pass, appends any delta, and queues
// the matching LinkADRReq downlinks so the moved devices actually hear
// about their new assignment. The WAL-first ordering below is what the
// walorder analyzer enforces.
//
//eflora:durable
func (d *daemon) reallocStep() error {
	delta, err := d.realloc.Step(d.nowS())
	if err != nil || delta == nil {
		return err
	}
	// WAL first: the delta must be durable before its downlinks go out, or
	// a crash between send and append would leave devices on settings the
	// recovered state does not know about.
	if d.store != nil {
		if _, err := d.store.AppendSync(delta, d.nowS()); err != nil {
			return err
		}
	}
	d.queueDownlinks(delta)
	if d.deltaFile == nil {
		return nil
	}
	d.deltaMu.Lock()
	defer d.deltaMu.Unlock()
	return scenario.AppendDelta(d.deltaFile, delta)
}

// gatewayIndex assigns each gateway EUI a dense index on first sight.
func (d *daemon) gatewayIndex(eui [8]byte) int {
	if v, ok := d.gateways.Load(eui); ok {
		return v.(int)
	}
	idx := int(d.gwCount.Add(1)) - 1
	if v, loaded := d.gateways.LoadOrStore(eui, idx); loaded {
		return v.(int)
	}
	return idx
}

// udpLoop is the packet-forwarder ingress: decode, ack, dispatch.
func (d *daemon) udpLoop() {
	buf := make([]byte, 65536)
	// One parse scratch for the whole loop: each decoded packet aliases it
	// and is consumed fully before the next read.
	var psc ingest.ParseScratch
	for {
		n, addr, err := d.udp.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		pkt, err := ingest.DecodePacketInto(buf[:n], &psc)
		if err != nil {
			d.parseErr.Add(1)
			continue
		}
		if ack, ok := pkt.Ack(); ok {
			_, _ = d.udp.WriteToUDP(ack, addr)
		}
		switch pkt.Kind {
		case ingest.PullData:
			// The PULL_DATA source address is the only path a PULL_RESP
			// can take back through the forwarder's NAT binding.
			d.gatewayIndex(pkt.EUI)
			d.routes.Update(pkt.EUI, addr, d.nowS())
			continue
		case ingest.TxAck:
			if retry := d.sched.OnTxAck(pkt.EUI, pkt.Token, pkt.TxAckErr, d.nowS()); retry != nil {
				d.sendDownlink(retry)
			}
			continue
		case ingest.PushData:
		default:
			continue
		}
		gw := d.gatewayIndex(pkt.EUI)
		now := d.nowS()
		for i := range pkt.RXPK {
			rx := &pkt.RXPK[i]
			if rx.Modu != "" && rx.Modu != "LORA" {
				continue // FSK traffic
			}
			// Even a CRC-failed frame was RF on the air that occupied a
			// demodulator and interfered, so it feeds the receiver
			// frontend before the pipeline drops it.
			d.frontend.Observe(gw, rx, now)
			if rx.Stat < 0 {
				continue // CRC-failed
			}
			phy, err := rx.Payload()
			if err != nil {
				d.parseErr.Add(1)
				continue
			}
			// The uplink opens the device's Class-A RX windows: record it
			// as the downlink scheduling context, and ride it immediately
			// if a command is waiting.
			if len(phy) >= lorawan.FrameOverheadBytes {
				devAddr := uint32(phy[1]) | uint32(phy[2])<<8 | uint32(phy[3])<<16 | uint32(phy[4])<<24
				if f := d.sched.ObserveUplink(downlink.Uplink{
					DevAddr: devAddr,
					Gateway: gw,
					EUI:     pkt.EUI,
					Tmst:    rx.Tmst,
					FreqMHz: rx.Freq,
					Datr:    rx.Datr,
					AtS:     now,
				}, now); f != nil {
					d.sendDownlink(f)
				}
			}
			d.pool.Dispatch(netserver.Uplink{
				Gateway:     gw,
				ReceivedAtS: now,
				RSSIdBm:     rx.RSSI,
				SNRdB:       rx.LSNR,
				PHYPayload:  phy,
			})
		}
	}
}

// sendDownlink routes one scheduled PULL_RESP to its gateway.
func (d *daemon) sendDownlink(f *downlink.Frame) {
	addr, ok := d.routes.Lookup(f.EUI)
	if !ok {
		d.sched.Unroutable(f.Token)
		return
	}
	_, _ = d.udp.WriteToUDP(f.Datagram, addr)
}

// nextFCntDown issues the device's next downlink frame counter.
func (d *daemon) nextFCntDown(devAddr uint32) uint32 {
	d.fcntMu.Lock()
	defer d.fcntMu.Unlock()
	fcnt := d.fcntDown[devAddr]
	d.fcntDown[devAddr] = fcnt + 1
	return fcnt
}

// buildLinkADRPhy encodes one reassignment as a LinkADRReq downlink
// frame (FPort 0, encrypted under NwkSKey).
func buildLinkADRPhy(plan lora.Plan, keys lorawan.Keys, devAddr, fcnt uint32, c scenario.DeltaChange) ([]byte, error) {
	dr, err := lorawan.DataRateForSF(lora.SF(c.SF))
	if err != nil {
		return nil, err
	}
	tpIdx, ok := plan.TxPowerIndex(c.TPdBm)
	if !ok {
		return nil, fmt.Errorf("TX power %g dBm is not a level of plan %s", c.TPdBm, plan.Name)
	}
	cmd, err := lorawan.LinkADRReq{DataRate: dr, TXPower: uint8(tpIdx), Channel: c.Channel}.Encode()
	if err != nil {
		return nil, err
	}
	return lorawan.EncodeDownlink(lorawan.Frame{
		MType:   lorawan.UnconfirmedDataDown,
		DevAddr: devAddr,
		ADR:     true,
		FCnt:    fcnt,
		FPort:   0,
		Payload: cmd,
	}, keys)
}

// queueDownlinks turns a re-allocation delta into per-device LinkADRReq
// downlinks, sending immediately when a device's RX window is still
// reachable.
func (d *daemon) queueDownlinks(delta *scenario.Delta) {
	for _, c := range delta.Changes {
		if c.Device < 0 || c.Device >= len(d.devices) {
			continue
		}
		dev := d.devices[c.Device]
		phy, err := buildLinkADRPhy(d.plan, dev.Keys, dev.DevAddr, d.nextFCntDown(dev.DevAddr), c)
		if err != nil {
			d.dlEncodeErr.Add(1)
			continue
		}
		d.realloc.NoteCommandSent(dev.DevAddr)
		if f := d.sched.Enqueue(dev.DevAddr, phy, d.nowS()); f != nil {
			d.sendDownlink(f)
		}
	}
}

// handleMetrics renders the Prometheus-style text counters.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rf := d.frontend.Counters()
	dl := d.sched.Counters()
	x := metricsExtra{
		uptimeS:     d.nowS(),
		gateways:    int(d.gwCount.Load()),
		parseErrors: d.parseErr.Load(),
		tracked:     d.tracker.Len(),
		reallocated: d.reallocated(),
		rf:          &rf,
		dl:          &dl,
		routes:      d.routes.Len(),
		dlEncodeErr: d.dlEncodeErr.Load(),
		ackErrs:     d.sched.AckErrors(),
	}
	if d.store != nil {
		ss := d.store.Metrics()
		x.ss = &ss
	}
	if d.realloc != nil {
		ans := d.realloc.Ans()
		x.ans = &ans
	}
	writeMetrics(w, d.pool, x)
}

func (d *daemon) reallocated() int {
	if d.realloc == nil {
		return 0
	}
	return d.realloc.Reassigned()
}

type metricsExtra struct {
	uptimeS     float64
	gateways    int
	parseErrors int64
	tracked     int
	reallocated int
	// rf is the receiver frontend's RF-contention accounting (live mode
	// only; replay traffic has no RXPK stream to observe).
	rf *ingest.FrontendCounters
	// dl is the downlink scheduler's accounting; routes the live gateway
	// route count; ackErrs the per-gateway TX_ACK outcome tallies.
	dl          *downlink.Counters
	routes      int
	dlEncodeErr int64
	ackErrs     []downlink.AckErrorCount
	// ss is the durable-state accounting (nil when -state-dir is unset);
	// ans the LinkADRAns outcome tallies (nil when re-allocation is off).
	ss  *statestore.Metrics
	ans *ingest.AnsCounters
}

// writeMetrics is shared between the live /metrics endpoint and the
// replay-mode metrics server.
func writeMetrics(w io.Writer, pool *ingest.Pool, x metricsExtra) {
	c := pool.Counters()
	fmt.Fprintf(w, "eflora_nsd_uptime_seconds %.3f\n", x.uptimeS)
	fmt.Fprintf(w, "eflora_nsd_uplinks_total %d\n", c.Uplinks)
	fmt.Fprintf(w, "eflora_nsd_deliveries_total %d\n", c.Delivered)
	fmt.Fprintf(w, "eflora_nsd_duplicates_total %d\n", c.Duplicates)
	fmt.Fprintf(w, "eflora_nsd_rejected_total %d\n", c.Rejected)
	fmt.Fprintf(w, "eflora_nsd_parse_errors_total %d\n", x.parseErrors)
	fmt.Fprintf(w, "eflora_nsd_dedup_hit_rate %s\n", ratio(c.Duplicates, c.Uplinks))
	for _, q := range []float64{0.5, 0.99} {
		if lat, ok := pool.LatencyQuantile(q); ok {
			fmt.Fprintf(w, "eflora_nsd_ingest_latency_seconds{quantile=%q} %.9f\n", fmt.Sprintf("%g", q), lat.Seconds())
		}
	}
	fmt.Fprintf(w, "eflora_nsd_gateways %d\n", x.gateways)
	fmt.Fprintf(w, "eflora_nsd_tracked_devices %d\n", x.tracked)
	fmt.Fprintf(w, "eflora_nsd_realloc_devices_total %d\n", x.reallocated)
	if x.rf != nil {
		fmt.Fprintf(w, "eflora_nsd_rf_collision_losses_total %d\n", x.rf.CollisionLosses)
		fmt.Fprintf(w, "eflora_nsd_rf_capacity_drops_total %d\n", x.rf.CapacityDrops)
		fmt.Fprintf(w, "eflora_nsd_rf_sensitivity_misses_total %d\n", x.rf.SensitivityMisses)
		fmt.Fprintf(w, "eflora_nsd_rf_unknown_channel_total %d\n", x.rf.UnknownChannel)
		fmt.Fprintf(w, "eflora_nsd_rf_bad_datr_total %d\n", x.rf.BadDatr)
	}
	if x.dl != nil {
		fmt.Fprintf(w, "eflora_nsd_downlink_queued_total %d\n", x.dl.Queued)
		fmt.Fprintf(w, "eflora_nsd_downlink_sent_total %d\n", x.dl.Sent)
		fmt.Fprintf(w, "eflora_nsd_downlink_acked_total %d\n", x.dl.Acked)
		fmt.Fprintf(w, "eflora_nsd_downlink_failed_total %d\n", x.dl.Failed)
		fmt.Fprintf(w, "eflora_nsd_downlink_retried_total %d\n", x.dl.Retried)
		fmt.Fprintf(w, "eflora_nsd_downlink_expired_total %d\n", x.dl.Expired)
		fmt.Fprintf(w, "eflora_nsd_downlink_noroute_total %d\n", x.dl.NoRoute)
		fmt.Fprintf(w, "eflora_nsd_downlink_dutyblocked_total %d\n", x.dl.DutyBlocked)
		fmt.Fprintf(w, "eflora_nsd_downlink_encode_errors_total %d\n", x.dlEncodeErr)
		fmt.Fprintf(w, "eflora_nsd_gateway_routes %d\n", x.routes)
		for _, e := range x.ackErrs {
			fmt.Fprintf(w, "eflora_nsd_txack_total{gateway=\"%x\",error=%q} %d\n", e.EUI, e.Error, e.Count)
		}
	}
	if x.ans != nil {
		fmt.Fprintf(w, "eflora_nsd_linkadr_sent_total %d\n", x.ans.Sent)
		fmt.Fprintf(w, "eflora_nsd_linkadr_applied_total %d\n", x.ans.Applied)
		fmt.Fprintf(w, "eflora_nsd_linkadr_rejected_total %d\n", x.ans.Rejected)
		fmt.Fprintf(w, "eflora_nsd_linkadr_unsolicited_total %d\n", x.ans.Unsolicited)
	}
	if x.ss != nil {
		fmt.Fprintf(w, "eflora_nsd_state_wal_seq %d\n", x.ss.WALSeq)
		fmt.Fprintf(w, "eflora_nsd_state_wal_appends_total %d\n", x.ss.WALAppends)
		fmt.Fprintf(w, "eflora_nsd_state_wal_bytes_total %d\n", x.ss.WALBytes)
		fmt.Fprintf(w, "eflora_nsd_state_wal_fsyncs_total %d\n", x.ss.WALFsyncs)
		fmt.Fprintf(w, "eflora_nsd_state_wal_lag_records %d\n", x.ss.WALLagRecords)
		for _, q := range []float64{0.5, 0.99} {
			if lat, ok := x.ss.FsyncSeconds.Quantile(q); ok {
				fmt.Fprintf(w, "eflora_nsd_state_fsync_seconds{quantile=%q} %.9f\n", fmt.Sprintf("%g", q), lat.Seconds())
			}
		}
		fmt.Fprintf(w, "eflora_nsd_state_snapshots_total %d\n", x.ss.Snapshots)
		fmt.Fprintf(w, "eflora_nsd_state_snapshot_bytes %d\n", x.ss.SnapshotBytes)
		fmt.Fprintf(w, "eflora_nsd_state_snapshot_seconds %.9f\n", x.ss.SnapshotSeconds)
		fmt.Fprintf(w, "eflora_nsd_state_recovery_replayed_total %d\n", x.ss.RecoveryReplayed)
		fmt.Fprintf(w, "eflora_nsd_state_recovery_snapshots_skipped_total %d\n", x.ss.RecoverySnapshotsSkipped)
		fmt.Fprintf(w, "eflora_nsd_state_recovery_discarded_bytes_total %d\n", x.ss.RecoveryDiscardedBytes)
	}
	for k, depth := range pool.ShardDepths() {
		fmt.Fprintf(w, "eflora_nsd_shard_depth{shard=\"%d\"} %d\n", k, depth)
	}
	for k, pending := range pool.PendingCounts() {
		fmt.Fprintf(w, "eflora_nsd_shard_pending{shard=\"%d\"} %d\n", k, pending)
	}
}

// exportReplayState assembles a crash-drill rig's durable state the same
// way the daemon's exportState does (replay mode has no downlink frame
// counters). The envelope fields stay zero; they are excluded from the
// digest anyway.
func exportReplayState(pool *ingest.Pool, tracker *ingest.Tracker, realloc *ingest.Reallocator) *statestore.State {
	return &statestore.State{
		UplinkCount: uint64(pool.Counters().Uplinks),
		Pool:        pool.ExportState(),
		Tracker:     tracker.ExportState(),
		Alloc:       realloc.Allocation(),
		Reassigned:  uint64(realloc.Reassigned()),
	}
}

// runCrashDrill proves the durability contract end to end, inside one
// process: run the trace uninterrupted as the oracle; run it again but
// persist a snapshot plus WAL tail at the cut and abandon the serving
// state the way a crash would; recover into a fresh pool from disk alone;
// finish the trace; and require the final counters and the per-device
// state digest to be bit-exact against the oracle. Both runs use the same
// global flush schedule and control-loop times, so any divergence is the
// durability path's fault.
func runCrashDrill(cfg config, netw *core.Network, a model.Allocation, rt *ingest.Replay, out io.Writer) error {
	n := len(rt.Uplinks)
	cut := int(cfg.crashAt * float64(n))
	if cut <= 0 || cut >= n {
		return fmt.Errorf("crash drill: -crash-at %g cuts at uplink %d of %d", cfg.crashAt, cut, n)
	}
	reallocCfg := ingest.ReallocConfig{
		SNRMarginDB: cfg.snrMarginDB,
		MinPRR:      cfg.minPRR,
		MinFrames:   cfg.minFrames,
	}
	midS := rt.SimTimeS * cfg.crashAt

	newRig := func() (*ingest.Pool, *ingest.Tracker) {
		tracker := ingest.NewTracker(0)
		pool := ingest.NewPool(rt.Devices, ingest.PoolConfig{
			Shards:       cfg.shards,
			QueueDepth:   cfg.queueDepth,
			DedupWindowS: cfg.dedupWindowS,
			RetainCap:    cfg.retainCap,
			OnDelivery:   func(_ int, del netserver.Delivery) { tracker.Observe(del) },
		})
		return pool, tracker
	}
	newRealloc := func(tracker *ingest.Tracker, seed model.Allocation) (*ingest.Reallocator, error) {
		inc, err := alloc.NewIncremental(netw.Net, netw.Params, seed, alloc.Options{})
		if err != nil {
			return nil, err
		}
		return ingest.NewReallocator(inc, tracker, reallocCfg), nil
	}
	dispatch := func(pool *ingest.Pool, from, to int) {
		for i := from; i < to; i++ {
			pool.Dispatch(rt.Uplinks[i])
			if i&0x0FFF == 0x0FFF {
				pool.FlushExpiredVirtual()
			}
		}
		pool.Drain()
	}

	// Phase 1: the uninterrupted oracle, with the same mid-trace control
	// step the crash run will take.
	oPool, oTracker := newRig()
	oRealloc, err := newRealloc(oTracker, a)
	if err != nil {
		return err
	}
	oPool.Start()
	dispatch(oPool, 0, cut)
	if _, err := oRealloc.Step(midS); err != nil {
		return err
	}
	dispatch(oPool, cut, n)
	oPool.Flush()
	if _, err := oRealloc.Step(rt.SimTimeS); err != nil {
		return err
	}
	oracle := exportReplayState(oPool, oTracker, oRealloc)
	oracleCounters := oPool.Counters()
	oPool.Close()

	// Phase 2: the crash run. Snapshot BEFORE the control step so the step's
	// delta lands only in the WAL — recovery must replay it, not find it.
	store, err := statestore.Open(cfg.stateDir, storeOptions(cfg))
	if err != nil {
		return err
	}
	if pre, err := store.Recover(); err != nil {
		return err
	} else if pre.Snapshot != nil || len(pre.Tail) > 0 {
		return fmt.Errorf("crash drill: -state-dir %s already holds state; use an empty directory", cfg.stateDir)
	}
	cPool, cTracker := newRig()
	cRealloc, err := newRealloc(cTracker, a)
	if err != nil {
		return err
	}
	cPool.Start()
	dispatch(cPool, 0, cut)
	snap := exportReplayState(cPool, cTracker, cRealloc)
	snap.Seq = store.NextSeq() - 1
	snap.TakenAtS = midS
	if err := store.WriteSnapshot(snap); err != nil {
		return err
	}
	midDelta, err := cRealloc.Step(midS)
	if err != nil {
		return err
	}
	walRecords := 0
	if midDelta != nil {
		if _, err := store.AppendSync(midDelta, midS); err != nil {
			return err
		}
		walRecords++
	}
	// Crash: stop the workers and walk away. No final snapshot, no clean
	// store close — everything after the snapshot lives only in the WAL.
	cPool.Close()
	fmt.Fprintf(out, "crash drill: crashed after %d/%d uplinks (snapshot + %d WAL record(s) on disk)\n",
		cut, n, walRecords)

	// Phase 3: restart from disk alone and finish the trace.
	store2, err := statestore.Open(cfg.stateDir, storeOptions(cfg))
	if err != nil {
		return err
	}
	rec, err := store2.Recover()
	if err != nil {
		return err
	}
	if rec.Snapshot == nil {
		return fmt.Errorf("crash drill: no snapshot recovered from %s", cfg.stateDir)
	}
	rPool, rTracker := newRig()
	rTracker.ImportState(rec.Snapshot.Tracker)
	a2 := rec.Snapshot.Alloc.Clone()
	moves := rec.Snapshot.Reassigned + applyWALTail(rec.Tail, &a2, rTracker)
	if err := rPool.ImportState(rec.Snapshot.Pool); err != nil {
		return err
	}
	rRealloc, err := newRealloc(rTracker, a2)
	if err != nil {
		return err
	}
	rRealloc.RestoreReassigned(int(moves))
	m := store2.Metrics()
	fmt.Fprintf(out, "crash drill: recovered snapshot seq %d, replayed %d WAL record(s), %d torn byte(s) discarded\n",
		rec.Snapshot.Seq, m.RecoveryReplayed, m.RecoveryDiscardedBytes)
	rPool.Start()
	dispatch(rPool, cut, n)
	rPool.Flush()
	if _, err := rRealloc.Step(rt.SimTimeS); err != nil {
		return err
	}
	got := exportReplayState(rPool, rTracker, rRealloc)
	gotCounters := rPool.Counters()
	rPool.Close()
	if err := store2.Close(); err != nil {
		return err
	}

	if gotCounters != oracleCounters {
		return fmt.Errorf("crash drill: RECOVERY FAILED: counters %+v diverge from oracle %+v", gotCounters, oracleCounters)
	}
	gd, od := got.Digest(), oracle.Digest()
	if gd != od {
		return fmt.Errorf("crash drill: RECOVERY FAILED: state digest %s != oracle %s", gd, od)
	}
	fmt.Fprintf(out, "RECOVERY OK: post-crash counters and per-device state digest bit-exact vs no-crash oracle (%s)\n", od[:16])
	return nil
}

// replayGatewayEUI synthesizes a stable forwarder identity per gateway
// index for the load generator's downlink exchange.
func replayGatewayEUI(gw int) [8]byte {
	return [8]byte{0xEF, 0x10, 0x5A, 0, 0, 0, byte(gw >> 8), byte(gw)}
}

// runDownlinkExchange closes the replay loop: every reassigned device
// sends one more heartbeat on its OLD settings, the scheduler answers
// with a LinkADRReq PULL_RESP into the device's RX1/RX2 window, the
// simulated gateway judges and transmits it (blocking its own receiver
// for the airtime), and the simulated device applies the command only if
// the downlink actually lands — then acknowledges it with a LinkADRAns
// MAC uplink that runs the full FPort-0 codec roundtrip into r.
func runDownlinkExchange(cfg config, netw *core.Network, a model.Allocation, rt *ingest.Replay, delta *scenario.Delta, r *ingest.Reallocator, out io.Writer) error {
	plan := netw.Params.Plan
	sched := downlink.NewScheduler(downlink.Config{
		RX1DelayS:  cfg.rx1DelayS,
		RX2FreqMHz: cfg.rx2FreqMHz,
		RX2Datr:    cfg.rx2Datr,
		CodingRate: netw.Params.CodingRate,
		DutyCycle:  cfg.dutyCycle,
	})
	scfg := sched.Config()

	validFreqs := make([]float64, 0, plan.NumChannels()+1)
	for _, ch := range plan.Uplink {
		validFreqs = append(validFreqs, ch.CenterHz/1e6)
	}
	validFreqs = append(validFreqs, scfg.RX2FreqMHz)
	engines := make([]engine.Gateway, netw.Net.G())
	sims := make([]downlink.GatewaySim, netw.Net.G())
	for k := range engines {
		engines[k].Reset(engine.Config{
			Capacity:   netw.Params.GatewayCapacity,
			HalfDuplex: true,
			NoiseMW:    lora.DBmToMilliwatts(netw.Params.NoiseDBm),
			Thresholds: engine.NewThresholds(),
		})
		sims[k] = downlink.GatewaySim{Eng: &engines[k], ValidFreqMHz: validFreqs}
	}

	var applied, unheard, unsent, probes, blocked int
	windows := [3]int{}
	firstApplied := ""
	probeTok := 0
	for k, c := range delta.Changes {
		i := c.Device
		last := rt.LastUp[i]
		if last.Gateway < 0 {
			unheard++
			continue
		}
		// One more deterministic heartbeat per device on its OLD radio
		// settings — the uplink whose Class-A windows carry the command.
		hbS := rt.SimTimeS + 0.25 + 0.5*float64(k)
		ch := plan.Uplink[a.Channel[i]]
		upFreqMHz := ch.CenterHz / 1e6
		upDatr := ingest.Datr(a.SF[i], ch.BandwidthHz)
		dev := rt.Devices[i]
		sched.ObserveUplink(downlink.Uplink{
			DevAddr: dev.DevAddr,
			Gateway: last.Gateway,
			EUI:     replayGatewayEUI(last.Gateway),
			Tmst:    uint64(hbS * 1e6),
			FreqMHz: upFreqMHz,
			Datr:    upDatr,
			AtS:     hbS,
		}, hbS)

		phy, err := buildLinkADRPhy(plan, dev.Keys, dev.DevAddr, 0, c)
		if err != nil {
			return fmt.Errorf("downlink: encode device %d: %w", i, err)
		}
		if r != nil {
			r.NoteCommandSent(dev.DevAddr)
		}
		frame := sched.Enqueue(dev.DevAddr, phy, hbS+0.05)
		if frame == nil {
			unsent++ // both windows duty-blocked; stays queued
			continue
		}
		sim := downlink.DeviceSim{
			DevAddr:        dev.DevAddr,
			Keys:           dev.Keys,
			Plan:           plan,
			RX1DelayS:      scfg.RX1DelayS,
			RX2DelayS:      scfg.RX2DelayS,
			RX2FreqMHz:     scfg.RX2FreqMHz,
			RX2Datr:        scfg.RX2Datr,
			LastUplinkEndS: hbS,
			UplinkFreqMHz:  upFreqMHz,
			UplinkDatr:     upDatr,
			SF:             a.SF[i],
			TPdBm:          a.TPdBm[i],
			Channel:        a.Channel[i],
		}
		// At most two attempts by construction: the RX2 retry of a failed
		// RX1 is the scheduler's only second chance.
		for attempt := 0; frame != nil && attempt < 2; attempt++ {
			startS, endS, errStr := sims[frame.Gateway].Transmit(&frame.TXPK, hbS+0.05)
			retry := sched.OnTxAck(frame.EUI, frame.Token, errStr, hbS+0.1)
			if errStr == ingest.TxErrNone {
				// The gateway is deaf while its downlink is in the air:
				// probe the half-duplex window with a strong uplink.
				probes++
				probeTok++
				mid := (startS + endS) / 2
				if v := engines[frame.Gateway].Arrive(probeTok, i, a.SF[i], a.Channel[i],
					mid, endS+0.01, lora.DBmToMilliwatts(-60)); v == engine.VerdictBlocked {
					blocked++
				}
				w, err := sim.Receive(&frame.TXPK, startS)
				if err != nil {
					return fmt.Errorf("downlink: device %d: %w", i, err)
				}
				if w > 0 && sim.AppliedCount > 0 {
					applied++
					windows[w]++
					if firstApplied == "" {
						firstApplied = fmt.Sprintf(
							"downlink: device %d applied SF%d->SF%d TP %gdBm ch %d via RX%d at %.2fs — only after the PULL_RESP landed\n",
							i, a.SF[i], sim.SF, sim.TPdBm, sim.Channel, w, sim.AppliedAtS)
					}
					// The device acknowledges on its next uplink: a LinkADRAns
					// on FPort 0, through the real codec both directions.
					if r != nil {
						ansPhy, err := lorawan.Encode(lorawan.Frame{
							MType:   lorawan.UnconfirmedDataUp,
							DevAddr: dev.DevAddr,
							ADR:     true,
							FCnt:    uint32(cfg.packets) + 1,
							FPort:   0,
							Payload: lorawan.LinkADRAns{ChannelACK: true, DataRateACK: true, PowerACK: true}.Encode(),
						}, dev.Keys)
						if err != nil {
							return fmt.Errorf("downlink: device %d ans encode: %w", i, err)
						}
						fr, err := lorawan.Decode(ansPhy, dev.Keys, 0)
						if err != nil {
							return fmt.Errorf("downlink: device %d ans decode: %w", i, err)
						}
						ans, err := lorawan.ParseLinkADRAns(fr.Payload)
						if err != nil {
							return fmt.Errorf("downlink: device %d ans parse: %w", i, err)
						}
						r.NoteAns(dev.DevAddr, ans)
					}
				}
			}
			frame = retry
		}
	}
	dl := sched.Counters()
	fmt.Fprintf(out, "downlink: %d command(s): %d sent, %d acked, %d applied (RX1 %d, RX2 %d), %d retried, %d duty-blocked, %d still queued, %d unheard\n",
		len(delta.Changes), dl.Sent, dl.Acked, applied, windows[1], windows[2], dl.Retried, dl.DutyBlocked, unsent, unheard)
	if firstApplied != "" {
		fmt.Fprint(out, firstApplied)
	}
	fmt.Fprintf(out, "downlink: half-duplex gateways blocked %d/%d probe uplink(s) during their own TX\n", blocked, probes)
	if r != nil {
		ac := r.Ans()
		fmt.Fprintf(out, "downlink: LinkADRAns %d sent, %d applied, %d rejected, %d unsolicited\n",
			ac.Sent, ac.Applied, ac.Rejected, ac.Unsolicited)
	}
	return nil
}

func ratio(num, den int) string {
	if den == 0 {
		return "0"
	}
	return fmt.Sprintf("%.6f", float64(num)/float64(den))
}

func (d *daemon) writeSummary(out io.Writer) {
	c := d.pool.Counters()
	fmt.Fprintf(out, "served %d uplinks (%d delivered, %d duplicates, %d rejected, %d parse errors), %d gateways, %d devices reassigned\n",
		c.Uplinks, c.Delivered, c.Duplicates, c.Rejected, d.parseErr.Load(), d.gwCount.Load(), d.reallocated())
	dl := d.sched.Counters()
	fmt.Fprintf(out, "downlink: %d queued, %d sent, %d acked, %d failed (%d retried, %d expired, %d unroutable, %d duty-blocked), %d routes\n",
		dl.Queued, dl.Sent, dl.Acked, dl.Failed, dl.Retried, dl.Expired, dl.NoRoute, dl.DutyBlocked, d.routes.Len())
}

// runReplay is the load-generator mode: synthesize gateway traffic from
// the scenario + simulator, push it through the sharded pool at full
// speed, report throughput/latency/accounting, and optionally verify the
// counters bit-exactly against a sequential single-shard ingest.
func runReplay(cfg config, netw *core.Network, a model.Allocation, out io.Writer) error {
	fmt.Fprintf(out, "replay: simulating %d devices x %d packets (seed %d)...\n",
		netw.Net.N(), cfg.packets, cfg.seed)
	rt, err := ingest.BuildReplay(netw.Net, netw.Params, a, ingest.ReplayConfig{
		Packets:      cfg.packets,
		Seed:         cfg.seed,
		DedupWindowS: cfg.dedupWindowS,
		Parallelism:  cfg.parallelism,
		DriftDevices: cfg.driftDevices,
		DriftSNRdB:   cfg.driftSNRdB,
	})
	if err != nil {
		return err
	}
	if cfg.crashAt > 0 {
		return runCrashDrill(cfg, netw, a, rt, out)
	}
	tracker := ingest.NewTracker(0)
	pool := ingest.NewPool(rt.Devices, ingest.PoolConfig{
		Shards:       cfg.shards,
		QueueDepth:   cfg.queueDepth,
		DedupWindowS: cfg.dedupWindowS,
		RetainCap:    cfg.retainCap,
		OnDelivery:   func(_ int, del netserver.Delivery) { tracker.Observe(del) },
	})
	pool.Start()

	// Optional metrics endpoint during the replay.
	var httpSrv *http.Server
	if cfg.httpAddr != "" {
		lis, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return err
		}
		start := time.Now()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			writeMetrics(w, pool, metricsExtra{
				uptimeS:  time.Since(start).Seconds(),
				gateways: netw.Net.G(),
				tracked:  tracker.Len(),
			})
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
		httpSrv = &http.Server{Handler: mux}
		go func() { _ = httpSrv.Serve(lis) }()
		fmt.Fprintf(out, "replay: metrics on %s\n", lis.Addr())
	}

	t0 := time.Now()
	for i, up := range rt.Uplinks {
		pool.Dispatch(up)
		if i&0x0FFF == 0x0FFF {
			pool.FlushExpiredVirtual() // the clock flusher, in virtual time
		}
	}
	pool.Drain()
	pool.Flush()
	wall := time.Since(t0)
	got := pool.Counters()

	rate := float64(got.Uplinks) / wall.Seconds()
	fmt.Fprintf(out, "replay: %d uplinks in %v (%.0f uplinks/sec, %d shards)\n",
		got.Uplinks, wall.Round(time.Microsecond), rate, cfg.shards)
	for _, q := range []float64{0.5, 0.99} {
		if lat, ok := pool.LatencyQuantile(q); ok {
			fmt.Fprintf(out, "replay: p%.0f ingest latency <= %v\n", q*100, lat)
		}
	}
	fmt.Fprintf(out, "replay: delivered %d, duplicates %d (dedup hit rate %s), rejected %d\n",
		got.Delivered, got.Duplicates, ratio(got.Duplicates, got.Uplinks), got.Rejected)
	fmt.Fprintf(out, "replay: tracked %d devices with rolling SNR/PRR\n", tracker.Len())

	if got != rt.Expected {
		return fmt.Errorf("replay counters %+v diverge from generator expectation %+v", got, rt.Expected)
	}

	// One control-loop pass over the observed statistics.
	var delta *scenario.Delta
	var r *ingest.Reallocator
	if cfg.reallocEvery > 0 {
		inc, err := alloc.NewIncremental(netw.Net, netw.Params, a, alloc.Options{})
		if err != nil {
			return err
		}
		r = ingest.NewReallocator(inc, tracker, ingest.ReallocConfig{
			SNRMarginDB: cfg.snrMarginDB,
			MinPRR:      cfg.minPRR,
			MinFrames:   cfg.minFrames,
		})
		if delta, err = r.Step(rt.SimTimeS); err != nil {
			return err
		}
		moved := 0
		if delta != nil {
			moved = len(delta.Changes)
			if cfg.deltasPath != "" {
				f, err := os.OpenFile(cfg.deltasPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return err
				}
				err = scenario.AppendDelta(f, delta)
				f.Close()
				if err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(out, "replay: re-allocation pass moved %d device(s)\n", moved)
	}

	// Close the loop: deliver the reassignments as Class-A downlinks to
	// the simulated devices and report what actually landed.
	if delta != nil && len(delta.Changes) > 0 {
		if err := runDownlinkExchange(cfg, netw, a, rt, delta, r, out); err != nil {
			return err
		}
	}

	pool.Close()
	if httpSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = httpSrv.Shutdown(sctx)
		cancel()
	}

	if cfg.verify {
		seq := ingest.NewPool(rt.Devices, ingest.PoolConfig{
			Shards:       1,
			QueueDepth:   cfg.queueDepth,
			DedupWindowS: cfg.dedupWindowS,
		})
		seq.Start()
		for _, up := range rt.Uplinks {
			seq.Dispatch(up)
		}
		seq.Drain()
		seq.Flush()
		seq.Close()
		if sc := seq.Counters(); sc != got {
			return fmt.Errorf("VERIFY FAILED: single-shard counters %+v != %d-shard counters %+v", sc, cfg.shards, got)
		}
		fmt.Fprintf(out, "VERIFY OK: %d-shard counters bit-exact vs sequential single-shard run\n", cfg.shards)
	}
	// Deterministic shard-occupancy report (all zero after drain, but the
	// shape documents the sharding).
	depths := pool.ShardDepths()
	sort.Ints(depths)
	fmt.Fprintf(out, "replay: final shard depths %v\n", depths)
	return nil
}
