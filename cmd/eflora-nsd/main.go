// Command eflora-nsd is the live network-server daemon: it ingests
// gateway uplinks over the Semtech UDP packet-forwarder protocol, fans
// them across a DevAddr-sharded pool of network servers, flushes dedup
// windows on the clock, tracks rolling per-device SNR/PRR statistics,
// and periodically hands drifting devices to the incremental allocator —
// emitting the resulting (SF, TP, channel) moves as scenario-file deltas.
// Operational counters are served on HTTP /metrics (+/healthz).
//
// Usage (live):
//
//	eflora-nsd -scenario net.json -listen :1700 -http :8080 -deltas deltas.jsonl
//
// Usage (load generator / self-benchmark):
//
//	eflora-nsd -replay -scenario net.json -packets 20 -shards 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/ingest"
	"eflora/internal/model"
	"eflora/internal/netserver"
	"eflora/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eflora-nsd:", err)
		os.Exit(1)
	}
}

type config struct {
	scenarioPath string
	listenAddr   string
	httpAddr     string
	shards       int
	queueDepth   int
	dedupWindowS float64
	retainCap    int
	flushEvery   time.Duration
	reallocEvery time.Duration
	snrMarginDB  float64
	minPRR       float64
	minFrames    int
	deltasPath   string
	duration     time.Duration

	replay      bool
	packets     int
	seed        uint64
	verify      bool
	allocator   string
	parallelism int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eflora-nsd", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.scenarioPath, "scenario", "", "scenario file with the deployment (and ideally an allocation)")
	fs.StringVar(&cfg.listenAddr, "listen", ":1700", "UDP address for the Semtech packet-forwarder protocol")
	fs.StringVar(&cfg.httpAddr, "http", ":8080", "HTTP address for /metrics and /healthz (empty = disabled)")
	fs.IntVar(&cfg.shards, "shards", 8, "DevAddr shards (independent network-server locks)")
	fs.IntVar(&cfg.queueDepth, "queue", 1024, "per-shard inbox depth; a full inbox backpressures the reader")
	fs.Float64Var(&cfg.dedupWindowS, "dedup-window", 0.2, "dedup window in seconds")
	fs.IntVar(&cfg.retainCap, "retain", 4096, "per-shard delivery backlog cap (ring); 0 = unbounded")
	fs.DurationVar(&cfg.flushEvery, "flush-every", 100*time.Millisecond, "clock-driven dedup flush interval")
	fs.DurationVar(&cfg.reallocEvery, "realloc-every", 30*time.Second, "online re-allocation interval (0 = disabled)")
	fs.Float64Var(&cfg.snrMarginDB, "snr-margin", 1, "SNR headroom above the SF demodulation floor before a device counts as drifting")
	fs.Float64Var(&cfg.minPRR, "min-prr", 0.7, "packet-reception-ratio floor before a device counts as drifting")
	fs.IntVar(&cfg.minFrames, "min-frames", 8, "deliveries required before trusting a device's statistics")
	fs.StringVar(&cfg.deltasPath, "deltas", "", "append re-allocation deltas to this JSONL file")
	fs.DurationVar(&cfg.duration, "duration", 0, "stop the live daemon after this long (0 = run until signal)")
	fs.BoolVar(&cfg.replay, "replay", false, "load-generator mode: synthesize gateway traffic from the scenario + simulator and measure ingest throughput")
	fs.IntVar(&cfg.packets, "packets", 20, "with -replay: simulated reporting periods per device")
	fs.Uint64Var(&cfg.seed, "seed", 1, "with -replay: simulation / traffic seed")
	fs.BoolVar(&cfg.verify, "verify", true, "with -replay: re-ingest sequentially on one shard and require bit-exact counters")
	fs.StringVar(&cfg.allocator, "allocator", "eflora", "allocator used when the scenario file carries no allocation")
	fs.IntVar(&cfg.parallelism, "parallel", 0, "simulator worker goroutines in -replay (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.scenarioPath == "" {
		return fmt.Errorf("-scenario is required")
	}
	if cfg.shards <= 0 {
		return fmt.Errorf("-shards must be positive")
	}

	netw, a, err := loadScenario(cfg)
	if err != nil {
		return err
	}
	if cfg.replay {
		return runReplay(cfg, netw, a, out)
	}
	d, err := newDaemon(cfg, netw, a)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.duration)
		defer cancel()
	}
	fmt.Fprintf(out, "eflora-nsd: %d devices, %d shards, udp %s", netw.Net.N(), cfg.shards, d.UDPAddr())
	if cfg.httpAddr != "" {
		fmt.Fprintf(out, ", http %s", d.HTTPAddr())
	}
	fmt.Fprintln(out)
	err = d.Serve(ctx)
	d.writeSummary(out)
	return err
}

// loadScenario reads the deployment and its allocation, computing one
// with the configured allocator when the file has none.
func loadScenario(cfg config) (*core.Network, model.Allocation, error) {
	f, err := os.Open(cfg.scenarioPath)
	if err != nil {
		return nil, model.Allocation{}, err
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		return nil, model.Allocation{}, err
	}
	netw := &core.Network{Net: sc.Network(), Params: model.DefaultParams(), Seed: cfg.seed}
	a, ok := sc.AllocationOf()
	if !ok {
		if a, err = netw.Allocate(cfg.allocator, alloc.Options{Parallelism: cfg.parallelism}); err != nil {
			return nil, model.Allocation{}, err
		}
	}
	return netw, a, nil
}

// daemon is the live serving path.
type daemon struct {
	cfg      config
	start    time.Time
	pool     *ingest.Pool
	tracker  *ingest.Tracker
	realloc  *ingest.Reallocator
	frontend *ingest.Frontend

	udp      *net.UDPConn
	httpLis  net.Listener
	httpSrv  *http.Server
	gateways sync.Map // [8]byte EUI -> int index
	gwCount  atomic.Int64
	parseErr atomic.Int64

	deltaMu   sync.Mutex
	deltaFile *os.File
}

func newDaemon(cfg config, netw *core.Network, a model.Allocation) (*daemon, error) {
	d := &daemon{cfg: cfg, start: time.Now(), tracker: ingest.NewTracker(0)}
	// The receiver frontend runs the same engine.Gateway physics as the
	// simulators over the live RXPK stream, exposing RF-contention
	// counters the dedup/delivery pipeline cannot see.
	d.frontend = ingest.NewFrontend(ingest.FrontendConfig{
		Plan:       netw.Params.Plan,
		NoiseDBm:   netw.Params.NoiseDBm,
		Capacity:   netw.Params.GatewayCapacity,
		CodingRate: netw.Params.CodingRate,
	})
	d.pool = ingest.NewPool(ingest.ProvisionDevices(netw.Net.N()), ingest.PoolConfig{
		Shards:       cfg.shards,
		QueueDepth:   cfg.queueDepth,
		DedupWindowS: cfg.dedupWindowS,
		RetainCap:    cfg.retainCap,
		OnDelivery:   func(_ int, del netserver.Delivery) { d.tracker.Observe(del) },
	})
	if cfg.reallocEvery > 0 {
		inc, err := alloc.NewIncremental(netw.Net, netw.Params, a, alloc.Options{})
		if err != nil {
			return nil, err
		}
		d.realloc = ingest.NewReallocator(inc, d.tracker, ingest.ReallocConfig{
			SNRMarginDB: cfg.snrMarginDB,
			MinPRR:      cfg.minPRR,
			MinFrames:   cfg.minFrames,
		})
	}
	if cfg.deltasPath != "" {
		f, err := os.OpenFile(cfg.deltasPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		d.deltaFile = f
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.listenAddr)
	if err != nil {
		return nil, err
	}
	if d.udp, err = net.ListenUDP("udp", udpAddr); err != nil {
		return nil, err
	}
	if cfg.httpAddr != "" {
		if d.httpLis, err = net.Listen("tcp", cfg.httpAddr); err != nil {
			d.udp.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", d.handleMetrics)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		d.httpSrv = &http.Server{Handler: mux}
	}
	return d, nil
}

// UDPAddr and HTTPAddr report the bound addresses (ephemeral-port safe).
func (d *daemon) UDPAddr() string { return d.udp.LocalAddr().String() }
func (d *daemon) HTTPAddr() string {
	if d.httpLis == nil {
		return ""
	}
	return d.httpLis.Addr().String()
}

// nowS is the server timescale: seconds since daemon start.
func (d *daemon) nowS() float64 { return time.Since(d.start).Seconds() }

// Serve runs until ctx is done.
func (d *daemon) Serve(ctx context.Context) error {
	d.pool.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); d.udpLoop() }()
	if d.httpSrv != nil {
		wg.Add(1)
		go func() { defer wg.Done(); _ = d.httpSrv.Serve(d.httpLis) }()
	}
	flush := time.NewTicker(d.cfg.flushEvery)
	defer flush.Stop()
	var reallocC <-chan time.Time
	if d.realloc != nil && d.cfg.reallocEvery > 0 {
		t := time.NewTicker(d.cfg.reallocEvery)
		defer t.Stop()
		reallocC = t.C
	}
	for {
		select {
		case <-ctx.Done():
			d.shutdown()
			wg.Wait()
			return nil
		case <-flush.C:
			now := d.nowS()
			d.pool.FlushExpired(now)
			d.frontend.Advance(now)
		case <-reallocC:
			if err := d.reallocStep(); err != nil {
				d.shutdown()
				wg.Wait()
				return err
			}
		}
	}
}

func (d *daemon) shutdown() {
	d.udp.Close()
	if d.httpSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = d.httpSrv.Shutdown(sctx)
		cancel()
	}
	d.pool.Drain()
	d.pool.Flush()
	d.pool.Close()
	if d.realloc != nil {
		_ = d.reallocStep() // final pass so observed drift is not lost
	}
	if d.deltaFile != nil {
		d.deltaFile.Close()
	}
}

// reallocStep runs one control-loop pass and appends any delta.
func (d *daemon) reallocStep() error {
	delta, err := d.realloc.Step(d.nowS())
	if err != nil || delta == nil {
		return err
	}
	if d.deltaFile == nil {
		return nil
	}
	d.deltaMu.Lock()
	defer d.deltaMu.Unlock()
	return scenario.AppendDelta(d.deltaFile, delta)
}

// gatewayIndex assigns each gateway EUI a dense index on first sight.
func (d *daemon) gatewayIndex(eui [8]byte) int {
	if v, ok := d.gateways.Load(eui); ok {
		return v.(int)
	}
	idx := int(d.gwCount.Add(1)) - 1
	if v, loaded := d.gateways.LoadOrStore(eui, idx); loaded {
		return v.(int)
	}
	return idx
}

// udpLoop is the packet-forwarder ingress: decode, ack, dispatch.
func (d *daemon) udpLoop() {
	buf := make([]byte, 65536)
	for {
		n, addr, err := d.udp.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		pkt, err := ingest.DecodePacket(buf[:n])
		if err != nil {
			d.parseErr.Add(1)
			continue
		}
		if ack, ok := pkt.Ack(); ok {
			_, _ = d.udp.WriteToUDP(ack, addr)
		}
		if pkt.Kind != ingest.PushData {
			continue
		}
		gw := d.gatewayIndex(pkt.EUI)
		now := d.nowS()
		for i := range pkt.RXPK {
			rx := &pkt.RXPK[i]
			if rx.Modu != "" && rx.Modu != "LORA" {
				continue // FSK traffic
			}
			// Even a CRC-failed frame was RF on the air that occupied a
			// demodulator and interfered, so it feeds the receiver
			// frontend before the pipeline drops it.
			d.frontend.Observe(gw, rx, now)
			if rx.Stat < 0 {
				continue // CRC-failed
			}
			phy, err := rx.Payload()
			if err != nil {
				d.parseErr.Add(1)
				continue
			}
			d.pool.Dispatch(netserver.Uplink{
				Gateway:     gw,
				ReceivedAtS: now,
				RSSIdBm:     rx.RSSI,
				SNRdB:       rx.LSNR,
				PHYPayload:  phy,
			})
		}
	}
}

// handleMetrics renders the Prometheus-style text counters.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rf := d.frontend.Counters()
	writeMetrics(w, d.pool, metricsExtra{
		uptimeS:     d.nowS(),
		gateways:    int(d.gwCount.Load()),
		parseErrors: d.parseErr.Load(),
		tracked:     d.tracker.Len(),
		reallocated: d.reallocated(),
		rf:          &rf,
	})
}

func (d *daemon) reallocated() int {
	if d.realloc == nil {
		return 0
	}
	return d.realloc.Reassigned()
}

type metricsExtra struct {
	uptimeS     float64
	gateways    int
	parseErrors int64
	tracked     int
	reallocated int
	// rf is the receiver frontend's RF-contention accounting (live mode
	// only; replay traffic has no RXPK stream to observe).
	rf *ingest.FrontendCounters
}

// writeMetrics is shared between the live /metrics endpoint and the
// replay-mode metrics server.
func writeMetrics(w io.Writer, pool *ingest.Pool, x metricsExtra) {
	c := pool.Counters()
	fmt.Fprintf(w, "eflora_nsd_uptime_seconds %.3f\n", x.uptimeS)
	fmt.Fprintf(w, "eflora_nsd_uplinks_total %d\n", c.Uplinks)
	fmt.Fprintf(w, "eflora_nsd_deliveries_total %d\n", c.Delivered)
	fmt.Fprintf(w, "eflora_nsd_duplicates_total %d\n", c.Duplicates)
	fmt.Fprintf(w, "eflora_nsd_rejected_total %d\n", c.Rejected)
	fmt.Fprintf(w, "eflora_nsd_parse_errors_total %d\n", x.parseErrors)
	fmt.Fprintf(w, "eflora_nsd_dedup_hit_rate %s\n", ratio(c.Duplicates, c.Uplinks))
	for _, q := range []float64{0.5, 0.99} {
		if lat, ok := pool.LatencyQuantile(q); ok {
			fmt.Fprintf(w, "eflora_nsd_ingest_latency_seconds{quantile=%q} %.9f\n", fmt.Sprintf("%g", q), lat.Seconds())
		}
	}
	fmt.Fprintf(w, "eflora_nsd_gateways %d\n", x.gateways)
	fmt.Fprintf(w, "eflora_nsd_tracked_devices %d\n", x.tracked)
	fmt.Fprintf(w, "eflora_nsd_realloc_devices_total %d\n", x.reallocated)
	if x.rf != nil {
		fmt.Fprintf(w, "eflora_nsd_rf_collision_losses_total %d\n", x.rf.CollisionLosses)
		fmt.Fprintf(w, "eflora_nsd_rf_capacity_drops_total %d\n", x.rf.CapacityDrops)
		fmt.Fprintf(w, "eflora_nsd_rf_sensitivity_misses_total %d\n", x.rf.SensitivityMisses)
		fmt.Fprintf(w, "eflora_nsd_rf_unknown_channel_total %d\n", x.rf.UnknownChannel)
		fmt.Fprintf(w, "eflora_nsd_rf_bad_datr_total %d\n", x.rf.BadDatr)
	}
	for k, depth := range pool.ShardDepths() {
		fmt.Fprintf(w, "eflora_nsd_shard_depth{shard=\"%d\"} %d\n", k, depth)
	}
	for k, pending := range pool.PendingCounts() {
		fmt.Fprintf(w, "eflora_nsd_shard_pending{shard=\"%d\"} %d\n", k, pending)
	}
}

func ratio(num, den int) string {
	if den == 0 {
		return "0"
	}
	return fmt.Sprintf("%.6f", float64(num)/float64(den))
}

func (d *daemon) writeSummary(out io.Writer) {
	c := d.pool.Counters()
	fmt.Fprintf(out, "served %d uplinks (%d delivered, %d duplicates, %d rejected, %d parse errors), %d gateways, %d devices reassigned\n",
		c.Uplinks, c.Delivered, c.Duplicates, c.Rejected, d.parseErr.Load(), d.gwCount.Load(), d.reallocated())
}

// runReplay is the load-generator mode: synthesize gateway traffic from
// the scenario + simulator, push it through the sharded pool at full
// speed, report throughput/latency/accounting, and optionally verify the
// counters bit-exactly against a sequential single-shard ingest.
func runReplay(cfg config, netw *core.Network, a model.Allocation, out io.Writer) error {
	fmt.Fprintf(out, "replay: simulating %d devices x %d packets (seed %d)...\n",
		netw.Net.N(), cfg.packets, cfg.seed)
	rt, err := ingest.BuildReplay(netw.Net, netw.Params, a, ingest.ReplayConfig{
		Packets:      cfg.packets,
		Seed:         cfg.seed,
		DedupWindowS: cfg.dedupWindowS,
		Parallelism:  cfg.parallelism,
	})
	if err != nil {
		return err
	}
	tracker := ingest.NewTracker(0)
	pool := ingest.NewPool(rt.Devices, ingest.PoolConfig{
		Shards:       cfg.shards,
		QueueDepth:   cfg.queueDepth,
		DedupWindowS: cfg.dedupWindowS,
		RetainCap:    cfg.retainCap,
		OnDelivery:   func(_ int, del netserver.Delivery) { tracker.Observe(del) },
	})
	pool.Start()

	// Optional metrics endpoint during the replay.
	var httpSrv *http.Server
	if cfg.httpAddr != "" {
		lis, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return err
		}
		start := time.Now()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			writeMetrics(w, pool, metricsExtra{
				uptimeS:  time.Since(start).Seconds(),
				gateways: netw.Net.G(),
				tracked:  tracker.Len(),
			})
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
		httpSrv = &http.Server{Handler: mux}
		go func() { _ = httpSrv.Serve(lis) }()
		fmt.Fprintf(out, "replay: metrics on %s\n", lis.Addr())
	}

	t0 := time.Now()
	for i, up := range rt.Uplinks {
		pool.Dispatch(up)
		if i&0x0FFF == 0x0FFF {
			pool.FlushExpiredVirtual() // the clock flusher, in virtual time
		}
	}
	pool.Drain()
	pool.Flush()
	wall := time.Since(t0)
	got := pool.Counters()

	rate := float64(got.Uplinks) / wall.Seconds()
	fmt.Fprintf(out, "replay: %d uplinks in %v (%.0f uplinks/sec, %d shards)\n",
		got.Uplinks, wall.Round(time.Microsecond), rate, cfg.shards)
	for _, q := range []float64{0.5, 0.99} {
		if lat, ok := pool.LatencyQuantile(q); ok {
			fmt.Fprintf(out, "replay: p%.0f ingest latency <= %v\n", q*100, lat)
		}
	}
	fmt.Fprintf(out, "replay: delivered %d, duplicates %d (dedup hit rate %s), rejected %d\n",
		got.Delivered, got.Duplicates, ratio(got.Duplicates, got.Uplinks), got.Rejected)
	fmt.Fprintf(out, "replay: tracked %d devices with rolling SNR/PRR\n", tracker.Len())

	if got != rt.Expected {
		return fmt.Errorf("replay counters %+v diverge from generator expectation %+v", got, rt.Expected)
	}

	// One control-loop pass over the observed statistics.
	if cfg.reallocEvery > 0 {
		inc, err := alloc.NewIncremental(netw.Net, netw.Params, a, alloc.Options{})
		if err != nil {
			return err
		}
		r := ingest.NewReallocator(inc, tracker, ingest.ReallocConfig{
			SNRMarginDB: cfg.snrMarginDB,
			MinPRR:      cfg.minPRR,
			MinFrames:   cfg.minFrames,
		})
		delta, err := r.Step(rt.SimTimeS)
		if err != nil {
			return err
		}
		moved := 0
		if delta != nil {
			moved = len(delta.Changes)
			if cfg.deltasPath != "" {
				f, err := os.OpenFile(cfg.deltasPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return err
				}
				err = scenario.AppendDelta(f, delta)
				f.Close()
				if err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(out, "replay: re-allocation pass moved %d device(s)\n", moved)
	}

	pool.Close()
	if httpSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = httpSrv.Shutdown(sctx)
		cancel()
	}

	if cfg.verify {
		seq := ingest.NewPool(rt.Devices, ingest.PoolConfig{
			Shards:       1,
			QueueDepth:   cfg.queueDepth,
			DedupWindowS: cfg.dedupWindowS,
		})
		seq.Start()
		for _, up := range rt.Uplinks {
			seq.Dispatch(up)
		}
		seq.Drain()
		seq.Flush()
		seq.Close()
		if sc := seq.Counters(); sc != got {
			return fmt.Errorf("VERIFY FAILED: single-shard counters %+v != %d-shard counters %+v", sc, cfg.shards, got)
		}
		fmt.Fprintf(out, "VERIFY OK: %d-shard counters bit-exact vs sequential single-shard run\n", cfg.shards)
	}
	// Deterministic shard-occupancy report (all zero after drain, but the
	// shape documents the sharding).
	depths := pool.ShardDepths()
	sort.Ints(depths)
	fmt.Fprintf(out, "replay: final shard depths %v\n", depths)
	return nil
}
