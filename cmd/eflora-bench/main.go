// Command eflora-bench records and compares benchmark runs.
//
// Record mode (the default) shells out to `go test -bench`, parses the
// standard benchmark output and writes a JSON recording in the same schema
// as BENCH_parallel.json:
//
//	eflora-bench -bench 'Sequential|Parallel' -benchtime 3x -o BENCH_sim.json
//
// The -cpu flag is passed through to `go test -cpu`, so one recording can
// hold a per-core scaling curve: go test runs every benchmark once per
// GOMAXPROCS value and suffixes the name with -N (no suffix at 1 proc),
// which the schema stores as separate benchmark entries:
//
//	eflora-bench -bench 'Sequential|Parallel' -cpu 1,2,4 -o BENCH_sim.json
//
// Diff mode compares two recordings benchmark-by-benchmark and exits
// non-zero when any shared benchmark regressed beyond the threshold ratio
// on time, bytes or allocations:
//
//	eflora-bench -diff -threshold 1.3 BENCH_parallel.json BENCH_sim.json
//
// When both recordings carry multi-proc entries for a benchmark family,
// diff mode also compares the parallel speedup (1-proc ns/op over N-proc
// ns/op) at every shared N and fails when the new speedup falls below the
// old by more than -scaling-threshold — a kernel that still hits its
// single-core number but stopped scaling across cores is a regression the
// per-name ratios alone cannot see.
//
// The parser and differ are plain functions over readers and structs so
// they are unit-testable without running the suite.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Recording mirrors the schema of BENCH_parallel.json.
type Recording struct {
	Description string      `json:"description"`
	Date        string      `json:"date"`
	Host        Host        `json:"host"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// Host identifies the recording machine.
type Host struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu"`
	CPUs   int    `json:"cpus"`
}

// Benchmark is one `go test -bench -benchmem` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// parseBenchOutput extracts benchmark result lines and host metadata from
// standard `go test -bench` output. Benchmark names have their trailing
// -N GOMAXPROCS suffix kept as printed (the suite pins names without it on
// single-proc runs); unparseable lines are skipped.
func parseBenchOutput(r io.Reader) ([]Benchmark, Host, error) {
	host := Host{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.GOMAXPROCS(0)}
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			host.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"):
			host.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			host.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		// The remainder is value/unit pairs: `12345 ns/op 67 B/op ...`.
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, ok = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, host, sc.Err()
}

// splitProcs separates a recorded benchmark name into its family and the
// GOMAXPROCS the run used: go test suffixes -N under -cpu and for any
// parallel run, and omits the suffix at 1 proc.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// scalingCurves groups a recording's benchmarks into per-family curves of
// ns/op keyed by GOMAXPROCS. Families with a single point still appear
// (the differ skips them).
func scalingCurves(r Recording) map[string]map[int]float64 {
	out := map[string]map[int]float64{}
	for _, b := range r.Benchmarks {
		base, procs := splitProcs(b.Name)
		if out[base] == nil {
			out[base] = map[int]float64{}
		}
		out[base][procs] = b.NsPerOp
	}
	return out
}

// diffScaling compares the parallel speedup curves of the families both
// recordings measured at 1 proc and at N>1 procs, and reports a
// regression wherever oldSpeedup/newSpeedup exceeds threshold. Speedup is
// ns/op at 1 proc over ns/op at N procs, so a slope regression is caught
// even when every absolute time improved.
func diffScaling(old, new Recording, threshold float64) []regression {
	oldCurves := scalingCurves(old)
	var regs []regression
	for base, cur := range scalingCurves(new) {
		prev := oldCurves[base]
		if prev == nil || prev[1] == 0 || cur[1] == 0 {
			continue
		}
		for procs, ns := range cur {
			if procs == 1 || ns == 0 || prev[procs] == 0 {
				continue
			}
			oldUp := prev[1] / prev[procs]
			newUp := cur[1] / ns
			if ratio := oldUp / newUp; ratio > threshold {
				regs = append(regs, regression{
					Name:   fmt.Sprintf("%s@%dprocs", base, procs),
					Metric: "speedup",
					Old:    oldUp,
					New:    newUp,
					Ratio:  ratio,
				})
			}
		}
	}
	sortRegressions(regs)
	return regs
}

// sortRegressions orders reports by name then metric for stable output
// (scaling curves come out of map iteration).
func sortRegressions(regs []regression) {
	for i := 1; i < len(regs); i++ {
		for j := i; j > 0 && (regs[j].Name < regs[j-1].Name ||
			(regs[j].Name == regs[j-1].Name && regs[j].Metric < regs[j-1].Metric)); j-- {
			regs[j], regs[j-1] = regs[j-1], regs[j]
		}
	}
}

// regression describes one metric of one benchmark exceeding the
// threshold ratio.
type regression struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	Ratio  float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx, threshold exceeded)",
		r.Name, r.Metric, r.Old, r.New, r.Ratio)
}

// diffRecordings compares the benchmarks shared by two recordings and
// returns the metrics whose new/old ratio exceeds threshold. Benchmarks
// present in only one recording are listed in the second return value and
// never count as regressions. A zero old value with a non-zero new value
// is treated as an infinite ratio.
func diffRecordings(old, new Recording, threshold float64) ([]regression, []string) {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	var regs []regression
	var unmatched []string
	seen := make(map[string]bool, len(new.Benchmarks))
	for _, nb := range new.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			unmatched = append(unmatched, nb.Name)
			continue
		}
		seen[nb.Name] = true
		for _, m := range []struct {
			metric string
			ov, nv float64
		}{
			{"ns/op", ob.NsPerOp, nb.NsPerOp},
			{"B/op", ob.BytesPerOp, nb.BytesPerOp},
			{"allocs/op", ob.AllocsPerOp, nb.AllocsPerOp},
		} {
			var ratio float64
			switch {
			case m.ov > 0:
				ratio = m.nv / m.ov
			case m.nv > 0:
				ratio = threshold + 1 // 0 -> nonzero: always a regression
			default:
				continue
			}
			if ratio > threshold {
				regs = append(regs, regression{nb.Name, m.metric, m.ov, m.nv, ratio})
			}
		}
	}
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			unmatched = append(unmatched, b.Name)
		}
	}
	return regs, unmatched
}

func readRecording(path string) (Recording, error) {
	var rec Recording
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// writeRecording marshals the recording with one benchmark per line,
// matching the hand-formatted style of BENCH_parallel.json closely enough
// to diff comfortably.
func writeRecording(w io.Writer, rec Recording) error {
	head, err := json.Marshal(struct {
		Description string `json:"description"`
		Date        string `json:"date"`
		Host        Host   `json:"host"`
	}{rec.Description, rec.Date, rec.Host})
	if err != nil {
		return err
	}
	var b strings.Builder
	var pretty map[string]json.RawMessage
	if err := json.Unmarshal(head, &pretty); err != nil {
		return err
	}
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  \"description\": %s,\n", pretty["description"])
	fmt.Fprintf(&b, "  \"date\": %s,\n", pretty["date"])
	hostJSON, err := json.MarshalIndent(rec.Host, "  ", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "  \"host\": %s,\n", hostJSON)
	b.WriteString("  \"benchmarks\": [\n")
	for i, bm := range rec.Benchmarks {
		line, err := json.Marshal(bm)
		if err != nil {
			return err
		}
		sep := ","
		if i == len(rec.Benchmarks)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "    %s%s\n", line, sep)
	}
	b.WriteString("  ]\n}\n")
	_, err = io.WriteString(w, b.String())
	return err
}

func runRecord(benchRe, benchtime, timeout, pkg, outPath, desc, cpu string) error {
	args := []string{"test", "-run", "^$", "-bench", benchRe,
		"-benchtime", benchtime, "-timeout", timeout, "-benchmem", "-count=1"}
	if cpu != "" {
		args = append(args, "-cpu", cpu)
	}
	args = append(args, pkg)
	fmt.Fprintf(os.Stderr, "eflora-bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		os.Stderr.Write(out)
		return fmt.Errorf("go test -bench: %w", err)
	}
	benches, host, err := parseBenchOutput(strings.NewReader(string(out)))
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		os.Stderr.Write(out)
		return fmt.Errorf("no benchmark results matched %q", benchRe)
	}
	rec := Recording{
		Description: desc,
		Date:        time.Now().UTC().Format("2006-01-02"),
		Host:        host,
		Benchmarks:  benches,
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := writeRecording(f, rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(benches), outPath)
	return nil
}

func runDiff(oldPath, newPath string, threshold, scalingThreshold float64) error {
	old, err := readRecording(oldPath)
	if err != nil {
		return err
	}
	cur, err := readRecording(newPath)
	if err != nil {
		return err
	}
	regs, unmatched := diffRecordings(old, cur, threshold)
	if scalingThreshold > 0 {
		regs = append(regs, diffScaling(old, cur, scalingThreshold)...)
	}
	for _, n := range unmatched {
		fmt.Printf("only in one recording: %s\n", n)
	}
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	for _, nb := range cur.Benchmarks {
		if ob, ok := oldBy[nb.Name]; ok && ob.NsPerOp > 0 {
			fmt.Printf("%s: %.2fx time, %.2fx bytes, %.2fx allocs\n", nb.Name,
				nb.NsPerOp/ob.NsPerOp, ratioOf(nb.BytesPerOp, ob.BytesPerOp), ratioOf(nb.AllocsPerOp, ob.AllocsPerOp))
		}
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "REGRESSION "+r.String())
		}
		return fmt.Errorf("%d regressions above %.2fx", len(regs), threshold)
	}
	fmt.Printf("no regressions above %.2fx\n", threshold)
	return nil
}

func ratioOf(n, o float64) float64 {
	if o == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	return n / o
}

func main() {
	var (
		diff      = flag.Bool("diff", false, "compare two recordings instead of running the suite")
		threshold = flag.Float64("threshold", 1.30, "diff mode: failure ratio for new/old on any metric")
		benchRe   = flag.String("bench", "Sequential|Parallel", "record mode: -bench regexp passed to go test")
		benchtime = flag.String("benchtime", "3x", "record mode: -benchtime passed to go test")
		timeout   = flag.String("timeout", "60m", "record mode: -timeout passed to go test (heavy suites exceed go's 10m default)")
		pkg       = flag.String("pkg", ".", "record mode: package to benchmark")
		outPath   = flag.String("o", "BENCH_sim.json", "record mode: output recording path")
		desc      = flag.String("description", "", "record mode: recording description")
		cpu       = flag.String("cpu", "", "record mode: -cpu list passed to go test (e.g. 1,2,4) to record per-core scaling curves")
		scaling   = flag.Float64("scaling-threshold", 1.25, "diff mode: failure ratio for old/new parallel speedup at each proc count (0 disables)")
	)
	flag.Parse()
	var err error
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: eflora-bench -diff [-threshold R] [-scaling-threshold R] old.json new.json")
			os.Exit(2)
		}
		err = runDiff(flag.Arg(0), flag.Arg(1), *threshold, *scaling)
	} else {
		err = runRecord(*benchRe, *benchtime, *timeout, *pkg, *outPath, *desc, *cpu)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eflora-bench:", err)
		os.Exit(1)
	}
}
