package main

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const sampleOutput = `goos: linux
goarch: amd64
pkg: eflora
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorSequential 	       3	 41319687 ns/op	11579672 B/op	  202082 allocs/op
BenchmarkSimulatorParallel-4 	       3	 38295278 ns/op	11579672 B/op	  202082 allocs/op
BenchmarkTimeOnAir 	12345678	        95.31 ns/op
some unrelated line
PASS
ok  	eflora	3.021s
`

func TestParseBenchOutput(t *testing.T) {
	benches, host, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if host.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" || host.GOOS != "linux" || host.GOARCH != "amd64" {
		t.Errorf("host = %+v", host)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(benches), benches)
	}
	b := benches[0]
	if b.Name != "BenchmarkSimulatorSequential" || b.Iterations != 3 ||
		b.NsPerOp != 41319687 || b.BytesPerOp != 11579672 || b.AllocsPerOp != 202082 {
		t.Errorf("benches[0] = %+v", b)
	}
	if benches[1].Name != "BenchmarkSimulatorParallel-4" {
		t.Errorf("benches[1] = %+v", benches[1])
	}
	// ns-only line (no -benchmem columns) still parses.
	if benches[2].NsPerOp != 95.31 || benches[2].BytesPerOp != 0 {
		t.Errorf("benches[2] = %+v", benches[2])
	}
}

func rec(bs ...Benchmark) Recording { return Recording{Benchmarks: bs} }

func TestDiffRecordings(t *testing.T) {
	old := rec(
		Benchmark{Name: "A", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		Benchmark{Name: "B", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		Benchmark{Name: "OnlyOld", NsPerOp: 1},
	)
	cur := rec(
		Benchmark{Name: "A", NsPerOp: 120, BytesPerOp: 500, AllocsPerOp: 10}, // within 1.3x
		Benchmark{Name: "B", NsPerOp: 150, BytesPerOp: 1000, AllocsPerOp: 20},
		Benchmark{Name: "OnlyNew", NsPerOp: 1},
	)
	regs, unmatched := diffRecordings(old, cur, 1.3)
	if len(unmatched) != 2 {
		t.Errorf("unmatched = %v, want [OnlyNew OnlyOld]", unmatched)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want ns and allocs of B", regs)
	}
	for _, r := range regs {
		if r.Name != "B" {
			t.Errorf("unexpected regression %+v", r)
		}
	}
	if regs[0].Metric != "ns/op" || regs[1].Metric != "allocs/op" {
		t.Errorf("metrics = %s, %s", regs[0].Metric, regs[1].Metric)
	}
}

func TestDiffZeroToNonzero(t *testing.T) {
	old := rec(Benchmark{Name: "A", NsPerOp: 100, AllocsPerOp: 0})
	cur := rec(Benchmark{Name: "A", NsPerOp: 100, AllocsPerOp: 5})
	regs, _ := diffRecordings(old, cur, 10)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Errorf("regs = %+v, want one allocs/op regression", regs)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := Recording{
		Description: "test",
		Date:        "2026-08-06",
		Host:        Host{GOOS: "linux", GOARCH: "amd64", CPU: "x", CPUs: 1},
		Benchmarks: []Benchmark{
			{Name: "A", Iterations: 3, NsPerOp: 1.5, BytesPerOp: 2, AllocsPerOp: 3},
			{Name: "B", Iterations: 1, NsPerOp: 10, BytesPerOp: 20, AllocsPerOp: 30},
		},
	}
	var b strings.Builder
	if err := writeRecording(&b, in); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/rec.json"
	if err := writeFile(path, b.String()); err != nil {
		t.Fatal(err)
	}
	out, err := readRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Description != in.Description || out.Host != in.Host || len(out.Benchmarks) != 2 ||
		out.Benchmarks[0] != in.Benchmarks[0] || out.Benchmarks[1] != in.Benchmarks[1] {
		t.Errorf("round-trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestParseExistingRecording guards the schema against drift: the checked-in
// PR-1 recording must stay readable.
func TestParseExistingRecording(t *testing.T) {
	recFile, err := readRecording("../../BENCH_parallel.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(recFile.Benchmarks) == 0 || recFile.Host.GOOS == "" {
		t.Errorf("BENCH_parallel.json parsed to %+v", recFile)
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		name string
		base string
		n    int
	}{
		{"BenchmarkSimulatorSequential", "BenchmarkSimulatorSequential", 1},
		{"BenchmarkSimulatorSequential-2", "BenchmarkSimulatorSequential", 2},
		{"BenchmarkDecodePushData/scratch-16", "BenchmarkDecodePushData/scratch", 16},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar", 1},
	}
	for _, c := range cases {
		base, n := splitProcs(c.name)
		if base != c.base || n != c.n {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", c.name, base, n, c.base, c.n)
		}
	}
}

func TestDiffScaling(t *testing.T) {
	old := rec(
		Benchmark{Name: "A", NsPerOp: 100},
		Benchmark{Name: "A-2", NsPerOp: 60}, // 1.67x speedup
		Benchmark{Name: "B", NsPerOp: 100},
		Benchmark{Name: "B-2", NsPerOp: 60}, // 1.67x speedup
		Benchmark{Name: "OnlyOld", NsPerOp: 100},
		Benchmark{Name: "OnlyOld-2", NsPerOp: 50},
	)
	cur := rec(
		// A got faster at 1 proc but stopped scaling: 80 -> 75 is only
		// 1.07x. Every per-name ratio stays under the 1.3x gate (A-2 is
		// 1.25x); only the slope gate catches the lost parallelism.
		Benchmark{Name: "A", NsPerOp: 80},
		Benchmark{Name: "A-2", NsPerOp: 75},
		// B's speedup held (1.67x), times unchanged.
		Benchmark{Name: "B", NsPerOp: 100},
		Benchmark{Name: "B-2", NsPerOp: 60},
		Benchmark{Name: "OnlyNew", NsPerOp: 100},
		Benchmark{Name: "OnlyNew-2", NsPerOp: 50},
	)
	if regs, _ := diffRecordings(old, cur, 1.3); len(regs) != 0 {
		t.Fatalf("per-name diff flagged %+v, want none (times improved)", regs)
	}
	regs := diffScaling(old, cur, 1.25)
	if len(regs) != 1 {
		t.Fatalf("scaling regs = %+v, want exactly A@2procs", regs)
	}
	r := regs[0]
	if r.Name != "A@2procs" || r.Metric != "speedup" {
		t.Errorf("regression = %+v", r)
	}
	if r.Old < 1.6 || r.Old > 1.7 || r.New < 1.0 || r.New > 1.1 {
		t.Errorf("speedups = %.3g -> %.3g, want ~1.67 -> ~1.07", r.Old, r.New)
	}
	// A family that only one side measured at N procs never fires.
	if regs := diffScaling(old, rec(Benchmark{Name: "OnlyOld", NsPerOp: 100}), 1.25); len(regs) != 0 {
		t.Errorf("single-sided family fired: %+v", regs)
	}
}

func TestScalingCurves(t *testing.T) {
	curves := scalingCurves(rec(
		Benchmark{Name: "A", NsPerOp: 100},
		Benchmark{Name: "A-2", NsPerOp: 50},
		Benchmark{Name: "A-4", NsPerOp: 30},
		Benchmark{Name: "Solo", NsPerOp: 7},
	))
	a := curves["A"]
	if len(a) != 3 || a[1] != 100 || a[2] != 50 || a[4] != 30 {
		t.Errorf("curve A = %v", a)
	}
	if s := curves["Solo"]; len(s) != 1 || s[1] != 7 {
		t.Errorf("curve Solo = %v", s)
	}
}
