package main

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const sampleOutput = `goos: linux
goarch: amd64
pkg: eflora
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorSequential 	       3	 41319687 ns/op	11579672 B/op	  202082 allocs/op
BenchmarkSimulatorParallel-4 	       3	 38295278 ns/op	11579672 B/op	  202082 allocs/op
BenchmarkTimeOnAir 	12345678	        95.31 ns/op
some unrelated line
PASS
ok  	eflora	3.021s
`

func TestParseBenchOutput(t *testing.T) {
	benches, host, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if host.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" || host.GOOS != "linux" || host.GOARCH != "amd64" {
		t.Errorf("host = %+v", host)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(benches), benches)
	}
	b := benches[0]
	if b.Name != "BenchmarkSimulatorSequential" || b.Iterations != 3 ||
		b.NsPerOp != 41319687 || b.BytesPerOp != 11579672 || b.AllocsPerOp != 202082 {
		t.Errorf("benches[0] = %+v", b)
	}
	if benches[1].Name != "BenchmarkSimulatorParallel-4" {
		t.Errorf("benches[1] = %+v", benches[1])
	}
	// ns-only line (no -benchmem columns) still parses.
	if benches[2].NsPerOp != 95.31 || benches[2].BytesPerOp != 0 {
		t.Errorf("benches[2] = %+v", benches[2])
	}
}

func rec(bs ...Benchmark) Recording { return Recording{Benchmarks: bs} }

func TestDiffRecordings(t *testing.T) {
	old := rec(
		Benchmark{Name: "A", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		Benchmark{Name: "B", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		Benchmark{Name: "OnlyOld", NsPerOp: 1},
	)
	cur := rec(
		Benchmark{Name: "A", NsPerOp: 120, BytesPerOp: 500, AllocsPerOp: 10}, // within 1.3x
		Benchmark{Name: "B", NsPerOp: 150, BytesPerOp: 1000, AllocsPerOp: 20},
		Benchmark{Name: "OnlyNew", NsPerOp: 1},
	)
	regs, unmatched := diffRecordings(old, cur, 1.3)
	if len(unmatched) != 2 {
		t.Errorf("unmatched = %v, want [OnlyNew OnlyOld]", unmatched)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want ns and allocs of B", regs)
	}
	for _, r := range regs {
		if r.Name != "B" {
			t.Errorf("unexpected regression %+v", r)
		}
	}
	if regs[0].Metric != "ns/op" || regs[1].Metric != "allocs/op" {
		t.Errorf("metrics = %s, %s", regs[0].Metric, regs[1].Metric)
	}
}

func TestDiffZeroToNonzero(t *testing.T) {
	old := rec(Benchmark{Name: "A", NsPerOp: 100, AllocsPerOp: 0})
	cur := rec(Benchmark{Name: "A", NsPerOp: 100, AllocsPerOp: 5})
	regs, _ := diffRecordings(old, cur, 10)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Errorf("regs = %+v, want one allocs/op regression", regs)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := Recording{
		Description: "test",
		Date:        "2026-08-06",
		Host:        Host{GOOS: "linux", GOARCH: "amd64", CPU: "x", CPUs: 1},
		Benchmarks: []Benchmark{
			{Name: "A", Iterations: 3, NsPerOp: 1.5, BytesPerOp: 2, AllocsPerOp: 3},
			{Name: "B", Iterations: 1, NsPerOp: 10, BytesPerOp: 20, AllocsPerOp: 30},
		},
	}
	var b strings.Builder
	if err := writeRecording(&b, in); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/rec.json"
	if err := writeFile(path, b.String()); err != nil {
		t.Fatal(err)
	}
	out, err := readRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Description != in.Description || out.Host != in.Host || len(out.Benchmarks) != 2 ||
		out.Benchmarks[0] != in.Benchmarks[0] || out.Benchmarks[1] != in.Benchmarks[1] {
		t.Errorf("round-trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestParseExistingRecording guards the schema against drift: the checked-in
// PR-1 recording must stay readable.
func TestParseExistingRecording(t *testing.T) {
	recFile, err := readRecording("../../BENCH_parallel.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(recFile.Benchmarks) == 0 || recFile.Host.GOOS == "" {
		t.Errorf("BENCH_parallel.json parsed to %+v", recFile)
	}
}
