package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with args and returns its stdout text.
func capture(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunTextOutput(t *testing.T) {
	out := capture(t, []string{"-devices", "60", "-gateways", "2", "-seed", "3"})
	for _, want := range []string{"min EE", "Jain", "Spreading factor distribution", "SF7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	out := capture(t, []string{"-devices", "40", "-gateways", "1", "-json"})
	var jo jsonOutput
	if err := json.Unmarshal([]byte(out), &jo); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if jo.Devices != 40 || len(jo.SF) != 40 || len(jo.TPdBm) != 40 {
		t.Errorf("JSON payload malformed: %+v", jo)
	}
	if jo.MinEE < 0 || jo.Jain <= 0 {
		t.Errorf("JSON stats: %+v", jo)
	}
}

func TestRunWritesScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	out := capture(t, []string{"-devices", "30", "-gateways", "1", "-out", path})
	if !strings.Contains(out, "wrote scenario") {
		t.Errorf("missing confirmation:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"allocation\"") {
		t.Error("scenario file missing allocation")
	}
}

func TestRunRejectsUnknownAllocator(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run([]string{"-devices", "10", "-allocator", "nope"}, f); err == nil {
		t.Error("unknown allocator accepted")
	}
}

func TestRunEachAllocator(t *testing.T) {
	for _, al := range []string{"legacy", "rslora", "adr", "eflora-fixed"} {
		out := capture(t, []string{"-devices", "40", "-gateways", "1", "-allocator", al})
		if !strings.Contains(out, "min EE") {
			t.Errorf("%s: malformed output", al)
		}
	}
}
