// Command eflora generates a LoRa deployment, runs a resource allocator
// (EF-LoRa or one of the paper's baselines) and reports the allocation and
// the analytical model's per-device energy efficiencies.
//
// Usage:
//
//	eflora -devices 1000 -gateways 3 -radius 5000 -allocator eflora -seed 1
//	eflora -allocator legacy -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/lora"
	"eflora/internal/plot"
	"eflora/internal/scenario"
	"eflora/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eflora:", err)
		os.Exit(1)
	}
}

type jsonOutput struct {
	Devices   int       `json:"devices"`
	Gateways  int       `json:"gateways"`
	Allocator string    `json:"allocator"`
	MinEE     float64   `json:"minEEBitsPerJoule"`
	MeanEE    float64   `json:"meanEEBitsPerJoule"`
	Jain      float64   `json:"jainIndex"`
	SF        []int     `json:"sf"`
	TPdBm     []float64 `json:"tpDBm"`
	Channel   []int     `json:"channel"`
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("eflora", flag.ContinueOnError)
	var (
		devices   = fs.Int("devices", 1000, "number of end devices")
		gateways  = fs.Int("gateways", 3, "number of gateways")
		radius    = fs.Float64("radius", 5000, "deployment disc radius in meters")
		seed      = fs.Uint64("seed", 1, "random seed for device placement")
		allocator = fs.String("allocator", "eflora", "allocator: eflora, eflora-fixed, legacy, rslora, adr, anneal, hier, exhaustive")
		delta     = fs.Float64("delta", 0.01, "EF-LoRa convergence threshold (relative)")
		asJSON    = fs.Bool("json", false, "emit the allocation as JSON")
		outFile   = fs.String("out", "", "write the deployment + allocation as a scenario file (eflora-sim -in)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	netw, err := core.Build(core.Scenario{
		Devices:  *devices,
		Gateways: *gateways,
		RadiusM:  *radius,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	a, err := netw.Allocate(*allocator, alloc.Options{Delta: *delta})
	if err != nil {
		return err
	}
	ev, err := netw.Evaluate(a)
	if err != nil {
		return err
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		comment := fmt.Sprintf("eflora -devices %d -gateways %d -radius %g -seed %d -allocator %s",
			*devices, *gateways, *radius, *seed, *allocator)
		if err := scenario.FromNetwork(netw.Net, &a, comment).Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote scenario to %s\n", *outFile)
	}

	if *asJSON {
		jo := jsonOutput{
			Devices:   *devices,
			Gateways:  *gateways,
			Allocator: *allocator,
			MinEE:     ev.MinEE,
			MeanEE:    ev.MeanEE,
			Jain:      ev.Jain,
			TPdBm:     a.TPdBm,
			Channel:   a.Channel,
		}
		jo.SF = make([]int, len(a.SF))
		for i, s := range a.SF {
			jo.SF[i] = int(s)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(jo)
	}

	fmt.Fprintf(out, "Allocator %s on %d devices / %d gateways (radius %.0f m, seed %d)\n\n",
		*allocator, *devices, *gateways, *radius, *seed)
	fmt.Fprintf(out, "min EE  %.3f bits/mJ (device %d)\n", core.BitsPerMilliJoule(ev.MinEE), ev.MinIndex)
	fmt.Fprintf(out, "mean EE %.3f bits/mJ\n", core.BitsPerMilliJoule(ev.MeanEE))
	fmt.Fprintf(out, "Jain    %.4f\n\n", ev.Jain)

	// SF histogram.
	counts := make(map[lora.SF]int)
	for _, s := range a.SF {
		counts[s]++
	}
	var labels []string
	var vals []float64
	for _, s := range lora.SFs() {
		labels = append(labels, s.String())
		vals = append(vals, float64(counts[s]))
	}
	fmt.Fprintln(out, plot.Bar("Spreading factor distribution", labels, vals, 40))

	// TP histogram.
	tpCounts := make(map[float64]int)
	for _, tp := range a.TPdBm {
		tpCounts[tp]++
	}
	var tps []float64
	for tp := range tpCounts {
		tps = append(tps, tp)
	}
	sort.Float64s(tps)
	labels = labels[:0]
	vals = vals[:0]
	for _, tp := range tps {
		labels = append(labels, fmt.Sprintf("%g dBm", tp))
		vals = append(vals, float64(tpCounts[tp]))
	}
	fmt.Fprintln(out, plot.Bar("Transmission power distribution", labels, vals, 40))

	s := stats.Summarize(ev.EE)
	fmt.Fprintf(out, "EE spread: min %.3f / mean %.3f / max %.3f bits/mJ (std %.3f)\n",
		core.BitsPerMilliJoule(s.Min), core.BitsPerMilliJoule(s.Mean),
		core.BitsPerMilliJoule(s.Max), core.BitsPerMilliJoule(s.Std))
	return nil
}
