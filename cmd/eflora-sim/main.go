// Command eflora-sim runs the packet-level LoRaWAN simulator on a
// generated deployment under a chosen allocator and reports delivery,
// energy and lifetime statistics — the measurement side of the paper's
// evaluation pipeline.
//
// Usage:
//
//	eflora-sim -devices 1000 -gateways 3 -allocator eflora -packets 100
package main

import (
	"flag"
	"fmt"
	"os"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/lifetime"
	"eflora/internal/model"
	"eflora/internal/radio"
	"eflora/internal/scenario"
	"eflora/internal/sim"
	"eflora/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eflora-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("eflora-sim", flag.ContinueOnError)
	var (
		devices    = fs.Int("devices", 1000, "number of end devices")
		gateways   = fs.Int("gateways", 3, "number of gateways")
		radius     = fs.Float64("radius", 5000, "deployment disc radius in meters")
		seed       = fs.Uint64("seed", 1, "random seed")
		allocator  = fs.String("allocator", "eflora", "allocator: eflora, eflora-fixed, legacy, rslora, adr")
		packets    = fs.Int("packets", 100, "packets per device")
		capture    = fs.Bool("capture", false, "enable the 6 dB co-SF capture effect")
		batteryMAH = fs.Float64("battery", 2400, "battery capacity in mAh at 3.3 V")
		inFile     = fs.String("in", "", "load a scenario file (from eflora -out) instead of generating")
		confirmed  = fs.Bool("confirmed", false, "confirmed traffic: retransmit unacknowledged packets (up to 8 attempts)")
		traceFile  = fs.String("trace", "", "write a per-packet outcome trace as CSV to this file")
		halfDuplex = fs.Bool("halfduplex", false, "with -confirmed: gateways cannot receive while transmitting ACKs")
		captureDB  = fs.Float64("capture-db", sim.DefaultCaptureThresholdDB, "with -capture: power advantage in dB needed to capture (0 = strongest wins)")
		parallel   = fs.Int("parallel", 0, "worker goroutines for gateway replay (0 = all CPUs); results are identical at any value")
		streamWin  = fs.Float64("stream-window", 0, "streaming window in seconds: generate the schedule window by window with O(devices+window) memory, bit-identical results (0 = batch)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		netw *core.Network
		a    model.Allocation
	)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			return err
		}
		sc, err := scenario.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		p := model.DefaultParams()
		netw = &core.Network{Net: sc.Network(), Params: p, Seed: *seed}
		var ok bool
		if a, ok = sc.AllocationOf(); !ok {
			if a, err = netw.Allocate(*allocator, alloc.Options{Parallelism: *parallel}); err != nil {
				return err
			}
		}
	} else {
		var err error
		netw, err = core.Build(core.Scenario{
			Devices:  *devices,
			Gateways: *gateways,
			RadiusM:  *radius,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		if a, err = netw.Allocate(*allocator, alloc.Options{Parallelism: *parallel}); err != nil {
			return err
		}
	}

	var res *sim.Result
	simCfg := sim.Config{
		PacketsPerDevice:   *packets,
		Seed:               *seed + 1,
		Capture:            *capture,
		Trace:              *traceFile != "",
		CaptureThresholdDB: captureDB,
		Parallelism:        *parallel,
		StreamWindowS:      *streamWin,
	}
	if *confirmed {
		cres, err := sim.RunConfirmed(netw.Net, netw.Params, a, sim.ConfirmedConfig{
			Config:         simCfg,
			HalfDuplexAcks: *halfDuplex,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Confirmed traffic: %d retransmissions, %d packets abandoned after %d attempts",
			cres.Retransmissions, cres.Abandoned, sim.MaxTransmissions)
		if *halfDuplex {
			fmt.Fprintf(out, ", %d uplinks lost to ACK transmissions", cres.AckBlocked)
		}
		fmt.Fprintln(out)
		res = &cres.Result
	} else {
		var err error
		if res, err = netw.Simulate(a, simCfg); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "Simulated %s on %d devices / %d gateways for %.0f s (>=%d packets/device)\n\n",
		*allocator, netw.Net.N(), netw.Net.G(), res.SimTimeS, *packets)
	fmt.Fprintln(out, res.Summary())

	prr := stats.Summarize(res.PRR)
	fmt.Fprintf(out, "\nPRR: min %.3f / mean %.3f / max %.3f\n", prr.Min, prr.Mean, prr.Max)
	ee := stats.Summarize(res.EE)
	fmt.Fprintf(out, "EE:  min %.3f / mean %.3f / max %.3f bits/mJ (Jain %.4f)\n",
		core.BitsPerMilliJoule(ee.Min), core.BitsPerMilliJoule(ee.Mean),
		core.BitsPerMilliJoule(ee.Max), stats.JainIndex(res.EE))

	if *traceFile != "" && res.Trace != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := sim.WriteTraceCSV(f, res.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d packet records to %s\n", len(res.Trace), *traceFile)
	}

	batt := radio.NewBatteryFromMilliampHours(*batteryMAH, 3.3)
	lt, err := lifetime.Compute(res.RetxAvgPowerW, batt, lifetime.DefaultDeadFraction)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Lifetime (confirmed traffic, %g mAh): first death %.1f days, 10%%-dead %.1f days\n",
		*batteryMAH, lifetime.Days(lt.FirstDeathS), lifetime.Days(lt.NetworkS))
	return nil
}
