package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSimBasic(t *testing.T) {
	out := capture(t, []string{"-devices", "50", "-gateways", "2", "-packets", "15"})
	for _, want := range []string{"PRR:", "EE:", "Lifetime", "delivered"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimConfirmed(t *testing.T) {
	out := capture(t, []string{"-devices", "40", "-gateways", "1", "-packets", "10", "-confirmed"})
	if !strings.Contains(out, "retransmissions") {
		t.Errorf("confirmed output missing retransmissions:\n%s", out)
	}
}

func TestSimTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	out := capture(t, []string{"-devices", "30", "-gateways", "1", "-packets", "10", "-trace", path})
	if !strings.Contains(out, "packet records") {
		t.Errorf("missing trace confirmation:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "device,start_s,outcome,gateway") {
		t.Error("trace CSV missing header")
	}
}

func TestSimScenarioInput(t *testing.T) {
	// Round-trip through the eflora tool's scenario writer.
	scenarioPath := filepath.Join(t.TempDir(), "net.json")
	eflora := filepath.Join(t.TempDir(), "eflora-bin")
	build := exec.Command("go", "build", "-o", eflora, "eflora/cmd/eflora")
	if outb, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building eflora: %v\n%s", err, outb)
	}
	gen := exec.Command(eflora, "-devices", "25", "-gateways", "1", "-out", scenarioPath)
	if outb, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("generating scenario: %v\n%s", err, outb)
	}
	out := capture(t, []string{"-in", scenarioPath, "-packets", "10"})
	if !strings.Contains(out, "25 devices / 1 gateways") {
		t.Errorf("scenario input not honored:\n%s", out)
	}
}

func TestSimRejectsMissingScenario(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run([]string{"-in", "/does/not/exist.json"}, f); err == nil {
		t.Error("missing scenario accepted")
	}
}
