package phy

import (
	"fmt"
	"math"
	"math/cmplx"

	"eflora/internal/lora"
	"eflora/internal/rng"
)

// Modem modulates and demodulates chirp-spread-spectrum symbols at one
// spreading factor: a symbol s in [0, 2^SF) is an up-chirp starting at
// frequency offset s, and demodulation multiplies by the conjugate base
// chirp (dechirping) and locates the resulting tone with an FFT — the
// coherent processing gain of 2^SF per symbol is exactly why larger SFs
// decode at lower SNR (paper Table IV).
type Modem struct {
	sf lora.SF
	n  int
}

// NewModem returns a modem for the given spreading factor.
func NewModem(sf lora.SF) (*Modem, error) {
	if !sf.Valid() {
		return nil, fmt.Errorf("phy: invalid spreading factor %d", int(sf))
	}
	return &Modem{sf: sf, n: 1 << uint(sf)}, nil
}

// SymbolCount returns the alphabet size 2^SF.
func (m *Modem) SymbolCount() int { return m.n }

// Modulate produces the N = 2^SF baseband samples of symbol s.
func (m *Modem) Modulate(s int) ([]complex128, error) {
	if s < 0 || s >= m.n {
		return nil, fmt.Errorf("phy: symbol %d outside [0, %d)", s, m.n)
	}
	out := make([]complex128, m.n)
	nf := float64(m.n)
	for i := 0; i < m.n; i++ {
		t := float64(i)
		// Instantaneous frequency ((s + t) mod N)/N cycles/sample;
		// integrated phase of the shifted up-chirp.
		phase := 2 * math.Pi * (t*t/(2*nf) + t*float64(s)/nf)
		out[i] = cmplx.Exp(complex(0, phase))
	}
	return out, nil
}

// Demodulate dechirps the samples and returns the most likely symbol.
func (m *Modem) Demodulate(sig []complex128) (int, error) {
	if len(sig) != m.n {
		return 0, fmt.Errorf("phy: got %d samples, want %d", len(sig), m.n)
	}
	nf := float64(m.n)
	work := make([]complex128, m.n)
	for i := 0; i < m.n; i++ {
		t := float64(i)
		phase := -2 * math.Pi * t * t / (2 * nf)
		work[i] = sig[i] * cmplx.Exp(complex(0, phase))
	}
	fft(work)
	best, bestPow := 0, 0.0
	for k, v := range work {
		p := real(v)*real(v) + imag(v)*imag(v)
		if p > bestPow {
			best, bestPow = k, p
		}
	}
	return best, nil
}

// AWGN adds complex white Gaussian noise at the given per-sample SNR (dB)
// to a unit-power signal.
func AWGN(sig []complex128, snrDB float64, r *rng.RNG) []complex128 {
	// Unit signal power; noise variance per complex sample = 1/snr,
	// split across I and Q.
	sigma := math.Sqrt(1 / lora.DBToLinear(snrDB) / 2)
	out := make([]complex128, len(sig))
	for i, v := range sig {
		out[i] = v + complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
	}
	return out
}

// fft is an in-place iterative radix-2 Cooley-Tukey transform; len(x)
// must be a power of two (guaranteed by the modem's 2^SF frame sizes).
func fft(x []complex128) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}
