package phy

import (
	"bytes"
	"math/bits"
	"testing"
	"testing/quick"

	"eflora/internal/lora"
	"eflora/internal/rng"
)

func TestHammingRoundTripAllNibbles(t *testing.T) {
	for _, cr := range []lora.CodingRate{lora.CR45, lora.CR46, lora.CR47, lora.CR48} {
		for n := byte(0); n < 16; n++ {
			cw := hammingEncode(n, cr)
			got, corrected, bad := hammingDecode(cw, cr)
			if got != n || corrected || bad {
				t.Fatalf("CR %v nibble %x: decode(%x) = (%x, %v, %v)", cr, n, cw, got, corrected, bad)
			}
		}
	}
}

func TestHamming47CorrectsEverySingleBitError(t *testing.T) {
	// The paper's rationale for CR 4/7: single bit errors are corrected.
	for n := byte(0); n < 16; n++ {
		cw := hammingEncode(n, lora.CR47)
		for bit := 0; bit < 7; bit++ {
			got, corrected, bad := hammingDecode(cw^1<<bit, lora.CR47)
			if got != n || !corrected || bad {
				t.Fatalf("nibble %x bit %d: decode = (%x, %v, %v), want corrected", n, bit, got, corrected, bad)
			}
		}
	}
}

func TestHamming48CorrectsSingleDetectsDouble(t *testing.T) {
	for n := byte(0); n < 16; n++ {
		cw := hammingEncode(n, lora.CR48)
		for bit := 0; bit < 8; bit++ {
			got, corrected, bad := hammingDecode(cw^1<<bit, lora.CR48)
			if got != n || !corrected || bad {
				t.Fatalf("single error at bit %d: (%x, %v, %v)", bit, got, corrected, bad)
			}
		}
		// All double errors must be flagged bad, never silently wrong.
		for b1 := 0; b1 < 8; b1++ {
			for b2 := b1 + 1; b2 < 8; b2++ {
				_, _, bad := hammingDecode(cw^1<<b1^1<<b2, lora.CR48)
				if !bad {
					t.Fatalf("double error bits %d,%d not detected (nibble %x)", b1, b2, n)
				}
			}
		}
	}
}

func TestHamming45DetectsButCannotCorrect(t *testing.T) {
	// The paper: rates 4/5 and 4/6 are "not capable of correcting bit
	// errors".
	for n := byte(0); n < 16; n++ {
		cw := hammingEncode(n, lora.CR45)
		for bit := 0; bit < 5; bit++ {
			_, corrected, bad := hammingDecode(cw^1<<bit, lora.CR45)
			if corrected {
				t.Fatalf("CR 4/5 claimed to correct an error")
			}
			if !bad {
				t.Fatalf("CR 4/5 missed a single-bit error at bit %d", bit)
			}
		}
	}
}

func TestHammingCodewordWidths(t *testing.T) {
	for _, tt := range []struct {
		cr   lora.CodingRate
		bits int
	}{{lora.CR45, 5}, {lora.CR46, 6}, {lora.CR47, 7}, {lora.CR48, 8}} {
		for n := byte(0); n < 16; n++ {
			cw := hammingEncode(n, tt.cr)
			if cw>>tt.bits != 0 {
				t.Fatalf("CR %v codeword %x wider than %d bits", tt.cr, cw, tt.bits)
			}
		}
	}
}

func TestWhitenInvolutive(t *testing.T) {
	r := rng.New(1)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	w := Whiten(data)
	if bytes.Equal(w, data) {
		t.Error("whitening did not change the data")
	}
	if !bytes.Equal(Whiten(w), data) {
		t.Error("whitening is not involutive")
	}
}

func TestWhitenBalancesZeros(t *testing.T) {
	// An all-zero payload must leave the whitener's pseudo-noise pattern
	// (roughly half ones).
	w := Whiten(make([]byte, 128))
	ones := 0
	for _, b := range w {
		ones += bits.OnesCount8(b)
	}
	frac := float64(ones) / float64(128*8)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("whitened zeros have %v ones fraction, want ~0.5", frac)
	}
}

func TestGrayAdjacency(t *testing.T) {
	for v := 0; v < 4096; v++ {
		if grayDecode(grayEncode(v)) != v {
			t.Fatalf("gray round trip failed at %d", v)
		}
		if v > 0 {
			diff := grayEncode(v) ^ grayEncode(v-1)
			if bits.OnesCount(uint(diff)) != 1 {
				t.Fatalf("gray codes of %d and %d differ in %d bits", v-1, v, bits.OnesCount(uint(diff)))
			}
		}
	}
}

func TestModemRoundTripNoiseless(t *testing.T) {
	r := rng.New(2)
	for _, sf := range lora.SFs() {
		m, err := NewModem(sf)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			s := r.Intn(m.SymbolCount())
			sig, err := m.Modulate(s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Demodulate(sig)
			if err != nil {
				t.Fatal(err)
			}
			if got != s {
				t.Fatalf("%v: symbol %d demodulated as %d", sf, s, got)
			}
		}
	}
}

func TestModemValidation(t *testing.T) {
	if _, err := NewModem(lora.SF(6)); err == nil {
		t.Error("invalid SF accepted")
	}
	m, _ := NewModem(lora.SF7)
	if _, err := m.Modulate(-1); err == nil {
		t.Error("negative symbol accepted")
	}
	if _, err := m.Modulate(128); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := m.Demodulate(make([]complex128, 5)); err == nil {
		t.Error("wrong sample count accepted")
	}
}

// symbolErrorRate measures the demodulation error rate at a given SNR.
func symbolErrorRate(t *testing.T, sf lora.SF, snrDB float64, trials int, seed uint64) float64 {
	t.Helper()
	m, err := NewModem(sf)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	errs := 0
	for i := 0; i < trials; i++ {
		s := r.Intn(m.SymbolCount())
		sig, err := m.Modulate(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Demodulate(AWGN(sig, snrDB, r))
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			errs++
		}
	}
	return float64(errs) / float64(trials)
}

func TestProcessingGainReproducesTableIVOrdering(t *testing.T) {
	// At -13 dB per-sample SNR, SF7 (processing gain 21 dB) is hopeless
	// while SF10 (30 dB) still decodes — the spreading-factor/SNR
	// threshold structure of paper Table IV emerging from first
	// principles.
	serSF7 := symbolErrorRate(t, lora.SF7, -13, 60, 3)
	serSF10 := symbolErrorRate(t, lora.SF10, -13, 60, 4)
	if serSF7 < 0.3 {
		t.Errorf("SF7 at -13 dB: SER %v, expected failure", serSF7)
	}
	if serSF10 > 0.1 {
		t.Errorf("SF10 at -13 dB: SER %v, expected success", serSF10)
	}
}

func TestSERMonotoneInSNR(t *testing.T) {
	low := symbolErrorRate(t, lora.SF8, -15, 60, 5)
	high := symbolErrorRate(t, lora.SF8, -5, 60, 6)
	if high >= low && low != 0 {
		t.Errorf("SER at -5 dB (%v) not below -15 dB (%v)", high, low)
	}
	if high > 0.02 {
		t.Errorf("SF8 at -5 dB should be clean, SER %v", high)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	payload := []byte("EF-LoRa PHY pipeline test payload")
	for _, sf := range []lora.SF{lora.SF7, lora.SF9, lora.SF12} {
		for _, cr := range []lora.CodingRate{lora.CR45, lora.CR47, lora.CR48} {
			c, err := NewCodec(sf, cr)
			if err != nil {
				t.Fatal(err)
			}
			symbols := c.Encode(payload)
			if len(symbols) != c.SymbolsPerPayload(len(payload)) {
				t.Fatalf("%v/%v: %d symbols, predicted %d", sf, cr, len(symbols), c.SymbolsPerPayload(len(payload)))
			}
			got, corrected, bad, err := c.Decode(symbols, len(payload))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) || corrected != 0 || bad != 0 {
				t.Fatalf("%v/%v: round trip failed (corrected %d, bad %d)", sf, cr, corrected, bad)
			}
		}
	}
}

func TestInterleaverLocalizesSymbolLoss(t *testing.T) {
	// The design rationale the paper leans on: a fully corrupted symbol
	// touches one bit of each codeword, which CR 4/7 repairs — so the
	// payload survives the loss of ANY single symbol per block.
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x42, 0x13, 0x37, 0x00}
	c, err := NewCodec(lora.SF8, lora.CR47)
	if err != nil {
		t.Fatal(err)
	}
	clean := c.Encode(payload)
	for hit := range clean {
		corrupted := append([]int(nil), clean...)
		corrupted[hit] ^= 0xAB // scramble several bits of one symbol
		got, corrected, bad, err := c.Decode(corrupted, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("symbol %d loss: uncorrectable codewords %d", hit, bad)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("symbol %d loss not repaired", hit)
		}
		if corrected == 0 {
			t.Fatalf("symbol %d loss repaired without corrections?", hit)
		}
	}
}

func TestInterleaverTwoSymbolsOverwhelm45(t *testing.T) {
	// CR 4/5 cannot correct, so one corrupted symbol must surface as bad
	// codewords rather than silent corruption.
	payload := []byte{1, 2, 3, 4}
	c, err := NewCodec(lora.SF8, lora.CR45)
	if err != nil {
		t.Fatal(err)
	}
	symbols := c.Encode(payload)
	symbols[0] ^= 0xFF
	_, _, bad, err := c.Decode(symbols, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Error("CR 4/5 did not flag the corrupted block")
	}
}

func TestTransmitEndToEnd(t *testing.T) {
	payload := []byte("hello lora")
	r := rng.New(7)
	// 0 dB per-sample SNR: far above threshold for SF7.
	got, _, bad, err := Transmit(payload, lora.SF7, lora.CR47, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("clean-channel transmit failed (bad=%d, got=%q)", bad, got)
	}
}

func TestTransmitLargeSFSurvivesLowSNR(t *testing.T) {
	// -15 dB per-sample SNR: SF11's 33 dB processing gain decodes it;
	// SF7 cannot.
	payload := []byte{0xCA, 0xFE}
	got, _, _, err := Transmit(payload, lora.SF11, lora.CR47, -15, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("SF11 at -15 dB failed: %x", got)
	}
	got7, _, bad7, err := Transmit(payload, lora.SF7, lora.CR47, -15, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got7, payload) && bad7 == 0 {
		t.Error("SF7 at -15 dB unexpectedly clean")
	}
}

func TestCodecValidation(t *testing.T) {
	if _, err := NewCodec(lora.SF(5), lora.CR47); err == nil {
		t.Error("bad SF accepted")
	}
	if _, err := NewCodec(lora.SF7, lora.CodingRate(9)); err == nil {
		t.Error("bad CR accepted")
	}
	c, _ := NewCodec(lora.SF7, lora.CR47)
	if _, _, _, err := c.Decode([]int{1, 2, 3}, 1); err == nil {
		t.Error("non-multiple symbol count accepted")
	}
	if _, _, _, err := c.Decode(c.Encode([]byte{1}), 50); err == nil {
		t.Error("overlong payload request accepted")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(payload []byte, sfRaw, crRaw uint8) bool {
		if len(payload) > 96 {
			payload = payload[:96]
		}
		sf := lora.SF7 + lora.SF(sfRaw%6)
		cr := lora.CR45 + lora.CodingRate(crRaw%4)
		c, err := NewCodec(sf, cr)
		if err != nil {
			return false
		}
		got, corrected, bad, err := c.Decode(c.Encode(payload), len(payload))
		if err != nil || corrected != 0 || bad != 0 {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickSingleSymbolLossRepaired(t *testing.T) {
	// Property over random payloads: CR 4/7 repairs the loss of any one
	// symbol per interleaver block.
	f := func(payload []byte, hitRaw uint8, scramble uint8) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		if len(payload) > 48 {
			payload = payload[:48]
		}
		c, err := NewCodec(lora.SF9, lora.CR47)
		if err != nil {
			return false
		}
		symbols := c.Encode(payload)
		hit := int(hitRaw) % len(symbols)
		symbols[hit] ^= int(scramble) | 1 // guarantee at least one bit flips
		got, _, bad, err := c.Decode(symbols, len(payload))
		return err == nil && bad == 0 && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
