package phy

import (
	"fmt"

	"eflora/internal/lora"
	"eflora/internal/rng"
)

// Codec runs the full LoRa PHY payload pipeline: whitening → Hamming FEC
// → block interleaving → Gray mapping → chirp symbols, and the inverse.
// The interleaver is the heart of LoRa's burst resilience: each block
// transposes SF codewords of CR bits into CR symbols of SF bits, so a
// fully corrupted symbol contributes at most ONE flipped bit to each of
// the SF codewords — which the 4/7 and 4/8 Hamming codes then repair.
type Codec struct {
	sf lora.SF
	cr lora.CodingRate
}

// NewCodec validates the configuration.
func NewCodec(sf lora.SF, cr lora.CodingRate) (*Codec, error) {
	if !sf.Valid() {
		return nil, fmt.Errorf("phy: invalid spreading factor %d", int(sf))
	}
	if !cr.Valid() {
		return nil, fmt.Errorf("phy: invalid coding rate %d", int(cr))
	}
	return &Codec{sf: sf, cr: cr}, nil
}

// nibbles splits payload bytes into 4-bit nibbles (low nibble first).
func nibbles(data []byte) []byte {
	out := make([]byte, 0, 2*len(data))
	for _, b := range data {
		out = append(out, b&0x0f, b>>4)
	}
	return out
}

// packNibbles inverts nibbles.
func packNibbles(ns []byte) []byte {
	out := make([]byte, len(ns)/2)
	for i := range out {
		out[i] = ns[2*i]&0x0f | ns[2*i+1]<<4
	}
	return out
}

// Encode converts a payload into chirp symbols. The payload is padded
// with zero nibbles to fill the last interleaver block; the caller keeps
// the original length for Decode.
func (c *Codec) Encode(payload []byte) []int {
	sf := int(c.sf)
	crBits := int(c.cr)
	ns := nibbles(Whiten(payload))
	// Pad to a multiple of SF codewords per block.
	for len(ns)%sf != 0 {
		ns = append(ns, 0)
	}
	var symbols []int
	for blk := 0; blk < len(ns); blk += sf {
		cws := make([]byte, sf)
		for i := 0; i < sf; i++ {
			cws[i] = hammingEncode(ns[blk+i], c.cr)
		}
		// Transpose: symbol j collects bit j of every codeword.
		for j := 0; j < crBits; j++ {
			sym := 0
			for i := 0; i < sf; i++ {
				sym |= int(cws[i]>>j&1) << i
			}
			symbols = append(symbols, grayEncode(sym))
		}
	}
	return symbols
}

// Decode inverts Encode, returning payloadLen bytes. corrected counts
// repaired single-bit codeword errors; bad counts uncorrectable
// codewords (their data nibbles are kept as-is).
func (c *Codec) Decode(symbols []int, payloadLen int) (payload []byte, corrected, bad int, err error) {
	sf := int(c.sf)
	crBits := int(c.cr)
	if len(symbols)%crBits != 0 {
		return nil, 0, 0, fmt.Errorf("phy: %d symbols not a multiple of CR %d", len(symbols), crBits)
	}
	var ns []byte
	for blk := 0; blk < len(symbols); blk += crBits {
		cws := make([]byte, sf)
		for j := 0; j < crBits; j++ {
			sym := grayDecode(symbols[blk+j])
			for i := 0; i < sf; i++ {
				cws[i] |= byte(sym>>i&1) << j
			}
		}
		for i := 0; i < sf; i++ {
			n, corr, isBad := hammingDecode(cws[i], c.cr)
			if corr {
				corrected++
			}
			if isBad {
				bad++
			}
			ns = append(ns, n)
		}
	}
	if payloadLen*2 > len(ns) {
		return nil, corrected, bad, fmt.Errorf("phy: %d symbols decode to %d nibbles, need %d",
			len(symbols), len(ns), payloadLen*2)
	}
	return Whiten(packNibbles(ns[:payloadLen*2])), corrected, bad, nil
}

// SymbolsPerPayload returns how many chirp symbols Encode produces for a
// payload of the given byte length.
func (c *Codec) SymbolsPerPayload(payloadBytes int) int {
	sf := int(c.sf)
	nibbleCount := 2 * payloadBytes
	blocks := (nibbleCount + sf - 1) / sf
	return blocks * int(c.cr)
}

// Transmit runs the whole physical chain — encode, modulate, AWGN
// channel, demodulate, decode — and returns the received payload plus
// FEC statistics. It is the package's end-to-end entry point for
// experiments validating the PHY assumptions.
func Transmit(payload []byte, sf lora.SF, cr lora.CodingRate, snrDB float64, r *rng.RNG) (got []byte, corrected, bad int, err error) {
	codec, err := NewCodec(sf, cr)
	if err != nil {
		return nil, 0, 0, err
	}
	modem, err := NewModem(sf)
	if err != nil {
		return nil, 0, 0, err
	}
	rx := make([]int, 0, codec.SymbolsPerPayload(len(payload)))
	for _, s := range codec.Encode(payload) {
		samples, err := modem.Modulate(s)
		if err != nil {
			return nil, 0, 0, err
		}
		noisy := AWGN(samples, snrDB, r)
		sym, err := modem.Demodulate(noisy)
		if err != nil {
			return nil, 0, 0, err
		}
		rx = append(rx, sym)
	}
	return codec.Decode(rx, len(payload))
}
