// Package phy implements the LoRa physical layer at chirp level: payload
// whitening, the Hamming forward error correction the paper discusses
// (rates 4/5..4/8, where only 4/7 and 4/8 correct a single bit error —
// the reason the paper fixes CR 4/7), diagonal interleaving, Gray symbol
// mapping, and chirp-spread-spectrum modulation with an FFT demodulator.
// It exists to validate the paper's PHY-level assumptions from first
// principles: the end-to-end tests show CR 4/7 surviving a fully
// corrupted symbol and SF12 decoding at SNRs where SF7 fails, the
// mechanism behind Table IV.
package phy

import (
	"fmt"

	"eflora/internal/lora"
)

// hammingEncode encodes a 4-bit nibble (low bits of n) into a codeword of
// int(cr) bits:
//
//	4/5: nibble + even parity (detects single errors)
//	4/6: nibble + two partial parities (detects single errors)
//	4/7: Hamming(7,4) (corrects single errors)
//	4/8: Hamming(8,4), extended (corrects single, detects double)
func hammingEncode(n byte, cr lora.CodingRate) byte {
	n &= 0x0f
	d0 := n & 1
	d1 := n >> 1 & 1
	d2 := n >> 2 & 1
	d3 := n >> 3 & 1
	switch cr {
	case lora.CR45:
		p := d0 ^ d1 ^ d2 ^ d3
		return n | p<<4
	case lora.CR46:
		p0 := d0 ^ d1 ^ d2
		p1 := d1 ^ d2 ^ d3
		return n | p0<<4 | p1<<5
	case lora.CR47:
		// Hamming(7,4) with parities p0=d0^d1^d3, p1=d0^d2^d3, p2=d1^d2^d3.
		p0 := d0 ^ d1 ^ d3
		p1 := d0 ^ d2 ^ d3
		p2 := d1 ^ d2 ^ d3
		return n | p0<<4 | p1<<5 | p2<<6
	case lora.CR48:
		cw := hammingEncode(n, lora.CR47)
		overall := byte(0)
		for i := 0; i < 7; i++ {
			overall ^= cw >> i & 1
		}
		return cw | overall<<7
	}
	panic(fmt.Sprintf("phy: invalid coding rate %d", int(cr)))
}

// hammingDecode decodes a codeword. corrected reports a repaired single
// bit error; bad reports an uncorrectable (or only-detectable) error.
func hammingDecode(cw byte, cr lora.CodingRate) (nibble byte, corrected, bad bool) {
	switch cr {
	case lora.CR45:
		want := hammingEncode(cw&0x0f, cr)
		return cw & 0x0f, false, want != cw&0x1f
	case lora.CR46:
		want := hammingEncode(cw&0x0f, cr)
		return cw & 0x0f, false, want != cw&0x3f
	case lora.CR47:
		n := cw & 0x0f
		d0 := n & 1
		d1 := n >> 1 & 1
		d2 := n >> 2 & 1
		d3 := n >> 3 & 1
		s0 := d0 ^ d1 ^ d3 ^ (cw >> 4 & 1)
		s1 := d0 ^ d2 ^ d3 ^ (cw >> 5 & 1)
		s2 := d1 ^ d2 ^ d3 ^ (cw >> 6 & 1)
		syndrome := s0 | s1<<1 | s2<<2
		if syndrome == 0 {
			return n, false, false
		}
		// Map the syndrome to the flipped bit position. Data bits:
		// d0 -> s0,s1 (011b=3), d1 -> s0,s2 (101b=5), d2 -> s1,s2
		// (110b=6), d3 -> all (111b=7); parity bits give 1, 2, 4.
		flip := byte(0xff)
		switch syndrome {
		case 3:
			flip = 0
		case 5:
			flip = 1
		case 6:
			flip = 2
		case 7:
			flip = 3
		case 1, 2, 4:
			// A parity bit flipped; data is intact.
			return n, true, false
		}
		if flip == 0xff {
			return n, false, true
		}
		return n ^ 1<<flip, true, false
	case lora.CR48:
		overall := byte(0)
		for i := 0; i < 8; i++ {
			overall ^= cw >> i & 1
		}
		n, corr, bad := hammingDecode(cw&0x7f, lora.CR47)
		if overall == 0 {
			// Even parity: either clean or a double error (which the
			// inner code would mis-correct) — flag double errors.
			if corr || bad {
				return n, false, true
			}
			return n, false, false
		}
		// Odd parity: a single error somewhere (possibly the overall
		// parity bit itself); the inner decode already repaired it.
		return n, true, bad
	}
	panic(fmt.Sprintf("phy: invalid coding rate %d", int(cr)))
}

// whitenByte is the involutive whitening sequence generator state; LoRa
// whitens payload bits with an LFSR so the channel sees balanced bit
// transitions.
type whitener struct {
	state byte
}

func newWhitener() *whitener { return &whitener{state: 0xff} }

// next returns the next whitening byte (x^8 + x^6 + x^5 + x^4 + 1 LFSR).
func (w *whitener) next() byte {
	out := w.state
	for i := 0; i < 8; i++ {
		fb := (w.state >> 7) ^ (w.state >> 5) ^ (w.state >> 4) ^ (w.state >> 3)
		w.state = w.state<<1 | fb&1
	}
	return out
}

// Whiten XORs data with the whitening sequence in place-free fashion; it
// is its own inverse.
func Whiten(data []byte) []byte {
	w := newWhitener()
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ w.next()
	}
	return out
}

// grayEncode maps a natural binary symbol to its Gray code, so adjacent
// FFT-bin errors in the demodulator corrupt only one bit.
func grayEncode(v int) int { return v ^ v>>1 }

// grayDecode inverts grayEncode.
func grayDecode(g int) int {
	v := 0
	for g != 0 {
		v ^= g
		g >>= 1
	}
	return v
}
