package mathx

import (
	"math"
	"testing"
)

func TestIntegratePolynomial(t *testing.T) {
	// ∫₀¹ x² dx = 1/3
	got := Integrate(func(x float64) float64 { return x * x }, 0, 1, 1e-10)
	if math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("∫x² = %v, want 1/3", got)
	}
}

func TestIntegrateSine(t *testing.T) {
	// ∫₀^π sin x dx = 2
	got := Integrate(math.Sin, 0, math.Pi, 1e-10)
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("∫sin = %v, want 2", got)
	}
}

func TestIntegrateReversedInterval(t *testing.T) {
	// Simpson handles b < a by sign convention.
	got := Integrate(func(x float64) float64 { return 1 }, 1, 0, 1e-10)
	if math.Abs(got+1) > 1e-9 {
		t.Errorf("∫₁⁰ 1 dx = %v, want -1", got)
	}
}

func TestIntegrateToInfExponential(t *testing.T) {
	// ∫₀^∞ e^{-x} dx = 1
	got := IntegrateToInf(func(x float64) float64 { return math.Exp(-x) }, 0, 1e-10)
	if math.Abs(got-1) > 1e-7 {
		t.Errorf("∫e^-x = %v, want 1", got)
	}
}

func TestIntegrateToInfShifted(t *testing.T) {
	// ∫₂^∞ e^{-x} dx = e^{-2}
	got := IntegrateToInf(func(x float64) float64 { return math.Exp(-x) }, 2, 1e-10)
	want := math.Exp(-2)
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("∫₂^∞ e^-x = %v, want %v", got, want)
	}
}

func TestPathLossIntegralClosedFormAnchors(t *testing.T) {
	// β=4: ∫₀^∞ r/(1+r⁴) dr = π/4.
	if got := PathLossIntegral(4); math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("PathLossIntegral(4) = %v, want π/4", got)
	}
	// β=3: (π/3)/sin(2π/3) = (π/3)/(√3/2) = 2π/(3√3).
	want := 2 * math.Pi / (3 * math.Sqrt(3))
	if got := PathLossIntegral(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("PathLossIntegral(3) = %v, want %v", got, want)
	}
}

func TestPathLossIntegralMatchesQuadrature(t *testing.T) {
	// The core cross-validation property from DESIGN.md.
	for beta := 2.1; beta <= 6.0; beta += 0.233 {
		closed := PathLossIntegral(beta)
		numeric := PathLossIntegralNumeric(beta, 1e-11)
		if math.Abs(closed-numeric) > 1e-6*math.Max(1, closed) {
			t.Errorf("β=%.3f: closed=%v numeric=%v", beta, closed, numeric)
		}
	}
}

func TestPathLossIntegralDivergesAtBeta2(t *testing.T) {
	for _, beta := range []float64{1.5, 2.0} {
		if got := PathLossIntegral(beta); !math.IsInf(got, 1) {
			t.Errorf("PathLossIntegral(%v) = %v, want +Inf", beta, got)
		}
	}
}

func TestLaplacePPPInterferenceProperties(t *testing.T) {
	// L(0) = 1 (no interference term), L in (0,1], decreasing in s and λ.
	if got := LaplacePPPInterference(0, 10, 1e-4, 3); got != 1 {
		t.Errorf("L(0) = %v, want 1", got)
	}
	if got := LaplacePPPInterference(1, 10, 0, 3); got != 1 {
		t.Errorf("L with λ=0 = %v, want 1", got)
	}
	prev := 1.0
	for s := 0.1; s < 100; s *= 3 {
		l := LaplacePPPInterference(s, 10, 1e-5, 3.5)
		if l <= 0 || l > 1 {
			t.Fatalf("L(%v) = %v outside (0,1]", s, l)
		}
		if l > prev {
			t.Fatalf("L not decreasing at s=%v: %v > %v", s, l, prev)
		}
		prev = l
	}
}

func TestLaplacePPPInterferenceDensityMonotone(t *testing.T) {
	prev := 1.0
	for lambda := 1e-8; lambda < 1e-2; lambda *= 10 {
		l := LaplacePPPInterference(2, 10, lambda, 4)
		if l >= prev {
			t.Fatalf("L not decreasing in λ at %v", lambda)
		}
		prev = l
	}
}

func TestLaplacePPPBeta2Degenerate(t *testing.T) {
	// β <= 2 means divergent mean interference: transform collapses to 0.
	if got := LaplacePPPInterference(1, 10, 1e-4, 2); got != 0 {
		t.Errorf("L with β=2 = %v, want 0", got)
	}
}
