// Package mathx supplies the numerical machinery behind the analytical
// network model: adaptive quadrature, the closed-form path-loss integral
// used by the Laplace transform of Poisson-point-process interference
// (paper Eq. 19), and an incrementally updatable Poisson-binomial
// distribution used for the gateway-capacity probability (paper Eq. 12).
package mathx

import "math"

// Integrate computes the definite integral of f over [a, b] with adaptive
// Simpson quadrature to the given absolute tolerance.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// IntegrateToInf computes the integral of f over [a, +inf) by the
// substitution x = a + t/(1-t), mapping [0,1) onto [a, inf).
func IntegrateToInf(f func(float64) float64, a, tol float64) float64 {
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		x := a + t/(1-t)
		jac := 1 / ((1 - t) * (1 - t))
		return f(x) * jac
	}
	return Integrate(g, 0, 1-1e-12, tol)
}

// PathLossIntegral returns the dimensionless interference integral of the
// paper's Eq. 19,
//
//	∫₀^∞ r ∫₀^∞ e^{-t(1+r^β)} dt dr  =  ∫₀^∞ r/(1+r^β) dr,
//
// in closed form: (π/β)·csc(2π/β), which converges only for β > 2.
// It returns +Inf for β <= 2, where the integral diverges.
func PathLossIntegral(beta float64) float64 {
	if beta <= 2 {
		return math.Inf(1)
	}
	return math.Pi / beta / math.Sin(2*math.Pi/beta)
}

// PathLossIntegralNumeric evaluates the same integral by quadrature; it
// exists to cross-validate the closed form in tests. The head [0, R] is
// integrated numerically; the tail ∫_R^∞ r^{1-β}/(1+r^{-β}) dr is summed
// as the alternating series Σ (-1)^m R^{2-(m+1)β} / ((m+1)β - 2), which
// converges fast for R >> 1 and keeps the estimate accurate even as
// β → 2⁺, where the raw integrand's tail is too heavy for quadrature.
func PathLossIntegralNumeric(beta, tol float64) float64 {
	if beta <= 2 {
		return math.Inf(1)
	}
	const r0 = 10.0
	head := Integrate(func(r float64) float64 {
		return r / (1 + math.Pow(r, beta))
	}, 0, r0, tol)
	tail := 0.0
	sign := 1.0
	for m := 0; m < 200; m++ {
		exp := 2 - float64(m+1)*beta
		term := sign * math.Pow(r0, exp) / (float64(m+1)*beta - 2)
		tail += term
		if math.Abs(term) < tol {
			break
		}
		sign = -sign
	}
	return head + tail
}

// LaplacePPPInterference returns the Laplace transform L_I(s) of the
// cumulative co-SF/co-channel interference from a Poisson point process of
// interferers with density lambda (devices per square meter), each
// transmitting with linear power p (milliwatts), under Rayleigh fading and
// path-loss exponent beta (paper Eq. 19):
//
//	L_I(s) = exp(-2π·λ·(s·p)^{2/β} · ∫₀^∞ r/(1+r^β) dr)
//
// s has the same units the interference enters the SNR with, i.e. the
// threshold-over-signal scaling th·h/(p_i·a(d)) the model plugs in
// (paper Eq. 18).
func LaplacePPPInterference(s, p, lambda, beta float64) float64 {
	if s <= 0 || lambda <= 0 {
		return 1 // no interference term
	}
	integral := PathLossIntegral(beta)
	if math.IsInf(integral, 1) {
		return 0
	}
	exponent := -2 * math.Pi * lambda * math.Pow(s*p, 2/beta) * integral
	return math.Exp(exponent)
}
