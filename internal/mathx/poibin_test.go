package mathx

import (
	"math"
	"testing"
	"testing/quick"

	"eflora/internal/rng"
)

// bruteAtMost enumerates all 2^n outcomes (n <= ~20) to compute P{N <= k}.
func bruteAtMost(ps []float64, k int) float64 {
	n := len(ps)
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		prob := 1.0
		successes := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				prob *= ps[i]
				successes++
			} else {
				prob *= 1 - ps[i]
			}
		}
		if successes <= k {
			total += prob
		}
	}
	return total
}

func TestPoissonBinomialMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(12)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = r.Float64()
		}
		pb := NewPoissonBinomial(8)
		for _, p := range ps {
			pb.Add(p)
		}
		for k := 0; k <= 7; k++ {
			got := pb.ProbAtMost(k)
			want := bruteAtMost(ps, k)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: P{N<=%d} = %v, brute = %v (ps=%v)", trial, k, got, want, ps)
			}
		}
	}
}

func TestPoissonBinomialEmpty(t *testing.T) {
	pb := NewPoissonBinomial(8)
	if got := pb.ProbAtMost(0); got != 1 {
		t.Errorf("empty P{N<=0} = %v, want 1", got)
	}
	if pb.Len() != 0 {
		t.Errorf("empty Len = %d", pb.Len())
	}
}

func TestPoissonBinomialCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoissonBinomial(0) did not panic")
		}
	}()
	NewPoissonBinomial(0)
}

func TestPoissonBinomialAddRemoveRoundTrip(t *testing.T) {
	r := rng.New(2)
	pb := NewPoissonBinomial(8)
	ps := make([]float64, 50)
	for i := range ps {
		ps[i] = r.Float64() * 0.9 // keep away from 1 for stable removal
		pb.Add(ps[i])
	}
	snapshot := make([]float64, 8)
	for k := 0; k < 8; k++ {
		snapshot[k] = pb.ProbAtMost(k)
	}
	// Remove and re-add a handful of trials; distribution must return.
	for _, i := range []int{0, 7, 23, 49} {
		pb.Remove(ps[i])
		pb.Add(ps[i])
	}
	for k := 0; k < 8; k++ {
		if math.Abs(pb.ProbAtMost(k)-snapshot[k]) > 1e-9 {
			t.Fatalf("P{N<=%d} drifted after remove/add: %v vs %v", k, pb.ProbAtMost(k), snapshot[k])
		}
	}
}

func TestPoissonBinomialRemoveMatchesRebuild(t *testing.T) {
	r := rng.New(3)
	ps := make([]float64, 20)
	for i := range ps {
		ps[i] = r.Float64() * 0.95
	}
	pb := NewPoissonBinomial(8)
	for _, p := range ps {
		pb.Add(p)
	}
	pb.Remove(ps[5])
	rebuilt := NewPoissonBinomial(8)
	for i, p := range ps {
		if i == 5 {
			continue
		}
		rebuilt.Add(p)
	}
	for k := 0; k < 8; k++ {
		if math.Abs(pb.ProbAtMost(k)-rebuilt.ProbAtMost(k)) > 1e-8 {
			t.Fatalf("remove diverges from rebuild at k=%d: %v vs %v",
				k, pb.ProbAtMost(k), rebuilt.ProbAtMost(k))
		}
	}
}

func TestPoissonBinomialRemoveFromEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Remove from empty did not panic")
		}
	}()
	NewPoissonBinomial(8).Remove(0.5)
}

func TestProbAtMostExcludingMatchesCloneRemove(t *testing.T) {
	r := rng.New(4)
	ps := make([]float64, 30)
	pb := NewPoissonBinomial(8)
	for i := range ps {
		ps[i] = r.Float64() * 0.9
		pb.Add(ps[i])
	}
	for _, p := range ps {
		fast := pb.ProbAtMostExcluding(p, 7)
		slow := pb.Clone()
		slow.Remove(p)
		want := slow.ProbAtMost(7)
		if math.Abs(fast-want) > 1e-9 {
			t.Fatalf("ProbAtMostExcluding(%v) = %v, clone+remove = %v", p, fast, want)
		}
	}
}

func TestProbAtMostExcludingEdges(t *testing.T) {
	pb := NewPoissonBinomial(8)
	pb.Add(0.5)
	if got := pb.ProbAtMostExcluding(0.5, -1); got != 0 {
		t.Errorf("k=-1: %v, want 0", got)
	}
	if got := pb.ProbAtMostExcluding(0.5, 8); got != 1 {
		t.Errorf("k=cap: %v, want 1", got)
	}
}

func TestPoissonBinomialCertainSuccesses(t *testing.T) {
	pb := NewPoissonBinomial(4)
	for i := 0; i < 3; i++ {
		pb.Add(1.0)
	}
	if got := pb.ProbAtMost(2); math.Abs(got) > 1e-12 {
		t.Errorf("P{N<=2} with 3 certain successes = %v, want 0", got)
	}
	if got := pb.ProbAtMost(3); math.Abs(got-1) > 1e-12 {
		t.Errorf("P{N<=3} = %v, want 1", got)
	}
	pb.Remove(1.0)
	if got := pb.ProbAtMost(2); math.Abs(got-1) > 1e-12 {
		t.Errorf("after removing one certain success, P{N<=2} = %v, want 1", got)
	}
}

func TestPoissonBinomialProbabilitiesValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 1 + int(nRaw)%64
		pb := NewPoissonBinomial(8)
		for i := 0; i < n; i++ {
			pb.Add(r.Float64())
		}
		prev := 0.0
		for k := 0; k < 8; k++ {
			p := pb.ProbAtMost(k)
			if p < prev-1e-12 || p < 0 || p > 1+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonBinomialClampsInputs(t *testing.T) {
	pb := NewPoissonBinomial(8)
	pb.Add(-0.5) // clamped to 0
	pb.Add(1.5)  // clamped to 1
	pb.Add(math.NaN())
	if got := pb.ProbAtMost(0); math.Abs(got) > 1e-12 {
		t.Errorf("with one certain success, P{N<=0} = %v, want 0", got)
	}
	if got := pb.ProbAtMost(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("P{N<=1} = %v, want 1", got)
	}
}

func BenchmarkPoissonBinomialAdd(b *testing.B) {
	pb := NewPoissonBinomial(8)
	for i := 0; i < b.N; i++ {
		pb.Add(0.01)
		if pb.Len() > 10000 {
			pb = NewPoissonBinomial(8)
		}
	}
}

func BenchmarkProbAtMostExcluding(b *testing.B) {
	r := rng.New(1)
	pb := NewPoissonBinomial(8)
	for i := 0; i < 3000; i++ {
		pb.Add(r.Float64() * 0.02)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += pb.ProbAtMostExcluding(0.01, 7)
	}
	_ = sink
}
