package mathx

import (
	"fmt"
	"math"
)

// PoissonBinomial tracks the distribution of the number of successes among
// independent Bernoulli trials with heterogeneous probabilities, truncated
// at a cap: it maintains P{N = m} exactly for m < cap and lumps P{N >= cap}
// into one bucket. Trials can be added and removed in O(cap), which is what
// lets the allocator re-evaluate the gateway-capacity probability
// (paper Eq. 12, the SX1301's eight-packet demodulation limit) after a
// single-device change without touching the other N-1 devices.
type PoissonBinomial struct {
	cap int
	// pm[m] = P{N = m} for m in [0, cap); tail = P{N >= cap}.
	pm   []float64
	tail float64
	n    int
}

// NewPoissonBinomial returns an empty distribution (P{N=0} = 1) truncated
// at the given cap. cap must be positive.
func NewPoissonBinomial(capN int) *PoissonBinomial {
	if capN <= 0 {
		panic(fmt.Sprintf("mathx: PoissonBinomial cap %d must be positive", capN))
	}
	pm := make([]float64, capN)
	pm[0] = 1
	return &PoissonBinomial{cap: capN, pm: pm}
}

// Reset returns the distribution to the empty state (P{N=0} = 1),
// reusing its storage.
func (pb *PoissonBinomial) Reset() {
	clear(pb.pm)
	pb.pm[0] = 1
	pb.tail = 0
	pb.n = 0
}

// Clone returns an independent copy.
func (pb *PoissonBinomial) Clone() *PoissonBinomial {
	cp := &PoissonBinomial{cap: pb.cap, pm: make([]float64, pb.cap), tail: pb.tail, n: pb.n}
	copy(cp.pm, pb.pm)
	return cp
}

// Len returns the number of trials currently in the distribution.
func (pb *PoissonBinomial) Len() int { return pb.n }

// Add incorporates a Bernoulli(p) trial. Probabilities are clamped to
// [0, 1].
func (pb *PoissonBinomial) Add(p float64) {
	p = clamp01(p)
	q := 1 - p
	// Mass flowing from m = cap-1 into the tail.
	pb.tail += p * pb.pm[pb.cap-1]
	for m := pb.cap - 1; m >= 1; m-- {
		pb.pm[m] = q*pb.pm[m] + p*pb.pm[m-1]
	}
	pb.pm[0] = q * pb.pm[0]
	pb.n++
}

// Remove deletes a previously added Bernoulli(p) trial (deconvolution).
// The caller must remove exactly the probabilities it added; removing a
// trial that was never added corrupts the distribution. Removal is
// numerically stable for p < 1; p == 1 trials are handled by shifting.
func (pb *PoissonBinomial) Remove(p float64) {
	p = clamp01(p)
	if pb.n == 0 {
		panic("mathx: Remove from empty PoissonBinomial")
	}
	pb.n--
	q := 1 - p
	if q < 1e-12 {
		// A certain success: N' = N - 1, so shift down one slot. The tail
		// keeps mass for N' >= cap-? — with a certain success the previous
		// distribution had pm[0] = 0, and P{N'=m} = P{N=m+1}.
		for m := 0; m < pb.cap-1; m++ {
			pb.pm[m] = pb.pm[m+1]
		}
		// P{N' = cap-1} + P{N' >= cap} were both inside the old tail; we
		// cannot split them exactly, so keep them lumped in the tail and
		// set the last slot to 0. This only loses resolution when more
		// than cap certain successes exist, which the model never does.
		pb.pm[pb.cap-1] = 0
		return
	}
	// Invert the Add recurrence top-down: pm_old[0] = pm_new[0]/q,
	// pm_old[m] = (pm_new[m] - p*pm_old[m-1]) / q.
	prev := pb.pm[0] / q
	pb.pm[0] = prev
	for m := 1; m < pb.cap; m++ {
		cur := (pb.pm[m] - p*prev) / q
		if cur < 0 {
			cur = 0 // numerical floor
		}
		pb.pm[m] = cur
		prev = cur
	}
	// Tail must absorb the renormalization: recompute as 1 - sum(pm).
	sum := 0.0
	for _, v := range pb.pm {
		sum += v
	}
	pb.tail = 1 - sum
	if pb.tail < 0 {
		pb.tail = 0
	}
}

// ProbAtMost returns P{N <= k} for k < cap. For k >= cap-1 it returns
// 1 - tail when k == cap-1 and 1 for larger k (the tail is P{N >= cap}).
func (pb *PoissonBinomial) ProbAtMost(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= pb.cap {
		return 1
	}
	sum := 0.0
	for m := 0; m <= k && m < pb.cap; m++ {
		sum += pb.pm[m]
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ProbAtMostExcluding returns P{N_{-p} <= k}: the probability that at most
// k of the trials other than one with success probability p succeed. It is
// equivalent to Clone + Remove(p) + ProbAtMost(k) but allocation free for
// the hot path when k is small.
func (pb *PoissonBinomial) ProbAtMostExcluding(p float64, k int) float64 {
	p = clamp01(p)
	if k < 0 {
		return 0
	}
	if k >= pb.cap {
		return 1
	}
	q := 1 - p
	if q < 1e-12 {
		// Removing a certain success shifts everything down by one.
		return pb.ProbAtMost(k + 1)
	}
	// Deconvolve only the first k+1 coefficients.
	sum := 0.0
	prev := pb.pm[0] / q
	sum += prev
	for m := 1; m <= k; m++ {
		cur := (pb.pm[m] - p*prev) / q
		if cur < 0 {
			cur = 0
		}
		sum += cur
		prev = cur
	}
	if sum > 1 {
		return 1
	}
	return sum
}

func clamp01(p float64) float64 {
	switch {
	case math.IsNaN(p), p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}
