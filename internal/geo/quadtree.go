package geo

import "math"

// QuadtreeOptions controls QuadtreePartition.
type QuadtreeOptions struct {
	// MaxLeaf is the largest number of points a leaf cell may hold before
	// it splits. Defaults to 256 when <= 0.
	MaxLeaf int
	// MaxDepth bounds the recursion depth; a node at MaxDepth stays a leaf
	// regardless of its population. Defaults to 32 when <= 0, which is deep
	// enough that the float64 midpoints degenerate before the bound binds.
	MaxDepth int
}

func (o QuadtreeOptions) withDefaults() QuadtreeOptions {
	if o.MaxLeaf <= 0 {
		o.MaxLeaf = 256
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 32
	}
	return o
}

// Rect is a half-open axis-aligned rectangle [MinX,MaxX) x [MinY,MaxY);
// cells on the tree's outer boundary are closed so the root covers every
// input point exactly.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Width returns the rectangle's horizontal extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the rectangle's vertical extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Cell is one leaf of the quadtree: its bounding rectangle and the indices
// (into the input slice, ascending) of the points it holds.
type Cell struct {
	Rect    Rect
	Members []int
}

// Partition is the result of QuadtreePartition: the root bounding square,
// the non-empty leaf cells in deterministic DFS order, and for each input
// point the index of the cell that holds it.
type Partition struct {
	Root   Rect
	Cells  []Cell
	CellOf []int
}

// QuadtreePartition splits pts into leaf cells of at most MaxLeaf points
// each by recursive quadrant subdivision of the points' bounding square.
//
// The partition is a pure function of the point *set*: the root square and
// every split depend only on coordinate extrema and midpoints, so permuting
// the input order permutes nothing but each cell's Members (which are kept
// ascending). Every point lands in exactly one cell, empty leaves are
// dropped, and cells appear in depth-first SW, SE, NW, NE order.
func QuadtreePartition(pts []Point, opt QuadtreeOptions) Partition {
	opt = opt.withDefaults()
	part := Partition{CellOf: make([]int, len(pts))}
	if len(pts) == 0 {
		return part
	}

	// Bounding square: order-independent min/max, widened to equal sides
	// about the center so quadrants stay square at every depth.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	side := math.Max(maxX-minX, maxY-minY)
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	part.Root = Rect{
		// Widening to a square can round a hair inside the extrema, so
		// take the union with the exact bounding box.
		MinX: math.Min(cx-side/2, minX), MaxX: math.Max(cx+side/2, maxX),
		MinY: math.Min(cy-side/2, minY), MaxY: math.Max(cy+side/2, maxY),
	}

	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	part.split(pts, all, part.Root, 0, opt)
	return part
}

// split recurses on members (ascending indices into pts) within r,
// appending leaf cells to p.Cells.
func (p *Partition) split(pts []Point, members []int, r Rect, depth int, opt QuadtreeOptions) {
	if len(members) <= opt.MaxLeaf || depth >= opt.MaxDepth || degenerate(pts, members) {
		for _, i := range members {
			p.CellOf[i] = len(p.Cells)
		}
		p.Cells = append(p.Cells, Cell{Rect: r, Members: members})
		return
	}
	midX, midY := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	// Quadrant of a point: east when X >= midX, north when Y >= midY. A
	// stable partition of an ascending members slice keeps each quadrant's
	// slice ascending, so cell membership stays input-order independent.
	var quads [4][]int
	for _, i := range members {
		q := 0
		if pts[i].X >= midX {
			q |= 1
		}
		if pts[i].Y >= midY {
			q |= 2
		}
		quads[q] = append(quads[q], i)
	}
	rects := [4]Rect{
		{r.MinX, r.MinY, midX, midY}, // SW
		{midX, r.MinY, r.MaxX, midY}, // SE
		{r.MinX, midY, midX, r.MaxY}, // NW
		{midX, midY, r.MaxX, r.MaxY}, // NE
	}
	for q, sub := range quads {
		if len(sub) == 0 {
			continue
		}
		p.split(pts, sub, rects[q], depth+1, opt)
	}
}

// degenerate reports whether every member is at the same coordinates, in
// which case no split can separate them and the node must stay a leaf.
func degenerate(pts []Point, members []int) bool {
	first := pts[members[0]]
	for _, i := range members[1:] {
		if pts[i] != first {
			return false
		}
	}
	return true
}
