package geo

import (
	"encoding/binary"
	"testing"

	"eflora/internal/rng"
)

// checkPartitionInvariants asserts the structural contract of a quadtree
// partition: every point is in exactly one cell, members are ascending,
// cells are non-empty, member points lie inside their cell's rectangle
// (closed bounds; the tree's outer boundary is closed), and CellOf agrees
// with the member lists.
func checkPartitionInvariants(t *testing.T, pts []Point, part Partition) {
	t.Helper()
	if len(part.CellOf) != len(pts) {
		t.Fatalf("CellOf has %d entries for %d points", len(part.CellOf), len(pts))
	}
	seen := make([]int, len(pts))
	for ci, c := range part.Cells {
		if len(c.Members) == 0 {
			t.Fatalf("cell %d is empty", ci)
		}
		prev := -1
		for _, i := range c.Members {
			if i <= prev {
				t.Fatalf("cell %d members not strictly ascending: %v", ci, c.Members)
			}
			prev = i
			if i < 0 || i >= len(pts) {
				t.Fatalf("cell %d member %d out of range", ci, i)
			}
			seen[i]++
			if part.CellOf[i] != ci {
				t.Fatalf("CellOf[%d] = %d, but point is member of cell %d", i, part.CellOf[i], ci)
			}
			p := pts[i]
			if p.X < c.Rect.MinX || p.X > c.Rect.MaxX || p.Y < c.Rect.MinY || p.Y > c.Rect.MaxY {
				t.Fatalf("point %d %+v outside its cell rect %+v", i, p, c.Rect)
			}
			if p.X < part.Root.MinX || p.X > part.Root.MaxX || p.Y < part.Root.MinY || p.Y > part.Root.MaxY {
				t.Fatalf("point %d %+v outside root %+v", i, p, part.Root)
			}
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("point %d appears in %d cells, want exactly 1", i, n)
		}
	}
}

func TestQuadtreePartitionProperties(t *testing.T) {
	for _, n := range []int{1, 10, 257, 2000} {
		r := rng.New(uint64(1000 + n))
		pts := UniformDisc(n, 5000, r)
		part := QuadtreePartition(pts, QuadtreeOptions{MaxLeaf: 64})
		checkPartitionInvariants(t, pts, part)
		for ci, c := range part.Cells {
			// UniformDisc points are distinct with probability 1, and the
			// default MaxDepth never binds at these scales, so the leaf
			// bound must hold exactly.
			if len(c.Members) > 64 {
				t.Fatalf("n=%d: cell %d has %d members > MaxLeaf 64", n, ci, len(c.Members))
			}
		}
		if n <= 64 && len(part.Cells) != 1 {
			t.Fatalf("n=%d under MaxLeaf should be a single cell, got %d", n, len(part.Cells))
		}
	}
}

// TestQuadtreePartitionOrderIndependent pins that the cell structure is a
// function of the point set: permuting the input permutes only the indices
// inside Members, never the geometry or the cell order.
func TestQuadtreePartitionOrderIndependent(t *testing.T) {
	r := rng.New(77)
	pts := UniformDisc(500, 4000, r)
	opt := QuadtreeOptions{MaxLeaf: 32}
	base := QuadtreePartition(pts, opt)

	perm := r.Perm(len(pts))
	shuffled := make([]Point, len(pts))
	for newIdx, origIdx := range perm {
		shuffled[newIdx] = pts[origIdx]
	}
	got := QuadtreePartition(shuffled, opt)

	if got.Root != base.Root {
		t.Fatalf("root differs: %+v vs %+v", got.Root, base.Root)
	}
	if len(got.Cells) != len(base.Cells) {
		t.Fatalf("cell count differs: %d vs %d", len(got.Cells), len(base.Cells))
	}
	for i, c := range got.Cells {
		if c.Rect != base.Cells[i].Rect {
			t.Fatalf("cell %d rect differs: %+v vs %+v", i, c.Rect, base.Cells[i].Rect)
		}
	}
	// Each original point must land in the same cell (by index) regardless
	// of where the permutation placed it.
	for newIdx, origIdx := range perm {
		if got.CellOf[newIdx] != base.CellOf[origIdx] {
			t.Fatalf("point %d moved from cell %d to cell %d under permutation",
				origIdx, base.CellOf[origIdx], got.CellOf[newIdx])
		}
	}
}

func TestQuadtreePartitionDegenerate(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		part := QuadtreePartition(nil, QuadtreeOptions{})
		if len(part.Cells) != 0 || len(part.CellOf) != 0 {
			t.Fatalf("empty input produced %d cells", len(part.Cells))
		}
	})
	t.Run("single", func(t *testing.T) {
		pts := []Point{{X: 3, Y: -4}}
		part := QuadtreePartition(pts, QuadtreeOptions{MaxLeaf: 1})
		checkPartitionInvariants(t, pts, part)
		if len(part.Cells) != 1 {
			t.Fatalf("single point produced %d cells", len(part.Cells))
		}
	})
	t.Run("all-same-point", func(t *testing.T) {
		pts := make([]Point, 1000)
		for i := range pts {
			pts[i] = Point{X: 1.5, Y: 2.5}
		}
		part := QuadtreePartition(pts, QuadtreeOptions{MaxLeaf: 4})
		checkPartitionInvariants(t, pts, part)
		// Unsplittable: must terminate as one leaf, not recurse forever.
		if len(part.Cells) != 1 {
			t.Fatalf("coincident points produced %d cells, want 1", len(part.Cells))
		}
	})
	t.Run("collinear", func(t *testing.T) {
		pts := make([]Point, 100)
		for i := range pts {
			pts[i] = Point{X: float64(i), Y: 42}
		}
		part := QuadtreePartition(pts, QuadtreeOptions{MaxLeaf: 8})
		checkPartitionInvariants(t, pts, part)
		for ci, c := range part.Cells {
			if len(c.Members) > 8 {
				t.Fatalf("collinear cell %d has %d members > 8", ci, len(c.Members))
			}
		}
	})
}

// fuzzPoints decodes data as consecutive little-endian int16 coordinate
// pairs, scaled to meters; trailing bytes that do not complete a pair are
// ignored.
func fuzzPoints(data []byte) []Point {
	n := len(data) / 4
	if n > 2048 {
		n = 2048
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := int16(binary.LittleEndian.Uint16(data[4*i:]))
		y := int16(binary.LittleEndian.Uint16(data[4*i+2:]))
		pts[i] = Point{X: float64(x), Y: float64(y)}
	}
	return pts
}

// FuzzQuadtreePartition drives the partitioner with arbitrary coordinate
// sets and leaf/depth knobs, asserting the structural invariants and input
// order independence (reversal) on every case.
func FuzzQuadtreePartition(f *testing.F) {
	// Single device.
	f.Add([]byte{1, 0, 2, 0}, uint16(4), uint16(8))
	// Degenerate all-same-point.
	f.Add([]byte{5, 0, 5, 0, 5, 0, 5, 0, 5, 0, 5, 0, 5, 0, 5, 0}, uint16(1), uint16(4))
	// Collinear along Y = 3.
	f.Add([]byte{0, 0, 3, 0, 1, 0, 3, 0, 2, 0, 3, 0, 3, 0, 3, 0, 4, 0, 3, 0}, uint16(2), uint16(0))
	// A small scatter crossing all four quadrants (negative coordinates).
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0, 1, 0, 0xff, 0xff, 1, 0, 1, 0, 0xff, 0xff}, uint16(1), uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, maxLeaf, maxDepth uint16) {
		pts := fuzzPoints(data)
		opt := QuadtreeOptions{MaxLeaf: int(maxLeaf % 64), MaxDepth: int(maxDepth % 20)}
		part := QuadtreePartition(pts, opt)
		checkPartitionInvariants(t, pts, part)

		// Reversing the input must not change the geometry or which cell
		// holds each point.
		rev := make([]Point, len(pts))
		for i, p := range pts {
			rev[len(pts)-1-i] = p
		}
		rpart := QuadtreePartition(rev, opt)
		if rpart.Root != part.Root || len(rpart.Cells) != len(part.Cells) {
			t.Fatalf("reversal changed structure: %d cells root %+v vs %d cells root %+v",
				len(rpart.Cells), rpart.Root, len(part.Cells), part.Root)
		}
		for i := range pts {
			if rpart.CellOf[len(pts)-1-i] != part.CellOf[i] {
				t.Fatalf("reversal moved point %d: cell %d vs %d",
					i, part.CellOf[i], rpart.CellOf[len(pts)-1-i])
			}
		}
	})
}
