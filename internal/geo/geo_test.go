package geo

import (
	"math"
	"testing"
	"testing/quick"

	"eflora/internal/rng"
)

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformDiscInsideRadius(t *testing.T) {
	r := rng.New(1)
	const radius = 5000.0
	pts := UniformDisc(10000, radius, r)
	if len(pts) != 10000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Norm() > radius+1e-9 {
			t.Fatalf("point %v outside radius %v", p, radius)
		}
	}
}

func TestUniformDiscIsAreaUniform(t *testing.T) {
	// Half the points should fall within radius/sqrt(2) (equal areas).
	r := rng.New(2)
	const radius = 1000.0
	pts := UniformDisc(50000, radius, r)
	inner := 0
	for _, p := range pts {
		if p.Norm() <= radius/math.Sqrt2 {
			inner++
		}
	}
	frac := float64(inner) / float64(len(pts))
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("inner-half fraction = %v, want ~0.5", frac)
	}
}

func TestUniformDiscDeterministic(t *testing.T) {
	a := UniformDisc(100, 500, rng.New(9))
	b := UniformDisc(100, 500, rng.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different deployments at %d", i)
		}
	}
}

func TestGridGatewaysCounts(t *testing.T) {
	for _, g := range []int{0, 1, 2, 3, 4, 5, 9, 16, 25} {
		pts := GridGateways(g, 5000)
		if len(pts) != g {
			t.Errorf("GridGateways(%d) returned %d points", g, len(pts))
		}
	}
}

func TestGridGatewaysSingleAtCenter(t *testing.T) {
	pts := GridGateways(1, 5000)
	if pts[0].Norm() > 1e-9 {
		t.Errorf("single gateway at %v, want center", pts[0])
	}
}

func TestGridGatewaysInsideDisc(t *testing.T) {
	for _, g := range []int{2, 5, 9, 25} {
		for _, p := range GridGateways(g, 5000) {
			if p.Norm() > 5000+1e-6 {
				t.Errorf("gateway %v outside disc (g=%d)", p, g)
			}
		}
	}
}

func TestGridGatewaysDistinct(t *testing.T) {
	for _, g := range []int{2, 4, 9, 25} {
		pts := GridGateways(g, 5000)
		seen := make(map[Point]bool)
		for _, p := range pts {
			if seen[p] {
				t.Errorf("duplicate gateway position %v (g=%d)", p, g)
			}
			seen[p] = true
		}
	}
}

func TestGridGatewaysDeterministic(t *testing.T) {
	a := GridGateways(7, 5000)
	b := GridGateways(7, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GridGateways is not deterministic")
		}
	}
}

func TestNearestIndex(t *testing.T) {
	targets := []Point{{0, 0}, {10, 0}, {0, 10}}
	idx, d := NearestIndex(Point{9, 1}, targets)
	if idx != 1 {
		t.Errorf("nearest = %d, want 1", idx)
	}
	if math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("distance = %v, want sqrt(2)", d)
	}
}

func TestNearestIndexEmpty(t *testing.T) {
	idx, d := NearestIndex(Point{1, 2}, nil)
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("NearestIndex(empty) = (%d, %v), want (-1, +Inf)", idx, d)
	}
}

func TestNeighborCountsSmall(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2, 0}, {100, 100}}
	counts := NeighborCounts(pts, 1.5)
	want := []int{1, 2, 1, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
}

func TestNeighborCountsMatchesBruteForce(t *testing.T) {
	r := rng.New(5)
	pts := UniformDisc(300, 100, r)
	const radius = 20.0
	got := NeighborCounts(pts, radius)
	for i, p := range pts {
		want := 0
		for j, q := range pts {
			if i != j && p.Dist(q) <= radius {
				want++
			}
		}
		if got[i] != want {
			t.Fatalf("counts[%d] = %d, brute force says %d", i, got[i], want)
		}
	}
}

func TestNeighborCountsDegenerate(t *testing.T) {
	if c := NeighborCounts(nil, 10); len(c) != 0 {
		t.Error("nil points should give empty counts")
	}
	if c := NeighborCounts([]Point{{0, 0}}, 10); c[0] != 0 {
		t.Error("single point has no neighbors")
	}
	c := NeighborCounts([]Point{{0, 0}, {1, 1}}, 0)
	if c[0] != 0 || c[1] != 0 {
		t.Error("zero radius should count no neighbors")
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, -1})
	if p != (Point{4, 1}) {
		t.Errorf("Add = %v", p)
	}
	q := Point{2, -3}.Scale(2)
	if q != (Point{4, -6}) {
		t.Errorf("Scale = %v", q)
	}
}
