// Package geo provides the 2-D geometry and deployment generators used to
// lay out LoRa end devices and gateways: uniform-in-disc device placement
// and the meshed (grid) gateway placement the paper's evaluation describes.
package geo

import (
	"math"
	"sort"

	"eflora/internal/rng"
)

// Point is a position in meters on the deployment plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance in meters between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Norm returns the distance from the origin.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// UniformDisc places n points uniformly at random inside a disc of the
// given radius centered at the origin, matching the paper's end-device
// deployment (uniform within a 5 km-radius disc).
func UniformDisc(n int, radius float64, r *rng.RNG) []Point {
	pts := make([]Point, n)
	for i := range pts {
		// Inverse-CDF radial sampling: r = R*sqrt(u) is uniform in area.
		rad := radius * math.Sqrt(r.Float64())
		theta := 2 * math.Pi * r.Float64()
		pts[i] = Point{X: rad * math.Cos(theta), Y: rad * math.Sin(theta)}
	}
	return pts
}

// GridGateways places g gateways deterministically inside a disc of the
// given radius following the paper's evaluation setup: the region is
// meshed and gateways sit on the mesh cross positions, uniformly spread
// within the coverage. One gateway is placed at the center; multiple
// gateways are the g grid crossings nearest the center of a k x k lattice
// scaled to the disc's inscribed square.
func GridGateways(g int, radius float64) []Point {
	if g <= 0 {
		return nil
	}
	if g == 1 {
		return []Point{{}}
	}
	// Mesh the disc's bounding square into k x k cells and use the cell
	// centers that fall inside the disc, growing k until at least g
	// candidates exist; keep the g closest to the center (ties broken by
	// angle for determinism). Cell centers keep gateways strictly inside
	// the coverage area — lattice corner points would land on the disc
	// boundary itself.
	var candidates []Point
	for k := int(math.Ceil(math.Sqrt(float64(g)))); len(candidates) < g; k++ {
		candidates = candidates[:0]
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				p := Point{
					X: -radius + (2*float64(i)+1)*radius/float64(k),
					Y: -radius + (2*float64(j)+1)*radius/float64(k),
				}
				if p.Norm() <= radius {
					candidates = append(candidates, p)
				}
			}
		}
	}
	sort.Slice(candidates, func(a, b int) bool {
		da, db := candidates[a].Norm(), candidates[b].Norm()
		if da != db {
			return da < db
		}
		aa := math.Atan2(candidates[a].Y, candidates[a].X)
		ab := math.Atan2(candidates[b].Y, candidates[b].X)
		if aa != ab {
			return aa < ab
		}
		if candidates[a].X != candidates[b].X {
			return candidates[a].X < candidates[b].X
		}
		return candidates[a].Y < candidates[b].Y
	})
	return candidates[:g]
}

// NearestIndex returns the index in targets of the point closest to p and
// that distance. It returns (-1, +Inf) when targets is empty.
func NearestIndex(p Point, targets []Point) (int, float64) {
	best, bestDist := -1, math.Inf(1)
	for i, t := range targets {
		if d := p.Dist(t); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}

// NeighborCounts returns, for each point, how many other points lie within
// the given radius. The allocator uses this for its density-first device
// ordering. The implementation uses a uniform grid so it stays near O(n)
// for the paper's 5000-device deployments.
func NeighborCounts(pts []Point, radius float64) []int {
	counts := make([]int, len(pts))
	if radius <= 0 || len(pts) < 2 {
		return counts
	}
	cell := radius
	type key struct{ cx, cy int }
	grid := make(map[key][]int, len(pts))
	keyOf := func(p Point) key {
		return key{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
	}
	for i, p := range pts {
		k := keyOf(p)
		grid[k] = append(grid[k], i)
	}
	r2 := radius * radius
	for i, p := range pts {
		k := keyOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[key{k.cx + dx, k.cy + dy}] {
					if j == i {
						continue
					}
					ddx, ddy := p.X-pts[j].X, p.Y-pts[j].Y
					if ddx*ddx+ddy*ddy <= r2 {
						counts[i]++
					}
				}
			}
		}
	}
	return counts
}
