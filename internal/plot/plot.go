// Package plot renders simple line and bar charts as text, so the
// experiment harness can print figure-shaped output (the paper's plots) in
// a terminal without any graphics dependencies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycles per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart is a text line chart.
type Chart struct {
	Title      string
	XLabel     string
	YLabel     string
	Width      int // plot area columns (default 64)
	Height     int // plot area rows (default 16)
	Series     []Series
	YStartZero bool // force the Y axis to start at zero
}

// Add appends a series.
func (c *Chart) Add(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// Render draws the chart into a string.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if c.YStartZero && ymin > 0 {
		ymin = 0
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}

	yTopLabel := fmt.Sprintf("%.3g", ymax)
	yBotLabel := fmt.Sprintf("%.3g", ymin)
	pad := len(yTopLabel)
	if len(yBotLabel) > pad {
		pad = len(yBotLabel)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTopLabel)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", pad, yBotLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	xLeft := fmt.Sprintf("%.3g", xmin)
	xRight := fmt.Sprintf("%.3g", xmax)
	gap := w - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s %s%s%s", strings.Repeat(" ", pad+1), xLeft, strings.Repeat(" ", gap), xRight)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteByte('\n')
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Bar renders a horizontal bar chart for labelled values.
func Bar(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 48
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(labels) == 0 || len(labels) != len(values) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range values {
		bars := 0
		if maxVal > 0 && v > 0 {
			bars = int(math.Round(v / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.4g\n", maxLabel, labels[i], strings.Repeat("#", bars), v)
	}
	return b.String()
}

// Table renders rows of cells with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcell := range header {
		widths[i] = len(hcell)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
