package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartRenderContainsSeries(t *testing.T) {
	var c Chart
	c.Title = "Minimum energy efficiency"
	c.XLabel = "end devices"
	c.YLabel = "bits/mJ"
	c.Add("EF-LoRa", []float64{500, 1000, 2000}, []float64{2.0, 1.5, 1.0})
	c.Add("Legacy", []float64{500, 1000, 2000}, []float64{0.5, 0.4, 0.3})
	out := c.Render()
	for _, want := range []string{"Minimum energy efficiency", "EF-LoRa", "Legacy", "end devices", "bits/mJ", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	var c Chart
	c.Title = "empty"
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart should say so:\n%s", out)
	}
}

func TestChartSkipsNaNAndInf(t *testing.T) {
	var c Chart
	c.Add("s", []float64{1, 2, 3}, []float64{math.NaN(), math.Inf(1), 5})
	out := c.Render()
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into render:\n%s", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	var c Chart
	c.Add("flat", []float64{1, 1, 1}, []float64{2, 2, 2})
	out := c.Render()
	if out == "" || strings.Contains(out, "(no data)") {
		t.Errorf("flat series should still render:\n%s", out)
	}
}

func TestChartYStartZero(t *testing.T) {
	var c Chart
	c.YStartZero = true
	c.Add("s", []float64{0, 1}, []float64{10, 20})
	out := c.Render()
	if !strings.Contains(out, "0") {
		t.Errorf("YStartZero should pin axis at 0:\n%s", out)
	}
}

func TestChartMarkerPlacement(t *testing.T) {
	// A single point must land in the grid (no panic, marker present).
	var c Chart
	c.Width, c.Height = 10, 5
	c.Add("pt", []float64{5}, []float64{5})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	out := Bar("lifetimes", []string{"EF-LoRa", "RS-LoRa", "Legacy"}, []float64{100, 80, 50}, 20)
	if !strings.Contains(out, "EF-LoRa") || !strings.Contains(out, "#") {
		t.Errorf("bar chart malformed:\n%s", out)
	}
	// Largest value gets the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var efBars, legacyBars int
	for _, l := range lines {
		n := strings.Count(l, "#")
		if strings.HasPrefix(l, "EF-LoRa") {
			efBars = n
		}
		if strings.HasPrefix(l, "Legacy") {
			legacyBars = n
		}
	}
	if efBars <= legacyBars {
		t.Errorf("bar lengths not proportional: EF=%d Legacy=%d\n%s", efBars, legacyBars, out)
	}
}

func TestBarEmptyAndMismatched(t *testing.T) {
	if out := Bar("x", nil, nil, 10); !strings.Contains(out, "(no data)") {
		t.Error("empty bar should say no data")
	}
	if out := Bar("x", []string{"a"}, []float64{1, 2}, 10); !strings.Contains(out, "(no data)") {
		t.Error("mismatched bar should say no data")
	}
}

func TestBarZeroValues(t *testing.T) {
	out := Bar("z", []string{"a", "b"}, []float64{0, 0}, 10)
	if strings.Contains(out, "#") {
		t.Errorf("zero values should draw no bars:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"method", "minEE"}, [][]string{
		{"EF-LoRa", "1.92"},
		{"Legacy-LoRa", "0.31"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Header and rows align: the second column starts at the same offset.
	idx := strings.Index(lines[0], "minEE")
	if idx < 0 {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.HasPrefix(lines[2][idx:], "1.92") && !strings.Contains(lines[2], "1.92") {
		t.Errorf("row misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"1", "2", "extra"}, {"only"}})
	if !strings.Contains(out, "extra") || !strings.Contains(out, "only") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}
