package lora

import "fmt"

// Channel describes one uplink frequency channel.
type Channel struct {
	// Index is the 0-based position in the regional plan.
	Index int
	// CenterHz is the carrier center frequency in Hz.
	CenterHz float64
	// BandwidthHz is the channel bandwidth in Hz.
	BandwidthHz float64
}

// Plan is a regional uplink channel plan. The paper restricts gateways to
// eight 125 kHz uplink channels in both the EU868 and US915 bands so that
// every end device can be heard by all surrounding gateways.
type Plan struct {
	// Name identifies the plan, e.g. "EU868".
	Name string
	// Uplink lists the uplink channels gateways listen on.
	Uplink []Channel
	// MinTxPowerDBm and MaxTxPowerDBm bound the configurable transmission
	// power, and TxPowerStepDBm is the step between levels.
	MinTxPowerDBm, MaxTxPowerDBm, TxPowerStepDBm float64
}

// EU868 returns the European 868 MHz plan used by the paper's model
// section: eight 125 kHz uplink channels and 2..14 dBm transmission power
// in 2 dBm steps.
func EU868() Plan {
	up := make([]Channel, 0, 8)
	// The three mandatory channels plus five commonly provisioned ones,
	// 200 kHz apart starting at 867.1 MHz.
	freqs := []float64{868.1e6, 868.3e6, 868.5e6, 867.1e6, 867.3e6, 867.5e6, 867.7e6, 867.9e6}
	for i, f := range freqs {
		up = append(up, Channel{Index: i, CenterHz: f, BandwidthHz: 125e3})
	}
	return Plan{
		Name:           "EU868",
		Uplink:         up,
		MinTxPowerDBm:  2,
		MaxTxPowerDBm:  14,
		TxPowerStepDBm: 2,
	}
}

// US915Sub1 returns the eight-channel 902.3–903.7 MHz sub-band the paper's
// evaluation configures (125 kHz channels, 200 kHz spacing). US915 end
// devices may transmit up to 20 dBm.
func US915Sub1() Plan {
	up := make([]Channel, 0, 8)
	for i := 0; i < 8; i++ {
		up = append(up, Channel{
			Index:       i,
			CenterHz:    902.3e6 + 200e3*float64(i),
			BandwidthHz: 125e3,
		})
	}
	return Plan{
		Name:           "US915-sub1",
		Uplink:         up,
		MinTxPowerDBm:  2,
		MaxTxPowerDBm:  20,
		TxPowerStepDBm: 2,
	}
}

// NumChannels returns the number of uplink channels in the plan.
func (p Plan) NumChannels() int { return len(p.Uplink) }

// TxPowerLevels enumerates the configurable transmission power levels in
// dBm, from MinTxPowerDBm to MaxTxPowerDBm inclusive.
func (p Plan) TxPowerLevels() []float64 {
	if p.TxPowerStepDBm <= 0 {
		return []float64{p.MaxTxPowerDBm}
	}
	var levels []float64
	for tp := p.MinTxPowerDBm; tp <= p.MaxTxPowerDBm+1e-9; tp += p.TxPowerStepDBm {
		levels = append(levels, tp)
	}
	return levels
}

// TxPowerIndex maps a transmission power in dBm onto the regional MAC
// power index carried by LinkADRReq: index 0 is MaxTxPowerDBm, and each
// index steps down by TxPowerStepDBm. The second return is false when
// tpDBm is not a level of the plan.
func (p Plan) TxPowerIndex(tpDBm float64) (int, bool) {
	if p.TxPowerStepDBm <= 0 {
		if tpDBm == p.MaxTxPowerDBm {
			return 0, true
		}
		return 0, false
	}
	if tpDBm > p.MaxTxPowerDBm+1e-9 || tpDBm < p.MinTxPowerDBm-1e-9 {
		return 0, false
	}
	steps := (p.MaxTxPowerDBm - tpDBm) / p.TxPowerStepDBm
	idx := int(steps + 0.5)
	if diff := steps - float64(idx); diff > 1e-6 || diff < -1e-6 {
		return 0, false
	}
	return idx, true
}

// TxPowerForIndex inverts TxPowerIndex. The second return is false when
// the index falls below the plan's minimum power.
func (p Plan) TxPowerForIndex(idx int) (float64, bool) {
	if idx < 0 {
		return 0, false
	}
	tp := p.MaxTxPowerDBm - float64(idx)*p.TxPowerStepDBm
	if tp < p.MinTxPowerDBm-1e-9 {
		return 0, false
	}
	return tp, true
}

// Validate checks structural invariants of the plan.
func (p Plan) Validate() error {
	if len(p.Uplink) == 0 {
		return fmt.Errorf("lora: plan %q has no uplink channels", p.Name)
	}
	for i, ch := range p.Uplink {
		if ch.Index != i {
			return fmt.Errorf("lora: plan %q channel %d has index %d", p.Name, i, ch.Index)
		}
		if ch.CenterHz <= 0 || ch.BandwidthHz <= 0 {
			return fmt.Errorf("lora: plan %q channel %d has non-positive frequency or bandwidth", p.Name, i)
		}
	}
	if p.MinTxPowerDBm > p.MaxTxPowerDBm {
		return fmt.Errorf("lora: plan %q has min TX power above max", p.Name)
	}
	return nil
}
