package lora

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSNRThresholdTableIV(t *testing.T) {
	// Paper Table IV.
	tests := []struct {
		sf   SF
		want float64
	}{
		{SF7, -6},
		{SF8, -9},
		{SF9, -12},
		{SF10, -15},
		{SF11, -17.5},
		{SF12, -20},
	}
	for _, tt := range tests {
		if got := SNRThresholdDB(tt.sf); got != tt.want {
			t.Errorf("SNRThresholdDB(%v) = %v, want %v", tt.sf, got, tt.want)
		}
	}
}

func TestSensitivityTableIV(t *testing.T) {
	tests := []struct {
		sf   SF
		want float64
	}{
		{SF7, -123},
		{SF8, -126},
		{SF9, -129},
		{SF10, -132},
		{SF11, -134.5},
		{SF12, -137},
	}
	for _, tt := range tests {
		if got := SensitivityDBm(tt.sf); got != tt.want {
			t.Errorf("SensitivityDBm(%v) = %v, want %v", tt.sf, got, tt.want)
		}
	}
}

func TestSensitivityFromNoiseMatchesTableIV(t *testing.T) {
	// Paper Eq. 11 with a 6 dB noise figure reproduces Table IV within
	// rounding: -174 + 10log10(125e3) + 6 + th = th - 117.03.
	for _, s := range SFs() {
		got := SensitivityFromNoise(s, 125e3, 6)
		want := SensitivityDBm(s)
		if math.Abs(got-want) > 1.0 {
			t.Errorf("SensitivityFromNoise(%v) = %.2f, Table IV says %.2f", s, got, want)
		}
	}
}

func TestInvalidSFPanics(t *testing.T) {
	for _, bad := range []SF{0, 6, 13, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SNRThresholdDB(%d) did not panic", int(bad))
				}
			}()
			SNRThresholdDB(bad)
		}()
	}
}

func TestSFValid(t *testing.T) {
	for _, s := range SFs() {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	for _, s := range []SF{0, 6, 13} {
		if s.Valid() {
			t.Errorf("SF(%d) should be invalid", int(s))
		}
	}
}

func TestSFString(t *testing.T) {
	if got := SF7.String(); got != "SF7" {
		t.Errorf("SF7.String() = %q", got)
	}
	if got := SF12.String(); got != "SF12" {
		t.Errorf("SF12.String() = %q", got)
	}
}

func TestCodingRateString(t *testing.T) {
	if got := CR47.String(); got != "4/7" {
		t.Errorf("CR47.String() = %q", got)
	}
	if !CR45.Valid() || !CR48.Valid() {
		t.Error("CR45/CR48 should be valid")
	}
	if CodingRate(4).Valid() || CodingRate(9).Valid() {
		t.Error("CR 4 and 9 should be invalid")
	}
}

func TestDBmRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		if math.IsNaN(dbm) || math.Abs(dbm) > 300 {
			return true // skip degenerate inputs
		}
		back := MilliwattsToDBm(DBmToMilliwatts(dbm))
		return math.Abs(back-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBConversionAnchors(t *testing.T) {
	tests := []struct {
		dbm  float64
		want float64
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{-30, 0.001},
		{3, 1.9952623149688795},
	}
	for _, tt := range tests {
		if got := DBmToMilliwatts(tt.dbm); math.Abs(got-tt.want) > 1e-12*math.Max(1, tt.want) {
			t.Errorf("DBmToMilliwatts(%v) = %v, want %v", tt.dbm, got, tt.want)
		}
	}
	if got := MilliwattsToDBm(0); !math.IsInf(got, -1) {
		t.Errorf("MilliwattsToDBm(0) = %v, want -Inf", got)
	}
}

func TestSymbolPeriodDoubles(t *testing.T) {
	// Each SF step exactly doubles the symbol period (paper Section III-A).
	const bw = 125e3
	for _, s := range SFs()[:5] {
		lo := SymbolPeriod(s, bw)
		hi := SymbolPeriod(s+1, bw)
		if math.Abs(hi/lo-2) > 1e-12 {
			t.Errorf("SymbolPeriod(%v)/SymbolPeriod(%v) = %v, want 2", s+1, s, hi/lo)
		}
	}
	// SF7 at 125 kHz: 128/125000 = 1.024 ms.
	if got := SymbolPeriod(SF7, bw); math.Abs(got-1.024e-3) > 1e-12 {
		t.Errorf("SymbolPeriod(SF7) = %v, want 1.024ms", got)
	}
}

func TestTimeOnAirMonotonicInSF(t *testing.T) {
	const bw = 125e3
	for payload := 1; payload <= 255; payload += 13 {
		prev := 0.0
		for _, s := range SFs() {
			toa := TimeOnAir(payload, s, bw, CR47)
			if toa <= prev {
				t.Fatalf("TimeOnAir(payload=%d, %v) = %v not greater than %v at previous SF",
					payload, s, toa, prev)
			}
			prev = toa
		}
	}
}

func TestTimeOnAirMonotonicInPayload(t *testing.T) {
	const bw = 125e3
	for _, s := range SFs() {
		prev := 0.0
		for payload := 0; payload <= 255; payload++ {
			toa := TimeOnAir(payload, s, bw, CR47)
			if toa < prev {
				t.Fatalf("TimeOnAir decreasing at payload=%d %v", payload, s)
			}
			prev = toa
		}
	}
}

func TestTimeOnAirKnownValues(t *testing.T) {
	// Anchors computed directly from paper Eq. 4.
	const bw = 125e3
	tests := []struct {
		payload int
		sf      SF
		cr      CodingRate
		want    float64 // seconds
	}{
		// L=10, SF7, CR 4/7: n_pl = ceil((80-28+44)/28)*7 = 4*7 = 28,
		// T = 48.25 * 1.024ms = 49.408 ms.
		{10, SF7, CR47, 0.049408},
		// L=21 (paper's PHY payload for 8-byte app payload), SF7, CR 4/7:
		// n_pl = ceil((168-28+44)/28)*7 = ceil(6.571)*7 = 49,
		// T = 69.25 * 1.024ms = 70.912 ms.
		{21, SF7, CR47, 0.070912},
		// L=21, SF12 (DE=1), CR 4/7: n_pl = ceil((168-48+44)/40)*7 =
		// ceil(4.1)*7 = 35, T = 55.25 * 32.768ms = 1810.432 ms.
		{21, SF12, CR47, 1.810432},
	}
	for _, tt := range tests {
		got := TimeOnAir(tt.payload, tt.sf, bw, tt.cr)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("TimeOnAir(%d, %v, %v) = %.6f, want %.6f",
				tt.payload, tt.sf, tt.cr, got, tt.want)
		}
	}
}

func TestTimeOnAirLargeSFGapMagnitude(t *testing.T) {
	// The paper motivates the work with an SF7-vs-SF12 air-time gap of
	// roughly 20x for a 100-byte packet; verify the order of magnitude.
	const bw = 125e3
	fast := TimeOnAir(100, SF7, bw, CR47)
	slow := TimeOnAir(100, SF12, bw, CR47)
	ratio := slow / fast
	if ratio < 14 || ratio > 30 {
		t.Errorf("SF12/SF7 air-time ratio = %.1f, want within [14,30]", ratio)
	}
}

func TestPayloadSymbolsNonNegative(t *testing.T) {
	f := func(payload uint8, sfRaw uint8, de bool) bool {
		s := SF(7 + int(sfRaw)%6)
		n := PayloadSymbols(int(payload), s, CR47, de)
		return n >= 0 && n%int(CR47) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadSymbolsZeroFloor(t *testing.T) {
	// Tiny payloads at large SF can drive the numerator negative; the
	// formula floors at 0 (the max(...) in Eq. 4).
	if n := PayloadSymbols(0, SF12, CR47, true); n < 0 {
		t.Errorf("PayloadSymbols(0, SF12) = %d, want >= 0", n)
	}
}

func TestLowDataRateOptimize(t *testing.T) {
	tests := []struct {
		sf   SF
		bw   float64
		want bool
	}{
		{SF10, 125e3, false},
		{SF11, 125e3, true},
		{SF12, 125e3, true},
		{SF12, 500e3, false},
	}
	for _, tt := range tests {
		if got := LowDataRateOptimize(tt.sf, tt.bw); got != tt.want {
			t.Errorf("LowDataRateOptimize(%v, %v) = %v, want %v", tt.sf, tt.bw, got, tt.want)
		}
	}
}

func TestBitRateAnchors(t *testing.T) {
	// Paper Section I: SF7 at 125 kHz gives 5.47 kbps, SF12 gives
	// 0.25 kbps (at CR 4/5 in the spec sheet; raw rate SF*BW/2^SF is
	// 6.836 and 0.366 kbps, scaled by 4/5 -> 5.47 and 0.293).
	r7 := BitRate(SF7, 125e3, CR45)
	if math.Abs(r7-5468.75) > 1 {
		t.Errorf("BitRate(SF7, CR45) = %.1f bps, want 5468.75", r7)
	}
	r12 := BitRate(SF12, 125e3, CR45)
	if math.Abs(r12-292.97) > 1 {
		t.Errorf("BitRate(SF12, CR45) = %.2f bps, want about 293", r12)
	}
}

func TestBitRateMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, s := range SFs() {
		r := BitRate(s, 125e3, CR47)
		if r >= prev {
			t.Errorf("BitRate(%v) = %v, not lower than previous SF", s, r)
		}
		prev = r
	}
}

func TestMinSFForDistance(t *testing.T) {
	tests := []struct {
		rxDBm  float64
		want   SF
		wantOK bool
	}{
		{-100, SF7, true},
		{-123, SF7, true},
		{-123.01, SF8, true},
		{-130, SF10, true},
		{-136, SF12, true},
		{-137, SF12, true},
		{-137.5, SF12, false},
	}
	for _, tt := range tests {
		got, ok := MinSFForDistance(tt.rxDBm)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("MinSFForDistance(%v) = (%v, %v), want (%v, %v)",
				tt.rxDBm, got, ok, tt.want, tt.wantOK)
		}
	}
}
