// Package lora models the LoRa physical layer: spreading factors,
// time-on-air, receiver sensitivities, SNR decoding thresholds, and the
// regional channel plans used by LoRaWAN uplinks.
//
// All numeric tables follow the paper "Towards Energy-Fairness in LoRa
// Networks" (Table IV) and the Semtech SX127x/SX1301 datasheets it cites.
// Link-budget math in this repository is done in linear milliwatts; this
// package owns the dB/dBm conversions.
package lora

import (
	"fmt"
	"math"
)

// SF is a LoRa spreading factor. A chirp symbol encodes SF raw bits; each
// +1 step doubles the symbol period (halving data rate) and buys roughly
// 2.5 dB of receiver sensitivity.
type SF int

// The spreading factors available to LoRaWAN end devices.
const (
	SF7  SF = 7
	SF8  SF = 8
	SF9  SF = 9
	SF10 SF = 10
	SF11 SF = 11
	SF12 SF = 12
)

// MinSF and MaxSF bound the valid spreading factor range.
const (
	MinSF = SF7
	MaxSF = SF12
)

// SFs lists all valid spreading factors in increasing order.
func SFs() []SF {
	return []SF{SF7, SF8, SF9, SF10, SF11, SF12}
}

// Valid reports whether s is one of SF7..SF12.
func (s SF) Valid() bool { return s >= MinSF && s <= MaxSF }

// String implements fmt.Stringer.
func (s SF) String() string { return fmt.Sprintf("SF%d", int(s)) }

// snrThresholdDB is the minimum SNR (dB) required to demodulate each SF at
// 125 kHz bandwidth (paper Table IV).
var snrThresholdDB = map[SF]float64{
	SF7:  -6,
	SF8:  -9,
	SF9:  -12,
	SF10: -15,
	SF11: -17.5,
	SF12: -20,
}

// sensitivityDBm is the gateway receiver sensitivity (dBm) for each SF at
// 125 kHz bandwidth (paper Table IV).
var sensitivityDBm = map[SF]float64{
	SF7:  -123,
	SF8:  -126,
	SF9:  -129,
	SF10: -132,
	SF11: -134.5,
	SF12: -137,
}

// SNRThresholdDB returns the minimum SNR in dB needed to decode a packet
// sent with spreading factor s (paper Table IV). It panics on an invalid SF
// because the tables are a fixed physical contract, not user input.
func SNRThresholdDB(s SF) float64 {
	th, ok := snrThresholdDB[s]
	if !ok {
		panic(fmt.Sprintf("lora: invalid spreading factor %d", int(s)))
	}
	return th
}

// SensitivityDBm returns the receiver sensitivity in dBm for spreading
// factor s at 125 kHz bandwidth (paper Table IV).
func SensitivityDBm(s SF) float64 {
	ss, ok := sensitivityDBm[s]
	if !ok {
		//eflora:alloc-ok panic message on the programming-error path only, never taken for valid SFs
		panic(fmt.Sprintf("lora: invalid spreading factor %d", int(s)))
	}
	return ss
}

// SensitivityFromNoise computes the sensitivity in dBm from first
// principles (paper Eq. 11): thermal noise floor + receiver noise figure +
// SNR threshold. bwHz is the channel bandwidth and nfDB the receiver noise
// figure (6 dB is typical for SX1301-based gateways).
func SensitivityFromNoise(s SF, bwHz, nfDB float64) float64 {
	return -174 + 10*math.Log10(bwHz) + nfDB + SNRThresholdDB(s)
}

// DBmToMilliwatts converts a power level in dBm to linear milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts a linear power in milliwatts to dBm.
// It returns -Inf for zero and NaN for negative power.
func MilliwattsToDBm(mw float64) float64 { return 10 * math.Log10(mw) }

// DBToLinear converts a ratio expressed in dB to a linear ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear ratio to dB.
func LinearToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// CodingRate is the LoRa forward-error-correction rate denominator: a value
// cr in [5,8] means 4 information bits are sent as cr coded bits (4/cr).
// The paper fixes CR = 7 (rate 4/7), the cheapest rate that corrects a
// single bit error.
type CodingRate int

// Valid coding rates.
const (
	CR45 CodingRate = 5 // rate 4/5
	CR46 CodingRate = 6 // rate 4/6
	CR47 CodingRate = 7 // rate 4/7 (paper default)
	CR48 CodingRate = 8 // rate 4/8
)

// Valid reports whether cr is in [5,8].
func (cr CodingRate) Valid() bool { return cr >= CR45 && cr <= CR48 }

// String implements fmt.Stringer.
func (cr CodingRate) String() string { return fmt.Sprintf("4/%d", int(cr)) }

// PreambleSymbols is the symbol count of the LoRaWAN preamble plus PHY
// sync overhead used by the paper's time-on-air formula (Eq. 4): the
// standard 12.25-symbol preamble plus 8 header symbols.
const PreambleSymbols = 20.25

// PayloadSymbols returns n_pl, the number of payload symbols for a packet
// with payloadBytes of PHY payload at spreading factor s (paper Eq. 4).
// lowDataRateOptimize (DE) spreads symbols further at slow rates; LoRaWAN
// mandates it for SF11/SF12 at 125 kHz.
func PayloadSymbols(payloadBytes int, s SF, cr CodingRate, lowDataRateOptimize bool) int {
	de := 0
	if lowDataRateOptimize {
		de = 1
	}
	num := 8*payloadBytes - 4*int(s) + 28 + 16
	den := 4 * (int(s) - 2*de)
	blocks := int(math.Ceil(float64(num) / float64(den)))
	n := blocks * int(cr)
	if n < 0 {
		return 0
	}
	return n
}

// SymbolPeriod returns the duration of one chirp symbol in seconds:
// 2^SF / BW (paper Section III-A).
func SymbolPeriod(s SF, bwHz float64) float64 {
	return math.Exp2(float64(s)) / bwHz
}

// LowDataRateOptimize reports whether LoRaWAN enables the low-data-rate
// optimisation for the given SF and bandwidth (SF11/SF12 at 125 kHz).
func LowDataRateOptimize(s SF, bwHz float64) bool {
	return bwHz <= 125e3 && s >= SF11
}

// TimeOnAir returns the full in-the-air duration in seconds of a packet
// with payloadBytes of PHY payload (paper Eq. 4):
//
//	T = (20.25 + n_pl) * 2^SF / BW
//
// The low-data-rate optimisation is applied automatically per LoRaWAN
// rules (SF11/SF12 at 125 kHz).
func TimeOnAir(payloadBytes int, s SF, bwHz float64, cr CodingRate) float64 {
	de := LowDataRateOptimize(s, bwHz)
	n := PreambleSymbols + float64(PayloadSymbols(payloadBytes, s, cr, de))
	return n * SymbolPeriod(s, bwHz)
}

// BitRate returns the raw information bit rate in bits/second for a given
// SF, bandwidth and coding rate: SF * (4/CR) / symbolPeriod.
func BitRate(s SF, bwHz float64, cr CodingRate) float64 {
	return float64(s) * (4 / float64(cr)) / SymbolPeriod(s, bwHz)
}

// MinSFForDistance returns the smallest spreading factor whose receiver
// sensitivity is met by rxPowerDBmAt(s), a callback giving the received
// power in dBm when transmitting with spreading factor s (received power is
// SF-independent but the callback form lets callers fold in per-SF
// constraints). ok is false when even SF12 cannot close the link.
func MinSFForDistance(rxPowerDBm float64) (s SF, ok bool) {
	for _, s := range SFs() {
		if rxPowerDBm >= SensitivityDBm(s) {
			return s, true
		}
	}
	return MaxSF, false
}
