package lora

import (
	"math"
	"testing"
)

func TestEU868Plan(t *testing.T) {
	p := EU868()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.NumChannels(); got != 8 {
		t.Errorf("EU868 channels = %d, want 8", got)
	}
	for _, ch := range p.Uplink {
		if ch.BandwidthHz != 125e3 {
			t.Errorf("channel %d bandwidth = %v, want 125 kHz", ch.Index, ch.BandwidthHz)
		}
		if ch.CenterHz < 867e6 || ch.CenterHz > 869e6 {
			t.Errorf("channel %d center %v outside EU868 band", ch.Index, ch.CenterHz)
		}
	}
}

func TestUS915Sub1Plan(t *testing.T) {
	p := US915Sub1()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.NumChannels(); got != 8 {
		t.Errorf("US915 channels = %d, want 8", got)
	}
	// Paper evaluation: 902.3 to 903.7 MHz.
	if p.Uplink[0].CenterHz != 902.3e6 {
		t.Errorf("first channel = %v, want 902.3 MHz", p.Uplink[0].CenterHz)
	}
	if math.Abs(p.Uplink[7].CenterHz-903.7e6) > 1 {
		t.Errorf("last channel = %v, want 903.7 MHz", p.Uplink[7].CenterHz)
	}
	// Uniform 200 kHz spacing.
	for i := 1; i < 8; i++ {
		if d := p.Uplink[i].CenterHz - p.Uplink[i-1].CenterHz; math.Abs(d-200e3) > 1 {
			t.Errorf("spacing between channel %d and %d = %v, want 200 kHz", i-1, i, d)
		}
	}
}

func TestTxPowerLevels(t *testing.T) {
	p := EU868()
	levels := p.TxPowerLevels()
	want := []float64{2, 4, 6, 8, 10, 12, 14}
	if len(levels) != len(want) {
		t.Fatalf("EU868 TX power levels = %v, want %v", levels, want)
	}
	for i := range want {
		if math.Abs(levels[i]-want[i]) > 1e-9 {
			t.Errorf("level[%d] = %v, want %v", i, levels[i], want[i])
		}
	}
}

func TestTxPowerLevelsZeroStep(t *testing.T) {
	p := Plan{Name: "fixed", MaxTxPowerDBm: 14}
	levels := p.TxPowerLevels()
	if len(levels) != 1 || levels[0] != 14 {
		t.Errorf("zero-step plan levels = %v, want [14]", levels)
	}
}

func TestPlanValidateFailures(t *testing.T) {
	tests := []struct {
		name string
		plan Plan
	}{
		{"empty", Plan{Name: "x"}},
		{"bad index", Plan{Name: "x", Uplink: []Channel{{Index: 1, CenterHz: 1, BandwidthHz: 1}}}},
		{"zero freq", Plan{Name: "x", Uplink: []Channel{{Index: 0, BandwidthHz: 1}}}},
		{"power inverted", Plan{
			Name:          "x",
			Uplink:        []Channel{{Index: 0, CenterHz: 1, BandwidthHz: 1}},
			MinTxPowerDBm: 14, MaxTxPowerDBm: 2,
		}},
	}
	for _, tt := range tests {
		if err := tt.plan.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", tt.name)
		}
	}
}

func TestTxPowerIndexRoundTrip(t *testing.T) {
	p := EU868()
	for idx, tp := 0, p.MaxTxPowerDBm; tp >= p.MinTxPowerDBm; idx, tp = idx+1, tp-p.TxPowerStepDBm {
		got, ok := p.TxPowerIndex(tp)
		if !ok || got != idx {
			t.Errorf("TxPowerIndex(%v) = %d,%v, want %d", tp, got, ok, idx)
		}
		back, ok := p.TxPowerForIndex(idx)
		if !ok || back != tp {
			t.Errorf("TxPowerForIndex(%d) = %v,%v, want %v", idx, back, ok, tp)
		}
	}
	// EU868: index 0 = 14 dBm, index 6 = 2 dBm.
	if idx, ok := p.TxPowerIndex(14); !ok || idx != 0 {
		t.Errorf("TxPowerIndex(14) = %d,%v", idx, ok)
	}
	if idx, ok := p.TxPowerIndex(2); !ok || idx != 6 {
		t.Errorf("TxPowerIndex(2) = %d,%v", idx, ok)
	}
	for _, bad := range []float64{15, 1, 13} {
		if _, ok := p.TxPowerIndex(bad); ok {
			t.Errorf("TxPowerIndex(%v) accepted", bad)
		}
	}
	if _, ok := p.TxPowerForIndex(7); ok {
		t.Error("TxPowerForIndex(7) accepted below min power")
	}
	if _, ok := p.TxPowerForIndex(-1); ok {
		t.Error("TxPowerForIndex(-1) accepted")
	}
}
