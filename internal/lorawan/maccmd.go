package lorawan

import (
	"errors"
	"fmt"

	"eflora/internal/lora"
)

// CIDLinkADRReq is the LinkADRReq MAC command identifier (server →
// device). Its payload reassigns the device's data rate, transmit power
// and channel — exactly the (SF, TP, channel) triple EF-LoRa's
// re-allocator moves.
const CIDLinkADRReq = 0x03

// linkADRReqBytes is CID (1) + DataRate_TXPower (1) + ChMask (2) +
// Redundancy (1).
const linkADRReqBytes = 5

// LinkADRReq is the decoded form of a LinkADRReq command. The EU868
// mapping DR0=SF12 .. DR5=SF7 (125 kHz) applies; TXPower is the regional
// power index (0 = max, each step down per the channel plan); Channel is
// the single channel selected by the ChMask.
type LinkADRReq struct {
	DataRate uint8
	TXPower  uint8
	Channel  int
}

// Errors returned by the MAC-command codec.
var (
	ErrBadMACCmd = errors.New("lorawan: malformed MAC command")
	ErrBadChMask = errors.New("lorawan: ChMask must select exactly one channel")
	ErrBadDR     = errors.New("lorawan: data rate outside DR0..DR5")
)

// DataRateForSF maps a 125 kHz spreading factor to its EU868 data-rate
// index (SF12→DR0 .. SF7→DR5).
func DataRateForSF(sf lora.SF) (uint8, error) {
	if sf < lora.SF7 || sf > lora.SF12 {
		return 0, fmt.Errorf("%w: SF%d", ErrBadDR, sf)
	}
	return uint8(lora.SF12 - sf), nil
}

// SFForDataRate maps an EU868 data-rate index back to its 125 kHz
// spreading factor (DR0→SF12 .. DR5→SF7).
func SFForDataRate(dr uint8) (lora.SF, error) {
	if dr > 5 {
		return 0, fmt.Errorf("%w: DR%d", ErrBadDR, dr)
	}
	return lora.SF12 - lora.SF(dr), nil
}

// Encode serializes the command into its 5-byte wire form.
func (c LinkADRReq) Encode() ([]byte, error) {
	if c.DataRate > 5 {
		return nil, fmt.Errorf("%w: DR%d", ErrBadDR, c.DataRate)
	}
	if c.TXPower > 0x0f {
		return nil, fmt.Errorf("%w: TXPower index %d", ErrBadMACCmd, c.TXPower)
	}
	if c.Channel < 0 || c.Channel > 15 {
		return nil, fmt.Errorf("%w: channel %d", ErrBadChMask, c.Channel)
	}
	mask := uint16(1) << uint(c.Channel)
	return []byte{
		CIDLinkADRReq,
		c.DataRate<<4 | c.TXPower,
		byte(mask), byte(mask >> 8),
		0, // Redundancy: ChMaskCntl 0, NbTrans default
	}, nil
}

// CIDLinkADRAns is the LinkADRAns MAC command identifier (device →
// server). LoRaWAN reuses the request's CID on the answer; direction
// disambiguates.
const CIDLinkADRAns = 0x03

// linkADRAnsBytes is CID (1) + Status (1).
const linkADRAnsBytes = 2

// LinkADRAns is a device's answer to a LinkADRReq: one ACK bit per
// dimension of the requested (channel, data rate, power) move. All three
// must be set for the command to have been applied; any cleared bit means
// the device kept its previous assignment entirely.
type LinkADRAns struct {
	ChannelACK, DataRateACK, PowerACK bool
}

// Applied reports whether the device accepted the full reassignment.
func (c LinkADRAns) Applied() bool { return c.ChannelACK && c.DataRateACK && c.PowerACK }

// Encode serializes the answer into its 2-byte wire form (status bits
// 0=ChannelACK, 1=DataRateACK, 2=PowerACK per the LoRaWAN spec).
func (c LinkADRAns) Encode() []byte {
	status := byte(0)
	if c.ChannelACK {
		status |= 1 << 0
	}
	if c.DataRateACK {
		status |= 1 << 1
	}
	if c.PowerACK {
		status |= 1 << 2
	}
	return []byte{CIDLinkADRAns, status}
}

// ParseLinkADRAns decodes one LinkADRAns from a MAC-command payload.
// Status bits above bit 2 are RFU and must be zero.
func ParseLinkADRAns(cmd []byte) (LinkADRAns, error) {
	var c LinkADRAns
	if len(cmd) != linkADRAnsBytes {
		return c, fmt.Errorf("%w: %d bytes", ErrBadMACCmd, len(cmd))
	}
	if cmd[0] != CIDLinkADRAns {
		return c, fmt.Errorf("%w: CID %#02x", ErrBadMACCmd, cmd[0])
	}
	if cmd[1]&^0x07 != 0 {
		return c, fmt.Errorf("%w: RFU status bits %#02x", ErrBadMACCmd, cmd[1])
	}
	c.ChannelACK = cmd[1]&(1<<0) != 0
	c.DataRateACK = cmd[1]&(1<<1) != 0
	c.PowerACK = cmd[1]&(1<<2) != 0
	return c, nil
}

// ParseLinkADRReq decodes one LinkADRReq from the start of a MAC-command
// payload. The ChMask must select exactly one channel — this server only
// ever assigns a single channel per device, so an ambiguous mask is a
// protocol error, not a choice.
func ParseLinkADRReq(cmd []byte) (LinkADRReq, error) {
	var c LinkADRReq
	if len(cmd) != linkADRReqBytes {
		return c, fmt.Errorf("%w: %d bytes", ErrBadMACCmd, len(cmd))
	}
	if cmd[0] != CIDLinkADRReq {
		return c, fmt.Errorf("%w: CID %#02x", ErrBadMACCmd, cmd[0])
	}
	c.DataRate = cmd[1] >> 4
	if c.DataRate > 5 {
		return c, fmt.Errorf("%w: DR%d", ErrBadDR, c.DataRate)
	}
	c.TXPower = cmd[1] & 0x0f
	mask := uint16(cmd[2]) | uint16(cmd[3])<<8
	if mask == 0 || mask&(mask-1) != 0 {
		return c, fmt.Errorf("%w: mask %#04x", ErrBadChMask, mask)
	}
	for mask != 1 {
		mask >>= 1
		c.Channel++
	}
	if cmd[4]&0xf0 != 0 {
		return c, fmt.Errorf("%w: ChMaskCntl %d", ErrBadMACCmd, cmd[4]>>4)
	}
	return c, nil
}
