package lorawan

import (
	"errors"
	"fmt"

	"eflora/internal/lora"
)

// CIDLinkADRReq is the LinkADRReq MAC command identifier (server →
// device). Its payload reassigns the device's data rate, transmit power
// and channel — exactly the (SF, TP, channel) triple EF-LoRa's
// re-allocator moves.
const CIDLinkADRReq = 0x03

// linkADRReqBytes is CID (1) + DataRate_TXPower (1) + ChMask (2) +
// Redundancy (1).
const linkADRReqBytes = 5

// LinkADRReq is the decoded form of a LinkADRReq command. The EU868
// mapping DR0=SF12 .. DR5=SF7 (125 kHz) applies; TXPower is the regional
// power index (0 = max, each step down per the channel plan); Channel is
// the single channel selected by the ChMask.
type LinkADRReq struct {
	DataRate uint8
	TXPower  uint8
	Channel  int
}

// Errors returned by the MAC-command codec.
var (
	ErrBadMACCmd = errors.New("lorawan: malformed MAC command")
	ErrBadChMask = errors.New("lorawan: ChMask must select exactly one channel")
	ErrBadDR     = errors.New("lorawan: data rate outside DR0..DR5")
)

// DataRateForSF maps a 125 kHz spreading factor to its EU868 data-rate
// index (SF12→DR0 .. SF7→DR5).
func DataRateForSF(sf lora.SF) (uint8, error) {
	if sf < lora.SF7 || sf > lora.SF12 {
		return 0, fmt.Errorf("%w: SF%d", ErrBadDR, sf)
	}
	return uint8(lora.SF12 - sf), nil
}

// SFForDataRate maps an EU868 data-rate index back to its 125 kHz
// spreading factor (DR0→SF12 .. DR5→SF7).
func SFForDataRate(dr uint8) (lora.SF, error) {
	if dr > 5 {
		return 0, fmt.Errorf("%w: DR%d", ErrBadDR, dr)
	}
	return lora.SF12 - lora.SF(dr), nil
}

// Encode serializes the command into its 5-byte wire form.
func (c LinkADRReq) Encode() ([]byte, error) {
	if c.DataRate > 5 {
		return nil, fmt.Errorf("%w: DR%d", ErrBadDR, c.DataRate)
	}
	if c.TXPower > 0x0f {
		return nil, fmt.Errorf("%w: TXPower index %d", ErrBadMACCmd, c.TXPower)
	}
	if c.Channel < 0 || c.Channel > 15 {
		return nil, fmt.Errorf("%w: channel %d", ErrBadChMask, c.Channel)
	}
	mask := uint16(1) << uint(c.Channel)
	return []byte{
		CIDLinkADRReq,
		c.DataRate<<4 | c.TXPower,
		byte(mask), byte(mask >> 8),
		0, // Redundancy: ChMaskCntl 0, NbTrans default
	}, nil
}

// ParseLinkADRReq decodes one LinkADRReq from the start of a MAC-command
// payload. The ChMask must select exactly one channel — this server only
// ever assigns a single channel per device, so an ambiguous mask is a
// protocol error, not a choice.
func ParseLinkADRReq(cmd []byte) (LinkADRReq, error) {
	var c LinkADRReq
	if len(cmd) != linkADRReqBytes {
		return c, fmt.Errorf("%w: %d bytes", ErrBadMACCmd, len(cmd))
	}
	if cmd[0] != CIDLinkADRReq {
		return c, fmt.Errorf("%w: CID %#02x", ErrBadMACCmd, cmd[0])
	}
	c.DataRate = cmd[1] >> 4
	if c.DataRate > 5 {
		return c, fmt.Errorf("%w: DR%d", ErrBadDR, c.DataRate)
	}
	c.TXPower = cmd[1] & 0x0f
	mask := uint16(cmd[2]) | uint16(cmd[3])<<8
	if mask == 0 || mask&(mask-1) != 0 {
		return c, fmt.Errorf("%w: mask %#04x", ErrBadChMask, mask)
	}
	for mask != 1 {
		mask >>= 1
		c.Channel++
	}
	if cmd[4]&0xf0 != 0 {
		return c, fmt.Errorf("%w: ChMaskCntl %d", ErrBadMACCmd, cmd[4]>>4)
	}
	return c, nil
}
