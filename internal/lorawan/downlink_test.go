package lorawan

import (
	"bytes"
	"errors"
	"testing"

	"eflora/internal/lora"
)

func TestDownlinkRoundTrip(t *testing.T) {
	keys := testKeys()
	f := Frame{
		MType:   UnconfirmedDataDown,
		DevAddr: 0x01ABCDEF,
		ADR:     true,
		FCnt:    7,
		FPort:   10,
		Payload: []byte{1, 2, 3, 4},
	}
	phy, err := EncodeDownlink(f, keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDownlink(phy, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.MType != f.MType || got.DevAddr != f.DevAddr || !got.ADR ||
		got.FCnt != f.FCnt || got.FPort != f.FPort || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip changed frame:\n was %+v\n now %+v", f, got)
	}
}

func TestDownlinkMACPort(t *testing.T) {
	keys := testKeys()
	cmd, err := LinkADRReq{DataRate: 3, TXPower: 2, Channel: 5}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := Frame{MType: UnconfirmedDataDown, DevAddr: 42, FCnt: 1, FPort: 0, Payload: cmd}
	phy, err := EncodeDownlink(f, keys)
	if err != nil {
		t.Fatal(err)
	}
	// FPort-0 payloads travel under NwkSKey: the on-air bytes must differ
	// from both the plaintext and the AppSKey ciphertext.
	onAir := phy[9 : len(phy)-4]
	if bytes.Equal(onAir, cmd) {
		t.Error("MAC payload not encrypted on air")
	}
	appEnc, err := encryptFRMPayload(keys.AppSKey, 42, 1, dirDown, cmd)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(onAir, appEnc) {
		t.Error("MAC payload encrypted under AppSKey, want NwkSKey")
	}
	got, err := DecodeDownlink(phy, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLinkADRReq(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.DataRate != 3 || parsed.TXPower != 2 || parsed.Channel != 5 {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestDirectionSeparation(t *testing.T) {
	keys := testKeys()
	up := Frame{MType: UnconfirmedDataUp, DevAddr: 9, FCnt: 3, FPort: 1, Payload: []byte{9}}
	phyUp, err := Encode(up, keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDownlink(phyUp, keys, 0); !errors.Is(err, ErrBadMType) {
		t.Errorf("downlink decode of uplink frame: %v, want ErrBadMType", err)
	}
	down := up
	down.MType = UnconfirmedDataDown
	phyDown, err := EncodeDownlink(down, keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(phyDown, keys, 0); !errors.Is(err, ErrBadMType) {
		t.Errorf("uplink decode of downlink frame: %v, want ErrBadMType", err)
	}
	// The direction byte enters the MIC: a downlink body re-signed as an
	// uplink must not verify even if the MType bits are patched.
	forged := append([]byte(nil), phyDown...)
	forged[0] = byte(UnconfirmedDataUp) << 5
	if _, err := Decode(forged, keys, 0); !errors.Is(err, ErrBadMIC) {
		t.Errorf("forged direction: %v, want ErrBadMIC", err)
	}
}

func TestDownlinkRejectsBadInput(t *testing.T) {
	keys := testKeys()
	if _, err := EncodeDownlink(Frame{MType: UnconfirmedDataUp, FPort: 1}, keys); !errors.Is(err, ErrBadMType) {
		t.Errorf("uplink MType accepted: %v", err)
	}
	if _, err := EncodeDownlink(Frame{MType: UnconfirmedDataDown, FPort: 224}, keys); !errors.Is(err, ErrBadFPort) {
		t.Errorf("FPort 224 accepted: %v", err)
	}
	// FPort 0 is the MAC channel in both directions (LinkADRAns rides the
	// uplink side), so the uplink codec accepts it too.
	if _, err := Encode(Frame{MType: UnconfirmedDataUp, FPort: 0}, keys); err != nil {
		t.Errorf("uplink FPort 0 rejected: %v", err)
	}
}

func TestLinkADRReqCodec(t *testing.T) {
	for ch := 0; ch < 16; ch++ {
		for dr := uint8(0); dr <= 5; dr++ {
			c := LinkADRReq{DataRate: dr, TXPower: 6, Channel: ch}
			buf, err := c.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if len(buf) != linkADRReqBytes {
				t.Fatalf("encoded %d bytes", len(buf))
			}
			got, err := ParseLinkADRReq(buf)
			if err != nil {
				t.Fatal(err)
			}
			if got != c {
				t.Errorf("round trip: %+v -> %+v", c, got)
			}
		}
	}
	bad := []struct {
		name string
		cmd  []byte
	}{
		{"short", []byte{CIDLinkADRReq, 0, 1}},
		{"wrong CID", []byte{0x04, 0, 1, 0, 0}},
		{"DR6", []byte{CIDLinkADRReq, 6 << 4, 1, 0, 0}},
		{"empty mask", []byte{CIDLinkADRReq, 0, 0, 0, 0}},
		{"two channels", []byte{CIDLinkADRReq, 0, 3, 0, 0}},
		{"ChMaskCntl", []byte{CIDLinkADRReq, 0, 1, 0, 1 << 4}},
	}
	for _, tt := range bad {
		if _, err := ParseLinkADRReq(tt.cmd); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
	if _, err := (LinkADRReq{DataRate: 6}).Encode(); err == nil {
		t.Error("encode DR6 accepted")
	}
	if _, err := (LinkADRReq{Channel: 16}).Encode(); err == nil {
		t.Error("encode channel 16 accepted")
	}
}

func TestDataRateSFMapping(t *testing.T) {
	for sf := lora.SF7; sf <= lora.SF12; sf++ {
		dr, err := DataRateForSF(sf)
		if err != nil {
			t.Fatal(err)
		}
		back, err := SFForDataRate(dr)
		if err != nil || back != sf {
			t.Errorf("SF%d -> DR%d -> SF%d (%v)", sf, dr, back, err)
		}
	}
	if dr, err := DataRateForSF(lora.SF12); err != nil || dr != 0 {
		t.Errorf("SF12 -> DR%d (%v), want DR0", dr, err)
	}
	if dr, err := DataRateForSF(lora.SF7); err != nil || dr != 5 {
		t.Errorf("SF7 -> DR%d (%v), want DR5", dr, err)
	}
	if _, err := DataRateForSF(lora.SF(6)); err == nil {
		t.Error("SF6 accepted")
	}
	if _, err := SFForDataRate(6); err == nil {
		t.Error("DR6 accepted")
	}
}
