package lorawan

import (
	"errors"
	"fmt"
)

// MType is the LoRaWAN message type (MHDR bits 7..5).
type MType uint8

// Message types of LoRaWAN 1.0.
const (
	JoinRequest MType = iota
	JoinAccept
	UnconfirmedDataUp
	UnconfirmedDataDown
	ConfirmedDataUp
	ConfirmedDataDown
	RFU
	Proprietary
)

// String implements fmt.Stringer.
func (m MType) String() string {
	names := []string{
		"JoinRequest", "JoinAccept", "UnconfirmedDataUp", "UnconfirmedDataDown",
		"ConfirmedDataUp", "ConfirmedDataDown", "RFU", "Proprietary",
	}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("MType(%d)", uint8(m))
}

// FrameOverheadBytes is the fixed PHY overhead of a LoRaWAN data frame
// with an empty FOpts field: MHDR (1) + DevAddr (4) + FCtrl (1) + FCnt (2)
// + FPort (1) + MIC (4). An 8-byte application payload therefore yields
// the 21-byte PHY payload the paper's evaluation configures.
const FrameOverheadBytes = 13

// PHYPayloadBytes returns the PHY payload size of a data frame carrying
// appBytes of application data (no FOpts).
func PHYPayloadBytes(appBytes int) int { return appBytes + FrameOverheadBytes }

// Keys holds a device's session keys.
type Keys struct {
	// NwkSKey signs frames (MIC); AppSKey encrypts the payload.
	NwkSKey, AppSKey [16]byte
}

// Frame is an uplink data frame.
type Frame struct {
	// MType must be UnconfirmedDataUp or ConfirmedDataUp.
	MType MType
	// DevAddr is the device's network address.
	DevAddr uint32
	// ADR mirrors the FCtrl ADR bit (device follows server ADR commands).
	ADR bool
	// FCnt is the uplink frame counter (16 LSBs are sent on air).
	FCnt uint32
	// FPort is the application port (1..223 for application data).
	FPort uint8
	// Payload is the plaintext application payload.
	Payload []byte
}

// Errors returned by the codec.
var (
	ErrBadMIC    = errors.New("lorawan: MIC verification failed")
	ErrTooShort  = errors.New("lorawan: frame too short")
	ErrBadMType  = errors.New("lorawan: unsupported message type")
	ErrBadFPort  = errors.New("lorawan: invalid FPort")
	ErrFOptsUsed = errors.New("lorawan: FOpts not supported by this codec")
)

// Encode serializes, encrypts and signs the frame into a PHY payload.
func Encode(f Frame, keys Keys) ([]byte, error) {
	if f.MType != UnconfirmedDataUp && f.MType != ConfirmedDataUp {
		return nil, fmt.Errorf("%w: %v", ErrBadMType, f.MType)
	}
	if f.FPort == 0 || f.FPort > 223 {
		return nil, fmt.Errorf("%w: %d", ErrBadFPort, f.FPort)
	}
	enc, err := encryptFRMPayload(keys.AppSKey, f.DevAddr, f.FCnt, f.Payload)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 0, PHYPayloadBytes(len(f.Payload)))
	msg = append(msg, byte(f.MType)<<5)
	var addr [4]byte
	putUint32LE(addr[:], f.DevAddr)
	msg = append(msg, addr[:]...)
	fctrl := byte(0)
	if f.ADR {
		fctrl |= 0x80
	}
	msg = append(msg, fctrl)
	msg = append(msg, byte(f.FCnt), byte(f.FCnt>>8))
	msg = append(msg, f.FPort)
	msg = append(msg, enc...)
	mic, err := computeMIC(keys.NwkSKey, f.DevAddr, f.FCnt, msg)
	if err != nil {
		return nil, err
	}
	return append(msg, mic[:]...), nil
}

// Decode parses, verifies and decrypts a PHY payload. fCntHigh supplies
// the upper 16 bits of the frame counter (0 for young sessions); the
// 16 on-air bits are combined with it before MIC verification.
func Decode(phy []byte, keys Keys, fCntHigh uint32) (Frame, error) {
	var f Frame
	if len(phy) < FrameOverheadBytes {
		return f, fmt.Errorf("%w: %d bytes", ErrTooShort, len(phy))
	}
	f.MType = MType(phy[0] >> 5)
	if f.MType != UnconfirmedDataUp && f.MType != ConfirmedDataUp {
		return f, fmt.Errorf("%w: %v", ErrBadMType, f.MType)
	}
	f.DevAddr = uint32(phy[1]) | uint32(phy[2])<<8 | uint32(phy[3])<<16 | uint32(phy[4])<<24
	fctrl := phy[5]
	f.ADR = fctrl&0x80 != 0
	if foptsLen := int(fctrl & 0x0f); foptsLen != 0 {
		return f, ErrFOptsUsed
	}
	f.FCnt = fCntHigh<<16 | uint32(phy[6]) | uint32(phy[7])<<8
	f.FPort = phy[8]
	if f.FPort == 0 || f.FPort > 223 {
		return f, fmt.Errorf("%w: %d", ErrBadFPort, f.FPort)
	}
	body := phy[:len(phy)-4]
	var gotMIC [4]byte
	copy(gotMIC[:], phy[len(phy)-4:])
	wantMIC, err := computeMIC(keys.NwkSKey, f.DevAddr, f.FCnt, body)
	if err != nil {
		return f, err
	}
	if !micEqual(gotMIC, wantMIC) {
		return f, ErrBadMIC
	}
	dec, err := encryptFRMPayload(keys.AppSKey, f.DevAddr, f.FCnt, phy[9:len(phy)-4])
	if err != nil {
		return f, err
	}
	f.Payload = dec
	return f, nil
}
