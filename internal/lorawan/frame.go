package lorawan

import (
	"errors"
	"fmt"
)

// MType is the LoRaWAN message type (MHDR bits 7..5).
type MType uint8

// Message types of LoRaWAN 1.0.
const (
	JoinRequest MType = iota
	JoinAccept
	UnconfirmedDataUp
	UnconfirmedDataDown
	ConfirmedDataUp
	ConfirmedDataDown
	RFU
	Proprietary
)

// String implements fmt.Stringer.
func (m MType) String() string {
	names := []string{
		"JoinRequest", "JoinAccept", "UnconfirmedDataUp", "UnconfirmedDataDown",
		"ConfirmedDataUp", "ConfirmedDataDown", "RFU", "Proprietary",
	}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("MType(%d)", uint8(m))
}

// FrameOverheadBytes is the fixed PHY overhead of a LoRaWAN data frame
// with an empty FOpts field: MHDR (1) + DevAddr (4) + FCtrl (1) + FCnt (2)
// + FPort (1) + MIC (4). An 8-byte application payload therefore yields
// the 21-byte PHY payload the paper's evaluation configures.
const FrameOverheadBytes = 13

// PHYPayloadBytes returns the PHY payload size of a data frame carrying
// appBytes of application data (no FOpts).
func PHYPayloadBytes(appBytes int) int { return appBytes + FrameOverheadBytes }

// Keys holds a device's session keys.
type Keys struct {
	// NwkSKey signs frames (MIC); AppSKey encrypts the payload.
	NwkSKey, AppSKey [16]byte
}

// Frame is a data frame in either direction.
type Frame struct {
	// MType must be a data type matching the codec direction:
	// *DataUp for Encode/Decode, *DataDown for the Downlink variants.
	MType MType
	// DevAddr is the device's network address.
	DevAddr uint32
	// ADR mirrors the FCtrl ADR bit (device follows server ADR commands).
	ADR bool
	// FCnt is the frame counter for this direction (16 LSBs on air).
	FCnt uint32
	// FPort is the application port (1..223 for application data; 0 is
	// reserved for MAC commands in either direction — a LinkADRReq on the
	// downlink, its LinkADRAns on the uplink).
	FPort uint8
	// Payload is the plaintext application payload (or, on FPort 0, the
	// MAC-command bytes, which travel encrypted under NwkSKey).
	Payload []byte
}

// Errors returned by the codec.
var (
	ErrBadMIC    = errors.New("lorawan: MIC verification failed")
	ErrTooShort  = errors.New("lorawan: frame too short")
	ErrBadMType  = errors.New("lorawan: unsupported message type")
	ErrBadFPort  = errors.New("lorawan: invalid FPort")
	ErrFOptsUsed = errors.New("lorawan: FOpts not supported by this codec")
)

// dirFor maps a data MType onto its direction, rejecting everything
// that is not data traffic for dir (0 up, 1 down).
func dirFor(m MType, dir byte) error {
	switch {
	case dir == dirUp && (m == UnconfirmedDataUp || m == ConfirmedDataUp):
		return nil
	case dir == dirDown && (m == UnconfirmedDataDown || m == ConfirmedDataDown):
		return nil
	}
	return fmt.Errorf("%w: %v", ErrBadMType, m)
}

// payloadKey selects the session key the FRMPayload travels under:
// AppSKey for application ports, NwkSKey for the FPort-0 MAC channel.
func payloadKey(keys Keys, fport uint8) [16]byte {
	if fport == 0 {
		return keys.NwkSKey
	}
	return keys.AppSKey
}

// checkFPort enforces the port range. FPort 0 (MAC commands in the
// FRMPayload, encrypted under NwkSKey) is valid in both directions: the
// server sends LinkADRReq on it and the device answers with LinkADRAns.
func checkFPort(fport uint8) error {
	if fport > 223 {
		return fmt.Errorf("%w: %d", ErrBadFPort, fport)
	}
	return nil
}

// Encode serializes, encrypts and signs an uplink frame into a PHY
// payload.
func Encode(f Frame, keys Keys) ([]byte, error) { return encode(f, keys, dirUp) }

// EncodeDownlink serializes, encrypts and signs a downlink frame. FPort 0
// carries MAC commands (e.g. a LinkADRReq) encrypted under NwkSKey.
func EncodeDownlink(f Frame, keys Keys) ([]byte, error) { return encode(f, keys, dirDown) }

func encode(f Frame, keys Keys, dir byte) ([]byte, error) {
	if err := dirFor(f.MType, dir); err != nil {
		return nil, err
	}
	if err := checkFPort(f.FPort); err != nil {
		return nil, err
	}
	enc, err := encryptFRMPayload(payloadKey(keys, f.FPort), f.DevAddr, f.FCnt, dir, f.Payload)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 0, PHYPayloadBytes(len(f.Payload)))
	msg = append(msg, byte(f.MType)<<5)
	var addr [4]byte
	putUint32LE(addr[:], f.DevAddr)
	msg = append(msg, addr[:]...)
	fctrl := byte(0)
	if f.ADR {
		fctrl |= 0x80
	}
	msg = append(msg, fctrl)
	msg = append(msg, byte(f.FCnt), byte(f.FCnt>>8))
	msg = append(msg, f.FPort)
	msg = append(msg, enc...)
	mic, err := computeMIC(keys.NwkSKey, f.DevAddr, f.FCnt, dir, msg)
	if err != nil {
		return nil, err
	}
	return append(msg, mic[:]...), nil
}

// Decode parses, verifies and decrypts an uplink PHY payload. fCntHigh
// supplies the upper 16 bits of the frame counter (0 for young sessions);
// the 16 on-air bits are combined with it before MIC verification.
func Decode(phy []byte, keys Keys, fCntHigh uint32) (Frame, error) {
	return decode(phy, keys, fCntHigh, dirUp)
}

// DecodeDownlink parses, verifies and decrypts a downlink PHY payload —
// the device side of the Class-A RX window.
func DecodeDownlink(phy []byte, keys Keys, fCntHigh uint32) (Frame, error) {
	return decode(phy, keys, fCntHigh, dirDown)
}

func decode(phy []byte, keys Keys, fCntHigh uint32, dir byte) (Frame, error) {
	var f Frame
	if len(phy) < FrameOverheadBytes {
		return f, fmt.Errorf("%w: %d bytes", ErrTooShort, len(phy))
	}
	f.MType = MType(phy[0] >> 5)
	if err := dirFor(f.MType, dir); err != nil {
		return f, err
	}
	f.DevAddr = uint32(phy[1]) | uint32(phy[2])<<8 | uint32(phy[3])<<16 | uint32(phy[4])<<24
	fctrl := phy[5]
	f.ADR = fctrl&0x80 != 0
	if foptsLen := int(fctrl & 0x0f); foptsLen != 0 {
		return f, ErrFOptsUsed
	}
	f.FCnt = fCntHigh<<16 | uint32(phy[6]) | uint32(phy[7])<<8
	f.FPort = phy[8]
	if err := checkFPort(f.FPort); err != nil {
		return f, err
	}
	body := phy[:len(phy)-4]
	var gotMIC [4]byte
	copy(gotMIC[:], phy[len(phy)-4:])
	wantMIC, err := computeMIC(keys.NwkSKey, f.DevAddr, f.FCnt, dir, body)
	if err != nil {
		return f, err
	}
	if !micEqual(gotMIC, wantMIC) {
		return f, ErrBadMIC
	}
	dec, err := encryptFRMPayload(payloadKey(keys, f.FPort), f.DevAddr, f.FCnt, dir, phy[9:len(phy)-4])
	if err != nil {
		return f, err
	}
	f.Payload = dec
	return f, nil
}
