// Package lorawan implements the LoRaWAN 1.0 data-frame format: MHDR,
// frame header, payload encryption and the AES-CMAC message integrity
// code. It is the substrate behind the paper's payload accounting — an
// 8-byte application payload becomes the 21-byte PHY payload the
// evaluation configures (1 MHDR + 7 FHDR + 1 FPort + 8 data + 4 MIC).
package lorawan

import (
	"crypto/aes"
	"crypto/subtle"
	"fmt"
)

// aesCMAC computes AES-128 CMAC (RFC 4493) over msg.
func aesCMAC(key [16]byte, msg []byte) ([16]byte, error) {
	var out [16]byte
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return out, err
	}
	// Subkey generation.
	var l [16]byte
	block.Encrypt(l[:], l[:])
	k1 := dbl(l)
	k2 := dbl(k1)

	n := (len(msg) + 15) / 16
	complete := n > 0 && len(msg)%16 == 0
	if n == 0 {
		n = 1
	}
	var last [16]byte
	if complete {
		copy(last[:], msg[(n-1)*16:])
		xorInto(&last, k1)
	} else {
		rem := msg[(n-1)*16:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		xorInto(&last, k2)
	}

	var x [16]byte
	for i := 0; i < n-1; i++ {
		for j := 0; j < 16; j++ {
			x[j] ^= msg[i*16+j]
		}
		block.Encrypt(x[:], x[:])
	}
	xorInto(&x, last)
	block.Encrypt(out[:], x[:])
	return out, nil
}

// dbl doubles a value in GF(2^128) per RFC 4493.
func dbl(in [16]byte) [16]byte {
	var out [16]byte
	carry := byte(0)
	for i := 15; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[15] ^= 0x87
	}
	return out
}

func xorInto(dst *[16]byte, src [16]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Frame directions for the B0 block and payload cipher counter.
const (
	dirUp   byte = 0
	dirDown byte = 1
)

// computeMIC derives the 4-byte LoRaWAN data-frame MIC: CMAC over the B0
// block followed by the MHDR..FRMPayload bytes, truncated to 4 bytes.
// dir is 0 for uplink, 1 for downlink.
func computeMIC(nwkSKey [16]byte, devAddr uint32, fCnt uint32, dir byte, msg []byte) ([4]byte, error) {
	var mic [4]byte
	b0 := make([]byte, 16+len(msg))
	b0[0] = 0x49
	// bytes 1..4 zero
	b0[5] = dir
	putUint32LE(b0[6:10], devAddr)
	putUint32LE(b0[10:14], fCnt)
	b0[15] = byte(len(msg))
	copy(b0[16:], msg)
	full, err := aesCMAC(nwkSKey, b0)
	if err != nil {
		return mic, err
	}
	copy(mic[:], full[:4])
	return mic, nil
}

// micEqual compares MICs in constant time.
func micEqual(a, b [4]byte) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// encryptFRMPayload applies the LoRaWAN payload cipher (AES-128 in the
// spec's counter construction). Encryption and decryption are the same
// operation. dir is 0 for uplink, 1 for downlink.
func encryptFRMPayload(key [16]byte, devAddr uint32, fCnt uint32, dir byte, payload []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(payload))
	var a, s [16]byte
	for i := 0; i < len(payload); i += 16 {
		a = [16]byte{}
		a[0] = 0x01
		a[5] = dir
		putUint32LE(a[6:10], devAddr)
		putUint32LE(a[10:14], fCnt)
		a[15] = byte(i/16 + 1)
		block.Encrypt(s[:], a[:])
		for j := 0; j < 16 && i+j < len(payload); j++ {
			out[i+j] = payload[i+j] ^ s[j]
		}
	}
	return out, nil
}

func putUint32LE(dst []byte, v uint32) {
	if len(dst) < 4 {
		panic(fmt.Sprintf("lorawan: putUint32LE into %d bytes", len(dst)))
	}
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
}
