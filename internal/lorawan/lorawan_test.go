package lorawan

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	"eflora/internal/model"
)

// RFC 4493 AES-CMAC test vectors (key 2b7e...).
func rfc4493Key() [16]byte {
	var k [16]byte
	b, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	copy(k[:], b)
	return k
}

func TestAESCMACRFC4493Vectors(t *testing.T) {
	key := rfc4493Key()
	msgFull, _ := hex.DecodeString(
		"6bc1bee22e409f96e93d7e117393172a" +
			"ae2d8a571e03ac9c9eb76fac45af8e51" +
			"30c81c46a35ce411e5fbc1191a0a52ef" +
			"f69f2445df4f9b17ad2b417be66c3710")
	tests := []struct {
		name string
		msg  []byte
		want string
	}{
		{"empty", nil, "bb1d6929e95937287fa37d129b756746"},
		{"16 bytes", msgFull[:16], "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40 bytes", msgFull[:40], "dfa66747de9ae63030ca32611497c827"},
		{"64 bytes", msgFull, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, tt := range tests {
		got, err := aesCMAC(key, tt.msg)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := hex.DecodeString(tt.want)
		if !bytes.Equal(got[:], want) {
			t.Errorf("%s: CMAC = %x, want %s", tt.name, got, tt.want)
		}
	}
}

func testKeys() Keys {
	var k Keys
	for i := range k.NwkSKey {
		k.NwkSKey[i] = byte(i + 1)
		k.AppSKey[i] = byte(0xA0 + i)
	}
	return k
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	keys := testKeys()
	f := Frame{
		MType:   UnconfirmedDataUp,
		DevAddr: 0x26011BDA,
		ADR:     true,
		FCnt:    42,
		FPort:   7,
		Payload: []byte("sensor#1"),
	}
	phy, err := Encode(f, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(phy) != PHYPayloadBytes(len(f.Payload)) {
		t.Fatalf("PHY size = %d, want %d", len(phy), PHYPayloadBytes(len(f.Payload)))
	}
	got, err := Decode(phy, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.MType != f.MType || got.DevAddr != f.DevAddr || got.FCnt != f.FCnt ||
		got.FPort != f.FPort || got.ADR != f.ADR || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func TestPaperPayloadAccounting(t *testing.T) {
	// The paper: "application payload of 8 bytes, which implied a PHY
	// payload of 21 bytes" — exactly this codec's overhead.
	if got := PHYPayloadBytes(8); got != 21 {
		t.Fatalf("PHYPayloadBytes(8) = %d, want 21", got)
	}
	keys := testKeys()
	phy, err := Encode(Frame{
		MType: UnconfirmedDataUp, DevAddr: 1, FCnt: 0, FPort: 1,
		Payload: make([]byte, 8),
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(phy) != 21 {
		t.Fatalf("encoded 8-byte app payload into %d PHY bytes, want 21", len(phy))
	}
	// And that is what model.DefaultParams configures.
	p := model.DefaultParams()
	if p.PHYPayloadBytes != PHYPayloadBytes(p.AppPayloadBytes) {
		t.Errorf("model params %d/%d inconsistent with LoRaWAN framing (%d)",
			p.AppPayloadBytes, p.PHYPayloadBytes, PHYPayloadBytes(p.AppPayloadBytes))
	}
}

func TestPayloadIsEncryptedOnAir(t *testing.T) {
	keys := testKeys()
	payload := []byte("plaintext!")
	phy, err := Encode(Frame{
		MType: UnconfirmedDataUp, DevAddr: 5, FCnt: 9, FPort: 2, Payload: payload,
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(phy, payload) {
		t.Error("plaintext payload visible in the PHY payload")
	}
}

func TestEncryptionVariesWithFrameCounter(t *testing.T) {
	keys := testKeys()
	mk := func(fcnt uint32) []byte {
		phy, err := Encode(Frame{
			MType: UnconfirmedDataUp, DevAddr: 5, FCnt: fcnt, FPort: 2,
			Payload: []byte("same-payload"),
		}, keys)
		if err != nil {
			t.Fatal(err)
		}
		return phy[9 : len(phy)-4]
	}
	if bytes.Equal(mk(1), mk(2)) {
		t.Error("ciphertext identical across frame counters (counter mode broken)")
	}
}

func TestDecodeDetectsTampering(t *testing.T) {
	keys := testKeys()
	phy, err := Encode(Frame{
		MType: UnconfirmedDataUp, DevAddr: 7, FCnt: 3, FPort: 10, Payload: []byte{1, 2, 3, 4},
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, flip := range []int{0, 4, 9, len(phy) - 1} {
		bad := append([]byte(nil), phy...)
		bad[flip] ^= 0x01
		if _, err := Decode(bad, keys, 0); err == nil {
			t.Errorf("tampered byte %d accepted", flip)
		}
	}
	// Wrong network key must fail the MIC.
	other := testKeys()
	other.NwkSKey[0] ^= 0xFF
	if _, err := Decode(phy, other, 0); !errors.Is(err, ErrBadMIC) {
		t.Errorf("wrong key error = %v, want ErrBadMIC", err)
	}
}

func TestDecodeFCntHigh(t *testing.T) {
	keys := testKeys()
	// FCnt 0x1002A: only 0x002A goes on air; the receiver supplies the
	// high half for the MIC.
	f := Frame{MType: ConfirmedDataUp, DevAddr: 9, FCnt: 0x1002A, FPort: 1, Payload: []byte{0xAB}}
	phy, err := Encode(f, keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(phy, keys, 0); !errors.Is(err, ErrBadMIC) {
		t.Errorf("decode with wrong fCntHigh = %v, want ErrBadMIC", err)
	}
	got, err := Decode(phy, keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.FCnt != 0x1002A {
		t.Errorf("FCnt = %#x, want 0x1002A", got.FCnt)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	keys := testKeys()
	if _, err := Encode(Frame{MType: JoinRequest, FPort: 1}, keys); !errors.Is(err, ErrBadMType) {
		t.Errorf("join request accepted: %v", err)
	}
	if _, err := Encode(Frame{MType: UnconfirmedDataUp, FPort: 224}, keys); !errors.Is(err, ErrBadFPort) {
		t.Errorf("FPort 224 accepted: %v", err)
	}
}

// TestUplinkMACChannel pins the FPort-0 uplink path: a LinkADRAns travels
// encrypted under NwkSKey and round-trips through the uplink codec.
func TestUplinkMACChannel(t *testing.T) {
	keys := testKeys()
	ans := LinkADRAns{ChannelACK: true, DataRateACK: true, PowerACK: true}
	phy, err := Encode(Frame{
		MType: UnconfirmedDataUp, DevAddr: 0x42, FCnt: 3, FPort: 0, Payload: ans.Encode(),
	}, keys)
	if err != nil {
		t.Fatalf("FPort 0 uplink rejected: %v", err)
	}
	got, err := Decode(phy, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.FPort != 0 {
		t.Fatalf("FPort = %d, want 0", got.FPort)
	}
	back, err := ParseLinkADRAns(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if back != ans {
		t.Errorf("LinkADRAns round-trip = %+v, want %+v", back, ans)
	}
	if !back.Applied() {
		t.Error("all-ACK answer not Applied")
	}
}

func TestLinkADRAnsCodec(t *testing.T) {
	cases := []LinkADRAns{
		{},
		{ChannelACK: true},
		{DataRateACK: true},
		{PowerACK: true},
		{ChannelACK: true, DataRateACK: true},
		{ChannelACK: true, DataRateACK: true, PowerACK: true},
	}
	for _, c := range cases {
		got, err := ParseLinkADRAns(c.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if got != c {
			t.Errorf("round-trip %+v != %+v", got, c)
		}
		if got.Applied() != (c.ChannelACK && c.DataRateACK && c.PowerACK) {
			t.Errorf("%+v Applied = %v", c, got.Applied())
		}
	}
	for _, bad := range [][]byte{nil, {CIDLinkADRAns}, {CIDLinkADRAns, 1, 2}, {0x04, 0x07}, {CIDLinkADRAns, 0x08}} {
		if _, err := ParseLinkADRAns(bad); err == nil {
			t.Errorf("ParseLinkADRAns(% x) accepted", bad)
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	keys := testKeys()
	if _, err := Decode(make([]byte, 5), keys, 0); !errors.Is(err, ErrTooShort) {
		t.Error("short frame accepted")
	}
	// Downlink MType.
	phy, _ := Encode(Frame{MType: UnconfirmedDataUp, DevAddr: 1, FPort: 1, Payload: []byte{1}}, keys)
	bad := append([]byte(nil), phy...)
	bad[0] = byte(UnconfirmedDataDown) << 5
	if _, err := Decode(bad, keys, 0); !errors.Is(err, ErrBadMType) && !errors.Is(err, ErrBadMIC) {
		t.Errorf("downlink accepted: %v", err)
	}
	// Non-empty FOpts length field.
	bad = append([]byte(nil), phy...)
	bad[5] |= 0x03
	if _, err := Decode(bad, keys, 0); err == nil {
		t.Error("FOpts frame accepted")
	}
}

func TestMTypeString(t *testing.T) {
	if UnconfirmedDataUp.String() != "UnconfirmedDataUp" {
		t.Error("MType string")
	}
	if MType(42).String() != "MType(42)" {
		t.Error("unknown MType string")
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	keys := testKeys()
	phy, err := Encode(Frame{MType: UnconfirmedDataUp, DevAddr: 2, FPort: 1}, keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(phy, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload = %v, want empty", got.Payload)
	}
}
