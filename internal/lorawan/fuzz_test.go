package lorawan

import (
	"bytes"
	"testing"
	"testing/quick"

	"eflora/internal/rng"
)

// TestQuickRoundTrip property-checks Encode/Decode over random frames.
func TestQuickRoundTrip(t *testing.T) {
	f := func(devAddr uint32, fcntLow uint16, fportRaw uint8, payload []byte, adr bool, keySeed uint64) bool {
		if len(payload) > 200 {
			payload = payload[:200]
		}
		r := rng.New(keySeed)
		var keys Keys
		for i := range keys.NwkSKey {
			keys.NwkSKey[i] = byte(r.Intn(256))
			keys.AppSKey[i] = byte(r.Intn(256))
		}
		frame := Frame{
			MType:   UnconfirmedDataUp,
			DevAddr: devAddr,
			ADR:     adr,
			FCnt:    uint32(fcntLow),
			FPort:   1 + fportRaw%223,
			Payload: payload,
		}
		phy, err := Encode(frame, keys)
		if err != nil {
			return false
		}
		got, err := Decode(phy, keys, 0)
		if err != nil {
			return false
		}
		return got.DevAddr == frame.DevAddr &&
			got.FCnt == frame.FCnt &&
			got.FPort == frame.FPort &&
			got.ADR == frame.ADR &&
			bytes.Equal(got.Payload, frame.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTamperDetection property-checks that any single-bit flip in a
// frame is rejected.
func TestQuickTamperDetection(t *testing.T) {
	keys := testKeys()
	f := func(payload []byte, flipByteRaw, flipBitRaw uint8) bool {
		if len(payload) > 64 {
			payload = payload[:64]
		}
		phy, err := Encode(Frame{
			MType: UnconfirmedDataUp, DevAddr: 0xABCD, FCnt: 7, FPort: 3, Payload: payload,
		}, keys)
		if err != nil {
			return false
		}
		i := int(flipByteRaw) % len(phy)
		phy[i] ^= 1 << (flipBitRaw % 8)
		_, err = Decode(phy, keys, 0)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
