// Package core ties the EF-LoRa building blocks together behind one
// convenient API: build a deployment, run an allocator, evaluate the
// analytical model, simulate packet traffic and derive lifetimes. The
// command-line tools and examples drive this package.
package core

import (
	"fmt"
	"strings"

	"eflora/internal/alloc"
	"eflora/internal/geo"
	"eflora/internal/lifetime"
	"eflora/internal/model"
	"eflora/internal/radio"
	"eflora/internal/rng"
	"eflora/internal/sim"
	"eflora/internal/stats"
)

// Scenario describes a deployment to generate: devices uniformly in a disc
// and gateways on the paper's mesh-grid positions.
type Scenario struct {
	// Devices and Gateways count the nodes (defaults 1000 and 3).
	Devices, Gateways int
	// RadiusM is the deployment disc radius (default 5000, the paper's
	// 5 km disc).
	RadiusM float64
	// Seed drives device placement.
	Seed uint64
	// Params overrides the network parameters; zero value means
	// model.DefaultParams().
	Params *model.Params
}

func (s Scenario) withDefaults() Scenario {
	if s.Devices <= 0 {
		s.Devices = 1000
	}
	if s.Gateways <= 0 {
		s.Gateways = 3
	}
	if s.RadiusM <= 0 {
		s.RadiusM = 5000
	}
	return s
}

// Network is a built deployment ready for allocation and simulation.
type Network struct {
	Net    *model.Network
	Params model.Params
	Seed   uint64
}

// Build generates the deployment of a scenario.
func Build(s Scenario) (*Network, error) {
	s = s.withDefaults()
	p := model.DefaultParams()
	if s.Params != nil {
		p = *s.Params
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	r := rng.New(s.Seed)
	net := &model.Network{
		Devices:  geo.UniformDisc(s.Devices, s.RadiusM, r),
		Gateways: geo.GridGateways(s.Gateways, s.RadiusM),
	}
	if err := net.Validate(p); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Network{Net: net, Params: p, Seed: s.Seed}, nil
}

// AllocatorByName resolves any registered strategy key or alias from
// alloc.Strategies() — "legacy", "adr", "rslora", "eflora", "anneal",
// "hier", "exhaustive" — plus the "eflora-fixed" ablation, for which
// fixedTP pins the power (case-insensitive).
func AllocatorByName(name string, opts alloc.Options, fixedTP float64) (alloc.Allocator, error) {
	switch strings.ToLower(name) {
	case "eflora-fixed", "ef-lora-fixed":
		o := opts
		o.FixedTPdBm = &fixedTP
		return alloc.NewEFLoRa(o), nil
	}
	s, err := alloc.StrategyByKey(name)
	if err != nil {
		return nil, fmt.Errorf("core: unknown allocator %q (want a strategy key from alloc.Strategies() or eflora-fixed)", name)
	}
	return s.New(opts), nil
}

// Allocate runs the named allocator on the network.
func (n *Network) Allocate(name string, opts alloc.Options) (model.Allocation, error) {
	al, err := AllocatorByName(name, opts, n.Params.Plan.MaxTxPowerDBm)
	if err != nil {
		return model.Allocation{}, err
	}
	return al.Allocate(n.Net, n.Params, rng.New(n.Seed+1))
}

// Evaluation summarizes the analytical model's view of an allocation.
type Evaluation struct {
	// EE is bits per joule per device; PRR the modelled reception ratio.
	EE, PRR []float64
	// MinEE, MeanEE in bits per joule; Jain is Jain's fairness index of
	// the EE distribution.
	MinEE, MeanEE, Jain float64
	// MinIndex is the bottleneck device.
	MinIndex int
}

// Evaluate runs the analytical model (exact mode) on an allocation.
func (n *Network) Evaluate(a model.Allocation) (*Evaluation, error) {
	ev, err := model.NewEvaluator(n.Net, n.Params, a, model.ModeExact)
	if err != nil {
		return nil, err
	}
	out := &Evaluation{EE: ev.EEAll()}
	out.PRR = make([]float64, len(out.EE))
	for i := range out.PRR {
		out.PRR[i] = ev.PRR(i)
	}
	out.MinEE, out.MinIndex = ev.MinEE()
	out.MeanEE = stats.Mean(out.EE)
	out.Jain = stats.JainIndex(out.EE)
	return out, nil
}

// Simulate runs the packet-level simulator on an allocation. cfg passes
// through unchanged, so sim.Config.StreamWindowS selects the
// memory-bounded streaming mode (bit-identical to batch) from here too.
func (n *Network) Simulate(a model.Allocation, cfg sim.Config) (*sim.Result, error) {
	return sim.Run(n.Net, n.Params, a, cfg)
}

// Lifetime derives the network lifetime from a simulation with the given
// battery; deadFraction selects the death criterion (paper: 0.10).
func (n *Network) Lifetime(res *sim.Result, battery radio.Battery, deadFraction float64) (lifetime.Result, error) {
	return lifetime.Compute(res.AvgPowerW, battery, deadFraction)
}

// BitsPerMilliJoule converts the repository's bits-per-joule EE values to
// the paper's reporting unit.
func BitsPerMilliJoule(bitsPerJoule float64) float64 { return bitsPerJoule / 1000 }
