package core

import (
	"math"
	"testing"

	"eflora/internal/alloc"
	"eflora/internal/model"
	"eflora/internal/radio"
	"eflora/internal/sim"
)

func buildSmall(t *testing.T) *Network {
	t.Helper()
	// A chatty reporting interval so ALOHA contention is present and the
	// allocators actually differ.
	p := model.DefaultParams()
	p.PacketIntervalS = 20
	n, err := Build(Scenario{Devices: 100, Gateways: 2, RadiusM: 3000, Seed: 1, Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildDefaults(t *testing.T) {
	n, err := Build(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Net.N() != 1000 || n.Net.G() != 3 {
		t.Errorf("defaults: N=%d G=%d, want 1000, 3", n.Net.N(), n.Net.G())
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	bad := model.DefaultParams()
	bad.PacketIntervalS = -1
	if _, err := Build(Scenario{Params: &bad}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAllocatorByName(t *testing.T) {
	names := []string{"eflora", "EF-LoRa", "legacy", "Legacy-LoRa", "rslora", "RS-LoRa", "eflora-fixed", "adr",
		"anneal", "hier", "Hierarchical", "exhaustive"}
	for _, name := range names {
		if _, err := AllocatorByName(name, alloc.Options{}, 14); err != nil {
			t.Errorf("AllocatorByName(%q): %v", name, err)
		}
	}
	if _, err := AllocatorByName("random", alloc.Options{}, 14); err == nil {
		t.Error("unknown allocator accepted")
	}
	// Every registered strategy key must resolve through the facade.
	for _, s := range alloc.Strategies() {
		if _, err := AllocatorByName(s.Key, alloc.Options{}, 14); err != nil {
			t.Errorf("registered strategy %q does not resolve: %v", s.Key, err)
		}
	}
}

func TestAllocateEvaluatePipeline(t *testing.T) {
	n := buildSmall(t)
	for _, name := range []string{"eflora", "legacy", "rslora"} {
		a, err := n.Allocate(name, alloc.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ev, err := n.Evaluate(a)
		if err != nil {
			t.Fatalf("%s evaluate: %v", name, err)
		}
		if len(ev.EE) != 100 || len(ev.PRR) != 100 {
			t.Fatalf("%s: evaluation sizes %d/%d", name, len(ev.EE), len(ev.PRR))
		}
		if ev.MinEE < 0 || ev.MeanEE < ev.MinEE {
			t.Errorf("%s: MinEE=%v MeanEE=%v", name, ev.MinEE, ev.MeanEE)
		}
		if ev.Jain <= 0 || ev.Jain > 1+1e-9 {
			t.Errorf("%s: Jain=%v", name, ev.Jain)
		}
		if ev.MinIndex < 0 || ev.EE[ev.MinIndex] != ev.MinEE {
			t.Errorf("%s: MinIndex inconsistent", name)
		}
	}
}

func TestEFLoRaBeatsLegacyThroughFacade(t *testing.T) {
	// Dense, chatty deployment: the bottleneck is collision-limited, the
	// regime where the allocators genuinely differ. (In coverage-limited
	// deployments all methods hit the same far-device bound.)
	p := model.DefaultParams()
	p.PacketIntervalS = 15
	n, err := Build(Scenario{Devices: 300, Gateways: 2, RadiusM: 2000, Seed: 1, Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	ef, err := n.Allocate("eflora", alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg, err := n.Allocate("legacy", alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	evEF, err := n.Evaluate(ef)
	if err != nil {
		t.Fatal(err)
	}
	evLG, err := n.Evaluate(lg)
	if err != nil {
		t.Fatal(err)
	}
	if evEF.MinEE <= evLG.MinEE {
		t.Errorf("EF-LoRa min EE %v should beat legacy %v", evEF.MinEE, evLG.MinEE)
	}
	// Max-min is EF-LoRa's objective, not Jain; it only needs to stay in
	// the same fairness ballpark while lifting the worst device.
	if evEF.Jain < evLG.Jain-0.02 {
		t.Errorf("EF-LoRa Jain %v trails legacy %v materially", evEF.Jain, evLG.Jain)
	}
}

func TestSimulateAndLifetime(t *testing.T) {
	n := buildSmall(t)
	a, err := n.Allocate("eflora", alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Simulate(a, sim.Config{PacketsPerDevice: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PRR) != 100 {
		t.Fatalf("sim PRR size %d", len(res.PRR))
	}
	lt, err := n.Lifetime(res, radio.NewBatteryFromMilliampHours(2400, 3.3), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if lt.NetworkS <= 0 || math.IsNaN(lt.NetworkS) {
		t.Errorf("network lifetime = %v", lt.NetworkS)
	}
	if lt.FirstDeathS > lt.NetworkS {
		t.Errorf("first death %v after 10%% death %v", lt.FirstDeathS, lt.NetworkS)
	}
}

func TestBitsPerMilliJoule(t *testing.T) {
	if got := BitsPerMilliJoule(1500); got != 1.5 {
		t.Errorf("BitsPerMilliJoule(1500) = %v", got)
	}
}
