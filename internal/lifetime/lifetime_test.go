package lifetime

import (
	"math"
	"testing"

	"eflora/internal/radio"
)

func battery() radio.Battery {
	return radio.NewBatteryFromMilliampHours(2400, 3.3)
}

func TestComputeBasic(t *testing.T) {
	// 10 devices, powers 1..10 mW. With the 10% rule, the network dies
	// with the first device: the one drawing 10 mW.
	powers := make([]float64, 10)
	for i := range powers {
		powers[i] = float64(i+1) * 1e-3
	}
	res, err := Compute(powers, battery(), DefaultDeadFraction)
	if err != nil {
		t.Fatal(err)
	}
	wantFirst := battery().CapacityJoules / 10e-3
	if math.Abs(res.FirstDeathS-wantFirst) > 1e-6 {
		t.Errorf("FirstDeathS = %v, want %v", res.FirstDeathS, wantFirst)
	}
	if res.NetworkS != res.FirstDeathS {
		t.Errorf("10%% of 10 devices is 1 death: NetworkS = %v, want %v", res.NetworkS, res.FirstDeathS)
	}
	if len(res.PerDeviceS) != 10 {
		t.Fatalf("PerDeviceS len = %d", len(res.PerDeviceS))
	}
	for i := 1; i < 10; i++ {
		if res.PerDeviceS[i] >= res.PerDeviceS[i-1] {
			t.Errorf("lifetime should fall with power draw: device %d", i)
		}
	}
}

func TestComputeHalfDeadFraction(t *testing.T) {
	powers := []float64{1e-3, 2e-3, 4e-3, 8e-3}
	res, err := Compute(powers, battery(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 50% of 4 devices = 2 deaths: second-smallest lifetime (4 mW device).
	want := battery().CapacityJoules / 4e-3
	if math.Abs(res.NetworkS-want) > 1e-6 {
		t.Errorf("NetworkS = %v, want %v", res.NetworkS, want)
	}
}

func TestComputeFullFraction(t *testing.T) {
	powers := []float64{1e-3, 5e-3}
	res, err := Compute(powers, battery(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := battery().CapacityJoules / 1e-3 // last device to die
	if math.Abs(res.NetworkS-want) > 1e-6 {
		t.Errorf("NetworkS = %v, want %v", res.NetworkS, want)
	}
}

func TestComputeZeroPowerDevice(t *testing.T) {
	res, err := Compute([]float64{0, 1e-3}, battery(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.PerDeviceS[0], 1) {
		t.Errorf("zero-power device lifetime = %v, want +Inf", res.PerDeviceS[0])
	}
	if !math.IsInf(res.NetworkS, 1) {
		t.Errorf("with fraction 1 and an immortal device, NetworkS = %v, want +Inf", res.NetworkS)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, battery(), 0.1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Compute([]float64{1e-3}, battery(), 0); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := Compute([]float64{1e-3}, battery(), 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := Compute([]float64{-1}, battery(), 0.1); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := Compute([]float64{1e-3}, radio.Battery{}, 0.1); err == nil {
		t.Error("zero-capacity battery accepted")
	}
}

func TestDays(t *testing.T) {
	if got := Days(86400 * 30); got != 30 {
		t.Errorf("Days = %v", got)
	}
}

func TestFairPowersExtendNetworkLifetime(t *testing.T) {
	// The paper's core argument: equalizing consumption extends the
	// network lifetime for the same total energy budget.
	unfair := []float64{8e-3, 1e-3, 1e-3, 1e-3, 1e-3}
	fair := []float64{2.4e-3, 2.4e-3, 2.4e-3, 2.4e-3, 2.4e-3} // same total
	ru, err := Compute(unfair, battery(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Compute(fair, battery(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if rf.NetworkS <= ru.NetworkS {
		t.Errorf("fair allocation lifetime %v should exceed unfair %v", rf.NetworkS, ru.NetworkS)
	}
}
