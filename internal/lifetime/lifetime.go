// Package lifetime computes network-lifetime metrics from per-device power
// draws: the paper's evaluation (Fig. 8) defines network lifetime as the
// time until 10% of the end devices have exhausted their batteries.
package lifetime

import (
	"fmt"
	"math"
	"sort"

	"eflora/internal/radio"
)

// DefaultDeadFraction is the paper's network-death criterion: the network
// is considered broken once 10% of the devices have run out of battery.
const DefaultDeadFraction = 0.10

// Result describes the lifetime outcome of a deployment.
type Result struct {
	// PerDeviceS is each device's individual battery lifetime in seconds.
	PerDeviceS []float64
	// NetworkS is the time at which deadFraction of the devices are dead.
	NetworkS float64
	// FirstDeathS is the minimum per-device lifetime (the strictest
	// definition, used in the paper's Section II example).
	FirstDeathS float64
}

// Compute derives lifetimes from per-device average power draws and a
// shared battery. deadFraction in (0, 1] selects the network-death
// criterion; pass DefaultDeadFraction for the paper's 10% rule.
func Compute(avgPowerW []float64, battery radio.Battery, deadFraction float64) (Result, error) {
	if len(avgPowerW) == 0 {
		return Result{}, fmt.Errorf("lifetime: no devices")
	}
	if deadFraction <= 0 || deadFraction > 1 {
		return Result{}, fmt.Errorf("lifetime: dead fraction %v outside (0, 1]", deadFraction)
	}
	if battery.CapacityJoules <= 0 {
		return Result{}, fmt.Errorf("lifetime: battery capacity %v must be positive", battery.CapacityJoules)
	}
	res := Result{PerDeviceS: make([]float64, len(avgPowerW))}
	for i, p := range avgPowerW {
		if p < 0 {
			return Result{}, fmt.Errorf("lifetime: device %d has negative power %v", i, p)
		}
		res.PerDeviceS[i] = battery.LifetimeSeconds(p)
	}
	sorted := make([]float64, len(res.PerDeviceS))
	copy(sorted, res.PerDeviceS)
	sort.Float64s(sorted)
	res.FirstDeathS = sorted[0]
	// The network dies when ceil(deadFraction·N) devices are dead, i.e.
	// at the k-th smallest lifetime.
	k := int(math.Ceil(deadFraction*float64(len(sorted)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	res.NetworkS = sorted[k]
	return res, nil
}

// Days converts seconds to days for reporting.
func Days(seconds float64) float64 { return seconds / 86400 }
