// Package netserver implements the LoRaWAN network-server role of the
// paper's system model (Section III-A): gateways forward every reception
// with metadata to a central server, which de-duplicates the copies (an
// uplink heard by several gateways counts once), verifies and decrypts
// the frames, tracks per-device counters and retains the best-gateway
// statistics that drive downlink routing and ADR.
package netserver

import (
	"fmt"
	"sort"
	"sync"

	"eflora/internal/lorawan"
)

// Uplink is one gateway's reception of a frame, as forwarded to the
// server.
type Uplink struct {
	// Gateway is the reporting gateway's index.
	Gateway int
	// ReceivedAtS is the reception timestamp in seconds.
	ReceivedAtS float64
	// RSSIdBm and SNRdB are the reception quality metadata.
	RSSIdBm, SNRdB float64
	// PHYPayload is the raw frame.
	PHYPayload []byte
}

// Delivery is a de-duplicated, verified and decrypted uplink.
type Delivery struct {
	DevAddr uint32
	FCnt    uint32
	FPort   uint8
	Payload []byte
	// Gateways lists every gateway that reported a copy, best SNR first.
	Gateways []Uplink
}

// Device is a provisioned end device.
type Device struct {
	DevAddr uint32
	Keys    lorawan.Keys
}

// Server is the network server. It is safe for concurrent use by multiple
// gateway forwarders.
type Server struct {
	mu      sync.Mutex
	devices map[uint32]lorawan.Keys
	// lastFCnt tracks the highest accepted counter per device for replay
	// protection and FCnt roll-over reconstruction.
	lastFCnt map[uint32]uint32
	seen     map[uint32]bool // whether the device has sent before
	// pending groups copies of the current frame per device until the
	// dedup window closes.
	pending map[uint32]*pendingFrame
	// DedupWindowS is how long the server waits for more gateway copies
	// before finalizing a delivery (default 0.2 s).
	DedupWindowS float64

	deliveries []Delivery
	// Duplicates counts redundant gateway copies that were merged;
	// Rejected counts frames that failed verification or replay checks.
	Duplicates, Rejected int
}

type pendingFrame struct {
	fcnt    uint32
	fport   uint8
	payload []byte
	firstAt float64
	copies  []Uplink
}

// New creates a server with the given provisioned devices.
func New(devices []Device) *Server {
	s := &Server{
		devices:      make(map[uint32]lorawan.Keys, len(devices)),
		lastFCnt:     make(map[uint32]uint32),
		seen:         make(map[uint32]bool),
		pending:      make(map[uint32]*pendingFrame),
		DedupWindowS: 0.2,
	}
	for _, d := range devices {
		s.devices[d.DevAddr] = d.Keys
	}
	return s
}

// HandleUplink ingests one gateway reception. Frames that fail MIC
// verification, belong to unknown devices, or replay an old counter are
// counted in Rejected. Copies of a frame already pending are merged.
func (s *Server) HandleUplink(up Uplink) error {
	if len(up.PHYPayload) < lorawan.FrameOverheadBytes {
		s.mu.Lock()
		s.Rejected++
		s.mu.Unlock()
		return fmt.Errorf("netserver: frame too short (%d bytes)", len(up.PHYPayload))
	}
	// DevAddr is at bytes 1..4; look the keys up before full decode.
	devAddr := uint32(up.PHYPayload[1]) | uint32(up.PHYPayload[2])<<8 |
		uint32(up.PHYPayload[3])<<16 | uint32(up.PHYPayload[4])<<24

	s.mu.Lock()
	defer s.mu.Unlock()
	keys, ok := s.devices[devAddr]
	if !ok {
		s.Rejected++
		return fmt.Errorf("netserver: unknown device %08x", devAddr)
	}
	f, err := lorawan.Decode(up.PHYPayload, keys, s.lastFCnt[devAddr]>>16)
	if err != nil {
		s.Rejected++
		return fmt.Errorf("netserver: %w", err)
	}

	// Flush a pending frame whose window has closed.
	if pf, ok := s.pending[devAddr]; ok {
		if f.FCnt != pf.fcnt || up.ReceivedAtS-pf.firstAt > s.DedupWindowS {
			s.finalizeLocked(devAddr, pf)
			delete(s.pending, devAddr)
		}
	}

	if pf, ok := s.pending[devAddr]; ok && pf.fcnt == f.FCnt {
		// Redundant gateway copy of the pending frame.
		pf.copies = append(pf.copies, up)
		s.Duplicates++
		return nil
	}

	// Replay protection: a finalized or pending counter must be fresh.
	if s.seen[devAddr] && f.FCnt <= s.lastFCnt[devAddr] {
		s.Rejected++
		return fmt.Errorf("netserver: replayed FCnt %d (last %d)", f.FCnt, s.lastFCnt[devAddr])
	}
	s.pending[devAddr] = &pendingFrame{
		fcnt:    f.FCnt,
		fport:   f.FPort,
		payload: f.Payload,
		firstAt: up.ReceivedAtS,
		copies:  []Uplink{up},
	}
	s.lastFCnt[devAddr] = f.FCnt
	s.seen[devAddr] = true
	return nil
}

// finalizeLocked turns a pending frame into a delivery. Callers hold mu.
func (s *Server) finalizeLocked(devAddr uint32, pf *pendingFrame) {
	sort.SliceStable(pf.copies, func(i, j int) bool {
		return pf.copies[i].SNRdB > pf.copies[j].SNRdB
	})
	s.deliveries = append(s.deliveries, Delivery{
		DevAddr:  devAddr,
		FCnt:     pf.fcnt,
		FPort:    pf.fport,
		Payload:  pf.payload,
		Gateways: pf.copies,
	})
}

// Flush finalizes every pending frame (end of a simulation or batch).
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrs := make([]uint32, 0, len(s.pending))
	for a := range s.pending {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		s.finalizeLocked(a, s.pending[a])
		delete(s.pending, a)
	}
}

// Deliveries returns the finalized, de-duplicated uplinks in arrival
// order.
func (s *Server) Deliveries() []Delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Delivery, len(s.deliveries))
	copy(out, s.deliveries)
	return out
}

// BestGateway returns the gateway that most recently delivered the
// device's traffic with the best SNR — the downlink routing choice.
func (s *Server) BestGateway(devAddr uint32) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.deliveries) - 1; i >= 0; i-- {
		if s.deliveries[i].DevAddr == devAddr && len(s.deliveries[i].Gateways) > 0 {
			return s.deliveries[i].Gateways[0].Gateway, true
		}
	}
	return 0, false
}
