// Package netserver implements the LoRaWAN network-server role of the
// paper's system model (Section III-A): gateways forward every reception
// with metadata to a central server, which de-duplicates the copies (an
// uplink heard by several gateways counts once), verifies and decrypts
// the frames, tracks per-device counters and retains the best-gateway
// statistics that drive downlink routing and ADR.
//
// A Server is one unit of concurrency: it serializes ingestion under a
// single mutex. Batch callers (the simulator, examples) use one Server
// for the whole network; the live daemon in internal/ingest shards the
// device population across a pool of Servers so independent devices
// never contend on the same lock.
//
// This package models everything above the radio: the physics of what a
// gateway could receive at all — sensitivity, collisions, demodulator
// capacity — lives in internal/engine (driven live by ingest.Frontend and
// in simulation by internal/sim), and only decoded frames reach a Server.
package netserver

import (
	"fmt"
	"sort"
	"sync"

	"eflora/internal/lorawan"
)

// Uplink is one gateway's reception of a frame, as forwarded to the
// server.
type Uplink struct {
	// Gateway is the reporting gateway's index.
	Gateway int
	// ReceivedAtS is the reception timestamp in seconds.
	ReceivedAtS float64
	// RSSIdBm and SNRdB are the reception quality metadata.
	RSSIdBm, SNRdB float64
	// PHYPayload is the raw frame.
	PHYPayload []byte
}

// Delivery is a de-duplicated, verified and decrypted uplink.
type Delivery struct {
	DevAddr uint32
	FCnt    uint32
	FPort   uint8
	Payload []byte
	// Gateways lists every gateway that reported a copy, best SNR first.
	Gateways []Uplink
}

// Device is a provisioned end device.
type Device struct {
	DevAddr uint32
	Keys    lorawan.Keys
}

// Server is the network server. It is safe for concurrent use by multiple
// gateway forwarders.
type Server struct {
	mu      sync.Mutex
	devices map[uint32]lorawan.Keys
	// lastFCnt tracks the highest accepted counter per device for replay
	// protection and FCnt roll-over reconstruction.
	lastFCnt map[uint32]uint32
	seen     map[uint32]bool // whether the device has sent before
	// lastBest caches the best-SNR gateway of each device's most recent
	// delivery so BestGateway is O(1) per downlink decision.
	lastBest map[uint32]int
	// pending groups copies of the current frame per device until the
	// dedup window closes.
	pending map[uint32]*pendingFrame
	// DedupWindowS is how long the server waits for more gateway copies
	// before finalizing a delivery (default 0.2 s).
	DedupWindowS float64

	// deliveries retains finalized uplinks. Unbounded by default; a ring
	// of the most recent retainCap entries once SetRetention caps it.
	deliveries []Delivery
	ringHead   int // index of the oldest entry when the ring is full
	retainCap  int // 0 = unbounded
	drain      func(Delivery)

	// Uplinks counts every HandleUplink call; Delivered counts finalized
	// deliveries; Duplicates counts redundant gateway copies (merged into
	// a pending frame or arriving late, after its window closed);
	// Rejected counts frames that failed verification or replay checks.
	Uplinks, Delivered, Duplicates, Rejected int
}

type pendingFrame struct {
	fcnt    uint32
	fport   uint8
	payload []byte
	firstAt float64
	copies  []Uplink
}

// New creates a server with the given provisioned devices.
func New(devices []Device) *Server {
	s := &Server{
		devices:      make(map[uint32]lorawan.Keys, len(devices)),
		lastFCnt:     make(map[uint32]uint32),
		seen:         make(map[uint32]bool),
		lastBest:     make(map[uint32]int),
		pending:      make(map[uint32]*pendingFrame),
		DedupWindowS: 0.2,
	}
	for _, d := range devices {
		s.devices[d.DevAddr] = d.Keys
	}
	return s
}

// SetRetention bounds the delivery backlog to the most recent cap entries
// (ring semantics) and registers a drain callback invoked with every
// delivery as it finalizes, so a long-running caller can stream
// deliveries out instead of accumulating them. cap 0 restores the
// unbounded default (simulation use); drain may be nil. The callback runs
// with the server lock held and must not call back into the Server.
func (s *Server) SetRetention(cap int, drain func(Delivery)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap < 0 {
		cap = 0
	}
	// Normalize any existing ring to arrival order before re-bounding.
	s.deliveries = append(s.deliveries[s.ringHead:], s.deliveries[:s.ringHead]...)
	s.ringHead = 0
	s.retainCap = cap
	s.drain = drain
	if cap > 0 && len(s.deliveries) > cap {
		s.deliveries = append([]Delivery(nil), s.deliveries[len(s.deliveries)-cap:]...)
	}
}

// HandleUplink ingests one gateway reception. Frames that fail MIC
// verification, belong to unknown devices, or replay an old counter are
// counted in Rejected. Copies of a frame already pending are merged; a
// same-counter copy arriving after the dedup window closed is counted as
// a late Duplicate.
func (s *Server) HandleUplink(up Uplink) error {
	if len(up.PHYPayload) < lorawan.FrameOverheadBytes {
		s.mu.Lock()
		s.Uplinks++
		s.Rejected++
		s.mu.Unlock()
		return fmt.Errorf("netserver: frame too short (%d bytes)", len(up.PHYPayload))
	}
	// DevAddr is at bytes 1..4; look the keys up before full decode.
	devAddr := uint32(up.PHYPayload[1]) | uint32(up.PHYPayload[2])<<8 |
		uint32(up.PHYPayload[3])<<16 | uint32(up.PHYPayload[4])<<24

	s.mu.Lock()
	defer s.mu.Unlock()
	s.Uplinks++
	keys, ok := s.devices[devAddr]
	if !ok {
		s.Rejected++
		return fmt.Errorf("netserver: unknown device %08x", devAddr)
	}
	f, err := lorawan.Decode(up.PHYPayload, keys, s.lastFCnt[devAddr]>>16)
	if err != nil {
		s.Rejected++
		return fmt.Errorf("netserver: %w", err)
	}

	// Flush a pending frame whose window has closed.
	if pf, ok := s.pending[devAddr]; ok {
		if f.FCnt != pf.fcnt || up.ReceivedAtS-pf.firstAt > s.DedupWindowS {
			s.finalizeLocked(devAddr, pf)
			delete(s.pending, devAddr)
		}
	}

	if pf, ok := s.pending[devAddr]; ok && pf.fcnt == f.FCnt {
		// Redundant gateway copy of the pending frame.
		pf.copies = append(pf.copies, up)
		s.Duplicates++
		return nil
	}

	// Replay protection: a finalized or pending counter must be fresh. A
	// copy of the *current* counter is not an attack — it is a gateway
	// copy that lost the race with the dedup window (or with a clock
	// flush) — so it counts as a late duplicate, not a reject.
	if s.seen[devAddr] && f.FCnt <= s.lastFCnt[devAddr] {
		if f.FCnt == s.lastFCnt[devAddr] {
			s.Duplicates++
			return nil
		}
		s.Rejected++
		return fmt.Errorf("netserver: replayed FCnt %d (last %d)", f.FCnt, s.lastFCnt[devAddr])
	}
	s.pending[devAddr] = &pendingFrame{
		fcnt:    f.FCnt,
		fport:   f.FPort,
		payload: f.Payload,
		firstAt: up.ReceivedAtS,
		copies:  []Uplink{up},
	}
	s.lastFCnt[devAddr] = f.FCnt
	s.seen[devAddr] = true
	return nil
}

// finalizeLocked turns a pending frame into a delivery. Callers hold mu.
func (s *Server) finalizeLocked(devAddr uint32, pf *pendingFrame) {
	sort.SliceStable(pf.copies, func(i, j int) bool {
		return pf.copies[i].SNRdB > pf.copies[j].SNRdB
	})
	if len(pf.copies) > 0 {
		s.lastBest[devAddr] = pf.copies[0].Gateway
	}
	d := Delivery{
		DevAddr:  devAddr,
		FCnt:     pf.fcnt,
		FPort:    pf.fport,
		Payload:  pf.payload,
		Gateways: pf.copies,
	}
	s.Delivered++
	if s.drain != nil {
		s.drain(d)
	}
	if s.retainCap > 0 && len(s.deliveries) >= s.retainCap {
		s.deliveries[s.ringHead] = d
		s.ringHead = (s.ringHead + 1) % s.retainCap
		return
	}
	s.deliveries = append(s.deliveries, d)
}

// Flush finalizes every pending frame (end of a simulation or batch).
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrs := make([]uint32, 0, len(s.pending))
	for a := range s.pending {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		s.finalizeLocked(a, s.pending[a])
		delete(s.pending, a)
	}
}

// FlushExpired finalizes pending frames whose dedup window has closed by
// nowS — the clock-driven flush a live server runs so a device's last
// frame does not linger until that device happens to send again. It
// returns the number of deliveries finalized.
func (s *Server) FlushExpired(nowS float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrs := make([]uint32, 0, len(s.pending))
	for a, pf := range s.pending {
		if nowS-pf.firstAt > s.DedupWindowS {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		s.finalizeLocked(a, s.pending[a])
		delete(s.pending, a)
	}
	return len(addrs)
}

// PendingCount reports how many frames are waiting for their dedup
// window to close.
func (s *Server) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Counters is a consistent snapshot of the server's accounting.
type Counters struct {
	// Uplinks counts every ingested gateway reception; Delivered the
	// finalized de-duplicated frames; Duplicates the merged or late
	// redundant copies; Rejected the verification/replay failures.
	Uplinks, Delivered, Duplicates, Rejected int
}

// Add accumulates other into c (for aggregating shard counters).
func (c *Counters) Add(other Counters) {
	c.Uplinks += other.Uplinks
	c.Delivered += other.Delivered
	c.Duplicates += other.Duplicates
	c.Rejected += other.Rejected
}

// Counters returns a consistent snapshot of the accounting counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Uplinks:    s.Uplinks,
		Delivered:  s.Delivered,
		Duplicates: s.Duplicates,
		Rejected:   s.Rejected,
	}
}

// Deliveries returns the retained finalized uplinks in arrival order
// (all of them by default; the most recent retention-cap entries when
// SetRetention bounds the backlog).
func (s *Server) Deliveries() []Delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Delivery, 0, len(s.deliveries))
	out = append(out, s.deliveries[s.ringHead:]...)
	out = append(out, s.deliveries[:s.ringHead]...)
	return out
}

// BestGateway returns the gateway that most recently delivered the
// device's traffic with the best SNR — the downlink routing choice.
func (s *Server) BestGateway(devAddr uint32) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gw, ok := s.lastBest[devAddr]
	return gw, ok
}
