package netserver

import (
	"bytes"
	"sync"
	"testing"

	"eflora/internal/lorawan"
)

func deviceFixture(addr uint32) Device {
	var k lorawan.Keys
	for i := range k.NwkSKey {
		k.NwkSKey[i] = byte(addr) + byte(i)
		k.AppSKey[i] = byte(addr) ^ byte(i*7)
	}
	return Device{DevAddr: addr, Keys: k}
}

func encode(t *testing.T, d Device, fcnt uint32, payload []byte) []byte {
	t.Helper()
	phy, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: d.DevAddr,
		FCnt: fcnt, FPort: 1, Payload: payload,
	}, d.Keys)
	if err != nil {
		t.Fatal(err)
	}
	return phy
}

func TestDeduplicatesGatewayCopies(t *testing.T) {
	dev := deviceFixture(0x100)
	s := New([]Device{dev})
	phy := encode(t, dev, 1, []byte("reading-1"))
	// Three gateways report the same frame within the window.
	for gw := 0; gw < 3; gw++ {
		if err := s.HandleUplink(Uplink{
			Gateway: gw, ReceivedAtS: 10 + float64(gw)*0.01,
			SNRdB: float64(gw), PHYPayload: phy,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	ds := s.Deliveries()
	if len(ds) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(ds))
	}
	if s.Duplicates != 2 {
		t.Errorf("duplicates = %d, want 2", s.Duplicates)
	}
	if len(ds[0].Gateways) != 3 {
		t.Fatalf("gateway copies = %d, want 3", len(ds[0].Gateways))
	}
	// Best SNR first: gateway 2 reported SNR 2.
	if ds[0].Gateways[0].Gateway != 2 {
		t.Errorf("best gateway = %d, want 2", ds[0].Gateways[0].Gateway)
	}
	if !bytes.Equal(ds[0].Payload, []byte("reading-1")) {
		t.Errorf("payload = %q", ds[0].Payload)
	}
}

func TestSeparateFramesDelivered(t *testing.T) {
	dev := deviceFixture(0x200)
	s := New([]Device{dev})
	for fcnt := uint32(1); fcnt <= 5; fcnt++ {
		phy := encode(t, dev, fcnt, []byte{byte(fcnt)})
		if err := s.HandleUplink(Uplink{Gateway: 0, ReceivedAtS: float64(fcnt) * 10, PHYPayload: phy}); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	ds := s.Deliveries()
	if len(ds) != 5 {
		t.Fatalf("deliveries = %d, want 5", len(ds))
	}
	for i, d := range ds {
		if d.FCnt != uint32(i+1) {
			t.Errorf("delivery %d FCnt = %d", i, d.FCnt)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	dev := deviceFixture(0x300)
	s := New([]Device{dev})
	phy5 := encode(t, dev, 5, []byte("x"))
	phy4 := encode(t, dev, 4, []byte("y"))
	if err := s.HandleUplink(Uplink{ReceivedAtS: 1, PHYPayload: phy5}); err != nil {
		t.Fatal(err)
	}
	// An older (or equal) counter arriving after the window is a replay.
	if err := s.HandleUplink(Uplink{ReceivedAtS: 10, PHYPayload: phy4}); err == nil {
		t.Error("replayed counter accepted")
	}
	if err := s.HandleUplink(Uplink{ReceivedAtS: 20, PHYPayload: phy5}); err == nil {
		t.Error("duplicate old frame accepted after window")
	}
	if s.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", s.Rejected)
	}
}

func TestUnknownDeviceAndBadMIC(t *testing.T) {
	dev := deviceFixture(0x400)
	stranger := deviceFixture(0x999)
	s := New([]Device{dev})
	if err := s.HandleUplink(Uplink{PHYPayload: encode(t, stranger, 1, []byte("?"))}); err == nil {
		t.Error("unknown device accepted")
	}
	// Known DevAddr but wrong keys -> MIC failure.
	evil := stranger
	evil.DevAddr = dev.DevAddr
	if err := s.HandleUplink(Uplink{PHYPayload: encode(t, evil, 1, []byte("!"))}); err == nil {
		t.Error("forged frame accepted")
	}
	if err := s.HandleUplink(Uplink{PHYPayload: []byte{1, 2}}); err == nil {
		t.Error("runt frame accepted")
	}
	if s.Rejected != 3 {
		t.Errorf("rejected = %d, want 3", s.Rejected)
	}
}

func TestLateCopyOutsideWindowNotMerged(t *testing.T) {
	dev := deviceFixture(0x500)
	s := New([]Device{dev})
	phy := encode(t, dev, 1, []byte("z"))
	if err := s.HandleUplink(Uplink{Gateway: 0, ReceivedAtS: 1, PHYPayload: phy}); err != nil {
		t.Fatal(err)
	}
	// Same frame, but far outside the dedup window: it flushes the
	// pending frame and is then rejected as a replay.
	if err := s.HandleUplink(Uplink{Gateway: 1, ReceivedAtS: 5, PHYPayload: phy}); err == nil {
		t.Error("stale duplicate accepted")
	}
	ds := s.Deliveries()
	if len(ds) != 1 || len(ds[0].Gateways) != 1 {
		t.Fatalf("deliveries = %+v", ds)
	}
}

func TestBestGateway(t *testing.T) {
	dev := deviceFixture(0x600)
	s := New([]Device{dev})
	if _, ok := s.BestGateway(dev.DevAddr); ok {
		t.Error("best gateway before any traffic")
	}
	phy := encode(t, dev, 1, []byte("a"))
	_ = s.HandleUplink(Uplink{Gateway: 4, SNRdB: -3, ReceivedAtS: 1, PHYPayload: phy})
	_ = s.HandleUplink(Uplink{Gateway: 2, SNRdB: 6, ReceivedAtS: 1.05, PHYPayload: phy})
	s.Flush()
	gw, ok := s.BestGateway(dev.DevAddr)
	if !ok || gw != 2 {
		t.Errorf("best gateway = (%d, %v), want (2, true)", gw, ok)
	}
}

func TestConcurrentForwarders(t *testing.T) {
	devs := make([]Device, 8)
	for i := range devs {
		devs[i] = deviceFixture(uint32(0x700 + i))
	}
	s := New(devs)
	var wg sync.WaitGroup
	for gw := 0; gw < 4; gw++ {
		wg.Add(1)
		go func(gw int) {
			defer wg.Done()
			for f := uint32(1); f <= 20; f++ {
				for _, d := range devs {
					phy, err := lorawan.Encode(lorawan.Frame{
						MType: lorawan.UnconfirmedDataUp, DevAddr: d.DevAddr,
						FCnt: f, FPort: 1, Payload: []byte{byte(f)},
					}, d.Keys)
					if err != nil {
						t.Error(err)
						return
					}
					// Errors (replays across goroutines) are expected;
					// the server must just stay consistent.
					_ = s.HandleUplink(Uplink{
						Gateway: gw, ReceivedAtS: float64(f) * 10, PHYPayload: phy,
					})
				}
			}
		}(gw)
	}
	wg.Wait()
	s.Flush()
	ds := s.Deliveries()
	// Each (device, fcnt) pair delivers at most once.
	seen := make(map[[2]uint32]bool)
	for _, d := range ds {
		key := [2]uint32{d.DevAddr, d.FCnt}
		if seen[key] {
			t.Fatalf("duplicate delivery %08x/%d", d.DevAddr, d.FCnt)
		}
		seen[key] = true
	}
}
