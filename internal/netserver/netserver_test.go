package netserver

import (
	"bytes"
	"sync"
	"testing"

	"eflora/internal/lorawan"
)

func deviceFixture(addr uint32) Device {
	var k lorawan.Keys
	for i := range k.NwkSKey {
		k.NwkSKey[i] = byte(addr) + byte(i)
		k.AppSKey[i] = byte(addr) ^ byte(i*7)
	}
	return Device{DevAddr: addr, Keys: k}
}

func encode(t *testing.T, d Device, fcnt uint32, payload []byte) []byte {
	t.Helper()
	phy, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: d.DevAddr,
		FCnt: fcnt, FPort: 1, Payload: payload,
	}, d.Keys)
	if err != nil {
		t.Fatal(err)
	}
	return phy
}

func TestDeduplicatesGatewayCopies(t *testing.T) {
	dev := deviceFixture(0x100)
	s := New([]Device{dev})
	phy := encode(t, dev, 1, []byte("reading-1"))
	// Three gateways report the same frame within the window.
	for gw := 0; gw < 3; gw++ {
		if err := s.HandleUplink(Uplink{
			Gateway: gw, ReceivedAtS: 10 + float64(gw)*0.01,
			SNRdB: float64(gw), PHYPayload: phy,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	ds := s.Deliveries()
	if len(ds) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(ds))
	}
	if s.Duplicates != 2 {
		t.Errorf("duplicates = %d, want 2", s.Duplicates)
	}
	if len(ds[0].Gateways) != 3 {
		t.Fatalf("gateway copies = %d, want 3", len(ds[0].Gateways))
	}
	// Best SNR first: gateway 2 reported SNR 2.
	if ds[0].Gateways[0].Gateway != 2 {
		t.Errorf("best gateway = %d, want 2", ds[0].Gateways[0].Gateway)
	}
	if !bytes.Equal(ds[0].Payload, []byte("reading-1")) {
		t.Errorf("payload = %q", ds[0].Payload)
	}
}

func TestSeparateFramesDelivered(t *testing.T) {
	dev := deviceFixture(0x200)
	s := New([]Device{dev})
	for fcnt := uint32(1); fcnt <= 5; fcnt++ {
		phy := encode(t, dev, fcnt, []byte{byte(fcnt)})
		if err := s.HandleUplink(Uplink{Gateway: 0, ReceivedAtS: float64(fcnt) * 10, PHYPayload: phy}); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	ds := s.Deliveries()
	if len(ds) != 5 {
		t.Fatalf("deliveries = %d, want 5", len(ds))
	}
	for i, d := range ds {
		if d.FCnt != uint32(i+1) {
			t.Errorf("delivery %d FCnt = %d", i, d.FCnt)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	dev := deviceFixture(0x300)
	s := New([]Device{dev})
	phy5 := encode(t, dev, 5, []byte("x"))
	phy4 := encode(t, dev, 4, []byte("y"))
	if err := s.HandleUplink(Uplink{ReceivedAtS: 1, PHYPayload: phy5}); err != nil {
		t.Fatal(err)
	}
	// A strictly older counter arriving after the window is a replay.
	if err := s.HandleUplink(Uplink{ReceivedAtS: 10, PHYPayload: phy4}); err == nil {
		t.Error("replayed counter accepted")
	}
	// The current counter arriving again is a late gateway copy, not an
	// attack: counted as a Duplicate and not an error.
	if err := s.HandleUplink(Uplink{ReceivedAtS: 20, PHYPayload: phy5}); err != nil {
		t.Errorf("late copy of current frame errored: %v", err)
	}
	if s.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Rejected)
	}
	if s.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", s.Duplicates)
	}
	s.Flush()
	if ds := s.Deliveries(); len(ds) != 1 {
		t.Errorf("deliveries = %d, want 1", len(ds))
	}
}

// Regression: a same-FCnt gateway copy that arrives after the dedup
// window closed used to trip the replay check (Rejected); it must count
// as a late Duplicate so dedup accounting is flush-timing invariant.
func TestLateCopyAfterWindowCountedAsDuplicate(t *testing.T) {
	dev := deviceFixture(0x310)
	s := New([]Device{dev})
	phy := encode(t, dev, 7, []byte("m"))
	if err := s.HandleUplink(Uplink{Gateway: 0, ReceivedAtS: 1, PHYPayload: phy}); err != nil {
		t.Fatal(err)
	}
	// Clock flush closes the window before the second gateway's copy
	// lands — the live-daemon sequence of events.
	if n := s.FlushExpired(2); n != 1 {
		t.Fatalf("FlushExpired = %d, want 1", n)
	}
	if err := s.HandleUplink(Uplink{Gateway: 1, ReceivedAtS: 2.1, PHYPayload: phy}); err != nil {
		t.Errorf("late copy errored: %v", err)
	}
	if s.Duplicates != 1 || s.Rejected != 0 {
		t.Errorf("duplicates/rejected = %d/%d, want 1/0", s.Duplicates, s.Rejected)
	}
	if s.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", s.Delivered)
	}
}

func TestUnknownDeviceAndBadMIC(t *testing.T) {
	dev := deviceFixture(0x400)
	stranger := deviceFixture(0x999)
	s := New([]Device{dev})
	if err := s.HandleUplink(Uplink{PHYPayload: encode(t, stranger, 1, []byte("?"))}); err == nil {
		t.Error("unknown device accepted")
	}
	// Known DevAddr but wrong keys -> MIC failure.
	evil := stranger
	evil.DevAddr = dev.DevAddr
	if err := s.HandleUplink(Uplink{PHYPayload: encode(t, evil, 1, []byte("!"))}); err == nil {
		t.Error("forged frame accepted")
	}
	if err := s.HandleUplink(Uplink{PHYPayload: []byte{1, 2}}); err == nil {
		t.Error("runt frame accepted")
	}
	if s.Rejected != 3 {
		t.Errorf("rejected = %d, want 3", s.Rejected)
	}
}

func TestLateCopyOutsideWindowNotMerged(t *testing.T) {
	dev := deviceFixture(0x500)
	s := New([]Device{dev})
	phy := encode(t, dev, 1, []byte("z"))
	if err := s.HandleUplink(Uplink{Gateway: 0, ReceivedAtS: 1, PHYPayload: phy}); err != nil {
		t.Fatal(err)
	}
	// Same frame, but far outside the dedup window: it flushes the
	// pending frame and is counted as a late duplicate, not merged into
	// the delivery.
	if err := s.HandleUplink(Uplink{Gateway: 1, ReceivedAtS: 5, PHYPayload: phy}); err != nil {
		t.Errorf("late duplicate errored: %v", err)
	}
	if s.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", s.Duplicates)
	}
	ds := s.Deliveries()
	if len(ds) != 1 || len(ds[0].Gateways) != 1 {
		t.Fatalf("deliveries = %+v", ds)
	}
}

func TestBestGateway(t *testing.T) {
	dev := deviceFixture(0x600)
	s := New([]Device{dev})
	if _, ok := s.BestGateway(dev.DevAddr); ok {
		t.Error("best gateway before any traffic")
	}
	phy := encode(t, dev, 1, []byte("a"))
	_ = s.HandleUplink(Uplink{Gateway: 4, SNRdB: -3, ReceivedAtS: 1, PHYPayload: phy})
	_ = s.HandleUplink(Uplink{Gateway: 2, SNRdB: 6, ReceivedAtS: 1.05, PHYPayload: phy})
	s.Flush()
	gw, ok := s.BestGateway(dev.DevAddr)
	if !ok || gw != 2 {
		t.Errorf("best gateway = (%d, %v), want (2, true)", gw, ok)
	}
}

func TestFlushExpired(t *testing.T) {
	devA, devB := deviceFixture(0x610), deviceFixture(0x611)
	s := New([]Device{devA, devB})
	if err := s.HandleUplink(Uplink{ReceivedAtS: 1.0, PHYPayload: encode(t, devA, 1, []byte("a"))}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleUplink(Uplink{ReceivedAtS: 1.15, PHYPayload: encode(t, devB, 1, []byte("b"))}); err != nil {
		t.Fatal(err)
	}
	// At t=1.25 only devA's window (opened at 1.0, 0.2 s) has expired.
	if n := s.FlushExpired(1.25); n != 1 {
		t.Fatalf("FlushExpired(1.25) = %d, want 1", n)
	}
	if ds := s.Deliveries(); len(ds) != 1 || ds[0].DevAddr != devA.DevAddr {
		t.Fatalf("deliveries after first flush = %+v", ds)
	}
	if got := s.PendingCount(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if n := s.FlushExpired(2.0); n != 1 {
		t.Fatalf("FlushExpired(2.0) = %d, want 1", n)
	}
	if ds := s.Deliveries(); len(ds) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(ds))
	}
}

func TestRetentionRingAndDrain(t *testing.T) {
	dev := deviceFixture(0x620)
	s := New([]Device{dev})
	var drained []uint32
	s.SetRetention(3, func(d Delivery) { drained = append(drained, d.FCnt) })
	for fcnt := uint32(1); fcnt <= 8; fcnt++ {
		phy := encode(t, dev, fcnt, []byte{byte(fcnt)})
		if err := s.HandleUplink(Uplink{ReceivedAtS: float64(fcnt) * 10, PHYPayload: phy}); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	// Every delivery streamed out through the drain...
	if len(drained) != 8 {
		t.Fatalf("drained = %d, want 8", len(drained))
	}
	for i, f := range drained {
		if f != uint32(i+1) {
			t.Errorf("drained[%d] = %d, want %d", i, f, i+1)
		}
	}
	// ...while the backlog holds only the most recent 3, oldest first.
	ds := s.Deliveries()
	if len(ds) != 3 {
		t.Fatalf("retained = %d, want 3", len(ds))
	}
	for i, want := range []uint32{6, 7, 8} {
		if ds[i].FCnt != want {
			t.Errorf("retained[%d].FCnt = %d, want %d", i, ds[i].FCnt, want)
		}
	}
	if s.Delivered != 8 {
		t.Errorf("Delivered = %d, want 8", s.Delivered)
	}
	c := s.Counters()
	if c.Uplinks != 8 || c.Delivered != 8 || c.Duplicates != 0 || c.Rejected != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestBestGatewayAcrossDeliveries(t *testing.T) {
	dev := deviceFixture(0x630)
	s := New([]Device{dev})
	phy1 := encode(t, dev, 1, []byte("a"))
	_ = s.HandleUplink(Uplink{Gateway: 4, SNRdB: 6, ReceivedAtS: 1, PHYPayload: phy1})
	phy2 := encode(t, dev, 2, []byte("b"))
	_ = s.HandleUplink(Uplink{Gateway: 1, SNRdB: -2, ReceivedAtS: 10, PHYPayload: phy2})
	_ = s.HandleUplink(Uplink{Gateway: 3, SNRdB: 0.5, ReceivedAtS: 10.05, PHYPayload: phy2})
	s.Flush()
	// The most recent delivery's best copy wins, even though an earlier
	// delivery had a better absolute SNR.
	gw, ok := s.BestGateway(dev.DevAddr)
	if !ok || gw != 3 {
		t.Errorf("best gateway = (%d, %v), want (3, true)", gw, ok)
	}
}

func TestConcurrentForwarders(t *testing.T) {
	devs := make([]Device, 8)
	for i := range devs {
		devs[i] = deviceFixture(uint32(0x700 + i))
	}
	s := New(devs)
	var wg sync.WaitGroup
	for gw := 0; gw < 4; gw++ {
		wg.Add(1)
		go func(gw int) {
			defer wg.Done()
			for f := uint32(1); f <= 20; f++ {
				for _, d := range devs {
					phy, err := lorawan.Encode(lorawan.Frame{
						MType: lorawan.UnconfirmedDataUp, DevAddr: d.DevAddr,
						FCnt: f, FPort: 1, Payload: []byte{byte(f)},
					}, d.Keys)
					if err != nil {
						t.Error(err)
						return
					}
					// Errors (replays across goroutines) are expected;
					// the server must just stay consistent.
					_ = s.HandleUplink(Uplink{
						Gateway: gw, ReceivedAtS: float64(f) * 10, PHYPayload: phy,
					})
				}
			}
		}(gw)
	}
	wg.Wait()
	s.Flush()
	ds := s.Deliveries()
	// Each (device, fcnt) pair delivers at most once.
	seen := make(map[[2]uint32]bool)
	for _, d := range ds {
		key := [2]uint32{d.DevAddr, d.FCnt}
		if seen[key] {
			t.Fatalf("duplicate delivery %08x/%d", d.DevAddr, d.FCnt)
		}
		seen[key] = true
	}
}
