package netserver

import (
	"fmt"
	"sort"
)

// State is a Server's durable state at a consistent cut: everything the
// dedup/replay-protection pipeline needs to resume exactly where it
// stopped. Provisioned device keys are NOT part of the state — they are
// derived from the scenario at construction time — so importing a State
// into a freshly provisioned Server of the same deployment reproduces
// the exporting server bit-for-bit.
//
// All slices are sorted by DevAddr, so two exports of identical servers
// serialize identically regardless of map iteration order.
type State struct {
	// Counters is the accounting at the cut.
	Counters Counters
	// Devices holds the per-device replay-protection state.
	Devices []DeviceState
	// Pending holds the open dedup windows (frames whose window had not
	// closed at the cut).
	Pending []PendingState
}

// DeviceState is one device's replay-protection and routing state.
type DeviceState struct {
	DevAddr uint32
	// LastFCnt is the highest accepted counter; Seen whether the device
	// has ever been heard.
	LastFCnt uint32
	Seen     bool
	// BestGateway is the device's last best-SNR gateway; HasBest whether
	// one has been recorded.
	BestGateway int
	HasBest     bool
}

// PendingState is one open dedup window.
type PendingState struct {
	DevAddr  uint32
	FCnt     uint32
	FPort    uint8
	Payload  []byte
	FirstAtS float64
	Copies   []Uplink
}

// ExportState snapshots the server's durable state. The returned State
// shares no memory with the server.
func (s *Server) ExportState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		Counters: Counters{
			Uplinks:    s.Uplinks,
			Delivered:  s.Delivered,
			Duplicates: s.Duplicates,
			Rejected:   s.Rejected,
		},
	}
	// The union of every map's keys, deduplicated via lastFCnt∪seen∪
	// lastBest: a device can appear in any subset.
	addrs := make(map[uint32]bool, len(s.lastFCnt))
	for a := range s.lastFCnt {
		addrs[a] = true
	}
	for a := range s.seen {
		addrs[a] = true
	}
	for a := range s.lastBest {
		addrs[a] = true
	}
	sorted := make([]uint32, 0, len(addrs))
	for a := range addrs {
		sorted = append(sorted, a)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.Devices = make([]DeviceState, 0, len(sorted))
	for _, a := range sorted {
		gw, hasBest := s.lastBest[a]
		st.Devices = append(st.Devices, DeviceState{
			DevAddr:     a,
			LastFCnt:    s.lastFCnt[a],
			Seen:        s.seen[a],
			BestGateway: gw,
			HasBest:     hasBest,
		})
	}
	pendAddrs := make([]uint32, 0, len(s.pending))
	for a := range s.pending {
		pendAddrs = append(pendAddrs, a)
	}
	sort.Slice(pendAddrs, func(i, j int) bool { return pendAddrs[i] < pendAddrs[j] })
	st.Pending = make([]PendingState, 0, len(pendAddrs))
	for _, a := range pendAddrs {
		pf := s.pending[a]
		ps := PendingState{
			DevAddr:  a,
			FCnt:     pf.fcnt,
			FPort:    pf.fport,
			Payload:  append([]byte(nil), pf.payload...),
			FirstAtS: pf.firstAt,
			Copies:   make([]Uplink, len(pf.copies)),
		}
		for i, up := range pf.copies {
			up.PHYPayload = append([]byte(nil), up.PHYPayload...)
			ps.Copies[i] = up
		}
		st.Pending = append(st.Pending, ps)
	}
	return st
}

// ImportState replaces the server's durable state with st (a previous
// ExportState). The provisioned device set and retention/drain wiring are
// untouched; the delivery backlog is cleared — recovered deliveries were
// already drained before the exporting cut.
func (s *Server) ImportState(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range st.Pending {
		if _, ok := s.devices[p.DevAddr]; !ok {
			return fmt.Errorf("netserver: import: pending frame for unprovisioned device %08x", p.DevAddr)
		}
	}
	s.Uplinks = st.Counters.Uplinks
	s.Delivered = st.Counters.Delivered
	s.Duplicates = st.Counters.Duplicates
	s.Rejected = st.Counters.Rejected
	s.lastFCnt = make(map[uint32]uint32, len(st.Devices))
	s.seen = make(map[uint32]bool, len(st.Devices))
	s.lastBest = make(map[uint32]int, len(st.Devices))
	for _, d := range st.Devices {
		if d.LastFCnt != 0 || d.Seen {
			s.lastFCnt[d.DevAddr] = d.LastFCnt
		}
		if d.Seen {
			s.seen[d.DevAddr] = true
		}
		if d.HasBest {
			s.lastBest[d.DevAddr] = d.BestGateway
		}
	}
	s.pending = make(map[uint32]*pendingFrame, len(st.Pending))
	for _, p := range st.Pending {
		pf := &pendingFrame{
			fcnt:    p.FCnt,
			fport:   p.FPort,
			payload: append([]byte(nil), p.Payload...),
			firstAt: p.FirstAtS,
			copies:  make([]Uplink, len(p.Copies)),
		}
		for i, up := range p.Copies {
			up.PHYPayload = append([]byte(nil), up.PHYPayload...)
			pf.copies[i] = up
		}
		s.pending[p.DevAddr] = pf
	}
	s.deliveries = nil
	s.ringHead = 0
	return nil
}
