package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"eflora/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Sum != 10 {
		t.Errorf("Summarize = %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeIgnoresNaN(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.N != 2 || s.Mean != 2 {
		t.Errorf("Summarize with NaN = %+v", s)
	}
}

func TestMinMean(t *testing.T) {
	if got := Min([]float64{3, 1, 2}); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %v, want +Inf", got)
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestJainIndexExtremes(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares Jain = %v, want 1", got)
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single-share Jain = %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("Jain(nil) = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("Jain(zeros) = %v", got)
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 1 + int(nRaw)%32
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		j := JainIndex(xs)
		return j >= 1/float64(n)-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{5, 5, 5, 5}); math.Abs(got) > 1e-12 {
		t.Errorf("equal shares Gini = %v, want 0", got)
	}
	// One member takes everything: Gini = (n-1)/n.
	if got := Gini([]float64{0, 0, 0, 8}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("single-share Gini = %v, want 0.75", got)
	}
	if got := Gini(nil); got != 0 {
		t.Errorf("Gini(nil) = %v", got)
	}
	if got := Gini([]float64{0, 0}); got != 0 {
		t.Errorf("Gini(zeros) = %v", got)
	}
	if got := Gini([]float64{-1, 2}); !math.IsNaN(got) {
		t.Errorf("Gini with negative input = %v, want NaN", got)
	}
	// Classic anchor: {1, 2, 3, 4} has Gini 0.25.
	if got := Gini([]float64{1, 2, 3, 4}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Gini(1..4) = %v, want 0.25", got)
	}
}

func TestGiniBounds(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 10
		}
		g := Gini(xs)
		if g < -1e-12 || g > 1 {
			t.Fatalf("Gini = %v outside [0, 1] for %v", g, xs)
		}
	}
}

func TestGiniDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Gini(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Gini mutated its input: %v", xs)
	}
}

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestECDFAtEmpty(t *testing.T) {
	if got := NewECDF(nil).At(1); got != 0 {
		t.Errorf("empty ECDF At = %v", got)
	}
}

func TestECDFMonotone(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	e := NewECDF(xs)
	prev := 0.0
	for x := -4.0; x <= 4; x += 0.05 {
		p := e.At(x)
		if p < prev {
			t.Fatalf("ECDF decreasing at %v", x)
		}
		prev = p
	}
}

func TestQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{1, 50},
		{-0.1, 10},
		{1.5, 50},
	}
	for _, tt := range tests {
		if got := e.Quantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := NewECDF(nil).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %v, want NaN", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	e := NewECDF([]float64{0, 10})
	if got := e.Quantile(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
}

func TestECDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	e := NewECDF(xs)
	px, pp := e.Points(10)
	if len(px) != 10 || len(pp) != 10 {
		t.Fatalf("Points lengths = %d, %d", len(px), len(pp))
	}
	if !sort.Float64sAreSorted(px) || !sort.Float64sAreSorted(pp) {
		t.Error("Points should be sorted")
	}
	if pp[9] != 1 {
		t.Errorf("last CDF point = %v, want 1", pp[9])
	}
	if gx, gp := e.Points(0); gx != nil || gp != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if got := Percentile(xs, 0.5); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1.5, 2.5, 9.9, -5, 20}, 0, 10, 10)
	if len(h.Counts) != 10 {
		t.Fatalf("bins = %d", len(h.Counts))
	}
	// -5 clamps into bin 0, 20 clamps into bin 9.
	if h.Counts[0] != 3 { // 0, 0.5, -5
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.9, 20
		t.Errorf("bin 9 = %d, want 2", h.Counts[9])
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 7 {
		t.Errorf("total = %d, want 7", total)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := NewHistogram([]float64{1}, 0, 10, 0); h.Counts != nil {
		t.Error("nbins=0 should have nil counts")
	}
	if h := NewHistogram([]float64{1}, 5, 5, 3); h.Counts != nil {
		t.Error("degenerate range should have nil counts")
	}
}
