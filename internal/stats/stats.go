// Package stats provides the descriptive statistics the experiments
// report: summaries, empirical CDFs, quantiles, Jain's fairness index and
// histogram binning.
package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                   int
	Min, Max, Mean, Std float64
	Sum                 float64
}

// Summarize computes a Summary of xs. NaN values are ignored; an empty (or
// all-NaN) input yields a zero-value Summary with N == 0.
func Summarize(xs []float64) Summary {
	var s Summary
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		s.N++
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if s.N == 0 {
		return Summary{}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

// Min returns the smallest value in xs, or +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// JainIndex computes Jain's fairness index (Σx)² / (n·Σx²), which is 1 for
// perfectly equal allocations and 1/n for a single non-zero share. It
// returns 0 for empty input or all-zero samples.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Gini computes the Gini coefficient of a non-negative sample: 0 for
// perfectly equal shares, approaching 1 as one member takes everything.
// It returns 0 for empty or all-zero input and NaN if any value is
// negative.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if s[0] < 0 {
		return math.NaN()
	}
	var cum, total float64
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	nf := float64(n)
	return (2*cum)/(nf*total) - (nf+1)/nf
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied; the input is not mutated).
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P{X <= x}.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) by linear interpolation
// between closest ranks. It returns NaN for empty input.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// Points returns up to k evenly spaced (x, P{X<=x}) pairs suitable for
// plotting the CDF curve. Fewer points are returned for small samples.
func (e *ECDF) Points(k int) (xs, ps []float64) {
	n := len(e.sorted)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	xs = make([]float64, k)
	ps = make([]float64, k)
	for i := 0; i < k; i++ {
		idx := (i + 1) * n / k
		if idx > n {
			idx = n
		}
		xs[i] = e.sorted[idx-1]
		ps[i] = float64(idx) / float64(n)
	}
	return xs, ps
}

// Percentile is shorthand for building an ECDF and taking one quantile.
func Percentile(xs []float64, q float64) float64 {
	return NewECDF(xs).Quantile(q)
}

// Histogram bins xs into nbins equal-width bins spanning [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with nbins bins. Values outside
// [min, max] are clamped into the boundary bins. It returns an empty
// histogram when nbins <= 0 or the range is degenerate.
func NewHistogram(xs []float64, min, max float64, nbins int) Histogram {
	h := Histogram{Min: min, Max: max}
	if nbins <= 0 || max <= min {
		return h
	}
	h.Counts = make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		h.Counts[i]++
	}
	return h
}
