package downlink

import (
	"fmt"
	"math"

	"eflora/internal/engine"
	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
)

// parseCodr maps a packet-forwarder coding-rate string ("4/5".."4/8")
// onto the codec's CodingRate.
func parseCodr(codr string) (lora.CodingRate, error) {
	if len(codr) == 3 && codr[0] == '4' && codr[1] == '/' && codr[2] >= '5' && codr[2] <= '8' {
		return lora.CodingRate(codr[2] - '0'), nil
	}
	return 0, fmt.Errorf("downlink: bad coding rate %q", codr)
}

// GatewaySim is the replay load generator's model of a packet
// forwarder's transmit path: it judges a PULL_RESP the way a real
// concentrator does (schedulability, frequency) and registers the
// transmission as a half-duplex ACK window on the reception engine, so
// uplinks arriving during the downlink are blocked.
type GatewaySim struct {
	// Eng is the gateway's reception engine (Config.HalfDuplex set).
	Eng *engine.Gateway
	// ValidFreqMHz lists the transmit frequencies the gateway accepts
	// (uplink channels plus the RX2 frequency). Empty accepts any.
	ValidFreqMHz []float64
	// MaxAheadS bounds how far in the future a tmst may schedule
	// (reference forwarder: ~15 s); 0 selects 15.
	MaxAheadS float64
}

// Transmit judges one PULL_RESP at simulation time nowS, with gateway
// tmst 0 anchored at simulation time 0. On acceptance it blocks the
// engine for the transmission's airtime and returns the TX_ACK error
// NONE plus the on-air interval; otherwise it returns the forwarder's
// error string.
func (g *GatewaySim) Transmit(tx *ingest.TXPK, nowS float64) (startS, endS float64, errStr string) {
	startS = float64(tx.Tmst) / 1e6
	maxAhead := g.MaxAheadS
	if maxAhead <= 0 {
		maxAhead = 15
	}
	if startS < nowS {
		return startS, startS, ingest.TxErrTooLate
	}
	if startS > nowS+maxAhead {
		return startS, startS, ingest.TxErrTooEarly
	}
	if len(g.ValidFreqMHz) > 0 {
		ok := false
		for _, f := range g.ValidFreqMHz {
			if math.Abs(f-tx.Freq) < 1e-4 {
				ok = true
				break
			}
		}
		if !ok {
			return startS, startS, ingest.TxErrTxFreq
		}
	}
	sf, bwHz, err := ingest.ParseDatr(tx.Datr)
	if err != nil {
		return startS, startS, ingest.TxErrTxFreq
	}
	cr, err := parseCodr(tx.Codr)
	if err != nil {
		return startS, startS, ingest.TxErrTxFreq
	}
	phy, err := tx.Payload()
	if err != nil {
		return startS, startS, ingest.TxErrTxFreq
	}
	endS = startS + lora.TimeOnAir(len(phy), sf, bwHz, cr)
	if g.Eng != nil {
		g.Eng.AddAckWindow(startS, endS)
	}
	return startS, endS, ingest.TxErrNone
}

// DeviceSim is the replay load generator's model of a Class-A end
// device: after each uplink it opens RX1 (uplink channel/data rate) and
// RX2 (fixed channel), and applies a LinkADRReq only when a downlink
// actually lands inside one of those windows.
type DeviceSim struct {
	DevAddr uint32
	Keys    lorawan.Keys
	Plan    lora.Plan

	// Receive-window parameters (mirror the scheduler's Config).
	RX1DelayS, RX2DelayS float64
	RX2FreqMHz           float64
	RX2Datr              string
	// ToleranceS is the clock slack for matching a transmission onto a
	// window open time.
	ToleranceS float64

	// Last-uplink context the windows are timed against.
	LastUplinkEndS float64
	UplinkFreqMHz  float64
	UplinkDatr     string

	// Applied assignment (set by a landed LinkADRReq).
	SF      lora.SF
	TPdBm   float64
	Channel int
	// AppliedAtS records when the last command landed; AppliedCount how
	// many landed in total.
	AppliedAtS   float64
	AppliedCount int

	fCntDown uint32
}

// windowMatch reports which RX window (1 or 2) a transmission starting
// at txStartS on the given channel parameters falls into, or 0.
func (d *DeviceSim) windowMatch(txStartS, freqMHz float64, datr string) int {
	tol := d.ToleranceS
	if tol <= 0 {
		tol = 0.02
	}
	rx1 := d.LastUplinkEndS + d.RX1DelayS
	if math.Abs(txStartS-rx1) <= tol && math.Abs(freqMHz-d.UplinkFreqMHz) < 1e-4 && datr == d.UplinkDatr {
		return 1
	}
	rx2 := d.LastUplinkEndS + d.RX2DelayS
	if math.Abs(txStartS-rx2) <= tol && math.Abs(freqMHz-d.RX2FreqMHz) < 1e-4 && datr == d.RX2Datr {
		return 2
	}
	return 0
}

// Receive offers a transmitted downlink to the device. It returns the
// matched window (0 when the radio was not listening — wrong time,
// frequency or data rate — in which case the frame is silently lost,
// exactly like the real air interface) and an error for frames that
// reached the radio but failed to verify or parse.
func (d *DeviceSim) Receive(tx *ingest.TXPK, txStartS float64) (int, error) {
	w := d.windowMatch(txStartS, tx.Freq, tx.Datr)
	if w == 0 {
		return 0, nil
	}
	phy, err := tx.Payload()
	if err != nil {
		return w, fmt.Errorf("downlink: device %08x: %w", d.DevAddr, err)
	}
	f, err := lorawan.DecodeDownlink(phy, d.Keys, d.fCntDown>>16)
	if err != nil {
		return w, fmt.Errorf("downlink: device %08x: %w", d.DevAddr, err)
	}
	if f.DevAddr != d.DevAddr {
		return 0, nil // addressed to someone else; radio drops it
	}
	if f.FCnt < d.fCntDown {
		return w, fmt.Errorf("downlink: device %08x: replayed FCntDown %d", d.DevAddr, f.FCnt)
	}
	d.fCntDown = f.FCnt + 1
	if f.FPort != 0 {
		return w, nil // application downlink: accepted, nothing to apply
	}
	cmd, err := lorawan.ParseLinkADRReq(f.Payload)
	if err != nil {
		return w, fmt.Errorf("downlink: device %08x: %w", d.DevAddr, err)
	}
	sf, err := lorawan.SFForDataRate(cmd.DataRate)
	if err != nil {
		return w, fmt.Errorf("downlink: device %08x: %w", d.DevAddr, err)
	}
	tp, ok := d.Plan.TxPowerForIndex(int(cmd.TXPower))
	if !ok {
		return w, fmt.Errorf("downlink: device %08x: bad TXPower index %d", d.DevAddr, cmd.TXPower)
	}
	if cmd.Channel >= d.Plan.NumChannels() {
		return w, fmt.Errorf("downlink: device %08x: channel %d outside plan", d.DevAddr, cmd.Channel)
	}
	d.SF = sf
	d.TPdBm = tp
	d.Channel = cmd.Channel
	d.AppliedAtS = txStartS
	d.AppliedCount++
	return w, nil
}
