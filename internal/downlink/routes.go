// Package downlink implements the server→gateway→device command path
// that closes EF-LoRa's re-allocation loop: a route table mapping gateway
// EUIs to their last-seen PULL_DATA source addresses, a Class-A RX1/RX2
// window scheduler that turns reassignments into PULL_RESP datagrams, and
// the simulated gateway/device endpoints the replay load generator uses
// to prove a command actually landed.
package downlink

import (
	"net"
	"sync"
)

// DefaultRouteTTLS is how long a PULL_DATA keeps a gateway's downlink
// route alive. The reference packet forwarder sends a keepalive every
// 5–10 s, so a minute of silence means the path is dead.
const DefaultRouteTTLS = 60

type route struct {
	addr      *net.UDPAddr
	lastSeenS float64
}

// Routes maps gateway EUIs to the UDP source address of their most
// recent PULL_DATA — the only address a PULL_RESP can be sent to (the
// forwarder's downlink socket sits behind the same NAT binding). Safe for
// concurrent use.
type Routes struct {
	mu   sync.Mutex
	ttlS float64
	m    map[[8]byte]route
}

// NewRoutes creates a route table. ttlS <= 0 selects DefaultRouteTTLS.
func NewRoutes(ttlS float64) *Routes {
	if ttlS <= 0 {
		ttlS = DefaultRouteTTLS
	}
	return &Routes{ttlS: ttlS, m: make(map[[8]byte]route)}
}

// Update records the gateway's downlink address from a PULL_DATA.
func (r *Routes) Update(eui [8]byte, addr *net.UDPAddr, nowS float64) {
	if addr == nil {
		return
	}
	r.mu.Lock()
	r.m[eui] = route{addr: addr, lastSeenS: nowS}
	r.mu.Unlock()
}

// Lookup returns the gateway's downlink address, if a live route exists.
func (r *Routes) Lookup(eui [8]byte) (*net.UDPAddr, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.m[eui]
	if !ok {
		return nil, false
	}
	return rt.addr, true
}

// Evict drops routes whose last PULL_DATA is older than the TTL and
// returns how many were dropped — run from the daemon's periodic tick so
// downlinks never target a dead address.
func (r *Routes) Evict(nowS float64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for eui, rt := range r.m {
		if nowS-rt.lastSeenS > r.ttlS {
			delete(r.m, eui)
			n++
		}
	}
	return n
}

// Len reports the number of live routes.
func (r *Routes) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}
