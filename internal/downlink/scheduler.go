package downlink

import (
	"fmt"
	"sort"
	"sync"

	"eflora/internal/ingest"
	"eflora/internal/lora"
)

// Defaults for the Class-A receive windows (LoRaWAN 1.0 EU868 regional
// parameters): RX1 opens RX1DelayS after the uplink ends on the uplink's
// own frequency and data rate; RX2 opens one second later on a fixed
// channel at the most robust data rate.
const (
	DefaultRX1DelayS   = 1.0
	DefaultRX2FreqMHz  = 869.525
	DefaultRX2Datr     = "SF12BW125"
	DefaultPowerDBm    = 14.0
	DefaultAckTimeoutS = 5.0
	// DefaultDutyCycle is the 10% ETSI limit of the 869.4–869.65 MHz
	// sub-band the RX2 channel sits in; uplink-band RX1 responses share
	// the same budget model per frequency.
	DefaultDutyCycle = 0.1
)

// Config parameterizes the scheduler. Zero values select the defaults
// above; RX2DelayS defaults to RX1DelayS+1 per the LoRaWAN spec.
type Config struct {
	RX1DelayS   float64
	RX2DelayS   float64
	RX2FreqMHz  float64
	RX2Datr     string
	PowerDBm    float64
	CodingRate  lora.CodingRate
	AckTimeoutS float64
	// DutyCycle bounds the transmitter's share of airtime per downlink
	// frequency using the ETSI off-period rule (Toff = ToA/DC − ToA).
	DutyCycle float64
}

func (c *Config) setDefaults() {
	if c.RX1DelayS <= 0 {
		c.RX1DelayS = DefaultRX1DelayS
	}
	if c.RX2DelayS <= 0 {
		c.RX2DelayS = c.RX1DelayS + 1
	}
	if c.RX2FreqMHz <= 0 {
		c.RX2FreqMHz = DefaultRX2FreqMHz
	}
	if c.RX2Datr == "" {
		c.RX2Datr = DefaultRX2Datr
	}
	if c.PowerDBm == 0 {
		c.PowerDBm = DefaultPowerDBm
	}
	if !c.CodingRate.Valid() {
		c.CodingRate = lora.CR45
	}
	if c.AckTimeoutS <= 0 {
		c.AckTimeoutS = DefaultAckTimeoutS
	}
	if c.DutyCycle <= 0 || c.DutyCycle > 1 {
		c.DutyCycle = DefaultDutyCycle
	}
}

// Uplink is the reception context a downlink is timed against: the best
// gateway that heard the device's latest frame and the radio parameters
// of that uplink.
type Uplink struct {
	DevAddr uint32
	// Gateway is the serving gateway's index; EUI its forwarder identity.
	Gateway int
	EUI     [8]byte
	// Tmst is the gateway's internal microsecond counter at reception —
	// the time base PULL_RESP scheduling uses.
	Tmst uint64
	// FreqMHz and Datr are the uplink channel parameters RX1 mirrors.
	FreqMHz float64
	Datr    string
	// AtS is the server-relative reception time in seconds.
	AtS float64
}

// Frame is one scheduled PULL_RESP, ready to send to a gateway.
type Frame struct {
	Token   uint16
	Gateway int
	EUI     [8]byte
	DevAddr uint32
	// Window is 1 (RX1) or 2 (RX2).
	Window int
	TXPK   ingest.TXPK
	// Datagram is the encoded PULL_RESP ready for the gateway's socket.
	Datagram []byte
}

// Counters is a snapshot of the scheduler's accounting.
type Counters struct {
	// Queued counts commands accepted for delivery; Sent the PULL_RESP
	// frames emitted (retries included); Acked/Failed the terminal
	// outcomes; Retried the RX2 second attempts after a TX_ACK error;
	// Expired the sends with no TX_ACK within the timeout; NoRoute the
	// frames dropped for lack of a live gateway route; DutyBlocked the
	// window attempts skipped by the duty-cycle budget.
	Queued, Sent, Acked, Failed, Retried, Expired, NoRoute, DutyBlocked int
}

// AckErrorCount is one gateway's tally of a TX_ACK outcome.
type AckErrorCount struct {
	EUI   [8]byte
	Error string
	Count int
}

type pendingTx struct {
	devAddr uint32
	window  int
	phy     []byte
	up      Uplink
	sentAtS float64
}

// Scheduler turns queued MAC commands into Class-A downlink frames. A
// command enqueued for a device rides the device's most recent uplink if
// an RX window is still reachable, and otherwise waits for the next
// uplink. Safe for concurrent use.
type Scheduler struct {
	mu  sync.Mutex
	cfg Config
	// lastUp tracks each device's latest uplink; queued the encoded PHY
	// payload awaiting a window; pending the sent frames awaiting TX_ACK.
	lastUp  map[uint32]Uplink
	queued  map[uint32][]byte
	pending map[uint16]*pendingTx
	// nextFreeS is the earliest permitted transmit time per downlink
	// frequency (keyed in kHz), per the ETSI off-period rule.
	nextFreeS map[int]float64
	ackErrs   map[[8]byte]map[string]int
	nextToken uint16
	c         Counters
}

// NewScheduler creates a scheduler; zero Config fields take defaults.
func NewScheduler(cfg Config) *Scheduler {
	cfg.setDefaults()
	return &Scheduler{
		cfg:       cfg,
		lastUp:    make(map[uint32]Uplink),
		queued:    make(map[uint32][]byte),
		pending:   make(map[uint16]*pendingTx),
		nextFreeS: make(map[int]float64),
		ackErrs:   make(map[[8]byte]map[string]int),
	}
}

// Config returns the effective configuration after defaulting.
func (s *Scheduler) Config() Config { return s.cfg }

// ObserveUplink records a device's latest uplink. If a command is queued
// for the device, it is scheduled into this uplink's RX window and the
// frame to transmit is returned.
func (s *Scheduler) ObserveUplink(up Uplink, nowS float64) *Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastUp[up.DevAddr] = up
	return s.tryEmitLocked(up.DevAddr, nowS)
}

// Enqueue accepts an encoded downlink PHY payload for a device. If the
// device's last uplink still has a reachable RX window the frame to
// transmit is returned immediately; otherwise the command waits for the
// next uplink (ObserveUplink will emit it).
func (s *Scheduler) Enqueue(devAddr uint32, phy []byte, nowS float64) *Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queued[devAddr] = phy
	s.c.Queued++
	return s.tryEmitLocked(devAddr, nowS)
}

// QueuedCount reports commands still waiting for an RX window.
func (s *Scheduler) QueuedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queued)
}

// PendingCount reports sent frames awaiting their TX_ACK.
func (s *Scheduler) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// tryEmitLocked schedules the queued command of devAddr, if any, into
// the first reachable RX window of its last uplink.
func (s *Scheduler) tryEmitLocked(devAddr uint32, nowS float64) *Frame {
	phy, ok := s.queued[devAddr]
	if !ok {
		return nil
	}
	up, ok := s.lastUp[devAddr]
	if !ok {
		return nil
	}
	// RX1 mirrors the uplink's channel; RX2 uses the fixed parameters.
	// A window is usable while the server can still get the PULL_RESP to
	// the gateway ahead of it, i.e. now precedes the window open time.
	for _, w := range [2]struct {
		window  int
		delayS  float64
		freqMHz float64
		datr    string
	}{
		{1, s.cfg.RX1DelayS, up.FreqMHz, up.Datr},
		{2, s.cfg.RX2DelayS, s.cfg.RX2FreqMHz, s.cfg.RX2Datr},
	} {
		openS := up.AtS + w.delayS
		if nowS >= openS {
			continue // window already open or past: too late to schedule
		}
		f, err := s.emitLocked(devAddr, up, phy, w.window, w.delayS, w.freqMHz, w.datr, openS)
		if err != nil {
			continue
		}
		delete(s.queued, devAddr)
		return f
	}
	return nil
}

// emitLocked builds and accounts one PULL_RESP for the given window, or
// reports why the window cannot be used (duty cycle, bad datr).
func (s *Scheduler) emitLocked(devAddr uint32, up Uplink, phy []byte, window int, delayS, freqMHz float64, datr string, sendAtS float64) (*Frame, error) {
	sf, bwHz, err := ingest.ParseDatr(datr)
	if err != nil {
		return nil, err
	}
	toaS := lora.TimeOnAir(len(phy), sf, bwHz, s.cfg.CodingRate)
	freqKHz := int(freqMHz*1000 + 0.5)
	if sendAtS < s.nextFreeS[freqKHz] {
		s.c.DutyBlocked++
		return nil, fmt.Errorf("downlink: duty cycle blocks %.3f MHz until %.3f s", freqMHz, s.nextFreeS[freqKHz])
	}
	tok := s.allocTokenLocked()
	tx := ingest.TXPK{
		Tmst: up.Tmst + uint64(delayS*1e6),
		Freq: freqMHz,
		RFCh: 0,
		Powe: s.cfg.PowerDBm,
		Modu: "LORA",
		Datr: datr,
		Codr: s.cfg.CodingRate.String(),
		IPol: true,
	}
	tx.SetPayload(phy)
	dgram, err := ingest.EncodePullResp(tok, &tx)
	if err != nil {
		return nil, err
	}
	s.nextFreeS[freqKHz] = sendAtS + toaS/s.cfg.DutyCycle
	s.pending[tok] = &pendingTx{devAddr: devAddr, window: window, phy: phy, up: up, sentAtS: sendAtS}
	s.c.Sent++
	return &Frame{
		Token:    tok,
		Gateway:  up.Gateway,
		EUI:      up.EUI,
		DevAddr:  devAddr,
		Window:   window,
		TXPK:     tx,
		Datagram: dgram,
	}, nil
}

func (s *Scheduler) allocTokenLocked() uint16 {
	for {
		s.nextToken++
		if s.nextToken == 0 {
			continue
		}
		if _, busy := s.pending[s.nextToken]; !busy {
			return s.nextToken
		}
	}
}

// OnTxAck resolves a sent frame from its gateway TX_ACK. A success
// finalizes the delivery; an error on the RX1 attempt produces exactly
// one RX2 retry (the returned frame, when the duty budget allows it); an
// error on the RX2 attempt is terminal. The error tally is kept per
// gateway for metrics.
func (s *Scheduler) OnTxAck(eui [8]byte, token uint16, errStr string, nowS float64) *Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	if errStr == "" {
		errStr = ingest.TxErrNone
	}
	tally := s.ackErrs[eui]
	if tally == nil {
		tally = make(map[string]int)
		s.ackErrs[eui] = tally
	}
	tally[errStr]++

	p, ok := s.pending[token]
	if !ok {
		return nil // unsolicited or already expired
	}
	delete(s.pending, token)
	if errStr == ingest.TxErrNone {
		s.c.Acked++
		return nil
	}
	if p.window != 1 {
		s.c.Failed++
		return nil
	}
	// One RX2 retry: same PHY payload, fixed RX2 channel of the same
	// uplink's timing.
	f, err := s.emitLocked(p.devAddr, p.up, p.phy, 2, s.cfg.RX2DelayS,
		s.cfg.RX2FreqMHz, s.cfg.RX2Datr, p.up.AtS+s.cfg.RX2DelayS)
	if err != nil {
		s.c.Failed++
		return nil
	}
	s.c.Retried++
	return f
}

// Unroutable records that an emitted frame could not be sent because the
// gateway has no live downlink route.
func (s *Scheduler) Unroutable(token uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pending[token]; !ok {
		return
	}
	delete(s.pending, token)
	s.c.NoRoute++
	s.c.Failed++
}

// Expire fails sent frames whose TX_ACK never arrived within the
// timeout and returns how many were dropped.
func (s *Scheduler) Expire(nowS float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	toks := make([]int, 0, len(s.pending))
	for tok, p := range s.pending {
		if nowS-p.sentAtS > s.cfg.AckTimeoutS {
			toks = append(toks, int(tok))
		}
	}
	sort.Ints(toks)
	for _, tok := range toks {
		delete(s.pending, uint16(tok))
		s.c.Expired++
		s.c.Failed++
	}
	return len(toks)
}

// Counters returns a snapshot of the accounting counters.
func (s *Scheduler) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// AckErrors returns the per-gateway TX_ACK outcome tallies in a stable
// order (EUI, then error string).
func (s *Scheduler) AckErrors() []AckErrorCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []AckErrorCount
	for eui, tally := range s.ackErrs {
		for e, n := range tally {
			out = append(out, AckErrorCount{EUI: eui, Error: e, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i].EUI {
			if out[i].EUI[k] != out[j].EUI[k] {
				return out[i].EUI[k] < out[j].EUI[k]
			}
		}
		return out[i].Error < out[j].Error
	})
	return out
}
