package downlink

import (
	"net"
	"testing"

	"eflora/internal/engine"
	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
)

func TestRoutesUpdateLookupEvict(t *testing.T) {
	r := NewRoutes(10)
	eui := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	addr := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 1700}
	if _, ok := r.Lookup(eui); ok {
		t.Fatal("lookup on empty table succeeded")
	}
	r.Update(eui, addr, 100)
	got, ok := r.Lookup(eui)
	if !ok || got != addr {
		t.Fatalf("lookup = %v,%v", got, ok)
	}
	// A fresh PULL_DATA moves the route.
	addr2 := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 2), Port: 1700}
	r.Update(eui, addr2, 105)
	if got, _ := r.Lookup(eui); got != addr2 {
		t.Fatalf("lookup after update = %v", got)
	}
	if n := r.Evict(110); n != 0 || r.Len() != 1 {
		t.Fatalf("evict(110) = %d, len %d", n, r.Len())
	}
	if n := r.Evict(120); n != 1 || r.Len() != 0 {
		t.Fatalf("evict(120) = %d, len %d", n, r.Len())
	}
	r.Update(eui, nil, 130)
	if r.Len() != 0 {
		t.Fatal("nil address recorded")
	}
}

func testUplink(devAddr uint32, atS float64) Uplink {
	return Uplink{
		DevAddr: devAddr,
		Gateway: 0,
		EUI:     [8]byte{0xAA, 1, 2, 3, 4, 5, 6, 7},
		Tmst:    uint64(atS * 1e6),
		FreqMHz: 868.1,
		Datr:    "SF9BW125",
		AtS:     atS,
	}
}

func testPhy(t *testing.T, devAddr uint32) []byte {
	t.Helper()
	var keys lorawan.Keys
	cmd, err := lorawan.LinkADRReq{DataRate: 5, TXPower: 0, Channel: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	phy, err := lorawan.EncodeDownlink(lorawan.Frame{
		MType: lorawan.UnconfirmedDataDown, DevAddr: devAddr, FCnt: 0, FPort: 0, Payload: cmd,
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	return phy
}

func TestSchedulerRX1Preferred(t *testing.T) {
	s := NewScheduler(Config{})
	phy := testPhy(t, 7)
	up := testUplink(7, 100)
	if f := s.ObserveUplink(up, 100.01); f != nil {
		t.Fatal("frame emitted with nothing queued")
	}
	f := s.Enqueue(7, phy, 100.05)
	if f == nil {
		t.Fatal("no frame inside RX1 lead time")
	}
	if f.Window != 1 || f.TXPK.Freq != 868.1 || f.TXPK.Datr != "SF9BW125" {
		t.Errorf("frame = %+v", f)
	}
	if f.TXPK.Tmst != up.Tmst+1_000_000 {
		t.Errorf("tmst = %d, want %d", f.TXPK.Tmst, up.Tmst+1_000_000)
	}
	if !f.TXPK.IPol {
		t.Error("downlink not inverted-polarity")
	}
	// The datagram is a decodable PULL_RESP echoing the token.
	p, err := ingest.DecodeDownstream(f.Datagram)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != ingest.PullResp || p.Token != f.Token {
		t.Errorf("datagram = %+v", p)
	}
	if c := s.Counters(); c.Queued != 1 || c.Sent != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestSchedulerFallsBackToRX2(t *testing.T) {
	s := NewScheduler(Config{})
	up := testUplink(7, 100)
	s.ObserveUplink(up, 100)
	// Enqueued after RX1 opened but before RX2.
	f := s.Enqueue(7, testPhy(t, 7), 101.5)
	if f == nil {
		t.Fatal("no frame inside RX2 lead time")
	}
	if f.Window != 2 || f.TXPK.Freq != DefaultRX2FreqMHz || f.TXPK.Datr != DefaultRX2Datr {
		t.Errorf("frame = %+v", f)
	}
	if f.TXPK.Tmst != up.Tmst+2_000_000 {
		t.Errorf("tmst = %d", f.TXPK.Tmst)
	}
}

func TestSchedulerWaitsForNextUplink(t *testing.T) {
	s := NewScheduler(Config{})
	s.ObserveUplink(testUplink(7, 100), 100)
	// Both windows already past: the command must wait.
	if f := s.Enqueue(7, testPhy(t, 7), 103); f != nil {
		t.Fatalf("emitted into a closed window: %+v", f)
	}
	if s.QueuedCount() != 1 {
		t.Fatal("command not queued")
	}
	f := s.ObserveUplink(testUplink(7, 200), 200.01)
	if f == nil || f.Window != 1 {
		t.Fatalf("next uplink did not emit RX1: %+v", f)
	}
	if s.QueuedCount() != 0 {
		t.Error("command still queued after emission")
	}
}

func TestSchedulerExactlyOneRX2Retry(t *testing.T) {
	s := NewScheduler(Config{})
	up := testUplink(7, 100)
	s.ObserveUplink(up, 100)
	f1 := s.Enqueue(7, testPhy(t, 7), 100.05)
	if f1 == nil || f1.Window != 1 {
		t.Fatalf("f1 = %+v", f1)
	}
	f2 := s.OnTxAck(up.EUI, f1.Token, ingest.TxErrTooLate, 100.2)
	if f2 == nil || f2.Window != 2 {
		t.Fatalf("no RX2 retry: %+v", f2)
	}
	if f2.TXPK.Freq != DefaultRX2FreqMHz || f2.TXPK.Tmst != up.Tmst+2_000_000 {
		t.Errorf("retry frame = %+v", f2)
	}
	// A second error is terminal: no third attempt.
	if f3 := s.OnTxAck(up.EUI, f2.Token, ingest.TxErrTxFreq, 100.4); f3 != nil {
		t.Fatalf("second retry emitted: %+v", f3)
	}
	c := s.Counters()
	if c.Sent != 2 || c.Retried != 1 || c.Failed != 1 || c.Acked != 0 {
		t.Errorf("counters = %+v", c)
	}
	errs := s.AckErrors()
	if len(errs) != 2 {
		t.Fatalf("ack errors = %+v", errs)
	}
	if errs[0].Error != ingest.TxErrTooLate && errs[1].Error != ingest.TxErrTooLate {
		t.Errorf("TOO_LATE not tallied: %+v", errs)
	}
}

func TestSchedulerAck(t *testing.T) {
	s := NewScheduler(Config{})
	up := testUplink(7, 100)
	s.ObserveUplink(up, 100)
	f := s.Enqueue(7, testPhy(t, 7), 100.05)
	if f == nil {
		t.Fatal("no frame")
	}
	if retry := s.OnTxAck(up.EUI, f.Token, "", 100.2); retry != nil {
		t.Fatalf("success produced a retry: %+v", retry)
	}
	c := s.Counters()
	if c.Acked != 1 || c.Failed != 0 || s.PendingCount() != 0 {
		t.Errorf("counters = %+v, pending %d", c, s.PendingCount())
	}
	// Unsolicited token: tallied per gateway, no crash, no retry.
	if f := s.OnTxAck(up.EUI, 0x7777, ingest.TxErrTxPower, 101); f != nil {
		t.Fatal("unsolicited ack produced a frame")
	}
}

func TestSchedulerDutyCycleBlocks(t *testing.T) {
	// A tiny duty cycle makes the second RX1 send on the same frequency
	// fall inside the first send's off period.
	s := NewScheduler(Config{DutyCycle: 0.001})
	phyA, phyB := testPhy(t, 1), testPhy(t, 2)
	s.ObserveUplink(testUplink(1, 100), 100)
	if f := s.Enqueue(1, phyA, 100.05); f == nil || f.Window != 1 {
		t.Fatalf("first send blocked: %+v", f)
	}
	// Device 2 uplinks on the same channel moments later: RX1 is duty
	// blocked, so the frame must fall back to RX2 (different frequency).
	s.ObserveUplink(testUplink(2, 100.2), 100.2)
	f := s.Enqueue(2, phyB, 100.25)
	if f == nil || f.Window != 2 {
		t.Fatalf("expected RX2 fallback, got %+v", f)
	}
	if c := s.Counters(); c.DutyBlocked != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestSchedulerExpireAndUnroutable(t *testing.T) {
	s := NewScheduler(Config{AckTimeoutS: 2})
	s.ObserveUplink(testUplink(1, 100), 100)
	f := s.Enqueue(1, testPhy(t, 1), 100.05)
	if f == nil {
		t.Fatal("no frame")
	}
	if n := s.Expire(101); n != 0 {
		t.Fatalf("expired too early: %d", n)
	}
	if n := s.Expire(104); n != 1 {
		t.Fatalf("expire = %d", n)
	}
	c := s.Counters()
	if c.Expired != 1 || c.Failed != 1 {
		t.Errorf("counters = %+v", c)
	}

	s.ObserveUplink(testUplink(2, 200), 200)
	f = s.Enqueue(2, testPhy(t, 2), 200.05)
	if f == nil {
		t.Fatal("no frame")
	}
	s.Unroutable(f.Token)
	s.Unroutable(f.Token) // idempotent
	c = s.Counters()
	if c.NoRoute != 1 || c.Failed != 2 || s.PendingCount() != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestGatewaySimJudgesAndBlocks(t *testing.T) {
	var eng engine.Gateway
	eng.Reset(engine.Config{
		Capacity:   8,
		HalfDuplex: true,
		NoiseMW:    lora.DBmToMilliwatts(-120),
		Thresholds: engine.NewThresholds(),
	})
	g := &GatewaySim{Eng: &eng, ValidFreqMHz: []float64{868.1, DefaultRX2FreqMHz}}

	tx := ingest.TXPK{Tmst: 101_000_000, Freq: 868.1, Modu: "LORA", Datr: "SF9BW125", Codr: "4/5", IPol: true}
	tx.SetPayload(testPhy(t, 7))

	if _, _, errStr := g.Transmit(&tx, 102); errStr != ingest.TxErrTooLate {
		t.Errorf("late = %q", errStr)
	}
	if _, _, errStr := g.Transmit(&tx, 50); errStr != ingest.TxErrTooEarly {
		t.Errorf("early = %q", errStr)
	}
	bad := tx
	bad.Freq = 433.0
	if _, _, errStr := g.Transmit(&bad, 100.5); errStr != ingest.TxErrTxFreq {
		t.Errorf("bad freq = %q", errStr)
	}
	startS, endS, errStr := g.Transmit(&tx, 100.5)
	if errStr != ingest.TxErrNone || startS != 101 || endS <= startS {
		t.Fatalf("accept = %v %v %q", startS, endS, errStr)
	}
	// An uplink overlapping the downlink is lost to half duplex.
	strong := lora.DBmToMilliwatts(-50)
	if v := eng.Arrive(1, 1, lora.SF9, 0, startS+0.001, startS+0.05, strong); v != engine.VerdictBlocked {
		t.Errorf("overlapping uplink verdict = %v", v)
	}
	if v := eng.Arrive(2, 2, lora.SF9, 0, endS+0.1, endS+0.2, strong); v != engine.VerdictLocked {
		t.Errorf("clear uplink verdict = %v", v)
	}
}

func testDevice(devAddr uint32) *DeviceSim {
	return &DeviceSim{
		DevAddr:        devAddr,
		Plan:           lora.EU868(),
		RX1DelayS:      1,
		RX2DelayS:      2,
		RX2FreqMHz:     DefaultRX2FreqMHz,
		RX2Datr:        DefaultRX2Datr,
		LastUplinkEndS: 100,
		UplinkFreqMHz:  868.1,
		UplinkDatr:     "SF9BW125",
		SF:             lora.SF9,
		TPdBm:          8,
		Channel:        0,
	}
}

func TestDeviceSimAppliesOnlyInWindow(t *testing.T) {
	d := testDevice(7)
	tx := ingest.TXPK{Freq: 868.1, Datr: "SF9BW125"}
	tx.SetPayload(testPhy(t, 7))

	// Outside any window: silently lost, nothing applied.
	if w, err := d.Receive(&tx, 100.5); w != 0 || err != nil {
		t.Fatalf("off-window receive = %d, %v", w, err)
	}
	if d.AppliedCount != 0 {
		t.Fatal("command applied outside window")
	}
	// Right time, wrong frequency: not received.
	badFreq := tx
	badFreq.Freq = 868.3
	if w, _ := d.Receive(&badFreq, 101); w != 0 {
		t.Fatal("wrong-frequency downlink received")
	}
	// RX1 lands and applies the assignment (DR5=SF7, power index 0, ch 1).
	w, err := d.Receive(&tx, 101)
	if err != nil || w != 1 {
		t.Fatalf("RX1 receive = %d, %v", w, err)
	}
	if d.SF != lora.SF7 || d.TPdBm != d.Plan.MaxTxPowerDBm || d.Channel != 1 {
		t.Errorf("applied = SF%d %v dBm ch%d", d.SF, d.TPdBm, d.Channel)
	}
	if d.AppliedCount != 1 || d.AppliedAtS != 101 {
		t.Errorf("applied count %d at %v", d.AppliedCount, d.AppliedAtS)
	}
	// A replayed frame counter is rejected.
	if _, err := d.Receive(&tx, 101); err == nil {
		t.Error("replayed FCntDown accepted")
	}
}

func TestDeviceSimRX2Window(t *testing.T) {
	d := testDevice(7)
	tx := ingest.TXPK{Freq: DefaultRX2FreqMHz, Datr: DefaultRX2Datr}
	tx.SetPayload(testPhy(t, 7))
	w, err := d.Receive(&tx, 102)
	if err != nil || w != 2 {
		t.Fatalf("RX2 receive = %d, %v", w, err)
	}
	if d.AppliedCount != 1 {
		t.Error("command not applied via RX2")
	}
	// Another device's frame inside the window is dropped by addressing.
	other := ingest.TXPK{Freq: DefaultRX2FreqMHz, Datr: DefaultRX2Datr}
	other.SetPayload(testPhy(t, 9))
	d2 := testDevice(7)
	if w, err := d2.Receive(&other, 102); w != 0 || err != nil {
		t.Fatalf("foreign frame = %d, %v", w, err)
	}
}
