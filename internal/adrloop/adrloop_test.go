package adrloop

import (
	"strings"
	"testing"

	"eflora/internal/alloc"
	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func testNetwork(nDev, nGW int, seed uint64) *model.Network {
	r := rng.New(seed)
	return &model.Network{
		Devices:  geo.UniformDisc(nDev, 3000, r),
		Gateways: geo.GridGateways(nGW, 3000),
	}
}

func TestLoopLowersSFsOverTime(t *testing.T) {
	net := testNetwork(80, 2, 1)
	p := model.DefaultParams()
	res, err := Run(net, p, Config{Epochs: 10, PacketsPerEpoch: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Joined at SF12 everywhere; after the loop most devices should sit
	// far below SF12 (the deployment is 3 km, SF7 reaches ~3.1 km).
	below := 0
	for _, sf := range res.Final.SF {
		if sf < lora.SF12 {
			below++
		}
	}
	if below < 60 {
		t.Errorf("only %d/80 devices left SF12", below)
	}
	if len(res.PerEpoch) != 10 {
		t.Fatalf("epochs recorded: %d", len(res.PerEpoch))
	}
	// The first epoch must adjust many devices (everyone has margin).
	if res.PerEpoch[0].Changed < 40 {
		t.Errorf("first-epoch adjustments = %d, want many", res.PerEpoch[0].Changed)
	}
}

func TestLoopConverges(t *testing.T) {
	net := testNetwork(50, 2, 3)
	p := model.DefaultParams()
	res, err := Run(net, p, Config{Epochs: 25, PacketsPerEpoch: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// ADR stabilizes within a couple dozen epochs on a calm network:
	// changes in the last epochs should be minimal even if fading noise
	// keeps a device or two oscillating.
	last := res.PerEpoch[len(res.PerEpoch)-1]
	if last.Changed > 5 {
		t.Errorf("still %d changes in the final epoch", last.Changed)
	}
	if !strings.Contains(res.Summary(), "epoch") {
		t.Error("summary malformed")
	}
}

func TestLoopEnergyEfficiencyImproves(t *testing.T) {
	net := testNetwork(60, 2, 5)
	p := model.DefaultParams()
	res, err := Run(net, p, Config{Epochs: 12, PacketsPerEpoch: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	first := res.PerEpoch[0].MinEE
	lastStats := res.PerEpoch[len(res.PerEpoch)-1]
	if lastStats.MinEE <= first {
		t.Errorf("min EE did not improve: %v -> %v", first, lastStats.MinEE)
	}
}

func TestConvergedADRBelowEFLoRa(t *testing.T) {
	// The point of the comparison: even converged ADR (link-local) does
	// not beat EF-LoRa's network-wide max-min allocation under the model.
	net := testNetwork(80, 2, 7)
	p := model.DefaultParams()
	p.TrafficDutyCycle = 0.05
	res, err := Run(net, p, Config{Epochs: 15, PacketsPerEpoch: 25, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	adrMin, err := alloc.EvaluateMinEE(net, p, res.Final, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := alloc.NewEFLoRa(alloc.Options{}).Allocate(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	efMin, err := alloc.EvaluateMinEE(net, p, ef, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if efMin <= adrMin {
		t.Errorf("EF-LoRa min EE %v should beat converged ADR %v", efMin, adrMin)
	}
}

func TestLoopValidatesInputs(t *testing.T) {
	p := model.DefaultParams()
	if _, err := Run(&model.Network{}, p, Config{}); err == nil {
		t.Error("empty network accepted")
	}
	bad := p
	bad.PacketIntervalS = -1
	if _, err := Run(testNetwork(10, 1, 9), bad, Config{}); err == nil {
		t.Error("invalid params accepted")
	}
}
