// Package adrloop simulates the closed-loop dynamics of network-side
// LoRaWAN ADR: devices join on conservative defaults (SF12, maximum
// power), the network server measures each device's best uplink SNR over
// an epoch of packets, applies the standard ADR adjustment, and repeats.
// The paper's related work (Li et al.) identifies convergence as ADR's
// bottleneck; this package measures that convergence and lets experiments
// compare the converged ADR state against EF-LoRa's one-shot allocation.
package adrloop

import (
	"fmt"
	"math"

	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/sim"
	"eflora/internal/stats"
)

// Config controls the closed loop.
type Config struct {
	// Epochs is the number of adjustment rounds (default 20).
	Epochs int
	// PacketsPerEpoch per device between adjustments (default 20, the
	// standard ADR measurement window).
	PacketsPerEpoch int
	// MarginDB is the ADR installation margin (default 10).
	MarginDB float64
	// Seed drives the per-epoch simulations.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.PacketsPerEpoch <= 0 {
		c.PacketsPerEpoch = 20
	}
	if c.MarginDB == 0 {
		c.MarginDB = 10
	}
	return c
}

// EpochStats summarizes one adjustment round.
type EpochStats struct {
	// Epoch index (0-based; stats describe traffic *before* the epoch's
	// adjustment).
	Epoch int
	// MeanPRR and MinEE are measured over the epoch's packets.
	MeanPRR, MinEE float64
	// Changed counts devices whose (SF, TP) the server adjusted at the
	// end of the epoch.
	Changed int
}

// Result is the loop outcome.
type Result struct {
	// PerEpoch holds one entry per simulated epoch.
	PerEpoch []EpochStats
	// Final is the allocation after the last epoch.
	Final model.Allocation
	// ConvergedAt is the first epoch whose adjustment changed nobody
	// (-1 when the loop never stabilized within Config.Epochs).
	ConvergedAt int
}

// Run executes the closed loop on a network. Devices join at SF12 and
// maximum power with round-robin channels (the LoRaWAN join default), and
// only the server-side ADR moves them afterwards.
func Run(net *model.Network, p model.Params, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := net.N()
	a := model.NewAllocation(n, p.Plan)
	for i := 0; i < n; i++ {
		a.SF[i] = lora.MaxSF
		a.TPdBm[i] = p.Plan.MaxTxPowerDBm
		a.Channel[i] = i % p.Plan.NumChannels()
	}
	res := &Result{ConvergedAt: -1}
	step := p.Plan.TxPowerStepDBm
	if step <= 0 {
		step = 2
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		simRes, err := sim.Run(net, p, a, sim.Config{
			PacketsPerDevice: cfg.PacketsPerEpoch,
			Seed:             cfg.Seed + uint64(epoch)*2654435761,
			MeasureSNR:       true,
		})
		if err != nil {
			return nil, err
		}
		es := EpochStats{
			Epoch:   epoch,
			MeanPRR: stats.Mean(simRes.PRR),
			MinEE:   stats.Percentile(simRes.EE, 0.02),
		}
		// Server-side adjustment.
		for i := 0; i < n; i++ {
			sf, tp := a.SF[i], a.TPdBm[i]
			if simRes.Delivered[i] == 0 {
				// Link-dead backoff: raise power first, then SF.
				switch {
				case tp < p.Plan.MaxTxPowerDBm:
					tp = math.Min(tp+step, p.Plan.MaxTxPowerDBm)
				case sf < lora.MaxSF:
					sf++
				}
			} else {
				// Standard ADR: spend the margin over the current SF's
				// requirement in 3 dB steps, first on SF, then on power.
				snr := simRes.MaxSNRdB[i]
				steps := int(math.Floor((snr - lora.SNRThresholdDB(sf) - cfg.MarginDB) / 3))
				for steps > 0 && sf > lora.MinSF {
					sf--
					steps--
				}
				for steps > 0 && tp-step >= p.Plan.MinTxPowerDBm {
					tp -= step
					steps--
				}
				// A negative margin is left to the link-dead backoff
				// above: server-side ADR only ever lowers SF/power
				// (raising is the device's ADRACKReq fallback), which is
				// what keeps the loop from oscillating around the margin
				// boundary.
			}
			if sf != a.SF[i] || tp != a.TPdBm[i] {
				a.SF[i], a.TPdBm[i] = sf, tp
				es.Changed++
			}
		}
		res.PerEpoch = append(res.PerEpoch, es)
		if es.Changed == 0 && res.ConvergedAt < 0 {
			res.ConvergedAt = epoch
		}
	}
	res.Final = a.Clone()
	return res, nil
}

// Summary renders the loop trajectory.
func (r *Result) Summary() string {
	out := ""
	for _, e := range r.PerEpoch {
		out += fmt.Sprintf("epoch %2d: meanPRR %.3f minEE %.1f bits/J changed %d\n",
			e.Epoch, e.MeanPRR, e.MinEE, e.Changed)
	}
	if r.ConvergedAt >= 0 {
		out += fmt.Sprintf("converged at epoch %d\n", r.ConvergedAt)
	} else {
		out += "did not converge\n"
	}
	return out
}
