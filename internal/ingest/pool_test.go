package ingest

import (
	"sync"
	"testing"
	"time"

	"eflora/internal/lorawan"
	"eflora/internal/netserver"
)

func encodeFrame(t testing.TB, d netserver.Device, fcnt uint32, payload []byte) []byte {
	t.Helper()
	phy, err := lorawan.Encode(lorawan.Frame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: d.DevAddr,
		FCnt: fcnt, FPort: 1, Payload: payload,
	}, d.Keys)
	if err != nil {
		t.Fatal(err)
	}
	return phy
}

func TestShardOfCoversAndIsStable(t *testing.T) {
	const shards = 8
	hit := make([]int, shards)
	for addr := uint32(1); addr <= 4096; addr++ {
		k := ShardOf(addr, shards)
		if k != ShardOf(addr, shards) {
			t.Fatal("ShardOf not deterministic")
		}
		hit[k]++
	}
	for k, n := range hit {
		// A dense sequential address space must spread roughly evenly.
		if n < 256 || n > 768 {
			t.Errorf("shard %d got %d of 4096 addresses", k, n)
		}
	}
}

func TestPoolRoutesAndAggregates(t *testing.T) {
	devs := ProvisionDevices(32)
	p := NewPool(devs, PoolConfig{Shards: 4})
	p.Start()
	defer p.Close()
	for fcnt := uint32(1); fcnt <= 3; fcnt++ {
		for _, d := range devs {
			phy := encodeFrame(t, d, fcnt, []byte{byte(fcnt)})
			p.Dispatch(netserver.Uplink{Gateway: 0, ReceivedAtS: float64(fcnt) * 10, PHYPayload: phy})
			// A second gateway copy inside the window.
			p.Dispatch(netserver.Uplink{Gateway: 1, ReceivedAtS: float64(fcnt)*10 + 0.01, SNRdB: 3, PHYPayload: phy})
		}
	}
	p.Drain()
	p.Flush()
	c := p.Counters()
	if c.Uplinks != 32*3*2 || c.Delivered != 32*3 || c.Duplicates != 32*3 || c.Rejected != 0 {
		t.Errorf("counters = %+v", c)
	}
	if q, ok := p.LatencyQuantile(0.99); !ok || q <= 0 {
		t.Errorf("p99 latency = %v, %v", q, ok)
	}
	if depths := p.ShardDepths(); len(depths) != 4 {
		t.Errorf("depths = %v", depths)
	}
	// Every device must be reachable on some shard (BestGateway resolves).
	for _, d := range devs {
		srv := p.Shard(ShardOf(d.DevAddr, 4))
		if gw, ok := srv.BestGateway(d.DevAddr); !ok || gw != 1 {
			t.Errorf("device %08x best gateway = (%d, %v), want (1, true)", d.DevAddr, gw, ok)
		}
	}
}

func TestPoolVirtualClockFlush(t *testing.T) {
	devs := ProvisionDevices(4)
	p := NewPool(devs, PoolConfig{Shards: 2})
	p.Start()
	defer p.Close()
	for i, d := range devs {
		phy := encodeFrame(t, d, 1, []byte{1})
		p.Dispatch(netserver.Uplink{ReceivedAtS: float64(i), PHYPayload: phy})
	}
	p.Drain()
	// The newest timestamp each shard saw is ~3 s; every window opened
	// at <= 3 s minus the 0.2 s default has expired except the newest.
	flushed := p.FlushExpiredVirtual()
	if flushed < 2 {
		t.Errorf("virtual flush finalized %d, want >= 2", flushed)
	}
	p.Flush()
	if c := p.Counters(); c.Delivered != 4 {
		t.Errorf("delivered = %d, want 4", c.Delivered)
	}
}

func TestPoolDeliveryDrainStreams(t *testing.T) {
	devs := ProvisionDevices(8)
	var mu sync.Mutex
	got := 0
	p := NewPool(devs, PoolConfig{
		Shards:    4,
		RetainCap: 2,
		OnDelivery: func(shard int, d netserver.Delivery) {
			mu.Lock()
			got++
			mu.Unlock()
		},
	})
	p.Start()
	defer p.Close()
	for fcnt := uint32(1); fcnt <= 5; fcnt++ {
		for _, d := range devs {
			p.Dispatch(netserver.Uplink{ReceivedAtS: float64(fcnt) * 10, PHYPayload: encodeFrame(t, d, fcnt, []byte{byte(fcnt)})})
		}
	}
	p.Drain()
	p.Flush()
	mu.Lock()
	defer mu.Unlock()
	if got != 8*5 {
		t.Errorf("drained deliveries = %d, want 40", got)
	}
	// Retention keeps only the newest 2 per shard server.
	total := 0
	for k := 0; k < p.Shards(); k++ {
		total += len(p.Shard(k).Deliveries())
	}
	if total > 2*p.Shards() {
		t.Errorf("retained %d deliveries across shards, cap is 2 each", total)
	}
}

// TestConcurrentGatewaysMatchSequential is the -race ingest test: many
// gateway goroutines hammer the sharded pool with interleaved duplicate
// copies, stale replays and out-of-order timestamps; the aggregated
// counters must equal a sequential single-server replay of the same
// traffic. Rounds are barriered so per-device counter order is defined
// even though gateway interleaving within a round is not.
func TestConcurrentGatewaysMatchSequential(t *testing.T) {
	const (
		nDev     = 48
		gateways = 6
		rounds   = 12
	)
	devs := ProvisionDevices(nDev)
	// Deterministic per-(gateway, device, round) decisions.
	dup := func(gw, dev, r int) bool { return (gw*7+dev*13+r*31)%5 == 0 }
	stale := func(gw, dev, r int) bool { return r >= 3 && (gw*11+dev*3+r*17)%7 == 0 }

	// Pre-encode all frames (device x round).
	phys := make([][][]byte, nDev)
	for d := range phys {
		phys[d] = make([][]byte, rounds+1)
		for r := 1; r <= rounds; r++ {
			phys[d][r] = encodeFrame(t, devs[d], uint32(r), []byte{byte(d), byte(r)})
		}
	}
	buildRound := func(gw, r int) []netserver.Uplink {
		var out []netserver.Uplink
		base := float64(r) * 100
		for d := 0; d < nDev; d++ {
			ts := base + float64((gw+d)%10)*0.005
			out = append(out, netserver.Uplink{
				Gateway: gw, ReceivedAtS: ts, SNRdB: float64(gw), PHYPayload: phys[d][r],
			})
			if dup(gw, d, r) {
				// Second copy, timestamped *before* the first (out of
				// order) half the time.
				ts2 := ts + 0.01
				if (gw+d+r)%2 == 0 {
					ts2 = ts - 0.002
				}
				out = append(out, netserver.Uplink{
					Gateway: gw, ReceivedAtS: ts2, SNRdB: float64(gw) + 1, PHYPayload: phys[d][r],
				})
			}
			if stale(gw, d, r) {
				// Replay of a frame two rounds old: deterministically
				// rejected whatever the interleaving.
				out = append(out, netserver.Uplink{
					Gateway: gw, ReceivedAtS: base + 0.05, PHYPayload: phys[d][r-2],
				})
			}
		}
		return out
	}

	// Concurrent run through the sharded pool.
	pool := NewPool(devs, PoolConfig{Shards: 8, QueueDepth: 64})
	pool.Start()
	for r := 1; r <= rounds; r++ {
		var wg sync.WaitGroup
		for gw := 0; gw < gateways; gw++ {
			wg.Add(1)
			go func(gw int) {
				defer wg.Done()
				for _, up := range buildRound(gw, r) {
					pool.Dispatch(up)
				}
			}(gw)
		}
		wg.Wait()
		// Barrier: the round must be fully ingested before the next
		// one's counters start, or replay/duplicate classification would
		// depend on scheduling.
		pool.Drain()
		if r%4 == 0 {
			pool.FlushExpiredVirtual()
		}
	}
	pool.Drain()
	pool.Flush()
	pool.Close()
	got := pool.Counters()

	// Sequential oracle: one server, same traffic, gateway-major order
	// within each round.
	seq := netserver.New(devs)
	for r := 1; r <= rounds; r++ {
		for gw := 0; gw < gateways; gw++ {
			for _, up := range buildRound(gw, r) {
				_ = seq.HandleUplink(up)
			}
		}
	}
	seq.Flush()
	want := seq.Counters()

	if got != want {
		t.Errorf("concurrent counters %+v != sequential %+v", got, want)
	}
	if got.Delivered != nDev*rounds {
		t.Errorf("delivered = %d, want %d", got.Delivered, nDev*rounds)
	}
	if got.Rejected == 0 || got.Duplicates == 0 {
		t.Errorf("test traffic exercised no duplicates/replays: %+v", got)
	}
}

func TestPoolBackpressureBounded(t *testing.T) {
	devs := ProvisionDevices(2)
	p := NewPool(devs, PoolConfig{Shards: 1, QueueDepth: 4})
	p.Start()
	defer p.Close()
	frames := make([][]byte, 201)
	for fcnt := uint32(1); fcnt <= 200; fcnt++ {
		frames[fcnt] = encodeFrame(t, devs[0], fcnt, []byte{1})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for fcnt := 1; fcnt <= 200; fcnt++ {
			p.Dispatch(netserver.Uplink{ReceivedAtS: float64(fcnt), PHYPayload: frames[fcnt]})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("bounded dispatch deadlocked")
	}
	p.Drain()
	if c := p.Counters(); c.Uplinks != 200 {
		t.Errorf("uplinks = %d, want 200", c.Uplinks)
	}
}
