package ingest

import (
	"math"
	"testing"

	"eflora/internal/netserver"
)

func delivery(addr, fcnt uint32, snr float64, gw int) netserver.Delivery {
	return netserver.Delivery{
		DevAddr:  addr,
		FCnt:     fcnt,
		Gateways: []netserver.Uplink{{Gateway: gw, SNRdB: snr}},
	}
}

func TestTrackerPRRFromFCntGaps(t *testing.T) {
	tr := NewTracker(0)
	// FCnts 1, 2, 5, 6: the 2->5 jump means two lost transmissions.
	for _, f := range []uint32{1, 2, 5, 6} {
		tr.Observe(delivery(9, f, -5, 0))
	}
	s, ok := tr.Get(9)
	if !ok {
		t.Fatal("device untracked")
	}
	if s.Received != 4 || s.Expected != 6 {
		t.Errorf("received/expected = %d/%d, want 4/6", s.Received, s.Expected)
	}
	if got := s.PRR(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("PRR = %v, want 2/3", got)
	}
	if s.LastFCnt != 6 || s.BestGateway != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTrackerEWMAAndReset(t *testing.T) {
	tr := NewTracker(0.5)
	tr.Observe(delivery(3, 1, 0, 1))
	tr.Observe(delivery(3, 2, -8, 2))
	s, _ := tr.Get(3)
	if math.Abs(s.EwmaSNRdB-(-4)) > 1e-12 {
		t.Errorf("EWMA = %v, want -4", s.EwmaSNRdB)
	}
	if s.BestGateway != 2 {
		t.Errorf("best gateway = %d, want 2", s.BestGateway)
	}
	// Out-of-order counter: counted, no gap charged.
	tr.Observe(delivery(3, 1, -8, 2))
	s, _ = tr.Get(3)
	if s.Received != 3 || s.Expected != 3 {
		t.Errorf("after ooo: received/expected = %d/%d, want 3/3", s.Received, s.Expected)
	}
	tr.Reset(3)
	if _, ok := tr.Get(3); ok {
		t.Error("reset did not forget the device")
	}
	if tr.Len() != 0 {
		t.Errorf("len = %d, want 0", tr.Len())
	}
	// Deliveries without gateway metadata are ignored.
	tr.Observe(netserver.Delivery{DevAddr: 4, FCnt: 1})
	if tr.Len() != 0 {
		t.Error("gateway-less delivery tracked")
	}
}

func TestTrackerSnapshotIsCopy(t *testing.T) {
	tr := NewTracker(0)
	tr.Observe(delivery(1, 1, 2, 0))
	snap := tr.Snapshot()
	tr.Observe(delivery(1, 2, 2, 0))
	if snap[1].Received != 1 {
		t.Error("snapshot aliases live stats")
	}
}
