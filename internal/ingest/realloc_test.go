package ingest

import (
	"bytes"
	"testing"

	"eflora/internal/alloc"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/scenario"
)

func reallocFixture(t *testing.T, n int, mutate func(a *model.Allocation)) (*alloc.Incremental, *scenario.File) {
	t.Helper()
	net, p, a := replayFixture(t, n)
	if mutate != nil {
		mutate(&a)
	}
	inc, err := alloc.NewIncremental(net, p, a, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return inc, scenario.FromNetwork(net, &a, "realloc test")
}

func TestReallocatorStepReassignsDrifting(t *testing.T) {
	// Device 5 sits on a deliberately wasteful assignment (SF12 despite a
	// short link) so the model-side greedy has an improvement to find
	// once the observed statistics flag it.
	inc, file := reallocFixture(t, 24, func(a *model.Allocation) {
		a.SF[5] = lora.SF12
	})
	tracker := NewTracker(0)
	r := NewReallocator(inc, tracker, ReallocConfig{MinFrames: 4})

	// Healthy device: plenty of SNR headroom, perfect PRR.
	for f := uint32(1); f <= 6; f++ {
		tracker.Observe(delivery(AddrForIndex(0), f, 10, 0))
	}
	// Drifting device: rolling SNR far below what any SF tolerates and a
	// lossy counter stream.
	for f := uint32(1); f <= 12; f += 3 {
		tracker.Observe(delivery(AddrForIndex(5), f, lora.SNRThresholdDB(lora.SF12)-6, 1))
	}

	delta, err := r.Step(123)
	if err != nil {
		t.Fatal(err)
	}
	if delta == nil {
		t.Fatal("drifting device produced no delta")
	}
	if delta.AtS != 123 {
		t.Errorf("delta AtS = %v", delta.AtS)
	}
	for _, c := range delta.Changes {
		if c.Device == 0 {
			t.Error("healthy device reassigned")
		}
	}
	found := false
	for _, c := range delta.Changes {
		if c.Device == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("device 5 not in delta: %+v", delta.Changes)
	}
	if r.Reassigned() != len(delta.Changes) {
		t.Errorf("Reassigned = %d, changes = %d", r.Reassigned(), len(delta.Changes))
	}
	// The drifting device's history is forgotten (hysteresis).
	if _, ok := tracker.Get(AddrForIndex(5)); ok {
		t.Error("drifting device stats not reset after reassign")
	}
	// The delta round-trips through the JSONL stream and applies to the
	// scenario file.
	var buf bytes.Buffer
	if err := scenario.AppendDelta(&buf, delta); err != nil {
		t.Fatal(err)
	}
	deltas, err := scenario.ReadDeltas(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	if err := file.ApplyDelta(&deltas[0]); err != nil {
		t.Fatal(err)
	}
	// The applied file matches the reallocator's live allocation.
	live := r.Allocation()
	for _, c := range delta.Changes {
		if file.Allocation.SF[c.Device] != int(live.SF[c.Device]) {
			t.Errorf("device %d: file SF %d != live %d", c.Device, file.Allocation.SF[c.Device], live.SF[c.Device])
		}
	}
}

func TestReallocatorStepNoDriftNoDelta(t *testing.T) {
	inc, _ := reallocFixture(t, 16, nil)
	tracker := NewTracker(0)
	r := NewReallocator(inc, tracker, ReallocConfig{MinFrames: 4})
	for f := uint32(1); f <= 8; f++ {
		tracker.Observe(delivery(AddrForIndex(2), f, 15, 0))
	}
	// Too few frames to trust: must not trigger either.
	tracker.Observe(delivery(AddrForIndex(3), 1, -40, 0))
	delta, err := r.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if delta != nil {
		t.Errorf("unexpected delta: %+v", delta)
	}
	if r.Reassigned() != 0 {
		t.Errorf("Reassigned = %d, want 0", r.Reassigned())
	}
}

func TestAddrIndexRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		addr := AddrForIndex(i)
		j, ok := IndexForAddr(addr)
		if !ok || j != i {
			t.Fatalf("round trip %d -> %d (%v)", i, j, ok)
		}
	}
	if _, ok := IndexForAddr(0); ok {
		t.Error("address 0 resolved")
	}
}
