package ingest

import (
	"fmt"
	"sort"
	"sync"

	"eflora/internal/alloc"
	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/model"
	"eflora/internal/scenario"
)

// AddrForIndex maps a scenario device index to its DevAddr (index+1, so
// address 0 — invalid in this deployment — is never issued).
func AddrForIndex(i int) uint32 { return uint32(i) + 1 }

// IndexForAddr inverts AddrForIndex; ok is false for address 0.
func IndexForAddr(addr uint32) (int, bool) {
	if addr == 0 {
		return 0, false
	}
	return int(addr) - 1, true
}

// ReallocConfig tunes the drift detector.
type ReallocConfig struct {
	// SNRMarginDB is the headroom required above the current SF's
	// demodulation floor before a device counts as healthy (default 1 dB):
	// a device whose rolling SNR sits below threshold+margin is drifting.
	SNRMarginDB float64
	// MinPRR is the reception-ratio floor (default 0.7).
	MinPRR float64
	// MinFrames is how many deliveries a device must have before the
	// detector trusts its statistics (default 8).
	MinFrames int
	// MaxPerStep caps how many devices one Step reassigns (default 32),
	// bounding the work done on the serving path's timer.
	MaxPerStep int
}

func (c ReallocConfig) withDefaults() ReallocConfig {
	if c.SNRMarginDB == 0 {
		c.SNRMarginDB = 1
	}
	if c.MinPRR == 0 {
		c.MinPRR = 0.7
	}
	if c.MinFrames == 0 {
		c.MinFrames = 8
	}
	if c.MaxPerStep == 0 {
		c.MaxPerStep = 32
	}
	return c
}

// Reallocator closes the paper's control loop online: it watches the
// rolling per-device statistics a Tracker accumulates, flags devices
// whose observed link quality has drifted below what their assigned
// spreading factor needs, and hands each one to alloc.Incremental for a
// single-device greedy reassignment. Changes come back as scenario
// deltas so downstream tooling can follow the live allocation.
type Reallocator struct {
	cfg     ReallocConfig
	tracker *Tracker

	mu  sync.Mutex
	inc *alloc.Incremental
	// Reassigned counts devices moved over the reallocator's lifetime.
	reassigned int
	// ansPending marks devices with an outstanding LinkADRReq; ans tallies
	// the LinkADRAns outcomes devices reported back.
	ansPending map[uint32]bool
	ans        AnsCounters
}

// AnsCounters tallies the fate of LinkADRReq commands as reported by the
// devices themselves, instead of assuming every sent command was applied:
// Sent counts commands handed to the downlink path, Applied/Rejected the
// LinkADRAns answers by outcome, Unsolicited answers with no outstanding
// command (a retransmitted or forged ans).
type AnsCounters struct {
	Sent, Applied, Rejected, Unsolicited int
}

// NewReallocator wires a seeded incremental maintainer to a tracker.
func NewReallocator(inc *alloc.Incremental, tracker *Tracker, cfg ReallocConfig) *Reallocator {
	return &Reallocator{
		cfg:        cfg.withDefaults(),
		tracker:    tracker,
		inc:        inc,
		ansPending: make(map[uint32]bool),
	}
}

// Reassigned reports how many device moves Step has made in total.
func (r *Reallocator) Reassigned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reassigned
}

// RestoreReassigned resets the lifetime move counter — recovery restoring
// a snapshot's accounting into a freshly built reallocator.
func (r *Reallocator) RestoreReassigned(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reassigned = n
}

// NoteCommandSent records that a LinkADRReq for devAddr was handed to the
// downlink path, opening an outstanding-answer window for the device.
func (r *Reallocator) NoteCommandSent(devAddr uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ans.Sent++
	r.ansPending[devAddr] = true
}

// NoteAns folds a device's LinkADRAns into the accounting and reports
// whether it acknowledged an outstanding command. A rejected answer also
// clears the device's rolling statistics: the server's model of the
// device is wrong (it kept its old radio settings), so stats accumulated
// under the assumed-new assignment must not drive the next decision.
func (r *Reallocator) NoteAns(devAddr uint32, ans lorawan.LinkADRAns) bool {
	r.mu.Lock()
	pending := r.ansPending[devAddr]
	if !pending {
		r.ans.Unsolicited++
		r.mu.Unlock()
		return false
	}
	delete(r.ansPending, devAddr)
	applied := ans.Applied()
	if applied {
		r.ans.Applied++
	} else {
		r.ans.Rejected++
	}
	r.mu.Unlock()
	if !applied {
		r.tracker.Reset(devAddr)
	}
	return true
}

// Ans returns the LinkADRAns accounting.
func (r *Reallocator) Ans() AnsCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ans
}

// Allocation snapshots the maintained allocation.
func (r *Reallocator) Allocation() model.Allocation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inc.Allocation()
}

// Step runs one pass of the control loop at server time nowS: detect
// drifting devices, reassign each, and return the resulting allocation
// delta (nil when nothing moved).
func (r *Reallocator) Step(nowS float64) (*scenario.Delta, error) {
	stats := r.tracker.Snapshot()

	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.inc.Allocation()
	n := r.inc.N()

	// Deterministic scan order regardless of map iteration.
	addrs := make([]uint32, 0, len(stats))
	for a := range stats {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	var drifting []int
	for _, a := range addrs {
		s := stats[a]
		if s.Received < uint64(r.cfg.MinFrames) {
			continue
		}
		i, ok := IndexForAddr(a)
		if !ok || i >= n {
			continue
		}
		need := lora.SNRThresholdDB(cur.SF[i]) + r.cfg.SNRMarginDB
		if s.EwmaSNRdB < need || s.PRR() < r.cfg.MinPRR {
			drifting = append(drifting, i)
			if len(drifting) >= r.cfg.MaxPerStep {
				break
			}
		}
	}
	if len(drifting) == 0 {
		return nil, nil
	}

	delta := &scenario.Delta{
		Version: scenario.CurrentVersion,
		AtS:     nowS,
		Comment: fmt.Sprintf("online realloc: %d drifting device(s)", len(drifting)),
	}
	for _, i := range drifting {
		changed, err := r.inc.ReassignDevice(i)
		if err != nil {
			return nil, err
		}
		// Forget the pre-move history either way: if the model kept the
		// settings, re-triggering next tick with the same stale EWMA
		// would only spin the detector. Kept-but-reset devices are
		// recorded in Resets so the delta is a complete account of the
		// step's state mutation (the WAL-replay contract).
		r.tracker.Reset(AddrForIndex(i))
		if !changed {
			delta.Resets = append(delta.Resets, i)
			continue
		}
		a := r.inc.Allocation()
		delta.Changes = append(delta.Changes, scenario.DeltaChange{
			Device:  i,
			SF:      int(a.SF[i]),
			TPdBm:   a.TPdBm[i],
			Channel: a.Channel[i],
		})
		r.reassigned++
	}
	if len(delta.Changes) == 0 && len(delta.Resets) == 0 {
		return nil, nil
	}
	return delta, nil
}
