package ingest

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/netserver"
)

// replayFixture builds a small deterministic deployment with a feasible
// hand-rolled allocation (min feasible SF at max power, channels spread).
func replayFixture(t testing.TB, n int) (*model.Network, model.Params, model.Allocation) {
	t.Helper()
	p := model.DefaultParams()
	p.PacketIntervalS = 60
	net := &model.Network{
		Gateways: []geo.Point{{X: 0, Y: 0}, {X: 1800, Y: 0}, {X: 0, Y: 1800}},
	}
	for i := 0; i < n; i++ {
		r := 200 + float64(i%9)*250
		ang := float64(i) * 2.39996 // golden-angle spiral
		net.Devices = append(net.Devices, geo.Point{
			X: r * math.Cos(ang), Y: r * math.Sin(ang),
		})
	}
	gains := model.Gains(net, p)
	a := model.NewAllocation(n, p.Plan)
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = p.Plan.MaxTxPowerDBm
		a.Channel[i] = i % p.Plan.NumChannels()
	}
	if err := a.Validate(n, p); err != nil {
		t.Fatal(err)
	}
	return net, p, a
}

func TestBuildReplayDeterministic(t *testing.T) {
	net, p, a := replayFixture(t, 30)
	cfg := ReplayConfig{Packets: 5, Seed: 11}
	r1, err := BuildReplay(net, p, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BuildReplay(net, p, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Uplinks) != len(r2.Uplinks) || r1.Expected != r2.Expected {
		t.Fatalf("replay not deterministic: %d/%+v vs %d/%+v",
			len(r1.Uplinks), r1.Expected, len(r2.Uplinks), r2.Expected)
	}
	for i := range r1.Uplinks {
		u1, u2 := r1.Uplinks[i], r2.Uplinks[i]
		if u1.Gateway != u2.Gateway || u1.ReceivedAtS != u2.ReceivedAtS || u1.SNRdB != u2.SNRdB {
			t.Fatalf("uplink %d differs: %+v vs %+v", i, u1, u2)
		}
	}
	if r1.Expected.Delivered == 0 {
		t.Fatal("replay delivered nothing — fixture links are all dead")
	}
	if r1.Expected.Duplicates == 0 {
		t.Error("replay synthesized no duplicates")
	}
}

// TestReplayBitExactAcrossShardCounts is the acceptance oracle: the same
// trace ingested through a multi-shard pool, a single-shard pool and a
// bare sequential server must produce identical counters, all equal to
// the generator's analytical expectation.
func TestReplayBitExactAcrossShardCounts(t *testing.T) {
	net, p, a := replayFixture(t, 48)
	rt, err := BuildReplay(net, p, a, ReplayConfig{Packets: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	run := func(shards int) netserver.Counters {
		pool := NewPool(rt.Devices, PoolConfig{Shards: shards, DedupWindowS: rt.DedupWindowS})
		pool.Start()
		for i, up := range rt.Uplinks {
			pool.Dispatch(up)
			if i%1000 == 999 {
				pool.FlushExpiredVirtual() // interleave clock flushes
			}
		}
		pool.Drain()
		pool.Flush()
		pool.Close()
		return pool.Counters()
	}

	sharded := run(8)
	single := run(1)
	seq := netserver.New(rt.Devices)
	seq.DedupWindowS = rt.DedupWindowS
	for _, up := range rt.Uplinks {
		_ = seq.HandleUplink(up)
	}
	seq.Flush()

	if sharded != rt.Expected {
		t.Errorf("8-shard counters %+v != expected %+v", sharded, rt.Expected)
	}
	if single != rt.Expected {
		t.Errorf("1-shard counters %+v != expected %+v", single, rt.Expected)
	}
	if got := seq.Counters(); got != rt.Expected {
		t.Errorf("sequential counters %+v != expected %+v", got, rt.Expected)
	}
}

// TestReplayFeedsTracker checks the delivery stream drives the rolling
// statistics: every delivered device is tracked with a sane PRR and SNR.
func TestReplayFeedsTracker(t *testing.T) {
	net, p, a := replayFixture(t, 24)
	rt, err := BuildReplay(net, p, a, ReplayConfig{Packets: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tracker := NewTracker(0)
	pool := NewPool(rt.Devices, PoolConfig{
		Shards:       4,
		DedupWindowS: rt.DedupWindowS,
		RetainCap:    16,
		OnDelivery:   func(_ int, d netserver.Delivery) { tracker.Observe(d) },
	})
	pool.Start()
	for _, up := range rt.Uplinks {
		pool.Dispatch(up)
	}
	pool.Drain()
	pool.Flush()
	pool.Close()

	if tracker.Len() == 0 {
		t.Fatal("tracker saw no deliveries")
	}
	for addr, s := range tracker.Snapshot() {
		if s.PRR() <= 0 || s.PRR() > 1 {
			t.Errorf("device %08x PRR = %v", addr, s.PRR())
		}
		if s.Received == 0 {
			t.Errorf("device %08x tracked with zero receptions", addr)
		}
	}
}
