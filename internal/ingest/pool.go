package ingest

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"eflora/internal/netserver"
)

// PoolConfig sizes a sharded ingest pool.
type PoolConfig struct {
	// Shards is the number of independent netserver.Server instances
	// (default 8). All traffic of one DevAddr maps to one shard, so
	// per-device ordering is preserved while unrelated devices never
	// contend on a lock.
	Shards int
	// QueueDepth bounds each shard's inbox (default 1024). A full inbox
	// blocks Dispatch — backpressure toward the UDP reader — instead of
	// growing without bound.
	QueueDepth int
	// DedupWindowS overrides the servers' dedup window (0 keeps the
	// netserver default).
	DedupWindowS float64
	// RetainCap bounds each shard's delivery backlog (ring semantics);
	// 0 keeps the unbounded default.
	RetainCap int
	// OnDelivery, when set, streams every finalized delivery out of the
	// owning shard. It runs on the shard worker with the shard server's
	// lock held and must not call back into the pool.
	OnDelivery func(shard int, d netserver.Delivery)
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	return c
}

// Pool fans uplinks across DevAddr-sharded netserver instances, each fed
// by a bounded FIFO inbox and drained by a dedicated worker goroutine.
// The shard — not a global server mutex — is the unit of concurrency.
type Pool struct {
	cfg      PoolConfig
	shards   []*shard
	inflight atomic.Int64
	wg       sync.WaitGroup
	closed   atomic.Bool
}

type shard struct {
	srv   *netserver.Server
	inbox chan queued
	depth atomic.Int64
	hist  latencyHist
	// maxSeenS is the newest uplink timestamp the shard has processed —
	// the replay clock for virtual-time flushing (math.Float64bits).
	maxSeenS atomic.Uint64
}

type queued struct {
	up  netserver.Uplink
	enq time.Time
}

// ShardOf maps a DevAddr to its shard index (Fibonacci hashing so dense
// sequential DevAddr spaces still spread evenly).
func ShardOf(devAddr uint32, shards int) int {
	return int((uint64(devAddr) * 0x9E3779B97F4A7C15 >> 32) % uint64(shards))
}

// NewPool provisions the devices across cfg.Shards servers. Start must be
// called before Dispatch.
func NewPool(devices []netserver.Device, cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	perShard := make([][]netserver.Device, cfg.Shards)
	for _, d := range devices {
		k := ShardOf(d.DevAddr, cfg.Shards)
		perShard[k] = append(perShard[k], d)
	}
	for k := range p.shards {
		sh := &shard{
			srv:   netserver.New(perShard[k]),
			inbox: make(chan queued, cfg.QueueDepth),
		}
		if cfg.DedupWindowS > 0 {
			sh.srv.DedupWindowS = cfg.DedupWindowS
		}
		if cfg.RetainCap > 0 || cfg.OnDelivery != nil {
			k := k
			var drain func(netserver.Delivery)
			if cfg.OnDelivery != nil {
				drain = func(d netserver.Delivery) { cfg.OnDelivery(k, d) }
			}
			sh.srv.SetRetention(cfg.RetainCap, drain)
		}
		p.shards[k] = sh
	}
	return p
}

// Start launches one worker per shard.
func (p *Pool) Start() {
	for _, sh := range p.shards {
		p.wg.Add(1)
		go p.work(sh)
	}
}

func (p *Pool) work(sh *shard) {
	defer p.wg.Done()
	for q := range sh.inbox {
		_ = sh.srv.HandleUplink(q.up)
		if ts := q.up.ReceivedAtS; ts > floatFromBits(sh.maxSeenS.Load()) {
			sh.maxSeenS.Store(floatToBits(ts))
		}
		sh.hist.observe(time.Since(q.enq))
		sh.depth.Add(-1)
		p.inflight.Add(-1)
	}
}

// Dispatch routes one gateway reception to its device's shard, blocking
// when that shard's inbox is full (backpressure). Runt payloads that
// carry no DevAddr go to shard 0, whose server rejects and counts them.
func (p *Pool) Dispatch(up netserver.Uplink) {
	k := 0
	if len(up.PHYPayload) >= 5 {
		devAddr := uint32(up.PHYPayload[1]) | uint32(up.PHYPayload[2])<<8 |
			uint32(up.PHYPayload[3])<<16 | uint32(up.PHYPayload[4])<<24
		k = ShardOf(devAddr, len(p.shards))
	}
	sh := p.shards[k]
	p.inflight.Add(1)
	sh.depth.Add(1)
	//eflora:blocking-ok bounded backpressure is the documented contract: the inbox caps at QueueDepth and a full shard must stall the UDP reader, not grow without bound
	sh.inbox <- queued{up: up, enq: time.Now()}
}

// Drain blocks until every dispatched uplink has been processed.
func (p *Pool) Drain() {
	for p.inflight.Load() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
}

// Close stops the workers after the inboxes empty. Dispatch must not be
// called after Close.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for _, sh := range p.shards {
		close(sh.inbox)
	}
	p.wg.Wait()
}

// FlushExpired runs the clock-driven dedup flush on every shard and
// returns the number of deliveries finalized. nowS is the server
// timescale: wall-clock seconds for live traffic, virtual trace time for
// replays.
func (p *Pool) FlushExpired(nowS float64) int {
	n := 0
	for _, sh := range p.shards {
		n += sh.srv.FlushExpired(nowS)
	}
	return n
}

// FlushExpiredVirtual flushes each shard against its own newest-seen
// uplink timestamp — the replay-mode clock, where trace time advances
// only as packets are processed.
func (p *Pool) FlushExpiredVirtual() int {
	n := 0
	for _, sh := range p.shards {
		n += sh.srv.FlushExpired(floatFromBits(sh.maxSeenS.Load()))
	}
	return n
}

// Flush finalizes every pending frame on every shard.
func (p *Pool) Flush() {
	for _, sh := range p.shards {
		sh.srv.Flush()
	}
}

// Counters aggregates the shard servers' accounting.
func (p *Pool) Counters() netserver.Counters {
	var c netserver.Counters
	for _, sh := range p.shards {
		c.Add(sh.srv.Counters())
	}
	return c
}

// ShardDepths reports each shard's current inbox occupancy.
func (p *Pool) ShardDepths() []int {
	out := make([]int, len(p.shards))
	for k, sh := range p.shards {
		out[k] = int(sh.depth.Load())
	}
	return out
}

// PendingCounts reports each shard's open dedup windows.
func (p *Pool) PendingCounts() []int {
	out := make([]int, len(p.shards))
	for k, sh := range p.shards {
		out[k] = sh.srv.PendingCount()
	}
	return out
}

// Shard exposes shard k's server (tests, per-shard inspection).
func (p *Pool) Shard(k int) *netserver.Server { return p.shards[k].srv }

// Shards returns the shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// LatencyQuantile reports the q-quantile (0 < q <= 1) of ingest latency —
// enqueue to handled — across all shards. ok is false before any uplink
// has been processed.
func (p *Pool) LatencyQuantile(q float64) (time.Duration, bool) {
	var merged latencyHist
	for _, sh := range p.shards {
		merged.merge(&sh.hist)
	}
	return merged.quantile(q)
}

// latencyHist is a lock-free power-of-two-bucketed latency histogram:
// bucket i counts observations with nanoseconds in [2^(i-1), 2^i).
type latencyHist struct {
	buckets [40]atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
}

func (h *latencyHist) merge(other *latencyHist) {
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func (h *latencyHist) quantile(q float64) (time.Duration, bool) {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0, false
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > rank {
			return time.Duration(uint64(1) << uint(i)), true
		}
	}
	return time.Duration(uint64(1) << uint(len(h.buckets)-1)), true
}

// Non-negative IEEE 754 floats order like their bit patterns, so the
// timestamp high-water mark can live in an atomic.Uint64.
func floatToBits(f float64) uint64 {
	if f < 0 {
		return 0
	}
	return math.Float64bits(f)
}

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
