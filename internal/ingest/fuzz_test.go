package ingest

import (
	"reflect"
	"testing"
)

// FuzzSemtechPushData feeds arbitrary datagrams to the packet-forwarder
// codec. Any input may be rejected, but none may panic; inputs that decode
// must satisfy the protocol invariants, acknowledge with a token-echoing
// ACK, and survive an encode/decode round trip losslessly.
func FuzzSemtechPushData(f *testing.F) {
	eui := [8]byte{0xAA, 0x55, 1, 2, 3, 4, 5, 6}
	valid, err := EncodePushData(0xBEEF, eui, []RXPK{{
		Tmst: 123456, Freq: 868.1, Chan: 2, RFCh: 0, Stat: 1,
		Modu: "LORA", Datr: "SF7BW125", Codr: "4/7",
		RSSI: -102, LSNR: 5.5, Size: 4, Data: "3q2+7w==",
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(EncodePullData(0x1234, eui))
	f.Add([]byte{ProtocolVersion, 0, 0, PushData})                                                         // missing EUI
	f.Add([]byte{1, 0, 0, PushData, 0, 0, 0, 0, 0, 0, 0, 0})                                               // wrong version
	f.Add(append([]byte{ProtocolVersion, 9, 9, PushData, 0, 0, 0, 0, 0, 0, 0, 0}, []byte(`{"rxpk":[`)...)) // bad JSON
	f.Add(append([]byte{ProtocolVersion, 1, 0, TxAck, 1, 2, 3, 4, 5, 6, 7, 8}, []byte(`{"txpk_ack":{}}`)...))

	// One scratch shared across all inputs: the scratch decoder must agree
	// with the fresh-storage path no matter what state earlier datagrams
	// left behind.
	var scratch ParseScratch
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePacket(data)
		ps, errS := DecodePacketInto(data, &scratch)
		if (err == nil) != (errS == nil) {
			t.Fatalf("scratch decode disagrees: fresh err=%v, scratch err=%v", err, errS)
		}
		if err != nil {
			if p != nil || ps != nil {
				t.Fatalf("non-nil packet alongside error %v", err)
			}
			return
		}
		if ps.Version != p.Version || ps.Token != p.Token || ps.Kind != p.Kind ||
			ps.EUI != p.EUI || ps.TxAckErr != p.TxAckErr || len(ps.RXPK) != len(p.RXPK) ||
			(len(p.RXPK) > 0 && !reflect.DeepEqual(ps.RXPK, p.RXPK)) {
			t.Fatalf("scratch decode diverges:\nfresh   %+v\nscratch %+v", p, ps)
		}
		if p.Version != ProtocolVersion {
			t.Fatalf("decoded version %d", p.Version)
		}
		switch p.Kind {
		case PushData, PullData, TxAck:
		default:
			t.Fatalf("decoded unexpected kind %#02x", p.Kind)
		}
		if ack, ok := p.Ack(); ok {
			if len(ack) != 4 || ack[0] != ProtocolVersion {
				t.Fatalf("malformed ack % x", ack)
			}
			if tok := uint16(ack[1]) | uint16(ack[2])<<8; tok != p.Token {
				t.Fatalf("ack token %#04x, want %#04x", tok, p.Token)
			}
		} else if p.Kind != TxAck {
			t.Fatalf("kind %#02x not acknowledged", p.Kind)
		}
		if p.Kind != PushData {
			return
		}
		// Re-encoding the decoded uplinks and decoding again must be
		// lossless: same token, gateway and rxpk fields.
		re, err := EncodePushData(p.Token, p.EUI, p.RXPK)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		p2, err := DecodePacket(re)
		if err != nil {
			t.Fatalf("decode of re-encoded PUSH_DATA: %v", err)
		}
		// nil and empty RXPK are the same protocol state (no uplinks):
		// omitempty drops an empty list on encode, so compare by content.
		if p2.Token != p.Token || p2.EUI != p.EUI || len(p2.RXPK) != len(p.RXPK) ||
			(len(p.RXPK) > 0 && !reflect.DeepEqual(p2.RXPK, p.RXPK)) {
			t.Fatalf("round trip changed packet:\n was %+v\n now %+v", p, p2)
		}
	})
}

// FuzzTXPK feeds arbitrary downstream datagrams to the PULL_RESP/TXPK
// codec. Any input may be rejected, but none may panic; a PULL_RESP that
// decodes must carry a TXPK and survive an encode/decode round trip
// losslessly, token included.
func FuzzTXPK(f *testing.F) {
	valid, err := EncodePullResp(0xBEEF, &TXPK{
		Tmst: 5_000_000, Freq: 869.525, RFCh: 0, Powe: 14,
		Modu: "LORA", Datr: "SF12BW125", Codr: "4/7", IPol: true,
		Size: 4, Data: "3q2+7w==",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{ProtocolVersion, 0x34, 0x12, PushAck})
	f.Add([]byte{ProtocolVersion, 0x34, 0x12, PullAck})
	f.Add([]byte{ProtocolVersion, 0, 0, PullResp})                                   // missing body
	f.Add(append([]byte{ProtocolVersion, 9, 9, PullResp}, []byte(`{"txpk":{`)...))   // bad JSON
	f.Add(append([]byte{ProtocolVersion, 9, 9, PullResp}, []byte(`{"tXpk":{}}`)...)) // ambiguous key
	f.Add(append([]byte{ProtocolVersion, 0, 1, PullResp}, []byte(`{"txpk":{"imme":true,"freq":868.1,"rfch":0,"modu":"LORA","datr":"SF7BW125","codr":"4/5","size":0,"data":""}}`)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeDownstream(data)
		if err != nil {
			if p != nil {
				t.Fatalf("non-nil packet alongside error %v", err)
			}
			return
		}
		if p.Version != ProtocolVersion {
			t.Fatalf("decoded version %d", p.Version)
		}
		switch p.Kind {
		case PushAck, PullAck:
			return
		case PullResp:
		default:
			t.Fatalf("decoded unexpected kind %#02x", p.Kind)
		}
		if p.TXPK == nil {
			t.Fatal("PULL_RESP without TXPK")
		}
		re, err := EncodePullResp(p.Token, p.TXPK)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		p2, err := DecodeDownstream(re)
		if err != nil {
			t.Fatalf("decode of re-encoded PULL_RESP: %v", err)
		}
		if p2.Token != p.Token || p2.TXPK == nil || *p2.TXPK != *p.TXPK {
			t.Fatalf("round trip changed packet:\n was %+v\n now %+v", p, p2)
		}
	})
}

// FuzzParseDatr checks the datarate identifier parser never panics and
// that accepted identifiers round-trip through Datr for the canonical
// spelling.
func FuzzParseDatr(f *testing.F) {
	for _, s := range []string{"SF7BW125", "SF12BW500", "SF6BW125", "BW125", "SFxBW1", "SF9BW0", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sf, bw, err := ParseDatr(s)
		if err != nil {
			return
		}
		if !sf.Valid() || bw <= 0 {
			t.Fatalf("ParseDatr(%q) accepted sf=%d bw=%v", s, sf, bw)
		}
		if sf2, bw2, err := ParseDatr(Datr(sf, bw)); err != nil || sf2 != sf {
			t.Fatalf("canonical %q re-parse: sf=%d bw=%v err=%v", Datr(sf, bw), sf2, bw2, err)
		}
	})
}
