package ingest

import (
	"sync"

	"eflora/internal/netserver"
)

// DevStats is one device's rolling link-quality view, built from the
// delivery stream: SNR is an EWMA over the best gateway copy of each
// delivery, PRR is inferred from FCnt gaps (a jump of k counters means
// k-1 transmissions the network never heard).
type DevStats struct {
	// EwmaSNRdB is the exponentially weighted best-copy SNR.
	EwmaSNRdB float64
	// LastFCnt is the newest delivered counter.
	LastFCnt uint32
	// Received counts deliveries observed; Expected additionally counts
	// the FCnt gaps, so Received/Expected estimates the PRR.
	Received, Expected uint64
	// BestGateway is the most recent delivery's best-SNR gateway.
	BestGateway int
}

// PRR returns the received/expected packet reception ratio (1 before any
// observation).
func (s DevStats) PRR() float64 {
	if s.Expected == 0 {
		return 1
	}
	return float64(s.Received) / float64(s.Expected)
}

// Tracker maintains rolling DevStats per device. It is safe for
// concurrent use: shard workers call Observe from the delivery drain
// while the re-allocation loop snapshots.
type Tracker struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; higher reacts faster
	// (default 0.25).
	alpha float64

	mu sync.Mutex
	m  map[uint32]*DevStats
}

// NewTracker creates a tracker with EWMA factor alpha (0 picks the 0.25
// default).
func NewTracker(alpha float64) *Tracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	return &Tracker{alpha: alpha, m: make(map[uint32]*DevStats)}
}

// Observe folds one delivery into the device's rolling statistics.
func (t *Tracker) Observe(d netserver.Delivery) {
	if len(d.Gateways) == 0 {
		return
	}
	best := d.Gateways[0]
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[d.DevAddr]
	if !ok {
		t.m[d.DevAddr] = &DevStats{
			EwmaSNRdB:   best.SNRdB,
			LastFCnt:    d.FCnt,
			Received:    1,
			Expected:    1,
			BestGateway: best.Gateway,
		}
		return
	}
	s.EwmaSNRdB += t.alpha * (best.SNRdB - s.EwmaSNRdB)
	s.Received++
	if d.FCnt > s.LastFCnt {
		s.Expected += uint64(d.FCnt - s.LastFCnt)
		s.LastFCnt = d.FCnt
	} else {
		// Out-of-order or restarted counter: count the packet, assume no
		// gap.
		s.Expected++
	}
	s.BestGateway = best.Gateway
}

// Get returns device devAddr's stats (ok false if never observed).
func (t *Tracker) Get(devAddr uint32) (DevStats, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[devAddr]
	if !ok {
		return DevStats{}, false
	}
	return *s, true
}

// Snapshot copies every device's stats.
func (t *Tracker) Snapshot() map[uint32]DevStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint32]DevStats, len(t.m))
	for a, s := range t.m {
		out[a] = *s
	}
	return out
}

// Reset forgets device devAddr's history — called after a re-allocation
// so stale pre-move statistics cannot immediately re-trigger the drift
// detector.
func (t *Tracker) Reset(devAddr uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, devAddr)
}

// Len reports how many devices have been observed.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
