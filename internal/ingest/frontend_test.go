package ingest

import (
	"testing"

	"eflora/internal/engine"
	"eflora/internal/lora"
)

// feRXPK builds a strong EU868 channel-0 SF7 frame.
func feRXPK(freqMHz, rssiDBm float64, datr string) RXPK {
	return RXPK{Freq: freqMHz, Datr: datr, Codr: "4/7", RSSI: rssiDBm, Size: 20, Stat: 1, Modu: "LORA"}
}

func TestFrontendCountsOverlapCollisions(t *testing.T) {
	f := NewFrontend(FrontendConfig{Plan: lora.EU868(), CaptureDB: -1}) // both-die rule
	rx := feRXPK(868.1, -60, "SF7BW125")
	if v, ok := f.Observe(0, &rx, 0); !ok || v != engine.VerdictLocked {
		t.Fatalf("first frame: verdict=%v ok=%v", v, ok)
	}
	// Same channel, same SF, overlapping in time (SF7/20B is ~tens of ms).
	if v, ok := f.Observe(0, &rx, 0.01); !ok || v != engine.VerdictLocked {
		t.Fatalf("second frame: verdict=%v ok=%v", v, ok)
	}
	f.Advance(10) // both frames long over
	c := f.Counters()
	if c.CollisionLosses != 2 {
		t.Errorf("collision losses = %d, want 2 (both-die rule)", c.CollisionLosses)
	}

	// A different gateway is an independent receiver.
	rx2 := feRXPK(868.3, -60, "SF7BW125")
	f.Observe(1, &rx2, 20)
	f.Advance(30)
	if got := f.Counters().CollisionLosses; got != 2 {
		t.Errorf("clean frame at another gateway changed collisions: %d", got)
	}
}

func TestFrontendSensitivityAndCapacity(t *testing.T) {
	f := NewFrontend(FrontendConfig{Plan: lora.EU868(), Capacity: 2})
	weak := feRXPK(868.1, -150, "SF7BW125") // below SF7 sensitivity
	if v, _ := f.Observe(0, &weak, 0); v != engine.VerdictNoSignal {
		t.Fatalf("weak frame verdict = %v, want no-signal", v)
	}
	// Fill both demodulators on distinct channels, then overflow.
	ch0 := feRXPK(868.1, -60, "SF12BW125") // long air time keeps them locked
	ch1 := feRXPK(868.3, -60, "SF12BW125")
	ch2 := feRXPK(868.5, -60, "SF12BW125")
	f.Observe(0, &ch0, 1)
	f.Observe(0, &ch1, 1.01)
	if v, _ := f.Observe(0, &ch2, 1.02); v != engine.VerdictNoCapacity {
		t.Fatalf("third concurrent frame verdict = %v, want no-capacity", v)
	}
	c := f.Counters()
	if c.SensitivityMisses != 1 || c.CapacityDrops != 1 {
		t.Errorf("counters = %+v, want 1 sensitivity miss and 1 capacity drop", c)
	}
}

func TestFrontendUnknownChannelAndBadDatr(t *testing.T) {
	f := NewFrontend(FrontendConfig{Plan: lora.EU868()})
	off := feRXPK(915.0, -60, "SF7BW125") // not an EU868 uplink frequency
	if _, ok := f.Observe(0, &off, 0); !ok {
		t.Fatal("off-plan frequency should still be observed")
	}
	bad := feRXPK(868.1, -60, "garbage")
	if _, ok := f.Observe(0, &bad, 1); ok {
		t.Fatal("unparsable datr should be rejected")
	}
	c := f.Counters()
	if c.UnknownChannel != 1 || c.BadDatr != 1 {
		t.Errorf("counters = %+v, want 1 unknown channel and 1 bad datr", c)
	}
}

// TestChannelTableResolvesPlan pins the flat channel table against the
// plan it was built from: every uplink channel resolves to its own index
// and off-plan frequencies miss.
func TestChannelTableResolvesPlan(t *testing.T) {
	plan := lora.EU868()
	f := NewFrontend(FrontendConfig{Plan: plan})
	for _, ch := range plan.Uplink {
		idx, ok := f.channel(ch.CenterHz / 1e6)
		if !ok || idx != ch.Index {
			t.Errorf("channel(%g MHz) = %d, %v; want %d", ch.CenterHz/1e6, idx, ok, ch.Index)
		}
	}
	if idx, ok := f.channel(915.0); ok {
		t.Errorf("off-plan 915.0 MHz resolved to channel %d", idx)
	}
}

// TestObserveAllocBudget enforces the live-path half of the zero-alloc
// claim: once the gateway table, engine arenas and Done buffers are warm,
// Observe — datarate parse, channel lookup, clock clamp, engine arrival —
// allocates nothing per frame.
func TestObserveAllocBudget(t *testing.T) {
	f := NewFrontend(FrontendConfig{Plan: lora.EU868()})
	rx := feRXPK(868.1, -60, "SF7BW125")
	at := 0.0
	for i := 0; i < 32; i++ { // warm the arenas to high-water
		at++
		f.Observe(0, &rx, at)
	}
	avg := testing.AllocsPerRun(200, func() {
		at++ // spaced far past time-on-air: the active list stays bounded
		if _, ok := f.Observe(0, &rx, at); !ok {
			t.Fatal("warm frame rejected")
		}
	})
	if avg != 0 {
		t.Errorf("warm Observe allocates %v per frame, want 0", avg)
	}
}

func BenchmarkFrontendObserve(b *testing.B) {
	f := NewFrontend(FrontendConfig{Plan: lora.EU868()})
	rx := feRXPK(868.1, -60, "SF7BW125")
	at := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at++
		f.Observe(0, &rx, at)
	}
}

func TestFrontendClampsClockRegressions(t *testing.T) {
	f := NewFrontend(FrontendConfig{Plan: lora.EU868()})
	rx := feRXPK(868.1, -60, "SF7BW125")
	f.Observe(0, &rx, 5)
	// A reordered frame with an earlier arrival time must not violate the
	// engine's nondecreasing-time contract (it is clamped to 5).
	if v, ok := f.Observe(0, &rx, 4); !ok || v != engine.VerdictLocked {
		t.Fatalf("reordered frame: verdict=%v ok=%v", v, ok)
	}
	f.Advance(10)
	if got := f.Counters().CollisionLosses; got != 2 {
		t.Errorf("clamped overlap should collide: losses = %d, want 2", got)
	}
}
