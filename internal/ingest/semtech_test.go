package ingest

import (
	"bytes"
	"encoding/base64"
	"testing"

	"eflora/internal/lora"
)

func TestPushDataRoundTrip(t *testing.T) {
	eui := [8]byte{0xAA, 1, 2, 3, 4, 5, 6, 0xBB}
	phy := []byte{0x40, 1, 0, 0, 0, 0, 1, 0, 1, 9, 9, 9, 9, 1, 2, 3, 4}
	rx := RXPK{
		Tmst: 123456, Freq: 868.1, Chan: 2, RFCh: 0, Stat: 1,
		Modu: "LORA", Datr: "SF9BW125", Codr: "4/7",
		RSSI: -101, LSNR: -3.5, Size: len(phy),
		Data: base64.StdEncoding.EncodeToString(phy),
	}
	buf, err := EncodePushData(0x1234, eui, []RXPK{rx})
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PushData || p.Token != 0x1234 || p.EUI != eui {
		t.Fatalf("decoded header = %+v", p)
	}
	if len(p.RXPK) != 1 {
		t.Fatalf("rxpk = %d, want 1", len(p.RXPK))
	}
	got, err := p.RXPK[0].Payload()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, phy) {
		t.Errorf("payload = %x, want %x", got, phy)
	}
	if p.RXPK[0].LSNR != -3.5 || p.RXPK[0].Datr != "SF9BW125" {
		t.Errorf("metadata = %+v", p.RXPK[0])
	}
	ack, ok := p.Ack()
	if !ok || !bytes.Equal(ack, []byte{2, 0x34, 0x12, PushAck}) {
		t.Errorf("push ack = %x", ack)
	}
}

func TestPullDataAck(t *testing.T) {
	eui := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	p, err := DecodePacket(EncodePullData(7, eui))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PullData || p.EUI != eui {
		t.Fatalf("decoded = %+v", p)
	}
	ack, ok := p.Ack()
	if !ok || !bytes.Equal(ack, []byte{2, 7, 0, PullAck}) {
		t.Errorf("pull ack = %x", ack)
	}
}

func TestDecodePacketErrors(t *testing.T) {
	cases := [][]byte{
		{},
		{2, 0, 0}, // too short
		{1, 0, 0, PushData, 1, 2, 3, 4, 5, 6, 7, 8}, // wrong version
		{2, 0, 0, PullResp, 1, 2, 3, 4, 5, 6, 7, 8}, // downstream kind
		{2, 0, 0, PushData, 1, 2, 3},                // missing EUI
		append([]byte{2, 0, 0, PushData, 1, 2, 3, 4, 5, 6, 7, 8}, []byte("{not json")...),
	}
	for i, buf := range cases {
		if _, err := DecodePacket(buf); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseDatr(t *testing.T) {
	sf, bw, err := ParseDatr("SF7BW125")
	if err != nil || sf != lora.SF7 || bw != 125e3 {
		t.Errorf("SF7BW125 -> %v/%v/%v", sf, bw, err)
	}
	sf, bw, err = ParseDatr("SF12BW500")
	if err != nil || sf != lora.SF12 || bw != 500e3 {
		t.Errorf("SF12BW500 -> %v/%v/%v", sf, bw, err)
	}
	for _, bad := range []string{"", "SF7", "BW125", "SFxBW125", "SF99BW125", "SF7BWx"} {
		if _, _, err := ParseDatr(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if got := Datr(lora.SF8, 125e3); got != "SF8BW125" {
		t.Errorf("Datr = %q", got)
	}
}

func TestRXPKPayloadSizeMismatch(t *testing.T) {
	rx := RXPK{Size: 3, Data: base64.StdEncoding.EncodeToString([]byte{1, 2})}
	if _, err := rx.Payload(); err == nil {
		t.Error("size mismatch accepted")
	}
	rx = RXPK{Data: "!!!"}
	if _, err := rx.Payload(); err == nil {
		t.Error("bad base64 accepted")
	}
}
