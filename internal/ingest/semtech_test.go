package ingest

import (
	"bytes"
	"encoding/base64"
	"testing"

	"eflora/internal/lora"
)

func TestPushDataRoundTrip(t *testing.T) {
	eui := [8]byte{0xAA, 1, 2, 3, 4, 5, 6, 0xBB}
	phy := []byte{0x40, 1, 0, 0, 0, 0, 1, 0, 1, 9, 9, 9, 9, 1, 2, 3, 4}
	rx := RXPK{
		Tmst: 123456, Freq: 868.1, Chan: 2, RFCh: 0, Stat: 1,
		Modu: "LORA", Datr: "SF9BW125", Codr: "4/7",
		RSSI: -101, LSNR: -3.5, Size: len(phy),
		Data: base64.StdEncoding.EncodeToString(phy),
	}
	buf, err := EncodePushData(0x1234, eui, []RXPK{rx})
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PushData || p.Token != 0x1234 || p.EUI != eui {
		t.Fatalf("decoded header = %+v", p)
	}
	if len(p.RXPK) != 1 {
		t.Fatalf("rxpk = %d, want 1", len(p.RXPK))
	}
	got, err := p.RXPK[0].Payload()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, phy) {
		t.Errorf("payload = %x, want %x", got, phy)
	}
	if p.RXPK[0].LSNR != -3.5 || p.RXPK[0].Datr != "SF9BW125" {
		t.Errorf("metadata = %+v", p.RXPK[0])
	}
	ack, ok := p.Ack()
	if !ok || !bytes.Equal(ack, []byte{2, 0x34, 0x12, PushAck}) {
		t.Errorf("push ack = %x", ack)
	}
}

func TestPullDataAck(t *testing.T) {
	eui := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	p, err := DecodePacket(EncodePullData(7, eui))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PullData || p.EUI != eui {
		t.Fatalf("decoded = %+v", p)
	}
	ack, ok := p.Ack()
	if !ok || !bytes.Equal(ack, []byte{2, 7, 0, PullAck}) {
		t.Errorf("pull ack = %x", ack)
	}
}

func TestDecodePacketErrors(t *testing.T) {
	cases := [][]byte{
		{},
		{2, 0, 0}, // too short
		{1, 0, 0, PushData, 1, 2, 3, 4, 5, 6, 7, 8}, // wrong version
		{2, 0, 0, PullResp, 1, 2, 3, 4, 5, 6, 7, 8}, // downstream kind
		{2, 0, 0, PushData, 1, 2, 3},                // missing EUI
		append([]byte{2, 0, 0, PushData, 1, 2, 3, 4, 5, 6, 7, 8}, []byte("{not json")...),
	}
	for i, buf := range cases {
		if _, err := DecodePacket(buf); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseDatr(t *testing.T) {
	sf, bw, err := ParseDatr("SF7BW125")
	if err != nil || sf != lora.SF7 || bw != 125e3 {
		t.Errorf("SF7BW125 -> %v/%v/%v", sf, bw, err)
	}
	sf, bw, err = ParseDatr("SF12BW500")
	if err != nil || sf != lora.SF12 || bw != 500e3 {
		t.Errorf("SF12BW500 -> %v/%v/%v", sf, bw, err)
	}
	for _, bad := range []string{"", "SF7", "BW125", "SFxBW125", "SF99BW125", "SF7BWx"} {
		if _, _, err := ParseDatr(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if got := Datr(lora.SF8, 125e3); got != "SF8BW125" {
		t.Errorf("Datr = %q", got)
	}
}

func TestPullRespRoundTrip(t *testing.T) {
	phy := []byte{0x60, 1, 0, 0, 0, 0, 1, 0, 0, 3, 0x52, 0x04, 0x00, 9, 9, 9, 9}
	tx := TXPK{
		Tmst: 5_000_000, Freq: 868.3, RFCh: 0, Powe: 14,
		Modu: "LORA", Datr: "SF9BW125", Codr: "4/7", IPol: true,
	}
	tx.SetPayload(phy)
	buf, err := EncodePullResp(0xCAFE, &tx)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeDownstream(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PullResp || p.Token != 0xCAFE || p.TXPK == nil {
		t.Fatalf("decoded = %+v", p)
	}
	if *p.TXPK != tx {
		t.Errorf("txpk round trip:\n was %+v\n now %+v", tx, *p.TXPK)
	}
	got, err := p.TXPK.Payload()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, phy) {
		t.Errorf("payload = %x, want %x", got, phy)
	}
	// PULL_RESP is not acknowledged with an ACK packet (TX_ACK is separate).
	if _, ok := p.Ack(); ok {
		t.Error("PULL_RESP produced an ack")
	}
}

func TestDecodeDownstreamAcks(t *testing.T) {
	for _, kind := range []byte{PushAck, PullAck} {
		p, err := DecodeDownstream([]byte{2, 0x21, 0x43, kind})
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != kind || p.Token != 0x4321 {
			t.Errorf("decoded = %+v", p)
		}
	}
	cases := [][]byte{
		{},
		{2, 0, 0},                     // too short
		{1, 0, 0, PullResp, '{', '}'}, // wrong version
		{2, 0, 0, PushData},           // upstream kind
		append([]byte{2, 0, 0, PullResp}, []byte("{oops")...),
	}
	for i, buf := range cases {
		if _, err := DecodeDownstream(buf); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTxAckRoundTrip(t *testing.T) {
	eui := [8]byte{0xAA, 0x55, 1, 2, 3, 4, 5, 6}

	// Explicit error body.
	buf, err := EncodeTxAck(0x0102, eui, TxErrTooLate)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != TxAck || p.Token != 0x0102 || p.EUI != eui {
		t.Fatalf("decoded = %+v", p)
	}
	if p.TxAckErr != TxErrTooLate || p.TxAckOK() {
		t.Errorf("error = %q, ok = %v", p.TxAckErr, p.TxAckOK())
	}
	// TX_ACK is never acknowledged.
	if _, ok := p.Ack(); ok {
		t.Error("TX_ACK produced an ack")
	}

	// Explicit NONE and the legacy empty body both mean success.
	for _, errStr := range []string{TxErrNone, ""} {
		buf, err := EncodeTxAck(9, eui, errStr)
		if err != nil {
			t.Fatal(err)
		}
		p, err := DecodePacket(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !p.TxAckOK() {
			t.Errorf("errStr %q decoded not-ok: %+v", errStr, p)
		}
	}
}

func TestStrictKeysRejectsAmbiguity(t *testing.T) {
	eui := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	hdr := []byte{2, 0, 0, PushData}
	mk := func(body string) []byte {
		return append(append(append([]byte{}, hdr...), eui[:]...), body...)
	}
	rejected := []string{
		`{"rXpk":[]}`,                    // the kept fuzz crasher: case-variant of a decoded field
		`{"rxpk":[{"DATR":"SF7BW125"}]}`, // nested case variant
		`{"rxpk":[],"RXPK":[]}`,          // case-folded duplicate
		`{"rxpk":[{"tmst":1,"tmst":2}]}`, // exact duplicate
		`{"brd":1,"BRD":2}`,              // duplicate of an unmodeled key
	}
	for _, body := range rejected {
		if _, err := DecodePacket(mk(body)); err == nil {
			t.Errorf("ambiguous body %s accepted", body)
		}
	}
	accepted := []string{
		`{"rxpk":[]}`,
		`{"rxpk":[{"tmst":1}],"stat":{"time":"x"}}`,
		`{"jver":1,"rxpk":[]}`, // unknown keys pass
	}
	for _, body := range accepted {
		if _, err := DecodePacket(mk(body)); err != nil {
			t.Errorf("legal body %s rejected: %v", body, err)
		}
	}
	// The same hardening guards the TX_ACK and PULL_RESP paths.
	ackBody := append(append([]byte{2, 0, 0, TxAck}, eui[:]...), []byte(`{"txpk_ack":{"Error":"NONE"}}`)...)
	if _, err := DecodePacket(ackBody); err == nil {
		t.Error("TX_ACK with case-variant key accepted")
	}
	if _, err := DecodeDownstream(append([]byte{2, 0, 0, PullResp}, []byte(`{"tXpk":{}}`)...)); err == nil {
		t.Error("PULL_RESP with case-variant key accepted")
	}
}

func TestTXPKPayloadSizeMismatch(t *testing.T) {
	tx := TXPK{Size: 3, Data: base64.StdEncoding.EncodeToString([]byte{1, 2})}
	if _, err := tx.Payload(); err == nil {
		t.Error("size mismatch accepted")
	}
	tx = TXPK{Data: "%%%"}
	if _, err := tx.Payload(); err == nil {
		t.Error("bad base64 accepted")
	}
}

func TestRXPKPayloadSizeMismatch(t *testing.T) {
	rx := RXPK{Size: 3, Data: base64.StdEncoding.EncodeToString([]byte{1, 2})}
	if _, err := rx.Payload(); err == nil {
		t.Error("size mismatch accepted")
	}
	rx = RXPK{Data: "!!!"}
	if _, err := rx.Payload(); err == nil {
		t.Error("bad base64 accepted")
	}
}

// TestDecodePacketIntoScratchReuse runs a mixed datagram sequence through
// one ParseScratch twice over and checks every decode against the
// fresh-storage DecodePacket oracle. The sequence is built to catch the
// two reuse hazards: a second PUSH_DATA whose rxpk objects omit fields
// the first one set (encoding/json would leave the stale values in the
// reused backing array), and kind switches that must not carry RXPK or
// TxAckErr across.
func TestDecodePacketIntoScratchReuse(t *testing.T) {
	eui := [8]byte{9, 8, 7, 6, 5, 4, 3, 2}
	rich, err := EncodePushData(1, eui, []RXPK{
		{Tmst: 11, Time: "2026-01-01T00:00:00Z", Freq: 868.1, Chan: 2, Stat: 1,
			Modu: "LORA", Datr: "SF7BW125", Codr: "4/7", RSSI: -80, LSNR: 3.5,
			Size: 4, Data: "3q2+7w=="},
		{Tmst: 12, Freq: 868.3, Stat: 1, Modu: "LORA", Datr: "SF9BW125",
			Codr: "4/5", RSSI: -95, Size: 4, Data: "3q2+7w=="},
	})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := EncodePushData(2, eui, []RXPK{
		{Freq: 868.5, Modu: "LORA", Datr: "SF12BW125"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ackErr, err := EncodeTxAck(3, eui, TxErrTooLate)
	if err != nil {
		t.Fatal(err)
	}
	seq := [][]byte{rich, sparse, EncodePullData(4, eui), ackErr, sparse, rich}
	var sc ParseScratch
	for round := 0; round < 2; round++ {
		for i, buf := range seq {
			want, err := DecodePacket(buf)
			if err != nil {
				t.Fatalf("round %d datagram %d: oracle: %v", round, i, err)
			}
			got, err := DecodePacketInto(buf, &sc)
			if err != nil {
				t.Fatalf("round %d datagram %d: scratch: %v", round, i, err)
			}
			if got.Version != want.Version || got.Token != want.Token ||
				got.Kind != want.Kind || got.EUI != want.EUI ||
				got.TxAckErr != want.TxAckErr {
				t.Fatalf("round %d datagram %d header:\n got %+v\nwant %+v", round, i, got, want)
			}
			if len(got.RXPK) != len(want.RXPK) {
				t.Fatalf("round %d datagram %d: %d rxpk, want %d", round, i, len(got.RXPK), len(want.RXPK))
			}
			for j := range want.RXPK {
				if got.RXPK[j] != want.RXPK[j] {
					t.Errorf("round %d datagram %d rxpk %d:\n got %+v\nwant %+v",
						round, i, j, got.RXPK[j], want.RXPK[j])
				}
			}
		}
	}
}

// TestDecodePacketIntoRejectsLikeDecodePacket pins the two entry points
// to the same acceptance set on malformed input, warm scratch included.
func TestDecodePacketIntoRejectsLikeDecodePacket(t *testing.T) {
	eui := [8]byte{1, 1, 2, 2, 3, 3, 4, 4}
	good, err := EncodePushData(9, eui, []RXPK{{Freq: 868.1, Modu: "LORA", Datr: "SF7BW125"}})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		{},
		{2, 0, 0},
		{1, 0, 0, PushData, 0, 0, 0, 0, 0, 0, 0, 0},
		{2, 0, 0, PullResp},
		append([]byte{2, 0, 0, PushData, 0, 0, 0, 0, 0, 0, 0, 0}, `{"rxpk":[`...),
		append([]byte{2, 0, 0, PushData, 0, 0, 0, 0, 0, 0, 0, 0}, `{"rXpk":[]}`...),
	}
	var sc ParseScratch
	if _, err := DecodePacketInto(good, &sc); err != nil { // warm the scratch
		t.Fatal(err)
	}
	for i, buf := range bad {
		if p, err := DecodePacketInto(buf, &sc); err == nil || p != nil {
			t.Errorf("bad datagram %d: scratch decode returned %+v, %v", i, p, err)
		}
		if p, err := DecodePacket(buf); err == nil || p != nil {
			t.Errorf("bad datagram %d: DecodePacket returned %+v, %v", i, p, err)
		}
	}
	// The scratch still decodes cleanly after every rejection.
	if _, err := DecodePacketInto(good, &sc); err != nil {
		t.Fatalf("scratch poisoned by rejected datagrams: %v", err)
	}
}

// BenchmarkDecodePushData compares the fresh-storage and scratch-reusing
// decode paths on a realistic 8-uplink PUSH_DATA datagram.
func BenchmarkDecodePushData(b *testing.B) {
	eui := [8]byte{0xAA, 0x55, 1, 2, 3, 4, 5, 6}
	rxpks := make([]RXPK, 8)
	for i := range rxpks {
		rxpks[i] = RXPK{
			Tmst: uint64(1000 * i), Freq: 868.1, Chan: i, Stat: 1,
			Modu: "LORA", Datr: "SF7BW125", Codr: "4/7",
			RSSI: -100, LSNR: 2.5, Size: 4, Data: "3q2+7w==",
		}
	}
	buf, err := EncodePushData(7, eui, rxpks)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodePacket(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var sc ParseScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodePacketInto(buf, &sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
