package ingest

import (
	"strconv"
	"strings"
	"sync"

	"eflora/internal/engine"
	"eflora/internal/lora"
)

// Frontend applies the shared receiver engine (engine.Gateway — the same
// state machine the batch and confirmed simulators drive) to live
// packet-forwarder traffic, giving the serving path the RF-contention
// accounting the dedup/delivery pipeline above it cannot see: how many
// uplinks arrived below sensitivity, overlapped a same-SF same-channel
// reception, or found every demodulator busy at each gateway.
//
// The forwarder only reports frames its gateway decoded, so the absolute
// numbers undercount the air's true contention; what the counters expose
// is the contention the reported frames experienced — the live
// counterpart of the simulator's CollisionLosses/CapacityDrops/
// SensitivityMisses, derived from identical physics.
//
// Timestamps: Observe takes the server's arrival clock. Per-gateway
// regressions (UDP reordering) are clamped to the gateway's high-water
// mark, a documented approximation that keeps the engine's nondecreasing-
// time contract without trusting the forwarder's wrapping µs counter.
type Frontend struct {
	cfg   FrontendConfig
	chTab []chEntry

	mu  sync.Mutex
	gws []feGateway
	tok int
	// unknownChannel counts frames on frequencies outside the plan (fed to
	// the engine on pseudo-channel -1); badDatr counts unparsable
	// datarates (dropped).
	unknownChannel, badDatr int
}

// chEntry maps one uplink center frequency (kHz, rounded) to its plan
// channel index. The table is flat because regional plans carry at most
// a dozen uplink channels: a linear scan over eight bytes per entry is
// cheaper than hashing the frequency on every frame and keeps the lookup
// allocation-free on the Observe hot path.
type chEntry struct {
	khz int32
	idx int32
}

// feGateway is one gateway's receiver plus its clock high-water mark.
type feGateway struct {
	eng     engine.Gateway
	hiWater float64
	done    []engine.Done
}

// FrontendConfig parameterizes the live receiver frontend.
type FrontendConfig struct {
	// Plan maps uplink center frequencies to channel indices.
	Plan lora.Plan
	// NoiseDBm is the receiver noise floor (default -117, the model's).
	NoiseDBm float64
	// Capacity is the per-gateway demodulator limit (default 8, SX1301).
	Capacity int
	// Capture enables the capture rule at CaptureDB advantage (default
	// on at 6 dB — real radios capture; set CaptureDB negative to force
	// the paper's both-die rule).
	CaptureDB float64
	// CodingRate is assumed when an RXPK carries no parsable "codr"
	// (default 4/7, the paper's).
	CodingRate lora.CodingRate
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.NoiseDBm == 0 {
		c.NoiseDBm = -117
	}
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.CaptureDB == 0 {
		c.CaptureDB = 6
	}
	if !c.CodingRate.Valid() {
		c.CodingRate = lora.CR47
	}
	return c
}

// FrontendCounters is the RF-contention accounting summed over gateways.
type FrontendCounters struct {
	CollisionLosses   int
	CapacityDrops     int
	SensitivityMisses int
	UnknownChannel    int
	BadDatr           int
}

// NewFrontend builds a frontend for the given plan.
func NewFrontend(cfg FrontendConfig) *Frontend {
	cfg = cfg.withDefaults()
	f := &Frontend{cfg: cfg, chTab: make([]chEntry, 0, len(cfg.Plan.Uplink))}
	for _, ch := range cfg.Plan.Uplink {
		f.chTab = append(f.chTab, chEntry{khz: int32(ch.CenterHz/1e3 + 0.5), idx: int32(ch.Index)})
	}
	return f
}

// channel resolves a center frequency (MHz) to its plan channel index.
//
//eflora:hotpath
func (f *Frontend) channel(freqMHz float64) (int, bool) {
	khz := int32(freqMHz*1e3 + 0.5)
	for _, e := range f.chTab {
		if e.khz == khz {
			return int(e.idx), true
		}
	}
	return 0, false
}

// engineConfig assembles the engine parameters once per new gateway.
func (f *Frontend) engineConfig() engine.Config {
	return engine.Config{
		Capture:    f.cfg.CaptureDB >= 0,
		CaptureLin: lora.DBToLinear(f.cfg.CaptureDB),
		Capacity:   f.cfg.Capacity,
		NoiseMW:    lora.DBmToMilliwatts(f.cfg.NoiseDBm),
		Thresholds: engine.NewThresholds(),
	}
}

// gateway returns gateway gw's receiver, growing the table on first sight.
func (f *Frontend) gateway(gw int) *feGateway {
	for len(f.gws) <= gw {
		f.gws = append(f.gws, feGateway{})
		f.gws[len(f.gws)-1].eng.Reset(f.engineConfig())
	}
	return &f.gws[gw]
}

// parseCodr turns "4/7" into lora.CR47; ok is false otherwise.
func parseCodr(codr string) (lora.CodingRate, bool) {
	den, found := strings.CutPrefix(codr, "4/")
	if !found {
		return 0, false
	}
	v, err := strconv.Atoi(den)
	if err != nil || !lora.CodingRate(v).Valid() {
		return 0, false
	}
	return lora.CodingRate(v), true
}

// Observe feeds one reported uplink frame through gateway gw's receiver
// at server arrival time atS (seconds, any fixed epoch) and returns the
// arrival verdict. ok is false when the frame's datarate is unparsable
// and nothing was fed. Safe for concurrent use.
//
// Warm calls are allocation-free (pinned by TestObserveAllocBudget): the
// datarate and coding-rate parsers work on string slices in place, the
// channel lookup scans the flat table, and the gateway's engine and Done
// buffers are arenas that grow to high-water and stay.
//
//eflora:hotpath
func (f *Frontend) Observe(gw int, rx *RXPK, atS float64) (engine.Verdict, bool) {
	sf, bwHz, err := ParseDatr(rx.Datr)
	if err != nil {
		f.mu.Lock()
		f.badDatr++
		f.mu.Unlock()
		return 0, false
	}
	cr := f.cfg.CodingRate
	if c, ok := parseCodr(rx.Codr); ok {
		cr = c
	}
	size := rx.Size
	if size <= 0 {
		size = 1
	}
	toa := lora.TimeOnAir(size, sf, bwHz, cr)

	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.channel(rx.Freq)
	if !ok {
		ch = -1
		f.unknownChannel++
	}
	g := f.gateway(gw)
	start := atS
	if start < g.hiWater {
		start = g.hiWater
	}
	g.hiWater = start
	g.done = g.eng.FinishUpTo(start, g.done[:0])
	tok := f.tok
	f.tok++
	// Each frame gets a unique device token: a real device cannot overlap
	// itself on air, so the engine's same-device exemption never applies
	// to live traffic.
	return g.eng.Arrive(tok, tok, sf, ch, start, start+toa, lora.DBmToMilliwatts(rx.RSSI)), true
}

// Advance raises every gateway's clock to atS (if ahead of its last
// frame) and completes receptions that ended by then — the idle-time tick
// that settles verdicts when no traffic arrives.
func (f *Frontend) Advance(atS float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k := range f.gws {
		g := &f.gws[k]
		if atS > g.hiWater {
			g.hiWater = atS
		}
		g.done = g.eng.FinishUpTo(g.hiWater, g.done[:0])
	}
}

// Counters sums the contention accounting over all gateways, flushing
// every in-flight reception first so completed collisions are counted.
func (f *Frontend) Counters() FrontendCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := FrontendCounters{UnknownChannel: f.unknownChannel, BadDatr: f.badDatr}
	for k := range f.gws {
		g := &f.gws[k]
		g.done = g.eng.FinishUpTo(g.hiWater, g.done[:0])
		cc := g.eng.Counters
		c.CollisionLosses += cc.CollisionLosses
		c.CapacityDrops += cc.CapacityDrops
		c.SensitivityMisses += cc.SensitivityMisses
	}
	return c
}
