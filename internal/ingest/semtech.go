// Package ingest is the online half of the network server: it speaks the
// Semtech UDP packet-forwarder protocol to real (or replayed) gateways,
// fans decoded uplinks across a DevAddr-sharded pool of netserver.Server
// instances, flushes dedup windows on the clock, maintains rolling
// per-device link statistics, and periodically hands drifting devices to
// alloc.Incremental for online re-allocation.
package ingest

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"eflora/internal/lora"
)

// Semtech packet-forwarder protocol (v2) packet identifiers.
const (
	PushData byte = 0x00 // gateway -> server, JSON rxpk/stat payload
	PushAck  byte = 0x01 // server -> gateway
	PullData byte = 0x02 // gateway -> server, keepalive / downlink route
	PullResp byte = 0x03 // server -> gateway, txpk payload
	PullAck  byte = 0x04 // server -> gateway
	TxAck    byte = 0x05 // gateway -> server, downlink result
)

// ProtocolVersion is the packet-forwarder protocol version this codec
// implements.
const ProtocolVersion = 2

// headerLen is version (1) + token (2) + identifier (1); data packets add
// the 8-byte gateway EUI.
const headerLen = 4

// RXPK is one received uplink in a PUSH_DATA JSON payload, mirroring the
// packet forwarder's field names.
type RXPK struct {
	// Tmst is the gateway's internal microsecond counter at RX.
	Tmst uint64 `json:"tmst"`
	// Time is the optional ISO 8601 UTC RX time.
	Time string `json:"time,omitempty"`
	// Freq is the center frequency in MHz.
	Freq float64 `json:"freq"`
	// Chan and RFCh are the concentrator IF and RF chain indices.
	Chan int `json:"chan"`
	RFCh int `json:"rfch"`
	// Stat is the CRC status: 1 = OK, -1 = fail, 0 = no CRC.
	Stat int `json:"stat"`
	// Modu is "LORA" (or "FSK", which this server ignores).
	Modu string `json:"modu"`
	// Datr is the LoRa datarate identifier, e.g. "SF7BW125".
	Datr string `json:"datr"`
	// Codr is the coding rate, e.g. "4/7".
	Codr string `json:"codr"`
	// RSSI is the packet RSSI in dBm, LSNR the packet SNR in dB.
	RSSI float64 `json:"rssi"`
	LSNR float64 `json:"lsnr"`
	// Size is the payload length in bytes; Data its base64 encoding.
	Size int    `json:"size"`
	Data string `json:"data"`
}

// Payload decodes the base64 PHY payload.
func (r *RXPK) Payload() ([]byte, error) {
	b, err := base64.StdEncoding.DecodeString(r.Data)
	if err != nil {
		return nil, fmt.Errorf("ingest: rxpk data: %w", err)
	}
	if r.Size != 0 && r.Size != len(b) {
		return nil, fmt.Errorf("ingest: rxpk size %d != payload %d", r.Size, len(b))
	}
	return b, nil
}

// ParseDatr splits a "SF7BW125"-style datarate identifier into spreading
// factor and bandwidth (Hz).
func ParseDatr(datr string) (lora.SF, float64, error) {
	rest, ok := strings.CutPrefix(datr, "SF")
	if !ok {
		return 0, 0, fmt.Errorf("ingest: datr %q: missing SF prefix", datr)
	}
	sfStr, bwStr, ok := strings.Cut(rest, "BW")
	if !ok {
		return 0, 0, fmt.Errorf("ingest: datr %q: missing BW", datr)
	}
	sf, err := strconv.Atoi(sfStr)
	if err != nil || !lora.SF(sf).Valid() {
		return 0, 0, fmt.Errorf("ingest: datr %q: bad SF %q", datr, sfStr)
	}
	bwKHz, err := strconv.ParseFloat(bwStr, 64)
	if err != nil || bwKHz <= 0 {
		return 0, 0, fmt.Errorf("ingest: datr %q: bad BW %q", datr, bwStr)
	}
	return lora.SF(sf), bwKHz * 1e3, nil
}

// Datr renders a spreading factor and bandwidth as a datarate identifier.
func Datr(sf lora.SF, bwHz float64) string {
	return fmt.Sprintf("SF%dBW%d", int(sf), int(bwHz/1e3))
}

// pushPayload is the JSON body of a PUSH_DATA packet.
type pushPayload struct {
	RXPK []RXPK `json:"rxpk,omitempty"`
	// Stat (gateway status) is accepted and ignored.
	Stat json.RawMessage `json:"stat,omitempty"`
}

// Packet is a decoded packet-forwarder datagram.
type Packet struct {
	Version byte
	Token   uint16
	Kind    byte
	// EUI is the gateway's identifier (PUSH_DATA, PULL_DATA, TX_ACK).
	EUI [8]byte
	// RXPK holds the uplinks of a PUSH_DATA packet.
	RXPK []RXPK
}

// DecodePacket parses an upstream datagram (PUSH_DATA, PULL_DATA or
// TX_ACK — the kinds a gateway sends).
func DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("ingest: datagram too short (%d bytes)", len(buf))
	}
	p := &Packet{
		Version: buf[0],
		Token:   uint16(buf[1]) | uint16(buf[2])<<8,
		Kind:    buf[3],
	}
	if p.Version != ProtocolVersion {
		return nil, fmt.Errorf("ingest: protocol version %d (want %d)", p.Version, ProtocolVersion)
	}
	switch p.Kind {
	case PushData, PullData, TxAck:
	default:
		return nil, fmt.Errorf("ingest: unexpected upstream packet kind %#02x", p.Kind)
	}
	if len(buf) < headerLen+8 {
		return nil, fmt.Errorf("ingest: %#02x datagram missing gateway EUI", p.Kind)
	}
	copy(p.EUI[:], buf[headerLen:headerLen+8])
	if p.Kind == PushData {
		var body pushPayload
		if err := json.Unmarshal(buf[headerLen+8:], &body); err != nil {
			return nil, fmt.Errorf("ingest: PUSH_DATA payload: %w", err)
		}
		p.RXPK = body.RXPK
	}
	return p, nil
}

// Ack builds the acknowledgement datagram for this packet (PUSH_ACK or
// PULL_ACK); ok is false for kinds that are not acknowledged.
func (p *Packet) Ack() ([]byte, bool) {
	var kind byte
	switch p.Kind {
	case PushData:
		kind = PushAck
	case PullData:
		kind = PullAck
	default:
		return nil, false
	}
	return []byte{ProtocolVersion, byte(p.Token), byte(p.Token >> 8), kind}, true
}

// EncodePushData builds a PUSH_DATA datagram carrying the given uplinks —
// what a gateway (or the replay load generator) sends.
func EncodePushData(token uint16, eui [8]byte, rxpks []RXPK) ([]byte, error) {
	body, err := json.Marshal(pushPayload{RXPK: rxpks})
	if err != nil {
		return nil, fmt.Errorf("ingest: encode rxpk: %w", err)
	}
	out := make([]byte, 0, headerLen+8+len(body))
	out = append(out, ProtocolVersion, byte(token), byte(token>>8), PushData)
	out = append(out, eui[:]...)
	return append(out, body...), nil
}

// EncodePullData builds a PULL_DATA keepalive datagram.
func EncodePullData(token uint16, eui [8]byte) []byte {
	out := make([]byte, 0, headerLen+8)
	out = append(out, ProtocolVersion, byte(token), byte(token>>8), PullData)
	return append(out, eui[:]...)
}
