// Package ingest is the online half of the network server: it speaks the
// Semtech UDP packet-forwarder protocol to real (or replayed) gateways,
// fans decoded uplinks across a DevAddr-sharded pool of netserver.Server
// instances, flushes dedup windows on the clock, maintains rolling
// per-device link statistics, and periodically hands drifting devices to
// alloc.Incremental for online re-allocation.
package ingest

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"eflora/internal/lora"
	"eflora/internal/slab"
)

// Semtech packet-forwarder protocol (v2) packet identifiers.
const (
	PushData byte = 0x00 // gateway -> server, JSON rxpk/stat payload
	PushAck  byte = 0x01 // server -> gateway
	PullData byte = 0x02 // gateway -> server, keepalive / downlink route
	PullResp byte = 0x03 // server -> gateway, txpk payload
	PullAck  byte = 0x04 // server -> gateway
	TxAck    byte = 0x05 // gateway -> server, downlink result
)

// ProtocolVersion is the packet-forwarder protocol version this codec
// implements.
const ProtocolVersion = 2

// headerLen is version (1) + token (2) + identifier (1); data packets add
// the 8-byte gateway EUI.
const headerLen = 4

// RXPK is one received uplink in a PUSH_DATA JSON payload, mirroring the
// packet forwarder's field names.
type RXPK struct {
	// Tmst is the gateway's internal microsecond counter at RX.
	Tmst uint64 `json:"tmst"`
	// Time is the optional ISO 8601 UTC RX time.
	Time string `json:"time,omitempty"`
	// Freq is the center frequency in MHz.
	Freq float64 `json:"freq"`
	// Chan and RFCh are the concentrator IF and RF chain indices.
	Chan int `json:"chan"`
	RFCh int `json:"rfch"`
	// Stat is the CRC status: 1 = OK, -1 = fail, 0 = no CRC.
	Stat int `json:"stat"`
	// Modu is "LORA" (or "FSK", which this server ignores).
	Modu string `json:"modu"`
	// Datr is the LoRa datarate identifier, e.g. "SF7BW125".
	Datr string `json:"datr"`
	// Codr is the coding rate, e.g. "4/7".
	Codr string `json:"codr"`
	// RSSI is the packet RSSI in dBm, LSNR the packet SNR in dB.
	RSSI float64 `json:"rssi"`
	LSNR float64 `json:"lsnr"`
	// Size is the payload length in bytes; Data its base64 encoding.
	Size int    `json:"size"`
	Data string `json:"data"`
}

// Payload decodes the base64 PHY payload.
func (r *RXPK) Payload() ([]byte, error) {
	b, err := base64.StdEncoding.DecodeString(r.Data)
	if err != nil {
		return nil, fmt.Errorf("ingest: rxpk data: %w", err)
	}
	if r.Size != 0 && r.Size != len(b) {
		return nil, fmt.Errorf("ingest: rxpk size %d != payload %d", r.Size, len(b))
	}
	return b, nil
}

// TXPK is one downlink transmission request in a PULL_RESP JSON payload,
// mirroring the packet forwarder's field names.
type TXPK struct {
	// Imme requests immediate transmission, ignoring Tmst.
	Imme bool `json:"imme,omitempty"`
	// Tmst is the gateway's internal microsecond counter value at which
	// the transmission must start (Class-A window timing).
	Tmst uint64 `json:"tmst,omitempty"`
	// Freq is the TX center frequency in MHz.
	Freq float64 `json:"freq"`
	// RFCh is the concentrator RF chain used for TX.
	RFCh int `json:"rfch"`
	// Powe is the TX output power in dBm.
	Powe float64 `json:"powe,omitempty"`
	// Modu is "LORA" (FSK downlinks are not issued by this server).
	Modu string `json:"modu"`
	// Datr is the LoRa datarate identifier, e.g. "SF12BW125".
	Datr string `json:"datr"`
	// Codr is the coding rate, e.g. "4/7".
	Codr string `json:"codr"`
	// IPol requests inverted polarity (standard for LoRaWAN downlinks so
	// gateways do not lock onto each other's transmissions).
	IPol bool `json:"ipol,omitempty"`
	// Size is the payload length in bytes; Data its base64 encoding.
	Size int    `json:"size"`
	Data string `json:"data"`
}

// Payload decodes the base64 PHY payload.
func (t *TXPK) Payload() ([]byte, error) {
	b, err := base64.StdEncoding.DecodeString(t.Data)
	if err != nil {
		return nil, fmt.Errorf("ingest: txpk data: %w", err)
	}
	if t.Size != 0 && t.Size != len(b) {
		return nil, fmt.Errorf("ingest: txpk size %d != payload %d", t.Size, len(b))
	}
	return b, nil
}

// SetPayload stores the PHY payload (base64 + size).
func (t *TXPK) SetPayload(b []byte) {
	t.Size = len(b)
	t.Data = base64.StdEncoding.EncodeToString(b)
}

// TX_ACK error values (packet-forwarder PROTOCOL.TXT): the downlink's
// fate as judged by the gateway's just-in-time TX queue.
const (
	TxErrNone            = "NONE"
	TxErrTooLate         = "TOO_LATE"
	TxErrTooEarly        = "TOO_EARLY"
	TxErrCollisionPacket = "COLLISION_PACKET"
	TxErrCollisionBeacon = "COLLISION_BEACON"
	TxErrTxFreq          = "TX_FREQ"
	TxErrTxPower         = "TX_POWER"
	TxErrGPSUnlocked     = "GPS_UNLOCKED"
)

// ParseDatr splits a "SF7BW125"-style datarate identifier into spreading
// factor and bandwidth (Hz).
func ParseDatr(datr string) (lora.SF, float64, error) {
	rest, ok := strings.CutPrefix(datr, "SF")
	if !ok {
		return 0, 0, fmt.Errorf("ingest: datr %q: missing SF prefix", datr)
	}
	sfStr, bwStr, ok := strings.Cut(rest, "BW")
	if !ok {
		return 0, 0, fmt.Errorf("ingest: datr %q: missing BW", datr)
	}
	sf, err := strconv.Atoi(sfStr)
	if err != nil || !lora.SF(sf).Valid() {
		return 0, 0, fmt.Errorf("ingest: datr %q: bad SF %q", datr, sfStr)
	}
	bwKHz, err := strconv.ParseFloat(bwStr, 64)
	if err != nil || bwKHz <= 0 {
		return 0, 0, fmt.Errorf("ingest: datr %q: bad BW %q", datr, bwStr)
	}
	return lora.SF(sf), bwKHz * 1e3, nil
}

// Datr renders a spreading factor and bandwidth as a datarate identifier.
func Datr(sf lora.SF, bwHz float64) string {
	return fmt.Sprintf("SF%dBW%d", int(sf), int(bwHz/1e3))
}

// pushPayload is the JSON body of a PUSH_DATA packet.
type pushPayload struct {
	RXPK []RXPK `json:"rxpk,omitempty"`
	// Stat (gateway status) is accepted and ignored.
	Stat json.RawMessage `json:"stat,omitempty"`
}

// pullRespPayload is the JSON body of a PULL_RESP packet.
type pullRespPayload struct {
	TXPK TXPK `json:"txpk"`
}

// txAckPayload is the JSON body of a TX_ACK packet.
type txAckPayload struct {
	Ack struct {
		Error string `json:"error"`
	} `json:"txpk_ack"`
}

// canonicalKeys maps the lower-cased spelling of every JSON field the
// packet path decodes to its exact protocol spelling. strictKeys rejects
// bodies that spell one of these any other way, because encoding/json
// matches object keys case-insensitively and would silently accept them.
var canonicalKeys = map[string]string{
	"rxpk": "rxpk", "txpk": "txpk", "stat": "stat", "txpk_ack": "txpk_ack",
	"error": "error", "tmst": "tmst", "time": "time", "freq": "freq",
	"chan": "chan", "rfch": "rfch", "modu": "modu", "datr": "datr",
	"codr": "codr", "rssi": "rssi", "lsnr": "lsnr", "size": "size",
	"data": "data", "imme": "imme", "powe": "powe", "ipol": "ipol",
}

// ParseScratch holds the decode buffers one ingress loop reuses across
// datagrams: the packet value, the PUSH_DATA body with its RXPK slice,
// and the strictKeys walk state (a flat frame stack plus a shared key
// stack, replacing a per-object map). The Packet returned by
// DecodePacketInto aliases the scratch and is valid until the next decode
// with the same scratch. A zero ParseScratch is ready to use; a scratch
// serves one decode at a time.
type ParseScratch struct {
	pkt    Packet
	push   pushPayload
	rd     bytes.Reader
	frames []ksFrame
	keys   []ksKey
}

// ksFrame is one open object or array during the strictKeys walk. Object
// frames own the suffix of the key stack starting at keyLo, popped with
// the frame — sibling keys dedup by a linear scan of that suffix, which
// for protocol-sized objects (≤14 keys) beats allocating a map per '{'.
type ksFrame struct {
	obj       bool
	expectKey bool
	keyLo     int32
}

// ksKey is one object key, case-folded for comparison and as written.
type ksKey struct {
	folded, raw string
}

// ksEndValue marks a completed object value, so the next string token at
// the current nesting level is a key again.
func (sc *ParseScratch) ksEndValue() {
	if n := len(sc.frames); n > 0 && sc.frames[n-1].obj {
		sc.frames[n-1].expectKey = true
	}
}

// strictKeys walks a JSON body and rejects the key ambiguities Go's
// case-insensitive field matching would otherwise resolve silently: two
// keys in one object that differ only by ASCII case (or repeat exactly),
// and any case-variant spelling of a field the packet path decodes. The
// kept FuzzSemtechPushData crasher ({"rXpk":[]}) is exactly such an
// input. Keys unknown to the codec still pass — gateways send fields this
// server does not model.
func (sc *ParseScratch) strictKeys(data []byte) error {
	sc.rd.Reset(data)
	dec := json.NewDecoder(&sc.rd)
	sc.frames, sc.keys = sc.frames[:0], sc.keys[:0]
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{':
				sc.frames = append(sc.frames, ksFrame{obj: true, expectKey: true, keyLo: int32(len(sc.keys))})
			case '[':
				sc.frames = append(sc.frames, ksFrame{})
			default: // '}' or ']'
				if f := sc.frames[len(sc.frames)-1]; f.obj {
					sc.keys = sc.keys[:f.keyLo]
				}
				sc.frames = sc.frames[:len(sc.frames)-1]
				sc.ksEndValue()
			}
		case string:
			if n := len(sc.frames); n > 0 && sc.frames[n-1].obj && sc.frames[n-1].expectKey {
				f := &sc.frames[n-1]
				folded := strings.ToLower(t)
				for _, k := range sc.keys[f.keyLo:] {
					if k.folded == folded {
						return fmt.Errorf("ingest: ambiguous JSON keys %q and %q in one object", k.raw, t)
					}
				}
				sc.keys = append(sc.keys, ksKey{folded: folded, raw: t})
				if canon, known := canonicalKeys[folded]; known && t != canon {
					return fmt.Errorf("ingest: JSON key %q mismatches protocol field %q", t, canon)
				}
				f.expectKey = false
				continue
			}
			sc.ksEndValue()
		default: // number, bool, null
			sc.ksEndValue()
		}
	}
}

// strictUnmarshal applies the packet path's hardened JSON decoding: the
// strictKeys scan first, then the ordinary unmarshal.
func (sc *ParseScratch) strictUnmarshal(data []byte, v any) error {
	if err := sc.strictKeys(data); err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// strictUnmarshal is the one-shot form for cold paths (DecodeDownstream,
// tests): a throwaway scratch per call.
func strictUnmarshal(data []byte, v any) error {
	var sc ParseScratch
	return sc.strictUnmarshal(data, v)
}

// Packet is a decoded packet-forwarder datagram.
type Packet struct {
	Version byte
	Token   uint16
	Kind    byte
	// EUI is the gateway's identifier (PUSH_DATA, PULL_DATA, TX_ACK).
	EUI [8]byte
	// RXPK holds the uplinks of a PUSH_DATA packet.
	RXPK []RXPK
	// TXPK holds the downlink of a PULL_RESP packet (DecodeDownstream).
	TXPK *TXPK
	// TxAckErr is the TX_ACK error value; "" when the datagram carried no
	// JSON body (old forwarders acknowledge success with an empty body).
	TxAckErr string
}

// TxAckOK reports whether a TX_ACK signals a successfully queued
// downlink (no body, or an explicit NONE).
func (p *Packet) TxAckOK() bool { return p.TxAckErr == "" || p.TxAckErr == TxErrNone }

// DecodePacket parses an upstream datagram (PUSH_DATA, PULL_DATA or
// TX_ACK — the kinds a gateway sends) into freshly allocated storage.
// Loops decoding at line rate should hold a ParseScratch and call
// DecodePacketInto instead.
func DecodePacket(buf []byte) (*Packet, error) {
	var sc ParseScratch
	p, err := DecodePacketInto(buf, &sc)
	if err != nil {
		return nil, err
	}
	out := *p
	return &out, nil
}

// DecodePacketInto parses an upstream datagram like DecodePacket, reusing
// the scratch's buffers. The returned Packet and its RXPK slice alias sc
// and are valid until the next decode with the same scratch; callers that
// keep frames across datagrams must copy them out first.
func DecodePacketInto(buf []byte, sc *ParseScratch) (*Packet, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("ingest: datagram too short (%d bytes)", len(buf))
	}
	p := &sc.pkt
	*p = Packet{
		Version: buf[0],
		Token:   uint16(buf[1]) | uint16(buf[2])<<8,
		Kind:    buf[3],
	}
	if p.Version != ProtocolVersion {
		return nil, fmt.Errorf("ingest: protocol version %d (want %d)", p.Version, ProtocolVersion)
	}
	switch p.Kind {
	case PushData, PullData, TxAck:
	default:
		return nil, fmt.Errorf("ingest: unexpected upstream packet kind %#02x", p.Kind)
	}
	if len(buf) < headerLen+8 {
		return nil, fmt.Errorf("ingest: %#02x datagram missing gateway EUI", p.Kind)
	}
	copy(p.EUI[:], buf[headerLen:headerLen+8])
	switch p.Kind {
	case PushData:
		// encoding/json appends array elements into the slice's existing
		// backing array without zeroing it first, so fields absent from
		// this datagram's rxpk objects would leak values from the previous
		// one; clear the full capacity before handing the slice back.
		rx := slab.GrowZero(sc.push.RXPK, cap(sc.push.RXPK))
		sc.push = pushPayload{RXPK: rx[:0]}
		if err := sc.strictUnmarshal(buf[headerLen+8:], &sc.push); err != nil {
			return nil, fmt.Errorf("ingest: PUSH_DATA payload: %w", err)
		}
		p.RXPK = sc.push.RXPK
	case TxAck:
		// The body is optional: success may be an empty datagram.
		if rest := buf[headerLen+8:]; len(bytes.TrimSpace(rest)) > 0 {
			var body txAckPayload
			if err := sc.strictUnmarshal(rest, &body); err != nil {
				return nil, fmt.Errorf("ingest: TX_ACK payload: %w", err)
			}
			p.TxAckErr = body.Ack.Error
		}
	}
	return p, nil
}

// DecodeDownstream parses a server→gateway datagram (PUSH_ACK, PULL_ACK
// or PULL_RESP — the kinds a gateway receives), for the replay load
// generator's simulated gateways and for tests.
func DecodeDownstream(buf []byte) (*Packet, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("ingest: datagram too short (%d bytes)", len(buf))
	}
	p := &Packet{
		Version: buf[0],
		Token:   uint16(buf[1]) | uint16(buf[2])<<8,
		Kind:    buf[3],
	}
	if p.Version != ProtocolVersion {
		return nil, fmt.Errorf("ingest: protocol version %d (want %d)", p.Version, ProtocolVersion)
	}
	switch p.Kind {
	case PushAck, PullAck:
		// Header only.
	case PullResp:
		var body pullRespPayload
		if err := strictUnmarshal(buf[headerLen:], &body); err != nil {
			return nil, fmt.Errorf("ingest: PULL_RESP payload: %w", err)
		}
		p.TXPK = &body.TXPK
	default:
		return nil, fmt.Errorf("ingest: unexpected downstream packet kind %#02x", p.Kind)
	}
	return p, nil
}

// Ack builds the acknowledgement datagram for this packet (PUSH_ACK or
// PULL_ACK); ok is false for kinds that are not acknowledged.
func (p *Packet) Ack() ([]byte, bool) {
	var kind byte
	switch p.Kind {
	case PushData:
		kind = PushAck
	case PullData:
		kind = PullAck
	default:
		return nil, false
	}
	return []byte{ProtocolVersion, byte(p.Token), byte(p.Token >> 8), kind}, true
}

// EncodePushData builds a PUSH_DATA datagram carrying the given uplinks —
// what a gateway (or the replay load generator) sends.
func EncodePushData(token uint16, eui [8]byte, rxpks []RXPK) ([]byte, error) {
	body, err := json.Marshal(pushPayload{RXPK: rxpks})
	if err != nil {
		return nil, fmt.Errorf("ingest: encode rxpk: %w", err)
	}
	out := make([]byte, 0, headerLen+8+len(body))
	out = append(out, ProtocolVersion, byte(token), byte(token>>8), PushData)
	out = append(out, eui[:]...)
	return append(out, body...), nil
}

// EncodePullData builds a PULL_DATA keepalive datagram.
func EncodePullData(token uint16, eui [8]byte) []byte {
	out := make([]byte, 0, headerLen+8)
	out = append(out, ProtocolVersion, byte(token), byte(token>>8), PullData)
	return append(out, eui[:]...)
}

// EncodePullResp builds a PULL_RESP datagram carrying one downlink — what
// the server sends to the gateway's PULL_DATA source address. PULL_RESP
// carries no gateway EUI: the UDP destination selects the gateway.
func EncodePullResp(token uint16, txpk *TXPK) ([]byte, error) {
	body, err := json.Marshal(pullRespPayload{TXPK: *txpk})
	if err != nil {
		return nil, fmt.Errorf("ingest: encode txpk: %w", err)
	}
	out := make([]byte, 0, headerLen+len(body))
	out = append(out, ProtocolVersion, byte(token), byte(token>>8), PullResp)
	return append(out, body...), nil
}

// EncodeTxAck builds a TX_ACK datagram reporting a downlink's fate — what
// a gateway (or a simulated one) sends after a PULL_RESP. The token must
// echo the PULL_RESP's. An empty errStr omits the JSON body (the legacy
// success spelling); TxErrNone reports success explicitly.
func EncodeTxAck(token uint16, eui [8]byte, errStr string) ([]byte, error) {
	out := make([]byte, 0, headerLen+8+48)
	out = append(out, ProtocolVersion, byte(token), byte(token>>8), TxAck)
	out = append(out, eui[:]...)
	if errStr == "" {
		return out, nil
	}
	var body txAckPayload
	body.Ack.Error = errStr
	b, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("ingest: encode txpk_ack: %w", err)
	}
	return append(out, b...), nil
}
