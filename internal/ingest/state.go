package ingest

import (
	"fmt"
	"sort"

	"eflora/internal/netserver"
)

// TrackerEntry is one device's rolling statistics in an exported state.
type TrackerEntry struct {
	DevAddr uint32
	Stats   DevStats
}

// ExportState snapshots every device's rolling statistics, sorted by
// DevAddr so two identical trackers export identically.
func (t *Tracker) ExportState() []TrackerEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TrackerEntry, 0, len(t.m))
	for a, s := range t.m {
		out = append(out, TrackerEntry{DevAddr: a, Stats: *s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DevAddr < out[j].DevAddr })
	return out
}

// ImportState replaces the tracker's contents with a previous export.
func (t *Tracker) ImportState(entries []TrackerEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = make(map[uint32]*DevStats, len(entries))
	for _, e := range entries {
		s := e.Stats
		t.m[e.DevAddr] = &s
	}
}

// PoolState is the durable state of every shard in a Pool: the shard
// servers' dedup/replay state plus each shard's virtual-clock high-water
// mark (the newest uplink timestamp it has processed).
type PoolState struct {
	Shards   []netserver.State
	MaxSeenS []float64
}

// ExportState snapshots every shard. Each shard is internally consistent
// (exported under its server lock); for a globally consistent cut, stop
// dispatching and Drain first.
func (p *Pool) ExportState() PoolState {
	st := PoolState{
		Shards:   make([]netserver.State, len(p.shards)),
		MaxSeenS: make([]float64, len(p.shards)),
	}
	for k, sh := range p.shards {
		st.Shards[k] = sh.srv.ExportState()
		st.MaxSeenS[k] = floatFromBits(sh.maxSeenS.Load())
	}
	return st
}

// ImportState restores a previous export into this pool. The shard count
// must match — DevAddr→shard routing depends on it, so a state exported
// at a different shard count cannot be loaded (re-shard by replaying the
// source instead).
func (p *Pool) ImportState(st PoolState) error {
	if len(st.Shards) != len(p.shards) {
		return fmt.Errorf("ingest: state has %d shards, pool has %d", len(st.Shards), len(p.shards))
	}
	if len(st.MaxSeenS) != len(p.shards) {
		return fmt.Errorf("ingest: state has %d shard clocks, pool has %d", len(st.MaxSeenS), len(p.shards))
	}
	for k, sh := range p.shards {
		if err := sh.srv.ImportState(st.Shards[k]); err != nil {
			return fmt.Errorf("ingest: shard %d: %w", k, err)
		}
		sh.maxSeenS.Store(floatToBits(st.MaxSeenS[k]))
	}
	return nil
}
