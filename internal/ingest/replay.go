package ingest

import (
	"fmt"
	"sort"

	"eflora/internal/lora"
	"eflora/internal/lorawan"
	"eflora/internal/model"
	"eflora/internal/netserver"
	"eflora/internal/rng"
	"eflora/internal/sim"
)

// ReplayConfig controls the load generator.
type ReplayConfig struct {
	// Packets is the simulated reporting periods per device (default 20).
	Packets int
	// Seed drives the simulation and all synthetic traffic decisions.
	Seed uint64
	// DedupWindowS must match the ingesting pool's window (default 0.2).
	DedupWindowS float64
	// ExtraCopyProb is the chance each plausible secondary gateway also
	// reports a delivered frame, inside the dedup window (default 0.35).
	ExtraCopyProb float64
	// OutOfOrderProb is the chance an extra copy carries a timestamp
	// slightly *before* the primary copy while arriving after it —
	// exercising out-of-order ingestion (default 0.1).
	OutOfOrderProb float64
	// LateCopyProb is the chance a delivered frame gets one more gateway
	// copy after its window closed — the late-duplicate path (default 0.05).
	LateCopyProb float64
	// StaleReplayProb is the chance a device's previous frame is re-sent
	// after a newer one was accepted — the replay-rejection path
	// (default 0.03).
	StaleReplayProb float64
	// Parallelism is passed through to the simulator.
	Parallelism int
	// DriftDevices injects link drift: the first DriftDevices devices
	// report SNRs DriftSNRdB below their true link budget, so the online
	// re-allocator sees them as drifting. Only the reported metadata is
	// degraded — delivery accounting stays analytically exact.
	DriftDevices int
	DriftSNRdB   float64
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Packets <= 0 {
		c.Packets = 20
	}
	if c.DedupWindowS <= 0 {
		c.DedupWindowS = 0.2
	}
	if c.ExtraCopyProb == 0 {
		c.ExtraCopyProb = 0.35
	}
	if c.OutOfOrderProb == 0 {
		c.OutOfOrderProb = 0.1
	}
	if c.LateCopyProb == 0 {
		c.LateCopyProb = 0.05
	}
	if c.StaleReplayProb == 0 {
		c.StaleReplayProb = 0.03
	}
	return c
}

// Replay is a synthesized gateway-traffic trace with analytically known
// ingest accounting: dispatching Uplinks in order into any pool (then
// flushing) must produce exactly Expected, independent of shard count —
// the bit-exactness oracle for the daemon's load-generator mode.
type Replay struct {
	// Devices are the provisioned end devices (DevAddr = index+1).
	Devices []netserver.Device
	// Uplinks is the traffic in arrival order (timestamps may be locally
	// out of order on purpose).
	Uplinks []netserver.Uplink
	// Expected is the exact accounting any order-preserving ingest of
	// Uplinks must report after a final flush.
	Expected netserver.Counters
	// SimTimeS is the simulated horizon; DedupWindowS echoes the config.
	SimTimeS     float64
	DedupWindowS float64
	// LastUp records each device's final delivered uplink (Gateway -1 for
	// devices the network never heard) — the reception context a Class-A
	// downlink exchange schedules against.
	LastUp []ReplayLastUplink
}

// ReplayLastUplink is one device's most recent delivered transmission.
type ReplayLastUplink struct {
	// EndS is when the transmission left the air; Gateway the decoding
	// gateway (-1 when the device was never delivered).
	EndS    float64
	Gateway int
}

// DeviceForAddr derives a device with deterministic session keys from its
// address (splitmix64 stream — stable across runs and processes).
func DeviceForAddr(addr uint32) netserver.Device {
	d := netserver.Device{DevAddr: addr}
	state := uint64(addr)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < 16; i += 8 {
		putU64(d.Keys.NwkSKey[i:], next())
		putU64(d.Keys.AppSKey[i:], next())
	}
	return d
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ProvisionDevices derives the device set for an n-device scenario.
func ProvisionDevices(n int) []netserver.Device {
	out := make([]netserver.Device, n)
	for i := range out {
		out[i] = DeviceForAddr(AddrForIndex(i))
	}
	return out
}

// deliveredTx is one frame the simulator delivered, with the metadata the
// generator needs to synthesize gateway copies.
type deliveredTx struct {
	fcnt uint32
	endS float64
	gw   int
}

// replayUplink orders synthesized traffic by arrival, which deliberately
// differs from the carried timestamp for out-of-order copies.
type replayUplink struct {
	arrivalS float64
	seq      int
	up       netserver.Uplink
}

// BuildReplay runs the packet simulator over the deployment and converts
// its delivery trace into a gateway-traffic stream: every delivered
// packet becomes a PUSH-style uplink from its decoding gateway, plausible
// secondary gateways contribute dedup copies, and deterministic fractions
// of late copies, out-of-order timestamps and stale replays exercise the
// server's full accounting surface.
func BuildReplay(net *model.Network, p model.Params, a model.Allocation, cfg ReplayConfig) (*Replay, error) {
	cfg = cfg.withDefaults()
	res, err := sim.Run(net, p, a, sim.Config{
		PacketsPerDevice: cfg.Packets,
		Seed:             cfg.Seed,
		Trace:            true,
		Parallelism:      cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	n, g := net.N(), net.G()
	devices := ProvisionDevices(n)
	gains := model.Gains(net, p)

	// Mean SNR per (device, gateway) — the fading-free link budget the
	// synthetic per-copy SNR jitters around.
	meanSNR := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, g)
		for k := 0; k < g; k++ {
			row[k] = a.TPdBm[i] + lora.LinearToDB(gains[i][k]) - p.NoiseDBm
		}
		meanSNR[i] = row
	}
	toa := make([]float64, n)
	for i := 0; i < n; i++ {
		toa[i] = p.TimeOnAir(a.SF[i])
	}

	// Pass 1: per-device attempt counters over the time-ordered trace
	// assign FCnts (the counter advances on every transmission, heard or
	// not — that is exactly what gives the PRR-from-FCnt-gap statistics
	// something to measure).
	attempts := make([]uint32, n)
	delivered := make([][]deliveredTx, n)
	for _, rec := range res.Trace {
		attempts[rec.Device]++
		if rec.Outcome != sim.OutcomeDelivered {
			continue
		}
		delivered[rec.Device] = append(delivered[rec.Device], deliveredTx{
			fcnt: attempts[rec.Device],
			endS: rec.StartS + toa[rec.Device],
			gw:   rec.Gateway,
		})
	}

	// Pass 2: synthesize the gateway copies per device with a per-device
	// RNG, so generation is deterministic and device-order independent.
	rp := &Replay{
		Devices:      devices,
		SimTimeS:     res.SimTimeS,
		DedupWindowS: cfg.DedupWindowS,
		LastUp:       make([]ReplayLastUplink, n),
	}
	for i := range rp.LastUp {
		rp.LastUp[i] = ReplayLastUplink{EndS: -1, Gateway: -1}
		if frames := delivered[i]; len(frames) > 0 {
			last := frames[len(frames)-1]
			rp.LastUp[i] = ReplayLastUplink{EndS: last.endS, Gateway: last.gw}
		}
	}
	var stream []replayUplink
	add := func(arrivalS float64, up netserver.Uplink) {
		stream = append(stream, replayUplink{arrivalS: arrivalS, seq: len(stream), up: up})
	}
	appPayload := make([]byte, p.AppPayloadBytes)
	window := cfg.DedupWindowS
	for i := 0; i < n; i++ {
		r := rng.New(cfg.Seed ^ (uint64(AddrForIndex(i)) * 0x517CC1B727220A95))
		frames := delivered[i]
		phys := make([][]byte, len(frames))
		for j, dtx := range frames {
			for b := range appPayload {
				appPayload[b] = byte(dtx.fcnt) + byte(b)
			}
			phy, err := lorawan.Encode(lorawan.Frame{
				MType:   lorawan.UnconfirmedDataUp,
				DevAddr: devices[i].DevAddr,
				FCnt:    dtx.fcnt,
				FPort:   1,
				Payload: appPayload,
			}, devices[i].Keys)
			if err != nil {
				return nil, fmt.Errorf("ingest: encode device %d fcnt %d: %w", i, dtx.fcnt, err)
			}
			phys[j] = phy

			drift := 0.0
			if i < cfg.DriftDevices {
				drift = cfg.DriftSNRdB
			}
			snr := func(gw int) float64 { return meanSNR[i][gw] + r.NormFloat64()*2 - drift }
			mkUplink := func(gw int, ts float64) netserver.Uplink {
				s := snr(gw)
				return netserver.Uplink{
					Gateway:     gw,
					ReceivedAtS: ts,
					SNRdB:       s,
					RSSIdBm:     p.NoiseDBm + s,
					PHYPayload:  phy,
				}
			}

			// Primary copy from the decoding gateway.
			add(dtx.endS, mkUplink(dtx.gw, dtx.endS))
			rp.Expected.Delivered++

			nextAt := res.SimTimeS + 1
			if j+1 < len(frames) {
				nextAt = frames[j+1].endS
			}

			// Secondary copies inside the window from gateways whose mean
			// link budget makes a reception plausible. Skipped when the
			// device's next frame would land inside this frame's window
			// (a copy arriving after a newer counter is a reject, which
			// would make the expected accounting order-dependent).
			if nextAt <= dtx.endS+window {
				continue
			}
			for k := 0; k < g; k++ {
				if k == dtx.gw || meanSNR[i][k] < lora.SNRThresholdDB(a.SF[i])-3 {
					continue
				}
				if r.Float64() >= cfg.ExtraCopyProb {
					continue
				}
				delta := (0.1 + 0.8*r.Float64()) * window / 2
				ts := dtx.endS + delta
				arrival := ts
				if r.Float64() < cfg.OutOfOrderProb {
					// Timestamped before the primary, dispatched after it.
					ts = dtx.endS - delta/4
				}
				add(arrival, mkUplink(k, ts))
				rp.Expected.Duplicates++
			}

			// A straggler copy after the window closed: the late-duplicate
			// path. Only safe (deterministically a duplicate) while no
			// newer frame intervenes.
			if r.Float64() < cfg.LateCopyProb && dtx.endS+3*window < nextAt {
				ts := dtx.endS + 2*window
				add(ts, mkUplink(dtx.gw, ts))
				rp.Expected.Duplicates++
			}

			// A replay of the previous frame arriving after this one was
			// accepted: deterministically rejected (older counter).
			if j > 0 && r.Float64() < cfg.StaleReplayProb {
				ts := dtx.endS + (0.1+0.5*r.Float64())*window
				s := snr(dtx.gw)
				add(ts, netserver.Uplink{
					Gateway:     dtx.gw,
					ReceivedAtS: ts,
					SNRdB:       s,
					RSSIdBm:     p.NoiseDBm + s,
					PHYPayload:  phys[j-1],
				})
				rp.Expected.Rejected++
			}
		}
	}

	sortStream(stream)
	rp.Uplinks = make([]netserver.Uplink, len(stream))
	for i, su := range stream {
		rp.Uplinks[i] = su.up
	}
	rp.Expected.Uplinks = len(rp.Uplinks)
	return rp, nil
}

// sortStream orders by arrival time with insertion order as tie-break.
func sortStream(stream []replayUplink) {
	sort.Slice(stream, func(i, j int) bool {
		if stream[i].arrivalS != stream[j].arrivalS {
			return stream[i].arrivalS < stream[j].arrivalS
		}
		return stream[i].seq < stream[j].seq
	})
}
