// Package fit estimates path-loss model parameters from received-signal
// measurements, the calibration step a real EF-LoRa deployment needs
// before the analytical model can be trusted: the paper sets β = 2.7/4.0
// from testbed observations, and its Fig. 9 shows the allocation's
// sensitivity to getting β wrong.
package fit

import (
	"fmt"
	"math"

	"eflora/internal/model"
)

// Sample is one received-power observation at a known distance.
type Sample struct {
	// DistanceM is the transmitter-receiver distance.
	DistanceM float64
	// TxPowerDBm and RxPowerDBm are the transmit and measured receive
	// power.
	TxPowerDBm, RxPowerDBm float64
}

// Estimate is a fitted path-loss model.
type Estimate struct {
	// Exponent is the fitted β of the power-law attenuation a(d) =
	// (c/4πfd)^β.
	Exponent float64
	// FrequencyHz is carried through from the fit input.
	FrequencyHz float64
	// ResidualDB is the root-mean-square residual of the fit in dB —
	// under Rayleigh fading expect ~5.6 dB even for a perfect β.
	ResidualDB float64
	// N is the number of samples used.
	N int
}

// PathLoss converts the estimate into a model.PathLoss.
func (e Estimate) PathLoss() model.PathLoss {
	return model.LoSPathLoss(e.FrequencyHz, e.Exponent)
}

// FitExponent fits β by least squares on the dB-domain model
//
//	loss_dB = β · 10·log10(4π·f·d/c),
//
// i.e. a straight line through the origin in x = 10·log10(4πfd/c). It
// needs samples spanning a range of distances; distances below 1 m are
// clamped like the model's attenuation function. At least two samples at
// distinct distances are required.
func FitExponent(samples []Sample, freqHz float64) (Estimate, error) {
	if freqHz <= 0 {
		return Estimate{}, fmt.Errorf("fit: frequency %v must be positive", freqHz)
	}
	if len(samples) < 2 {
		return Estimate{}, fmt.Errorf("fit: need at least 2 samples, got %d", len(samples))
	}
	ref := model.SpeedOfLight / (4 * math.Pi * freqHz)
	var sxx, sxy float64
	distinct := make(map[float64]struct{})
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		d := s.DistanceM
		if d < 1 {
			d = 1
		}
		distinct[d] = struct{}{}
		x := 10 * math.Log10(d/ref) // positive for d >> ref
		y := s.TxPowerDBm - s.RxPowerDBm
		xs[i], ys[i] = x, y
		sxx += x * x
		sxy += x * y
	}
	if len(distinct) < 2 {
		return Estimate{}, fmt.Errorf("fit: samples at a single distance cannot determine the exponent")
	}
	if sxx == 0 {
		return Estimate{}, fmt.Errorf("fit: degenerate distances")
	}
	beta := sxy / sxx
	var ss float64
	for i := range xs {
		r := ys[i] - beta*xs[i]
		ss += r * r
	}
	return Estimate{
		Exponent:    beta,
		FrequencyHz: freqHz,
		ResidualDB:  math.Sqrt(ss / float64(len(samples))),
		N:           len(samples),
	}, nil
}

// CollectSamples generates calibration samples from a network using a
// path-loss environment and a fading generator: the synthetic stand-in
// for a drive-test measurement campaign. fading returns a linear power
// gain per observation (pass nil for a noiseless campaign).
func CollectSamples(net *model.Network, env model.PathLoss, tpDBm float64, fading func() float64) []Sample {
	var out []Sample
	for _, d := range net.Devices {
		for _, g := range net.Gateways {
			dist := d.Dist(g)
			gain := env.Gain(dist)
			if fading != nil {
				gain *= fading()
			}
			if gain <= 0 {
				continue
			}
			out = append(out, Sample{
				DistanceM:  dist,
				TxPowerDBm: tpDBm,
				RxPowerDBm: tpDBm + 10*math.Log10(gain),
			})
		}
	}
	return out
}
