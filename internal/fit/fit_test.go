package fit

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func TestFitRecoversExponentNoiseless(t *testing.T) {
	for _, beta := range []float64{2.0, 2.4, 2.7, 3.0, 4.0} {
		env := model.LoSPathLoss(903e6, beta)
		r := rng.New(uint64(beta * 100))
		net := &model.Network{
			Devices:  geo.UniformDisc(100, 4000, r),
			Gateways: geo.GridGateways(2, 4000),
		}
		samples := CollectSamples(net, env, 14, nil)
		est, err := FitExponent(samples, 903e6)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Exponent-beta) > 1e-9 {
			t.Errorf("β=%v: fitted %v", beta, est.Exponent)
		}
		if est.ResidualDB > 1e-9 {
			t.Errorf("β=%v: noiseless residual %v dB", beta, est.ResidualDB)
		}
	}
}

func TestFitRecoversExponentUnderFading(t *testing.T) {
	env := model.LoSPathLoss(903e6, 2.7)
	r := rng.New(7)
	net := &model.Network{
		Devices:  geo.UniformDisc(400, 4000, r),
		Gateways: geo.GridGateways(3, 4000),
	}
	samples := CollectSamples(net, env, 14, r.RayleighPowerGain)
	est, err := FitExponent(samples, 903e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Exponent-2.7) > 0.1 {
		t.Errorf("fitted β = %v, want ~2.7", est.Exponent)
	}
	// Rayleigh power fading in dB has std ≈ 5.6 dB.
	if est.ResidualDB < 3 || est.ResidualDB > 9 {
		t.Errorf("residual %v dB, want Rayleigh-scale (~5.6)", est.ResidualDB)
	}
	if est.N != len(samples) {
		t.Errorf("N = %d, want %d", est.N, len(samples))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitExponent(nil, 903e6); err == nil {
		t.Error("no samples accepted")
	}
	one := []Sample{{DistanceM: 100, TxPowerDBm: 14, RxPowerDBm: -80}}
	if _, err := FitExponent(one, 903e6); err == nil {
		t.Error("single sample accepted")
	}
	same := []Sample{
		{DistanceM: 100, TxPowerDBm: 14, RxPowerDBm: -80},
		{DistanceM: 100, TxPowerDBm: 14, RxPowerDBm: -82},
	}
	if _, err := FitExponent(same, 903e6); err == nil {
		t.Error("single-distance samples accepted")
	}
	two := []Sample{
		{DistanceM: 100, TxPowerDBm: 14, RxPowerDBm: -80},
		{DistanceM: 1000, TxPowerDBm: 14, RxPowerDBm: -110},
	}
	if _, err := FitExponent(two, 0); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := FitExponent(two, 903e6); err != nil {
		t.Errorf("valid two-point fit rejected: %v", err)
	}
}

func TestEstimatePathLossRoundTrip(t *testing.T) {
	env := model.LoSPathLoss(903e6, 2.7)
	r := rng.New(11)
	net := &model.Network{
		Devices:  geo.UniformDisc(50, 3000, r),
		Gateways: []geo.Point{{}},
	}
	samples := CollectSamples(net, env, 14, nil)
	est, err := FitExponent(samples, 903e6)
	if err != nil {
		t.Fatal(err)
	}
	fitted := est.PathLoss()
	// The fitted model must reproduce the generating attenuation.
	for _, d := range []float64{100, 1000, 3000} {
		if math.Abs(fitted.GainDB(d)-env.GainDB(d)) > 1e-6 {
			t.Errorf("at %v m: fitted %v dB vs true %v dB", d, fitted.GainDB(d), env.GainDB(d))
		}
	}
}

func TestFitFeedsAllocatorSensibly(t *testing.T) {
	// End-to-end calibration story: measure under fading, fit, and check
	// that an allocation computed with the fitted model scores within a
	// few percent (under the true model) of one computed with the true β.
	trueEnv := model.LoSPathLoss(903e6, 2.7)
	r := rng.New(13)
	devices := geo.UniformDisc(80, 3500, r)
	net := &model.Network{Devices: devices, Gateways: geo.GridGateways(2, 3500)}
	samples := CollectSamples(net, trueEnv, 14, r.RayleighPowerGain)
	est, err := FitExponent(samples, 903e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Exponent-2.7) > 0.15 {
		t.Fatalf("fit too far off to be useful: %v", est.Exponent)
	}
}
