// Package golden provides bit-exact serialization helpers and the
// file plumbing for golden-output regression tests: hot-path refactors
// that change results (not just speed) fail loudly against digests
// checked into testdata/.
//
// Floats are rendered in hexadecimal ('x') format, so two serializations
// match iff every float is bit-identical — the determinism contract the
// parallel engine and the scratch-reuse optimizations must preserve.
package golden

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Float formats a float64 exactly: two values render identically iff
// their bits are identical (hex mantissa; ±Inf and NaN render as such).
func Float(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

// Floats renders a slice of float64 exactly, space-separated.
func Floats(xs []float64) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(Float(x))
	}
	return b.String()
}

// Ints renders a slice of int, space-separated.
func Ints(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// Map renders a map[string]float64 deterministically (sorted by key,
// exact float rendering).
func Map(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	//eflora:nondeterminism-ok order-independent: keys are collected then explicitly sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, Float(m[k]))
	}
	return b.String()
}

// Digest returns the hex SHA-256 of the labeled sections, which are
// hashed with their labels and lengths so section boundaries are
// unambiguous.
func Digest(sections ...string) string {
	h := sha256.New()
	for _, s := range sections {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Check compares got (typically a set of "label digest" lines) against
// the golden file at path. When update is true it (re)writes the file
// instead of comparing; tests pass an -update flag through to here.
func Check(t *testing.T, path, got string, update bool) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: %v (run `go test -run %s -update ./...` to create it)", err, t.Name())
	}
	if string(want) != got {
		t.Errorf("golden mismatch against %s:\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}
