// Package alloc implements the resource allocators compared in the paper's
// evaluation: the EF-LoRa greedy max-min allocator (Algorithm 1), the
// legacy LoRa baseline of Van den Abeele et al. [13] (smallest SNR-feasible
// spreading factor), the RS-LoRa baseline of Reynders et al. [6]
// (collision-probability fairness via the SF shares of Eq. 22), and the
// fixed-transmission-power EF-LoRa ablation of Fig. 9.
package alloc

import (
	"fmt"
	"math"
	"sort"

	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// Allocator assigns spreading factors, transmission powers and channels to
// every device of a network.
type Allocator interface {
	// Name identifies the strategy in reports.
	Name() string
	// Allocate computes an allocation. The RNG drives any randomized
	// tie-breaking (e.g. legacy LoRa's random channel choice).
	Allocate(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, error)
}

// Legacy is the default LoRaWAN behaviour the paper benchmarks against
// [13]: every device picks the smallest spreading factor whose link budget
// closes toward its best gateway at maximum power, ignores interference,
// and hops on a random channel.
type Legacy struct{}

// Name implements Allocator.
func (Legacy) Name() string { return "Legacy-LoRa" }

// Allocate implements Allocator.
func (Legacy) Allocate(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, error) {
	if err := p.Validate(); err != nil {
		return model.Allocation{}, err
	}
	if err := net.Validate(p); err != nil {
		return model.Allocation{}, err
	}
	gains := model.Gains(net, p)
	a := model.NewAllocation(net.N(), p.Plan)
	for i := 0; i < net.N(); i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF // out of range; transmit at SF12 and hope
		}
		a.SF[i] = sf
		a.TPdBm[i] = p.Plan.MaxTxPowerDBm
		a.Channel[i] = r.Intn(p.Plan.NumChannels())
	}
	return a, nil
}

// RSLoRa is the collision-fairness baseline of Reynders et al. [6]: the
// fraction of devices using SF s follows Eq. 22,
//
//	p_s = (s/2^s) / Σ_{i∈SF} (i/2^i),
//
// which equalizes the per-SF collision probability. Devices are sorted by
// their minimum feasible SF (closest first) and filled into the quotas from
// SF7 upward, never below a device's feasibility bound. Power is reduced to
// the lowest level that closes the link (RS-LoRa also performs power
// control) and channels are assigned round-robin.
type RSLoRa struct{}

// Name implements Allocator.
func (RSLoRa) Name() string { return "RS-LoRa" }

// SFShares returns the Eq. 22 distribution over SF7..SF12.
func SFShares() map[lora.SF]float64 {
	total := 0.0
	for _, s := range lora.SFs() {
		total += float64(s) / math.Exp2(float64(s))
	}
	shares := make(map[lora.SF]float64, 6)
	for _, s := range lora.SFs() {
		shares[s] = float64(s) / math.Exp2(float64(s)) / total
	}
	return shares
}

// Allocate implements Allocator.
func (RSLoRa) Allocate(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, error) {
	if err := p.Validate(); err != nil {
		return model.Allocation{}, err
	}
	if err := net.Validate(p); err != nil {
		return model.Allocation{}, err
	}
	n := net.N()
	gains := model.Gains(net, p)
	a := model.NewAllocation(n, p.Plan)

	// Quotas per SF, largest remainders last so they absorb rounding.
	shares := SFShares()
	quota := make(map[lora.SF]int, 6)
	assignedTotal := 0
	for _, s := range lora.SFs() {
		quota[s] = int(math.Floor(shares[s] * float64(n)))
		assignedTotal += quota[s]
	}
	for i := 0; assignedTotal < n; i++ {
		quota[lora.SFs()[i%6]]++
		assignedTotal++
	}

	// Devices in order of increasing minimum feasible SF, then distance.
	type devInfo struct {
		idx   int
		minSF lora.SF
		gain  float64
	}
	infos := make([]devInfo, n)
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		best := 0.0
		for _, g := range gains[i] {
			if g > best {
				best = g
			}
		}
		infos[i] = devInfo{idx: i, minSF: sf, gain: best}
	}
	sort.Slice(infos, func(x, y int) bool {
		if infos[x].minSF != infos[y].minSF {
			return infos[x].minSF < infos[y].minSF
		}
		if infos[x].gain != infos[y].gain {
			return infos[x].gain > infos[y].gain // closer first
		}
		return infos[x].idx < infos[y].idx
	})

	nextCh := 0
	for _, info := range infos {
		sf := info.minSF
		// Smallest SF at or above the feasibility bound with quota left.
		for sf < lora.MaxSF && quota[sf] == 0 {
			sf++
		}
		if quota[sf] > 0 {
			quota[sf]--
		}
		a.SF[info.idx] = sf
		tp, ok := model.MinFeasibleTP(gains, info.idx, sf, p.Plan)
		if !ok {
			tp = p.Plan.MaxTxPowerDBm
		}
		a.TPdBm[info.idx] = tp
		a.Channel[info.idx] = nextCh
		nextCh = (nextCh + 1) % p.Plan.NumChannels()
	}
	return a, nil
}

// assert interface compliance.
var (
	_ Allocator = Legacy{}
	_ Allocator = RSLoRa{}
)

// EvaluateMinEE is a convenience used by experiments and tests: it builds
// an evaluator for the allocation and returns the network's minimum energy
// efficiency in bits per joule.
func EvaluateMinEE(net *model.Network, p model.Params, a model.Allocation, mode model.Mode) (float64, error) {
	e, err := model.NewEvaluator(net, p, a, mode)
	if err != nil {
		return 0, fmt.Errorf("alloc: evaluate: %w", err)
	}
	min, _ := e.MinEE()
	return min, nil
}
