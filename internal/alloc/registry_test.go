package alloc

import (
	"testing"

	"eflora/internal/model"
	"eflora/internal/rng"
)

func TestStrategiesRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Strategies() {
		if s.Key == "" || s.Description == "" || s.New == nil {
			t.Fatalf("strategy %+v incomplete", s)
		}
		if seen[s.Key] {
			t.Fatalf("duplicate strategy key %q", s.Key)
		}
		seen[s.Key] = true
		for _, a := range s.Aliases {
			if seen[a] {
				t.Fatalf("alias %q collides", a)
			}
			seen[a] = true
		}
		al := s.New(Options{})
		if al == nil || al.Name() == "" {
			t.Fatalf("strategy %q constructs a nameless allocator", s.Key)
		}
	}
}

func TestStrategyByKey(t *testing.T) {
	for _, key := range []string{"legacy", "legacy-lora", "eflora", "EF-LoRa", "hier", "HIERARCHICAL", "anneal", "exhaustive", "adr", "rslora"} {
		if _, err := StrategyByKey(key); err != nil {
			t.Errorf("StrategyByKey(%q): %v", key, err)
		}
	}
	if _, err := StrategyByKey("nope"); err == nil {
		t.Error("unknown key accepted")
	}
}

// TestStrategiesAllocateSmall runs every registered strategy end-to-end on
// a tiny network (sized under every MaxDevices ceiling) and validates the
// result — the tournament harness depends on all of them being runnable
// through the same interface.
func TestStrategiesAllocateSmall(t *testing.T) {
	net := testNetwork(3, 1, 11)
	p := model.DefaultParams()
	for _, s := range Strategies() {
		a, err := s.New(Options{Parallelism: 1}).Allocate(net, p, rng.New(12))
		if err != nil {
			t.Errorf("%s: %v", s.Key, err)
			continue
		}
		if err := a.Validate(net.N(), p); err != nil {
			t.Errorf("%s: invalid allocation: %v", s.Key, err)
		}
	}
}
