package alloc

import (
	"fmt"
	"math"

	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// Exhaustive searches every (SF, TP, channel)^N assignment and returns the
// true max-min-optimal allocation under the analytical model. The search
// space is (n_s·n_t·n_c)^N — the paper proves the problem NP-hard — so this
// allocator exists purely to measure the greedy's optimality gap on
// networks of a handful of devices (see TestGreedyNearOptimal). MaxStates
// guards against accidental explosion.
type Exhaustive struct {
	// Mode selects the evaluator mode (default ModeExact).
	Mode model.Mode
	// MaxStates caps the number of assignments visited (default 5e6).
	MaxStates int
	// RestrictChannels limits the channel choices to the first k channels
	// (0 = all); with symmetric channels this shrinks the space without
	// changing the achievable optimum structure.
	RestrictChannels int
}

// Name implements Allocator.
func (Exhaustive) Name() string { return "Exhaustive" }

// Allocate implements Allocator by enumerating the full space.
func (x Exhaustive) Allocate(net *model.Network, p model.Params, _ *rng.RNG) (model.Allocation, error) {
	if x.Mode == 0 {
		x.Mode = model.ModeExact
	}
	if x.MaxStates <= 0 {
		x.MaxStates = 5_000_000
	}
	if err := p.Validate(); err != nil {
		return model.Allocation{}, err
	}
	if err := net.Validate(p); err != nil {
		return model.Allocation{}, err
	}
	n := net.N()
	gains := model.Gains(net, p)

	// Candidate list per device: feasible (sf, tp, ch) triples.
	nch := p.Plan.NumChannels()
	if x.RestrictChannels > 0 && x.RestrictChannels < nch {
		nch = x.RestrictChannels
	}
	type cand struct {
		sf lora.SF
		tp float64
		ch int
	}
	cands := make([][]cand, n)
	total := 1.0
	for i := 0; i < n; i++ {
		for _, sf := range lora.SFs() {
			for _, tp := range p.Plan.TxPowerLevels() {
				if !model.Feasible(gains, i, sf, tp) {
					continue
				}
				for c := 0; c < nch; c++ {
					cands[i] = append(cands[i], cand{sf, tp, c})
				}
			}
		}
		if len(cands[i]) == 0 {
			// Unreachable device: pin it to SF12 at max power.
			cands[i] = []cand{{lora.MaxSF, p.Plan.MaxTxPowerDBm, 0}}
		}
		total *= float64(len(cands[i]))
	}
	if total > float64(x.MaxStates) {
		return model.Allocation{}, fmt.Errorf(
			"alloc: exhaustive search space %.3g exceeds MaxStates %d", total, x.MaxStates)
	}

	// Walk the space as an odometer, mutating one evaluator incrementally:
	// each step reassigns only the devices whose digit changed, which is
	// O(G + affected group) instead of an O(N·G) rebuild per state.
	idx := make([]int, n)
	cur := model.NewAllocation(n, p.Plan)
	for i := range idx {
		c := cands[i][0]
		cur.SF[i], cur.TPdBm[i], cur.Channel[i] = c.sf, c.tp, c.ch
	}
	ev, err := model.NewEvaluator(net, p, cur, x.Mode)
	if err != nil {
		return model.Allocation{}, err
	}
	best := cur.Clone()
	bestMin := math.Inf(-1)
	states := 0
	for {
		min, _ := ev.MinEE()
		if min > bestMin {
			bestMin = min
			best = ev.Allocation()
		}
		// Odometer increment with incremental reassignment.
		i := 0
		for i < n {
			idx[i]++
			wrap := idx[i] >= len(cands[i])
			if wrap {
				idx[i] = 0
			}
			c := cands[i][idx[i]]
			if err := ev.SetDevice(i, c.sf, c.tp, c.ch); err != nil {
				return model.Allocation{}, err
			}
			if !wrap {
				break
			}
			i++
		}
		if i == n {
			break
		}
		states++
		// Flush incremental numerical drift periodically.
		if states%8192 == 0 {
			ev.RecomputeAll()
		}
	}
	return best, nil
}

var _ Allocator = Exhaustive{}
