package alloc

import (
	"fmt"
	"strings"
)

// Strategy describes one registered allocator: a stable key, a short
// description for CLIs, an optional device-count ceiling above which the
// strategy is impractical, and a constructor. The registry makes every
// allocator a first-class, enumerable citizen — the tournament harness
// runs all of them, and the CLIs resolve -allocator flags against it.
type Strategy struct {
	// Key is the canonical lower-case identifier (e.g. "eflora").
	Key string
	// Aliases are accepted alternative spellings.
	Aliases []string
	// Description is a one-line summary for -h output and reports.
	Description string
	// MaxDevices, when positive, is the largest network the strategy can
	// reasonably solve; the tournament skips larger scenario sizes.
	MaxDevices int
	// New constructs the allocator. Options fields a strategy does not
	// understand are ignored (Legacy, ADR, RS-LoRa); FixedTPdBm and Mode
	// pass through where meaningful.
	New func(opts Options) Allocator
}

// Strategies returns every registered allocator strategy in deterministic
// display order: baselines first, then the paper's greedy, then the
// scaling and reference solvers.
func Strategies() []Strategy {
	return []Strategy{
		{
			Key:         "legacy",
			Aliases:     []string{"legacy-lora"},
			Description: "legacy LoRaWAN: min feasible SF at max power, random channel",
			New:         func(Options) Allocator { return Legacy{} },
		},
		{
			Key:         "adr",
			Description: "LoRaWAN ADR: per-device SNR-margin SF/power control",
			New:         func(Options) Allocator { return ADR{} },
		},
		{
			Key:         "rslora",
			Aliases:     []string{"rs-lora"},
			Description: "RS-LoRa: collision-probability-fair SF shares (Eq. 22)",
			New:         func(Options) Allocator { return RSLoRa{} },
		},
		{
			Key:         "eflora",
			Aliases:     []string{"ef-lora"},
			Description: "EF-LoRa exact greedy max-min energy fairness (Algorithm 1)",
			New:         func(opts Options) Allocator { return NewEFLoRa(opts) },
		},
		{
			Key:         "anneal",
			Description: "simulated-annealing yardstick for the max-min objective",
			MaxDevices:  2000,
			New: func(opts Options) Allocator {
				return Anneal{Mode: opts.Mode}
			},
		},
		{
			Key:         "hier",
			Aliases:     []string{"hierarchical"},
			Description: "hierarchical: quadtree cells + exact greedy + seam reconcile",
			New: func(opts Options) Allocator {
				return NewHierarchical(HierOptions{Cell: opts, Parallelism: opts.Parallelism})
			},
		},
		{
			Key:         "exhaustive",
			Description: "exhaustive optimum (NP-hard; a handful of devices only)",
			MaxDevices:  3,
			New: func(opts Options) Allocator {
				return Exhaustive{Mode: opts.Mode, RestrictChannels: 2}
			},
		},
	}
}

// StrategyByKey resolves a key or alias (case-insensitive).
func StrategyByKey(key string) (Strategy, error) {
	k := strings.ToLower(key)
	for _, s := range Strategies() {
		if s.Key == k {
			return s, nil
		}
		for _, a := range s.Aliases {
			if a == k {
				return s, nil
			}
		}
	}
	keys := make([]string, 0, 8)
	for _, s := range Strategies() {
		keys = append(keys, s.Key)
	}
	return Strategy{}, fmt.Errorf("alloc: unknown strategy %q (want one of %s)", key, strings.Join(keys, ", "))
}
