package alloc

import (
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func TestADRAllocationValid(t *testing.T) {
	net := testNetwork(300, 3, 61)
	p := model.DefaultParams()
	a, err := ADR{}.Allocate(net, p, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(net.N(), p); err != nil {
		t.Fatal(err)
	}
}

func TestADRKeepsMargin(t *testing.T) {
	// Every assignment must retain the device margin over the SNR
	// threshold at the best gateway (mean channel).
	net := testNetwork(200, 2, 63)
	p := model.DefaultParams()
	const margin = 10.0
	a, err := ADR{DeviceMarginDB: margin}.Allocate(net, p, rng.New(64))
	if err != nil {
		t.Fatal(err)
	}
	gains := model.Gains(net, p)
	for i := 0; i < net.N(); i++ {
		best := 0.0
		for _, g := range gains[i] {
			if g > best {
				best = g
			}
		}
		rxDBm := a.TPdBm[i] + lora.LinearToDB(best)
		snrDB := rxDBm - p.NoiseDBm
		// Out-of-range devices legitimately miss the margin.
		if snrDB-lora.SNRThresholdDB(lora.MaxSF) < margin && a.SF[i] == lora.MaxSF &&
			a.TPdBm[i] == p.Plan.MaxTxPowerDBm {
			continue
		}
		if got := snrDB - lora.SNRThresholdDB(a.SF[i]); got < margin-1e-9 {
			t.Fatalf("device %d: margin %.2f dB below %v (SF %v, TP %v)",
				i, got, margin, a.SF[i], a.TPdBm[i])
		}
	}
}

func TestADRNearDevicesGetLowSFAndPower(t *testing.T) {
	net := &model.Network{
		Devices:  []geo.Point{{X: 50, Y: 0}, {X: 4800, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a, err := ADR{}.Allocate(net, p, rng.New(65))
	if err != nil {
		t.Fatal(err)
	}
	if a.SF[0] != lora.SF7 {
		t.Errorf("near device SF = %v, want SF7", a.SF[0])
	}
	if a.TPdBm[0] != p.Plan.MinTxPowerDBm {
		t.Errorf("near device TP = %v, want plan minimum", a.TPdBm[0])
	}
	if a.SF[1] <= a.SF[0] {
		t.Errorf("far device SF %v should exceed near device %v", a.SF[1], a.SF[0])
	}
}

func TestADRVersusLegacyCharacter(t *testing.T) {
	// ADR lowers transmission power where margin allows but holds an
	// SNR margin, so per device: TP at or below legacy's max power, SF at
	// or above legacy's aggressive minimum.
	net := testNetwork(200, 2, 67)
	p := model.DefaultParams()
	adr, err := ADR{}.Allocate(net, p, rng.New(68))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Legacy{}.Allocate(net, p, rng.New(68))
	if err != nil {
		t.Fatal(err)
	}
	var sumTP float64
	lowered := 0
	for i := range adr.SF {
		if adr.TPdBm[i] > legacy.TPdBm[i] {
			t.Fatalf("device %d: ADR TP %v above legacy %v", i, adr.TPdBm[i], legacy.TPdBm[i])
		}
		if adr.TPdBm[i] < legacy.TPdBm[i] {
			lowered++
		}
		if adr.SF[i] < legacy.SF[i] {
			t.Fatalf("device %d: ADR SF %v below legacy's minimum feasible %v", i, adr.SF[i], legacy.SF[i])
		}
		sumTP += adr.TPdBm[i]
	}
	if lowered == 0 {
		t.Error("ADR lowered nobody's power")
	}
	if mean := sumTP / float64(len(adr.TPdBm)); mean >= p.Plan.MaxTxPowerDBm {
		t.Errorf("ADR mean TP %v not below the maximum", mean)
	}
}

func TestADRMarginMakesItConservative(t *testing.T) {
	// A larger margin pushes devices to larger SFs.
	net := testNetwork(300, 1, 69)
	p := model.DefaultParams()
	tight, err := ADR{DeviceMarginDB: 5}.Allocate(net, p, rng.New(70))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := ADR{DeviceMarginDB: 15}.Allocate(net, p, rng.New(70))
	if err != nil {
		t.Fatal(err)
	}
	var sumTight, sumLoose int
	for i := range tight.SF {
		sumTight += int(tight.SF[i])
		sumLoose += int(loose.SF[i])
	}
	if sumLoose <= sumTight {
		t.Errorf("15 dB margin should yield larger SFs on average: %d vs %d", sumLoose, sumTight)
	}
}
