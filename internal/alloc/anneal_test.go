package alloc

import (
	"testing"

	"eflora/internal/model"
	"eflora/internal/rng"
)

func TestAnnealProducesValidAllocation(t *testing.T) {
	net := testNetwork(60, 2, 91)
	p := model.DefaultParams()
	a, err := Anneal{Steps: 2000, Restarts: 1}.Allocate(net, p, rng.New(92))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(net.N(), p); err != nil {
		t.Fatal(err)
	}
	gains := model.Gains(net, p)
	for i := 0; i < net.N(); i++ {
		if _, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm); !ok {
			continue
		}
		if !model.Feasible(gains, i, a.SF[i], a.TPdBm[i]) {
			t.Fatalf("device %d got infeasible (%v, %v)", i, a.SF[i], a.TPdBm[i])
		}
	}
}

func TestAnnealBeatsRandomStart(t *testing.T) {
	// Annealing must improve on a raw random allocation by a wide margin.
	net := testNetwork(80, 2, 93)
	p := model.DefaultParams()
	p.TrafficDutyCycle = 0.05 // make the optimization landscape matter

	an := Anneal{Steps: 4000, Restarts: 1}
	a, err := an.Allocate(net, p, rng.New(94))
	if err != nil {
		t.Fatal(err)
	}
	annealMin, err := EvaluateMinEE(net, p, a, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-step annealing = its random start.
	raw, err := Anneal{Steps: 1, Restarts: 1}.Allocate(net, p, rng.New(94))
	if err != nil {
		t.Fatal(err)
	}
	rawMin, err := EvaluateMinEE(net, p, raw, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if annealMin <= rawMin {
		t.Errorf("annealed min EE %v should beat its random start %v", annealMin, rawMin)
	}
}

func TestGreedyCompetitiveWithAnneal(t *testing.T) {
	// The greedy should reach at least ~70% of what a long annealing run
	// finds (and usually beats it) on a congested mid-size instance.
	net := testNetwork(100, 2, 95)
	p := model.DefaultParams()
	p.TrafficDutyCycle = 0.05

	greedy, err := NewEFLoRa(Options{}).Allocate(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	gMin, err := EvaluateMinEE(net, p, greedy, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := Anneal{Steps: 8000, Restarts: 2}.Allocate(net, p, rng.New(96))
	if err != nil {
		t.Fatal(err)
	}
	aMin, err := EvaluateMinEE(net, p, annealed, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("greedy=%.1f annealed=%.1f (ratio %.2f)", gMin, aMin, gMin/aMin)
	if gMin < 0.7*aMin {
		t.Errorf("greedy min EE %v below 70%% of annealed %v", gMin, aMin)
	}
}
