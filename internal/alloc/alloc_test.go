package alloc

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func testNetwork(nDev, nGW int, seed uint64) *model.Network {
	r := rng.New(seed)
	return &model.Network{
		Devices:  geo.UniformDisc(nDev, 3000, r),
		Gateways: geo.GridGateways(nGW, 3000),
	}
}

func TestSFSharesMatchEq22(t *testing.T) {
	shares := SFShares()
	sum := 0.0
	for _, s := range lora.SFs() {
		sum += shares[s]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %v", sum)
	}
	// Eq. 22 anchors: SF7 share = (7/128)/Σ ≈ 0.4497.
	if math.Abs(shares[lora.SF7]-0.4497) > 0.001 {
		t.Errorf("SF7 share = %v, want ~0.4497", shares[lora.SF7])
	}
	if math.Abs(shares[lora.SF12]-0.0241) > 0.001 {
		t.Errorf("SF12 share = %v, want ~0.0241", shares[lora.SF12])
	}
	// Strictly decreasing in SF.
	for i := 1; i < 6; i++ {
		if shares[lora.SFs()[i]] >= shares[lora.SFs()[i-1]] {
			t.Errorf("shares not decreasing at %v", lora.SFs()[i])
		}
	}
}

func TestLegacyAllocation(t *testing.T) {
	net := testNetwork(200, 2, 1)
	p := model.DefaultParams()
	a, err := Legacy{}.Allocate(net, p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(net.N(), p); err != nil {
		t.Fatal(err)
	}
	gains := model.Gains(net, p)
	for i := 0; i < net.N(); i++ {
		// Legacy always uses max power.
		if a.TPdBm[i] != p.Plan.MaxTxPowerDBm {
			t.Fatalf("device %d TP = %v, want max", i, a.TPdBm[i])
		}
		// And the minimum feasible SF.
		want, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if ok && a.SF[i] != want {
			t.Fatalf("device %d SF = %v, min feasible %v", i, a.SF[i], want)
		}
	}
}

func TestLegacyChannelsSpread(t *testing.T) {
	net := testNetwork(800, 1, 3)
	p := model.DefaultParams()
	a, err := Legacy{}.Allocate(net, p, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p.Plan.NumChannels())
	for _, c := range a.Channel {
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt == 0 {
			t.Errorf("channel %d unused across 800 devices", c)
		}
	}
}

func TestRSLoRaQuotasRespected(t *testing.T) {
	net := testNetwork(1000, 3, 5)
	p := model.DefaultParams()
	a, err := RSLoRa{}.Allocate(net, p, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(net.N(), p); err != nil {
		t.Fatal(err)
	}
	counts := make(map[lora.SF]int)
	for _, s := range a.SF {
		counts[s]++
	}
	shares := SFShares()
	// Feasibility can push devices to higher SFs, so lower SFs may be
	// under quota, but never over by more than rounding.
	for _, s := range lora.SFs() {
		maxAllowed := int(shares[s]*1000) + 6
		if counts[s] > maxAllowed {
			t.Errorf("%v count %d exceeds quota ~%d", s, counts[s], maxAllowed)
		}
	}
	// Unlike legacy, RS-LoRa must put a nontrivial share on large SFs.
	if counts[lora.SF11]+counts[lora.SF12] == 0 {
		t.Error("RS-LoRa assigned nobody to SF11/SF12")
	}
}

func TestRSLoRaFeasibility(t *testing.T) {
	net := testNetwork(300, 1, 7)
	p := model.DefaultParams()
	a, err := RSLoRa{}.Allocate(net, p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	gains := model.Gains(net, p)
	for i := 0; i < net.N(); i++ {
		min, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			continue
		}
		if a.SF[i] < min {
			t.Fatalf("device %d assigned %v below its feasibility bound %v", i, a.SF[i], min)
		}
		if !model.Feasible(gains, i, a.SF[i], a.TPdBm[i]) {
			t.Fatalf("device %d assignment (%v, %v dBm) cannot close the link", i, a.SF[i], a.TPdBm[i])
		}
	}
}

func TestEFLoRaImprovesOverBaselines(t *testing.T) {
	net := testNetwork(250, 3, 9)
	p := model.DefaultParams()
	r := rng.New(10)

	legacy, err := Legacy{}.Allocate(net, p, r)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RSLoRa{}.Allocate(net, p, r)
	if err != nil {
		t.Fatal(err)
	}
	ef, rep, err := NewEFLoRa(Options{}).AllocateWithReport(net, p, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := ef.Validate(net.N(), p); err != nil {
		t.Fatal(err)
	}

	minLegacy, err := EvaluateMinEE(net, p, legacy, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	minRS, err := EvaluateMinEE(net, p, rs, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	minEF, err := EvaluateMinEE(net, p, ef, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("min EE: legacy=%.1f rs=%.1f ef=%.1f (report %+v)", minLegacy, minRS, minEF, rep)
	if minEF <= minLegacy {
		t.Errorf("EF-LoRa min EE %v should beat legacy %v", minEF, minLegacy)
	}
	if minEF < minRS {
		t.Errorf("EF-LoRa min EE %v should be at least RS-LoRa %v", minEF, minRS)
	}
}

func TestEFLoRaMinEENeverDecreases(t *testing.T) {
	net := testNetwork(120, 2, 11)
	p := model.DefaultParams()
	_, rep, err := NewEFLoRa(Options{}).AllocateWithReport(net, p, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalMinEE < rep.InitialMinEE-1e-9 {
		t.Errorf("greedy decreased min EE: %v -> %v", rep.InitialMinEE, rep.FinalMinEE)
	}
	if rep.Passes < 1 {
		t.Errorf("report passes = %d", rep.Passes)
	}
	if rep.Elapsed <= 0 {
		t.Error("report has no elapsed time")
	}
}

func TestEFLoRaAllAssignmentsFeasible(t *testing.T) {
	net := testNetwork(150, 2, 13)
	p := model.DefaultParams()
	a, err := NewEFLoRa(Options{}).Allocate(net, p, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	gains := model.Gains(net, p)
	for i := 0; i < net.N(); i++ {
		if _, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm); !ok {
			continue // genuinely unreachable device
		}
		if !model.Feasible(gains, i, a.SF[i], a.TPdBm[i]) {
			t.Fatalf("device %d assigned infeasible (%v, %v dBm)", i, a.SF[i], a.TPdBm[i])
		}
	}
}

func TestEFLoRaFixedTPPinsPower(t *testing.T) {
	net := testNetwork(100, 2, 15)
	p := model.DefaultParams()
	tp := 14.0
	ef := NewEFLoRa(Options{FixedTPdBm: &tp})
	if ef.Name() != "EF-LoRa-14dBm" {
		t.Errorf("Name = %q", ef.Name())
	}
	a, err := ef.Allocate(net, p, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range a.TPdBm {
		if got != tp {
			t.Fatalf("device %d TP = %v, want pinned %v", i, got, tp)
		}
	}
}

func TestEFLoRaFixedTPUsuallyWorse(t *testing.T) {
	// Fig. 9: removing TP allocation costs fairness.
	net := testNetwork(200, 3, 17)
	p := model.DefaultParams()
	free, err := NewEFLoRa(Options{}).Allocate(net, p, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	tp := p.Plan.MaxTxPowerDBm
	pinned, err := NewEFLoRa(Options{FixedTPdBm: &tp}).Allocate(net, p, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	minFree, _ := EvaluateMinEE(net, p, free, model.ModeExact)
	minPinned, _ := EvaluateMinEE(net, p, pinned, model.ModeExact)
	if minPinned > minFree*1.05 {
		t.Errorf("pinned-TP min EE %v should not beat free TP %v", minPinned, minFree)
	}
}

func TestEFLoRaDeterministicDensityOrder(t *testing.T) {
	net := testNetwork(80, 2, 19)
	p := model.DefaultParams()
	a1, err := NewEFLoRa(Options{}).Allocate(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewEFLoRa(Options{}).Allocate(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.SF {
		if a1.SF[i] != a2.SF[i] || a1.TPdBm[i] != a2.TPdBm[i] || a1.Channel[i] != a2.Channel[i] {
			t.Fatalf("density-first EF-LoRa is not deterministic at device %d", i)
		}
	}
}

func TestEFLoRaRandomOrderStillImproves(t *testing.T) {
	net := testNetwork(100, 2, 21)
	p := model.DefaultParams()
	_, rep, err := NewEFLoRa(Options{RandomOrder: true}).AllocateWithReport(net, p, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalMinEE < rep.InitialMinEE-1e-9 {
		t.Errorf("random-order greedy decreased min EE: %v -> %v", rep.InitialMinEE, rep.FinalMinEE)
	}
}

func TestEFLoRaRejectsInvalidInputs(t *testing.T) {
	p := model.DefaultParams()
	empty := &model.Network{}
	if _, err := NewEFLoRa(Options{}).Allocate(empty, p, nil); err == nil {
		t.Error("empty network accepted")
	}
	bad := p
	bad.PacketIntervalS = -1
	net := testNetwork(10, 1, 23)
	if _, err := NewEFLoRa(Options{}).Allocate(net, bad, nil); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := (Legacy{}).Allocate(net, bad, rng.New(1)); err == nil {
		t.Error("legacy accepted invalid params")
	}
	if _, err := (RSLoRa{}).Allocate(net, bad, rng.New(1)); err == nil {
		t.Error("RS-LoRa accepted invalid params")
	}
}

func TestAllocatorNames(t *testing.T) {
	if (Legacy{}).Name() != "Legacy-LoRa" {
		t.Error("legacy name")
	}
	if (RSLoRa{}).Name() != "RS-LoRa" {
		t.Error("rs name")
	}
	if NewEFLoRa(Options{}).Name() != "EF-LoRa" {
		t.Error("ef name")
	}
}
