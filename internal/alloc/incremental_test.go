package alloc

import (
	"testing"

	"eflora/internal/geo"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func newIncremental(t *testing.T, nDev int) *Incremental {
	t.Helper()
	net := testNetwork(nDev, 2, 31)
	p := model.DefaultParams()
	base, err := NewEFLoRa(Options{}).Allocate(net, p, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(net, p, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return inc
}

func TestIncrementalAddDevice(t *testing.T) {
	inc := newIncremental(t, 60)
	n0 := inc.N()
	idx, err := inc.AddDevice(geo.Point{X: 500, Y: 500}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != n0 || inc.N() != n0+1 {
		t.Fatalf("AddDevice index %d, N %d; want %d, %d", idx, inc.N(), n0, n0+1)
	}
	a := inc.Allocation()
	p := model.DefaultParams()
	if err := a.Validate(inc.N(), p); err != nil {
		t.Fatalf("post-add allocation invalid: %v", err)
	}
	// The newcomer must have a feasible assignment.
	gains := model.Gains(inc.Network(), p)
	if !model.Feasible(gains, idx, a.SF[idx], a.TPdBm[idx]) {
		t.Errorf("newcomer got infeasible (%v, %v dBm)", a.SF[idx], a.TPdBm[idx])
	}
}

func TestIncrementalAddKeepsOthersUnchanged(t *testing.T) {
	inc := newIncremental(t, 50)
	before := inc.Allocation()
	if _, err := inc.AddDevice(geo.Point{X: -800, Y: 200}, 0); err != nil {
		t.Fatal(err)
	}
	after := inc.Allocation()
	for i := 0; i < len(before.SF); i++ {
		if before.SF[i] != after.SF[i] || before.TPdBm[i] != after.TPdBm[i] || before.Channel[i] != after.Channel[i] {
			t.Fatalf("existing device %d changed during incremental add", i)
		}
	}
}

func TestIncrementalRemoveDevice(t *testing.T) {
	inc := newIncremental(t, 40)
	allocBefore := inc.Allocation()
	if err := inc.RemoveDevice(10); err != nil {
		t.Fatal(err)
	}
	if inc.N() != 39 {
		t.Fatalf("N after remove = %d", inc.N())
	}
	after := inc.Allocation()
	// Device 11 shifted into slot 10.
	if after.SF[10] != allocBefore.SF[11] {
		t.Error("remove did not shift subsequent devices")
	}
	if _, err := inc.MinEE(); err != nil {
		t.Fatalf("post-remove state unusable: %v", err)
	}
}

func TestIncrementalRemoveBounds(t *testing.T) {
	inc := newIncremental(t, 5)
	if err := inc.RemoveDevice(-1); err == nil {
		t.Error("negative index accepted")
	}
	if err := inc.RemoveDevice(99); err == nil {
		t.Error("out-of-range index accepted")
	}
	for i := 0; i < 4; i++ {
		if err := inc.RemoveDevice(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.RemoveDevice(0); err == nil {
		t.Error("removing the last device should fail")
	}
}

func TestIncrementalReoptimize(t *testing.T) {
	inc := newIncremental(t, 50)
	// Churn the network, then reoptimize; min EE must not regress versus
	// the churned state.
	for i := 0; i < 5; i++ {
		if _, err := inc.AddDevice(geo.Point{X: float64(200 * i), Y: -300}, 0); err != nil {
			t.Fatal(err)
		}
	}
	churned, err := inc.MinEE()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := inc.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	// A fresh greedy follows its own trajectory and may land marginally
	// below a well-maintained incremental state; it must stay in the same
	// ballpark.
	if rep.FinalMinEE < 0.9*churned {
		t.Errorf("reoptimize regressed min EE: %v -> %v", churned, rep.FinalMinEE)
	}
}

func TestIncrementalReassignDevice(t *testing.T) {
	inc := newIncremental(t, 50)
	before, err := inc.MinEE()
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage one device: worst SF at maximum power on channel 0, then
	// ask the incremental maintainer to repair just that device.
	p := model.DefaultParams()
	if err := inc.SetAssignment(7, 12, p.Plan.MaxTxPowerDBm, 0); err != nil {
		t.Fatal(err)
	}
	changed, err := inc.ReassignDevice(7)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("sabotaged device not reassigned")
	}
	after, err := inc.MinEE()
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.9*before {
		t.Errorf("reassign left min EE degraded: %v -> %v", before, after)
	}
	// Everyone else must keep their settings.
	a := inc.Allocation()
	if err := a.Validate(inc.N(), p); err != nil {
		t.Fatalf("post-reassign allocation invalid: %v", err)
	}
	// A second reassign of the same device is a no-op (greedy fixpoint).
	changed, err = inc.ReassignDevice(7)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("reassign of an already-optimal device reported a change")
	}
	if _, err := inc.ReassignDevice(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := inc.ReassignDevice(inc.N()); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestIncrementalReassignKeepsOthersUnchanged(t *testing.T) {
	inc := newIncremental(t, 40)
	before := inc.Allocation()
	if _, err := inc.ReassignDevice(3); err != nil {
		t.Fatal(err)
	}
	after := inc.Allocation()
	for i := 0; i < len(before.SF); i++ {
		if i == 3 {
			continue
		}
		if before.SF[i] != after.SF[i] || before.TPdBm[i] != after.TPdBm[i] || before.Channel[i] != after.Channel[i] {
			t.Fatalf("device %d changed during reassign of device 3", i)
		}
	}
}

func TestIncrementalSetAssignmentValidates(t *testing.T) {
	inc := newIncremental(t, 10)
	if err := inc.SetAssignment(-1, 7, 14, 0); err == nil {
		t.Error("negative index accepted")
	}
	if err := inc.SetAssignment(99, 7, 14, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := inc.SetAssignment(0, 99, 14, 0); err == nil {
		t.Error("invalid SF accepted")
	}
	if err := inc.SetAssignment(0, 7, 14, -1); err == nil {
		t.Error("negative channel accepted")
	}
	if err := inc.SetAssignment(0, 7, 14, 9999); err == nil {
		t.Error("out-of-range channel accepted")
	}
}

// TestIncrementalReassignWarmCacheCoherent drives a long warm reassignment
// campaign with Refresh at pass boundaries, then cross-checks the cached
// evaluator path against a cold evaluation of the same allocation — the
// delta-based bookkeeping must track the committed allocation exactly.
func TestIncrementalReassignWarmCacheCoherent(t *testing.T) {
	inc := newIncremental(t, 50)
	p := model.DefaultParams()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < inc.N(); i += 7 {
			if _, err := inc.ReassignDevice(i); err != nil {
				t.Fatal(err)
			}
		}
		inc.Refresh()
	}
	a := inc.Allocation()
	if err := a.Validate(inc.N(), p); err != nil {
		t.Fatalf("post-campaign allocation invalid: %v", err)
	}
	cold, err := EvaluateMinEE(inc.Network(), p, a, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := inc.MinEE()
	if err != nil {
		t.Fatal(err)
	}
	if cold != warm {
		t.Fatalf("cached-path MinEE %v != cold evaluation %v", warm, cold)
	}
}

// TestIncrementalReassignAllocBudget pins the delta-based reassignment
// path: once the cache is warm, reassigning an already-optimal device must
// not allocate at all. A regression back to rebuild-per-call (gains matrix
// + evaluator construction, ~megabytes per call at paper scale) trips this
// immediately.
func TestIncrementalReassignAllocBudget(t *testing.T) {
	inc := newIncremental(t, 50)
	// Warm the cache and drive device 7 to its greedy fixpoint.
	if _, err := inc.ReassignDevice(7); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := inc.ReassignDevice(7); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm ReassignDevice allocates %v times per call, want 0", avg)
	}
}

func TestNewIncrementalValidates(t *testing.T) {
	net := testNetwork(10, 1, 33)
	p := model.DefaultParams()
	short := model.NewAllocation(3, p.Plan)
	if _, err := NewIncremental(net, p, short, Options{}); err == nil {
		t.Error("mis-sized allocation accepted")
	}
}
