package alloc

import (
	"math"

	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// Anneal is a simulated-annealing solver for the max-min allocation
// problem. It exists as a solution-quality yardstick: the exhaustive
// optimum is only computable for a handful of devices, so annealing gives
// an independent (slower, randomized) reference point for judging the
// EF-LoRa greedy at realistic sizes. It is not part of the paper.
type Anneal struct {
	// Steps is the number of proposal steps (default 20000).
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule,
	// expressed as fractions of the initial objective (defaults 0.5 and
	// 1e-4).
	StartTemp, EndTemp float64
	// Mode selects the evaluator mode (default ModeExact).
	Mode model.Mode
	// Restarts runs several independent chains, keeping the best
	// (default 2).
	Restarts int
}

func (an Anneal) withDefaults() Anneal {
	if an.Steps <= 0 {
		an.Steps = 20000
	}
	if an.StartTemp <= 0 {
		an.StartTemp = 0.5
	}
	if an.EndTemp <= 0 {
		an.EndTemp = 1e-4
	}
	if an.Mode == 0 {
		an.Mode = model.ModeExact
	}
	if an.Restarts <= 0 {
		an.Restarts = 2
	}
	return an
}

// Name implements Allocator.
func (Anneal) Name() string { return "Anneal" }

// Allocate implements Allocator.
func (an Anneal) Allocate(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, error) {
	an = an.withDefaults()
	if err := p.Validate(); err != nil {
		return model.Allocation{}, err
	}
	if err := net.Validate(p); err != nil {
		return model.Allocation{}, err
	}
	if r == nil {
		r = rng.New(1)
	}
	gains := model.Gains(net, p)
	n := net.N()
	tpLevels := p.Plan.TxPowerLevels()
	nch := p.Plan.NumChannels()

	// Feasible SF lower bound per device.
	minSF := make([]lora.SF, n)
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		minSF[i] = sf
	}

	bestOverall := model.Allocation{}
	bestOverallMin := math.Inf(-1)
	for restart := 0; restart < an.Restarts; restart++ {
		// Random feasible start.
		cur := model.NewAllocation(n, p.Plan)
		for i := 0; i < n; i++ {
			span := int(lora.MaxSF - minSF[i] + 1)
			cur.SF[i] = minSF[i] + lora.SF(r.Intn(span))
			cur.TPdBm[i] = tpLevels[r.Intn(len(tpLevels))]
			if !model.Feasible(gains, i, cur.SF[i], cur.TPdBm[i]) {
				cur.TPdBm[i] = p.Plan.MaxTxPowerDBm
			}
			cur.Channel[i] = r.Intn(nch)
		}
		ev, err := model.NewEvaluator(net, p, cur, an.Mode)
		if err != nil {
			return model.Allocation{}, err
		}
		curMin, _ := ev.MinEE()
		bestMin := curMin
		best := ev.Allocation()
		t0 := an.StartTemp * math.Max(curMin, 1e-12)
		t1 := an.EndTemp * math.Max(curMin, 1e-12)
		for step := 0; step < an.Steps; step++ {
			frac := float64(step) / float64(an.Steps)
			temp := t0 * math.Pow(t1/t0, frac)
			i := r.Intn(n)
			// Propose a random feasible move for one device.
			span := int(lora.MaxSF - minSF[i] + 1)
			sf := minSF[i] + lora.SF(r.Intn(span))
			tp := tpLevels[r.Intn(len(tpLevels))]
			if !model.Feasible(gains, i, sf, tp) {
				tp = p.Plan.MaxTxPowerDBm
			}
			ch := r.Intn(nch)
			proposed := ev.MinEEIf(i, sf, tp, ch)
			accept := proposed >= curMin
			if !accept && temp > 0 {
				accept = r.Float64() < math.Exp((proposed-curMin)/temp)
			}
			if !accept {
				continue
			}
			if err := ev.SetDevice(i, sf, tp, ch); err != nil {
				return model.Allocation{}, err
			}
			curMin, _ = ev.MinEE()
			if curMin > bestMin {
				bestMin = curMin
				best = ev.Allocation()
			}
		}
		if bestMin > bestOverallMin {
			bestOverallMin = bestMin
			bestOverall = best
		}
	}
	return bestOverall, nil
}

var _ Allocator = Anneal{}
