package alloc

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/par"
	"eflora/internal/rng"
)

// Options configures the EF-LoRa greedy allocator.
type Options struct {
	// Delta is the relative min-EE improvement below which the outer
	// iteration stops (paper Algorithm 1's δ; default 0.01).
	Delta float64
	// MaxPasses caps the outer iterations as a safety net (default 10).
	MaxPasses int
	// Mode selects the evaluator's interference handling (default
	// ModeExact).
	Mode model.Mode
	// DensityRadiusM is the neighborhood radius of the density-first
	// device ordering (default 500 m).
	DensityRadiusM float64
	// FixedTPdBm, when non-nil, pins every device to this transmission
	// power — the EF-LoRa-14dBm ablation of Fig. 9.
	FixedTPdBm *float64
	// RandomOrder disables the density-first ordering and visits devices
	// in a seeded random order instead (the ablation behind the paper's
	// 10.3% execution-delay claim).
	RandomOrder bool
	// Parallelism bounds the candidate-scan goroutines of the greedy's
	// inner (SF, TP, channel) loop (0 = NumCPU). Workers share the
	// evaluator as a read-only snapshot and the winning move is committed
	// sequentially, so the allocation is bit-identical at any setting.
	Parallelism int
	// Starts caps the multi-start initial allocations the greedy refines:
	// 0 runs all four, 1..4 keeps a prefix of [minimal-SF/max-power,
	// balanced/max-power, balanced/min-power, RS-LoRa]. The hierarchical
	// allocator trims per-cell starts to trade a little solution quality
	// for throughput.
	Starts int
}

func (o Options) withDefaults() Options {
	if o.Delta <= 0 {
		o.Delta = 0.01
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 10
	}
	if o.Mode == 0 {
		o.Mode = model.ModeExact
	}
	if o.DensityRadiusM <= 0 {
		o.DensityRadiusM = 500
	}
	return o
}

// Report describes one EF-LoRa allocation run.
type Report struct {
	// Passes is the number of outer iterations executed.
	Passes int
	// Improvements counts committed single-device changes.
	Improvements int
	// CandidatesTried counts evaluated (device, SF, TP, channel) options.
	CandidatesTried int
	// InitialMinEE and FinalMinEE bracket the optimization (bits/J).
	InitialMinEE, FinalMinEE float64
	// Elapsed is the wall-clock optimization time (Fig. 10's metric).
	Elapsed time.Duration
}

// EFLoRa is the paper's greedy max-min energy-fairness allocator
// (Algorithm 1): starting from a density-first minimal allocation it
// repeatedly re-optimizes one device at a time, committing any (SF, TP,
// channel) choice that raises the network's minimum energy efficiency,
// until one full pass improves the minimum by less than δ.
type EFLoRa struct {
	opts Options
}

// NewEFLoRa returns an EF-LoRa allocator with the given options.
func NewEFLoRa(opts Options) *EFLoRa {
	return &EFLoRa{opts: opts.withDefaults()}
}

// Name implements Allocator.
func (a *EFLoRa) Name() string {
	if a.opts.FixedTPdBm != nil {
		return fmt.Sprintf("EF-LoRa-%gdBm", *a.opts.FixedTPdBm)
	}
	return "EF-LoRa"
}

// Allocate implements Allocator.
func (a *EFLoRa) Allocate(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, error) {
	alloc, _, err := a.AllocateWithReport(net, p, r)
	return alloc, err
}

// AllocateWithReport runs the greedy optimization and returns its
// diagnostics alongside the allocation.
func (a *EFLoRa) AllocateWithReport(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, Report, error) {
	//eflora:nondeterminism-ok Report.Elapsed is a wall-clock diagnostic (Fig. 10); it never feeds the allocation
	start := time.Now()
	var rep Report
	if err := p.Validate(); err != nil {
		return model.Allocation{}, rep, err
	}
	if err := net.Validate(p); err != nil {
		return model.Allocation{}, rep, err
	}
	gains := model.Gains(net, p)
	order := a.deviceOrder(net, r)

	// Multi-start: a single-device greedy cannot make the coordinated
	// "spread the herd" moves that congested regimes need (moving one
	// device out of a crowded group rarely raises the minimum by itself,
	// and lowering one device's power never helps the bottleneck
	// directly), so we run the same greedy from three initial
	// allocations — minimum feasible SF at maximum power (best when
	// links are margin-limited), collision-balanced group populations at
	// maximum power, and collision-balanced populations at minimum
	// feasible power (best when traffic is collision-limited: low power
	// means low visibility, hence low mutual collision exposure) — and
	// keep the best converged result. Every committed move is monotone
	// in min-EE, so each run can only improve on its start.
	// Inits are built lazily so Options.Starts skips the construction cost
	// of the starts it trims, not just their refinement.
	initBuilders := []func() (model.Allocation, bool){
		func() (model.Allocation, bool) { return a.initialAllocation(net, p, gains), true },
		func() (model.Allocation, bool) { return a.initialBalanced(net, p, gains, false), true },
		func() (model.Allocation, bool) { return a.initialBalanced(net, p, gains, true), true },
		func() (model.Allocation, bool) {
			// Refining from the RS-LoRa baseline's own allocation
			// guarantees EF-LoRa dominates it under the model: the greedy
			// is monotone, so the converged result scores at least as
			// high. (Skipped when power is pinned: RS-LoRa sets
			// per-device powers.)
			if a.opts.FixedTPdBm != nil {
				return model.Allocation{}, false
			}
			rs, err := (RSLoRa{}).Allocate(net, p, nil)
			if err != nil {
				return model.Allocation{}, false
			}
			return rs, true
		},
	}
	starts := a.opts.Starts
	if starts <= 0 || starts > len(initBuilders) {
		starts = len(initBuilders)
	}
	bestMin := math.Inf(-1)
	var bestAlloc model.Allocation
	for ii := 0; ii < starts; ii++ {
		init, ok := initBuilders[ii]()
		if !ok {
			continue
		}
		ev, err := model.NewEvaluator(net, p, init, a.opts.Mode)
		if err != nil {
			return model.Allocation{}, rep, err
		}
		if ii == 0 {
			rep.InitialMinEE, _ = ev.MinEE()
		}
		cur, err := a.refine(ev, gains, order, p, &rep)
		if err != nil {
			return model.Allocation{}, rep, err
		}
		if cur > bestMin {
			bestMin = cur
			bestAlloc = ev.Allocation()
		}
	}
	rep.FinalMinEE = bestMin
	//eflora:nondeterminism-ok Report.Elapsed is a wall-clock diagnostic (Fig. 10); it never feeds the allocation
	rep.Elapsed = time.Since(start)
	return bestAlloc, rep, nil
}

// refine runs the two-phase greedy passes on an evaluator and returns the
// converged minimum EE. Phase 1 fixes transmission power at its starting
// value and optimizes spreading factors and channels — the structural
// moves with the largest max-min gains. Phase 2 opens the full (SF, TP,
// channel) space. Every committed move raises the network minimum, so
// phase 2 can only improve on phase 1; running TP moves from a cold start
// instead lets micro power-reduction gains drag the whole network into a
// no-fading-margin basin long before the structural moves have been found.
//
//eflora:hotpath
func (a *EFLoRa) refine(ev *model.Evaluator, gains [][]float64, order []int, p model.Params, rep *Report) (float64, error) {
	phases := [][]float64{{p.Plan.MaxTxPowerDBm}, a.tpLevels(p.Plan)}
	if a.opts.FixedTPdBm != nil {
		phases = [][]float64{{*a.opts.FixedTPdBm}}
	}
	nch := p.Plan.NumChannels()
	workers := par.Workers(a.opts.Parallelism)

	var cands []candidate
	cur, _ := ev.MinEE()
	for _, tpLevels := range phases {
		for pass := 0; pass < a.opts.MaxPasses; pass++ {
			rep.Passes++
			before := cur
			for _, i := range order {
				curSF, curTP, curCh := ev.Assignment(i)
				cands = cands[:0]
				for _, sf := range lora.SFs() {
					for _, tp := range tpLevels {
						if !model.Feasible(gains, i, sf, tp) {
							continue
						}
						for ch := 0; ch < nch; ch++ {
							if sf == curSF && tp == curTP && ch == curCh {
								continue
							}
							cands = append(cands, candidate{sf: sf, tp: tp, ch: ch})
						}
					}
				}
				rep.CandidatesTried += len(cands)
				bestIdx := scanCandidates(ev, i, cands, cur, workers)
				if bestIdx >= 0 {
					c := cands[bestIdx]
					if err := ev.SetDevice(i, c.sf, c.tp, c.ch); err != nil {
						return 0, err
					}
					rep.Improvements++
					cur, _ = ev.MinEE()
				}
			}
			// Flush the second-order staleness (capacity factor) before
			// judging convergence.
			ev.RecomputeAll()
			cur, _ = ev.MinEE()
			if before <= 0 {
				if cur <= 0 {
					break
				}
				continue
			}
			if (cur-before)/before <= a.opts.Delta {
				break
			}
		}
	}
	return cur, nil
}

// candidate is one (SF, TP, channel) option of the greedy's inner scan.
type candidate struct {
	sf lora.SF
	tp float64
	ch int
}

// scanCandidates evaluates every candidate reassignment of device dev and
// returns the index of the winner — the first candidate (in enumeration
// order) attaining the largest network minimum strictly above cur — or -1
// when no candidate improves on cur.
//
// With more than one worker the candidate list is split into contiguous
// chunks scanned concurrently against the shared evaluator (reads only;
// see model.Evaluator's concurrency contract). Each worker prunes with a
// threshold strictly below its running best, so candidates tying the best
// still evaluate exactly, and the reduce resolves ties by candidate
// index. That reproduces the sequential first-winner rule bit-for-bit at
// any worker count.
//
//eflora:hotpath
func scanCandidates(ev *model.Evaluator, dev int, cands []candidate, cur float64, workers int) int {
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		bestIdx, bestEE := -1, cur
		for ci, c := range cands {
			got := ev.MinEEIfAbove(dev, c.sf, c.tp, c.ch, bestEE)
			if got > bestEE {
				bestIdx, bestEE = ci, got
			}
		}
		return bestIdx
	}
	type scanBest struct {
		idx int
		val float64
	}
	bests := make([]scanBest, workers)
	chunk := (len(cands) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		bests[w] = scanBest{idx: -1, val: cur}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//eflora:alloc-ok one goroutine closure per worker per scan, bounded by Parallelism; the allocator's alloc budget (BenchmarkEFLoRaAllocate) is measured at workers=1
		go func(w, lo, hi int) {
			defer wg.Done()
			b := scanBest{idx: -1, val: cur}
			for ci := lo; ci < hi; ci++ {
				c := cands[ci]
				got := ev.MinEEIfAbove(dev, c.sf, c.tp, c.ch, math.Nextafter(b.val, math.Inf(-1)))
				if got > b.val {
					b = scanBest{idx: ci, val: got}
				}
			}
			bests[w] = b
		}(w, lo, hi)
	}
	wg.Wait()
	out := scanBest{idx: -1, val: cur}
	for _, b := range bests {
		if b.idx < 0 {
			continue
		}
		// Strictly-greater keeps the lowest candidate index on value ties,
		// because chunks are contiguous and visited in ascending order.
		if b.val > out.val {
			out = b
		}
	}
	return out.idx
}

// deviceOrder returns the visiting order: density-first (most contended
// devices first, the paper's boost) or seeded-random for the ablation.
func (a *EFLoRa) deviceOrder(net *model.Network, r *rng.RNG) []int {
	n := net.N()
	if a.opts.RandomOrder {
		if r == nil {
			r = rng.New(0)
		}
		return r.Perm(n)
	}
	counts := geo.NeighborCounts(net.Devices, a.opts.DensityRadiusM)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return counts[order[x]] > counts[order[y]]
	})
	return order
}

// initialAllocation builds Alloc_0: each device on its minimum feasible SF
// with channels balanced per SF. Power starts at the maximum: the greedy
// then *lowers* power where that raises the network minimum (a cheaper
// bottleneck or less interference onto it). Starting at the minimum
// feasible power instead would leave no Rayleigh-fading margin anywhere,
// and a max-min greedy cannot climb out of a uniformly unreliable start
// because raising a non-bottleneck device never improves the minimum.
func (a *EFLoRa) initialAllocation(net *model.Network, p model.Params, gains [][]float64) model.Allocation {
	n := net.N()
	alloc := model.NewAllocation(n, p.Plan)
	nch := p.Plan.NumChannels()
	load := make(map[lora.SF][]int, 6)
	for _, s := range lora.SFs() {
		load[s] = make([]int, nch)
	}
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		alloc.SF[i] = sf
		tp := p.Plan.MaxTxPowerDBm
		if a.opts.FixedTPdBm != nil {
			tp = *a.opts.FixedTPdBm
		}
		alloc.TPdBm[i] = tp
		// Least-loaded channel for this SF keeps initial groups balanced.
		best := 0
		for c := 1; c < nch; c++ {
			if load[sf][c] < load[sf][best] {
				best = c
			}
		}
		alloc.Channel[i] = best
		load[sf][best]++
	}
	return alloc
}

// initialBalanced builds the collision-balanced starting point: every
// (SF, channel) group gets as equal a population as feasibility allows.
// Devices with the tightest feasibility bound (largest minimum SF) choose
// first so their limited options are not consumed by flexible devices.
// Under duty-cycle traffic the collision exposure of a group depends only
// on its population and visibility, making this start near-optimal for
// congestion; minTP additionally starts power at the lowest level that
// closes the link, minimizing mutual visibility.
func (a *EFLoRa) initialBalanced(net *model.Network, p model.Params, gains [][]float64, minTP bool) model.Allocation {
	n := net.N()
	alloc := model.NewAllocation(n, p.Plan)
	nch := p.Plan.NumChannels()
	load := make(map[lora.SF][]int, 6)
	for _, s := range lora.SFs() {
		load[s] = make([]int, nch)
	}
	minSF := make([]lora.SF, n)
	order := make([]int, n)
	for i := 0; i < n; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		minSF[i] = sf
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return minSF[order[x]] > minSF[order[y]]
	})
	for _, i := range order {
		bestSF, bestCh, bestLoad := minSF[i], 0, int(^uint(0)>>1)
		for sf := minSF[i]; sf <= lora.MaxSF; sf++ {
			for c := 0; c < nch; c++ {
				if load[sf][c] < bestLoad {
					bestSF, bestCh, bestLoad = sf, c, load[sf][c]
				}
			}
		}
		alloc.SF[i] = bestSF
		alloc.Channel[i] = bestCh
		load[bestSF][bestCh]++
		tp := p.Plan.MaxTxPowerDBm
		switch {
		case a.opts.FixedTPdBm != nil:
			tp = *a.opts.FixedTPdBm
		case minTP:
			if mtp, ok := model.MinFeasibleTP(gains, i, bestSF, p.Plan); ok {
				tp = mtp
			}
		}
		alloc.TPdBm[i] = tp
	}
	return alloc
}

// tpLevels returns the candidate transmission powers.
func (a *EFLoRa) tpLevels(plan lora.Plan) []float64 {
	if a.opts.FixedTPdBm != nil {
		return []float64{*a.opts.FixedTPdBm}
	}
	return plan.TxPowerLevels()
}

var _ Allocator = (*EFLoRa)(nil)
