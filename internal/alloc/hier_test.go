package alloc

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"eflora/internal/golden"
	"eflora/internal/model"
	"eflora/internal/rng"
)

var update = flag.Bool("update", false, "rewrite golden files")

// hierMinEETolerance is the pinned multi-cell quality bound: the
// hierarchical allocator's min-EE must stay within 5% of the exact
// greedy's on the differential suite. Measured headroom (n=500, forced
// 13-16 cells, seeds 1-6): ratios 0.985-0.995; at congested scale the
// hierarchical result routinely *exceeds* the exact greedy's single
// trajectory (n=2000: ratio 1.08), so only the lower bound is pinned.
const hierMinEETolerance = 0.95

// TestHierarchicalSingleCellBitExact pins the small-network degradation:
// a network at or under MaxCellDevices must bypass partitioning and
// reproduce the exact greedy bit-for-bit.
func TestHierarchicalSingleCellBitExact(t *testing.T) {
	net := testNetwork(120, 3, 51)
	p := model.DefaultParams()
	exact, err := NewEFLoRa(Options{Parallelism: 1}).Allocate(net, p, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHierarchical(HierOptions{Cell: Options{Parallelism: 1}})
	got, rep, err := h.AllocateWithReport(net, p, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 1 {
		t.Fatalf("single-cell network partitioned into %d cells", rep.Cells)
	}
	for i := 0; i < net.N(); i++ {
		if exact.SF[i] != got.SF[i] || exact.TPdBm[i] != got.TPdBm[i] || exact.Channel[i] != got.Channel[i] {
			t.Fatalf("device %d diverged from exact greedy: (%v,%v,%d) vs (%v,%v,%d)",
				i, exact.SF[i], exact.TPdBm[i], exact.Channel[i],
				got.SF[i], got.TPdBm[i], got.Channel[i])
		}
	}
}

// TestHierarchicalMinEEWithinTolerance is the multi-cell differential: on
// networks forced into many cells, the hierarchical min-EE must stay
// within the pinned tolerance of the exact greedy across seeds.
func TestHierarchicalMinEEWithinTolerance(t *testing.T) {
	p := model.DefaultParams()
	for seed := uint64(1); seed <= 5; seed++ {
		net := testNetwork(500, 4, seed)
		exact, err := NewEFLoRa(Options{Parallelism: 1}).Allocate(net, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		exactEE, err := EvaluateMinEE(net, p, exact, model.ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		h := NewHierarchical(HierOptions{MaxCellDevices: 100, Parallelism: 1})
		got, rep, err := h.AllocateWithReport(net, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cells < 2 {
			t.Fatalf("seed %d: expected a multi-cell partition, got %d cells", seed, rep.Cells)
		}
		gotEE, err := EvaluateMinEE(net, p, got, model.ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		if gotEE < hierMinEETolerance*exactEE {
			t.Errorf("seed %d: hierarchical min-EE %v below %.2f x exact %v",
				seed, gotEE, hierMinEETolerance, exactEE)
		}
		if rep.MinEE != gotEE {
			t.Errorf("seed %d: report min-EE %v != evaluated %v", seed, rep.MinEE, gotEE)
		}
	}
}

// TestHierarchicalBitIdenticalAcrossParallelism pins the determinism
// contract of the cell fan-out: cells write into index-addressed slots and
// the seam reconcile is sequential, so the allocation is bit-identical at
// any worker count.
func TestHierarchicalBitIdenticalAcrossParallelism(t *testing.T) {
	net := testNetwork(600, 4, 93)
	p := model.DefaultParams()
	base, err := NewHierarchical(HierOptions{MaxCellDevices: 100, Parallelism: 1}).Allocate(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := NewHierarchical(HierOptions{MaxCellDevices: 100, Parallelism: workers}).Allocate(net, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < net.N(); i++ {
			if base.SF[i] != got.SF[i] || base.TPdBm[i] != got.TPdBm[i] || base.Channel[i] != got.Channel[i] {
				t.Fatalf("parallelism=%d: device %d diverged: (%v,%v,%d) vs (%v,%v,%d)",
					workers, i, base.SF[i], base.TPdBm[i], base.Channel[i],
					got.SF[i], got.TPdBm[i], got.Channel[i])
			}
		}
	}
}

// hierDigest renders an allocation as a golden digest line.
func hierDigest(label string, a model.Allocation) string {
	sfs := make([]int, len(a.SF))
	for i, s := range a.SF {
		sfs[i] = int(s)
	}
	return fmt.Sprintf("%s %s\n", label, golden.Digest(
		golden.Ints(sfs),
		golden.Floats(a.TPdBm),
		golden.Ints(a.Channel),
	))
}

// TestHierarchicalGoldenDeterminism pins the multi-cell allocation
// bit-for-bit across releases, at sequential and NumCPU parallelism. A
// change to the quadtree, the per-cell greedy, the merge order or the seam
// reconcile that alters any device's assignment fails here.
func TestHierarchicalGoldenDeterminism(t *testing.T) {
	net := testNetwork(600, 4, 93)
	p := model.DefaultParams()
	var out strings.Builder
	for _, workers := range []int{1, 0} {
		a, err := NewHierarchical(HierOptions{MaxCellDevices: 100, Parallelism: workers}).Allocate(net, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		out.WriteString(hierDigest(fmt.Sprintf("hier-600dev-parallelism-%d", workers), a))
	}
	golden.Check(t, "testdata/golden_hier.txt", out.String(), *update)
}

// TestHierarchicalReportDiagnostics sanity-checks the run report on a
// forced multi-cell network.
func TestHierarchicalReportDiagnostics(t *testing.T) {
	net := testNetwork(500, 4, 7)
	p := model.DefaultParams()
	_, rep, err := NewHierarchical(HierOptions{MaxCellDevices: 100, Parallelism: 1}).AllocateWithReport(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells < 2 {
		t.Errorf("Cells = %d, want >= 2", rep.Cells)
	}
	if rep.BoundaryDevices <= 0 || rep.BoundaryDevices >= net.N() {
		t.Errorf("BoundaryDevices = %d, want in (0, %d)", rep.BoundaryDevices, net.N())
	}
	if rep.MinEE <= 0 {
		t.Errorf("MinEE = %v, want > 0", rep.MinEE)
	}
	if rep.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", rep.Elapsed)
	}
}

// TestHierarchicalValidates mirrors the other allocators' input checking.
func TestHierarchicalValidates(t *testing.T) {
	p := model.DefaultParams()
	h := NewHierarchical(HierOptions{})
	if _, err := h.Allocate(&model.Network{}, p, nil); err == nil {
		t.Error("empty network accepted")
	}
	p.GatewayCapacity = -1
	if _, err := h.Allocate(testNetwork(10, 1, 1), p, nil); err == nil {
		t.Error("invalid params accepted")
	}
}
