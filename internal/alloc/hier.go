package alloc

import (
	"math"
	"sort"
	"time"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/par"
	"eflora/internal/rng"
)

// HierOptions configures the hierarchical allocator.
type HierOptions struct {
	// Cell configures the per-cell exact greedy. Zero fields take the
	// EF-LoRa defaults, except that on the multi-cell path an unset
	// Starts/MaxPasses is trimmed (2 starts, 4 passes): a cell is a small,
	// spatially coherent slice of the network, where the extra starts and
	// long convergence tails buy little but cost the fan-out dearly.
	Cell Options
	// MaxCellDevices is the quadtree leaf capacity — the largest network
	// the exact greedy is asked to solve in one piece (default 256).
	// Networks at or under this size bypass partitioning entirely and run
	// the plain greedy, so small deployments lose nothing.
	MaxCellDevices int
	// ReconcilePasses bounds the boundary-reconcile sweeps over each cell
	// seam after the cells are merged (default 2). Each pass re-runs the
	// single-device greedy for every device near the seam against the
	// two-cell neighborhood via the delta-based Incremental path, stopping
	// early when a pass commits no move.
	ReconcilePasses int
	// BoundaryFrac classifies a device as a boundary device when it lies
	// within this fraction of its cell's width (height) of a cell side
	// that is not also a side of the quadtree root (default 0.1).
	BoundaryFrac float64
	// Parallelism bounds the per-cell allocation goroutines (0 = NumCPU).
	// Cells write into index-addressed slots merged in cell order, so the
	// result is bit-identical at any setting; the per-cell greedy's inner
	// scan runs sequentially (its Parallelism is forced to 1) because the
	// cell fan-out already saturates the cores.
	Parallelism int
}

func (o HierOptions) withDefaults() HierOptions {
	if o.MaxCellDevices <= 0 {
		o.MaxCellDevices = 256
	}
	if o.ReconcilePasses <= 0 {
		o.ReconcilePasses = 2
	}
	if o.BoundaryFrac <= 0 {
		o.BoundaryFrac = 0.1
	}
	return o
}

// cellOptions derives the per-cell greedy options for the multi-cell path.
func (o HierOptions) cellOptions() Options {
	c := o.Cell
	if c.Starts <= 0 {
		c.Starts = 2
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 4
	}
	c.Parallelism = 1
	return c
}

// HierReport describes one hierarchical allocation run.
type HierReport struct {
	// Cells is the number of quadtree leaf cells allocated (1 when the
	// network was small enough to bypass partitioning).
	Cells int
	// BoundaryDevices counts the devices visited by the reconcile sweeps.
	BoundaryDevices int
	// ReconcileMoves counts the committed boundary reassignments.
	ReconcileMoves int
	// MinEE is the final network minimum energy efficiency (bits/J).
	MinEE float64
	// Elapsed is the wall-clock allocation time.
	Elapsed time.Duration
}

// Hierarchical scales the EF-LoRa greedy to networks far past the exact
// algorithm's reach: it partitions the deployment into spatial cells with
// a deterministic quadtree (geo.QuadtreePartition), solves each cell with
// the exact greedy concurrently, merges the per-cell allocations, and
// repairs the seams by re-running the single-device greedy for boundary
// devices against the full network (Incremental.ReassignDevice, whose
// delta-based evaluator updates make each repair O(group) instead of
// O(N·G)).
//
// The result is bit-identical at any Parallelism: cells are independent
// sub-problems written into index-addressed slots, and the reconcile sweep
// is sequential in ascending device order.
type Hierarchical struct {
	opts HierOptions
}

// NewHierarchical returns a hierarchical allocator with the given options.
func NewHierarchical(opts HierOptions) *Hierarchical {
	return &Hierarchical{opts: opts.withDefaults()}
}

// Name implements Allocator.
func (h *Hierarchical) Name() string { return "Hierarchical" }

// Allocate implements Allocator.
func (h *Hierarchical) Allocate(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, error) {
	alloc, _, err := h.AllocateWithReport(net, p, r)
	return alloc, err
}

// AllocateWithReport runs the hierarchical allocation and returns its
// diagnostics alongside the allocation.
func (h *Hierarchical) AllocateWithReport(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, HierReport, error) {
	//eflora:nondeterminism-ok HierReport.Elapsed is a wall-clock diagnostic; it never feeds the allocation
	start := time.Now()
	var rep HierReport
	if err := p.Validate(); err != nil {
		return model.Allocation{}, rep, err
	}
	if err := net.Validate(p); err != nil {
		return model.Allocation{}, rep, err
	}

	// Small networks: the exact greedy is affordable and strictly better,
	// so hierarchical degrades to it bit-for-bit.
	if net.N() <= h.opts.MaxCellDevices {
		ef := NewEFLoRa(h.opts.Cell)
		a, efRep, err := ef.AllocateWithReport(net, p, r)
		if err != nil {
			return model.Allocation{}, rep, err
		}
		rep.Cells = 1
		rep.MinEE = efRep.FinalMinEE
		//eflora:nondeterminism-ok HierReport.Elapsed is a wall-clock diagnostic; it never feeds the allocation
		rep.Elapsed = time.Since(start)
		return a, rep, nil
	}

	part := geo.QuadtreePartition(net.Devices, geo.QuadtreeOptions{MaxLeaf: h.opts.MaxCellDevices})
	rep.Cells = len(part.Cells)

	// Solve every cell independently. Each cell sees only its own devices
	// (against the full gateway set), so the sub-problems are embarrassingly
	// parallel; slots keep the merge order fixed.
	cellAllocs := make([]model.Allocation, len(part.Cells))
	errs := make([]error, len(part.Cells))
	cellOpts := h.opts.cellOptions()
	par.For(h.opts.Parallelism, len(part.Cells), func(ci int) {
		sub := net.Subset(part.Cells[ci].Members)
		ef := NewEFLoRa(cellOpts)
		cellAllocs[ci], errs[ci] = ef.Allocate(sub, p, nil)
	})
	if err := par.FirstErr(errs); err != nil {
		return model.Allocation{}, rep, err
	}

	merged := model.NewAllocation(net.N(), p.Plan)
	for ci, cell := range part.Cells {
		a := cellAllocs[ci]
		for j, i := range cell.Members {
			merged.SF[i] = a.SF[j]
			merged.TPdBm[i] = a.TPdBm[j]
			merged.Channel[i] = a.Channel[j]
		}
	}

	// Boundary reconcile: devices near a cell seam were allocated blind to
	// their neighbors across it. For every pair of adjacent cells, re-run
	// the single-device greedy for the devices near the shared seam
	// against the two-cell neighborhood (Incremental over the pair's
	// union), sweeping in ascending device order until a pass commits
	// nothing. The neighborhood — not the full network — is the evaluation
	// scope on purpose: a candidate probe costs O(group members), and
	// co-group devices many cells away contribute negligible collision
	// exposure at the seam's gateways while making every probe O(N/48).
	if err := h.reconcileSeams(net, p, part, merged, &rep); err != nil {
		return model.Allocation{}, rep, err
	}

	minEE, err := EvaluateMinEE(net, p, merged, h.opts.Cell.withDefaults().Mode)
	if err != nil {
		return model.Allocation{}, rep, err
	}
	rep.MinEE = minEE
	//eflora:nondeterminism-ok HierReport.Elapsed is a wall-clock diagnostic; it never feeds the allocation
	rep.Elapsed = time.Since(start)
	return merged, rep, nil
}

// seam is one pair of adjacent cells and the devices near their shared
// side.
type seam struct {
	a, b     int
	boundary []int
}

// reconcileSeams repairs every cell seam of the merged allocation in
// place. Seams are visited in ascending (a, b) cell order and each seam's
// sweep is sequential, so the result is independent of Parallelism.
func (h *Hierarchical) reconcileSeams(net *model.Network, p model.Params, part geo.Partition, merged model.Allocation, rep *HierReport) error {
	seams := findSeams(net.Devices, part, h.opts.BoundaryFrac)
	counted := make(map[int]bool)
	for _, s := range seams {
		for _, i := range s.boundary {
			if !counted[i] {
				counted[i] = true
				rep.BoundaryDevices++
			}
		}
	}
	for _, s := range seams {
		if len(s.boundary) == 0 {
			continue
		}
		// The pair's union, ascending: local index j in sub maps to global
		// index members[j].
		members := mergeSorted(part.Cells[s.a].Members, part.Cells[s.b].Members)
		sub := net.Subset(members)
		local := make(map[int]int, len(members))
		for j, g := range members {
			local[g] = j
		}
		subAlloc := model.Allocation{
			SF:      make([]lora.SF, len(members)),
			TPdBm:   make([]float64, len(members)),
			Channel: make([]int, len(members)),
		}
		for j, g := range members {
			subAlloc.SF[j] = merged.SF[g]
			subAlloc.TPdBm[j] = merged.TPdBm[g]
			subAlloc.Channel[j] = merged.Channel[g]
		}
		inc, err := NewIncremental(sub, p, subAlloc, h.opts.Cell)
		if err != nil {
			return err
		}
		for pass := 0; pass < h.opts.ReconcilePasses; pass++ {
			moves := 0
			for _, g := range s.boundary {
				changed, err := inc.ReassignDevice(local[g])
				if err != nil {
					return err
				}
				if changed {
					moves++
				}
			}
			rep.ReconcileMoves += moves
			inc.Refresh()
			if moves == 0 {
				break
			}
		}
		repaired := inc.Allocation()
		for j, g := range members {
			merged.SF[g] = repaired.SF[j]
			merged.TPdBm[g] = repaired.TPdBm[j]
			merged.Channel[g] = repaired.Channel[j]
		}
	}
	return nil
}

// findSeams enumerates adjacent cell pairs (a < b, ascending) and the
// devices within frac of each pair's shared side.
func findSeams(pts []geo.Point, part geo.Partition, frac float64) []seam {
	var seams []seam
	for a := 0; a < len(part.Cells); a++ {
		for b := a + 1; b < len(part.Cells); b++ {
			ra, rb := part.Cells[a].Rect, part.Cells[b].Rect
			if !rectsAdjacent(ra, rb) {
				continue
			}
			s := seam{a: a, b: b}
			s.boundary = append(s.boundary, nearSeam(pts, part.Cells[a], rb, frac)...)
			s.boundary = append(s.boundary, nearSeam(pts, part.Cells[b], ra, frac)...)
			sort.Ints(s.boundary)
			seams = append(seams, s)
		}
	}
	return seams
}

// rectsAdjacent reports whether two cell rectangles share a boundary
// segment of positive length. Quadtree rects share exact float values at
// seams (both sides derive from the same midpoint computation), so the
// equality comparisons are exact.
func rectsAdjacent(a, b geo.Rect) bool {
	overlap := func(lo1, hi1, lo2, hi2 float64) bool {
		return math.Min(hi1, hi2) > math.Max(lo1, lo2)
	}
	if (a.MaxX == b.MinX || b.MaxX == a.MinX) && overlap(a.MinY, a.MaxY, b.MinY, b.MaxY) {
		return true
	}
	if (a.MaxY == b.MinY || b.MaxY == a.MinY) && overlap(a.MinX, a.MaxX, b.MinX, b.MaxX) {
		return true
	}
	return false
}

// nearSeam returns cell members within frac of the cell's extent of the
// side(s) it shares with the neighbor rect.
func nearSeam(pts []geo.Point, cell geo.Cell, neighbor geo.Rect, frac float64) []int {
	r := cell.Rect
	w, ht := r.Width()*frac, r.Height()*frac
	var out []int
	for _, i := range cell.Members {
		p := pts[i]
		near := (r.MaxX == neighbor.MinX && r.MaxX-p.X <= w) ||
			(r.MinX == neighbor.MaxX && p.X-r.MinX <= w) ||
			(r.MaxY == neighbor.MinY && r.MaxY-p.Y <= ht) ||
			(r.MinY == neighbor.MaxY && p.Y-r.MinY <= ht)
		if near {
			out = append(out, i)
		}
	}
	return out
}

// mergeSorted merges two ascending index slices into one ascending slice.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

var _ Allocator = (*Hierarchical)(nil)
