package alloc

import (
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// ADR implements the standard network-side LoRaWAN Adaptive Data Rate
// algorithm (the Semtech/TTN recipe the paper's related-work section
// surveys): from the best gateway's link SNR, compute the margin over the
// current data rate's demodulation floor plus a device margin, then spend
// that margin first on lowering the spreading factor (3 dB less margin
// needed per step, matching Table IV's thresholds) and then on lowering
// transmission power in 2 dB steps. Channels hop pseudo-randomly as in
// LoRaWAN.
//
// ADR is link-local: like Legacy it ignores contention entirely, but
// unlike Legacy it also reduces transmission power, making it a stronger
// energy baseline.
type ADR struct {
	// DeviceMarginDB is the installation margin the network server keeps
	// in reserve (TTN default: 10 dB; a paper-harsh 5 dB keeps more
	// devices on low SFs).
	DeviceMarginDB float64
}

// Name implements Allocator.
func (ADR) Name() string { return "ADR" }

// Allocate implements Allocator.
func (d ADR) Allocate(net *model.Network, p model.Params, r *rng.RNG) (model.Allocation, error) {
	if err := p.Validate(); err != nil {
		return model.Allocation{}, err
	}
	if err := net.Validate(p); err != nil {
		return model.Allocation{}, err
	}
	margin := d.DeviceMarginDB
	if margin == 0 {
		margin = 10
	}
	gains := model.Gains(net, p)
	a := model.NewAllocation(net.N(), p.Plan)
	for i := 0; i < net.N(); i++ {
		// Best-gateway SNR at maximum power (the server sees the best
		// uplink copy).
		best := 0.0
		for _, g := range gains[i] {
			if g > best {
				best = g
			}
		}
		sf := lora.MaxSF
		tp := p.Plan.MaxTxPowerDBm
		if best > 0 {
			rxDBm := tp + lora.LinearToDB(best)
			snrDB := rxDBm - p.NoiseDBm
			// Lower SF while the margin over the *next* data rate's
			// threshold stays positive.
			sf = lora.MaxSF
			for s := lora.MaxSF; s >= lora.MinSF; s-- {
				if snrDB-lora.SNRThresholdDB(s) >= margin {
					sf = s
				}
			}
			// Spend remaining margin on power, in plan steps, keeping
			// the device margin intact.
			slack := snrDB - lora.SNRThresholdDB(sf) - margin
			step := p.Plan.TxPowerStepDBm
			if step <= 0 {
				step = 2
			}
			for tp-step >= p.Plan.MinTxPowerDBm && slack >= step {
				tp -= step
				slack -= step
			}
		}
		a.SF[i] = sf
		a.TPdBm[i] = tp
		a.Channel[i] = r.Intn(p.Plan.NumChannels())
	}
	return a, nil
}

var _ Allocator = ADR{}
