package alloc

import (
	"testing"

	"eflora/internal/model"
	"eflora/internal/rng"
)

// TestEFLoRaBitIdenticalAcrossParallelism pins the parallel candidate
// scan to the sequential greedy: every (SF, TP, channel) assignment must
// match exactly, because the parallel reduce keeps the same
// first-best-candidate rule (highest value, lowest enumeration index on
// ties) as the sequential scan.
func TestEFLoRaBitIdenticalAcrossParallelism(t *testing.T) {
	net := testNetwork(150, 3, 91)
	p := model.DefaultParams()

	seq, err := NewEFLoRa(Options{Parallelism: 1}).Allocate(net, p, rng.New(92))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := NewEFLoRa(Options{Parallelism: workers}).Allocate(net, p, rng.New(92))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < net.N(); i++ {
			if seq.SF[i] != got.SF[i] || seq.TPdBm[i] != got.TPdBm[i] || seq.Channel[i] != got.Channel[i] {
				t.Fatalf("parallelism=%d: device %d diverged: (%v,%v,%d) vs (%v,%v,%d)",
					workers, i, seq.SF[i], seq.TPdBm[i], seq.Channel[i],
					got.SF[i], got.TPdBm[i], got.Channel[i])
			}
		}
	}
}
