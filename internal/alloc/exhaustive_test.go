package alloc

import (
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// tinyNetwork builds a network small enough for exhaustive search.
func tinyNetwork(nDev int, seed uint64) (*model.Network, model.Params) {
	r := rng.New(seed)
	net := &model.Network{
		Devices:  geo.UniformDisc(nDev, 2500, r),
		Gateways: []geo.Point{{X: -800, Y: 0}, {X: 800, Y: 0}},
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 10 // chatty, so choices matter
	// Shrink the space: 2 channels, 3 power levels.
	p.Plan.Uplink = p.Plan.Uplink[:2]
	p.Plan.MinTxPowerDBm = 6
	p.Plan.TxPowerStepDBm = 4
	return net, p
}

func TestExhaustiveRejectsHugeSpace(t *testing.T) {
	net, p := tinyNetwork(12, 1)
	_, err := Exhaustive{MaxStates: 1000}.Allocate(net, p, nil)
	if err == nil {
		t.Error("oversized search accepted")
	}
}

func TestExhaustiveBeatsOrMatchesEverything(t *testing.T) {
	net, p := tinyNetwork(4, 2)
	opt, err := Exhaustive{}.Allocate(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	optMin, err := EvaluateMinEE(net, p, opt, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range []Allocator{Legacy{}, RSLoRa{}, NewEFLoRa(Options{})} {
		a, err := al.Allocate(net, p, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		min, err := EvaluateMinEE(net, p, a, model.ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		if min > optMin*(1+1e-9) {
			t.Errorf("%s min EE %v exceeds the exhaustive optimum %v", al.Name(), min, optMin)
		}
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	// The paper motivates the greedy as a practical substitute for the
	// NP-hard optimum; on tiny instances it should stay within a modest
	// factor of the true max-min optimum.
	worst := 1.0
	for seed := uint64(1); seed <= 5; seed++ {
		net, p := tinyNetwork(4, seed)
		opt, err := Exhaustive{}.Allocate(net, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		optMin, err := EvaluateMinEE(net, p, opt, model.ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := NewEFLoRa(Options{}).Allocate(net, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		gMin, err := EvaluateMinEE(net, p, greedy, model.ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		if optMin <= 0 {
			continue
		}
		ratio := gMin / optMin
		if ratio < worst {
			worst = ratio
		}
		if ratio < 0.7 {
			t.Errorf("seed %d: greedy %v vs optimum %v (ratio %.3f)", seed, gMin, optMin, ratio)
		}
	}
	t.Logf("worst greedy/optimal ratio over 5 instances: %.3f", worst)
}

func TestExhaustiveHandlesUnreachableDevice(t *testing.T) {
	net := &model.Network{
		Devices:  []geo.Point{{X: 100, Y: 0}, {X: 90000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	p.Plan.Uplink = p.Plan.Uplink[:1]
	p.Plan.MinTxPowerDBm = 14
	a, err := Exhaustive{}.Allocate(net, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SF[1].Valid() {
		t.Errorf("unreachable device got invalid SF %d", int(a.SF[1]))
	}
	if a.SF[1] != lora.MaxSF {
		t.Errorf("unreachable device pinned to %v, want SF12", a.SF[1])
	}
}
