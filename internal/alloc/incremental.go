package alloc

import (
	"fmt"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
)

// Incremental maintains an EF-LoRa allocation under device additions and
// removals without re-optimizing the whole network — the incremental
// algorithm the paper's discussion section (III-E) sketches as future
// work. An added device greedily picks the (SF, TP, channel) maximizing
// the network minimum EE given everyone else's settings; removals keep the
// survivors' settings unchanged. Call Reoptimize to run the full greedy
// when enough churn has accumulated.
type Incremental struct {
	opts  Options
	p     model.Params
	net   model.Network
	alloc model.Allocation
}

// NewIncremental seeds an incremental maintainer from a full allocation.
func NewIncremental(net *model.Network, p model.Params, alloc model.Allocation, opts Options) (*Incremental, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	if err := alloc.Validate(net.N(), p); err != nil {
		return nil, err
	}
	inc := &Incremental{
		opts: opts.withDefaults(),
		p:    p,
		net: model.Network{
			Devices:  append([]geo.Point(nil), net.Devices...),
			Gateways: append([]geo.Point(nil), net.Gateways...),
		},
		alloc: alloc.Clone(),
	}
	if net.Env != nil {
		inc.net.Env = append([]int(nil), net.Env...)
	}
	if net.IntervalS != nil {
		inc.net.IntervalS = append([]float64(nil), net.IntervalS...)
	}
	return inc, nil
}

// N returns the current number of devices.
func (inc *Incremental) N() int { return inc.net.N() }

// Allocation returns a snapshot of the current allocation.
func (inc *Incremental) Allocation() model.Allocation { return inc.alloc.Clone() }

// Network returns a copy of the current deployment.
func (inc *Incremental) Network() *model.Network {
	cp := model.Network{
		Devices:  append([]geo.Point(nil), inc.net.Devices...),
		Gateways: append([]geo.Point(nil), inc.net.Gateways...),
	}
	if inc.net.Env != nil {
		cp.Env = append([]int(nil), inc.net.Env...)
	}
	if inc.net.IntervalS != nil {
		cp.IntervalS = append([]float64(nil), inc.net.IntervalS...)
	}
	return &cp
}

// AddDevice joins a new device at pos (environment class env) and assigns
// it the resources that maximize the resulting network minimum EE while
// every existing device keeps its settings. It returns the new device's
// index.
func (inc *Incremental) AddDevice(pos geo.Point, env int) (int, error) {
	if env != 0 && (inc.net.Env == nil || env >= len(inc.p.Environments)) {
		if env >= len(inc.p.Environments) {
			return 0, fmt.Errorf("alloc: environment %d out of range", env)
		}
	}
	if inc.net.Env == nil && env != 0 {
		inc.net.Env = make([]int, inc.net.N())
	}
	inc.net.Devices = append(inc.net.Devices, pos)
	if inc.net.Env != nil {
		inc.net.Env = append(inc.net.Env, env)
	}
	if inc.net.IntervalS != nil {
		inc.net.IntervalS = append(inc.net.IntervalS, inc.p.PacketIntervalS)
	}
	i := inc.net.N() - 1

	// Provisional settings for the newcomer, then greedy improvement of
	// only that device.
	gains := model.Gains(&inc.net, inc.p)
	sf, ok := model.MinFeasibleSF(gains, i, inc.p.Plan.MaxTxPowerDBm)
	if !ok {
		sf = lora.MaxSF
	}
	tp := inc.p.Plan.MaxTxPowerDBm
	if mtp, ok := model.MinFeasibleTP(gains, i, sf, inc.p.Plan); ok {
		tp = mtp
	}
	inc.alloc.SF = append(inc.alloc.SF, sf)
	inc.alloc.TPdBm = append(inc.alloc.TPdBm, tp)
	inc.alloc.Channel = append(inc.alloc.Channel, 0)

	ev, err := model.NewEvaluator(&inc.net, inc.p, inc.alloc, inc.opts.Mode)
	if err != nil {
		return 0, err
	}
	bestEE, _ := ev.MinEE()
	bestSF, bestTP, bestCh := sf, tp, 0
	tpLevels := inc.p.Plan.TxPowerLevels()
	if inc.opts.FixedTPdBm != nil {
		tpLevels = []float64{*inc.opts.FixedTPdBm}
	}
	for _, s := range lora.SFs() {
		for _, t := range tpLevels {
			if !model.Feasible(gains, i, s, t) {
				continue
			}
			for c := 0; c < inc.p.Plan.NumChannels(); c++ {
				got := ev.MinEEIfAbove(i, s, t, c, bestEE)
				if got > bestEE {
					bestEE, bestSF, bestTP, bestCh = got, s, t, c
				}
			}
		}
	}
	inc.alloc.SF[i] = bestSF
	inc.alloc.TPdBm[i] = bestTP
	inc.alloc.Channel[i] = bestCh
	return i, nil
}

// ReassignDevice re-runs the single-device greedy for an existing device:
// holding every other device's settings fixed, device i moves to the
// (SF, TP, channel) that maximizes the network minimum EE. This is the
// online re-allocation step a live network server applies to a device
// whose observed link quality has drifted. It reports whether the
// assignment changed.
func (inc *Incremental) ReassignDevice(i int) (bool, error) {
	n := inc.net.N()
	if i < 0 || i >= n {
		return false, fmt.Errorf("alloc: reassign index %d out of range [0,%d)", i, n)
	}
	gains := model.Gains(&inc.net, inc.p)
	ev, err := model.NewEvaluator(&inc.net, inc.p, inc.alloc, inc.opts.Mode)
	if err != nil {
		return false, err
	}
	bestEE, _ := ev.MinEE()
	bestSF, bestTP, bestCh := inc.alloc.SF[i], inc.alloc.TPdBm[i], inc.alloc.Channel[i]
	tpLevels := inc.p.Plan.TxPowerLevels()
	if inc.opts.FixedTPdBm != nil {
		tpLevels = []float64{*inc.opts.FixedTPdBm}
	}
	for _, s := range lora.SFs() {
		for _, t := range tpLevels {
			if !model.Feasible(gains, i, s, t) {
				continue
			}
			for c := 0; c < inc.p.Plan.NumChannels(); c++ {
				got := ev.MinEEIfAbove(i, s, t, c, bestEE)
				if got > bestEE {
					bestEE, bestSF, bestTP, bestCh = got, s, t, c
				}
			}
		}
	}
	changed := bestSF != inc.alloc.SF[i] || bestTP != inc.alloc.TPdBm[i] || bestCh != inc.alloc.Channel[i]
	inc.alloc.SF[i] = bestSF
	inc.alloc.TPdBm[i] = bestTP
	inc.alloc.Channel[i] = bestCh
	return changed, nil
}

// RemoveDevice deletes device i; the remaining devices keep their
// settings (indices above i shift down by one).
func (inc *Incremental) RemoveDevice(i int) error {
	n := inc.net.N()
	if i < 0 || i >= n {
		return fmt.Errorf("alloc: remove index %d out of range [0,%d)", i, n)
	}
	if n == 1 {
		return fmt.Errorf("alloc: cannot remove the last device")
	}
	inc.net.Devices = append(inc.net.Devices[:i], inc.net.Devices[i+1:]...)
	if inc.net.Env != nil {
		inc.net.Env = append(inc.net.Env[:i], inc.net.Env[i+1:]...)
	}
	if inc.net.IntervalS != nil {
		inc.net.IntervalS = append(inc.net.IntervalS[:i], inc.net.IntervalS[i+1:]...)
	}
	inc.alloc.SF = append(inc.alloc.SF[:i], inc.alloc.SF[i+1:]...)
	inc.alloc.TPdBm = append(inc.alloc.TPdBm[:i], inc.alloc.TPdBm[i+1:]...)
	inc.alloc.Channel = append(inc.alloc.Channel[:i], inc.alloc.Channel[i+1:]...)
	return nil
}

// MinEE evaluates the current allocation's minimum energy efficiency.
func (inc *Incremental) MinEE() (float64, error) {
	return EvaluateMinEE(&inc.net, inc.p, inc.alloc, inc.opts.Mode)
}

// Reoptimize runs the full EF-LoRa greedy on the current deployment,
// replacing the incrementally maintained allocation.
func (inc *Incremental) Reoptimize() (Report, error) {
	ef := NewEFLoRa(inc.opts)
	a, rep, err := ef.AllocateWithReport(&inc.net, inc.p, nil)
	if err != nil {
		return rep, err
	}
	inc.alloc = a
	return rep, nil
}
