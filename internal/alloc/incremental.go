package alloc

import (
	"fmt"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
)

// Incremental maintains an EF-LoRa allocation under device additions and
// removals without re-optimizing the whole network — the incremental
// algorithm the paper's discussion section (III-E) sketches as future
// work. An added device greedily picks the (SF, TP, channel) maximizing
// the network minimum EE given everyone else's settings; removals keep the
// survivors' settings unchanged. Call Reoptimize to run the full greedy
// when enough churn has accumulated.
type Incremental struct {
	opts  Options
	p     model.Params
	net   model.Network
	alloc model.Allocation

	// Reassignment state, built lazily on the first ReassignDevice (or
	// AddDevice) and reused across calls so the reconcile path is
	// delta-based: a reassignment touches only the two (SF, channel)
	// groups it moves between (model.Evaluator.SetDevice) instead of
	// rebuilding gains and evaluator per call. Topology changes
	// (add/remove/reoptimize) invalidate all three.
	ev       *model.Evaluator
	gains    [][]float64
	tpLevels []float64
}

// NewIncremental seeds an incremental maintainer from a full allocation.
func NewIncremental(net *model.Network, p model.Params, alloc model.Allocation, opts Options) (*Incremental, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	if err := alloc.Validate(net.N(), p); err != nil {
		return nil, err
	}
	inc := &Incremental{
		opts: opts.withDefaults(),
		p:    p,
		net: model.Network{
			Devices:  append([]geo.Point(nil), net.Devices...),
			Gateways: append([]geo.Point(nil), net.Gateways...),
		},
		alloc: alloc.Clone(),
	}
	if net.Env != nil {
		inc.net.Env = append([]int(nil), net.Env...)
	}
	if net.IntervalS != nil {
		inc.net.IntervalS = append([]float64(nil), net.IntervalS...)
	}
	return inc, nil
}

// invalidate drops the cached reassignment state after a topology or
// wholesale allocation change.
func (inc *Incremental) invalidate() {
	inc.ev = nil
	inc.gains = nil
	inc.tpLevels = nil
}

// ensureEval builds the cached gains matrix, evaluator and TP ladder if a
// topology change (or construction) invalidated them.
func (inc *Incremental) ensureEval() error {
	if inc.ev != nil {
		return nil
	}
	inc.gains = model.Gains(&inc.net, inc.p)
	ev, err := model.NewEvaluator(&inc.net, inc.p, inc.alloc, inc.opts.Mode)
	if err != nil {
		return err
	}
	inc.ev = ev
	if inc.opts.FixedTPdBm != nil {
		inc.tpLevels = []float64{*inc.opts.FixedTPdBm}
	} else {
		inc.tpLevels = inc.p.Plan.TxPowerLevels()
	}
	return nil
}

// Refresh flushes the second-order capacity staleness that delta commits
// accumulate in the cached evaluator (see model.Evaluator.RecomputeAll).
// Callers running many ReassignDevice calls — the hierarchical boundary
// reconcile — invoke it at pass boundaries, mirroring the full greedy.
func (inc *Incremental) Refresh() {
	if inc.ev != nil {
		inc.ev.RecomputeAll()
	}
}

// N returns the current number of devices.
func (inc *Incremental) N() int { return inc.net.N() }

// Allocation returns a snapshot of the current allocation.
func (inc *Incremental) Allocation() model.Allocation { return inc.alloc.Clone() }

// Network returns a copy of the current deployment.
func (inc *Incremental) Network() *model.Network {
	cp := model.Network{
		Devices:  append([]geo.Point(nil), inc.net.Devices...),
		Gateways: append([]geo.Point(nil), inc.net.Gateways...),
	}
	if inc.net.Env != nil {
		cp.Env = append([]int(nil), inc.net.Env...)
	}
	if inc.net.IntervalS != nil {
		cp.IntervalS = append([]float64(nil), inc.net.IntervalS...)
	}
	return &cp
}

// AddDevice joins a new device at pos (environment class env) and assigns
// it the resources that maximize the resulting network minimum EE while
// every existing device keeps its settings. It returns the new device's
// index.
func (inc *Incremental) AddDevice(pos geo.Point, env int) (int, error) {
	if env != 0 && (inc.net.Env == nil || env >= len(inc.p.Environments)) {
		if env >= len(inc.p.Environments) {
			return 0, fmt.Errorf("alloc: environment %d out of range", env)
		}
	}
	if inc.net.Env == nil && env != 0 {
		inc.net.Env = make([]int, inc.net.N())
	}
	inc.net.Devices = append(inc.net.Devices, pos)
	if inc.net.Env != nil {
		inc.net.Env = append(inc.net.Env, env)
	}
	if inc.net.IntervalS != nil {
		inc.net.IntervalS = append(inc.net.IntervalS, inc.p.PacketIntervalS)
	}
	i := inc.net.N() - 1

	// Provisional settings for the newcomer, then greedy improvement of
	// only that device. The gains matrix changed shape, so the cached
	// reassignment state is rebuilt (and stays warm for later reassigns).
	inc.invalidate()
	gains := model.Gains(&inc.net, inc.p)
	sf, ok := model.MinFeasibleSF(gains, i, inc.p.Plan.MaxTxPowerDBm)
	if !ok {
		sf = lora.MaxSF
	}
	tp := inc.p.Plan.MaxTxPowerDBm
	if mtp, ok := model.MinFeasibleTP(gains, i, sf, inc.p.Plan); ok {
		tp = mtp
	}
	inc.alloc.SF = append(inc.alloc.SF, sf)
	inc.alloc.TPdBm = append(inc.alloc.TPdBm, tp)
	inc.alloc.Channel = append(inc.alloc.Channel, 0)

	ev, err := model.NewEvaluator(&inc.net, inc.p, inc.alloc, inc.opts.Mode)
	if err != nil {
		return 0, err
	}
	inc.gains = gains
	inc.ev = ev
	if inc.opts.FixedTPdBm != nil {
		inc.tpLevels = []float64{*inc.opts.FixedTPdBm}
	} else {
		inc.tpLevels = inc.p.Plan.TxPowerLevels()
	}
	if sf, tp, ch, changed := inc.bestMove(i); changed {
		if err := inc.commit(i, sf, tp, ch); err != nil {
			return 0, err
		}
	}
	return i, nil
}

// bestMove scans every feasible (SF, TP, channel) for device i against the
// cached evaluator and returns the move that maximizes the network minimum
// EE, and whether it differs from i's current assignment. The cached
// evaluator must be valid (ensureEval).
func (inc *Incremental) bestMove(i int) (lora.SF, float64, int, bool) {
	bestEE, _ := inc.ev.MinEE()
	bestSF, bestTP, bestCh := inc.alloc.SF[i], inc.alloc.TPdBm[i], inc.alloc.Channel[i]
	nch := inc.p.Plan.NumChannels()
	for s := lora.MinSF; s <= lora.MaxSF; s++ {
		for _, t := range inc.tpLevels {
			if !model.Feasible(inc.gains, i, s, t) {
				continue
			}
			for c := 0; c < nch; c++ {
				got := inc.ev.MinEEIfAbove(i, s, t, c, bestEE)
				if got > bestEE {
					bestEE, bestSF, bestTP, bestCh = got, s, t, c
				}
			}
		}
	}
	changed := bestSF != inc.alloc.SF[i] || bestTP != inc.alloc.TPdBm[i] || bestCh != inc.alloc.Channel[i]
	return bestSF, bestTP, bestCh, changed
}

// commit applies a move to both the allocation snapshot and the cached
// evaluator, which delta-updates only the two (SF, channel) groups the
// move touches.
func (inc *Incremental) commit(i int, sf lora.SF, tp float64, ch int) error {
	if err := inc.ev.SetDevice(i, sf, tp, ch); err != nil {
		return err
	}
	inc.alloc.SF[i] = sf
	inc.alloc.TPdBm[i] = tp
	inc.alloc.Channel[i] = ch
	return nil
}

// ReassignDevice re-runs the single-device greedy for an existing device:
// holding every other device's settings fixed, device i moves to the
// (SF, TP, channel) that maximizes the network minimum EE. This is the
// online re-allocation step a live network server applies to a device
// whose observed link quality has drifted, and the hierarchical
// allocator's boundary-reconcile step. It reports whether the assignment
// changed.
//
// The first call builds the gains matrix and evaluator; subsequent calls
// reuse them, committing moves as delta updates that touch only the two
// (SF, channel) groups involved — the warm path allocates nothing. Long
// reassignment campaigns should call Refresh at pass boundaries to flush
// second-order capacity staleness.
func (inc *Incremental) ReassignDevice(i int) (bool, error) {
	n := inc.net.N()
	if i < 0 || i >= n {
		return false, fmt.Errorf("alloc: reassign index %d out of range [0,%d)", i, n)
	}
	if err := inc.ensureEval(); err != nil {
		return false, err
	}
	sf, tp, ch, changed := inc.bestMove(i)
	if !changed {
		return false, nil
	}
	if err := inc.commit(i, sf, tp, ch); err != nil {
		return false, err
	}
	return true, nil
}

// SetAssignment overrides device i's committed (SF, TP dBm, channel) — the
// entry point for reflecting settings a device actually runs (e.g. after a
// rejected LinkADRAns) rather than the planned ones. It writes through the
// cached reassignment state so a later ReassignDevice sees the override.
func (inc *Incremental) SetAssignment(i int, sf lora.SF, tpDBm float64, ch int) error {
	n := inc.net.N()
	if i < 0 || i >= n {
		return fmt.Errorf("alloc: assignment index %d out of range [0,%d)", i, n)
	}
	if !sf.Valid() {
		return fmt.Errorf("alloc: invalid SF %d", sf)
	}
	if ch < 0 || ch >= inc.p.Plan.NumChannels() {
		return fmt.Errorf("alloc: channel %d out of range [0,%d)", ch, inc.p.Plan.NumChannels())
	}
	if inc.ev != nil {
		if err := inc.ev.SetDevice(i, sf, tpDBm, ch); err != nil {
			return err
		}
	}
	inc.alloc.SF[i] = sf
	inc.alloc.TPdBm[i] = tpDBm
	inc.alloc.Channel[i] = ch
	return nil
}

// RemoveDevice deletes device i; the remaining devices keep their
// settings (indices above i shift down by one).
func (inc *Incremental) RemoveDevice(i int) error {
	n := inc.net.N()
	if i < 0 || i >= n {
		return fmt.Errorf("alloc: remove index %d out of range [0,%d)", i, n)
	}
	if n == 1 {
		return fmt.Errorf("alloc: cannot remove the last device")
	}
	inc.net.Devices = append(inc.net.Devices[:i], inc.net.Devices[i+1:]...)
	if inc.net.Env != nil {
		inc.net.Env = append(inc.net.Env[:i], inc.net.Env[i+1:]...)
	}
	if inc.net.IntervalS != nil {
		inc.net.IntervalS = append(inc.net.IntervalS[:i], inc.net.IntervalS[i+1:]...)
	}
	inc.alloc.SF = append(inc.alloc.SF[:i], inc.alloc.SF[i+1:]...)
	inc.alloc.TPdBm = append(inc.alloc.TPdBm[:i], inc.alloc.TPdBm[i+1:]...)
	inc.alloc.Channel = append(inc.alloc.Channel[:i], inc.alloc.Channel[i+1:]...)
	inc.invalidate()
	return nil
}

// MinEE evaluates the current allocation's minimum energy efficiency.
func (inc *Incremental) MinEE() (float64, error) {
	return EvaluateMinEE(&inc.net, inc.p, inc.alloc, inc.opts.Mode)
}

// Reoptimize runs the full EF-LoRa greedy on the current deployment,
// replacing the incrementally maintained allocation.
func (inc *Incremental) Reoptimize() (Report, error) {
	ef := NewEFLoRa(inc.opts)
	a, rep, err := ef.AllocateWithReport(&inc.net, inc.p, nil)
	if err != nil {
		return rep, err
	}
	inc.alloc = a
	inc.invalidate()
	return rep, nil
}
