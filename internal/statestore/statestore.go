// Package statestore is the durable-state subsystem of the live network
// server: periodic snapshots of a shard pool's full serving state plus a
// write-ahead log of control-loop deltas, so a daemon restart (or a shard
// migration — a migratable shard is exactly a snapshot plus a WAL tail)
// never loses the per-device history that drives energy-fair
// re-allocation.
//
// Two artifacts live in the state directory:
//
//   - Snapshots (snap-*.efss): a compact versioned binary encoding of a
//     State — every shard server's dedup/replay maps and counters, the
//     rolling per-device SNR/PRR tracker, the current allocation, the
//     downlink frame counters, and the allocation epoch — CRC-framed and
//     written via temp-file + fsync + atomic rename.
//
//   - WAL segments (wal-*.seg): the scenario JSONL delta stream reframed
//     as a replayable log. Each record is one line "w1 <seq> <crc> <delta
//     JSON>": the sequence number is strictly increasing across segments,
//     the CRC32 covers the JSON bytes, and segments rotate on size, age
//     (in server time), and on every snapshot, so pruning after a
//     snapshot can drop whole files.
//
// Recovery loads the newest snapshot that passes its CRC (falling back to
// older ones), then replays every WAL record with a sequence number above
// the snapshot's. A truncated or corrupted record at the very tail of the
// log — the signature of a crash mid-append — ends replay and is counted,
// not fatal; corruption in the middle of the log is an error.
//
// The package is on the determinism-critical list: all encoding is over
// sorted slices (bit-exact float rendering), rotation decisions take
// explicit server-time stamps, and the only wall-clock reads are the
// annotated fsync/snapshot latency diagnostics.
package statestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultSnapshotInterval is the periodic snapshot cadence when Options
// leaves SnapshotInterval nil.
const DefaultSnapshotInterval = 30 * time.Second

// DefaultSegmentBytes is the WAL size-rotation threshold.
const DefaultSegmentBytes = 4 << 20

// DefaultSnapshotKeep is how many decodable snapshots are retained for
// fallback before older ones are pruned.
const DefaultSnapshotKeep = 2

// Options configures a Store.
type Options struct {
	// SnapshotInterval is the periodic snapshot cadence the daemon should
	// run. nil selects DefaultSnapshotInterval; a pointer to an explicit
	// zero (or negative) duration disables periodic snapshots — WAL-only
	// operation — mirroring the repo's pointer-zero convention (cf.
	// sim.ConfirmedConfig): a zero value must be distinguishable from an
	// unset one.
	SnapshotInterval *time.Duration

	// SegmentBytes rotates the open WAL segment once it exceeds this many
	// bytes (0 selects DefaultSegmentBytes).
	SegmentBytes int64

	// SegmentMaxAgeS rotates the open WAL segment once its first record
	// is older than this many seconds of server time (0 disables
	// age-based rotation). Ages are computed from the nowS stamps passed
	// to Append, never from the wall clock.
	SegmentMaxAgeS float64

	// SnapshotKeep bounds how many snapshots are retained (0 selects
	// DefaultSnapshotKeep; the newest is always kept).
	SnapshotKeep int
}

// SnapshotCadence resolves the pointer-zero SnapshotInterval convention:
// it returns the effective cadence and whether periodic snapshots are
// enabled at all.
func (o Options) SnapshotCadence() (time.Duration, bool) {
	if o.SnapshotInterval == nil {
		return DefaultSnapshotInterval, true
	}
	if *o.SnapshotInterval <= 0 {
		return 0, false
	}
	return *o.SnapshotInterval, true
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SnapshotKeep <= 0 {
		o.SnapshotKeep = DefaultSnapshotKeep
	}
	return o
}

// Store manages one state directory: an append-only WAL plus rotating
// snapshots. A Store is not safe for concurrent use; the daemon serializes
// appends and snapshots on its control-loop goroutine.
type Store struct {
	dir  string
	opts Options

	wal     *walWriter
	nextSeq uint64
	// snapSeq is the last sequence number folded into a written (or
	// recovered) snapshot — WAL lag is nextSeq-1-snapSeq.
	snapSeq    uint64
	nextSnapID uint64
	// repairDiscardedBytes counts torn-tail bytes truncated at Open;
	// surfaced through Recover and Metrics.
	repairDiscardedBytes uint64
	// scratch is the reused record-render buffer (single-writer).
	scratch []byte

	metrics Metrics
}

// Metrics is the store's operational accounting, exposed on /metrics by
// the daemon.
type Metrics struct {
	// WALSeq is the next sequence number to be issued; WALAppends and
	// WALBytes count records and payload bytes appended this process;
	// WALFsyncs counts Sync calls that reached the disk.
	WALSeq     uint64
	WALAppends uint64
	WALBytes   uint64
	WALFsyncs  uint64
	// WALLagRecords is how many appended records are not yet covered by a
	// snapshot — the replay debt a crash right now would incur.
	WALLagRecords uint64
	// Snapshots counts snapshots written this process; SnapshotBytes and
	// SnapshotSeconds describe the most recent one.
	Snapshots       uint64
	SnapshotBytes   uint64
	SnapshotSeconds float64
	// Recovery accounting from the last Recover on this store:
	// RecoveryReplayed counts WAL records replayed on top of the loaded
	// snapshot, RecoverySnapshotsSkipped snapshots that failed validation
	// before one loaded, and RecoveryDiscardedBytes torn-tail bytes
	// truncated at Open.
	RecoveryReplayed         uint64
	RecoverySnapshotsSkipped uint64
	RecoveryDiscardedBytes   uint64
	// FsyncSeconds is the power-of-two latency histogram of WAL fsyncs.
	FsyncSeconds Histogram
}

// Open attaches to (creating if needed) the state directory. Existing WAL
// segments are scanned so new appends continue the sequence numbering;
// existing snapshots so new snapshots continue the ID numbering.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	s := &Store{dir: dir, opts: opts, nextSeq: 1}
	segs, snaps, err := s.scan()
	if err != nil {
		return nil, err
	}
	if len(snaps) > 0 {
		s.nextSnapID = snaps[len(snaps)-1].id + 1
	}
	// Repair the newest segment: truncate any torn tail a crash left, and
	// delete the segment outright if nothing valid survives (so the next
	// append's fresh segment name cannot collide with it). Older segments
	// were rotated with flush+fsync, so only the newest can be torn.
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		lastSeq, n, discarded, err := repairSegment(last)
		if err != nil {
			return nil, err
		}
		s.repairDiscardedBytes += uint64(discarded)
		if n > 0 {
			s.nextSeq = lastSeq + 1
			break
		}
		if err := os.Remove(last.path); err != nil {
			return nil, fmt.Errorf("statestore: %w", err)
		}
		segs = segs[:len(segs)-1]
	}
	s.snapSeq = s.nextSeq - 1 // until told otherwise, no replay debt
	return s, nil
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// NextSeq returns the sequence number the next Append will use.
func (s *Store) NextSeq() uint64 { return s.nextSeq }

// Metrics returns a copy of the operational accounting.
func (s *Store) Metrics() Metrics {
	m := s.metrics
	m.WALSeq = s.nextSeq
	if s.nextSeq-1 >= s.snapSeq {
		m.WALLagRecords = s.nextSeq - 1 - s.snapSeq
	}
	m.RecoveryDiscardedBytes = s.repairDiscardedBytes
	return m
}

// Close flushes and closes the open WAL segment.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.closeWAL()
	return err
}

// segFile / snapFile describe directory entries found by scan.
type segFile struct {
	path     string
	startSeq uint64
}

type snapFile struct {
	path string
	id   uint64
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".efss"
)

func segPath(dir string, startSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, startSeq, segSuffix))
}

func snapPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, id, snapSuffix))
}

// scan lists the directory's WAL segments and snapshots, sorted ascending
// by start sequence / snapshot ID. Unrelated files are ignored.
func (s *Store) scan() ([]segFile, []snapFile, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("statestore: %w", err)
	}
	var segs []segFile
	var snaps []snapFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
			seq, err := strconv.ParseUint(hexPart, 16, 64)
			if err != nil {
				continue // not ours
			}
			segs = append(segs, segFile{path: filepath.Join(s.dir, name), startSeq: seq})
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			hexPart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
			id, err := strconv.ParseUint(hexPart, 16, 64)
			if err != nil {
				continue
			}
			snaps = append(snaps, snapFile{path: filepath.Join(s.dir, name), id: id})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].startSeq < segs[j].startSeq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].id < snaps[j].id })
	return segs, snaps, nil
}
