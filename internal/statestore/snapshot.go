package statestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"time"
)

// Snapshot container framing:
//
//	magic "EFSS" | u32 version | u64 payload-len | payload | u32 crc32
//
// all little-endian; the CRC32 (IEEE) covers exactly the payload bytes.
// The version gates the payload codec: readers reject versions they do
// not know rather than guessing at field layouts.
const (
	snapMagic   = "EFSS"
	snapVersion = 1
	// snapHeaderLen = magic + version + payload-len
	snapHeaderLen  = 4 + 4 + 8
	snapTrailerLen = 4
	// maxSnapPayload bounds the declared payload length so a corrupt
	// header cannot drive a giant allocation (1 GiB is orders of
	// magnitude above any real shard state).
	maxSnapPayload = 1 << 30
)

// EncodeSnapshot frames st as a snapshot file image.
func EncodeSnapshot(st *State) []byte {
	var body encoder
	st.encode(&body)
	buf := make([]byte, 0, snapHeaderLen+len(body.buf)+snapTrailerLen)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(body.buf)))
	buf = append(buf, body.buf...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body.buf))
	return buf
}

// DecodeSnapshot parses a snapshot file image.
func DecodeSnapshot(buf []byte) (*State, error) {
	if len(buf) < snapHeaderLen+snapTrailerLen {
		return nil, fmt.Errorf("statestore: snapshot too short (%d bytes)", len(buf))
	}
	if string(buf[:4]) != snapMagic {
		return nil, fmt.Errorf("statestore: snapshot magic mismatch")
	}
	version := binary.LittleEndian.Uint32(buf[4:8])
	if version != snapVersion {
		return nil, fmt.Errorf("statestore: snapshot version %d (want %d)", version, snapVersion)
	}
	payloadLen := binary.LittleEndian.Uint64(buf[8:16])
	if payloadLen > maxSnapPayload {
		return nil, fmt.Errorf("statestore: snapshot payload length %d exceeds limit", payloadLen)
	}
	if uint64(len(buf)) != snapHeaderLen+payloadLen+snapTrailerLen {
		return nil, fmt.Errorf("statestore: snapshot length %d does not match declared payload %d", len(buf), payloadLen)
	}
	payload := buf[snapHeaderLen : snapHeaderLen+payloadLen]
	want := binary.LittleEndian.Uint32(buf[len(buf)-snapTrailerLen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("statestore: snapshot crc mismatch (got %08x want %08x)", got, want)
	}
	return decodeState(&decoder{buf: payload})
}

// WriteSnapshot durably records st, rotates the WAL so the next segment
// starts at the first un-snapshotted sequence number, and prunes WAL
// segments and old snapshots the new one makes redundant. st.Epoch is
// assigned by the store (the snapshot's ID); st.Seq must be the last
// sequence number folded into the state — normally NextSeq()-1 after
// syncing.
func (s *Store) WriteSnapshot(st *State) error {
	start := time.Now() //eflora:nondeterminism-ok snapshot latency diagnostic only
	st.Epoch = s.nextSnapID
	img := EncodeSnapshot(st)
	path := snapPath(s.dir, s.nextSnapID)
	if err := atomicWrite(path, img); err != nil {
		return err
	}
	s.nextSnapID++
	s.snapSeq = st.Seq
	s.metrics.Snapshots++
	s.metrics.SnapshotBytes = uint64(len(img))
	s.metrics.SnapshotSeconds = time.Since(start).Seconds() //eflora:nondeterminism-ok snapshot latency diagnostic only
	// Anchor the WAL: close the open segment so replay-from-snapshot
	// starts at a segment boundary, then drop whatever the snapshot made
	// redundant. Pruning failures are reported but the snapshot itself is
	// already durable.
	if err := s.rotateWAL(); err != nil {
		return err
	}
	return s.prune()
}

// atomicWrite lands data at path via temp file + fsync + rename, so a
// crash mid-write can never leave a half-written file under the final
// name.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("statestore: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("statestore: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statestore: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statestore: rename %s: %w", tmp, err)
	}
	return nil
}

// prune removes snapshots beyond the retention count and WAL segments
// every retained snapshot has fully absorbed. A segment is prunable when
// its records all carry sequence numbers at or below the OLDEST retained
// snapshot's Seq — older snapshots are kept as fallbacks, and a fallback
// is only useful with its replay tail intact.
func (s *Store) prune() error {
	segs, snaps, err := s.scan()
	if err != nil {
		return err
	}
	for len(snaps) > s.opts.SnapshotKeep {
		if err := os.Remove(snaps[0].path); err != nil {
			return fmt.Errorf("statestore: %w", err)
		}
		snaps = snaps[1:]
	}
	if len(snaps) == 0 {
		return nil
	}
	oldest, err := readSnapshotSeq(snaps[0].path)
	if err != nil {
		// An undecodable retained snapshot pins nothing; leave the WAL
		// alone rather than guess.
		return nil
	}
	// A segment's records end where the next segment's begin; the last
	// segment on disk is never pruned (it may still be appended to).
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].startSeq-1 <= oldest {
			if err := os.Remove(segs[i].path); err != nil {
				return fmt.Errorf("statestore: %w", err)
			}
			continue
		}
		break
	}
	return nil
}

// readSnapshotSeq loads just the Seq envelope field of a snapshot file.
func readSnapshotSeq(path string) (uint64, error) {
	st, err := loadSnapshotFile(path)
	if err != nil {
		return 0, err
	}
	return st.Seq, nil
}

func loadSnapshotFile(path string) (*State, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	return DecodeSnapshot(buf)
}
