package statestore

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/netserver"
	"eflora/internal/scenario"
)

// testState builds a representative State exercising every codec path:
// multiple shards, pending frames with uplink copies, tracker entries,
// allocation vectors, downlink counters, and awkward floats.
func testState() *State {
	return &State{
		Epoch:       3,
		Seq:         41,
		UplinkCount: 12345,
		TakenAtS:    678.25,
		Pool: ingest.PoolState{
			Shards: []netserver.State{
				{
					Counters: netserver.Counters{Uplinks: 100, Delivered: 90, Duplicates: 7, Rejected: 3},
					Devices: []netserver.DeviceState{
						{DevAddr: 1, LastFCnt: 10, Seen: true, BestGateway: 2, HasBest: true},
						{DevAddr: 5, LastFCnt: 0, Seen: true},
					},
					Pending: []netserver.PendingState{
						{
							DevAddr: 5, FCnt: 11, FPort: 2,
							Payload:  []byte{0xde, 0xad},
							FirstAtS: 677.5,
							Copies: []netserver.Uplink{
								{Gateway: 0, ReceivedAtS: 677.5, RSSIdBm: -97.5, SNRdB: 3.25, PHYPayload: []byte{1, 2, 3}},
								{Gateway: 1, ReceivedAtS: 677.5, RSSIdBm: -104, SNRdB: -1.5, PHYPayload: []byte{1, 2, 3}},
							},
						},
					},
				},
				{
					Counters: netserver.Counters{Uplinks: 50, Delivered: 50},
				},
			},
			MaxSeenS: []float64{678.25, math.Inf(-1)},
		},
		Tracker: []ingest.TrackerEntry{
			{DevAddr: 1, Stats: ingest.DevStats{EwmaSNRdB: 2.625, LastFCnt: 10, Received: 9, Expected: 10, BestGateway: 2}},
			{DevAddr: 5, Stats: ingest.DevStats{EwmaSNRdB: -0.125, LastFCnt: 10, Received: 8, Expected: 11, BestGateway: 0}},
		},
		Alloc:      testAlloc(),
		Reassigned: 4,
		FCntDown: []FCntDownEntry{
			{DevAddr: 1, FCnt: 2},
			{DevAddr: 5, FCnt: 1},
		},
	}
}

func testAlloc() model.Allocation {
	return model.Allocation{
		SF:      []lora.SF{lora.SF7, lora.SF9, lora.SF12},
		TPdBm:   []float64{2, 8, 14},
		Channel: []int{0, 1, 2},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustAppendSync(t *testing.T, s *Store, d *scenario.Delta, nowS float64) uint64 {
	t.Helper()
	seq, err := s.AppendSync(d, nowS)
	if err != nil {
		t.Fatalf("AppendSync: %v", err)
	}
	return seq
}

func delta(atS float64, device, sf int) *scenario.Delta {
	return &scenario.Delta{
		Version: scenario.CurrentVersion,
		AtS:     atS,
		Changes: []scenario.DeltaChange{{Device: device, SF: sf, TPdBm: 8, Channel: 1}},
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	st := testState()
	img := EncodeSnapshot(st)
	got, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Epoch != st.Epoch || got.Seq != st.Seq || got.UplinkCount != st.UplinkCount || got.TakenAtS != st.TakenAtS {
		t.Fatalf("envelope mismatch: got %+v", got)
	}
	if got.Digest() != st.Digest() {
		t.Fatalf("digest mismatch after roundtrip")
	}
	// Bit-exactness down to the float level: -Inf shard clock survives.
	if !math.IsInf(got.Pool.MaxSeenS[1], -1) {
		t.Fatalf("MaxSeenS[1] = %v, want -Inf", got.Pool.MaxSeenS[1])
	}
	if got.Pool.Shards[0].Pending[0].Copies[1].SNRdB != -1.5 {
		t.Fatalf("pending copy SNR = %v", got.Pool.Shards[0].Pending[0].Copies[1].SNRdB)
	}
}

func TestSnapshotDigestIgnoresEnvelope(t *testing.T) {
	a, b := testState(), testState()
	b.Epoch, b.Seq, b.UplinkCount, b.TakenAtS = 99, 999, 9999, 1e6
	if a.Digest() != b.Digest() {
		t.Fatalf("digest must ignore the envelope (oracle vs recovered cadence)")
	}
	b.Tracker[0].Stats.EwmaSNRdB = math.Nextafter(b.Tracker[0].Stats.EwmaSNRdB, 100)
	if a.Digest() == b.Digest() {
		t.Fatalf("digest must catch a 1-ulp body difference")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	img := EncodeSnapshot(testState())
	cases := map[string]func([]byte) []byte{
		"short":       func(b []byte) []byte { return b[:10] },
		"magic":       func(b []byte) []byte { b[0] = 'X'; return b },
		"version":     func(b []byte) []byte { b[4] = 99; return b },
		"payload-bit": func(b []byte) []byte { b[snapHeaderLen+5] ^= 0x40; return b },
		"crc":         func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-9] },
		"trailing":    func(b []byte) []byte { return append(b, 0) },
	}
	for name, mut := range cases {
		img2 := mut(append([]byte(nil), img...))
		if _, err := DecodeSnapshot(img2); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestWALAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		seq := mustAppendSync(t, s, delta(float64(i), i, 7+i%3), float64(i))
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	if s2.NextSeq() != 6 {
		t.Fatalf("NextSeq after reopen = %d, want 6", s2.NextSeq())
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Snapshot != nil {
		t.Fatalf("unexpected snapshot on cold start")
	}
	if len(rec.Tail) != 5 {
		t.Fatalf("tail = %d records, want 5", len(rec.Tail))
	}
	for i, r := range rec.Tail {
		if r.Seq != uint64(i+1) || r.Delta.Changes[0].Device != i {
			t.Fatalf("tail[%d] = seq %d device %d", i, r.Seq, r.Delta.Changes[0].Device)
		}
	}
}

func TestWALSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 200})
	for i := 0; i < 10; i++ {
		mustAppendSync(t, s, delta(float64(i), i, 7), float64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _, err := s.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segments at 200-byte rotation, got %d", len(segs))
	}
	// All records must still read back in order across the segment chain.
	s2 := mustOpen(t, dir, Options{})
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rec.Tail) != 10 {
		t.Fatalf("tail = %d, want 10", len(rec.Tail))
	}
}

func TestWALSegmentRotationByAge(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentMaxAgeS: 10})
	mustAppendSync(t, s, delta(0, 0, 7), 0)
	mustAppendSync(t, s, delta(5, 1, 7), 5)   // same segment: age 5 < 10
	mustAppendSync(t, s, delta(11, 2, 7), 11) // rotates: age 11 >= 10
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _, err := s.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(segs) != 2 {
		t.Fatalf("expected 2 segments after age rotation, got %d", len(segs))
	}
}

func TestWALTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		mustAppendSync(t, s, delta(float64(i), i, 7), float64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: half a record at the tail.
	segs, _, err := s.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	path := segs[len(segs)-1].path
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("w1 00000000000000"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	if s2.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4 (torn tail dropped)", s2.NextSeq())
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("tail = %d, want 3", len(rec.Tail))
	}
	if rec.DiscardedBytes == 0 {
		t.Fatalf("DiscardedBytes = 0, want > 0")
	}
	// Appends must resume the sequence cleanly after repair.
	if seq := mustAppendSync(t, s2, delta(9, 0, 8), 9); seq != 4 {
		t.Fatalf("post-repair seq = %d, want 4", seq)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3 := mustOpen(t, dir, Options{})
	rec3, err := s3.Recover()
	if err != nil {
		t.Fatalf("Recover after repair+append: %v", err)
	}
	if len(rec3.Tail) != 4 {
		t.Fatalf("tail = %d, want 4", len(rec3.Tail))
	}
}

func TestWALFullyCorruptLastSegmentDeleted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustAppendSync(t, s, delta(0, 0, 7), 0)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A second segment whose every byte is garbage (e.g. a crash during
	// the very first write after rotation).
	if err := os.WriteFile(segPath(dir, 2), []byte("garbage with no newline"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if s2.NextSeq() != 2 {
		t.Fatalf("NextSeq = %d, want 2", s2.NextSeq())
	}
	if _, err := os.Stat(segPath(dir, 2)); !os.IsNotExist(err) {
		t.Fatalf("fully corrupt segment not deleted: %v", err)
	}
	if seq := mustAppendSync(t, s2, delta(1, 0, 8), 1); seq != 2 {
		t.Fatalf("seq = %d, want 2", seq)
	}
}

func TestWALMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 1}) // one record per segment
	for i := 0; i < 3; i++ {
		mustAppendSync(t, s, delta(float64(i), i, 7), float64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _, err := s.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(segs) != 3 {
		t.Fatalf("want 3 single-record segments, got %d", len(segs))
	}
	// Flip a payload bit in the MIDDLE segment: not a torn tail, an
	// integrity violation.
	buf, err := os.ReadFile(segs[1].path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-2] ^= 0x01
	if err := os.WriteFile(segs[1].path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if _, err := s2.Recover(); err == nil {
		t.Fatalf("mid-log corruption silently accepted")
	}
}

func TestWriteSnapshotRecoverAndPrune(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 1, SnapshotKeep: 2})
	for i := 0; i < 3; i++ {
		mustAppendSync(t, s, delta(float64(i), i, 7), float64(i))
	}
	st := testState()
	st.Seq = s.NextSeq() - 1
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Two more deltas after the snapshot: the replay tail.
	mustAppendSync(t, s, delta(10, 0, 8), 10)
	mustAppendSync(t, s, delta(11, 1, 9), 11)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Snapshot == nil {
		t.Fatalf("no snapshot recovered")
	}
	if rec.Snapshot.Seq != 3 {
		t.Fatalf("snapshot Seq = %d, want 3", rec.Snapshot.Seq)
	}
	if rec.Snapshot.Digest() != st.Digest() {
		t.Fatalf("recovered snapshot digest mismatch")
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Seq != 4 || rec.Tail[1].Seq != 5 {
		t.Fatalf("tail = %+v, want seqs 4,5", rec.Tail)
	}
	m := s2.Metrics()
	if m.RecoveryReplayed != 2 {
		t.Fatalf("RecoveryReplayed = %d, want 2", m.RecoveryReplayed)
	}

	// A second snapshot absorbing everything prunes segments the oldest
	// retained snapshot no longer needs, and a third prunes the first
	// snapshot (keep=2).
	st2 := testState()
	st2.Seq = 5
	if err := s2.WriteSnapshot(st2); err != nil {
		t.Fatalf("WriteSnapshot 2: %v", err)
	}
	st3 := testState()
	st3.Seq = 5
	if err := s2.WriteSnapshot(st3); err != nil {
		t.Fatalf("WriteSnapshot 3: %v", err)
	}
	segs, snaps, err := s2.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots retained = %d, want 2", len(snaps))
	}
	// Oldest retained snapshot has Seq=5; every segment except the last
	// holds records <= 5 and must be gone.
	if len(segs) != 1 {
		t.Fatalf("segments after prune = %d, want 1 (last always kept)", len(segs))
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRecoverFallsBackOverCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustAppendSync(t, s, delta(0, 0, 7), 0)
	st := testState()
	st.Seq = 1
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	mustAppendSync(t, s, delta(1, 1, 8), 1)
	st2 := testState()
	st2.Seq = 2
	st2.Reassigned = 77
	if err := s.WriteSnapshot(st2); err != nil {
		t.Fatalf("WriteSnapshot 2: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the NEWEST snapshot; recovery must fall back to the first
	// and replay the tail past it.
	newest := snapPath(dir, 1)
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Snapshot == nil || rec.Snapshot.Seq != 1 {
		t.Fatalf("fallback snapshot = %+v", rec.Snapshot)
	}
	if rec.SnapshotsSkipped != 1 {
		t.Fatalf("SnapshotsSkipped = %d, want 1", rec.SnapshotsSkipped)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 2 {
		t.Fatalf("tail = %+v, want seq 2", rec.Tail)
	}
}

func TestSnapshotCadencePointerZero(t *testing.T) {
	// nil → default cadence, enabled.
	d, enabled := Options{}.SnapshotCadence()
	if !enabled || d != DefaultSnapshotInterval {
		t.Fatalf("nil interval: (%v, %v), want (%v, true)", d, enabled, DefaultSnapshotInterval)
	}
	// Explicit zero → DISABLED, not default: the pointer-zero contract.
	zero := time.Duration(0)
	if _, enabled := (Options{SnapshotInterval: &zero}).SnapshotCadence(); enabled {
		t.Fatalf("explicit zero interval must disable periodic snapshots, not fall back to the default")
	}
	five := 5 * time.Second
	d, enabled = (Options{SnapshotInterval: &five}).SnapshotCadence()
	if !enabled || d != five {
		t.Fatalf("explicit interval: (%v, %v), want (5s, true)", d, enabled)
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	st := testState()
	st.Seq = 0
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if _, ok := h.Quantile(0.5); ok {
		t.Fatalf("empty histogram reported a quantile")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.001) // ~1ms
	}
	h.Observe(1.0) // one outlier
	if h.Count() != 101 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50, ok := h.Quantile(0.5)
	if !ok || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms bucket", p50)
	}
	p100, _ := h.Quantile(1)
	if p100 < 500*time.Millisecond {
		t.Fatalf("p100 = %v, want >= outlier bucket", p100)
	}
}

func TestMetricsAccounting(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustAppendSync(t, s, delta(0, 0, 7), 0)
	mustAppendSync(t, s, delta(1, 1, 7), 1)
	m := s.Metrics()
	if m.WALAppends != 2 || m.WALFsyncs != 2 || m.WALSeq != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.WALLagRecords != 2 {
		t.Fatalf("WALLagRecords = %d, want 2 (no snapshot yet)", m.WALLagRecords)
	}
	if m.FsyncSeconds.Count() != 2 {
		t.Fatalf("fsync histogram count = %d", m.FsyncSeconds.Count())
	}
	st := testState()
	st.Seq = 2
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	m = s.Metrics()
	if m.WALLagRecords != 0 {
		t.Fatalf("WALLagRecords after snapshot = %d, want 0", m.WALLagRecords)
	}
	if m.Snapshots != 1 || m.SnapshotBytes == 0 {
		t.Fatalf("snapshot metrics = %+v", m)
	}
}

func TestAppendDeltaJSONMatchesEncodingJSON(t *testing.T) {
	cases := []*scenario.Delta{
		{Version: 1, Changes: []scenario.DeltaChange{}},
		{Version: 1, AtS: 0.1, Changes: []scenario.DeltaChange{{Device: 3, SF: 9, TPdBm: 8.5, Channel: 2}}},
		{Version: 1, AtS: 1e21, Comment: `quote " backslash \ newline` + "\n\ttab", Changes: nil},
		{Version: 1, AtS: -2.5e-7, Changes: []scenario.DeltaChange{{Device: 0, SF: 7, TPdBm: -0.30000000000000004, Channel: 0}}, Resets: []int{0, 5, 9}},
		{Version: 1, AtS: 86400.000001, Comment: "üñïçø∂é", Changes: []scenario.DeltaChange{{Device: 1, SF: 12, TPdBm: 14, Channel: 7}}},
	}
	for i, d := range cases {
		fast := appendDeltaJSON(nil, d)
		var got scenario.Delta
		if err := json.Unmarshal(fast, &got); err != nil {
			t.Fatalf("case %d: hand-rolled JSON does not parse: %v\n%s", i, err, fast)
		}
		std, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var want scenario.Delta
		if err := json.Unmarshal(std, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: hand-rolled decode %+v != std decode %+v", i, got, want)
		}
	}
}
