package statestore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"time"

	"eflora/internal/scenario"
)

// WAL record framing: one text line per record,
//
//	w1 <seq:%016x> <crc32:%08x> <delta-json>\n
//
// The magic pins the record version; the CRC32 (IEEE) covers exactly the
// JSON bytes. Text framing keeps segments greppable/tailable like the
// scenario delta stream they carry, while the fixed-width header makes
// truncation detection trivial: a line that does not parse is either a
// torn tail or corruption.
const (
	walMagic = "w1"
	// walHeaderLen = len("w1 ")+16+len(" ")+8+len(" ")
	walHeaderLen = 3 + 16 + 1 + 8 + 1
)

// WALRecord is one decoded WAL entry.
type WALRecord struct {
	Seq   uint64
	Delta scenario.Delta
}

func encodeWALRecord(seq uint64, payload []byte) []byte {
	buf := make([]byte, 0, walHeaderLen+len(payload)+1)
	buf = append(buf, walMagic...)
	buf = append(buf, ' ')
	buf = appendHex(buf, seq, 16)
	buf = append(buf, ' ')
	buf = appendHex(buf, uint64(crc32.ChecksumIEEE(payload)), 8)
	buf = append(buf, ' ')
	buf = append(buf, payload...)
	buf = append(buf, '\n')
	return buf
}

func appendHex(buf []byte, v uint64, width int) []byte {
	const digits = "0123456789abcdef"
	start := len(buf)
	buf = append(buf, make([]byte, width)...)
	for i := width - 1; i >= 0; i-- {
		buf[start+i] = digits[v&0xf]
		v >>= 4
	}
	return buf
}

// parseWALLine decodes one framed line (without the trailing newline).
func parseWALLine(line []byte) (seq uint64, payload []byte, err error) {
	if len(line) < walHeaderLen {
		return 0, nil, fmt.Errorf("statestore: wal record too short (%d bytes)", len(line))
	}
	if string(line[:2]) != walMagic || line[2] != ' ' || line[19] != ' ' || line[28] != ' ' {
		return 0, nil, fmt.Errorf("statestore: wal record framing mismatch")
	}
	seq, err = strconv.ParseUint(string(line[3:19]), 16, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("statestore: wal seq: %w", err)
	}
	want, err := strconv.ParseUint(string(line[20:28]), 16, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("statestore: wal crc: %w", err)
	}
	payload = line[walHeaderLen:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return 0, nil, fmt.Errorf("statestore: wal seq %d crc mismatch (got %08x want %08x)", seq, got, want)
	}
	return seq, payload, nil
}

// walWriter is the open segment.
type walWriter struct {
	f  *os.File
	bw *bufio.Writer
	// startSeq names the file; firstAtS is the nowS stamp of the first
	// record, driving age rotation; size counts bytes written (buffered
	// included).
	startSeq uint64
	firstAtS float64
	hasFirst bool
	size     int64
}

// Append frames delta as the next WAL record, rotating the open segment
// first if it is over the size or age threshold. The record lands in the
// writer's buffer; call Sync (or use AppendSync) to make it durable.
//
// The hot path is allocation-free in steady state: the whole record is
// rendered into a scratch buffer the store reuses across appends (the
// serving loop appends from a single goroutine, so one buffer suffices).
func (s *Store) Append(delta *scenario.Delta, nowS float64) (uint64, error) {
	if s.wal != nil && s.shouldRotate(nowS) {
		if err := s.closeWAL(); err != nil {
			return 0, err
		}
	}
	if s.wal == nil {
		if err := s.openWAL(); err != nil {
			return 0, err
		}
	}
	// Render header + payload into the reused scratch, then backfill the
	// CRC once the payload bytes are known.
	buf := s.scratch[:0]
	buf = append(buf, walMagic...)
	buf = append(buf, ' ')
	buf = appendHex(buf, s.nextSeq, 16)
	buf = append(buf, " 00000000 "...)
	buf = appendDeltaJSON(buf, delta)
	crc := crc32.ChecksumIEEE(buf[walHeaderLen:])
	appendHex(buf[20:20:28], uint64(crc), 8)
	buf = append(buf, '\n')
	s.scratch = buf
	if _, err := s.wal.bw.Write(buf); err != nil {
		return 0, fmt.Errorf("statestore: wal append: %w", err)
	}
	if !s.wal.hasFirst {
		s.wal.firstAtS = nowS
		s.wal.hasFirst = true
	}
	s.wal.size += int64(len(buf))
	seq := s.nextSeq
	s.nextSeq++
	s.metrics.WALAppends++
	s.metrics.WALBytes += uint64(len(buf))
	return seq, nil
}

// AppendSync is Append followed by Sync — the caller needs the record on
// disk before acting on it.
func (s *Store) AppendSync(delta *scenario.Delta, nowS float64) (uint64, error) {
	seq, err := s.Append(delta, nowS)
	if err != nil {
		return 0, err
	}
	return seq, s.Sync()
}

// Sync flushes buffered records and fsyncs the open segment (group
// commit: one fsync covers every Append since the last Sync).
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	start := time.Now() //eflora:nondeterminism-ok fsync latency diagnostic only
	if err := s.wal.bw.Flush(); err != nil {
		return fmt.Errorf("statestore: wal flush: %w", err)
	}
	if err := s.wal.f.Sync(); err != nil {
		return fmt.Errorf("statestore: wal fsync: %w", err)
	}
	s.metrics.WALFsyncs++
	s.metrics.FsyncSeconds.Observe(time.Since(start).Seconds()) //eflora:nondeterminism-ok fsync latency diagnostic only
	return nil
}

func (s *Store) shouldRotate(nowS float64) bool {
	if s.wal.size >= s.opts.SegmentBytes {
		return true
	}
	if s.opts.SegmentMaxAgeS > 0 && s.wal.hasFirst && nowS-s.wal.firstAtS >= s.opts.SegmentMaxAgeS {
		return true
	}
	return false
}

func (s *Store) openWAL() error {
	path := segPath(s.dir, s.nextSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("statestore: open wal segment: %w", err)
	}
	s.wal = &walWriter{f: f, bw: bufio.NewWriterSize(f, 64<<10), startSeq: s.nextSeq}
	return nil
}

func (s *Store) closeWAL() error {
	w := s.wal
	s.wal = nil
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("statestore: wal flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("statestore: wal fsync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("statestore: wal close: %w", err)
	}
	return nil
}

// rotateWAL closes the open segment (if any) so the next Append starts a
// fresh one — called by WriteSnapshot to anchor segment boundaries to
// snapshot epochs.
func (s *Store) rotateWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.closeWAL()
}

// readSegment decodes one segment file. isLast selects the torn-tail
// policy: in the last segment a record that fails to parse ends the read
// with discarded counting the bytes dropped; anywhere else it is an
// error. Records must carry strictly increasing sequence numbers starting
// at the segment's name.
func readSegment(sf segFile, isLast bool) (recs []WALRecord, discarded int, err error) {
	f, err := os.Open(sf.path)
	if err != nil {
		return nil, 0, fmt.Errorf("statestore: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	wantSeq := sf.startSeq
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			return recs, 0, nil
		}
		if err != nil && err != io.EOF {
			return nil, 0, fmt.Errorf("statestore: read %s: %w", sf.path, err)
		}
		torn := err == io.EOF // no trailing newline: torn final write
		clean := bytes.TrimSuffix(line, []byte("\n"))
		seq, payload, perr := parseWALLine(clean)
		if perr == nil && torn {
			// A record that parses but lacks its newline is still suspect
			// only in its completeness marker; the CRC already proved the
			// payload intact, so accept it.
			torn = false
		}
		if perr == nil && seq != wantSeq {
			perr = fmt.Errorf("statestore: wal %s: seq %d, want %d", sf.path, seq, wantSeq)
		}
		var d scenario.Delta
		if perr == nil {
			if jerr := json.Unmarshal(payload, &d); jerr != nil {
				perr = fmt.Errorf("statestore: wal seq %d payload: %w", seq, jerr)
			}
		}
		if perr != nil {
			if isLast {
				// Torn or corrupt tail of the newest segment: count what we
				// dropped (this record plus anything after it) and stop.
				n := len(line)
				for {
					rest, rerr := br.ReadBytes('\n')
					n += len(rest)
					if rerr != nil {
						break
					}
				}
				return recs, n, nil
			}
			return nil, 0, fmt.Errorf("statestore: wal %s: %w", sf.path, perr)
		}
		recs = append(recs, WALRecord{Seq: seq, Delta: d})
		wantSeq = seq + 1
		if torn {
			return recs, 0, nil
		}
	}
}

// repairSegment scans a segment's valid prefix and truncates anything
// after it — the torn tail a crash mid-append leaves behind. It returns
// the final valid sequence number, how many records survived, and how
// many bytes were cut. Only complete, CRC-clean, newline-terminated,
// strictly-sequenced records count toward the valid prefix.
func repairSegment(sf segFile) (lastSeq uint64, nRecords int, discarded int64, err error) {
	f, err := os.OpenFile(sf.path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("statestore: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var validBytes int64
	wantSeq := sf.startSeq
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 && rerr == io.EOF {
			break
		}
		if rerr != nil && rerr != io.EOF {
			return 0, 0, 0, fmt.Errorf("statestore: read %s: %w", sf.path, rerr)
		}
		ok := rerr == nil // a record without its newline is torn
		if ok {
			seq, _, perr := parseWALLine(line[:len(line)-1])
			ok = perr == nil && seq == wantSeq
		}
		if !ok {
			// Invalid prefix record: everything from here is discarded.
			st, serr := f.Stat()
			if serr != nil {
				return 0, 0, 0, fmt.Errorf("statestore: %w", serr)
			}
			discarded = st.Size() - validBytes
			if err := f.Truncate(validBytes); err != nil {
				return 0, 0, 0, fmt.Errorf("statestore: truncate %s: %w", sf.path, err)
			}
			if err := f.Sync(); err != nil {
				return 0, 0, 0, fmt.Errorf("statestore: fsync %s: %w", sf.path, err)
			}
			break
		}
		validBytes += int64(len(line))
		lastSeq = wantSeq
		nRecords++
		wantSeq++
	}
	return lastSeq, nRecords, discarded, nil
}
