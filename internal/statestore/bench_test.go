package statestore

import (
	"testing"

	"eflora/internal/scenario"
)

// benchDelta is a realistic control-loop delta: a couple of moves plus a
// reset, ~150 bytes of JSON.
func benchDelta() *scenario.Delta {
	return &scenario.Delta{
		Version: scenario.CurrentVersion,
		AtS:     1234.5,
		Comment: "online realloc: 3 drifting device(s)",
		Changes: []scenario.DeltaChange{
			{Device: 17, SF: 9, TPdBm: 8, Channel: 1},
			{Device: 203, SF: 10, TPdBm: 11, Channel: 2},
		},
		Resets: []int{54},
	}
}

// BenchmarkWALAppend measures the buffered append path — the per-record
// cost on the serving loop, with group-commit fsyncs amortized elsewhere.
// This is the number that must keep up with the ingest pipeline's
// sustained uplink rate.
func BenchmarkWALAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	d := benchDelta()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(d, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALAppendSync measures the fully durable path: append + flush
// + fsync per record. Dominated by the device's fsync latency.
func BenchmarkWALAppendSync(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	d := benchDelta()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AppendSync(d, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures the in-memory snapshot codec on a
// representative multi-shard state.
func BenchmarkSnapshotEncode(b *testing.B) {
	st := testState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(EncodeSnapshot(st)) == 0 {
			b.Fatal("empty image")
		}
	}
}

// BenchmarkRecover measures the full restart path: open the directory,
// load the snapshot, replay a 256-record WAL tail.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	st := testState()
	st.Seq = 0
	if err := s.WriteSnapshot(st); err != nil {
		b.Fatal(err)
	}
	d := benchDelta()
	for i := 0; i < 256; i++ {
		if _, err := s.Append(d, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		rec, err := s2.Recover()
		if err != nil {
			b.Fatal(err)
		}
		if rec.Snapshot == nil || len(rec.Tail) != 256 {
			b.Fatalf("recovered snapshot=%v tail=%d", rec.Snapshot != nil, len(rec.Tail))
		}
		if err := s2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
