package statestore

import (
	"strconv"
	"unicode/utf8"

	"eflora/internal/scenario"
)

// appendDeltaJSON renders d as one JSON object into buf, allocation-free
// once buf has capacity. It replaces encoding/json on the WAL append hot
// path: the serving loop appends a record per control step, and reflection
// plus a fresh buffer per record capped throughput well below the ingest
// rate. The output is plain JSON that json.Unmarshal (the read path)
// decodes identically; it does not need to match encoding/json's exact
// byte choices, only its meaning — the CRC covers whatever bytes were
// framed.
func appendDeltaJSON(buf []byte, d *scenario.Delta) []byte {
	buf = append(buf, `{"version":`...)
	buf = strconv.AppendInt(buf, int64(d.Version), 10)
	if d.AtS != 0 {
		buf = append(buf, `,"atS":`...)
		buf = appendJSONFloat(buf, d.AtS)
	}
	if d.Comment != "" {
		buf = append(buf, `,"comment":`...)
		buf = appendJSONString(buf, d.Comment)
	}
	buf = append(buf, `,"changes":`...)
	if d.Changes == nil {
		buf = append(buf, "null"...)
	} else {
		buf = append(buf, '[')
		for i, c := range d.Changes {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"device":`...)
			buf = strconv.AppendInt(buf, int64(c.Device), 10)
			buf = append(buf, `,"sf":`...)
			buf = strconv.AppendInt(buf, int64(c.SF), 10)
			buf = append(buf, `,"tpDBm":`...)
			buf = appendJSONFloat(buf, c.TPdBm)
			buf = append(buf, `,"channel":`...)
			buf = strconv.AppendInt(buf, int64(c.Channel), 10)
			buf = append(buf, '}')
		}
		buf = append(buf, ']')
	}
	if len(d.Resets) > 0 {
		buf = append(buf, `,"resets":[`...)
		for i, r := range d.Resets {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(r), 10)
		}
		buf = append(buf, ']')
	}
	buf = append(buf, '}')
	return buf
}

// appendJSONFloat renders a finite float the way encoding/json does:
// shortest representation, 'e' notation only for extreme exponents.
// Non-finite values have no JSON encoding; the caller guards against them
// (scenario times and TX powers are finite by construction).
func appendJSONFloat(buf []byte, v float64) []byte {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	return strconv.AppendFloat(buf, v, format, -1, 64)
}

// appendJSONString renders s as a JSON string. Control characters, the
// quote, and the backslash are escaped; invalid UTF-8 is replaced, like
// encoding/json does.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' {
				buf = append(buf, b)
				i++
				continue
			}
			switch b {
			case '"':
				buf = append(buf, '\\', '"')
			case '\\':
				buf = append(buf, '\\', '\\')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				const hexdig = "0123456789abcdef"
				buf = append(buf, '\\', 'u', '0', '0', hexdig[b>>4], hexdig[b&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, `�`...)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return append(buf, '"')
}
