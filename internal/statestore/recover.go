package statestore

import "fmt"

// Recovered is the outcome of Recover: the newest loadable snapshot (nil
// when the directory holds none) plus the WAL tail to replay on top of
// it, with accounting of what was skipped or discarded along the way.
type Recovered struct {
	// Snapshot is the loaded state, nil for a cold start.
	Snapshot *State
	// Tail holds the WAL records with sequence numbers above the
	// snapshot's Seq (all records on a cold start), in replay order.
	Tail []WALRecord
	// SnapshotsSkipped counts snapshot files that failed validation
	// before one loaded; DiscardedBytes the torn-tail bytes truncated
	// when the store was opened.
	SnapshotsSkipped int
	DiscardedBytes   uint64
}

// Recover assembles the store's restart state: newest snapshot that
// decodes (CRC-verified, falling back to older ones and counting the
// skips), plus every WAL record past that snapshot's sequence number.
// Gaps in the replayed sequence range are errors — a missing middle
// segment means the directory was tampered with or mis-pruned, and
// replaying around a hole would silently diverge from the pre-crash
// state.
func (s *Store) Recover() (*Recovered, error) {
	segs, snaps, err := s.scan()
	if err != nil {
		return nil, err
	}
	out := &Recovered{DiscardedBytes: s.repairDiscardedBytes}
	// Newest decodable snapshot wins.
	for i := len(snaps) - 1; i >= 0; i-- {
		st, err := loadSnapshotFile(snaps[i].path)
		if err != nil {
			out.SnapshotsSkipped++
			continue
		}
		out.Snapshot = st
		break
	}
	var afterSeq uint64 // replay records with seq > afterSeq
	if out.Snapshot != nil {
		afterSeq = out.Snapshot.Seq
	}
	wantSeq := afterSeq + 1
	for i, sf := range segs {
		if i+1 < len(segs) && segs[i+1].startSeq-1 <= afterSeq {
			continue // entire segment absorbed by the snapshot
		}
		recs, _, err := readSegment(sf, i == len(segs)-1)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if r.Seq <= afterSeq {
				continue
			}
			if r.Seq != wantSeq {
				return nil, fmt.Errorf("statestore: recovery gap: have seq %d, want %d", r.Seq, wantSeq)
			}
			out.Tail = append(out.Tail, r)
			wantSeq++
		}
	}
	s.metrics.RecoveryReplayed = uint64(len(out.Tail))
	s.metrics.RecoverySnapshotsSkipped = uint64(out.SnapshotsSkipped)
	if out.Snapshot != nil {
		s.snapSeq = out.Snapshot.Seq
		if s.nextSeq <= out.Snapshot.Seq {
			// Every WAL record the snapshot absorbed was pruned; resume
			// numbering after the snapshot so the sequence stays monotonic.
			s.nextSeq = out.Snapshot.Seq + 1
		}
	}
	return out, nil
}
