package statestore

import (
	"math/bits"
	"time"
)

// Histogram is a power-of-two-bucketed latency histogram (bucket i counts
// observations with nanoseconds in [2^(i-1), 2^i)), the same shape as the
// ingest pool's, but plain counters: the store is single-writer, so no
// atomics are needed.
type Histogram struct {
	Buckets [40]uint64
}

// Observe records a latency in seconds.
func (h *Histogram) Observe(seconds float64) {
	d := time.Duration(seconds * float64(time.Second))
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for _, c := range h.Buckets {
		total += c
	}
	return total
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// (0 < q <= 1); ok is false before any observation.
func (h *Histogram) Quantile(q float64) (time.Duration, bool) {
	total := h.Count()
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			return time.Duration(uint64(1) << uint(i)), true
		}
	}
	return time.Duration(uint64(1) << uint(len(h.Buckets)-1)), true
}
