package statestore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"eflora/internal/scenario"
)

// FuzzSnapshotRoundtrip feeds arbitrary bytes to the snapshot decoder.
// Malformed images may be rejected but must not panic or over-allocate;
// images that decode must re-encode to a state with the same digest and
// identical envelope (a decode→encode→decode fixed point).
func FuzzSnapshotRoundtrip(f *testing.F) {
	f.Add(EncodeSnapshot(testState()))
	f.Add(EncodeSnapshot(&State{}))
	small := testState()
	small.Pool.Shards = small.Pool.Shards[:1]
	small.Tracker = nil
	f.Add(EncodeSnapshot(small))
	f.Add([]byte("EFSS"))
	f.Add([]byte{})
	// Declared payload length far beyond the buffer.
	f.Add([]byte("EFSS\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		img2 := EncodeSnapshot(st)
		st2, err := DecodeSnapshot(img2)
		if err != nil {
			t.Fatalf("re-encode of a decoded snapshot failed to decode: %v", err)
		}
		if st.Digest() != st2.Digest() {
			t.Fatalf("digest changed across decode→encode→decode")
		}
		if st.Epoch != st2.Epoch || st.Seq != st2.Seq || st.UplinkCount != st2.UplinkCount || st.TakenAtS != st2.TakenAtS {
			// NaN TakenAtS compares unequal to itself but must keep its bits.
			if !(st.TakenAtS != st.TakenAtS && st2.TakenAtS != st2.TakenAtS) {
				t.Fatalf("envelope changed across roundtrip")
			}
		}
	})
}

// FuzzWALSegment writes arbitrary bytes as the one segment of a state
// directory and runs the full Open→Recover path over it: truncated and
// corrupted tails must be repaired or rejected, never panic, and whatever
// records survive must be strictly sequenced from the segment's first
// sequence number.
func FuzzWALSegment(f *testing.F) {
	valid := func(deltas ...*scenario.Delta) []byte {
		var buf []byte
		seq := uint64(1)
		for _, d := range deltas {
			payload, err := json.Marshal(d)
			if err != nil {
				f.Fatal(err)
			}
			buf = append(buf, encodeWALRecord(seq, payload)...)
			seq++
		}
		return buf
	}
	d1 := &scenario.Delta{Version: scenario.CurrentVersion, AtS: 1, Changes: []scenario.DeltaChange{{Device: 0, SF: 7, TPdBm: 2}}}
	d2 := &scenario.Delta{Version: scenario.CurrentVersion, AtS: 2, Resets: []int{3}}
	whole := valid(d1, d2)
	f.Add(whole)
	f.Add(whole[:len(whole)-5])              // torn tail
	f.Add(append(whole, 'j', 'u', 'n', 'k')) // trailing garbage
	f.Add([]byte{})
	f.Add([]byte("w1 0000000000000001 00000000 {}\n"))
	f.Add([]byte("w1 0000000000000002 00000000 {}\n")) // wrong first seq

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			return
		}
		rec, err := s.Recover()
		if err != nil {
			return
		}
		wantSeq := uint64(1)
		for _, r := range rec.Tail {
			if r.Seq != wantSeq {
				t.Fatalf("recovered seq %d, want %d", r.Seq, wantSeq)
			}
			wantSeq++
		}
		// The repaired directory must accept new appends and recover them.
		seq, err := s.AppendSync(d1, 99)
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if seq != wantSeq {
			t.Fatalf("post-repair seq = %d, want %d", seq, wantSeq)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		rec2, err := s2.Recover()
		if err != nil {
			t.Fatalf("recover after repair+append: %v", err)
		}
		if len(rec2.Tail) != len(rec.Tail)+1 {
			t.Fatalf("recovered %d records, want %d", len(rec2.Tail), len(rec.Tail)+1)
		}
	})
}

// TestFuzzSeedCorpusPresent pins the checked-in seed corpora so the CI
// fuzz-smoke job always starts from real inputs.
func TestFuzzSeedCorpusPresent(t *testing.T) {
	for _, target := range []string{"FuzzSnapshotRoundtrip", "FuzzWALSegment"} {
		dir := filepath.Join("testdata", "fuzz", target)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s seed corpus missing: %v", target, err)
		}
		if len(entries) == 0 {
			t.Fatalf("%s seed corpus empty", target)
		}
	}
}
