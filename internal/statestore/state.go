package statestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"eflora/internal/ingest"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/netserver"
)

// FCntDownEntry is one device's downlink frame counter, sorted by DevAddr
// in a State.
type FCntDownEntry struct {
	DevAddr uint32
	FCnt    uint32
}

// State is everything a netserver shard needs to resume serving after a
// restart: the pool's dedup/replay state, the rolling per-device tracker,
// the current allocation, downlink frame counters, and the reallocation
// accounting — plus an envelope (Epoch, Seq, UplinkCount, TakenAtS)
// locating the cut in the WAL and in the uplink stream.
type State struct {
	// Epoch counts snapshots taken over the directory's lifetime; each
	// snapshot anchors a new WAL segment.
	Epoch uint64
	// Seq is the last WAL sequence number folded into this state; records
	// with higher sequence numbers must be replayed on top.
	Seq uint64
	// UplinkCount is how many source uplinks had been dispatched at the
	// cut — the resume position in a replay stream.
	UplinkCount uint64
	// TakenAtS is the server-relative time of the cut in seconds.
	TakenAtS float64

	// Pool is the shard servers' dedup/replay state; Tracker the rolling
	// per-device statistics, sorted by DevAddr.
	Pool    ingest.PoolState
	Tracker []ingest.TrackerEntry

	// Alloc is the current allocation; Reassigned the lifetime move count.
	Alloc      model.Allocation
	Reassigned uint64

	// FCntDown holds the per-device downlink frame counters, sorted by
	// DevAddr.
	FCntDown []FCntDownEntry
}

// Digest returns a stable hex digest of the state's durable body — the
// envelope (Epoch/Seq/UplinkCount/TakenAtS) is excluded, so an
// uninterrupted oracle and a crash-recovered run that converged on the
// same serving state produce the same digest even though their snapshot
// cadences differ. Floats are digested as raw IEEE-754 bits: bit-exact or
// nothing.
func (st *State) Digest() string {
	var e encoder
	st.encodeBody(&e)
	sum := sha256.Sum256(e.buf)
	return hex.EncodeToString(sum[:])
}

// encodeBody appends the durable body (everything except the envelope) in
// canonical order.
func (st *State) encodeBody(e *encoder) {
	// Pool.
	e.u32(uint32(len(st.Pool.Shards)))
	for _, sh := range st.Pool.Shards {
		encodeServerState(e, sh)
	}
	e.u32(uint32(len(st.Pool.MaxSeenS)))
	for _, v := range st.Pool.MaxSeenS {
		e.f64(v)
	}
	// Tracker.
	e.u32(uint32(len(st.Tracker)))
	for _, t := range st.Tracker {
		e.u32(t.DevAddr)
		e.f64(t.Stats.EwmaSNRdB)
		e.u32(t.Stats.LastFCnt)
		e.u64(t.Stats.Received)
		e.u64(t.Stats.Expected)
		e.u64(uint64(int64(t.Stats.BestGateway)))
	}
	// Allocation.
	e.u32(uint32(len(st.Alloc.SF)))
	for _, sf := range st.Alloc.SF {
		e.u8(uint8(sf))
	}
	e.u32(uint32(len(st.Alloc.TPdBm)))
	for _, tp := range st.Alloc.TPdBm {
		e.f64(tp)
	}
	e.u32(uint32(len(st.Alloc.Channel)))
	for _, ch := range st.Alloc.Channel {
		e.u64(uint64(int64(ch)))
	}
	e.u64(st.Reassigned)
	// Downlink counters.
	e.u32(uint32(len(st.FCntDown)))
	for _, f := range st.FCntDown {
		e.u32(f.DevAddr)
		e.u32(f.FCnt)
	}
}

func encodeServerState(e *encoder, st netserver.State) {
	e.u64(uint64(int64(st.Counters.Uplinks)))
	e.u64(uint64(int64(st.Counters.Delivered)))
	e.u64(uint64(int64(st.Counters.Duplicates)))
	e.u64(uint64(int64(st.Counters.Rejected)))
	e.u32(uint32(len(st.Devices)))
	for _, d := range st.Devices {
		e.u32(d.DevAddr)
		e.u32(d.LastFCnt)
		e.bool(d.Seen)
		e.u64(uint64(int64(d.BestGateway)))
		e.bool(d.HasBest)
	}
	e.u32(uint32(len(st.Pending)))
	for _, p := range st.Pending {
		e.u32(p.DevAddr)
		e.u32(p.FCnt)
		e.u8(p.FPort)
		e.bytes(p.Payload)
		e.f64(p.FirstAtS)
		e.u32(uint32(len(p.Copies)))
		for _, c := range p.Copies {
			encodeUplink(e, c)
		}
	}
}

func encodeUplink(e *encoder, u netserver.Uplink) {
	e.u64(uint64(int64(u.Gateway)))
	e.f64(u.ReceivedAtS)
	e.f64(u.RSSIdBm)
	e.f64(u.SNRdB)
	e.bytes(u.PHYPayload)
}

// encode appends the full state (envelope + body) as the snapshot payload.
func (st *State) encode(e *encoder) {
	e.u64(st.Epoch)
	e.u64(st.Seq)
	e.u64(st.UplinkCount)
	e.f64(st.TakenAtS)
	st.encodeBody(e)
}

func decodeState(d *decoder) (*State, error) {
	st := &State{}
	st.Epoch = d.u64()
	st.Seq = d.u64()
	st.UplinkCount = d.u64()
	st.TakenAtS = d.f64()
	// Pool.
	nShards := d.count("pool shards")
	st.Pool.Shards = make([]netserver.State, 0, min(nShards, 1<<16))
	for i := 0; i < nShards && d.err == nil; i++ {
		st.Pool.Shards = append(st.Pool.Shards, decodeServerState(d))
	}
	nClocks := d.count("pool clocks")
	st.Pool.MaxSeenS = make([]float64, 0, min(nClocks, 1<<16))
	for i := 0; i < nClocks && d.err == nil; i++ {
		st.Pool.MaxSeenS = append(st.Pool.MaxSeenS, d.f64())
	}
	// Tracker.
	nTrack := d.count("tracker entries")
	st.Tracker = make([]ingest.TrackerEntry, 0, min(nTrack, 1<<16))
	for i := 0; i < nTrack && d.err == nil; i++ {
		var t ingest.TrackerEntry
		t.DevAddr = d.u32()
		t.Stats.EwmaSNRdB = d.f64()
		t.Stats.LastFCnt = d.u32()
		t.Stats.Received = d.u64()
		t.Stats.Expected = d.u64()
		t.Stats.BestGateway = int(int64(d.u64()))
		st.Tracker = append(st.Tracker, t)
	}
	// Allocation.
	nSF := d.count("alloc sf")
	st.Alloc.SF = make([]lora.SF, 0, min(nSF, 1<<16))
	for i := 0; i < nSF && d.err == nil; i++ {
		st.Alloc.SF = append(st.Alloc.SF, lora.SF(d.u8()))
	}
	nTP := d.count("alloc tp")
	st.Alloc.TPdBm = make([]float64, 0, min(nTP, 1<<16))
	for i := 0; i < nTP && d.err == nil; i++ {
		st.Alloc.TPdBm = append(st.Alloc.TPdBm, d.f64())
	}
	nCh := d.count("alloc channel")
	st.Alloc.Channel = make([]int, 0, min(nCh, 1<<16))
	for i := 0; i < nCh && d.err == nil; i++ {
		st.Alloc.Channel = append(st.Alloc.Channel, int(int64(d.u64())))
	}
	st.Reassigned = d.u64()
	// Downlink counters.
	nF := d.count("fcntdown entries")
	st.FCntDown = make([]FCntDownEntry, 0, min(nF, 1<<16))
	for i := 0; i < nF && d.err == nil; i++ {
		var f FCntDownEntry
		f.DevAddr = d.u32()
		f.FCnt = d.u32()
		st.FCntDown = append(st.FCntDown, f)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("statestore: snapshot payload has %d trailing bytes", len(d.buf)-d.off)
	}
	return st, nil
}

func decodeServerState(d *decoder) netserver.State {
	var st netserver.State
	st.Counters.Uplinks = int(int64(d.u64()))
	st.Counters.Delivered = int(int64(d.u64()))
	st.Counters.Duplicates = int(int64(d.u64()))
	st.Counters.Rejected = int(int64(d.u64()))
	nDev := d.count("shard devices")
	st.Devices = make([]netserver.DeviceState, 0, min(nDev, 1<<16))
	for i := 0; i < nDev && d.err == nil; i++ {
		var ds netserver.DeviceState
		ds.DevAddr = d.u32()
		ds.LastFCnt = d.u32()
		ds.Seen = d.bool()
		ds.BestGateway = int(int64(d.u64()))
		ds.HasBest = d.bool()
		st.Devices = append(st.Devices, ds)
	}
	nPend := d.count("shard pending")
	st.Pending = make([]netserver.PendingState, 0, min(nPend, 1<<16))
	for i := 0; i < nPend && d.err == nil; i++ {
		var p netserver.PendingState
		p.DevAddr = d.u32()
		p.FCnt = d.u32()
		p.FPort = d.u8()
		p.Payload = d.bytes()
		p.FirstAtS = d.f64()
		nCopies := d.count("pending copies")
		p.Copies = make([]netserver.Uplink, 0, min(nCopies, 1<<16))
		for j := 0; j < nCopies && d.err == nil; j++ {
			p.Copies = append(p.Copies, decodeUplink(d))
		}
		st.Pending = append(st.Pending, p)
	}
	return st
}

func decodeUplink(d *decoder) netserver.Uplink {
	var u netserver.Uplink
	u.Gateway = int(int64(d.u64()))
	u.ReceivedAtS = d.f64()
	u.RSSIdBm = d.f64()
	u.SNRdB = d.f64()
	u.PHYPayload = d.bytes()
	return u
}

// encoder builds the little-endian snapshot payload.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// f64 stores the raw IEEE-754 bits: round-tripping is bit-exact, NaN
// payloads included.
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// decoder walks a snapshot payload, latching the first error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("statestore: snapshot truncated at %s (offset %d of %d)", what, d.off, len(d.buf))
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool {
	v := d.u8()
	if d.err == nil && v > 1 {
		d.err = fmt.Errorf("statestore: snapshot bool byte %#x at offset %d", v, d.off-1)
	}
	return v == 1
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u32 length prefix and sanity-bounds it against the bytes
// remaining, so a corrupt length cannot drive allocation.
func (d *decoder) count(what string) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int64(n) > int64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("statestore: snapshot %s count %d exceeds remaining %d bytes", what, n, len(d.buf)-d.off)
		return 0
	}
	return int(n)
}

func (d *decoder) bytes() []byte {
	n := d.count("bytes")
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
