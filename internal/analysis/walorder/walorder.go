// Package walorder implements the WAL-ordering analyzer of eflora-vet.
//
// The durable-state subsystem (PR 7) recovers a crashed eflora-nsd
// bit-exactly from snapshot + WAL tail. That guarantee silently inverts
// if any externally visible side effect — a downlink queued, a frame
// written to a gateway socket, a channel send another goroutine acts on
// — happens before the state change behind it is durable: after a crash
// the recovered process has forgotten state the outside world already
// saw. The invariant is "WAL AppendSync happens-before every visible
// effect", and functions that carry it are annotated
//
//	//eflora:durable
//
// in their doc comment. Within a durable function, walorder walks the
// body in source order and reports any visible effect (channel send,
// socket write, downlink enqueue) reachable before the statement
// containing the dominating AppendSync/Sync call. Effects are resolved
// through the whole-program summaries, so a send three calls deep in
// another package still counts. A durable function that never reaches
// the WAL at all is reported too — the annotation would be dead weight.
//
// Soundness caveats (documented in DESIGN.md): statement order is a
// linearization, so an append inside one branch of an if unlocks the
// statements after the whole if; deferred calls are treated as running
// after the appends; closures constructed (but not called) inside the
// body are not ordered. Deliberate exceptions are annotated
// //eflora:walorder-ok <reason>.
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"eflora/internal/analysis/framework"
)

// Analyzer is the walorder analysis.
var Analyzer = &framework.Analyzer{
	Name: "walorder",
	Doc: "in functions annotated //eflora:durable, forbid externally visible effects " +
		"(channel send, socket write, downlink enqueue) before the dominating WAL AppendSync",
	Run: run,
}

const suppression = "walorder-ok"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.FuncAnnotated(fd, "durable") {
				continue
			}
			w := &walker{pass: pass, fn: pass.FuncObj(fd)}
			w.stmts(fd.Body.List)
			if !w.sawAppend {
				pass.Reportf(fd.Pos(),
					"function is annotated //eflora:durable but never reaches a WAL "+
						"Append/AppendSync; drop the annotation or add the append")
			}
		}
	}
	return nil
}

// walker scans a durable function's statements in source order, flipping
// durable once a statement containing a WAL append has executed.
type walker struct {
	pass      *framework.Pass
	fn        *types.Func
	durable   bool
	sawAppend bool
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.simple(s.Cond)
		w.stmts(s.Body.List)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.simple(s.Cond)
		w.stmts(s.Body.List)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.simple(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.simple(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.simple(e)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeferStmt:
		// Deferred work runs at function exit, after the appends.
	case *ast.GoStmt:
		// A spawned goroutine runs concurrently with everything that
		// follows, so its effects count at spawn time.
		w.simple(s.Call)
	default:
		w.simple(s)
	}
}

// simple scans one simple statement or expression for visible effects
// and WAL appends, in that order of concern: if the statement both emits
// and appends, the emission is not provably ordered after the append, so
// it still reports.
func (w *walker) simple(n ast.Node) {
	if n == nil {
		return
	}
	appends := false
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // construction is not execution
		case *ast.SendStmt:
			w.visible(x.Pos(), "chan send")
		case *ast.CallExpr:
			eff := w.callEffects(x)
			if vis := eff & framework.VisibleEffects; vis != 0 && !w.durable {
				desc := w.explain(x, vis)
				w.visible(x.Pos(), desc)
			}
			if eff&framework.EffAppendsWAL != 0 {
				appends = true
			}
		}
		return true
	})
	if appends {
		w.durable = true
		w.sawAppend = true
	}
}

func (w *walker) callEffects(call *ast.CallExpr) framework.Effect {
	eff, _ := framework.IntrinsicCallEffects(w.pass.TypesInfo, call)
	if w.pass.Prog != nil && w.fn != nil {
		for _, e := range w.pass.Prog.CallGraph.CalleesAt(w.fn, call.Pos()) {
			if s := w.pass.Prog.SummaryOf(e.Callee); s != nil {
				eff |= s.Total
			}
		}
	}
	return eff
}

func (w *walker) explain(call *ast.CallExpr, vis framework.Effect) string {
	if ieff, desc := framework.IntrinsicCallEffects(w.pass.TypesInfo, call); ieff&vis != 0 {
		return desc
	}
	if w.pass.Prog != nil && w.fn != nil {
		for _, e := range w.pass.Prog.CallGraph.CalleesAt(w.fn, call.Pos()) {
			if s := w.pass.Prog.SummaryOf(e.Callee); s != nil && s.Total&vis != 0 {
				return w.pass.Prog.ChainString(e.Callee, firstBit(s.Total&vis))
			}
		}
	}
	return vis.String()
}

func (w *walker) visible(pos token.Pos, desc string) {
	if w.durable || w.pass.Suppressed(pos, suppression) {
		return
	}
	w.pass.Reportf(pos,
		"externally visible effect (%s) before the dominating WAL AppendSync in a "+
			"//eflora:durable function; a crash here forgets state the outside world "+
			"already saw — append first, or annotate //eflora:%s <reason>",
		desc, suppression)
}

func firstBit(e framework.Effect) framework.Effect { return e & -e }
