package walorder_test

import (
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/walorder"
)

// TestWalorder runs the durability-ordering analyzer over a fixture
// module whose statestore/downlink packages mirror the real API surface:
// downlinks queued or channels sent before the dominating AppendSync are
// reported (including a send hidden in another package), append-first
// flows and annotated exceptions are not, and a durable function that
// never reaches the WAL is flagged as mislabeled.
func TestWalorder(t *testing.T) {
	analysistest.RunProgram(t, "testdata", "walfirst", walorder.Analyzer)
}
