// Package statestore mimics the real durable store's API surface: the
// intrinsic effect table matches on the import-path base "statestore"
// and receiver "Store", so this fixture scopes exactly like the real
// tree.
package statestore

// Store is a stand-in WAL.
type Store struct{ seq uint64 }

// AppendSync is the durability point.
func (s *Store) AppendSync(v int) (uint64, error) {
	s.seq++
	return s.seq, nil
}

// Append is the non-synced variant; it still counts as reaching the WAL.
func (s *Store) Append(v int) (uint64, error) {
	s.seq++
	return s.seq, nil
}
