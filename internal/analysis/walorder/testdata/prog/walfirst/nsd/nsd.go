// Package nsd exercises the walorder analyzer: durable functions whose
// visible effects must follow the WAL append.
package nsd

import (
	"walfirst/downlink"
	"walfirst/emit"
	"walfirst/statestore"
)

// Daemon wires the fixture store and scheduler together.
type Daemon struct {
	store *statestore.Store
	q     *downlink.Scheduler
	ch    chan int
}

// BadStep queues the downlink before the delta is durable — the crash
// window walorder exists to catch.
//
//eflora:durable
func (d *Daemon) BadStep(v int) error {
	d.q.Enqueue(v) // want `externally visible effect \(\(\*downlink\.Scheduler\)\.Enqueue\) before the dominating WAL AppendSync`
	_, err := d.store.AppendSync(v)
	return err
}

// BadSend leaks through a raw channel send before the append.
//
//eflora:durable
func (d *Daemon) BadSend(v int) error {
	d.ch <- v // want `externally visible effect \(chan send\) before the dominating WAL AppendSync`
	_, err := d.store.AppendSync(v)
	return err
}

// BadCrossPackage hides the visible effect behind a helper in another
// package; only the summary sees it.
//
//eflora:durable
func (d *Daemon) BadCrossPackage(v int) error {
	emit.Notify(d.ch, v) // want `externally visible effect \(emit\.Notify → blocking chan send\) before the dominating WAL AppendSync`
	_, err := d.store.AppendSync(v)
	return err
}

// GoodStep appends first; everything after is fair game.
//
//eflora:durable
func (d *Daemon) GoodStep(v int) error {
	if _, err := d.store.AppendSync(v); err != nil {
		return err
	}
	d.q.Enqueue(v)
	emit.Notify(d.ch, v)
	return nil
}

// Vouched suppresses a deliberate pre-append emission.
//
//eflora:durable
func (d *Daemon) Vouched(v int) error {
	//eflora:walorder-ok advisory metric only, not recovered state
	d.q.Enqueue(v)
	_, err := d.store.AppendSync(v)
	return err
}

// NoAppend claims durability but never reaches the WAL.
//
//eflora:durable
func (d *Daemon) NoAppend(v int) { // want `annotated //eflora:durable but never reaches a WAL Append/AppendSync`
	_ = v
}
