module walfirst

go 1.22
