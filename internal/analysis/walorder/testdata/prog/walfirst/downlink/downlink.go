// Package downlink mimics the real scheduler's API surface; Enqueue is
// an intrinsic externally-visible effect.
package downlink

// Scheduler is a stand-in downlink queue.
type Scheduler struct{ n int }

// Enqueue makes state visible to the outside world.
func (s *Scheduler) Enqueue(v int) { s.n++ }
