// Package emit hides a channel send behind an innocent-looking helper,
// so ordering violations must be found through summaries.
package emit

// Notify sends on a channel — externally visible once another goroutine
// receives it.
func Notify(ch chan int, v int) { ch <- v }
