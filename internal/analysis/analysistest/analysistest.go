// Package analysistest runs an analyzer against testdata packages and
// checks its diagnostics against want comments — a first-party,
// stdlib-only equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout follows the upstream convention: <testdata>/src/<pkg>
// holds one package per directory; the directory name is the package's
// import-path base, which is what the analyzers scope on (so a testdata
// package named "sim" is determinism-critical and one named "free" is
// not).
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// Each quoted (or backquoted) regexp must match exactly one diagnostic
// reported on that line, and every diagnostic must be matched by a want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"eflora/internal/analysis/framework"
)

// Run loads each pkgs directory under testdata/src, applies the analyzer,
// and reports mismatches between diagnostics and want comments as test
// errors. It returns all diagnostics for additional assertions (e.g. on
// suggested fixes).
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) []framework.Diagnostic {
	t.Helper()
	loader := framework.NewLoader()
	var all []framework.Diagnostic
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Errorf("load %s: %v", dir, err)
			continue
		}
		diags, err := framework.RunPackage(pkg, []*framework.Analyzer{a})
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, dir, err)
			continue
		}
		checkWants(t, pkg, diags)
		all = append(all, diags...)
	}
	return all
}

// RunProgram loads the fixture module rooted at testdata/prog/<mod> —
// a self-contained module with its own go.mod whose packages import each
// other — as a whole program (call graph + effect summaries), applies
// the analyzer to every package, and checks diagnostics against want
// comments across the whole module. It returns all diagnostics.
//
// Fixture package directories are named for the import-path base the
// analyzers scope on, exactly like the real tree: a package at
// <mod>/sim is determinism-critical, one at <mod>/statestore carries
// the WAL intrinsics, and so on.
func RunProgram(t *testing.T, testdata, mod string, a *framework.Analyzer) []framework.Diagnostic {
	t.Helper()
	root := filepath.Join(testdata, "prog", mod)
	prog, err := framework.LoadProgram([]string{root + "/..."})
	if err != nil {
		t.Fatalf("load program %s: %v", root, err)
	}
	diags, err := framework.RunProgram(prog, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, root, err)
	}
	var pkgs []*framework.Package
	for _, pkg := range prog.Packages {
		if prog.IsRoot(pkg) {
			pkgs = append(pkgs, pkg)
		}
	}
	checkWantsAll(t, pkgs, diags)
	return diags
}

// want is one expectation parsed from a comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

func checkWants(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	checkWantsAll(t, []*framework.Package{pkg}, diags)
}

func checkWantsAll(t *testing.T, pkgs []*framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, pkg.Fset, c)...)
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s",
				filepath.Base(d.Position.Filename), d.Position.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*want {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := fset.Position(c.Pos())
	var wants []*want
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		var raw string
		var err error
		raw, rest, err = cutPattern(rest)
		if err != nil {
			t.Errorf("%s:%d: malformed want comment: %v", filepath.Base(pos.Filename), pos.Line, err)
			return wants
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Errorf("%s:%d: bad want regexp %q: %v", filepath.Base(pos.Filename), pos.Line, raw, err)
			return wants
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
		rest = strings.TrimSpace(rest)
	}
	return wants
}

// cutPattern splits the leading quoted or backquoted pattern off s.
func cutPattern(s string) (pattern, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty pattern")
	}
	quote := s[0]
	if quote != '"' && quote != '`' {
		return "", "", fmt.Errorf("pattern must start with \" or `, got %q", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
			return strings.ReplaceAll(s[1:i], `\"`, `"`), s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated pattern in %q", s)
}
