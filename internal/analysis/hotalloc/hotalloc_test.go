package hotalloc_test

import (
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hot")
}
