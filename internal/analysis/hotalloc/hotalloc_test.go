package hotalloc_test

import (
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hot")
}

// TestHotallocInterprocedural checks that allocations hidden behind a
// cross-package call are charged to the hot loop, with the chain in the
// diagnostic, and that //eflora:hotpath callees carry their own budget.
func TestHotallocInterprocedural(t *testing.T) {
	analysistest.RunProgram(t, "testdata", "xpkg", hotalloc.Analyzer)
}
