// Package hot is hotalloc testdata: functions annotated //eflora:hotpath
// are scanned for per-iteration allocations; unannotated functions and
// one-time setup allocations are out of scope.
package hot

import (
	"errors"
	"fmt"
)

type obj struct{ v int }

func sink(x interface{}) { _ = x }

var errSentinel = errors.New("sentinel")

//eflora:hotpath
func Hot(n int, buf []int, names []string) ([]int, error) {
	// One-time setup before the loops is exempt: budgets bound the total,
	// hotalloc guards the per-iteration slope.
	scratch := make([]float64, n)
	_ = scratch
	for i := 0; i < n; i++ {
		tmp := make([]int, 8) // want `make inside a hot loop allocates per iteration`
		_ = tmp
		p := new(obj) // want `new inside a hot loop allocates per iteration`
		_ = p
		buf = append(buf, i)        // sanctioned arena pattern: no finding
		fresh := append(names, "x") // want `append that does not write back into its own first argument`
		_ = fresh
		s := []int{i} // want `slice literal inside a hot loop allocates per iteration`
		_ = s
		m := map[int]int{i: i} // want `map literal inside a hot loop allocates per iteration`
		_ = m
		o := &obj{v: i} // want `&hot\.obj literal inside a hot loop escapes to the heap`
		_ = o
		msg := fmt.Sprintf("%d", i) // want `fmt\.Sprintf formats through interfaces and allocates`
		_ = msg
		sink(i)                      // want `passing int as interface interface\{\} boxes the value`
		f := func() int { return i } // want `closure created per loop iteration allocates`
		_ = f
		joined := msg + names[0] // want `string concatenation inside a hot loop allocates per iteration`
		_ = joined
		if i == n-1 {
			// Error construction on the failure path is cold: fmt and
			// boxing inside return statements are exempt.
			return nil, fmt.Errorf("bad index %d", i)
		}
		//eflora:alloc-ok bounded by the test harness; exercising the suppression
		annotated := make([]int, 1)
		_ = annotated
	}
	return buf, errSentinel
}

// Cold has the same constructs but no //eflora:hotpath annotation, so
// hotalloc ignores it entirely.
func Cold(n int) {
	for i := 0; i < n; i++ {
		_ = make([]int, 8)
		_ = fmt.Sprintf("%d", i)
		sink(i)
	}
}
