// Package helper holds allocation behavior the hot package reaches only
// through calls — invisible to per-package analysis.
package helper

// Build allocates on every call.
func Build(n int) []float64 {
	buf := make([]float64, n)
	return buf
}

// Sum is allocation-free.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Pooled is annotated as carrying its own allocation budget; callers in
// hot loops must not be charged for it.
//
//eflora:hotpath
func Pooled(n int) []float64 {
	return make([]float64, n) // this make is in a return: cold-path exempt
}
