module xpkg

go 1.22
