// Package hot exercises the cross-package hotalloc check: the loop body
// below contains no allocating construct itself, only calls into helper.
package hot

import "xpkg/helper"

// Accumulate is a hot kernel; the helper.Build call allocates on every
// iteration, two files away from this loop.
//
//eflora:hotpath
func Accumulate(rounds, n int) float64 {
	var total float64
	for i := 0; i < rounds; i++ {
		buf := helper.Build(n) // want `call allocates per loop iteration; call chain: hot\.Accumulate → helper\.Build → make`
		total += helper.Sum(buf)
	}
	return total
}

// Reuse allocates once before the loop and only calls clean helpers
// inside it; no diagnostic.
//
//eflora:hotpath
func Reuse(rounds, n int) float64 {
	buf := helper.Pooled(n)
	var total float64
	for i := 0; i < rounds; i++ {
		total += helper.Sum(buf)
	}
	return total
}

// Budgeted calls an //eflora:hotpath callee inside its loop; the callee
// carries its own budget, so the caller is not charged.
//
//eflora:hotpath
func Budgeted(rounds, n int) float64 {
	var total float64
	for i := 0; i < rounds; i++ {
		total += helper.Sum(helper.Pooled(n))
	}
	return total
}
