// Package hotalloc implements the zero-alloc hot-path analyzer of
// eflora-vet.
//
// PR 3 made the simulator and allocator hot paths allocation-free
// (sim.Run: 202k allocs -> 25; EFLoRaAllocate: 1.5M -> 1.8k), protected
// at runtime by testing.AllocsPerRun budgets. hotalloc moves the
// guardrail earlier: functions annotated
//
//	//eflora:hotpath
//
// in their doc comment are scanned for allocating constructs inside
// loops — the per-iteration allocations that rot a zero-alloc kernel:
//
//   - make, new, and slice/map composite literals (and &T{} literals)
//   - append that does not write back into its own first argument
//     (x = append(x, ...) into a preallocated buffer is the sanctioned
//     arena pattern; appending into a fresh slice is not)
//   - fmt.* formatting and errors.New (allowed inside return statements:
//     error construction on the failure path is cold)
//   - non-constant string concatenation
//   - closures created per iteration
//   - interface boxing at call sites (a concrete argument passed as an
//     interface parameter allocates when it escapes)
//
// One-time setup allocations before the loops are deliberately out of
// scope: the budget tests bound the total, hotalloc guards the
// per-iteration slope. Known-bounded exceptions are annotated
// //eflora:alloc-ok <reason>.
//
// Under whole-program analysis (RunProgram), a call inside a hot loop to
// any function whose transitive summary allocates is reported at the
// call site with the full call chain — an allocating helper two packages
// away no longer hides behind the package boundary. Callees themselves
// annotated //eflora:hotpath are exempt: they carry their own loop
// checks and AllocsPerRun budgets, and their pre-loop setup allocations
// are the caller's amortized cost, not a per-iteration slope.
package hotalloc

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"eflora/internal/analysis/framework"
)

// Analyzer is the hotalloc analysis.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocating constructs inside loops of functions annotated //eflora:hotpath " +
		"(append into fresh slices, make, map/slice literals, fmt formatting, closures, interface boxing)",
	Run: run,
}

const suppression = "alloc-ok"

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.FuncAnnotated(fn, "hotpath") {
				continue
			}
			w := &walker{pass: pass, fn: pass.FuncObj(fn)}
			w.walkStmts(fn.Body.List)
		}
	}
	return nil
}

// walker tracks lexical context (loop depth, enclosing return) while
// scanning a hot function body.
type walker struct {
	pass *framework.Pass
	// fn is the hot function's object, the call-graph node interprocedural
	// checks resolve call sites against.
	fn       *types.Func
	loops    int
	inReturn bool
	// sanctioned holds append calls of the x = append(x, ...) form.
	sanctioned map[*ast.CallExpr]bool
}

func (w *walker) report(pos token.Pos, format string, args ...interface{}) {
	if w.pass.Suppressed(pos, suppression) {
		return
	}
	w.pass.Reportf(pos, format+" (or annotate //eflora:"+suppression+" <reason>)", args...)
}

func (w *walker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmt(s.Post)
		w.loops++
		w.walkStmts(s.Body.List)
		w.loops--
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.loops++
		w.walkStmts(s.Body.List)
		w.loops--
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call := appendCall(rhs); call != nil && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if exprString(s.Lhs[0]) == exprString(call.Args[0]) {
					if w.sanctioned == nil {
						w.sanctioned = make(map[*ast.CallExpr]bool)
					}
					w.sanctioned[call] = true
				}
			}
		}
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.ReturnStmt:
		wasReturn := w.inReturn
		w.inReturn = true
		for _, e := range s.Results {
			w.walkExpr(e)
		}
		w.inReturn = wasReturn
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmts(s.Body.List)
		w.walkStmt(s.Else)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e)
			}
			w.walkStmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.walkStmts(cc.Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.walkStmt(cc.Comm)
			w.walkStmts(cc.Body)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.GoStmt:
		w.walkExpr(s.Call)
	case *ast.DeferStmt:
		w.walkExpr(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v)
					}
				}
			}
		}
	}
}

func (w *walker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.checkCall(e)
		w.walkExpr(e.Fun)
		for _, a := range e.Args {
			w.walkExpr(a)
		}
	case *ast.CompositeLit:
		w.checkCompositeLit(e, false)
		for _, el := range e.Elts {
			w.walkExpr(el)
		}
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
			w.checkCompositeLit(cl, true)
			for _, el := range cl.Elts {
				w.walkExpr(el)
			}
			return
		}
		w.walkExpr(e.X)
	case *ast.FuncLit:
		if w.loops > 0 {
			w.report(e.Pos(), "closure created per loop iteration allocates; hoist it out of the loop")
		}
		// The literal's own body is a fresh lexical context: allocations
		// there count only against loops inside the literal.
		saved := *w
		w.loops, w.inReturn = 0, false
		w.walkStmts(e.Body.List)
		w.loops, w.inReturn = saved.loops, saved.inReturn
	case *ast.BinaryExpr:
		w.checkStringConcat(e)
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value)
	}
}

func (w *walker) checkCall(call *ast.CallExpr) {
	if w.loops == 0 {
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(w.pass, fun) {
				w.report(call.Pos(), "make inside a hot loop allocates per iteration; preallocate before the loop")
			}
			return
		case "new":
			if isBuiltin(w.pass, fun) {
				w.report(call.Pos(), "new inside a hot loop allocates per iteration; preallocate before the loop")
			}
			return
		case "append":
			if isBuiltin(w.pass, fun) && !w.sanctioned[call] {
				w.report(call.Pos(), "append that does not write back into its own first argument grows a fresh slice per iteration; use the x = append(x, ...) arena pattern on a preallocated buffer")
			}
			return
		}
	case *ast.SelectorExpr:
		if pkgPath, ok := packageQualifier(w.pass, fun); ok {
			if pkgPath == "fmt" && !w.inReturn {
				w.report(call.Pos(), "fmt.%s formats through interfaces and allocates; move formatting off the hot path", fun.Sel.Name)
				return
			}
			if pkgPath == "errors" && fun.Sel.Name == "New" && !w.inReturn {
				w.report(call.Pos(), "errors.New allocates; construct sentinel errors once at package scope")
				return
			}
		}
	}
	w.checkBoxing(call)
	w.checkCalleeSummary(call)
}

// checkCalleeSummary flags calls (inside hot loops) to functions whose
// transitive effect summary allocates, printing the chain to the
// allocation's origin. Only active under whole-program analysis.
func (w *walker) checkCalleeSummary(call *ast.CallExpr) {
	prog := w.pass.Prog
	if prog == nil || w.fn == nil || w.inReturn {
		return
	}
	for _, e := range prog.CallGraph.CalleesAt(w.fn, call.Pos()) {
		s := prog.SummaryOf(e.Callee)
		if s == nil || s.Annotated("hotpath") {
			continue
		}
		if s.Total&framework.EffAllocates == 0 {
			continue
		}
		w.report(call.Pos(), "call allocates per loop iteration; call chain: %s → %s",
			framework.FuncDisplayName(w.fn),
			prog.ChainString(e.Callee, framework.EffAllocates))
		return // one finding per call site
	}
}

// checkBoxing flags call arguments whose concrete value is passed as an
// interface parameter (boxing allocates when the value escapes). Calls
// inside return statements are exempt: error construction on the failure
// path is cold.
func (w *walker) checkBoxing(call *ast.CallExpr) {
	if w.inReturn {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() { // conversions don't box
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			paramType = slice.Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argTV, ok := w.pass.TypesInfo.Types[arg]
		if !ok || argTV.Type == nil || types.IsInterface(argTV.Type) {
			continue
		}
		if b, ok := argTV.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.report(arg.Pos(), "passing %s as interface %s boxes the value and may allocate per iteration",
			argTV.Type.String(), paramType.String())
	}
}

func (w *walker) checkCompositeLit(cl *ast.CompositeLit, addressed bool) {
	if w.loops == 0 {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		w.report(cl.Pos(), "slice literal inside a hot loop allocates per iteration; preallocate and reuse")
	case *types.Map:
		w.report(cl.Pos(), "map literal inside a hot loop allocates per iteration; preallocate and reuse")
	default:
		if addressed {
			w.report(cl.Pos(), "&%s literal inside a hot loop escapes to the heap per iteration; reuse a preallocated object", typeName(tv.Type))
		}
	}
}

func (w *walker) checkStringConcat(e *ast.BinaryExpr) {
	if w.loops == 0 || e.Op != token.ADD || w.inReturn {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil { // constant-folded concat is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		w.report(e.OpPos, "string concatenation inside a hot loop allocates per iteration; use a preallocated []byte or strings.Builder outside the loop")
	}
}

func appendCall(e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	return call
}

func isBuiltin(pass *framework.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func packageQualifier(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkgName.Imported().Path(), true
}

func exprString(e ast.Expr) string {
	var b strings.Builder
	printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}

func typeName(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}
