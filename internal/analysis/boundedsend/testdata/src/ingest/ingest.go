// Package ingest is boundedsend testdata: its directory name puts it on
// the packet path, where channel sends must be select-with-default or
// annotated bounded backpressure.
package ingest

func Blocking(ch chan int, v int) {
	ch <- v // want `blocking channel send on the packet path can stall ingest`
}

func NonBlocking(ch chan int, v int) {
	select {
	case ch <- v:
	default:
	}
}

// A select without a default still blocks until some case fires, so its
// send clauses are flagged too.
func SelectNoDefault(ch1, ch2 chan int, v int) {
	select {
	case ch1 <- v: // want `blocking channel send on the packet path can stall ingest`
	case ch2 <- v: // want `blocking channel send on the packet path can stall ingest`
	}
}

func Annotated(ch chan int, v int) {
	//eflora:blocking-ok bounded inbox; a full shard must stall the reader by contract
	ch <- v
}
