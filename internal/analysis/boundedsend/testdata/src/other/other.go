// Package other is boundedsend testdata: off the packet path, blocking
// sends are ordinary Go and produce no findings.
package other

func Blocking(ch chan int, v int) {
	ch <- v
}
