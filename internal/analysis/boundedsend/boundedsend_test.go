package boundedsend_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/boundedsend"
	"eflora/internal/analysis/framework"
)

func TestBoundedsend(t *testing.T) {
	diags := analysistest.Run(t, "testdata", boundedsend.Analyzer, "ingest", "other")
	// Standalone sends carry the select-with-default rewrite; comm-clause
	// sends of a default-less select cannot be rewritten in place and must
	// not offer one.
	sawFix := false
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				if strings.Contains(e.NewText, "default:") && strings.Contains(e.NewText, "case ch <- v:") {
					sawFix = true
				}
			}
		}
	}
	if !sawFix {
		t.Error("no suggested fix rewrites the plain send to select-with-default")
	}
}

// TestApplyFix round-trips the suggested fix through framework.ApplyFixes
// on a copy of the fixture: the plain send must become non-blocking while
// the unfixable comm-clause findings remain.
func TestApplyFix(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "ingest", "ingest.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ingest")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "ingest.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	loader := framework.NewLoader()
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.RunPackage(pkg, []*framework.Analyzer{boundedsend.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := framework.ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("ApplyFixes applied %d edits, want 1 (the plain send)", applied)
	}
	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "default: // dropped: packet path must not block") {
		t.Errorf("rewritten file lacks the shedding default clause:\n%s", fixed)
	}

	// The rewritten package must still parse and type-check, and only the
	// comm-clause findings of the default-less select may remain.
	pkg2, err := framework.NewLoader().Load(dir)
	if err != nil {
		t.Fatalf("rewritten package fails to load: %v", err)
	}
	diags2, err := framework.RunPackage(pkg2, []*framework.Analyzer{boundedsend.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	remaining := 0
	for _, d := range diags2 {
		if strings.Contains(d.Message, "blocking channel send") {
			remaining++
			if len(d.SuggestedFixes) != 0 {
				t.Errorf("%s:%d: comm-clause finding should carry no fix", d.Position.Filename, d.Position.Line)
			}
		}
	}
	if remaining != 2 {
		t.Errorf("after fixing, %d blocking-send findings remain, want the 2 comm-clause sends", remaining)
	}
}
