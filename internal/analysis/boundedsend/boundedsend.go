// Package boundedsend implements the no-blocking-ingest analyzer of
// eflora-vet.
//
// The live serving path (PR 2) promises that packet ingest never blocks
// indefinitely on an unbounded queue: every channel send on the packet
// path must either be a select with a default (shed or count, never
// stall) or be an explicitly acknowledged bounded-backpressure point.
// boundedsend enforces this in the ingest, netserver, downlink and
// lorawan packages (and the eflora-nsd daemon): a send statement
// outside a select-with-default is
// flagged, with a suggested fix rewriting it to the canonical
// non-blocking form. Deliberate blocking sends — documented backpressure
// — are annotated //eflora:blocking-ok <reason>.
package boundedsend

import (
	"go/ast"
	"go/printer"
	"go/token"
	"strings"

	"eflora/internal/analysis/framework"
)

// Analyzer is the boundedsend analysis.
var Analyzer = &framework.Analyzer{
	Name: "boundedsend",
	Doc: "require channel sends on the packet path (ingest, netserver, downlink, lorawan, eflora-nsd) " +
		"to be select-with-default or annotated bounded backpressure",
	Run: run,
}

// packetPathPackages are the packages (by import-path base) forming the
// live packet path.
var packetPathPackages = map[string]bool{
	"ingest":     true,
	"netserver":  true,
	"eflora-nsd": true,
	"downlink":   true,
	"lorawan":    true,
	"statestore": true,
}

const suppression = "blocking-ok"

func run(pass *framework.Pass) error {
	if !packetPathPackages[pass.PkgBase()] {
		return nil
	}
	// Sends appearing as the comm clause of a select with a default are
	// non-blocking by construction. Comm-clause sends of a default-less
	// select still block, but rewriting the clause in place would not be
	// valid Go, so those findings carry no suggested fix.
	nonBlocking := make(map[*ast.SendStmt]bool)
	inComm := make(map[*ast.SendStmt]bool)
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				inComm[send] = true
				if hasDefault {
					nonBlocking[send] = true
				}
			}
		}
		return true
	})
	pass.Inspect(func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || nonBlocking[send] {
			return true
		}
		if pass.Suppressed(send.Pos(), suppression) {
			return true
		}
		d := framework.Diagnostic{
			Pos: send.Pos(),
			Message: "blocking channel send on the packet path can stall ingest; use " +
				"select-with-default (shed and count) or annotate the bounded-backpressure " +
				"contract with //eflora:" + suppression + " <reason>",
		}
		if !inComm[send] {
			d.SuggestedFixes = []framework.SuggestedFix{nonBlockingFix(pass.Fset, send)}
		}
		pass.Report(d)
		return true
	})
	return nil
}

// nonBlockingFix rewrites `ch <- v` into the canonical shedding form:
//
//	select {
//	case ch <- v:
//	default: // dropped: packet path must not block
//	}
func nonBlockingFix(fset *token.FileSet, send *ast.SendStmt) framework.SuggestedFix {
	var chBuf, valBuf strings.Builder
	printer.Fprint(&chBuf, fset, send.Chan)
	printer.Fprint(&valBuf, fset, send.Value)
	indent := strings.Repeat("\t", indentOf(fset, send))
	newText := "select {\n" +
		indent + "case " + chBuf.String() + " <- " + valBuf.String() + ":\n" +
		indent + "default: // dropped: packet path must not block\n" +
		indent + "}"
	return framework.SuggestedFix{
		Message: "wrap the send in select-with-default",
		TextEdits: []framework.TextEdit{{
			Pos:     send.Pos(),
			End:     send.End(),
			NewText: newText,
		}},
	}
}

// indentOf estimates the send's indentation depth in tabs from its
// column (gofmt indents one tab per level).
func indentOf(fset *token.FileSet, n ast.Node) int {
	col := fset.Position(n.Pos()).Column - 1
	if col < 0 {
		return 0
	}
	return col
}
