// Package units implements the radio-unit safety analyzer of eflora-vet.
//
// The link-budget model (PAPER.md §III, Table IV) mixes three numeric
// domains that share the float64 type: absolute powers in dBm, ratios in
// dB, and linear powers in milliwatts. The compiler cannot tell them
// apart, but the repository's naming convention can: identifiers and
// functions carry a DBm/DB/MW suffix (txPowerDBm, snrThresholdDB,
// noiseMW). units performs a suffix-driven dataflow over +, - and
// comparison expressions and rejects the combinations that are physically
// meaningless:
//
//   - dBm + dBm      (adding two absolute log-domain powers; sum in mW)
//   - mW ± dB/dBm    (mixing linear and log domains; convert first)
//   - dB - dBm       (a ratio minus an absolute power)
//   - cross-domain comparisons (dBm vs mW, dB vs dBm, ...)
//
// Valid log-domain arithmetic (dBm ± dB, dBm - dBm -> dB, dB ± dB) and
// same-unit comparisons pass. Conversions must go through the
// internal/lora helpers (DBmToMilliwatts, MilliwattsToDBm, DBToLinear,
// LinearToDB), whose names give their results the right unit. Deliberate
// exceptions are annotated //eflora:units-ok <reason>.
package units

import (
	"go/ast"
	"go/token"
	"go/types"

	"eflora/internal/analysis/framework"
)

// Analyzer is the units analysis.
var Analyzer = &framework.Analyzer{
	Name: "units",
	Doc: "detect dB/dBm/mW confusion via identifier-suffix dataflow on +, - and comparisons; " +
		"conversions go through the internal/lora helpers",
	Run: run,
}

const suppression = "units-ok"

// unit is the inferred radio unit of an expression.
type unit int

const (
	unknown unit = iota
	dbm          // absolute power, log domain
	db           // ratio, log domain
	mw           // linear power, milliwatts
)

func (u unit) String() string {
	switch u {
	case dbm:
		return "dBm"
	case db:
		return "dB"
	case mw:
		return "mW"
	}
	return "?"
}

func run(pass *framework.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		checkBinary(pass, be)
		return true
	})
	return nil
}

func checkBinary(pass *framework.Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	if !isNumeric(pass, be.X) || !isNumeric(pass, be.Y) {
		return
	}
	ux, uy := unitOf(pass, be.X), unitOf(pass, be.Y)
	if ux == unknown || uy == unknown {
		return
	}
	if pass.Suppressed(be.OpPos, suppression) || pass.Suppressed(be.Pos(), suppression) {
		return
	}
	switch be.Op {
	case token.ADD:
		switch {
		case ux == dbm && uy == dbm:
			pass.Reportf(be.OpPos,
				"adding two absolute powers in the log domain (dBm + dBm) is meaningless; "+
					"convert with lora.DBmToMilliwatts, sum in mW, and convert back "+
					"(or annotate //eflora:%s <reason>)", suppression)
		case (ux == mw) != (uy == mw):
			pass.Reportf(be.OpPos,
				"mixing linear and log domains (%s + %s); convert with the internal/lora helpers "+
					"(DBmToMilliwatts, DBToLinear) before adding (or annotate //eflora:%s <reason>)",
				ux, uy, suppression)
		}
	case token.SUB:
		switch {
		case (ux == mw) != (uy == mw):
			pass.Reportf(be.OpPos,
				"mixing linear and log domains (%s - %s); convert with the internal/lora helpers "+
					"(DBmToMilliwatts, DBToLinear) before subtracting (or annotate //eflora:%s <reason>)",
				ux, uy, suppression)
		case ux == db && uy == dbm:
			pass.Reportf(be.OpPos,
				"subtracting an absolute power from a ratio (dB - dBm) is meaningless "+
					"(or annotate //eflora:%s <reason>)", suppression)
		}
	default: // comparisons
		if ux != uy {
			pass.Reportf(be.OpPos,
				"comparing different radio units (%s vs %s); convert with the internal/lora "+
					"helpers first (or annotate //eflora:%s <reason>)", ux, uy, suppression)
		}
	}
}

func isNumeric(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// unitOf infers the radio unit of an expression from identifier and
// function-name suffixes, propagating through parentheses, indexing,
// unary sign, and the +/- combination rules.
func unitOf(pass *framework.Pass, e ast.Expr) unit {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return unitOf(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return unitOf(pass, e.X)
		}
	case *ast.StarExpr:
		return unitOf(pass, e.X)
	case *ast.Ident:
		return suffixUnit(e.Name)
	case *ast.SelectorExpr:
		return suffixUnit(e.Sel.Name)
	case *ast.IndexExpr:
		return unitOf(pass, e.X)
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return suffixUnit(fun.Name)
		case *ast.SelectorExpr:
			return suffixUnit(fun.Sel.Name)
		}
	case *ast.BinaryExpr:
		ux, uy := unitOf(pass, e.X), unitOf(pass, e.Y)
		switch e.Op {
		case token.ADD:
			switch {
			case ux == mw && uy == mw:
				return mw
			case ux == db && uy == db:
				return db
			case (ux == dbm && uy == db) || (ux == db && uy == dbm):
				return dbm
			}
		case token.SUB:
			switch {
			case ux == mw && uy == mw:
				return mw
			case ux == db && uy == db:
				return db
			case ux == dbm && uy == dbm:
				return db
			case ux == dbm && uy == db:
				return dbm
			}
		}
	}
	return unknown
}

// suffixUnit classifies an identifier by its unit suffix. The suffix must
// sit on a camel-case boundary (the rune before it is a lowercase letter
// or digit) or be the whole name, so acronyms like "BMW" or "ADB" do not
// match.
func suffixUnit(name string) unit {
	for _, c := range []struct {
		suffix string
		u      unit
	}{
		{"DBm", dbm}, {"dBm", dbm},
		{"Milliwatts", mw}, {"MW", mw}, {"mW", mw},
		{"DB", db}, {"dB", db},
	} {
		if name == c.suffix {
			return c.u
		}
		if rest, ok := cutSuffix(name, c.suffix); ok && boundary(rest) {
			return c.u
		}
	}
	switch name {
	case "dbm":
		return dbm
	case "db":
		return db
	case "mw":
		return mw
	}
	return unknown
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) <= len(suffix) || s[len(s)-len(suffix):] != suffix {
		return "", false
	}
	return s[:len(s)-len(suffix)], true
}

// boundary reports whether the last rune of the prefix ends a camel-case
// word (lowercase letter or digit), so "noiseDBm" matches but "ADB" and
// "SNRDB" (all-caps run) do not — all-caps identifiers are classified
// only by exact name.
func boundary(prefix string) bool {
	if prefix == "" {
		return false
	}
	c := prefix[len(prefix)-1]
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
