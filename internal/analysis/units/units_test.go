package units_test

import (
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/units"
)

func TestUnits(t *testing.T) {
	analysistest.Run(t, "testdata", units.Analyzer, "units")
}
