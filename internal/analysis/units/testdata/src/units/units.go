// Package units is units testdata: identifier suffixes drive a dataflow
// over +, - and comparisons, rejecting physically meaningless mixes of
// dBm (absolute log power), dB (ratio) and mW (linear power).
package units

func Invalid(txDBm, rxDBm, gainDB, noiseMW, sigMW float64) {
	_ = txDBm + rxDBm    // want `adding two absolute powers in the log domain`
	_ = noiseMW + gainDB // want `mixing linear and log domains \(mW \+ dB\)`
	_ = sigMW - txDBm    // want `mixing linear and log domains \(mW - dBm\)`
	_ = gainDB - txDBm   // want `subtracting an absolute power from a ratio \(dB - dBm\)`
	_ = txDBm < noiseMW  // want `comparing different radio units \(dBm vs mW\)`
	_ = gainDB >= rxDBm  // want `comparing different radio units \(dB vs dBm\)`
	// Propagation: dBm - dBm yields dB, so subtracting another dBm from
	// the difference is a ratio minus an absolute power.
	_ = (txDBm - rxDBm) - txDBm // want `subtracting an absolute power from a ratio \(dB - dBm\)`
}

func Valid(txDBm, rxDBm, gainDB, fadeDB, sigMW, noiseMW float64) {
	_ = txDBm + gainDB  // link budget: absolute power plus a gain
	_ = txDBm - rxDBm   // difference of absolute powers is a ratio
	_ = gainDB + fadeDB // ratios add
	_ = sigMW + noiseMW // linear powers sum
	_ = txDBm > rxDBm   // same-unit comparisons
	_ = sigMW < noiseMW
	_ = gainDB == fadeDB
}

// Acronyms must not classify: the suffix has to sit on a camel-case
// boundary, so BMW is not milliwatts and ADB is not a ratio.
func Acronyms(BMW, ADB, speedKMH float64) {
	_ = BMW + ADB
	_ = BMW - speedKMH
	_ = ADB < speedKMH
}

func Suppressed(txDBm, rxDBm float64) {
	//eflora:units-ok contrived fixture exercising the suppression path
	_ = txDBm + rxDBm
}
