// Package locksafe implements the lock-hygiene analyzer of eflora-vet.
//
// The serving path (netserver, statestore, downlink, the nsd daemon)
// mixes fine-grained mutexes with channels, fsync and UDP sockets. A
// sync.Mutex held across any of those is the classic deadlock-and-
// latency footgun: the lock's critical section now includes channel
// backpressure, disk stalls or kernel socket buffers, and every other
// goroutine that touches the mutex inherits that tail latency (or, with
// the wrong channel topology, deadlocks outright). locksafe walks each
// function in source order, tracks which mutexes are held (Lock/RLock
// through Unlock/RUnlock, or to function exit for deferred unlocks),
// and reports any call made while holding a lock whose transitive
// summary blocks: a channel send, an (*os.File).Sync, or socket I/O.
//
// The walk is a source-order linearization, not a CFG: an unlock inside
// one branch of an if releases the lock for the statements after the if
// (under-approximate, may miss), and a conditional lock taints the rest
// of the function (over-approximate, may over-report — annotate).
// Deliberate exceptions are annotated //eflora:lockheld-ok <reason>.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eflora/internal/analysis/framework"
)

// Analyzer is the locksafe analysis.
var Analyzer = &framework.Analyzer{
	Name: "locksafe",
	Doc: "forbid holding a sync.Mutex/RWMutex across calls that block: channel sends, " +
		"fsync, or socket I/O (resolved through whole-program summaries)",
	Run: run,
}

const suppression = "lockheld-ok"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, fn: pass.FuncObj(fd)}
			w.stmts(fd.Body.List)
		}
	}
	return nil
}

// heldLock is one currently held mutex, identified by the printed form
// of its receiver expression (s.mu, w.state.lock, ...).
type heldLock struct {
	expr     string
	deferred bool // released only at function exit
}

// walker tracks the set of held locks through a source-order walk.
type walker struct {
	pass *framework.Pass
	fn   *types.Func
	held []heldLock
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.check(s.Cond)
		w.stmts(s.Body.List)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.check(s.Cond)
		w.stmts(s.Body.List)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.check(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.check(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.check(e)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeferStmt:
		if recv, op := lockOp(w.pass.TypesInfo, s.Call); op == opUnlock {
			w.markDeferred(recv)
			return
		}
		// Other deferred work runs at exit; whether locks are held there
		// depends on defer order — out of linear-scan scope.
	case *ast.GoStmt:
		// The goroutine body runs concurrently; launching it does not
		// block, and the closure's effects are not executed under this
		// stack's locks. The spawn expression's arguments are evaluated
		// now though.
		w.check(s.Call)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, op := lockOp(w.pass.TypesInfo, call); op != opNone {
				w.apply(recv, op)
				return
			}
		}
		w.check(s.X)
	default:
		w.check(s)
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a sync mutex acquire or release, returning
// the printed receiver expression.
func lockOp(info *types.Info, call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", opNone
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", opNone
	}
	switch m.Name() {
	case "Lock", "RLock":
		return exprString(sel.X), opLock
	case "Unlock", "RUnlock":
		return exprString(sel.X), opUnlock
	}
	return "", opNone
}

func (w *walker) apply(recv string, op lockOpKind) {
	switch op {
	case opLock:
		w.held = append(w.held, heldLock{expr: recv})
	case opUnlock:
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i].expr == recv && !w.held[i].deferred {
				w.held = append(w.held[:i], w.held[i+1:]...)
				return
			}
		}
	}
}

func (w *walker) markDeferred(recv string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].expr == recv {
			w.held[i].deferred = true
			return
		}
	}
}

// check scans a node for blocking operations performed while any lock is
// held.
func (w *walker) check(n ast.Node) {
	if n == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // construction is not execution
		case *ast.SendStmt:
			w.report(x.Pos(), "chan send")
		case *ast.CallExpr:
			if _, op := lockOp(w.pass.TypesInfo, x); op != opNone {
				return true // nested lock ops are a different analyzer's concern
			}
			eff := w.callEffects(x)
			if blocking := eff & framework.BlockingEffects; blocking != 0 {
				w.report(x.Pos(), w.explain(x, blocking))
			}
		}
		return true
	})
}

func (w *walker) callEffects(call *ast.CallExpr) framework.Effect {
	eff, _ := framework.IntrinsicCallEffects(w.pass.TypesInfo, call)
	if w.pass.Prog != nil && w.fn != nil {
		for _, e := range w.pass.Prog.CallGraph.CalleesAt(w.fn, call.Pos()) {
			if s := w.pass.Prog.SummaryOf(e.Callee); s != nil {
				eff |= s.Total
			}
		}
	}
	return eff
}

func (w *walker) explain(call *ast.CallExpr, blocking framework.Effect) string {
	if ieff, desc := framework.IntrinsicCallEffects(w.pass.TypesInfo, call); ieff&blocking != 0 {
		return desc
	}
	if w.pass.Prog != nil && w.fn != nil {
		for _, e := range w.pass.Prog.CallGraph.CalleesAt(w.fn, call.Pos()) {
			if s := w.pass.Prog.SummaryOf(e.Callee); s != nil && s.Total&blocking != 0 {
				bit := s.Total & blocking
				return w.pass.Prog.ChainString(e.Callee, bit&-bit)
			}
		}
	}
	return blocking.String()
}

func (w *walker) report(pos token.Pos, desc string) {
	if w.pass.Suppressed(pos, suppression) {
		return
	}
	locks := make([]string, len(w.held))
	for i, h := range w.held {
		locks[i] = h.expr
	}
	w.pass.Reportf(pos,
		"mutex %s held across %s, which can block indefinitely; release the lock "+
			"first, hand the work to a queue drained outside the critical section, or "+
			"annotate //eflora:%s <reason>",
		strings.Join(locks, ", "), desc, suppression)
}

// exprString renders a receiver expression (idents, selectors, indexes)
// for lock identity matching.
func exprString(e ast.Expr) string {
	var b strings.Builder
	write(&b, e)
	return b.String()
}

func write(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		write(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		write(b, e.X)
		b.WriteByte('[')
		write(b, e.Index)
		b.WriteByte(']')
	case *ast.StarExpr:
		b.WriteByte('*')
		write(b, e.X)
	case *ast.ParenExpr:
		write(b, e.X)
	default:
		b.WriteString("?")
	}
}
