package locksafe_test

import (
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/locksafe"
)

// TestLocksafe runs the lock-hygiene analyzer over a fixture module:
// channel sends and a cross-package fsync under a held mutex (direct,
// deferred-unlock, and RWMutex read-lock variants) are reported with the
// blocking chain; unlock-before-send and annotated exceptions are not.
func TestLocksafe(t *testing.T) {
	analysistest.RunProgram(t, "testdata", "locked", locksafe.Analyzer)
}
