// Package srv exercises the locksafe analyzer: blocking operations under
// a held sync.Mutex/RWMutex.
package srv

import (
	"os"
	"sync"

	"locked/disk"
)

// S is a server shard with a lock, a channel and a WAL file.
type S struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	wal *os.File
}

// BadSend sends on a channel while holding mu.
func (s *S) BadSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `mutex s\.mu held across chan send`
	s.mu.Unlock()
}

// BadDeferSend holds mu to function exit via defer; the send is under it.
func (s *S) BadDeferSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `mutex s\.mu held across chan send`
}

// BadFsync reaches (*os.File).Sync through another package while
// holding the read lock.
func (s *S) BadFsync() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.flush() // want `mutex s\.rw held across srv\.\(\*S\)\.flush → disk\.Flush → \(\*os\.File\)\.Sync`
}

func (s *S) flush() error {
	return disk.Flush(s.wal) // no lock held in this frame; caller's frame reports
}

// Good releases the lock before sending.
func (s *S) Good(v int) {
	s.mu.Lock()
	n := v + 1
	s.mu.Unlock()
	s.ch <- n
}

// Vouched documents a deliberate send under the lock.
func (s *S) Vouched(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//eflora:lockheld-ok buffered signal channel sized to the worker count, cannot block
	s.ch <- v
}
