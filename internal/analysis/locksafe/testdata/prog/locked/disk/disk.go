// Package disk hides an fsync behind a helper; holding a mutex across
// Flush is only detectable through summaries.
package disk

import "os"

// Flush fsyncs the file.
func Flush(f *os.File) error { return f.Sync() }

// Size is harmless.
func Size(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return -1
	}
	return st.Size()
}
