module locked

go 1.22
