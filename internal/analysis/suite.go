// Package analysis aggregates the eflora-vet analyzer suite: the
// first-party static checks that keep the repository's three load-bearing
// guarantees honest at review time instead of runtime —
//
//	detrand     bit-identical determinism (PR 1)
//	hotalloc    allocation-free hot paths (PR 3)
//	units       dB/dBm/mW link-budget arithmetic (PAPER.md §III)
//	boundedsend no-blocking packet ingest (PR 2)
//
// cmd/eflora-vet runs the suite from the command line and CI; see
// DESIGN.md "Static analysis & invariants" for the annotation language.
package analysis

import (
	"eflora/internal/analysis/boundedsend"
	"eflora/internal/analysis/detrand"
	"eflora/internal/analysis/framework"
	"eflora/internal/analysis/hotalloc"
	"eflora/internal/analysis/units"
)

// All returns the full eflora-vet analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		boundedsend.Analyzer,
		detrand.Analyzer,
		hotalloc.Analyzer,
		units.Analyzer,
	}
}
