// Package analysis aggregates the eflora-vet analyzer suite: the
// first-party static checks that keep the repository's load-bearing
// guarantees honest at review time instead of runtime —
//
//	detrand     bit-identical determinism (PR 1), cross-package via summaries
//	hotalloc    allocation-free hot paths (PR 3), cross-package via summaries
//	units       dB/dBm/mW link-budget arithmetic (PAPER.md §III)
//	boundedsend no-blocking packet ingest (PR 2)
//	walorder    WAL AppendSync happens-before visible effects (PR 7)
//	locksafe    no mutex held across blocking calls
//
// cmd/eflora-vet runs the suite from the command line and CI; see
// DESIGN.md "Static analysis & invariants" and "Interprocedural
// analysis" for the annotation language and summary semantics.
package analysis

import (
	"eflora/internal/analysis/boundedsend"
	"eflora/internal/analysis/detrand"
	"eflora/internal/analysis/framework"
	"eflora/internal/analysis/hotalloc"
	"eflora/internal/analysis/locksafe"
	"eflora/internal/analysis/units"
	"eflora/internal/analysis/walorder"
)

// All returns the full eflora-vet analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		boundedsend.Analyzer,
		detrand.Analyzer,
		hotalloc.Analyzer,
		locksafe.Analyzer,
		units.Analyzer,
		walorder.Analyzer,
	}
}
