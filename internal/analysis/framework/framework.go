// Package framework is a first-party reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser and go/types. The repository vendors no third-party
// modules, so the eflora-vet analyzers (detrand, hotalloc, units,
// boundedsend) run on this framework instead; the API deliberately
// mirrors go/analysis (Analyzer, Pass, Diagnostic, SuggestedFix) so the
// analyzers port to the upstream framework mechanically if x/tools is
// ever vendored.
//
// Beyond the go/analysis core, the framework owns the two conventions
// every eflora analyzer shares:
//
//   - //eflora:<name> annotations. A marker like //eflora:hotpath tags a
//     declaration; a suppression like //eflora:nondeterminism-ok <reason>
//     silences a finding on its own line or the line directly below. A
//     suppression with an empty reason is itself reported, so the escape
//     hatches stay auditable.
//   - Package loading via the stdlib source importer, which resolves both
//     standard-library and module-local imports without network access.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the analyzer's identifier in reports (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description shown by eflora-vet -list.
	Doc string
	// Run executes the check against one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-program context (call graph, summaries) when the
	// analyzer runs under RunProgram; nil in legacy per-package mode, in
	// which analyzers fall back to their purely local checks.
	Prog *Program

	// annotations indexes //eflora: comments by file and line.
	annotations map[string]map[int]Annotation

	diagnostics *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
	// Analyzer and Position are filled in by the runner.
	Analyzer string
	Position token.Position
}

// SuggestedFix is a mechanical rewrite that would resolve the finding.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Annotation is one parsed //eflora:<name> [reason] comment.
type Annotation struct {
	Name   string // e.g. "hotpath", "nondeterminism-ok"
	Reason string // trailing free text; suppressions must have one
	Line   int
}

const annotationPrefix = "//eflora:"

// parseAnnotation decodes an //eflora: comment, reporting ok=false for
// ordinary comments.
func parseAnnotation(c *ast.Comment) (name, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, annotationPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, annotationPrefix)
	name, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(reason), name != ""
}

// buildAnnotationIndex indexes every //eflora: comment of files by
// filename and line.
func buildAnnotationIndex(fset *token.FileSet, files []*ast.File) map[string]map[int]Annotation {
	idx := make(map[string]map[int]Annotation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseAnnotation(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]Annotation)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = Annotation{Name: name, Reason: reason, Line: pos.Line}
			}
		}
	}
	return idx
}

// buildAnnotations indexes every //eflora: comment of the pass's files by
// filename and line.
func (p *Pass) buildAnnotations() {
	p.annotations = buildAnnotationIndex(p.Fset, p.Files)
}

// suppressedAt reports whether pos carries the given suppression
// annotation (with a non-empty reason) on its own line or the line above.
func suppressedAt(idx map[string]map[int]Annotation, fset *token.FileSet, pos token.Pos, name string) bool {
	position := fset.Position(pos)
	byLine := idx[position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{position.Line, position.Line - 1} {
		if a, ok := byLine[line]; ok && a.Name == name && a.Reason != "" {
			return true
		}
	}
	return false
}

// Suppressed reports whether a finding at pos is silenced by the given
// suppression annotation (e.g. "nondeterminism-ok") on the same line or
// the line directly above. A matching annotation with an empty reason
// does not suppress — the runner separately reports reasonless
// suppressions — so every escape hatch carries its justification.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	return suppressedAt(p.annotations, p.Fset, pos, name)
}

// FuncAnnotated reports whether fn's doc comment (or a comment on the
// line directly above the declaration) carries the given marker
// annotation, e.g. "hotpath".
func (p *Pass) FuncAnnotated(fn *ast.FuncDecl, name string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if n, _, ok := parseAnnotation(c); ok && n == name {
				return true
			}
		}
	}
	pos := p.Fset.Position(fn.Pos())
	if byLine := p.annotations[pos.Filename]; byLine != nil {
		if a, ok := byLine[pos.Line-1]; ok && a.Name == name {
			return true
		}
	}
	return false
}

// FuncObj resolves a function declaration to its types.Func object (its
// generic origin, for parameterized functions), or nil.
func (p *Pass) FuncObj(fn *ast.FuncDecl) *types.Func {
	obj, ok := p.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	return origin(obj)
}

// Annotations returns every parsed //eflora: annotation of the package,
// for checks that validate the annotations themselves.
func (p *Pass) Annotations() []Annotation {
	var out []Annotation
	for _, byLine := range p.annotations {
		for _, a := range byLine {
			out = append(out, a)
		}
	}
	return out
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	d.Position = p.Fset.Position(d.Pos)
	*p.diagnostics = append(*p.diagnostics, d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgBase returns the last element of the package's import path — the
// unit analyzers use to scope themselves to named packages, which also
// makes testdata packages (whose synthetic path is just the directory
// name) scope correctly.
func (p *Pass) PkgBase() string {
	path := p.Pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Inspect walks every file of the pass in depth-first order, calling fn
// for each node; fn returning false prunes the subtree (ast.Inspect
// semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
