// Package hygiene is framework testdata for annotation hygiene: unknown
// annotation names and reasonless suppressions are themselves findings.
package hygiene

//eflora:hotpth marks a typo'd annotation name
func Typo() {}

func MissingReason(m map[int]int) {
	//eflora:alloc-ok
	_ = len(m)
}

//eflora:hotpath
func Fine() {}
