// Package app exercises the three call-graph resolution modes (direct,
// interface dispatch, function value) and summary propagation through a
// recursion cycle.
package app

import "graph/base"

// Op is dispatched through an interface; the graph must include every
// program-local implementation.
type Op interface{ Apply(x int) int }

// Add is the effect-free implementation.
type Add struct{}

// Apply adds one.
func (Add) Apply(x int) int { return x + 1 }

// Timed is the implementation that reaches the wall clock.
type Timed struct{}

// Apply mixes in a timestamp.
func (Timed) Apply(x int) int { return x + int(base.Stamp()) }

// RunOp dispatches through the interface: its summary must join both
// implementations.
func RunOp(o Op, x int) int { return o.Apply(x) }

func double(x int) int { return x * 2 }

func noisy(x int) int { return x + int(base.Stamp()) }

// Pick returns one of two function values; both become address-taken.
func Pick(b bool) func(int) int {
	if b {
		return noisy
	}
	return double
}

// CallPicked calls through a function value: the graph must include
// every address-taken function of matching signature.
func CallPicked(b bool, x int) int {
	f := Pick(b)
	return f(x)
}

// Even and Odd form a recursion cycle with an effect at the bottom;
// propagation must still reach a fixpoint and witness chains must still
// terminate.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

// Odd is the other half of the cycle.
func Odd(n int) bool {
	if n == 0 {
		tick()
		return false
	}
	return Even(n - 1)
}

func tick() { _ = base.Stamp() }

// Collect reaches the allocator directly across the package boundary.
func Collect(xs []int, v int) []int { return base.Grow(xs, v) }
