module graph

go 1.22
