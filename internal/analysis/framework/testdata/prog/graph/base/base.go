// Package base holds the effect origins the graph fixture propagates:
// one wall-clock read, one allocation.
package base

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Grow allocates a fresh slice.
func Grow(xs []int, v int) []int {
	buf := make([]int, len(xs)+1)
	copy(buf, xs)
	buf[len(xs)] = v
	return buf
}
