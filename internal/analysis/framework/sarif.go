package framework

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 output, the minimal subset code-scanning UIs ingest: one
// run, one rule per analyzer, one result per finding with a physical
// location. Plain stdlib JSON — the structs below mirror only the
// fields we emit.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 document. Rule metadata
// comes from the analyzer docs when provided; analyzers seen only in
// findings get a bare rule entry.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	docs := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	seen := make(map[string]bool)
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)

	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:  "eflora-vet",
			Rules: make([]sarifRule, 0, len(names)),
		}},
		Results: make([]sarifResult, 0, len(diags)),
	}
	for _, n := range names {
		doc := docs[n]
		if doc == "" {
			doc = n
		}
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               n,
			ShortDescription: sarifMessage{Text: doc},
		})
	}
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Position.Filename},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
