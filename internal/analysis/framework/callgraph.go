package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallKind classifies how a call-graph edge was resolved.
type CallKind uint8

const (
	// CallDirect is a statically resolved call: a named function or a
	// method on a concrete receiver.
	CallDirect CallKind = iota
	// CallInterface is a conservative edge from an interface method call
	// to one concrete method that implements it.
	CallInterface
	// CallFuncValue is a conservative edge from a call through a function
	// value to one address-taken function with an identical signature.
	CallFuncValue
)

func (k CallKind) String() string {
	switch k {
	case CallDirect:
		return "direct"
	case CallInterface:
		return "interface"
	case CallFuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// Edge is one possible caller→callee transfer, anchored at the call
// expression that induced it.
type Edge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
	Kind   CallKind
}

// CallGraph is a conservative static call graph over the program's
// declared functions and methods. Function literals are attributed to
// their enclosing declared function (a closure's calls and effects count
// against whoever wrote it); literals in package-level variable
// initializers are the one documented blind spot.
type CallGraph struct {
	edges map[*types.Func][]Edge
	// addressTaken lists functions whose identifier escapes call
	// position (stored in a slice for deterministic edge order).
	addressTaken []*types.Func
}

// EdgesFrom returns fn's outgoing edges in source order.
func (g *CallGraph) EdgesFrom(fn *types.Func) []Edge { return g.edges[origin(fn)] }

// CalleesAt returns the possible callees of the call expression at pos
// inside caller, in deterministic order.
func (g *CallGraph) CalleesAt(caller *types.Func, pos token.Pos) []Edge {
	var out []Edge
	for _, e := range g.edges[origin(caller)] {
		if e.Pos == pos {
			out = append(out, e)
		}
	}
	return out
}

// Funcs returns every function with at least one outgoing edge, in
// deterministic (position) order. Mostly useful to tests.
func (g *CallGraph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(g.edges))
	for fn := range g.edges {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// graphBuilder accumulates state across the two construction passes.
type graphBuilder struct {
	prog  *Program
	graph *CallGraph
	// namedTypes are all concrete named types declared in the program,
	// the candidate set for interface dispatch.
	namedTypes []*types.Named
	// dispatch caches interface-call resolution per (recv type, method).
	dispatch map[dispatchKey][]*types.Func
	// pending are dynamic (function-value) call sites awaiting the
	// address-taken set.
	pending []pendingCall
	// addrTaken marks functions referenced outside call position.
	addrTaken map[*types.Func]bool
}

type dispatchKey struct {
	recv types.Type
	name string
}

type pendingCall struct {
	caller *types.Func
	pos    token.Pos
	sig    *types.Signature
}

// buildCallGraph constructs the program's call graph.
func buildCallGraph(prog *Program) *CallGraph {
	b := &graphBuilder{
		prog:      prog,
		graph:     &CallGraph{edges: make(map[*types.Func][]Edge)},
		dispatch:  make(map[dispatchKey][]*types.Func),
		addrTaken: make(map[*types.Func]bool),
	}
	b.collectNamedTypes()
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.walkBody(pkg, origin(fn), fd.Body)
			}
		}
	}
	b.collectAddressTaken()
	b.resolvePending()
	return b.graph
}

// collectNamedTypes gathers every concrete named type declared by a
// program package, in deterministic order.
func (b *graphBuilder) collectNamedTypes() {
	for _, pkg := range b.prog.Packages {
		scope := pkg.Pkg.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			b.namedTypes = append(b.namedTypes, named)
		}
	}
}

// walkBody records call edges from fn for every call expression in body,
// including those inside function literals.
func (b *graphBuilder) walkBody(pkg *Package, fn *types.Func, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		b.recordCall(pkg, fn, call)
		return true
	})
}

// recordCall classifies one call expression and adds its edges.
func (b *graphBuilder) recordCall(pkg *Package, caller *types.Func, call *ast.CallExpr) {
	info := pkg.TypesInfo
	fun := ast.Unparen(call.Fun)
	// Strip explicit generic instantiation.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if target := calleeOf(info, idx.X); target != nil {
			b.addEdge(Edge{Caller: caller, Callee: target, Pos: call.Pos(), Kind: CallDirect})
			return
		}
	case *ast.IndexListExpr:
		if target := calleeOf(info, idx.X); target != nil {
			b.addEdge(Edge{Caller: caller, Callee: target, Pos: call.Pos(), Kind: CallDirect})
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			b.addEdge(Edge{Caller: caller, Callee: origin(obj), Pos: call.Pos(), Kind: CallDirect})
			return
		case *types.Builtin:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if types.IsInterface(sel.Recv()) {
				for _, impl := range b.implementations(sel.Recv(), m) {
					b.addEdge(Edge{Caller: caller, Callee: impl, Pos: call.Pos(), Kind: CallInterface})
				}
				return
			}
			b.addEdge(Edge{Caller: caller, Callee: origin(m), Pos: call.Pos(), Kind: CallDirect})
			return
		}
		// Package-qualified function (pkg.F) or method expression.
		if target := calleeOf(info, fun); target != nil {
			b.addEdge(Edge{Caller: caller, Callee: target, Pos: call.Pos(), Kind: CallDirect})
			return
		}
	}
	// Anything else typed as a signature is a call through a function
	// value: resolve against the address-taken set once it is complete.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			b.pending = append(b.pending, pendingCall{caller: caller, pos: call.Pos(), sig: sig})
		}
	}
}

// calleeOf resolves an expression to the declared function it names, or
// nil if it is not a direct function reference.
func calleeOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

// implementations resolves an interface method call to every concrete
// program-local method that could satisfy it.
func (b *graphBuilder) implementations(recv types.Type, m *types.Func) []*types.Func {
	key := dispatchKey{recv: recv, name: m.Name()}
	if impls, ok := b.dispatch[key]; ok {
		return impls
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*types.Func
	for _, named := range b.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if fn.Pkg() == nil || b.prog.byPath[fn.Pkg().Path()] == nil {
			continue // embedded foreign method: no body to summarize
		}
		impls = append(impls, origin(fn))
	}
	b.dispatch[key] = impls
	return impls
}

// collectAddressTaken finds every declared function whose identifier is
// used outside call position — assigned, passed, stored in a struct —
// making it a candidate callee for calls through function values.
func (b *graphBuilder) collectAddressTaken() {
	for _, pkg := range b.prog.Packages {
		// First mark the identifiers that are the operator of a call.
		inCallPos := make(map[*ast.Ident]bool)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun := ast.Unparen(call.Fun)
				switch idx := fun.(type) {
				case *ast.IndexExpr:
					fun = ast.Unparen(idx.X)
				case *ast.IndexListExpr:
					fun = ast.Unparen(idx.X)
				}
				switch fun := fun.(type) {
				case *ast.Ident:
					inCallPos[fun] = true
				case *ast.SelectorExpr:
					inCallPos[fun.Sel] = true
				}
				return true
			})
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || inCallPos[id] {
					return true
				}
				if fn, ok := pkg.TypesInfo.Uses[id].(*types.Func); ok {
					fn = origin(fn)
					if fn.Pkg() != nil && b.prog.byPath[fn.Pkg().Path()] != nil && !b.addrTaken[fn] {
						b.addrTaken[fn] = true
						b.graph.addressTaken = append(b.graph.addressTaken, fn)
					}
				}
				return true
			})
		}
	}
}

// resolvePending adds edges from dynamic call sites to every
// address-taken function whose signature matches.
func (b *graphBuilder) resolvePending() {
	for _, pc := range b.pending {
		for _, fn := range b.graph.addressTaken {
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			if !signaturesMatch(pc.sig, sig) {
				continue
			}
			b.addEdge(Edge{Caller: pc.caller, Callee: fn, Pos: pc.pos, Kind: CallFuncValue})
		}
	}
}

// signaturesMatch compares a call site's signature with a candidate
// function's, ignoring the candidate's receiver (a method value's type
// already has the receiver bound away, but the declared *types.Func
// keeps it).
func signaturesMatch(site, candidate *types.Signature) bool {
	if candidate.Recv() != nil {
		candidate = types.NewSignatureType(nil, nil, nil, candidate.Params(), candidate.Results(), candidate.Variadic())
	}
	return types.Identical(site, candidate)
}

// addEdge appends an edge, deduplicating repeats at the same position.
func (b *graphBuilder) addEdge(e Edge) {
	if e.Callee == nil {
		return
	}
	for _, have := range b.graph.edges[e.Caller] {
		if have.Callee == e.Callee && have.Pos == e.Pos {
			return
		}
	}
	b.graph.edges[e.Caller] = append(b.graph.edges[e.Caller], e)
}
