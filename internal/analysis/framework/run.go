package framework

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// KnownAnnotations lists every //eflora: annotation name the suite
// defines. Anything else is reported as a typo — a misspelled suppression
// must not silently disable itself.
var KnownAnnotations = []string{
	"hotpath",           // marks a function for the hotalloc analyzer
	"durable",           // marks a function for the walorder analyzer
	"nondeterminism-ok", // suppresses a detrand finding (reason required)
	"alloc-ok",          // suppresses a hotalloc finding (reason required)
	"units-ok",          // suppresses a units finding (reason required)
	"blocking-ok",       // suppresses a boundedsend finding (reason required)
	"walorder-ok",       // suppresses a walorder finding (reason required)
	"lockheld-ok",       // suppresses a locksafe finding (reason required)
}

// RunPackage executes each analyzer against one loaded package and
// returns the findings, including annotation-hygiene findings (unknown
// annotation names, suppressions without a reason).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := runPackage(pkg, nil, analyzers)
	if err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runPackage executes the analyzers over one package with optional
// whole-program context, without sorting.
func runPackage(pkg *Package, prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Pkg,
			TypesInfo:   pkg.TypesInfo,
			Prog:        prog,
			diagnostics: &diags,
		}
		pass.buildAnnotations()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	diags = append(diags, annotationHygiene(pkg)...)
	return diags, nil
}

// RunProgram executes the analyzers over every root package of the
// whole-program load, with interprocedural context attached, and returns
// all findings sorted by position. Dependency packages pulled in only to
// complete summaries are not analyzed.
func RunProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range prog.Packages {
		if !prog.IsRoot(pkg) {
			continue
		}
		diags, err := runPackage(pkg, prog, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// annotationHygiene validates the //eflora: annotations themselves.
func annotationHygiene(pkg *Package) []Diagnostic {
	known := make(map[string]bool, len(KnownAnnotations))
	for _, n := range KnownAnnotations {
		known[n] = true
	}
	scratch := &Pass{
		Analyzer: &Analyzer{Name: "annotations"},
		Fset:     pkg.Fset,
		Files:    pkg.Files,
	}
	scratch.buildAnnotations()
	var diags []Diagnostic
	for file, byLine := range scratch.annotations {
		for _, a := range byLine {
			var msg string
			switch {
			case !known[a.Name]:
				msg = fmt.Sprintf("unknown annotation //eflora:%s (known: %s)",
					a.Name, strings.Join(KnownAnnotations, ", "))
			case strings.HasSuffix(a.Name, "-ok") && a.Reason == "":
				msg = fmt.Sprintf("//eflora:%s needs a reason: write //eflora:%s <why this is safe>",
					a.Name, a.Name)
			default:
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "annotations",
				Message:  msg,
				Position: token.Position{Filename: file, Line: a.Line, Column: 1},
			})
		}
	}
	return diags
}

// Vet loads every package matched by patterns and runs the analyzers over
// them, returning all findings sorted by position.
func Vet(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, err := Expand(patterns)
	if err != nil {
		return nil, err
	}
	loader := NewLoader()
	var all []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	HasFix   bool   `json:"has_fix,omitempty"`
}

// jsonReport is the -json top-level document.
type jsonReport struct {
	Findings []jsonDiagnostic `json:"findings"`
	Count    int              `json:"count"`
}

// WriteJSON renders findings as a stable JSON document.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	rep := jsonReport{Findings: make([]jsonDiagnostic, 0, len(diags)), Count: len(diags)}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Message:  d.Message,
			HasFix:   len(d.SuggestedFixes) > 0,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteText renders findings in the file:line:col: analyzer: message form
// editors understand.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fix := ""
		if len(d.SuggestedFixes) > 0 {
			fix = " (fix available)"
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s%s\n",
			d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message, fix)
	}
}

// ApplyFixes applies every suggested fix among diags to the files on
// disk, skipping files with overlapping edits. It returns the number of
// edits applied. Fixes are applied end-to-start per file so earlier
// offsets stay valid.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (int, error) {
	type edit struct {
		start, end int
		text       string
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := fset.Position(te.End)
				if start.Filename == "" || start.Filename != end.Filename {
					continue
				}
				perFile[start.Filename] = append(perFile[start.Filename],
					edit{start: start.Offset, end: end.Offset, text: te.NewText})
			}
		}
	}
	applied := 0
	for file, edits := range perFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		overlap := false
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				overlap = true
			}
		}
		if overlap {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		for _, e := range edits {
			if e.start < 0 || e.end > len(data) || e.start > e.end {
				continue
			}
			data = append(data[:e.start], append([]byte(e.text), data[e.end:]...)...)
			applied++
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
