package framework

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Program is a whole-repo analysis unit: every matched package plus the
// module-local packages they transitively import, type-checked in
// dependency order against one shared type universe, with a conservative
// static call graph and transitive per-function effect summaries.
//
// Roots are the packages matched by the command-line patterns; analyzers
// report only in roots, but summaries are computed over the full closure
// so taint crosses package boundaries regardless of what was matched.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // dependency order: every import precedes its importer
	byPath   map[string]*Package
	roots    map[string]bool

	CallGraph *CallGraph
	Summaries map[*types.Func]*Summary
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package {
	return p.byPath[path]
}

// IsRoot reports whether the package was matched by the load patterns
// (as opposed to being pulled in only as a dependency).
func (p *Program) IsRoot(pkg *Package) bool { return p.roots[pkg.ImportPath] }

// SummaryOf returns fn's effect summary, or nil for functions outside
// the program (stdlib, bodiless declarations).
func (p *Program) SummaryOf(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return p.Summaries[origin(fn)]
}

// LoadProgram loads the packages matched by patterns plus their
// module-local transitive imports, in dependency order, then builds the
// call graph and effect summaries. All patterns must resolve inside one
// module.
func LoadProgram(patterns []string) (*Program, error) {
	rootDirs, err := Expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(rootDirs) == 0 {
		return nil, fmt.Errorf("patterns %v matched no packages", patterns)
	}
	modRoot, modPath, err := findModule(rootDirs[0])
	if err != nil {
		return nil, err
	}

	// Discover the closure of module-local packages, mapping import paths
	// to directories through the module root.
	dirFor := func(importPath string) (string, bool) {
		if importPath == modPath {
			return modRoot, true
		}
		rel, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return "", false
		}
		return filepath.Join(modRoot, filepath.FromSlash(rel)), true
	}

	type node struct {
		dir, path string
		imports   []string // module-local imports only
	}
	nodes := make(map[string]*node) // by import path
	var discover func(dir string) (string, error)
	discover = func(dir string) (string, error) {
		importPath, err := importPathFor(dir)
		if err != nil {
			return "", err
		}
		if _, ok := nodes[importPath]; ok {
			return importPath, nil
		}
		n := &node{dir: dir, path: importPath}
		nodes[importPath] = n
		imports, err := dirImports(dir)
		if err != nil {
			return "", err
		}
		for _, imp := range imports {
			depDir, ok := dirFor(imp)
			if !ok {
				continue // stdlib or foreign: the source importer's problem
			}
			if _, err := discover(depDir); err != nil {
				return "", fmt.Errorf("dependency %s of %s: %w", imp, importPath, err)
			}
			n.imports = append(n.imports, imp)
		}
		return importPath, nil
	}
	roots := make(map[string]bool)
	for _, dir := range rootDirs {
		path, err := discover(dir)
		if err != nil {
			return nil, err
		}
		roots[path] = true
	}

	// Topological sort: dependencies first. Go forbids import cycles, so
	// a cycle here is a load error worth surfacing.
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range nodes[path].imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var paths []string
	for path := range nodes {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	loader := NewLoader()
	prog := &Program{
		Fset:   loader.Fset,
		byPath: make(map[string]*Package, len(order)),
		roots:  roots,
	}
	for _, path := range order {
		pkg, err := loader.Load(nodes[path].dir)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.ImportPath] = pkg
	}
	prog.CallGraph = buildCallGraph(prog)
	prog.Summaries = computeSummaries(prog)
	return prog, nil
}

// dirImports returns the union of import paths of the directory's
// non-test Go files, by a fast imports-only parse.
func dirImports(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out, nil
}

// findModule locates the go.mod governing dir, returning the module root
// directory (relative if dir was) and the module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			modPath = modulePath(data)
			if modPath == "" {
				return "", "", fmt.Errorf("no module line in %s/go.mod", d)
			}
			// Prefer a path relative to the working directory so
			// diagnostic positions (and baseline keys) stay portable.
			if cwd, err := os.Getwd(); err == nil {
				if rel, err := filepath.Rel(cwd, d); err == nil && !strings.HasPrefix(rel, "..") {
					return rel, modPath, nil
				}
			}
			return d, modPath, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// origin normalizes an instantiated generic function or method to its
// declared form, so summaries and graph nodes unify across instantiations.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// FuncPkgBase returns the last import-path element of fn's package — the
// same package-scoping key the analyzers use (so fixture modules scope
// exactly like the real tree).
func FuncPkgBase(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// FuncDisplayName renders fn as pkgbase.Name or pkgbase.(*T).Name for
// methods — the form diagnostics print in call chains.
func FuncDisplayName(fn *types.Func) string {
	if fn == nil {
		return "<nil>"
	}
	base := FuncPkgBase(fn)
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			ptr = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			if ptr != "" {
				return fmt.Sprintf("%s.(%s%s).%s", base, ptr, named.Obj().Name(), fn.Name())
			}
			return fmt.Sprintf("%s.%s.%s", base, named.Obj().Name(), fn.Name())
		}
	}
	if base == "" {
		return fn.Name()
	}
	return base + "." + fn.Name()
}
