package framework

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Baseline is the checked-in ratchet of accepted findings. CI compares
// the current run against it: any finding not in the baseline fails the
// build, so the finding count can only ratchet down. Entries are keyed
// on analyzer+file+message — deliberately NOT on line numbers, which
// shift under unrelated edits; analyzer messages embed call chains and
// sink descriptions instead, which are stable identities.
type Baseline struct {
	// Findings maps baselineKey -> accepted count (the same message can
	// legitimately occur more than once in a file).
	Findings map[string]int `json:"findings"`
}

// baselineKey renders the identity of one finding.
func baselineKey(d Diagnostic) string {
	return fmt.Sprintf("%s\x00%s\x00%s", d.Analyzer, d.Position.Filename, d.Message)
}

// NewBaseline builds a baseline from a set of findings.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{Findings: make(map[string]int)}
	for _, d := range diags {
		b.Findings[baselineKey(d)]++
	}
	return b
}

// Diff splits diags into findings covered by the baseline and NEW
// findings that exceed it. A key whose count grew reports only the
// excess occurrences (the last ones in sorted order) as new.
func (b *Baseline) Diff(diags []Diagnostic) (covered, fresh []Diagnostic) {
	budget := make(map[string]int, len(b.Findings))
	for k, n := range b.Findings {
		budget[k] = n
	}
	for _, d := range diags {
		k := baselineKey(d)
		if budget[k] > 0 {
			budget[k]--
			covered = append(covered, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return covered, fresh
}

// Stale returns the baseline keys no longer matched by any current
// finding — fixed findings whose entries should be ratcheted out.
func (b *Baseline) Stale(diags []Diagnostic) []string {
	remaining := make(map[string]int, len(b.Findings))
	for k, n := range b.Findings {
		remaining[k] = n
	}
	for _, d := range diags {
		k := baselineKey(d)
		if remaining[k] > 0 {
			remaining[k]--
		}
	}
	var stale []string
	for k, n := range remaining {
		if n > 0 {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return stale
}

// baselineEntry is the on-disk form: human-readable and diff-friendly.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count,omitempty"` // omitted when 1
}

type baselineFile struct {
	Comment  string          `json:"_comment"`
	Findings []baselineEntry `json:"findings"`
}

const baselineComment = "eflora-vet ratchet baseline: accepted findings keyed on analyzer+file+message. " +
	"CI fails on any finding not listed here. Regenerate with: go run ./cmd/eflora-vet -write-baseline <path> ./..."

// WriteBaseline writes the baseline in sorted, stable form.
func WriteBaseline(w io.Writer, b *Baseline) error {
	keys := make([]string, 0, len(b.Findings))
	for k := range b.Findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := baselineFile{Comment: baselineComment, Findings: []baselineEntry{}}
	for _, k := range keys {
		var e baselineEntry
		parts := splitKey(k)
		e.Analyzer, e.File, e.Message = parts[0], parts[1], parts[2]
		if n := b.Findings[k]; n > 1 {
			e.Count = n
		}
		out.Findings = append(out.Findings, e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, so a repo without one simply requires a clean tree.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{Findings: map[string]int{}}, nil
		}
		return nil, err
	}
	var in baselineFile
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	b := &Baseline{Findings: make(map[string]int, len(in.Findings))}
	for _, e := range in.Findings {
		n := e.Count
		if n == 0 {
			n = 1
		}
		b.Findings[fmt.Sprintf("%s\x00%s\x00%s", e.Analyzer, e.File, e.Message)] += n
	}
	return b, nil
}

// splitKey undoes baselineKey. Keys always contain exactly two NUL
// separators because analyzer names and file paths never do.
func splitKey(k string) [3]string {
	var parts [3]string
	idx := 0
	start := 0
	for i := 0; i < len(k) && idx < 2; i++ {
		if k[i] == 0 {
			parts[idx] = k[start:i]
			idx++
			start = i + 1
		}
	}
	parts[2] = k[start:]
	return parts
}

// DescribeKey renders a baseline key for human-readable stale-entry
// reports.
func DescribeKey(k string) string {
	p := splitKey(k)
	return fmt.Sprintf("%s: %s: %s", p[1], p[0], p[2])
}
