package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// Loader parses and type-checks packages from source. It uses the stdlib
// "source" importer, which resolves stdlib and module-local dependencies
// from their source code — no compiled export data and no network — so
// eflora-vet works in a hermetic build environment.
//
// Every package the Loader type-checks is registered by import path, and
// later loads resolve imports from that registry before falling back to
// the source importer. Loading packages in dependency order (as
// LoadProgram does) therefore yields one shared type universe: the
// *types.Func a caller's TypesInfo resolves a cross-package call to is
// the same object the callee's own load defined, which is what lets the
// call graph and summaries span packages.
type Loader struct {
	Fset  *token.FileSet
	imp   types.Importer
	local map[string]*types.Package
}

// NewLoader returns a Loader with a shared FileSet and importer cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		imp:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package),
	}
}

// loaderImporter resolves imports from the Loader's registry of already
// type-checked packages first, then from the source importer.
type loaderImporter struct{ l *Loader }

func (li loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := li.l.local[path]; ok {
		return pkg, nil
	}
	if from, ok := li.l.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return li.l.imp.Import(path)
}

// Expand resolves command-line package patterns into package directories.
// Supported forms: a directory path ("./internal/sim"), and a recursive
// pattern ("./...", "./internal/..."). Directories named testdata or
// vendor, and hidden directories, are skipped, as are directories with no
// non-test Go files.
func Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the package in dir. Test files are
// excluded: the determinism and allocation contracts apply to shipped
// code, and tests legitimately use maps, clocks and fmt freely.
func (l *Loader) Load(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	importPath, err := importPathFor(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: loaderImporter{l}}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	l.local[importPath] = pkg
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.Fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}

// importPathFor derives dir's import path from the enclosing go.mod. A
// directory outside any module (e.g. an analyzer's testdata tree) gets
// its base name, which is what the analyzers' package-scoping matches on.
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			modPath := modulePath(data)
			if modPath == "" {
				return "", fmt.Errorf("no module line in %s/go.mod", d)
			}
			rel, err := filepath.Rel(d, abs)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return modPath, nil
			}
			return modPath + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return filepath.Base(abs), nil
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
