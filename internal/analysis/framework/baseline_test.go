package framework_test

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"eflora/internal/analysis/framework"
)

func diag(analyzer, file, msg string, line int) framework.Diagnostic {
	return framework.Diagnostic{
		Analyzer: analyzer,
		Message:  msg,
		Position: token.Position{Filename: file, Line: line, Column: 1},
	}
}

// TestBaselineDiff checks the ratchet semantics: covered findings are
// absorbed, new findings surface, duplicate messages are counted, and
// line-number changes do not invalidate entries.
func TestBaselineDiff(t *testing.T) {
	old := []framework.Diagnostic{
		diag("detrand", "a.go", "msg one", 10),
		diag("detrand", "a.go", "msg dup", 20),
		diag("detrand", "a.go", "msg dup", 30),
	}
	b := framework.NewBaseline(old)

	// Same findings on different lines: fully covered.
	moved := []framework.Diagnostic{
		diag("detrand", "a.go", "msg one", 99),
		diag("detrand", "a.go", "msg dup", 98),
		diag("detrand", "a.go", "msg dup", 97),
	}
	covered, fresh := b.Diff(moved)
	if len(covered) != 3 || len(fresh) != 0 {
		t.Errorf("moved lines: covered=%d fresh=%d, want 3/0", len(covered), len(fresh))
	}

	// A third duplicate exceeds the budget of two.
	extra := append(moved, diag("detrand", "a.go", "msg dup", 96))
	if _, fresh := b.Diff(extra); len(fresh) != 1 {
		t.Errorf("extra dup: fresh=%d, want 1", len(fresh))
	}

	// A different analyzer for the same message is new.
	if _, fresh := b.Diff([]framework.Diagnostic{diag("hotalloc", "a.go", "msg one", 10)}); len(fresh) != 1 {
		t.Errorf("analyzer change: fresh=%d, want 1", len(fresh))
	}

	// Fixing a finding makes its entry stale.
	stale := b.Stale(moved[:1])
	if len(stale) != 1 {
		t.Fatalf("stale=%d, want 1 (both dup occurrences fixed → one key)", len(stale))
	}
	if got := framework.DescribeKey(stale[0]); got != "a.go: detrand: msg dup" {
		t.Errorf("DescribeKey = %q", got)
	}
}

// TestBaselineRoundTrip writes a baseline to disk and reads it back.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []framework.Diagnostic{
		diag("walorder", "nsd.go", "effect before append", 5),
		diag("walorder", "nsd.go", "effect before append", 7),
		diag("locksafe", "srv.go", "send under mu", 3),
	}
	var buf bytes.Buffer
	if err := framework.WriteBaseline(&buf, framework.NewBaseline(diags)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := framework.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	covered, fresh := b.Diff(diags)
	if len(covered) != 3 || len(fresh) != 0 {
		t.Errorf("round trip: covered=%d fresh=%d, want 3/0", len(covered), len(fresh))
	}
}

// TestBaselineMissingFile treats an absent baseline as empty.
func TestBaselineMissingFile(t *testing.T) {
	b, err := framework.ReadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, fresh := b.Diff([]framework.Diagnostic{diag("units", "x.go", "m", 1)}); len(fresh) != 1 {
		t.Errorf("missing baseline: fresh=%d, want 1", len(fresh))
	}
}
