package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Effect is a bitset of observable behaviors a function may have, either
// directly in its body or transitively through any function it can
// reach. Effects form a join lattice (bitwise or), so the transitive
// closure is a monotone fixpoint over the call graph.
type Effect uint32

const (
	// EffWallClock: reads time.Now/Since/Until.
	EffWallClock Effect = 1 << iota
	// EffReadsEnv: reads the process environment.
	EffReadsEnv
	// EffGlobalRand: uses the globally seeded math/rand.
	EffGlobalRand
	// EffIteratesMap: ranges over a map (randomized order).
	EffIteratesMap
	// EffAllocates: may allocate per call (make/new/literals/append into
	// a fresh slice/fmt/closures/non-constant string concatenation).
	EffAllocates
	// EffChannelSend: performs any channel send, including shedding
	// select-with-default sends (the send is externally visible when it
	// succeeds).
	EffChannelSend
	// EffSendsUnbounded: performs a channel send that can block.
	EffSendsUnbounded
	// EffAppendsWAL: appends to or syncs the durable statestore WAL.
	EffAppendsWAL
	// EffQueuesDownlink: enqueues a frame on the downlink scheduler.
	EffQueuesDownlink
	// EffAcquiresLock: locks a sync.Mutex or RWMutex.
	EffAcquiresLock
	// EffFsync: fsyncs an *os.File.
	EffFsync
	// EffSocketIO: reads or writes a net socket.
	EffSocketIO

	numEffects = 12
)

// effectNames maps each bit (by shift index) to its stable display name,
// which the summary golden test and -sarif output pin.
var effectNames = [numEffects]string{
	"wallclock", "readsenv", "globalrand", "iteratesmap", "allocates",
	"chansend", "sendsunbounded", "appendswal", "queuesdownlink",
	"lock", "fsync", "socketio",
}

// String renders the effect set as sorted pipe-joined names, "-" if empty.
func (e Effect) String() string {
	if e == 0 {
		return "-"
	}
	var parts []string
	for i := 0; i < numEffects; i++ {
		if e&(1<<i) != 0 {
			parts = append(parts, effectNames[i])
		}
	}
	return strings.Join(parts, "|")
}

// DetEffects are the effects that break bit-identical determinism.
const DetEffects = EffWallClock | EffReadsEnv | EffGlobalRand | EffIteratesMap

// VisibleEffects are the externally visible side effects walorder orders
// against WAL durability: once one of these happens, the outside world
// may have observed state the WAL does not yet hold.
const VisibleEffects = EffChannelSend | EffQueuesDownlink | EffSocketIO

// BlockingEffects are the operations locksafe forbids under a held
// mutex: each can stall for an unbounded time (channel backpressure,
// disk, network) while every other goroutine queues on the lock.
const BlockingEffects = EffChannelSend | EffFsync | EffSocketIO

// Summary is one function's effect summary: the effects of its own body
// (Local) and of everything it can reach (Total), with enough witness
// structure to reconstruct a call chain from the function to each
// effect's origin.
type Summary struct {
	Fn    *types.Func
	Local Effect
	Total Effect

	localPos  map[Effect]token.Pos
	localDesc map[Effect]string
	via       map[Effect]Edge
	marks     map[string]bool
}

// Annotated reports whether the summarized function's declaration
// carries the given //eflora:<name> marker annotation.
func (s *Summary) Annotated(name string) bool { return s.marks[name] }

// LocalOrigin returns where (and as what construct) the function's own
// body first produces eff, if it does.
func (s *Summary) LocalOrigin(eff Effect) (token.Pos, string, bool) {
	pos, ok := s.localPos[eff]
	if !ok {
		return token.NoPos, "", false
	}
	return pos, s.localDesc[eff], true
}

func (s *Summary) addLocal(eff Effect, pos token.Pos, desc string) {
	if s.Local&eff == eff {
		return
	}
	for i := 0; i < numEffects; i++ {
		bit := Effect(1) << i
		if eff&bit != 0 && s.Local&bit == 0 {
			s.localPos[bit] = pos
			s.localDesc[bit] = desc
		}
	}
	s.Local |= eff
	s.Total |= eff
}

// ChainString renders the witness call chain from fn down to the origin
// of the (single-bit) effect, e.g. "sim.step → mathx.Jitter → time.Now".
func (p *Program) ChainString(fn *types.Func, eff Effect) string {
	parts := []string{FuncDisplayName(origin(fn))}
	cur := origin(fn)
	seen := map[*types.Func]bool{cur: true}
	for range [32]struct{}{} {
		s := p.SummaryOf(cur)
		if s == nil {
			break
		}
		if _, desc, ok := s.LocalOrigin(eff); ok {
			parts = append(parts, desc)
			break
		}
		e, ok := s.via[eff]
		if !ok {
			break
		}
		cur = origin(e.Callee)
		if seen[cur] {
			break
		}
		seen[cur] = true
		parts = append(parts, FuncDisplayName(cur))
	}
	return strings.Join(parts, " → ")
}

// CallEffects returns every effect the call expression may have: the
// intrinsic effect of a recognized stdlib/repo target plus the Total
// summaries of all possible program-local callees.
func (p *Program) CallEffects(pkg *Package, caller *types.Func, call *ast.CallExpr) Effect {
	eff, _ := IntrinsicCallEffects(pkg.TypesInfo, call)
	for _, e := range p.CallGraph.CalleesAt(caller, call.Pos()) {
		if s := p.SummaryOf(e.Callee); s != nil {
			eff |= s.Total
		}
	}
	return eff
}

// ExplainCall renders how the call produces eff: the intrinsic construct
// itself, or the chain through the first responsible callee.
func (p *Program) ExplainCall(pkg *Package, caller *types.Func, call *ast.CallExpr, eff Effect) string {
	if ieff, desc := IntrinsicCallEffects(pkg.TypesInfo, call); ieff&eff != 0 {
		return desc
	}
	for _, e := range p.CallGraph.CalleesAt(caller, call.Pos()) {
		if s := p.SummaryOf(e.Callee); s != nil && s.Total&eff != 0 {
			return p.ChainString(e.Callee, firstBit(s.Total&eff))
		}
	}
	return ""
}

func firstBit(e Effect) Effect {
	return e & -e
}

// computeSummaries builds per-function local effect summaries and
// propagates them to a fixpoint over the call graph.
func computeSummaries(prog *Program) map[*types.Func]*Summary {
	sums := make(map[*types.Func]*Summary)
	var ordered []*types.Func
	for _, pkg := range prog.Packages {
		ann := buildAnnotationIndex(prog.Fset, pkg.Files)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn = origin(fn)
				s := &Summary{
					Fn:        fn,
					localPos:  make(map[Effect]token.Pos),
					localDesc: make(map[Effect]string),
					via:       make(map[Effect]Edge),
					marks:     markAnnotations(prog.Fset, ann, fd),
				}
				scanLocalEffects(prog.Fset, pkg, ann, fd, s)
				sums[fn] = s
				ordered = append(ordered, fn)
			}
		}
	}
	// Monotone fixpoint: each function absorbs its callees' totals. The
	// witness edge for a bit is fixed the first time the bit arrives, so
	// witness chains always point toward a function that had the effect
	// strictly earlier — they terminate at a local origin even through
	// recursion cycles.
	for changed := true; changed; {
		changed = false
		for _, fn := range ordered {
			s := sums[fn]
			for _, e := range prog.CallGraph.EdgesFrom(fn) {
				cs := sums[origin(e.Callee)]
				if cs == nil {
					continue
				}
				add := cs.Total &^ s.Total
				if add == 0 {
					continue
				}
				s.Total |= add
				for i := 0; i < numEffects; i++ {
					if bit := Effect(1) << i; add&bit != 0 {
						s.via[bit] = e
					}
				}
				changed = true
			}
		}
	}
	return sums
}

// markAnnotations collects the declaration's marker annotations (doc
// comment or the line above), e.g. hotpath, durable.
func markAnnotations(fset *token.FileSet, ann map[string]map[int]Annotation, fd *ast.FuncDecl) map[string]bool {
	marks := make(map[string]bool)
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if name, _, ok := parseAnnotation(c); ok {
				marks[name] = true
			}
		}
	}
	pos := fset.Position(fd.Pos())
	if byLine := ann[pos.Filename]; byLine != nil {
		if a, ok := byLine[pos.Line-1]; ok {
			marks[a.Name] = true
		}
	}
	return marks
}

// effectScanner walks one function body collecting local effects.
type effectScanner struct {
	fset *token.FileSet
	pkg  *Package
	ann  map[string]map[int]Annotation
	sum  *Summary
	// returns spans all return statements: alloc effects there are the
	// cold failure path, mirroring hotalloc's exemption.
	returns []posRange
	// sanctioned holds append calls of the x = append(x, ...) arena form.
	sanctioned map[*ast.CallExpr]bool
	// shedding holds sends that are the comm clause of a
	// select-with-default (non-blocking by construction).
	shedding map[*ast.SendStmt]bool
}

type posRange struct{ lo, hi token.Pos }

func (es *effectScanner) inReturn(pos token.Pos) bool {
	for _, r := range es.returns {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// scanLocalEffects fills s.Local with the effects of fd's own body,
// honoring in-place suppression annotations: a site the author already
// vouched for with //eflora:nondeterminism-ok or //eflora:alloc-ok does
// not taint callers.
func scanLocalEffects(fset *token.FileSet, pkg *Package, ann map[string]map[int]Annotation, fd *ast.FuncDecl, s *Summary) {
	es := &effectScanner{
		fset:       fset,
		pkg:        pkg,
		ann:        ann,
		sum:        s,
		sanctioned: make(map[*ast.CallExpr]bool),
		shedding:   make(map[*ast.SendStmt]bool),
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			es.returns = append(es.returns, posRange{n.Pos(), n.End()})
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call := appendCallExpr(n.Rhs[0]); call != nil &&
					astExprString(n.Lhs[0]) == astExprString(call.Args[0]) {
					es.sanctioned[call] = true
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							es.shedding[send] = true
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, es.visit)
}

func (es *effectScanner) detSuppressed(pos token.Pos) bool {
	return suppressedAt(es.ann, es.fset, pos, "nondeterminism-ok")
}

func (es *effectScanner) allocSuppressed(pos token.Pos) bool {
	return suppressedAt(es.ann, es.fset, pos, "alloc-ok")
}

func (es *effectScanner) alloc(pos token.Pos, desc string) {
	if !es.inReturn(pos) && !es.allocSuppressed(pos) {
		es.sum.addLocal(EffAllocates, pos, desc)
	}
}

func (es *effectScanner) visit(n ast.Node) bool {
	info := es.pkg.TypesInfo
	switch n := n.(type) {
	case *ast.SelectorExpr:
		if pkgPath, ok := selectorPackage(info, n); ok {
			pos := n.Pos()
			switch pkgPath {
			case "time":
				switch n.Sel.Name {
				case "Now", "Since", "Until":
					if !es.detSuppressed(pos) {
						es.sum.addLocal(EffWallClock, pos, "time."+n.Sel.Name)
					}
				}
			case "os":
				switch n.Sel.Name {
				case "Getenv", "LookupEnv", "Environ":
					if !es.detSuppressed(pos) {
						es.sum.addLocal(EffReadsEnv, pos, "os."+n.Sel.Name)
					}
				}
			case "math/rand", "math/rand/v2":
				if !es.detSuppressed(pos) {
					es.sum.addLocal(EffGlobalRand, pos, pkgPath+"."+n.Sel.Name)
				}
			}
		}
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !es.detSuppressed(n.Pos()) {
				es.sum.addLocal(EffIteratesMap, n.Pos(), "map iteration")
			}
		}
	case *ast.SendStmt:
		if es.shedding[n] {
			es.sum.addLocal(EffChannelSend, n.Pos(), "chan send (shedding)")
		} else {
			es.sum.addLocal(EffChannelSend|EffSendsUnbounded, n.Pos(), "blocking chan send")
		}
	case *ast.FuncLit:
		es.alloc(n.Pos(), "closure creation")
	case *ast.CompositeLit:
		if tv, ok := info.Types[n]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				es.alloc(n.Pos(), "slice literal")
			case *types.Map:
				es.alloc(n.Pos(), "map literal")
			}
		}
	case *ast.UnaryExpr:
		if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
			es.alloc(cl.Pos(), "&composite literal")
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := info.Types[n]; ok && tv.Type != nil && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					es.alloc(n.OpPos, "string concatenation")
				}
			}
		}
	case *ast.CallExpr:
		es.visitCall(n)
	}
	return true
}

func (es *effectScanner) visitCall(call *ast.CallExpr) {
	info := es.pkg.TypesInfo
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "make":
				es.alloc(call.Pos(), "make")
			case "new":
				es.alloc(call.Pos(), "new")
			case "append":
				if !es.sanctioned[call] {
					es.alloc(call.Pos(), "append into a fresh slice")
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if pkgPath, ok := selectorPackage(info, fun); ok {
			switch {
			case pkgPath == "fmt":
				es.alloc(call.Pos(), "fmt."+fun.Sel.Name)
			case pkgPath == "errors" && fun.Sel.Name == "New":
				es.alloc(call.Pos(), "errors.New")
			}
		}
	}
	if eff, desc := IntrinsicCallEffects(info, call); eff != 0 {
		es.sum.addLocal(eff, call.Pos(), desc)
	}
}

// IntrinsicCallEffects recognizes calls whose effect is known by name
// rather than by summary: stdlib sync/net/file primitives and the
// repo's own durability and downlink choke points (matched by package
// base and type name, so fixture modules scope identically).
func IntrinsicCallEffects(info *types.Info, call *ast.CallExpr) (Effect, string) {
	fn := staticTarget(info, call)
	if fn == nil || fn.Pkg() == nil {
		return 0, ""
	}
	name := fn.Name()
	path := fn.Pkg().Path()
	recvName := receiverName(fn)
	switch path {
	case "sync":
		if name == "Lock" || name == "RLock" {
			return EffAcquiresLock, "sync." + recvName + "." + name
		}
		return 0, ""
	case "os":
		if name == "Sync" && recvName == "File" {
			return EffFsync, "(*os.File).Sync"
		}
		return 0, ""
	case "net":
		if strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write") ||
			name == "Accept" || strings.HasPrefix(name, "Dial") {
			if recvName != "" {
				return EffSocketIO, "net." + recvName + "." + name
			}
			return EffSocketIO, "net." + name
		}
		return 0, ""
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	switch {
	case base == "statestore" && recvName == "Store" &&
		(name == "Append" || name == "AppendSync" || name == "Sync"):
		return EffAppendsWAL, "(*statestore.Store)." + name
	case base == "downlink" && recvName == "Scheduler" &&
		(name == "Enqueue" || name == "ObserveUplink"):
		return EffQueuesDownlink, "(*downlink.Scheduler)." + name
	}
	return 0, ""
}

// staticTarget resolves a call to the declared function or method it
// invokes, when that is statically knowable.
func staticTarget(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return origin(fn)
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

// receiverName returns the name of fn's receiver named type, "" for
// plain functions and unnamed receivers.
func receiverName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// selectorPackage resolves sel's X to an imported package path when the
// selector is a package-qualified reference (e.g. time.Now).
func selectorPackage(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkgName.Imported().Path(), true
}

// appendCallExpr returns e as an append call with at least one argument.
func appendCallExpr(e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	return call
}

// astExprString renders an expression for structural comparison.
func astExprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

// writeExpr is a tiny printer sufficient for lvalue comparison (idents,
// selectors, indexes, stars, parens).
func writeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.Index)
		b.WriteByte(']')
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, e.X)
	case *ast.ParenExpr:
		b.WriteByte('(')
		writeExpr(b, e.X)
		b.WriteByte(')')
	case *ast.BasicLit:
		b.WriteString(e.Value)
	default:
		b.WriteString("?")
	}
}

// SummaryTable renders every program function's summary as stable
// "pkgpath.Func local=… total=…" lines, sorted — the golden-test
// representation.
func (p *Program) SummaryTable() []string {
	var fns []*types.Func
	for fn := range p.Summaries {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		pi, pj := fns[i].Pkg().Path(), fns[j].Pkg().Path()
		if pi != pj {
			return pi < pj
		}
		return FuncDisplayName(fns[i]) < FuncDisplayName(fns[j])
	})
	out := make([]string, 0, len(fns))
	for _, fn := range fns {
		s := p.Summaries[fn]
		out = append(out, FuncDisplayName(fn)+" local="+s.Local.String()+" total="+s.Total.String())
	}
	return out
}
