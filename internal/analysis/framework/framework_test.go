package framework_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"eflora/internal/analysis/framework"
)

// TestAnnotationHygiene checks that RunPackage reports misspelled
// annotations and reasonless suppressions even with no analyzers loaded.
func TestAnnotationHygiene(t *testing.T) {
	pkg, err := framework.NewLoader().Load(filepath.Join("testdata", "src", "hygiene"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.RunPackage(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d hygiene findings, want 2: %+v", len(diags), diags)
	}
	var sawUnknown, sawReasonless bool
	for _, d := range diags {
		if d.Analyzer != "annotations" {
			t.Errorf("hygiene finding attributed to %q, want \"annotations\"", d.Analyzer)
		}
		if strings.Contains(d.Message, "unknown annotation //eflora:hotpth") {
			sawUnknown = true
		}
		if strings.Contains(d.Message, "//eflora:alloc-ok needs a reason") {
			sawReasonless = true
		}
	}
	if !sawUnknown {
		t.Error("no finding for the misspelled //eflora:hotpth")
	}
	if !sawReasonless {
		t.Error("no finding for the reasonless //eflora:alloc-ok")
	}
}

// TestExpandSkipsTestdata checks the package-pattern expansion never
// descends into testdata trees (mirroring the go tool's convention).
func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := framework.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand(./...) matched no packages")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand descended into testdata: %s", d)
		}
	}
}

// TestWriteJSONShape pins the -json wire format consumed by CI.
func TestWriteJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := framework.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Findings []json.RawMessage `json:"findings"`
		Count    int               `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("parse: %v; output: %s", err, buf.String())
	}
	if rep.Findings == nil {
		t.Error("findings must serialize as an empty array, not null")
	}
	if rep.Count != 0 {
		t.Errorf("count = %d, want 0", rep.Count)
	}
}
