package framework_test

import (
	"path/filepath"
	"strings"
	"testing"

	"eflora/internal/analysis/framework"
)

// loadGraph loads the call-graph fixture module once per test.
func loadGraph(t *testing.T) *framework.Program {
	t.Helper()
	prog, err := framework.LoadProgram([]string{filepath.Join("testdata", "prog", "graph") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// calleeNames returns the display names of fn's callees, with the edge
// kind attached, sorted by the caller's edge order.
func calleeNames(prog *framework.Program, name string) []string {
	for _, fn := range prog.CallGraph.Funcs() {
		if framework.FuncDisplayName(fn) != name {
			continue
		}
		var out []string
		for _, e := range prog.CallGraph.EdgesFrom(fn) {
			out = append(out, framework.FuncDisplayName(e.Callee)+":"+e.Kind.String())
		}
		return out
	}
	return nil
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// TestCallGraphInterfaceDispatch checks that a call through an interface
// produces edges to every program-local implementation.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadGraph(t)
	got := calleeNames(prog, "app.RunOp")
	for _, want := range []string{"app.Add.Apply:interface", "app.Timed.Apply:interface"} {
		if !contains(got, want) {
			t.Errorf("RunOp edges = %v; missing %s", got, want)
		}
	}
}

// TestCallGraphFuncValues checks that a call through a function value
// produces edges to every address-taken function of matching signature.
func TestCallGraphFuncValues(t *testing.T) {
	prog := loadGraph(t)
	got := calleeNames(prog, "app.CallPicked")
	for _, want := range []string{"app.double:funcvalue", "app.noisy:funcvalue"} {
		if !contains(got, want) {
			t.Errorf("CallPicked edges = %v; missing %s", got, want)
		}
	}
	if !contains(got, "app.Pick:direct") {
		t.Errorf("CallPicked edges = %v; missing direct edge to app.Pick", got)
	}
}

// TestCallGraphRecursionCycle checks that summary propagation reaches a
// fixpoint through a recursion cycle and that the witness chain still
// terminates at the local origin.
func TestCallGraphRecursionCycle(t *testing.T) {
	prog := loadGraph(t)
	for _, fn := range prog.CallGraph.Funcs() {
		name := framework.FuncDisplayName(fn)
		if name != "app.Even" && name != "app.Odd" {
			continue
		}
		s := prog.SummaryOf(fn)
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		if s.Total&framework.EffWallClock == 0 {
			t.Errorf("%s total = %v; want wallclock through the cycle", name, s.Total)
		}
		chain := prog.ChainString(fn, framework.EffWallClock)
		if !strings.Contains(chain, "time.Now") {
			t.Errorf("%s chain = %q; want it to terminate at time.Now", name, chain)
		}
		if strings.Count(chain, name) > 1 {
			t.Errorf("%s chain = %q; revisits the cycle head", name, chain)
		}
	}
}

// TestSummaryPropagationGolden pins the full summary table of the
// fixture module: local effects where they originate, totals where they
// propagate (across packages, through interface dispatch, function
// values and recursion).
func TestSummaryPropagationGolden(t *testing.T) {
	prog := loadGraph(t)
	want := []string{
		"app.Add.Apply local=- total=-",
		"app.CallPicked local=- total=wallclock",
		"app.Collect local=- total=allocates",
		"app.Even local=- total=wallclock",
		"app.Odd local=- total=wallclock",
		"app.Pick local=- total=-",
		"app.RunOp local=- total=wallclock",
		"app.Timed.Apply local=- total=wallclock",
		"app.double local=- total=-",
		"app.noisy local=- total=wallclock",
		"app.tick local=- total=wallclock",
		"base.Grow local=allocates total=allocates",
		"base.Stamp local=wallclock total=wallclock",
	}
	got := prog.SummaryTable()
	if len(got) != len(want) {
		t.Fatalf("summary table has %d entries, want %d:\n%s",
			len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("summary[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
