// Package free is detrand testdata: its directory name is outside the
// determinism-critical set, so the same constructs produce no findings.
package free

import (
	"math/rand"
	"os"
	"time"
)

func Clock() time.Time {
	return time.Now()
}

func Roll() int {
	return rand.Intn(6)
}

func Env() string {
	return os.Getenv("EFLORA_SEED")
}

func SumValues(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
