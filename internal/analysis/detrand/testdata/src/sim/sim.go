// Package sim is detrand testdata: its directory name puts it in the
// determinism-critical set, so every ambient-state construct is flagged.
package sim

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func Clock() time.Time {
	return time.Now() // want `time\.Now is nondeterministic in a determinism-critical package`
}

func Elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since is nondeterministic in a determinism-critical package`
}

func Roll() int {
	return rand.Intn(6) // want `math/rand\.Intn is nondeterministic in a determinism-critical package`
}

func Env() string {
	return os.Getenv("EFLORA_SEED") // want `os\.Getenv is nondeterministic in a determinism-critical package`
}

func SumValues(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want `map iteration order is randomized`
		s += v
	}
	return s
}

// SumSorted iterates a map the sanctioned way: collect keys, sort, walk.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	//eflora:nondeterminism-ok order-independent: keys are collected then explicitly sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := 0.0
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// Diagnostic timing is a sanctioned wall-clock use when annotated.
func Timed() time.Time {
	//eflora:nondeterminism-ok wall-clock diagnostic only; never feeds results
	return time.Now()
}
