// Package clock is two hops away from the critical package: sim calls
// mid, mid calls here, and only here does the wall clock appear.
package clock

import "time"

// Seconds reads the wall clock — the effect the summary propagation has
// to carry back through mid into sim.
func Seconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// Pure is clean; calling it must not taint anyone.
func Pure(x float64) float64 { return x * 2 }
