module twohop

go 1.22
