// Package mid is the innocent-looking middle hop: no nondeterministic
// construct appears in this file, only a call into clock.
package mid

import "twohop/clock"

// Jitter transitively reaches time.Now through clock.Seconds.
func Jitter() float64 { return clock.Seconds() * 0.5 }

// Scale is clean.
func Scale(x float64) float64 { return clock.Pure(x) }
