// Package sim is determinism-critical (scoped by import-path base, like
// the real eflora/internal/sim). Nothing in this file touches a clock
// directly — the taint arrives through a two-hop cross-package chain,
// which only whole-program summaries can see.
package sim

import "twohop/mid"

// Step consumes a nondeterministic value through two package hops.
func Step(x float64) float64 {
	j := mid.Jitter() // want `call reaches wallclock outside the determinism-critical packages; call chain: sim\.Step → mid\.Jitter → clock\.Seconds → time\.Now`
	return x + j
}

// Clean calls only effect-free helpers; no diagnostic.
func Clean(x float64) float64 {
	return mid.Scale(x)
}

// Vouched suppresses the finding with an annotation at the call site.
func Vouched(x float64) float64 {
	//eflora:nondeterminism-ok startup banner timestamp, not part of any digest
	j := mid.Jitter()
	return x + j
}
