package detrand_test

import (
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "sim", "free")
}
