package detrand_test

import (
	"testing"

	"eflora/internal/analysis/analysistest"
	"eflora/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "sim", "free")
}

// TestDetrandInterprocedural checks the two-hop cross-package chain: the
// critical package reaches time.Now only through mid → clock, and the
// diagnostic prints the full chain.
func TestDetrandInterprocedural(t *testing.T) {
	analysistest.RunProgram(t, "testdata", "twohop", detrand.Analyzer)
}
