// Package detrand implements the determinism analyzer of eflora-vet.
//
// The repository's headline guarantee (PR 1) is that simulation and
// allocation are bit-identical for a given seed at any parallelism. That
// only holds if the determinism-critical packages never consult ambient
// state: wall clocks, the globally seeded math/rand, process environment,
// or Go's randomized map iteration order. detrand rejects those
// constructs in the critical packages and directs authors to the
// deterministic alternatives (internal/rng, explicit timestamps, sorted
// key iteration).
//
// Deliberate exceptions — wall-clock diagnostics, map iterations whose
// result is order-independent — are annotated in place:
//
//	//eflora:nondeterminism-ok <reason>
//
// on the finding's line or the line above. The reason is mandatory; the
// framework reports reasonless suppressions.
//
// Under whole-program analysis (RunProgram), detrand also follows taint
// across package boundaries: a call from a critical package to a helper
// in a non-critical package whose transitive summary reaches a wall
// clock, the environment, global math/rand or map iteration is reported
// at the call site, with the full call chain in the diagnostic. Calls to
// other critical packages are not re-reported — the effect's origin gets
// its own finding there.
package detrand

import (
	"go/ast"
	"go/types"

	"eflora/internal/analysis/framework"
)

// Analyzer is the detrand analysis.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "forbid wall clocks, global math/rand, environment reads and map iteration " +
		"in determinism-critical packages (sim, engine, model, alloc, exp, par, golden, mathx, geo, slab)",
	Run: run,
}

// criticalPackages are the packages (by import-path base) whose outputs
// feed the golden-determinism digests.
var criticalPackages = map[string]bool{
	"sim":        true,
	"engine":     true,
	"model":      true,
	"alloc":      true,
	"exp":        true,
	"par":        true,
	"golden":     true,
	"mathx":      true,
	"statestore": true,
	"geo":        true,
	"slab":       true,
}

const suppression = "nondeterminism-ok"

// bannedCalls maps package path -> function name -> replacement advice.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "thread an explicit timestamp parameter instead of reading the wall clock",
		"Since": "thread explicit timestamps instead of reading the wall clock",
		"Until": "thread explicit timestamps instead of reading the wall clock",
	},
	"os": {
		"Getenv":    "plumb configuration through Config structs, not the process environment",
		"LookupEnv": "plumb configuration through Config structs, not the process environment",
		"Environ":   "plumb configuration through Config structs, not the process environment",
	},
}

// nondeterministicImports are packages whose use is nondeterministic
// regardless of the member called.
var nondeterministicImports = map[string]string{
	"math/rand":    "use eflora/internal/rng with an explicit seed",
	"math/rand/v2": "use eflora/internal/rng with an explicit seed",
}

func run(pass *framework.Pass) error {
	if !criticalPackages[pass.PkgBase()] {
		return nil
	}
	runLocal(pass)
	if pass.Prog != nil {
		runInterprocedural(pass)
	}
	return nil
}

// runInterprocedural reports call sites whose callee, declared outside
// the determinism-critical packages, transitively reaches a
// nondeterministic construct.
func runInterprocedural(pass *framework.Pass) {
	prog := pass.Prog
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := pass.FuncObj(fd)
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, e := range prog.CallGraph.CalleesAt(fn, call.Pos()) {
					s := prog.SummaryOf(e.Callee)
					if s == nil || criticalPackages[framework.FuncPkgBase(e.Callee)] {
						continue // origin package reports its own finding
					}
					det := s.Total & framework.DetEffects
					if det == 0 || pass.Suppressed(call.Pos(), suppression) {
						continue
					}
					bit := det & (^det + 1) // lowest contributing effect
					pass.Reportf(call.Pos(),
						"call reaches %s outside the determinism-critical packages; "+
							"call chain: %s → %s (thread the dependency explicitly or "+
							"annotate //eflora:%s <reason>)",
						bit, framework.FuncDisplayName(fn), prog.ChainString(e.Callee, bit),
						suppression)
					break // one finding per call site
				}
				return true
			})
		}
	}
}

func runLocal(pass *framework.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			pkgPath, ok := packageQualifier(pass, n)
			if !ok {
				return true
			}
			if advice, ok := nondeterministicImports[pkgPath]; ok {
				if !pass.Suppressed(n.Pos(), suppression) {
					pass.Reportf(n.Pos(),
						"%s.%s is nondeterministic in a determinism-critical package; %s "+
							"(or annotate //eflora:%s <reason>)",
						pkgPath, n.Sel.Name, advice, suppression)
				}
				return true
			}
			if byName, ok := bannedCalls[pkgPath]; ok {
				if advice, ok := byName[n.Sel.Name]; ok && !pass.Suppressed(n.Pos(), suppression) {
					pass.Reportf(n.Pos(),
						"%s.%s is nondeterministic in a determinism-critical package; %s "+
							"(or annotate //eflora:%s <reason>)",
						pkgPath, n.Sel.Name, advice, suppression)
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				if !pass.Suppressed(n.Pos(), suppression) {
					pass.Reportf(n.Pos(),
						"map iteration order is randomized and flows into results in a "+
							"determinism-critical package; iterate sorted keys "+
							"(cf. golden.Map) or annotate //eflora:%s <reason>", suppression)
				}
			}
		}
		return true
	})
}

// packageQualifier resolves sel's X to an imported package path when the
// selector is a package-qualified reference (e.g. time.Now).
func packageQualifier(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkgName.Imported().Path(), true
}
