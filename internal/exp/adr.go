package exp

import (
	"fmt"
	"strings"

	"eflora/internal/adrloop"
	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/model"
	"eflora/internal/plot"
)

// runAblationADR runs the closed-loop LoRaWAN ADR controller to
// convergence and compares its steady state against the one-shot
// allocators — quantifying the related-work observation (Li et al.) that
// ADR's convergence and link-local view limit it.
func runAblationADR(cfg Config) (*Result, error) {
	devices := cfg.scaled(1000)
	p := cfg.params(nil)
	netw, err := core.Build(core.Scenario{
		Devices: devices, Gateways: 3, RadiusM: 5000, Seed: cfg.Seed, Params: &p,
	})
	if err != nil {
		return nil, err
	}
	loop, err := adrloop.Run(netw.Net, netw.Params, adrloop.Config{
		Epochs:          15,
		PacketsPerEpoch: cfg.PacketsPerDevice,
		Seed:            cfg.Seed + 11,
	})
	if err != nil {
		return nil, err
	}
	values := make(map[string]float64)
	values["converged_at"] = float64(loop.ConvergedAt)
	first := loop.PerEpoch[0]
	last := loop.PerEpoch[len(loop.PerEpoch)-1]
	values["epoch0_minEE"] = first.MinEE
	values["final_minEE"] = last.MinEE
	values["epoch0_meanPRR"] = first.MeanPRR
	values["final_meanPRR"] = last.MeanPRR

	// Score the converged ADR state and EF-LoRa under the same model.
	adrMin, err := alloc.EvaluateMinEE(netw.Net, netw.Params, loop.Final, model.ModeExact)
	if err != nil {
		return nil, err
	}
	ef, err := netw.Allocate("eflora", alloc.Options{})
	if err != nil {
		return nil, err
	}
	efMin, err := alloc.EvaluateMinEE(netw.Net, netw.Params, ef, model.ModeExact)
	if err != nil {
		return nil, err
	}
	values["adr_model_minEE"] = adrMin
	values["eflora_model_minEE"] = efMin

	var b strings.Builder
	var xs, prr, minEE []float64
	for _, e := range loop.PerEpoch {
		xs = append(xs, float64(e.Epoch))
		prr = append(prr, e.MeanPRR)
		minEE = append(minEE, core.BitsPerMilliJoule(e.MinEE))
	}
	var c plot.Chart
	c.Title = fmt.Sprintf("Closed-loop ADR trajectory (%d devices, 3 gateways)", devices)
	c.XLabel = "epoch"
	c.YStartZero = true
	c.Add("mean PRR", xs, prr)
	c.Add("min EE (bits/mJ)", xs, minEE)
	b.WriteString(c.Render())
	if loop.ConvergedAt >= 0 {
		fmt.Fprintf(&b, "\nADR converged at epoch %d (~%d packets per device).\n",
			loop.ConvergedAt, (loop.ConvergedAt+1)*cfg.PacketsPerDevice)
	} else {
		b.WriteString("\nADR did not converge within 15 epochs.\n")
	}
	fmt.Fprintf(&b, "Model min EE: converged ADR %s bits/mJ vs one-shot EF-LoRa %s bits/mJ (%.1fx).\n",
		bpmJ(adrMin), bpmJ(efMin), efMin/adrMin)
	return &Result{Text: b.String(), Values: values}, nil
}
