// Package exp contains one driver per table and figure of the paper's
// evaluation section. Each driver builds the deployments, runs the
// allocators, simulates packet traffic, and renders text tables/charts
// mirroring the published artifact. DESIGN.md carries the experiment
// index; EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/lifetime"
	"eflora/internal/model"
	"eflora/internal/par"
	"eflora/internal/radio"
	"eflora/internal/rng"
	"eflora/internal/sim"
	"eflora/internal/stats"
)

// Config scales an experiment run. The defaults keep each experiment in
// the seconds range; Scale=1, Trials=20..100 approaches paper scale.
type Config struct {
	// Scale multiplies every device count (default 0.1; the paper's
	// figures use up to 5000 devices).
	Scale float64
	// Trials is the number of independent repetitions averaged per data
	// point (paper: 100; default 3).
	Trials int
	// PacketsPerDevice per simulation run (default 40).
	PacketsPerDevice int
	// Seed drives deployment and simulation randomness.
	Seed uint64
	// Parallelism bounds the worker goroutines at each fan-out level —
	// independent trials, figure data points, gateway replay inside the
	// simulator, and the allocator's candidate scans (0 = NumCPU). Every
	// trial derives its own RNG from a per-trial seed and partial results
	// merge in trial order, so experiment output is bit-identical at any
	// setting.
	Parallelism int
	// StreamWindowS, when positive, runs every trial's simulation in
	// time-windowed streaming mode (sim.Config.StreamWindowS): resident
	// schedule memory per trial drops to O(devices + active window) with
	// bit-identical results, so 0 (batch) and any window produce the same
	// figures.
	StreamWindowS float64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.PacketsPerDevice <= 0 {
		c.PacketsPerDevice = 40
	}
	return c
}

func (c Config) scaled(n int) int {
	s := int(math.Round(float64(n) * c.Scale))
	if s < 10 {
		s = 10
	}
	return s
}

// paperDutyCycle is the evaluation's traffic setting: every device
// transmits at the 1% regulatory duty-cycle limit ("Duty cycle was set to
// 1%", Section IV), which is what puts the network into the
// collision-limited regime the paper's figures live in.
const paperDutyCycle = 0.01

// params returns the experiment parameters: base (or the paper defaults)
// with duty-cycle-driven traffic. The duty cycle is raised in proportion
// to the device-count scale (capped at 10%) so a scaled-down deployment
// keeps the paper's per-group ALOHA collision intensity: group exposure is
// proportional to duty x group population.
func (c Config) params(base *model.Params) model.Params {
	p := model.DefaultParams()
	if base != nil {
		p = *base
	}
	duty := paperDutyCycle / c.Scale
	// Beyond ~10% duty the pairwise-overlap approximations (and any real
	// network) are deep in congestion collapse; cap there.
	if duty > 0.1 {
		duty = 0.1
	}
	if duty < paperDutyCycle {
		duty = paperDutyCycle
	}
	p.TrafficDutyCycle = duty
	return p
}

// Result is a rendered experiment.
type Result struct {
	// ID is the experiment identifier ("table1", "fig6", ...).
	ID string
	// Title describes the paper artifact.
	Title string
	// Text is the rendered human-readable output.
	Text string
	// Values carries headline numbers for tests and EXPERIMENTS.md.
	Values map[string]float64
}

// runner is an experiment implementation.
type runner struct {
	title string
	run   func(Config) (*Result, error)
}

// registry maps experiment IDs to runners; populated in registry().
func registry() map[string]runner {
	return map[string]runner{
		"table1":             {"Table I: spreading factor allocation (motivating example)", runTable1},
		"table2":             {"Table II: transmission power allocation (motivating example)", runTable2},
		"table4":             {"Table IV: SNR thresholds and receiver sensitivities", runTable4},
		"fig4":               {"Fig. 4: per-device energy efficiency, 3 methods x {3,5} gateways", runFig4},
		"fig5":               {"Fig. 5: CDF of energy efficiency", runFig5},
		"fig6":               {"Fig. 6: minimum energy efficiency vs number of end devices", runFig6},
		"fig7":               {"Fig. 7: minimum energy efficiency vs number of gateways", runFig7},
		"fig8":               {"Fig. 8: network lifetime across deployments", runFig8},
		"fig9":               {"Fig. 9: path-loss sensitivity and transmission power ablation", runFig9},
		"fig10":              {"Fig. 10: allocation algorithm convergence time", runFig10},
		"ablation-order":     {"Ablation: density-first vs random device ordering", runAblationOrder},
		"ablation-capture":   {"Ablation: destroy-both collision rule vs 6 dB capture", runAblationCapture},
		"ablation-intersf":   {"Ablation: perfect vs imperfect SF orthogonality", runAblationInterSF},
		"ablation-confirmed": {"Ablation: ETX lifetime approximation vs confirmed-traffic simulation", runAblationConfirmed},
		"ablation-adr":       {"Ablation: closed-loop LoRaWAN ADR convergence vs one-shot EF-LoRa", runAblationADR},
	}
}

// IDs lists the experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(registry()))
	//eflora:nondeterminism-ok order-independent: keys are collected then explicitly sorted below
	for id := range registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		rank := func(s string) (int, int) {
			if strings.HasPrefix(s, "table") {
				var n int
				fmt.Sscanf(s, "table%d", &n)
				return 0, n
			}
			if strings.HasPrefix(s, "fig") {
				var n int
				fmt.Sscanf(s, "fig%d", &n)
				return 1, n
			}
			return 2, 0
		}
		ci, ni := rank(ids[i])
		cj, nj := rank(ids[j])
		if ci != cj {
			return ci < cj
		}
		if ni != nj {
			return ni < nj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Title returns the description of an experiment id.
func Title(id string) (string, bool) {
	r, ok := registry()[id]
	if !ok {
		return "", false
	}
	return r.title, true
}

// Run executes one experiment.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := registry()[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := r.run(cfg.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	return res, nil
}

// methods compared throughout the evaluation.
var evalMethods = []string{"legacy", "rslora", "eflora"}

// methodLabel maps the internal method keys to the paper's names.
func methodLabel(m string) string {
	switch m {
	case "legacy":
		return "Legacy-LoRa"
	case "rslora":
		return "RS-LoRa"
	case "eflora":
		return "EF-LoRa"
	default:
		return m
	}
}

// trialStats aggregates one method over cfg.Trials independent topologies.
type trialStats struct {
	Method string
	// AllEE concatenates per-device EE (bits/J) across trials.
	AllEE []float64
	// MinEE is the trial-averaged minimum energy efficiency, estimated as
	// the 2nd percentile of the simulated per-device EE: the strict
	// minimum of N noisy per-device estimates is an extreme-value
	// statistic that systematically penalizes fairness-optimized
	// allocations (whose devices all cluster at the minimum), while a low
	// percentile converges to the paper's metric as packets grow.
	MinEE float64
	// MeanEE is the trial-averaged mean.
	MeanEE float64
	// LifetimeS is the trial-averaged 10%-dead network lifetime.
	LifetimeS float64
	// Jain is the trial-averaged fairness index of the EE distribution.
	Jain float64
}

// experimentBattery powers lifetime computations (2400 mAh at 3.3 V).
func experimentBattery() radio.Battery {
	return radio.NewBatteryFromMilliampHours(2400, 3.3)
}

// runMethodTrials builds cfg.Trials topologies of the given size, applies
// the method's allocator, simulates packet traffic and aggregates. It uses
// the paper's 5 km deployment disc; runMethodTrialsR takes the radius
// explicitly.
func runMethodTrials(cfg Config, devices, gateways int, params *model.Params, method string, opts alloc.Options) (trialStats, error) {
	return runMethodTrialsR(cfg, devices, gateways, 5000, params, method, opts)
}

// scratchPool recycles simulator arenas across trials: each in-flight
// trial checks one out for its Simulate call, so a figure's hundreds of
// trials share a handful of arenas (one per worker) instead of
// re-allocating schedules, fading matrices and result slices per trial.
var scratchPool = sync.Pool{New: func() any { return new(sim.Scratch) }}

func runMethodTrialsR(cfg Config, devices, gateways int, radiusM float64, params *model.Params, method string, opts alloc.Options) (trialStats, error) {
	ts := trialStats{Method: method}
	p := cfg.params(params)
	if opts.Parallelism == 0 {
		opts.Parallelism = cfg.Parallelism
	}
	// Trials are independent by construction — each derives deployment,
	// allocation and simulation RNGs from its own seed — so they fan out
	// across workers; per-trial results land in trial-indexed slots and
	// merge below in trial order, keeping every float accumulation in the
	// exact order of a sequential run.
	type trialOut struct {
		ee                    []float64
		min, mean, jain, life float64
	}
	outs := make([]trialOut, cfg.Trials)
	errs := make([]error, cfg.Trials)
	par.For(cfg.Parallelism, cfg.Trials, func(trial int) {
		seed := cfg.Seed + uint64(trial)*1000003
		netw, err := core.Build(core.Scenario{
			Devices:  devices,
			Gateways: gateways,
			RadiusM:  radiusM,
			Seed:     seed,
			Params:   &p,
		})
		if err != nil {
			errs[trial] = err
			return
		}
		al, err := core.AllocatorByName(method, opts, netw.Params.Plan.MaxTxPowerDBm)
		if err != nil {
			errs[trial] = err
			return
		}
		a, err := al.Allocate(netw.Net, netw.Params, rng.New(seed+7))
		if err != nil {
			errs[trial] = err
			return
		}
		sc := scratchPool.Get().(*sim.Scratch)
		defer scratchPool.Put(sc)
		res, err := netw.Simulate(a, sim.Config{
			PacketsPerDevice: cfg.PacketsPerDevice,
			Seed:             seed + 13,
			Parallelism:      cfg.Parallelism,
			StreamWindowS:    cfg.StreamWindowS,
			Scratch:          sc,
		})
		if err != nil {
			errs[trial] = err
			return
		}
		lt, err := lifetime.Compute(res.RetxAvgPowerW, experimentBattery(), lifetime.DefaultDeadFraction)
		if err != nil {
			errs[trial] = err
			return
		}
		outs[trial] = trialOut{
			// res aliases the pooled scratch; copy what outlives this trial.
			ee:   append([]float64(nil), res.EE...),
			min:  stats.Percentile(res.EE, 0.02),
			mean: stats.Mean(res.EE),
			jain: stats.JainIndex(res.EE),
			life: lt.NetworkS,
		}
	})
	if err := par.FirstErr(errs); err != nil {
		return ts, err
	}
	var sumMin, sumMean, sumLife, sumJain float64
	for _, o := range outs {
		ts.AllEE = append(ts.AllEE, o.ee...)
		sumMin += o.min
		sumMean += o.mean
		sumJain += o.jain
		sumLife += o.life
	}
	tf := float64(cfg.Trials)
	ts.MinEE = sumMin / tf
	ts.MeanEE = sumMean / tf
	ts.LifetimeS = sumLife / tf
	ts.Jain = sumJain / tf
	return ts, nil
}

// trialTask names one runMethodTrialsR invocation inside a figure's grid
// of independent data points.
type trialTask struct {
	devices, gateways int
	radiusM           float64
	params            *model.Params
	method            string
	opts              alloc.Options
}

// runTrialGrid evaluates a figure's (data point x method) grid, fanning
// the independent tasks out across cfg.Parallelism workers, and returns
// the results in task order. Errors surface lowest-index first, matching
// what a sequential loop over the same tasks would have returned.
func runTrialGrid(cfg Config, tasks []trialTask) ([]trialStats, error) {
	out := make([]trialStats, len(tasks))
	errs := make([]error, len(tasks))
	par.For(cfg.Parallelism, len(tasks), func(i int) {
		t := tasks[i]
		out[i], errs[i] = runMethodTrialsR(cfg, t.devices, t.gateways, t.radiusM, t.params, t.method, t.opts)
	})
	if err := par.FirstErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// methodTasks builds one task per evaluation method for a deployment on
// the paper's 5 km disc.
func methodTasks(devices, gateways int, params *model.Params) []trialTask {
	tasks := make([]trialTask, 0, len(evalMethods))
	for _, m := range evalMethods {
		tasks = append(tasks, trialTask{
			devices: devices, gateways: gateways, radiusM: 5000,
			params: params, method: m,
		})
	}
	return tasks
}

// bpmJ formats bits/J as the paper's bits/mJ.
func bpmJ(bitsPerJoule float64) string {
	return fmt.Sprintf("%.3f", core.BitsPerMilliJoule(bitsPerJoule))
}
