package exp

import (
	"strings"
	"testing"
)

// fastStrategies keeps tournament tests in the sub-second range.
var fastStrategies = []string{"legacy", "rslora", "eflora", "hier"}

func TestTournamentGridShape(t *testing.T) {
	tour, err := RunTournament(TournamentConfig{
		Sizes:       []int{20, 40},
		Gateways:    2,
		Trials:      2,
		Seed:        3,
		Parallelism: 1,
		Strategies:  fastStrategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tour.Cells), 2*len(fastStrategies); got != want {
		t.Fatalf("grid has %d cells, want %d", got, want)
	}
	for _, c := range tour.Cells {
		if c.Skipped {
			t.Errorf("%s/n=%d unexpectedly skipped: %s", c.Strategy, c.Devices, c.SkipReason)
			continue
		}
		if c.Trials != 2 {
			t.Errorf("%s/n=%d: %d trials, want 2", c.Strategy, c.Devices, c.Trials)
		}
		if c.MinEE <= 0 || c.MeanEE < c.MinEE {
			t.Errorf("%s/n=%d: MinEE=%v MeanEE=%v", c.Strategy, c.Devices, c.MinEE, c.MeanEE)
		}
		if c.Jain <= 0 || c.Jain > 1+1e-9 {
			t.Errorf("%s/n=%d: Jain=%v", c.Strategy, c.Devices, c.Jain)
		}
		if c.WallClock <= 0 {
			t.Errorf("%s/n=%d: WallClock=%v", c.Strategy, c.Devices, c.WallClock)
		}
	}
}

// TestTournamentMetricsDeterministic pins the harness's core promise: the
// quality columns are bit-identical across runs (wall clocks are not).
func TestTournamentMetricsDeterministic(t *testing.T) {
	cfg := TournamentConfig{
		Sizes:      []int{30},
		Gateways:   2,
		Trials:     2,
		Seed:       9,
		Strategies: fastStrategies,
	}
	a, err := RunTournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 1
	b, err := RunTournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Strategy != cb.Strategy || ca.Devices != cb.Devices {
			t.Fatalf("cell %d order diverged: %s/%d vs %s/%d", i, ca.Strategy, ca.Devices, cb.Strategy, cb.Devices)
		}
		if ca.MinEE != cb.MinEE || ca.MeanEE != cb.MeanEE || ca.Jain != cb.Jain {
			t.Errorf("%s/n=%d metrics diverged across parallelism: (%v,%v,%v) vs (%v,%v,%v)",
				ca.Strategy, ca.Devices, ca.MinEE, ca.MeanEE, ca.Jain, cb.MinEE, cb.MeanEE, cb.Jain)
		}
	}
}

// TestTournamentSkipsOverCeiling pins the MaxDevices gate: exhaustive
// (ceiling 3) must be skipped, not attempted, on any realistic size.
func TestTournamentSkipsOverCeiling(t *testing.T) {
	tour, err := RunTournament(TournamentConfig{
		Sizes:      []int{25},
		Gateways:   1,
		Trials:     1,
		Seed:       5,
		Strategies: []string{"legacy", "exhaustive"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawSkip bool
	for _, c := range tour.Cells {
		if c.Strategy == "exhaustive" {
			sawSkip = true
			if !c.Skipped || c.Trials != 0 {
				t.Errorf("exhaustive at n=25 ran: %+v", c)
			}
		}
	}
	if !sawSkip {
		t.Fatal("exhaustive cell missing from grid")
	}
}

func TestTournamentSelectStrategies(t *testing.T) {
	if _, err := RunTournament(TournamentConfig{Sizes: []int{10}, Trials: 1, Strategies: []string{"nope"}}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := RunTournament(TournamentConfig{Sizes: []int{10}, Trials: 1, Strategies: []string{"eflora", "ef-lora"}}); err == nil {
		t.Error("duplicate strategy (via alias) accepted")
	}
	if _, err := RunTournament(TournamentConfig{Sizes: []int{0}, Trials: 1}); err == nil {
		t.Error("non-positive size accepted")
	}
}

func TestTournamentRenderAndValues(t *testing.T) {
	tour, err := RunTournament(TournamentConfig{
		Sizes:      []int{20},
		Gateways:   2,
		Trials:     1,
		Seed:       4,
		Strategies: []string{"legacy", "eflora", "exhaustive"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := tour.Render()
	for _, want := range []string{"n=20 devices", "legacy", "eflora", "skipped: size 20 exceeds strategy ceiling 3"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q in:\n%s", want, text)
		}
	}
	v := tour.Values()
	if _, ok := v["eflora/n=20/minEE"]; !ok {
		t.Errorf("Values missing eflora/n=20/minEE: %v", v)
	}
	if _, ok := v["exhaustive/n=20/minEE"]; ok {
		t.Error("Values includes a skipped cell")
	}
	if j := tour.JainOfMinEE(20); j <= 0 || j > 1+1e-9 {
		t.Errorf("JainOfMinEE = %v", j)
	}
}
