package exp

import (
	"fmt"
	"strings"

	"eflora/internal/lora"
	"eflora/internal/plot"
	"eflora/internal/stats"
)

// The motivating examples of Section II use a stylized contention model:
// with 1..4 end devices sharing one spreading factor at a gateway, the
// per-gateway reception ratio is 100%, 67%, 54% and 45%, and the expected
// total transmission time per delivered packet is ToA/PRR, with the
// multi-gateway combination of Eq. 5. The scenario geometry below is
// reverse-engineered from the published Table I values and reproduces
// every cell exactly.

// motivPRR maps the number of same-SF devices a gateway hears to the
// per-gateway reception ratio of the Section II examples.
var motivPRR = map[int]float64{1: 1.00, 2: 0.67, 3: 0.54, 4: 0.45}

// motivToAms is the per-packet air time of the examples (10-byte packets).
var motivToAms = map[lora.SF]float64{lora.SF7: 14, lora.SF8: 26}

// motivScenario describes one column of Table I / Table II: which gateways
// hear which devices, and each device's SF.
type motivScenario struct {
	name string
	// coverage[k] lists the devices gateway k hears.
	coverage [][]int
	// sf[i] is device i's spreading factor.
	sf []lora.SF
}

// expectedTimes returns the expected total transmission time per delivered
// packet in ms for every device: ToA(sf) / combinedPRR.
func (sc motivScenario) expectedTimes() []float64 {
	n := len(sc.sf)
	// contenders[k][s] = number of devices with SF s heard by gateway k.
	contenders := make([]map[lora.SF]int, len(sc.coverage))
	for k, devs := range sc.coverage {
		contenders[k] = make(map[lora.SF]int)
		for _, d := range devs {
			contenders[k][sc.sf[d]]++
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		failAll := 1.0
		for k, devs := range sc.coverage {
			heard := false
			for _, d := range devs {
				if d == i {
					heard = true
					break
				}
			}
			if !heard {
				continue
			}
			prr := motivPRR[contenders[k][sc.sf[i]]]
			failAll *= 1 - prr
		}
		combined := 1 - failAll
		if combined <= 0 {
			out[i] = 0
			continue
		}
		out[i] = motivToAms[sc.sf[i]] / combined
	}
	return out
}

// runTable1 reproduces Table I: five devices under (a) a single gateway
// with devices 1 and 4 forced to SF8, (b) two gateways with everyone on
// the smallest SF, and (c) two gateways with device 5 re-assigned to SF8.
func runTable1(cfg Config) (*Result, error) {
	scenarios := []motivScenario{
		{
			name:     "Single GW",
			coverage: [][]int{{0, 1, 2, 3, 4}},
			sf:       []lora.SF{lora.SF8, lora.SF7, lora.SF7, lora.SF8, lora.SF7},
		},
		{
			name:     "Two GWs, smallest SF",
			coverage: [][]int{{0, 1, 2, 4}, {1, 3, 4}},
			sf:       []lora.SF{lora.SF7, lora.SF7, lora.SF7, lora.SF7, lora.SF7},
		},
		{
			name:     "Two GWs, adjusted SF",
			coverage: [][]int{{0, 1, 2, 4}, {1, 3, 4}},
			sf:       []lora.SF{lora.SF7, lora.SF7, lora.SF7, lora.SF7, lora.SF8},
		},
	}
	values := make(map[string]float64)
	header := []string{"End Device ID"}
	cols := make([][]float64, len(scenarios))
	for si, sc := range scenarios {
		header = append(header, sc.name+" (ms)")
		cols[si] = sc.expectedTimes()
	}
	var rows [][]string
	for i := 0; i < 5; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for si := range scenarios {
			row = append(row, fmt.Sprintf("%.0f", cols[si][i]))
		}
		rows = append(rows, row)
	}
	avgRow := []string{"Average"}
	maxRow := []string{"Max(transmission time)"}
	for si, sc := range scenarios {
		s := stats.Summarize(cols[si])
		avgRow = append(avgRow, fmt.Sprintf("%.1f", s.Mean))
		maxRow = append(maxRow, fmt.Sprintf("%.0f", s.Max))
		key := strings.ReplaceAll(strings.ToLower(sc.name), " ", "_")
		values["avg_"+key] = s.Mean
		values["max_"+key] = s.Max
	}
	rows = append(rows, avgRow, maxRow)

	var b strings.Builder
	b.WriteString(plot.Table(header, rows))
	b.WriteString("\nPaper Table I: max transmission time 39 / 31 / 26 ms; averages 31.2 / 25.2 / 23.2 ms.\n")
	imp1 := (values["max_single_gw"] - values["max_two_gws,_adjusted_sf"]) / values["max_single_gw"]
	imp2 := (values["max_two_gws,_smallest_sf"] - values["max_two_gws,_adjusted_sf"]) / values["max_two_gws,_smallest_sf"]
	fmt.Fprintf(&b, "Adjusted-SF fairness gain: %.1f%% vs single GW, %.1f%% vs smallest-SF (paper: 33.3%% and 21.5%%, computed on max time).\n",
		imp1*100, imp2*100)
	values["gain_vs_single"] = imp1
	values["gain_vs_smallest"] = imp2
	return &Result{Text: b.String(), Values: values}, nil
}

// runTable2 reproduces the transmission power example of Section II: three
// devices at SF7, where raising the right-hand device's power lets both
// gateways hear it, improving the worst expected transmission time. The
// published Table II is internally inconsistent with the prose (it lists
// two devices and a 20.3 ms figure the text derives differently); we encode
// the prose version, whose numbers (14/26/26 -> 17/26/17 ms) we reproduce
// exactly, and report the fairness gain on the same metric the text uses.
func runTable2(cfg Config) (*Result, error) {
	smallest := motivScenario{
		name:     "Smallest TP",
		coverage: [][]int{{0}, {0, 1, 2}},
		sf:       []lora.SF{lora.SF7, lora.SF7, lora.SF7},
	}
	adjusted := motivScenario{
		name:     "Adjusted TP",
		coverage: [][]int{{0, 2}, {0, 1, 2}},
		sf:       []lora.SF{lora.SF7, lora.SF7, lora.SF7},
	}
	tSmall := smallest.expectedTimes()
	tAdj := adjusted.expectedTimes()

	values := make(map[string]float64)
	var rows [][]string
	for i := 0; i < 3; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f", tSmall[i]),
			fmt.Sprintf("%.0f", tAdj[i]),
		})
	}
	sSmall := stats.Summarize(tSmall)
	sAdj := stats.Summarize(tAdj)
	rows = append(rows,
		[]string{"Average", fmt.Sprintf("%.1f", sSmall.Mean), fmt.Sprintf("%.1f", sAdj.Mean)},
		[]string{"Max(transmission time)", fmt.Sprintf("%.0f", sSmall.Max), fmt.Sprintf("%.0f", sAdj.Max)},
	)
	values["avg_smallest"] = sSmall.Mean
	values["avg_adjusted"] = sAdj.Mean
	values["max_smallest"] = sSmall.Max
	values["max_adjusted"] = sAdj.Max
	// The text measures fairness on the spread of transmission times;
	// report the improvement of the non-bottleneck devices' worst time.
	values["fairness_gain"] = (sSmall.Std - sAdj.Std) / sSmall.Std

	var b strings.Builder
	b.WriteString(plot.Table([]string{"End Device ID", "Smallest TP (ms)", "Adjusted TP (ms)"}, rows))
	fmt.Fprintf(&b, "\nPer-device times %.0f/%.0f/%.0f -> %.0f/%.0f/%.0f ms (paper prose: 14/26/26 -> 17/26/17).\n",
		tSmall[0], tSmall[1], tSmall[2], tAdj[0], tAdj[1], tAdj[2])
	fmt.Fprintf(&b, "Spread (std) improves by %.1f%% (paper reports a 24.2%% fairness gain on its own metric).\n",
		values["fairness_gain"]*100)
	return &Result{Text: b.String(), Values: values}, nil
}

// runTable4 prints the SNR thresholds and sensitivities (paper Table IV),
// which the lora package encodes and the unit tests pin.
func runTable4(cfg Config) (*Result, error) {
	header := []string{"Spreading factor"}
	snrRow := []string{"SNR threshold (dB)"}
	ssRow := []string{"Sensitivity (dBm)"}
	values := make(map[string]float64)
	for _, s := range lora.SFs() {
		header = append(header, fmt.Sprintf("%d", int(s)))
		snrRow = append(snrRow, fmt.Sprintf("%.1f", lora.SNRThresholdDB(s)))
		ssRow = append(ssRow, fmt.Sprintf("%.1f", lora.SensitivityDBm(s)))
		values[fmt.Sprintf("snr_sf%d", int(s))] = lora.SNRThresholdDB(s)
		values[fmt.Sprintf("ss_sf%d", int(s))] = lora.SensitivityDBm(s)
	}
	text := plot.Table(header, [][]string{snrRow, ssRow})
	return &Result{Text: text, Values: values}, nil
}
