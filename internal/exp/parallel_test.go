package exp

import (
	"testing"
)

// TestExperimentBitIdenticalAcrossParallelism runs a small figure end to
// end — deployment, allocation, simulation, aggregation — sequentially
// and with the fan-out enabled, and requires every headline value to be
// bit-identical: trials and data points merge in index order, so the
// float accumulation sequence never changes.
func TestExperimentBitIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments")
	}
	base := Config{Scale: 0.01, Trials: 2, PacketsPerDevice: 10, Seed: 5}

	for _, id := range []string{"fig4", "fig9"} {
		cfg := base
		cfg.Parallelism = 1
		seq, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Parallelism = 4
		par, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Values) == 0 || len(seq.Values) != len(par.Values) {
			t.Fatalf("%s: value sets differ: %d vs %d", id, len(seq.Values), len(par.Values))
		}
		for k, v := range seq.Values {
			if pv, ok := par.Values[k]; !ok || pv != v {
				t.Errorf("%s: %q = %v sequential vs %v parallel (must be bit-identical)", id, k, v, pv)
			}
		}
		if seq.Text != par.Text {
			t.Errorf("%s: rendered text diverged between parallelism settings", id)
		}
	}
}
