package exp

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// quickCfg keeps experiment tests fast while sampling enough packets for
// the min-over-devices statistics to stabilize.
func quickCfg() Config {
	return Config{Scale: 0.05, Trials: 2, PacketsPerDevice: 120, Seed: 7}
}

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"table1", "table2", "table4",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation-adr", "ablation-capture", "ablation-confirmed", "ablation-intersf", "ablation-order",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s (all: %v)", i, ids[i], want[i], ids)
		}
	}
	for _, id := range ids {
		if _, ok := Title(id); !ok {
			t.Errorf("Title(%s) missing", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1ReproducesPaperExactly(t *testing.T) {
	res, err := Run("table1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table I, reproduced cell-exactly by the scenario encoding.
	checks := map[string]float64{
		"max_single_gw":            39,
		"max_two_gws,_smallest_sf": 31,
		"max_two_gws,_adjusted_sf": 26,
	}
	for key, want := range checks {
		got, ok := res.Values[key]
		if !ok {
			t.Fatalf("missing value %q in %v", key, res.Values)
		}
		if math.Abs(got-want) > 0.5 {
			t.Errorf("%s = %v, paper says %v", key, got, want)
		}
	}
	if math.Abs(res.Values["avg_single_gw"]-31.2) > 0.3 {
		t.Errorf("avg single GW = %v, paper 31.2", res.Values["avg_single_gw"])
	}
	if math.Abs(res.Values["avg_two_gws,_smallest_sf"]-25.2) > 0.5 {
		t.Errorf("avg smallest SF = %v, paper 25.2", res.Values["avg_two_gws,_smallest_sf"])
	}
	if math.Abs(res.Values["avg_two_gws,_adjusted_sf"]-23.2) > 0.5 {
		t.Errorf("avg adjusted = %v, paper 23.2", res.Values["avg_two_gws,_adjusted_sf"])
	}
}

func TestTable2ReproducesProse(t *testing.T) {
	res, err := Run("table2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The prose: 14/26/26 ms -> 17/26/17 ms.
	if math.Abs(res.Values["max_smallest"]-26) > 0.5 {
		t.Errorf("max smallest = %v, want ~26", res.Values["max_smallest"])
	}
	if res.Values["avg_adjusted"] >= res.Values["avg_smallest"]+0.5 {
		t.Errorf("TP adjustment should not worsen the average: %v vs %v",
			res.Values["avg_adjusted"], res.Values["avg_smallest"])
	}
	if res.Values["fairness_gain"] <= 0 {
		t.Errorf("fairness gain = %v, want positive", res.Values["fairness_gain"])
	}
}

func TestTable4MatchesLoraTables(t *testing.T) {
	res, err := Run("table4", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["snr_sf12"] != -20 || res.Values["ss_sf7"] != -123 {
		t.Errorf("Table IV values wrong: %v", res.Values)
	}
	if !strings.Contains(res.Text, "-134.5") {
		t.Errorf("rendered table missing SF11 sensitivity:\n%s", res.Text)
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Run("fig4", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// EF-LoRa wins the max-min objective against both baselines and is
	// clearly fairer than RS-LoRa (which forces a share of devices onto
	// large SFs). Against legacy the Jain index can nearly tie at test
	// scale, so allow a hair of slack there.
	if res.Values["eflora_3gw_min"] <= res.Values["legacy_3gw_min"] {
		t.Errorf("EF-LoRa min EE %v should beat legacy %v",
			res.Values["eflora_3gw_min"], res.Values["legacy_3gw_min"])
	}
	if res.Values["eflora_3gw_min"] <= res.Values["rslora_3gw_min"] {
		t.Errorf("EF-LoRa min EE %v should beat RS-LoRa %v",
			res.Values["eflora_3gw_min"], res.Values["rslora_3gw_min"])
	}
	if res.Values["eflora_3gw_jain"] <= res.Values["rslora_3gw_jain"] {
		t.Errorf("EF-LoRa Jain %v should beat RS-LoRa %v",
			res.Values["eflora_3gw_jain"], res.Values["rslora_3gw_jain"])
	}
	if res.Values["eflora_3gw_jain"] < res.Values["legacy_3gw_jain"]-0.02 {
		t.Errorf("EF-LoRa Jain %v should not trail legacy %v materially",
			res.Values["eflora_3gw_jain"], res.Values["legacy_3gw_jain"])
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Run("fig5", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Max-min fairness shows in the CDF's low tail: EF-LoRa's worst-5%
	// devices do clearly better than RS-LoRa's (which forces some devices
	// onto large SFs) and at least as well as legacy's.
	if res.Values["eflora_3gw_p05"] <= res.Values["rslora_3gw_p05"] {
		t.Errorf("EF-LoRa P5 %v should beat RS-LoRa %v",
			res.Values["eflora_3gw_p05"], res.Values["rslora_3gw_p05"])
	}
	if res.Values["eflora_3gw_p05"] < 0.95*res.Values["legacy_3gw_p05"] {
		t.Errorf("EF-LoRa P5 %v should not trail legacy %v",
			res.Values["eflora_3gw_p05"], res.Values["legacy_3gw_p05"])
	}
	if !strings.Contains(res.Text, "CDF") {
		t.Error("missing CDF chart")
	}
}

func TestFig6Shape(t *testing.T) {
	cfg := Config{Scale: 0.03, Trials: 1, PacketsPerDevice: 60, Seed: 7}
	res, err := Run("fig6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"legacy", "rslora", "eflora"} {
		for _, n := range []int{500, 1000, 2000, 3000, 4000, 5000} {
			key := m + "_n" + itoa(n)
			v, ok := res.Values[key]
			if !ok || v < 0 {
				t.Errorf("missing or negative %s = %v", key, v)
			}
		}
	}
	// Denser networks cannot be better for the worst device (allow a
	// little simulation noise).
	if res.Values["eflora_n5000"] > res.Values["eflora_n500"]*1.15 {
		t.Errorf("min EE should fall with density: n500=%v n5000=%v",
			res.Values["eflora_n500"], res.Values["eflora_n5000"])
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := Config{Scale: 0.03, Trials: 1, PacketsPerDevice: 60, Seed: 7}
	res, err := Run("fig7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// More gateways help the worst device in the sparse regime.
	if res.Values["eflora_g5"] <= res.Values["eflora_g1"] {
		t.Errorf("5 gateways (%v) should beat 1 gateway (%v)",
			res.Values["eflora_g5"], res.Values["eflora_g1"])
	}
	for _, g := range []int{1, 3, 5, 9, 15, 20, 25} {
		if _, ok := res.Values["eflora_g"+itoa(g)]; !ok {
			t.Errorf("missing gateway point %d", g)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := Config{Scale: 0.03, Trials: 1, PacketsPerDevice: 60, Seed: 7}
	res, err := Run("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every lifetime is positive and finite.
	for k, v := range res.Values {
		if strings.HasSuffix(k, "_days") && (v <= 0 || math.IsInf(v, 0) || math.IsNaN(v)) {
			t.Errorf("%s = %v", k, v)
		}
	}
	// EF-LoRa clearly extends lifetime versus RS-LoRa (paper: +15.3%).
	// Versus legacy the paper's +41.5% needs full-scale collision load
	// (the bottleneck device's ETX); at test scale the two bottlenecks
	// tie, so require non-inferiority only.
	if res.Values["gain_vs_rslora"] <= 0 {
		t.Errorf("EF-LoRa lifetime gain vs RS-LoRa = %v, want positive", res.Values["gain_vs_rslora"])
	}
	if res.Values["gain_vs_legacy"] < -0.05 {
		t.Errorf("EF-LoRa lifetime gain vs legacy = %v, want >= -5%%", res.Values["gain_vs_legacy"])
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func TestFig9Shape(t *testing.T) {
	res, err := Run("fig9", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// EF-LoRa at the default beta should beat legacy LoRa.
	if res.Values["eflora_beta2.7"] <= res.Values["legacy"] {
		t.Errorf("EF-LoRa %v should beat legacy %v", res.Values["eflora_beta2.7"], res.Values["legacy"])
	}
	// Fixed-TP EF-LoRa still at least matches legacy (paper: +71% at
	// full scale; at test scale contention is light and the two can tie).
	if res.Values["eflora_fixed_tp"] < 0.999*res.Values["legacy"] {
		t.Errorf("fixed-TP EF-LoRa %v should not lose to legacy %v", res.Values["eflora_fixed_tp"], res.Values["legacy"])
	}
}

func TestAblationADRShape(t *testing.T) {
	cfg := Config{Scale: 0.04, Trials: 1, PacketsPerDevice: 25, Seed: 7}
	res, err := Run("ablation-adr", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The loop must improve on the join state and EF-LoRa must beat the
	// converged ADR under the model.
	if res.Values["final_minEE"] <= res.Values["epoch0_minEE"] {
		t.Errorf("ADR loop did not improve min EE: %v -> %v",
			res.Values["epoch0_minEE"], res.Values["final_minEE"])
	}
	if res.Values["eflora_model_minEE"] <= res.Values["adr_model_minEE"] {
		t.Errorf("EF-LoRa %v should beat converged ADR %v",
			res.Values["eflora_model_minEE"], res.Values["adr_model_minEE"])
	}
}

func TestAblationOrderShape(t *testing.T) {
	cfg := Config{Scale: 0.05, Trials: 1, PacketsPerDevice: 20, Seed: 7}
	res, err := Run("ablation-order", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["density_s"] <= 0 || res.Values["random_s"] <= 0 {
		t.Errorf("timings missing: %v", res.Values)
	}
	if res.Values["density_minEE"] <= 0 || res.Values["random_minEE"] <= 0 {
		t.Errorf("min EE missing: %v", res.Values)
	}
}

func TestAblationCaptureShape(t *testing.T) {
	cfg := Config{Scale: 0.05, Trials: 1, PacketsPerDevice: 60, Seed: 7}
	res, err := Run("ablation-capture", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Capture can only help reception.
	if res.Values["capture_meanPRR"] < res.Values["paper_meanPRR"]-0.01 {
		t.Errorf("capture mean PRR %v below destroy-both %v",
			res.Values["capture_meanPRR"], res.Values["paper_meanPRR"])
	}
}

func TestAblationInterSFShape(t *testing.T) {
	cfg := Config{Scale: 0.04, Trials: 1, PacketsPerDevice: 40, Seed: 7}
	res, err := Run("ablation-intersf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["orthogonal_minEE"] <= 0 || res.Values["intersf_minEE"] <= 0 {
		t.Errorf("missing values: %v", res.Values)
	}
}

func TestAblationConfirmedShape(t *testing.T) {
	cfg := Config{Scale: 0.04, Trials: 1, PacketsPerDevice: 30, Seed: 7}
	res, err := Run("ablation-confirmed", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["approx_days"] <= 0 || res.Values["confirmed_days"] <= 0 {
		t.Errorf("missing lifetimes: %v", res.Values)
	}
	// Load feedback cannot extend life materially beyond the
	// approximation.
	if res.Values["confirmed_days"] > res.Values["approx_days"]*1.3 {
		t.Errorf("confirmed lifetime %v suspiciously above approximation %v",
			res.Values["confirmed_days"], res.Values["approx_days"])
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Run("fig10", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Convergence time grows with problem size: largest config slower
	// than smallest.
	small := res.Values["t_n1000_g3"]
	large := res.Values["t_n3000_g9"]
	if small <= 0 || large <= 0 {
		t.Fatalf("timings missing: %v", res.Values)
	}
	if large < small {
		t.Errorf("larger problem faster than smaller: %v < %v", large, small)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.1 || c.Trials != 3 || c.PacketsPerDevice != 40 {
		t.Errorf("defaults = %+v", c)
	}
	if got := c.scaled(3000); got != 300 {
		t.Errorf("scaled(3000) = %d", got)
	}
	if got := c.scaled(10); got != 10 {
		t.Errorf("scaled floor = %d, want 10", got)
	}
}
