package exp

import (
	"fmt"
	"strings"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/lifetime"
	"eflora/internal/plot"
	"eflora/internal/rng"
	"eflora/internal/sim"
	"eflora/internal/stats"
)

// runAblationOrder measures the density-first device ordering against a
// random ordering (the paper reports density-first cuts the execution
// delay by 10.3% on average at 1000 nodes).
func runAblationOrder(cfg Config) (*Result, error) {
	devices := cfg.scaled(1000)
	p := cfg.params(nil)
	values := make(map[string]float64)
	var rows [][]string
	var densityT, randomT, densityEE, randomEE float64
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + uint64(trial)*7919
		netw, err := core.Build(core.Scenario{
			Devices: devices, Gateways: 3, RadiusM: 5000, Seed: seed, Params: &p,
		})
		if err != nil {
			return nil, err
		}
		_, repD, err := alloc.NewEFLoRa(alloc.Options{}).
			AllocateWithReport(netw.Net, netw.Params, nil)
		if err != nil {
			return nil, err
		}
		_, repR, err := alloc.NewEFLoRa(alloc.Options{RandomOrder: true}).
			AllocateWithReport(netw.Net, netw.Params, rng.New(seed))
		if err != nil {
			return nil, err
		}
		densityT += repD.Elapsed.Seconds()
		randomT += repR.Elapsed.Seconds()
		densityEE += repD.FinalMinEE
		randomEE += repR.FinalMinEE
	}
	tf := float64(cfg.Trials)
	densityT /= tf
	randomT /= tf
	densityEE /= tf
	randomEE /= tf
	values["density_s"] = densityT
	values["random_s"] = randomT
	values["density_minEE"] = densityEE
	values["random_minEE"] = randomEE
	if randomT > 0 {
		values["speedup"] = 1 - densityT/randomT
	}
	rows = append(rows,
		[]string{"density-first", fmt.Sprintf("%.2fs", densityT), bpmJ(densityEE)},
		[]string{"random order", fmt.Sprintf("%.2fs", randomT), bpmJ(randomEE)},
	)
	var b strings.Builder
	b.WriteString(plot.Table([]string{"Ordering", "time", "min EE (bits/mJ)"}, rows))
	fmt.Fprintf(&b, "\nDensity-first execution-delay change vs random: %+.1f%% (paper: -10.3%% at 1000 nodes).\n",
		-values["speedup"]*100)
	return &Result{Text: b.String(), Values: values}, nil
}

// runAblationCapture compares the paper's destroy-both collision rule with
// the 6 dB capture effect in the packet simulator.
func runAblationCapture(cfg Config) (*Result, error) {
	devices := cfg.scaled(2000)
	p := cfg.params(nil)
	netw, err := core.Build(core.Scenario{
		Devices: devices, Gateways: 3, RadiusM: 5000, Seed: cfg.Seed, Params: &p,
	})
	if err != nil {
		return nil, err
	}
	a, err := netw.Allocate("eflora", alloc.Options{})
	if err != nil {
		return nil, err
	}
	values := make(map[string]float64)
	var rows [][]string
	sc := scratchPool.Get().(*sim.Scratch)
	defer scratchPool.Put(sc)
	for _, capture := range []bool{false, true} {
		res, err := netw.Simulate(a, sim.Config{
			PacketsPerDevice: cfg.PacketsPerDevice,
			Seed:             cfg.Seed + 5,
			Capture:          capture,
			Scratch:          sc,
		})
		if err != nil {
			return nil, err
		}
		label, key := "destroy-both (paper)", "paper"
		if capture {
			label, key = "6 dB capture", "capture"
		}
		meanPRR := stats.Mean(res.PRR)
		minEE := stats.Percentile(res.EE, 0.02)
		values[key+"_meanPRR"] = meanPRR
		values[key+"_minEE"] = minEE
		values[key+"_collisions"] = float64(res.CollisionLosses)
		rows = append(rows, []string{
			label, fmt.Sprintf("%.3f", meanPRR), bpmJ(minEE),
			fmt.Sprintf("%d", res.CollisionLosses),
		})
	}
	var b strings.Builder
	b.WriteString(plot.Table([]string{"Collision rule", "mean PRR", "min EE (bits/mJ)", "losses"}, rows))
	b.WriteString("\nCapture rescues the stronger packet of each overlap; the paper's rule is\nconservative (both packets lost regardless of power difference).\n")
	return &Result{Text: b.String(), Values: values}, nil
}

// runAblationInterSF quantifies the imperfect-orthogonality extension the
// paper defers to future work: co-channel transmissions with different SFs
// leak into the SNR with 16 dB rejection.
func runAblationInterSF(cfg Config) (*Result, error) {
	devices := cfg.scaled(2000)
	values := make(map[string]float64)
	var rows [][]string
	for _, rej := range []float64{0, 16} {
		p := cfg.params(nil)
		p.InterSFRejectionDB = rej
		ts, err := runMethodTrials(cfg, devices, 3, &p, "eflora", alloc.Options{})
		if err != nil {
			return nil, err
		}
		label, key := "orthogonal SFs (paper)", "orthogonal"
		if rej > 0 {
			label, key = "16 dB inter-SF rejection", "intersf"
		}
		values[key+"_minEE"] = ts.MinEE
		rows = append(rows, []string{label, bpmJ(ts.MinEE)})
	}
	var b strings.Builder
	b.WriteString(plot.Table([]string{"Orthogonality model", "min EE (bits/mJ)"}, rows))
	if values["orthogonal_minEE"] > 0 {
		loss := 1 - values["intersf_minEE"]/values["orthogonal_minEE"]
		values["intersf_loss"] = loss
		fmt.Fprintf(&b, "\nImperfect orthogonality changes the allocated min EE by %+.1f%%.\n", -loss*100)
	}
	return &Result{Text: b.String(), Values: values}, nil
}

// runAblationConfirmed compares the ETX-scaled lifetime approximation with
// a true confirmed-traffic simulation, where retransmission load feeds
// back into collisions.
func runAblationConfirmed(cfg Config) (*Result, error) {
	devices := cfg.scaled(1000)
	p := cfg.params(nil)
	netw, err := core.Build(core.Scenario{
		Devices: devices, Gateways: 3, RadiusM: 5000, Seed: cfg.Seed, Params: &p,
	})
	if err != nil {
		return nil, err
	}
	a, err := netw.Allocate("eflora", alloc.Options{})
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{PacketsPerDevice: cfg.PacketsPerDevice, Seed: cfg.Seed + 3}
	un, err := netw.Simulate(a, simCfg)
	if err != nil {
		return nil, err
	}
	co, err := sim.RunConfirmed(netw.Net, netw.Params, a, sim.ConfirmedConfig{Config: simCfg})
	if err != nil {
		return nil, err
	}
	battery := experimentBattery()
	ltApprox, err := lifetime.Compute(un.RetxAvgPowerW, battery, lifetime.DefaultDeadFraction)
	if err != nil {
		return nil, err
	}
	ltTrue, err := lifetime.Compute(co.RetxAvgPowerW, battery, lifetime.DefaultDeadFraction)
	if err != nil {
		return nil, err
	}
	values := map[string]float64{
		"approx_days":     lifetime.Days(ltApprox.NetworkS),
		"confirmed_days":  lifetime.Days(ltTrue.NetworkS),
		"retransmissions": float64(co.Retransmissions),
		"abandoned":       float64(co.Abandoned),
	}
	var b strings.Builder
	b.WriteString(plot.Table(
		[]string{"Lifetime model", "10%-dead lifetime"},
		[][]string{
			{"ETX approximation (unconfirmed sim x 1/PRR)", fmt.Sprintf("%.1f days", values["approx_days"])},
			{"true confirmed traffic (with load feedback)", fmt.Sprintf("%.1f days", values["confirmed_days"])},
		}))
	fmt.Fprintf(&b, "\nConfirmed run: %d retransmissions, %d packets abandoned.\n",
		co.Retransmissions, co.Abandoned)
	b.WriteString("The ETX approximation ignores that retransmissions add collisions; the true\nconfirmed lifetime is therefore the same or shorter.\n")
	return &Result{Text: b.String(), Values: values}, nil
}
