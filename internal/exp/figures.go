package exp

import (
	"fmt"
	"strings"
	"time"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/lifetime"
	"eflora/internal/model"
	"eflora/internal/plot"
	"eflora/internal/rng"
	"eflora/internal/stats"
)

// runFig4 compares the per-device energy-efficiency distributions of the
// three methods on 3000-device deployments with three and five gateways.
func runFig4(cfg Config) (*Result, error) {
	devices := cfg.scaled(3000)
	values := make(map[string]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "Deployment: %d end devices (paper: 3000), %d trials.\n\n", devices, cfg.Trials)
	gwSweep := []int{3, 5}
	var tasks []trialTask
	for _, gw := range gwSweep {
		tasks = append(tasks, methodTasks(devices, gw, nil)...)
	}
	grid, err := runTrialGrid(cfg, tasks)
	if err != nil {
		return nil, err
	}
	for gi, gw := range gwSweep {
		header := []string{"Method", "min EE (bits/mJ)", "mean EE (bits/mJ)", "max EE (bits/mJ)", "std", "Jain"}
		var rows [][]string
		for mi, m := range evalMethods {
			ts := grid[gi*len(evalMethods)+mi]
			s := stats.Summarize(ts.AllEE)
			rows = append(rows, []string{
				methodLabel(m), bpmJ(ts.MinEE), bpmJ(s.Mean), bpmJ(s.Max),
				bpmJ(s.Std), fmt.Sprintf("%.3f", ts.Jain),
			})
			prefix := fmt.Sprintf("%s_%dgw", m, gw)
			values[prefix+"_min"] = ts.MinEE
			values[prefix+"_mean"] = s.Mean
			values[prefix+"_std"] = s.Std
			values[prefix+"_jain"] = ts.Jain
		}
		fmt.Fprintf(&b, "%d gateways:\n%s\n", gw, plot.Table(header, rows))
	}
	b.WriteString("Paper shape: EF-LoRa's distribution is far narrower (higher Jain, lower std)\n" +
		"with similar mean to RS-LoRa; legacy and RS-LoRa fluctuate strongly, and more\n" +
		"gateways raise the mean but worsen the baselines' spread.\n")
	return &Result{Text: b.String(), Values: values}, nil
}

// runFig5 renders the empirical CDFs of the per-device energy efficiency
// for the same runs as Fig. 4.
func runFig5(cfg Config) (*Result, error) {
	devices := cfg.scaled(3000)
	values := make(map[string]float64)
	var b strings.Builder
	gwSweep := []int{3, 5}
	var tasks []trialTask
	for _, gw := range gwSweep {
		tasks = append(tasks, methodTasks(devices, gw, nil)...)
	}
	grid, err := runTrialGrid(cfg, tasks)
	if err != nil {
		return nil, err
	}
	for gi, gw := range gwSweep {
		var c plot.Chart
		c.Title = fmt.Sprintf("CDF of energy efficiency, %d gateways (%d devices)", gw, devices)
		c.XLabel = "EE (bits/mJ)"
		c.YLabel = "P(X<=x)"
		for mi, m := range evalMethods {
			ts := grid[gi*len(evalMethods)+mi]
			ee := make([]float64, len(ts.AllEE))
			for i, v := range ts.AllEE {
				ee[i] = core.BitsPerMilliJoule(v)
			}
			ecdf := stats.NewECDF(ee)
			xs, ps := ecdf.Points(40)
			c.Add(fmt.Sprintf("%s-%dGW", methodLabel(m), gw), xs, ps)
			spread := ecdf.Quantile(0.95) - ecdf.Quantile(0.05)
			values[fmt.Sprintf("%s_%dgw_spread", m, gw)] = spread
			values[fmt.Sprintf("%s_%dgw_median", m, gw)] = ecdf.Quantile(0.5)
			values[fmt.Sprintf("%s_%dgw_p05", m, gw)] = ecdf.Quantile(0.05)
		}
		b.WriteString(c.Render())
		b.WriteByte('\n')
	}
	b.WriteString("Paper shape: EF-LoRa's CDF rises within a narrow EE interval; RS-LoRa and\n" +
		"legacy LoRa spread over a wide range with a low-EE tail.\n")
	return &Result{Text: b.String(), Values: values}, nil
}

// runFig6 sweeps the number of end devices at three gateways and plots
// the minimum energy efficiency per method.
func runFig6(cfg Config) (*Result, error) {
	sweep := []int{500, 1000, 2000, 3000, 4000, 5000}
	values := make(map[string]float64)
	var c plot.Chart
	c.Title = fmt.Sprintf("Minimum energy efficiency vs end devices (3 gateways, scale %.2f)", cfg.Scale)
	c.XLabel = "end devices (paper scale)"
	c.YLabel = "min EE (bits/mJ)"
	c.YStartZero = true
	var b strings.Builder
	header := []string{"End devices"}
	for _, m := range evalMethods {
		header = append(header, methodLabel(m)+" (bits/mJ)")
	}
	var rows [][]string
	series := make(map[string][]float64, len(evalMethods))
	var tasks []trialTask
	for _, nPaper := range sweep {
		tasks = append(tasks, methodTasks(cfg.scaled(nPaper), 3, nil)...)
	}
	grid, err := runTrialGrid(cfg, tasks)
	if err != nil {
		return nil, err
	}
	for ni, nPaper := range sweep {
		row := []string{fmt.Sprintf("%d", nPaper)}
		for mi, m := range evalMethods {
			ts := grid[ni*len(evalMethods)+mi]
			series[m] = append(series[m], core.BitsPerMilliJoule(ts.MinEE))
			row = append(row, bpmJ(ts.MinEE))
			values[fmt.Sprintf("%s_n%d", m, nPaper)] = ts.MinEE
		}
		rows = append(rows, row)
	}
	xs := make([]float64, len(sweep))
	for i, n := range sweep {
		xs[i] = float64(n)
	}
	for _, m := range evalMethods {
		c.Add(methodLabel(m), xs, series[m])
	}
	b.WriteString(plot.Table(header, rows))
	b.WriteByte('\n')
	b.WriteString(c.Render())
	b.WriteString("\nPaper shape: min EE decreases with more devices; EF-LoRa leads, with the\n" +
		"largest margin at small N, narrowing toward 5000 devices.\n")
	return &Result{Text: b.String(), Values: values}, nil
}

// runFig7 sweeps the number of gateways at 3000 devices.
func runFig7(cfg Config) (*Result, error) {
	devices := cfg.scaled(3000)
	sweep := []int{1, 3, 5, 9, 15, 20, 25}
	values := make(map[string]float64)
	var c plot.Chart
	c.Title = fmt.Sprintf("Minimum energy efficiency vs gateways (%d devices)", devices)
	c.XLabel = "gateways"
	c.YLabel = "min EE (bits/mJ)"
	c.YStartZero = true
	header := []string{"Gateways"}
	for _, m := range evalMethods {
		header = append(header, methodLabel(m)+" (bits/mJ)")
	}
	var rows [][]string
	series := make(map[string][]float64, len(evalMethods))
	var tasks []trialTask
	for _, gw := range sweep {
		tasks = append(tasks, methodTasks(devices, gw, nil)...)
	}
	grid, err := runTrialGrid(cfg, tasks)
	if err != nil {
		return nil, err
	}
	for gi, gw := range sweep {
		row := []string{fmt.Sprintf("%d", gw)}
		for mi, m := range evalMethods {
			ts := grid[gi*len(evalMethods)+mi]
			series[m] = append(series[m], core.BitsPerMilliJoule(ts.MinEE))
			row = append(row, bpmJ(ts.MinEE))
			values[fmt.Sprintf("%s_g%d", m, gw)] = ts.MinEE
		}
		rows = append(rows, row)
	}
	xs := make([]float64, len(sweep))
	for i, g := range sweep {
		xs[i] = float64(g)
	}
	for _, m := range evalMethods {
		c.Add(methodLabel(m), xs, series[m])
	}
	var b strings.Builder
	b.WriteString(plot.Table(header, rows))
	b.WriteByte('\n')
	b.WriteString(c.Render())
	b.WriteString("\nPaper shape: EF-LoRa's advantage grows with gateway count; beyond a density\n" +
		"knee the minimum EE stops improving (all devices already on small SFs).\n")
	return &Result{Text: b.String(), Values: values}, nil
}

// runFig8 compares the 10%-dead network lifetime across deployments of
// decreasing density, for all three methods.
func runFig8(cfg Config) (*Result, error) {
	type deployment struct {
		gw, dev int
	}
	deployments := []deployment{
		{3, 5000}, {3, 3000}, {3, 1000}, {5, 1000}, {9, 1000},
	}
	values := make(map[string]float64)
	var labels []string
	perMethod := make(map[string][]float64, len(evalMethods))
	var tasks []trialTask
	for _, d := range deployments {
		tasks = append(tasks, methodTasks(cfg.scaled(d.dev), d.gw, nil)...)
	}
	grid, err := runTrialGrid(cfg, tasks)
	if err != nil {
		return nil, err
	}
	for di, d := range deployments {
		labels = append(labels, fmt.Sprintf("%dGW/%dED", d.gw, d.dev))
		for mi, m := range evalMethods {
			ts := grid[di*len(evalMethods)+mi]
			days := lifetime.Days(ts.LifetimeS)
			perMethod[m] = append(perMethod[m], days)
			values[fmt.Sprintf("%s_%dgw_%ded_days", m, d.gw, d.dev)] = days
		}
	}
	var b strings.Builder
	header := append([]string{"Deployment"}, methodLabel(evalMethods[0]), methodLabel(evalMethods[1]), methodLabel(evalMethods[2]))
	var rows [][]string
	for i, l := range labels {
		rows = append(rows, []string{
			l,
			fmt.Sprintf("%.0f d", perMethod["legacy"][i]),
			fmt.Sprintf("%.0f d", perMethod["rslora"][i]),
			fmt.Sprintf("%.0f d", perMethod["eflora"][i]),
		})
	}
	b.WriteString(plot.Table(header, rows))
	b.WriteByte('\n')
	for _, m := range evalMethods {
		b.WriteString(plot.Bar(fmt.Sprintf("Network lifetime (days), %s", methodLabel(m)), labels, perMethod[m], 40))
		b.WriteByte('\n')
	}
	// Headline gains: EF-LoRa vs baselines averaged over deployments.
	var gainRS, gainLegacy float64
	for i := range labels {
		gainRS += perMethod["eflora"][i]/perMethod["rslora"][i] - 1
		gainLegacy += perMethod["eflora"][i]/perMethod["legacy"][i] - 1
	}
	gainRS /= float64(len(labels))
	gainLegacy /= float64(len(labels))
	values["gain_vs_rslora"] = gainRS
	values["gain_vs_legacy"] = gainLegacy
	fmt.Fprintf(&b, "EF-LoRa lifetime gain: %.1f%% vs RS-LoRa, %.1f%% vs legacy (paper: 15.3%% and 41.5%% on average).\n",
		gainRS*100, gainLegacy*100)
	return &Result{Text: b.String(), Values: values}, nil
}

// runFig9 decomposes EF-LoRa's gains: sensitivity to the path-loss
// exponent beta and the cost of disabling transmission-power allocation.
func runFig9(cfg Config) (*Result, error) {
	devices := cfg.scaled(3000)
	const gw = 3
	// The beta sweep runs on a 2.5 km disc: under the literal power-law
	// attenuation (Eq. 9) with the paper's 14 dBm power cap, beta = 3.0
	// shrinks the SF12 range below 3 km, so the paper's 5 km disc would
	// simply lose coverage rather than reveal allocation sensitivity.
	const radius = 2500
	values := make(map[string]float64)

	betaRuns := []struct {
		label string
		beta  float64
	}{
		{"less path loss (beta 2.4)", 2.4},
		{"paper default (beta 2.7)", 2.7},
		{"more path loss (beta 3.0)", 3.0},
	}
	var b strings.Builder
	var rows [][]string
	var tasks []trialTask
	for _, br := range betaRuns {
		p := model.DefaultParams()
		p.Environments = []model.PathLoss{model.LoSPathLoss(903e6, br.beta)}
		tasks = append(tasks, trialTask{devices: devices, gateways: gw, radiusM: radius, params: &p, method: "eflora"})
	}
	// TP ablation and baselines at the default beta.
	for _, m := range []string{"eflora-fixed", "legacy", "rslora"} {
		tasks = append(tasks, trialTask{devices: devices, gateways: gw, radiusM: radius, method: m})
	}
	grid, err := runTrialGrid(cfg, tasks)
	if err != nil {
		return nil, err
	}
	for bi, br := range betaRuns {
		ts := grid[bi]
		rows = append(rows, []string{br.label, bpmJ(ts.MinEE)})
		values[fmt.Sprintf("eflora_beta%.1f", br.beta)] = ts.MinEE
	}
	tsFixed := grid[len(betaRuns)]
	rows = append(rows, []string{"EF-LoRa fixed max TP", bpmJ(tsFixed.MinEE)})
	values["eflora_fixed_tp"] = tsFixed.MinEE
	for i, m := range []string{"legacy", "rslora"} {
		ts := grid[len(betaRuns)+1+i]
		rows = append(rows, []string{methodLabel(m), bpmJ(ts.MinEE)})
		values[m] = ts.MinEE
	}
	b.WriteString(plot.Table([]string{"Configuration", "min EE (bits/mJ)"}, rows))
	base := values["eflora_beta2.7"]
	if base > 0 {
		values["fixed_tp_loss"] = 1 - values["eflora_fixed_tp"]/base
		fmt.Fprintf(&b, "\nDisabling TP allocation changes min EE by %.1f%% (paper: -26%%).\n",
			-values["fixed_tp_loss"]*100)
	}
	b.WriteString("Paper shape: EF-LoRa stays ahead of both baselines under all beta settings,\n" +
		"and fixed-TP EF-LoRa still beats legacy LoRa.\n")
	return &Result{Text: b.String(), Values: values}, nil
}

// runFig10 measures the wall-clock convergence time of the EF-LoRa greedy
// across network sizes and gateway counts.
func runFig10(cfg Config) (*Result, error) {
	devSweep := []int{1000, 2000, 3000}
	gwSweep := []int{3, 6, 9}
	values := make(map[string]float64)
	header := []string{"End devices \\ Gateways"}
	for _, g := range gwSweep {
		header = append(header, fmt.Sprintf("%d GW", g))
	}
	var rows [][]string
	var xs, ys []float64
	for _, nPaper := range devSweep {
		n := cfg.scaled(nPaper)
		row := []string{fmt.Sprintf("%d (%d scaled)", nPaper, n)}
		for _, g := range gwSweep {
			netw, err := core.Build(core.Scenario{Devices: n, Gateways: g, RadiusM: 5000, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			ef := alloc.NewEFLoRa(alloc.Options{})
			//eflora:nondeterminism-ok Fig. 10 measures wall-clock convergence time; the timing feeds only the rendered table, never an allocation
			start := time.Now()
			_, rep, err := ef.AllocateWithReport(netw.Net, netw.Params, rng.New(cfg.Seed))
			if err != nil {
				return nil, err
			}
			//eflora:nondeterminism-ok Fig. 10 measures wall-clock convergence time; the timing feeds only the rendered table, never an allocation
			elapsed := time.Since(start)
			_ = rep
			row = append(row, fmt.Sprintf("%.2fs", elapsed.Seconds()))
			values[fmt.Sprintf("t_n%d_g%d", nPaper, g)] = elapsed.Seconds()
			xs = append(xs, float64(n*g))
			ys = append(ys, elapsed.Seconds())
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString(plot.Table(header, rows))
	var c plot.Chart
	c.Title = "Convergence time vs problem size (devices x gateways)"
	c.XLabel = "N x G"
	c.YLabel = "seconds"
	c.YStartZero = true
	c.Add("EF-LoRa greedy", xs, ys)
	b.WriteByte('\n')
	b.WriteString(c.Render())
	b.WriteString("\nPaper shape: convergence time grows near-linearly in both the number of end\n" +
		"devices and the number of gateways.\n")
	return &Result{Text: b.String(), Values: values}, nil
}
