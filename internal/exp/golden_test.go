package exp

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"eflora/internal/golden"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenExperiments pins small-scale experiment outputs — the full
// rendered text and every headline value, floats at bit precision — to
// digests in testdata/. A hot-path refactor that changes results (not
// just speed) anywhere in the build → allocate → simulate → aggregate
// pipeline fails here, at Parallelism 1 and 0 alike.
func TestGoldenExperiments(t *testing.T) {
	cfg := Config{Scale: 0.02, Trials: 2, PacketsPerDevice: 10, Seed: 3}
	var out strings.Builder
	for _, id := range []string{"table1", "fig5"} {
		var digests []string
		for _, par := range []int{1, 0} {
			c := cfg
			c.Parallelism = par
			res, err := Run(id, c)
			if err != nil {
				t.Fatalf("%s parallelism=%d: %v", id, par, err)
			}
			digests = append(digests, golden.Digest(res.Text, golden.Map(res.Values)))
		}
		if digests[0] != digests[1] {
			t.Errorf("%s: Parallelism=1 digest %s != Parallelism=0 digest %s", id, digests[0], digests[1])
		}
		fmt.Fprintf(&out, "%s %s\n", id, digests[0])
	}
	golden.Check(t, "testdata/golden_experiments.txt", out.String(), *update)
}
