package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"eflora/internal/alloc"
	"eflora/internal/core"
	"eflora/internal/model"
	"eflora/internal/rng"
	"eflora/internal/stats"
)

// TournamentConfig scales the allocator tournament: every selected
// strategy runs over every scenario size, on identical deployments, and
// the analytical model scores the results. Unlike the figure drivers the
// tournament times the allocators themselves, so cells execute
// sequentially — wall-clock numbers are not contaminated by sibling
// allocations competing for cores.
type TournamentConfig struct {
	// Sizes are the device counts of the scenario grid (default 200,
	// 500, 1000).
	Sizes []int
	// Gateways per scenario (default 3).
	Gateways int
	// RadiusM is the deployment disc radius (default 5000).
	RadiusM float64
	// Trials averages each cell over independent topologies (default 3).
	Trials int
	// Seed drives deployment placement and allocator randomness; all
	// strategies see identical deployments per (size, trial).
	Seed uint64
	// Parallelism is handed to each allocator's Options (0 = NumCPU).
	// Metrics are bit-identical at any value; wall-clock obviously not.
	Parallelism int
	// Strategies selects registry keys or aliases (empty = every
	// registered strategy).
	Strategies []string
	// Params overrides the network parameters (nil = paper defaults).
	Params *model.Params
}

func (c TournamentConfig) withDefaults() TournamentConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{200, 500, 1000}
	}
	if c.Gateways <= 0 {
		c.Gateways = 3
	}
	if c.RadiusM <= 0 {
		c.RadiusM = 5000
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	return c
}

// TournamentCell is one (strategy, size) grid cell aggregated over trials.
type TournamentCell struct {
	// Strategy is the registry key; Devices the scenario size.
	Strategy string
	Devices  int
	// Trials actually run (0 when skipped).
	Trials int
	// MinEE, MeanEE are trial-averaged analytical energy efficiencies
	// (bits/J); Jain the trial-averaged fairness index.
	MinEE, MeanEE, Jain float64
	// WallClock is the mean per-trial allocation time.
	WallClock time.Duration
	// Skipped marks strategies whose MaxDevices ceiling excludes the
	// size; SkipReason says why.
	Skipped    bool
	SkipReason string
}

// Tournament is a completed run.
type Tournament struct {
	// Gateways and Trials echo the configuration.
	Gateways, Trials int
	// Cells holds the grid in (size-major, registry-order) sequence.
	Cells []TournamentCell
}

// RunTournament executes the fairness-vs-wall-clock grid. Quality metrics
// (MinEE, MeanEE, Jain) are deterministic for a given config; WallClock
// is diagnostic only.
func RunTournament(cfg TournamentConfig) (*Tournament, error) {
	cfg = cfg.withDefaults()
	strategies, err := selectStrategies(cfg.Strategies)
	if err != nil {
		return nil, err
	}
	for _, n := range cfg.Sizes {
		if n <= 0 {
			return nil, fmt.Errorf("exp: tournament size %d out of range", n)
		}
	}
	t := &Tournament{Gateways: cfg.Gateways, Trials: cfg.Trials}
	for _, size := range cfg.Sizes {
		cells := make([]TournamentCell, len(strategies))
		for si, s := range strategies {
			cells[si] = TournamentCell{Strategy: s.Key, Devices: size}
			if s.MaxDevices > 0 && size > s.MaxDevices {
				cells[si].Skipped = true
				cells[si].SkipReason = fmt.Sprintf("size %d exceeds strategy ceiling %d", size, s.MaxDevices)
			}
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + uint64(trial)*1000003 + uint64(size)*31
			netw, err := core.Build(core.Scenario{
				Devices:  size,
				Gateways: cfg.Gateways,
				RadiusM:  cfg.RadiusM,
				Seed:     seed,
				Params:   cfg.Params,
			})
			if err != nil {
				return nil, err
			}
			for si, s := range strategies {
				if cells[si].Skipped {
					continue
				}
				al := s.New(alloc.Options{Parallelism: cfg.Parallelism})
				//eflora:nondeterminism-ok wall-clock diagnostic; quality metrics below are seed-deterministic
				start := time.Now()
				a, err := al.Allocate(netw.Net, netw.Params, rng.New(seed+7))
				//eflora:nondeterminism-ok wall-clock diagnostic only
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("exp: tournament %s n=%d: %w", s.Key, size, err)
				}
				ev, err := netw.Evaluate(a)
				if err != nil {
					return nil, fmt.Errorf("exp: tournament %s n=%d: %w", s.Key, size, err)
				}
				c := &cells[si]
				c.Trials++
				c.MinEE += ev.MinEE
				c.MeanEE += ev.MeanEE
				c.Jain += ev.Jain
				c.WallClock += elapsed
			}
		}
		for si := range cells {
			if c := &cells[si]; c.Trials > 0 {
				tf := float64(c.Trials)
				c.MinEE /= tf
				c.MeanEE /= tf
				c.Jain /= tf
				c.WallClock /= time.Duration(c.Trials)
			}
		}
		t.Cells = append(t.Cells, cells...)
	}
	return t, nil
}

// selectStrategies resolves the requested keys (empty = all) in registry
// order, rejecting duplicates after alias resolution.
func selectStrategies(keys []string) ([]alloc.Strategy, error) {
	all := alloc.Strategies()
	if len(keys) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		s, err := alloc.StrategyByKey(k)
		if err != nil {
			return nil, fmt.Errorf("exp: %w", err)
		}
		if want[s.Key] {
			return nil, fmt.Errorf("exp: strategy %q selected twice", s.Key)
		}
		want[s.Key] = true
	}
	out := make([]alloc.Strategy, 0, len(keys))
	for _, s := range all {
		if want[s.Key] {
			out = append(out, s)
		}
	}
	return out, nil
}

// Render formats the tournament as one table per scenario size, ranked by
// min-EE (skipped strategies last), with wall clocks alongside — the
// fairness-vs-time trade the harness exists to expose.
func (t *Tournament) Render() string {
	var b strings.Builder
	for _, size := range t.sizes() {
		cells := t.cellsFor(size)
		sort.SliceStable(cells, func(i, j int) bool {
			if cells[i].Skipped != cells[j].Skipped {
				return !cells[i].Skipped
			}
			return cells[i].MinEE > cells[j].MinEE
		})
		fmt.Fprintf(&b, "n=%d devices, %d gateways, %d trials\n", size, t.Gateways, t.Trials)
		fmt.Fprintf(&b, "  %-12s %12s %12s %8s %12s\n", "strategy", "min-EE", "mean-EE", "Jain", "wall-clock")
		fmt.Fprintf(&b, "  %-12s %12s %12s %8s %12s\n", "", "(bits/mJ)", "(bits/mJ)", "", "")
		for _, c := range cells {
			if c.Skipped {
				fmt.Fprintf(&b, "  %-12s %s\n", c.Strategy, "skipped: "+c.SkipReason)
				continue
			}
			fmt.Fprintf(&b, "  %-12s %12s %12s %8.4f %12s\n",
				c.Strategy, bpmJ(c.MinEE), bpmJ(c.MeanEE), c.Jain, c.WallClock.Round(time.Millisecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Values flattens headline numbers for tests and EXPERIMENTS.md, keyed
// "<strategy>/n=<size>/<metric>".
func (t *Tournament) Values() map[string]float64 {
	v := make(map[string]float64, len(t.Cells)*2)
	for _, c := range t.Cells {
		if c.Skipped {
			continue
		}
		prefix := fmt.Sprintf("%s/n=%d/", c.Strategy, c.Devices)
		v[prefix+"minEE"] = c.MinEE
		v[prefix+"jain"] = c.Jain
	}
	return v
}

// sizes lists the distinct scenario sizes in first-seen order.
func (t *Tournament) sizes() []int {
	var out []int
	seen := map[int]bool{}
	for _, c := range t.Cells {
		if !seen[c.Devices] {
			seen[c.Devices] = true
			out = append(out, c.Devices)
		}
	}
	return out
}

// cellsFor copies the cells of one size (so Render's re-ranking never
// mutates the canonical grid order).
func (t *Tournament) cellsFor(size int) []TournamentCell {
	var out []TournamentCell
	for _, c := range t.Cells {
		if c.Devices == size {
			out = append(out, c)
		}
	}
	return out
}

// JainOfMinEE is a convenience for tests: Jain's index across the
// per-strategy min-EE column of one size.
func (t *Tournament) JainOfMinEE(size int) float64 {
	var ee []float64
	for _, c := range t.cellsFor(size) {
		if !c.Skipped {
			ee = append(ee, c.MinEE)
		}
	}
	return stats.JainIndex(ee)
}
