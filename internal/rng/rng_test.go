package rng

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	// splitmix64 seeding must avoid the all-zero xoshiro state.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a stuck all-zero stream")
	}
}

func TestFloat64Range01(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-n/10) > 0.05*n/10 {
			t.Errorf("Intn(10) value %d count = %d, want ~%d", v, c, n/10)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestRayleighPowerGainUnitMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.RayleighPowerGain()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("Rayleigh power gain mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*math.Max(mean, 1) {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(23)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// Child stream should not be identical to the continued parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split child matched parent %d/100 times", same)
	}
}

func TestFloat64RangeBounds(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		v := r.Float64Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Float64Range(-3,7) = %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.ExpFloat64()
	}
	_ = sink
}
