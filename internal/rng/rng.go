// Package rng provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256**) plus the distributions the simulator and
// deployment generators need: uniform, exponential, normal, Poisson and
// Rayleigh-fading power gains.
//
// Every stochastic component in this repository takes an explicit *RNG so
// experiments are exactly reproducible from a single seed, with no global
// state shared between concurrently running simulations.
package rng

import "math"

// RNG is a xoshiro256** generator. It is not safe for concurrent use; give
// each goroutine its own instance via Split.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from a single 64-bit seed via splitmix64, which
// guarantees a well-mixed non-zero internal state for any seed (including 0).
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// splitmix64 advances the given state and returns the next output; it is the
// recommended seeding procedure for the xoshiro family.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator from the current stream. Use
// this to hand deterministic sub-streams to parallel workers.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill;
	// modulo bias at n << 2^64 is negligible for simulation purposes, but
	// we reject the biased tail anyway to keep the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64Range returns a uniform float64 in [lo, hi).
func (r *RNG) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// ExpFloat64 returns an exponentially distributed value with rate 1 (mean
// 1), via inverse-transform sampling.
func (r *RNG) ExpFloat64() float64 {
	// 1-Float64() is in (0, 1], avoiding log(0).
	return -math.Log(1 - r.Float64())
}

// RayleighPowerGain returns a power gain |g|^2 under Rayleigh fading with
// unit mean power, i.e. an Exp(1) variate (the paper models g ~ exp(1)).
func (r *RNG) RayleighPowerGain() float64 {
	return r.ExpFloat64()
}

// RayleighPowerGains fills dst with independent Rayleigh-fading power
// gains, consuming exactly len(dst) draws. It is bit-identical to
// calling RayleighPowerGain once per element — the batch schedule
// builders use it to fade a whole window in one pass without changing
// the random stream.
func (r *RNG) RayleighPowerGains(dst []float64) {
	for i := range dst {
		dst[i] = -math.Log(1 - float64(r.Uint64()>>11)/(1<<53))
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean. For
// small means it uses Knuth's product method; for large means a normal
// approximation with continuity correction, which is ample for the
// traffic-arrival use in this repository.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
	if n < 0 {
		return 0
	}
	return n
}

// Shuffle permutes the integers [0, n) uniformly (Fisher–Yates) and calls
// swap for each exchange.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
