package engine

import "eflora/internal/lora"

// Transmission is one packet on the air, as produced by an event source.
// Tok is the driver-scoped token later Done verdicts carry; received
// power is per gateway and therefore not part of the transmission — the
// driver combines TpMW with its gain and fading model at each gateway.
type Transmission struct {
	Tok    int
	Dev    int
	Ch     int
	SF     lora.SF
	StartS float64
	EndS   float64
	TpMW   float64
}

// Source yields a transmission schedule window by window, so drivers can
// hold O(active window) transmissions instead of materializing the whole
// schedule. Implementations must yield in ascending (StartS, Dev) order
// with consecutive Tok values — the contract that lets a windowed driver
// reproduce a batch replay bit-for-bit.
type Source interface {
	// NextWindow appends every remaining transmission with StartS <
	// untilS to dst (a caller-owned reused buffer) and returns the
	// extended slice, plus whether transmissions remain at or beyond
	// untilS. Passing +Inf drains the source.
	NextWindow(untilS float64, dst []Transmission) ([]Transmission, bool)
}
