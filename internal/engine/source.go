package engine

// Source yields a transmission schedule window by window in the
// columnar Window form the Batch kernel consumes, so drivers can hold
// O(active window) transmissions instead of materializing the whole
// schedule. Implementations must yield in ascending (StartS, Dev) order
// with consecutive tokens across windows — the contract that lets a
// windowed driver reproduce a batch replay bit-for-bit.
type Source interface {
	// NextWindow resets w (retaining column capacity), sets its token
	// base to the next unconsumed token and fills it with every
	// remaining transmission whose StartS lies below untilS, returning
	// whether transmissions remain at or beyond untilS. Passing +Inf
	// drains the source.
	NextWindow(untilS float64, w *Window) bool
}
