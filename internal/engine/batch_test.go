package engine

import (
	"math"
	"testing"

	"eflora/internal/lora"
	"eflora/internal/rng"
)

// runScalar replays one event stream through the scalar API, applying
// the same verdict mapping the batch drivers use (failures become Done
// entries), and returns outcomes keyed by token plus the counters.
func runScalar(cfg Config, w *Window, rxMW []float64, cuts []float64, acks [][2]float64) (map[int]Done, Counters) {
	var g Gateway
	g.Reset(cfg)
	for _, a := range acks {
		g.AddAckWindow(a[0], a[1])
	}
	out := map[int]Done{}
	var done []Done
	i := 0
	for _, cut := range cuts {
		for ; i < w.Len() && w.StartS[i] < cut; i++ {
			done = g.FinishUpTo(w.StartS[i], done[:0])
			for _, d := range done {
				out[d.Tok] = d
			}
			tok := w.Tok0 + i
			switch g.Arrive(tok, int(w.Dev[i]), w.SF[i], int(w.Ch[i]), w.StartS[i], w.EndS[i], rxMW[i]) {
			case VerdictNoSignal:
				out[tok] = Done{Tok: tok, Outcome: OutcomeNoSignal}
			case VerdictBlocked, VerdictNoCapacity:
				out[tok] = Done{Tok: tok, Outcome: OutcomeCapacity}
			}
		}
		done = g.FinishUpTo(cut, done[:0])
		for _, d := range done {
			out[d.Tok] = d
		}
	}
	return out, g.Counters
}

// runBatch replays the same stream through Batch, splitting the window
// at the same cuts.
func runBatch(cfg Config, w *Window, rxMW []float64, cuts []float64, acks [][2]float64) (map[int]Done, Counters) {
	var g Gateway
	g.Reset(cfg)
	for _, a := range acks {
		g.AddAckWindow(a[0], a[1])
	}
	out := map[int]Done{}
	var done []Done
	i := 0
	for _, cut := range cuts {
		var sub Window
		sub.Tok0 = w.Tok0 + i
		lo := i
		for ; i < w.Len() && w.StartS[i] < cut; i++ {
		}
		sub.Dev, sub.SF, sub.Ch = w.Dev[lo:i], w.SF[lo:i], w.Ch[lo:i]
		sub.StartS, sub.EndS = w.StartS[lo:i], w.EndS[lo:i]
		done = g.Batch(&sub, rxMW[lo:i], cut, done[:0])
		for _, d := range done {
			out[d.Tok] = d
		}
	}
	return out, g.Counters
}

// diffStreams runs one stream through both paths at the given cuts and
// fails on any outcome or counter divergence.
func diffStreams(t *testing.T, cfg Config, w *Window, rxMW []float64, cuts []float64, acks [][2]float64) {
	t.Helper()
	wantOut, wantCtr := runScalar(cfg, w, rxMW, cuts, acks)
	gotOut, gotCtr := runBatch(cfg, w, rxMW, cuts, acks)
	if gotCtr != wantCtr {
		t.Errorf("counters diverge: batch %+v, scalar %+v", gotCtr, wantCtr)
	}
	if len(gotOut) != len(wantOut) {
		t.Errorf("verdict count diverges: batch %d, scalar %d", len(gotOut), len(wantOut))
	}
	for tok, want := range wantOut {
		got, ok := gotOut[tok]
		if !ok {
			t.Errorf("tok %d: scalar %+v, batch emitted nothing", tok, want)
			continue
		}
		if got != want {
			t.Errorf("tok %d: batch %+v, scalar %+v", tok, got, want)
		}
	}
}

// randomWindow draws n sorted transmissions over a horizon. Powers span
// the whole interesting range: below sensitivity, the faded band, and
// comfortably decodable, with near-capture ratios in between.
func randomWindow(r *rng.RNG, n, devs, chans int, horizon float64) (*Window, []float64) {
	w := &Window{}
	starts := make([]float64, n)
	for i := range starts {
		starts[i] = r.Float64() * horizon
	}
	// Insertion sort: deterministic and dependency-free for test sizes.
	for i := 1; i < len(starts); i++ {
		for j := i; j > 0 && starts[j] < starts[j-1]; j-- {
			starts[j], starts[j-1] = starts[j-1], starts[j]
		}
	}
	rx := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		sf := lora.SF7 + lora.SF(r.Uint64()%6)
		dur := 0.05 + r.Float64()*2
		w.Append(int(r.Uint64()%uint64(devs)), sf, int(r.Uint64()%uint64(chans)),
			starts[i], starts[i]+dur, 1)
		sens := lora.DBmToMilliwatts(lora.SensitivityDBm(sf))
		rx = append(rx, sens*math.Pow(10, r.Float64()*8-1))
	}
	return w, rx
}

func TestBatchMatchesScalarRandomStreams(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 60; trial++ {
		capture := trial%2 == 0
		halfDuplex := trial%3 == 0
		cfg := testConfig(capture, halfDuplex)
		if trial%5 == 0 {
			cfg.Capacity = 1 // saturate constantly
		}
		n := 2 + int(r.Uint64()%40)
		w, rx := randomWindow(r, n, 1+n/3, 2, 10)
		var acks [][2]float64
		if halfDuplex {
			from := r.Float64() * 10
			acks = append(acks, [2]float64{from, from + r.Float64()*3})
		}
		// Exercise single-call, windowed, and empty-window cut layouts.
		cutSets := [][]float64{
			{math.Inf(1)},
			{2.5, 5, 7.5, math.Inf(1)},
			{1, 1, 4, 4, math.Inf(1)},
		}
		for _, cuts := range cutSets {
			diffStreams(t, cfg, w, rx, cuts, acks)
		}
	}
}

func TestBatchCarryOverCollision(t *testing.T) {
	// A reception locked in window 1 is corrupted by an overlap arriving
	// in window 2: the collision loss must be charged at completion, in
	// window 2, at both paths.
	w := &Window{}
	w.Append(0, lora.SF7, 0, 0.5, 3, 1)
	w.Append(1, lora.SF7, 0, 1.5, 4, 1)
	rx := []float64{strongMW, strongMW}
	diffStreams(t, testConfig(false, false), w, rx, []float64{1, 2, math.Inf(1)}, nil)

	var g Gateway
	g.Reset(testConfig(false, false))
	sub := Window{Tok0: 0, Dev: w.Dev[:1], SF: w.SF[:1], Ch: w.Ch[:1], StartS: w.StartS[:1], EndS: w.EndS[:1]}
	done := g.Batch(&sub, rx[:1], 1, nil)
	if len(done) != 0 || g.Active() != 1 {
		t.Fatalf("window 1: done=%v active=%d, want carry-over", done, g.Active())
	}
	sub = Window{Tok0: 1, Dev: w.Dev[1:], SF: w.SF[1:], Ch: w.Ch[1:], StartS: w.StartS[1:], EndS: w.EndS[1:]}
	done = g.Batch(&sub, rx[1:], math.Inf(1), done[:0])
	if len(done) != 2 {
		t.Fatalf("window 2: done=%v, want both completions", done)
	}
	for _, d := range done {
		if d.Outcome != OutcomeCollided {
			t.Errorf("tok %d outcome = %v, want collided", d.Tok, d.Outcome)
		}
	}
	if g.Counters.CollisionLosses != 2 {
		t.Errorf("collision losses = %d, want 2", g.Counters.CollisionLosses)
	}
}

func TestBatchEmitsFailureVerdicts(t *testing.T) {
	cfg := testConfig(false, true)
	cfg.Capacity = 1
	var g Gateway
	g.Reset(cfg)
	g.AddAckWindow(4, 5)
	w := &Window{}
	w.Append(0, lora.SF7, 0, 0, 1, 1)   // locks, delivered
	w.Append(1, lora.SF7, 1, 0.5, 2, 1) // other channel, capacity drop
	w.Append(2, lora.SF7, 0, 3, 3.5, 1) // below sensitivity
	w.Append(3, lora.SF7, 0, 4.2, 6, 1) // half-duplex blocked
	weak := lora.DBmToMilliwatts(lora.SensitivityDBm(lora.SF7)) / 2
	rx := []float64{strongMW, strongMW, weak, strongMW}
	done := g.Batch(w, rx, math.Inf(1), nil)
	want := map[int]Outcome{0: OutcomeDelivered, 1: OutcomeCapacity, 2: OutcomeNoSignal, 3: OutcomeCapacity}
	if len(done) != len(want) {
		t.Fatalf("done = %+v, want %d verdicts", done, len(want))
	}
	for _, d := range done {
		if d.Outcome != want[d.Tok] {
			t.Errorf("tok %d outcome = %v, want %v", d.Tok, d.Outcome, want[d.Tok])
		}
	}
	ctr := g.Counters
	if ctr.CapacityDrops != 1 || ctr.SensitivityMisses != 1 || ctr.AckBlocked != 1 {
		t.Errorf("counters = %+v, want one capacity drop, one miss, one blocked", ctr)
	}
}

func TestBatchWarmIsAllocationFree(t *testing.T) {
	cfg := testConfig(true, true)
	var g Gateway
	w, rx := randomWindow(rng.New(3), 64, 16, 2, 20)
	done := make([]Done, 0, 128)
	// Warm the pass buffers once.
	g.Reset(cfg)
	done = g.Batch(w, rx, math.Inf(1), done[:0])
	avg := testing.AllocsPerRun(50, func() {
		g.Reset(cfg)
		g.AddAckWindow(1, 2)
		done = g.Batch(w, rx, math.Inf(1), done[:0])
	})
	if avg != 0 {
		t.Errorf("warm Batch allocates %v per window, want 0", avg)
	}
}

func TestArrivePrunesAckWindowsOnEveryPath(t *testing.T) {
	cfg := testConfig(false, true)
	var g Gateway
	g.Reset(cfg)
	// Expired, boundary-equal (w.to == startS) and zero-length windows
	// must all be pruned by a below-sensitivity arrival — the path that
	// used to return before the half-duplex branch ran.
	g.AddAckWindow(1, 2)
	g.AddAckWindow(2, 5)     // boundary: to == startS of the probe below
	g.AddAckWindow(3, 3)     // zero-length, already past
	g.AddAckWindow(6, 7)     // still ahead: must survive
	weak := lora.DBmToMilliwatts(lora.SensitivityDBm(lora.SF7)) / 2
	if v := g.Arrive(0, 0, lora.SF7, 0, 5, 5.5, weak); v != VerdictNoSignal {
		t.Fatalf("verdict = %v, want no-signal", v)
	}
	if n := len(g.ackWins); n != 1 {
		t.Fatalf("ackWins after sensitivity miss = %d, want 1 (only the future window)", n)
	}
	// The surviving window still blocks.
	if v := g.Arrive(1, 1, lora.SF7, 0, 6.5, 8, strongMW); v != VerdictBlocked {
		t.Fatalf("verdict = %v, want blocked", v)
	}
	// A boundary-equal window (to == startS) never blocks: [from, to) is
	// closed on the right before the arrival starts.
	g.Reset(cfg)
	g.AddAckWindow(1, 2)
	if v := g.Arrive(2, 2, lora.SF7, 0, 2, 3, strongMW); v != VerdictLocked {
		t.Fatalf("boundary-equal window blocked: verdict = %v, want locked", v)
	}
	if len(g.ackWins) != 0 {
		t.Fatalf("boundary-equal window not pruned: %d left", len(g.ackWins))
	}
}
