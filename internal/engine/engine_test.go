package engine

import (
	"math"
	"testing"

	"eflora/internal/lora"
)

// testConfig builds a receiver whose thresholds are easy to reason about:
// real per-SF tables, 1e-9 mW noise, capacity 2, 6 dB capture.
func testConfig(capture, halfDuplex bool) Config {
	return Config{
		Capture:    capture,
		CaptureLin: lora.DBToLinear(6),
		Capacity:   2,
		HalfDuplex: halfDuplex,
		NoiseMW:    1e-9,
		Thresholds: NewThresholds(),
	}
}

// strongMW is comfortably above SF7 sensitivity and the SNR cutoff for
// the 1e-9 mW noise floor.
const strongMW = 1e-6

func TestArriveBelowSensitivityIsInvisible(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(false, false))
	weak := lora.DBmToMilliwatts(lora.SensitivityDBm(lora.SF7)) / 2
	if v := g.Arrive(0, 0, lora.SF7, 0, 0, 1, weak); v != VerdictNoSignal {
		t.Fatalf("verdict = %v, want no-signal", v)
	}
	if g.Active() != 0 || g.Counters.SensitivityMisses != 1 {
		t.Fatalf("active=%d misses=%d", g.Active(), g.Counters.SensitivityMisses)
	}
	// An invisible packet collides with nobody.
	if v := g.Arrive(1, 1, lora.SF7, 0, 0.5, 1.5, strongMW); v != VerdictLocked {
		t.Fatalf("verdict = %v, want locked", v)
	}
	done := g.FinishUpTo(math.Inf(1), nil)
	if len(done) != 1 || done[0].Outcome != OutcomeDelivered {
		t.Fatalf("done = %+v, want one delivery", done)
	}
}

func TestOverlapWithoutCaptureDestroysBoth(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(false, false))
	g.Arrive(0, 0, lora.SF7, 0, 0, 1, strongMW)
	g.Arrive(1, 1, lora.SF7, 0, 0.5, 1.5, 100*strongMW)
	done := g.FinishUpTo(math.Inf(1), nil)
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	for _, d := range done {
		if d.Outcome != OutcomeCollided {
			t.Errorf("tok %d outcome = %v, want collided", d.Tok, d.Outcome)
		}
	}
	if g.Counters.CollisionLosses != 2 {
		t.Errorf("collision losses = %d, want 2", g.Counters.CollisionLosses)
	}
}

func TestCaptureRescuesTheStrongerPacket(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(true, false))
	g.Arrive(0, 0, lora.SF7, 0, 0, 1, strongMW)
	g.Arrive(1, 1, lora.SF7, 0, 0.5, 1.5, 100*strongMW) // +20 dB: captures
	outcomes := map[int]Outcome{}
	for _, d := range g.FinishUpTo(math.Inf(1), nil) {
		outcomes[d.Tok] = d.Outcome
	}
	if outcomes[0] != OutcomeCollided || outcomes[1] != OutcomeDelivered {
		t.Fatalf("outcomes = %v, want tok0 collided, tok1 delivered", outcomes)
	}
}

func TestDifferentSFOrChannelDoNotCollide(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(false, false))
	g.Arrive(0, 0, lora.SF7, 0, 0, 1, strongMW)
	g.Arrive(1, 1, lora.SF8, 0, 0.1, 1.1, strongMW) // other SF
	g.Arrive(2, 2, lora.SF7, 1, 0.2, 1.2, strongMW) // other channel — capacity full now
	for _, d := range g.FinishUpTo(math.Inf(1), nil) {
		if d.Outcome != OutcomeDelivered {
			t.Errorf("tok %d outcome = %v, want delivered", d.Tok, d.Outcome)
		}
	}
}

func TestCapacityRejectsButStillCorrupts(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(false, false))
	g.Arrive(0, 0, lora.SF9, 1, 0, 1, strongMW)
	g.Arrive(1, 1, lora.SF8, 0, 0, 1, strongMW)
	// Third concurrent arrival: no demodulator left, but its RF energy
	// still destroys the same-SF same-channel reception it overlaps.
	if v := g.Arrive(2, 2, lora.SF8, 0, 0.5, 1.5, strongMW); v != VerdictNoCapacity {
		t.Fatalf("verdict = %v, want no-capacity", v)
	}
	if g.Counters.CapacityDrops != 1 {
		t.Fatalf("capacity drops = %d", g.Counters.CapacityDrops)
	}
	outcomes := map[int]Outcome{}
	for _, d := range g.FinishUpTo(math.Inf(1), nil) {
		outcomes[d.Tok] = d.Outcome
	}
	if outcomes[0] != OutcomeDelivered || outcomes[1] != OutcomeCollided {
		t.Fatalf("outcomes = %v, want tok0 delivered, tok1 collided", outcomes)
	}
}

func TestHalfDuplexBlocksDuringAckWindow(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(false, true))
	g.AddAckWindow(1, 2)
	if v := g.Arrive(0, 0, lora.SF7, 0, 1.5, 2.5, strongMW); v != VerdictBlocked {
		t.Fatalf("verdict = %v, want blocked", v)
	}
	if g.Counters.AckBlocked != 1 {
		t.Fatalf("ack blocked = %d", g.Counters.AckBlocked)
	}
	// After the window closes it is pruned and arrivals lock again.
	if v := g.Arrive(1, 1, lora.SF7, 0, 3, 4, strongMW); v != VerdictLocked {
		t.Fatalf("verdict = %v, want locked", v)
	}
	// Without HalfDuplex the same window is ignored.
	g.Reset(testConfig(false, false))
	g.AddAckWindow(1, 2)
	if v := g.Arrive(2, 2, lora.SF7, 0, 1.5, 2.5, strongMW); v != VerdictLocked {
		t.Fatalf("half-duplex off: verdict = %v, want locked", v)
	}
}

func TestFinishUpToCompletesInOrderAndKeepsInFlight(t *testing.T) {
	var g Gateway
	cfg := testConfig(false, false)
	cfg.Capacity = 8
	g.Reset(cfg)
	g.Arrive(0, 0, lora.SF7, 0, 0, 1, strongMW)
	g.Arrive(1, 1, lora.SF7, 1, 0.1, 2, strongMW)
	g.Arrive(2, 2, lora.SF7, 2, 0.2, 0.8, strongMW)
	done := g.FinishUpTo(1, nil)
	if len(done) != 2 || done[0].Tok != 0 || done[1].Tok != 2 {
		t.Fatalf("done = %+v, want toks 0,2 in arrival order", done)
	}
	if g.Active() != 1 {
		t.Fatalf("active = %d, want 1 in flight", g.Active())
	}
	done = g.FinishUpTo(math.Inf(1), done[:0])
	if len(done) != 1 || done[0].Tok != 1 {
		t.Fatalf("final done = %+v, want tok 1", done)
	}
}

func TestCompleteRemovesSingleReception(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(false, false))
	g.Arrive(7, 0, lora.SF7, 0, 0, 1, strongMW)
	if _, ok := g.Complete(3); ok {
		t.Fatal("Complete(3) found a reception that never locked")
	}
	d, ok := g.Complete(7)
	if !ok || d.Tok != 7 || d.Outcome != OutcomeDelivered || d.RxMW != strongMW {
		t.Fatalf("Complete(7) = %+v, %v", d, ok)
	}
	if _, ok := g.Complete(7); ok {
		t.Fatal("Complete(7) twice")
	}
}

func TestSNRDecidesFadedVersusDelivered(t *testing.T) {
	var g Gateway
	g.Reset(testConfig(false, false))
	// SF12 sensitivity is well below its SNR threshold over this noise
	// floor: pick a power that clears sensitivity but not the SNR cutoff.
	sens := lora.DBmToMilliwatts(lora.SensitivityDBm(lora.SF12))
	snrCut := 1e-9 * lora.DBToLinear(lora.SNRThresholdDB(lora.SF12))
	if sens >= snrCut {
		t.Skip("threshold tables changed; faded band empty")
	}
	mid := math.Sqrt(sens * snrCut)
	g.Arrive(0, 0, lora.SF12, 0, 0, 1, mid)
	done := g.FinishUpTo(math.Inf(1), nil)
	if len(done) != 1 || done[0].Outcome != OutcomeFaded {
		t.Fatalf("done = %+v, want faded", done)
	}
}

func TestResetClearsStateAndIsAllocationFreeWarm(t *testing.T) {
	var g Gateway
	cfg := testConfig(false, true)
	g.Reset(cfg)
	g.Arrive(0, 0, lora.SF7, 0, 0, 1, strongMW)
	g.AddAckWindow(1, 2)
	g.Reset(cfg)
	if g.Active() != 0 || g.Counters != (Counters{}) {
		t.Fatalf("Reset left state: active=%d counters=%+v", g.Active(), g.Counters)
	}
	done := make([]Done, 0, 8)
	avg := testing.AllocsPerRun(100, func() {
		g.Reset(cfg)
		g.Arrive(0, 0, lora.SF7, 0, 0, 1, strongMW)
		g.Arrive(1, 1, lora.SF7, 0, 0.5, 1.5, strongMW)
		done = g.FinishUpTo(math.Inf(1), done[:0])
	})
	if avg != 0 {
		t.Errorf("warm engine allocates %v per event round, want 0", avg)
	}
}

func TestOutcomeStringAndPinnedValues(t *testing.T) {
	// The numeric values are baked into golden digests.
	if OutcomeNoSignal != 0 || OutcomeCapacity != 1 || OutcomeFaded != 2 ||
		OutcomeCollided != 3 || OutcomeDelivered != 4 {
		t.Fatal("Outcome values renumbered; golden digests depend on them")
	}
	want := map[Outcome]string{
		OutcomeNoSignal:  "no-signal",
		OutcomeCapacity:  "capacity",
		OutcomeFaded:     "faded",
		OutcomeCollided:  "collided",
		OutcomeDelivered: "delivered",
		Outcome(99):      "outcome(99)",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}
