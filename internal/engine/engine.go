// Package engine implements the gateway receiver state machine shared by
// every consumer of the reception physics: the batch unconfirmed
// simulator (sim.Run), the confirmed MAC event loop (sim.RunConfirmed)
// and the live serving path (ingest.Frontend). One implementation of
//
//   - per-SF sensitivity and SNR decoding thresholds,
//   - same-SF same-channel collision with the optional capture effect,
//   - the SX1301 demodulator-capacity limit,
//   - half-duplex ACK blocking windows, and
//   - per-outcome accounting
//
// replaces the three hand-mirrored copies the repository used to carry,
// so a physics fix lands everywhere at once.
//
// A Gateway is driven by arrival and completion events in nondecreasing
// time order. Drivers own everything above the receiver: schedules,
// retransmission policy, fading draws, de-duplication across gateways.
// The engine owns everything a single receiver decides: whether an
// arrival locks a demodulator, which overlapping receptions it corrupts
// and what verdict each reception earns when it completes.
//
// All methods are allocation-free after buffer warm-up (the arena slices
// retain their high-water capacity across Reset), so the engine can sit
// inside zero-alloc hot loops. A Gateway is not safe for concurrent use;
// give each goroutine its own instance.
package engine

import (
	"fmt"
	"math"

	"eflora/internal/lora"
)

// Outcome classifies what happened to one transmitted packet at a
// gateway, ordered by reporting precedence (higher wins when a packet
// meets different fates at different gateways). The numeric values are
// baked into golden digests and must not be renumbered.
type Outcome uint8

const (
	// OutcomeNoSignal: below sensitivity.
	OutcomeNoSignal Outcome = iota
	// OutcomeCapacity: heard, but no free demodulator (or, for confirmed
	// traffic, the gateway was deaf while transmitting an ACK).
	OutcomeCapacity
	// OutcomeFaded: locked, but the fading draw left the SNR below the
	// decoding threshold.
	OutcomeFaded
	// OutcomeCollided: destroyed by a same-SF same-channel overlap.
	OutcomeCollided
	// OutcomeDelivered: decoded.
	OutcomeDelivered
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeCollided:
		return "collided"
	case OutcomeFaded:
		return "faded"
	case OutcomeCapacity:
		return "capacity"
	case OutcomeNoSignal:
		return "no-signal"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Verdict is the immediate result of an Arrive call.
type Verdict uint8

const (
	// VerdictLocked: the reception occupies a demodulator; its Outcome
	// arrives later via FinishUpTo or Complete.
	VerdictLocked Verdict = iota
	// VerdictNoSignal: below sensitivity; invisible to this gateway (no
	// demodulator occupied, collides with nobody).
	VerdictNoSignal
	// VerdictBlocked: the gateway's own downlink was in the air
	// (half-duplex mode only).
	VerdictBlocked
	// VerdictNoCapacity: every demodulator was busy.
	VerdictNoCapacity
)

// Thresholds caches the per-SF receiver cutoffs in linear units, indexed
// by sf - lora.SF7, so the per-reception hot path does no dB conversions.
type Thresholds struct {
	// SensitivityMW is the receiver sensitivity in milliwatts.
	SensitivityMW [6]float64
	// SNRLin is the decoding SNR threshold as a linear power ratio.
	SNRLin [6]float64
}

// NewThresholds derives the tables from the lora package's per-SF figures.
func NewThresholds() Thresholds {
	var t Thresholds
	for _, s := range lora.SFs() {
		t.SensitivityMW[s-lora.SF7] = lora.DBmToMilliwatts(lora.SensitivityDBm(s))
		t.SNRLin[s-lora.SF7] = lora.DBToLinear(lora.SNRThresholdDB(s))
	}
	return t
}

// Config parameterizes one gateway receiver.
type Config struct {
	// Capture enables the capture-effect variant of the collision rule: a
	// packet at least CaptureLin times stronger than every overlapping
	// same-SF same-channel packet survives. Off = the paper's rule (both
	// packets die regardless of power).
	Capture bool
	// CaptureLin is the linear power advantage needed to capture.
	CaptureLin float64
	// Capacity is the concurrent demodulator-lock limit (SX1301: 8).
	Capacity int
	// HalfDuplex honors ACK windows registered via AddAckWindow: uplinks
	// overlapping the gateway's own downlink are blocked.
	HalfDuplex bool
	// NoiseMW is the receiver noise floor in milliwatts.
	NoiseMW float64
	// Thresholds are the per-SF cutoffs (NewThresholds).
	Thresholds Thresholds
}

// Counters accumulates a gateway's per-outcome accounting across events.
type Counters struct {
	// CollisionLosses counts locked receptions destroyed by same-SF
	// same-channel overlap; CapacityDrops counts arrivals that found no
	// free demodulator; SensitivityMisses counts arrivals below
	// sensitivity; AckBlocked counts arrivals lost to the gateway's own
	// downlink (half-duplex mode only).
	CollisionLosses, CapacityDrops, SensitivityMisses, AckBlocked int
}

// Done is the verdict of one completed (or rejected) reception, keyed by
// the driver-supplied token.
type Done struct {
	// Tok is the token the driver passed to Arrive.
	Tok int
	// Outcome is the reception's fate at this gateway.
	Outcome Outcome
	// RxMW is the received power, so the driver can derive the SNR of a
	// delivered packet without the engine paying for a log10 nobody reads.
	RxMW float64
}

// reception is one locked reception in progress. Entries live inline in
// the gateway's active list — no per-reception heap state — and later
// arrivals mark overlapping entries collided in place.
type reception struct {
	tok      int
	dev      int
	ch       int
	sf       lora.SF
	endS     float64
	rxMW     float64
	collided bool
}

// ackWin is a half-duplex window during which the gateway's downlink is
// in the air and it cannot lock onto uplinks.
type ackWin struct{ from, to float64 }

// Gateway is one receiver's state machine. The zero value is unusable;
// call Reset first. Buffers retain their high-water capacity across
// Reset, so a recycled Gateway runs allocation-free.
type Gateway struct {
	cfg     Config
	active  []reception
	ackWins []ackWin
	// batch holds the Batch kernel's reusable pass buffers (batch.go).
	batch batchState

	// Counters is the running per-outcome accounting since Reset.
	Counters Counters
}

// Reset prepares the gateway for a new event stream: configuration
// replaced, active receptions and ACK windows dropped, counters zeroed.
func (g *Gateway) Reset(cfg Config) {
	g.cfg = cfg
	g.active = g.active[:0]
	g.ackWins = g.ackWins[:0]
	g.Counters = Counters{}
}

// Active reports the number of occupied demodulators.
func (g *Gateway) Active() int { return len(g.active) }

// SNRdB converts a received power to the SNR this gateway decodes at.
func (g *Gateway) SNRdB(rxMW float64) float64 {
	return 10 * math.Log10(rxMW/g.cfg.NoiseMW)
}

// Arrive processes the start of a transmission: sensitivity, the
// collision scan, half-duplex blocking and the capacity check, in that
// order. tok identifies the reception in later Done verdicts; startS and
// endS bound its air time; rxMW is its received power at this gateway.
//
// The collision scan runs before the demodulator-capacity and
// half-duplex checks: a transmission that finds no free demodulator (or
// a gateway deaf from an ACK) is still RF energy on the air and corrupts
// locked receptions all the same — on an SX1301 the lock only selects
// what gets decoded, not what interferes. Collision marks on the
// arriving transmission itself only take effect if it locks.
//
// The caller must present arrivals in nondecreasing start order and run
// FinishUpTo(startS) first so receptions that ended earlier do not
// linger in the overlap scan.
//
//eflora:hotpath
func (g *Gateway) Arrive(tok, dev int, sf lora.SF, ch int, startS, endS, rxMW float64) Verdict {
	if g.cfg.HalfDuplex {
		// Prune finished ACK windows before any early return — a long
		// quiet stretch of below-sensitivity arrivals must not let
		// expired windows accumulate. A pruned window (to <= startS) can
		// never block this or any later arrival, so hoisting the prune
		// above the sensitivity check changes no verdict.
		wins := g.ackWins[:0]
		for _, w := range g.ackWins {
			if w.to > startS {
				wins = append(wins, w)
			}
		}
		g.ackWins = wins
	}
	if rxMW < g.cfg.Thresholds.SensitivityMW[sf-lora.SF7] {
		g.Counters.SensitivityMisses++
		return VerdictNoSignal
	}
	collided := false
	for j := range g.active {
		o := &g.active[j]
		if o.dev == dev || o.sf != sf || o.ch != ch {
			continue
		}
		if g.cfg.Capture {
			switch {
			case rxMW >= g.cfg.CaptureLin*o.rxMW:
				o.collided = true
			case o.rxMW >= g.cfg.CaptureLin*rxMW:
				collided = true
			default:
				collided = true
				o.collided = true
			}
		} else {
			collided = true
			o.collided = true
		}
	}
	if g.cfg.HalfDuplex {
		// Windows were pruned on entry; block the uplink if any remaining
		// downlink overlaps it in time.
		for _, w := range g.ackWins {
			if w.from < endS && startS < w.to {
				g.Counters.AckBlocked++
				return VerdictBlocked
			}
		}
	}
	if len(g.active) >= g.cfg.Capacity {
		g.Counters.CapacityDrops++
		return VerdictNoCapacity
	}
	g.active = append(g.active, reception{
		tok: tok, dev: dev, ch: ch, sf: sf, endS: endS, rxMW: rxMW, collided: collided,
	})
	return VerdictLocked
}

// FinishUpTo completes every locked reception ending at or before cut,
// appending one Done per completion to dst (a caller-owned reused buffer)
// and returning the extended slice. Relative order of the receptions
// still in flight is preserved.
//
//eflora:hotpath
func (g *Gateway) FinishUpTo(cut float64, dst []Done) []Done {
	keep := g.active[:0]
	for _, rx := range g.active {
		if rx.endS > cut {
			keep = append(keep, rx)
			continue
		}
		dst = append(dst, g.verdict(rx))
	}
	g.active = keep
	return dst
}

// Complete finishes the single reception identified by tok, removing it
// from the active set (swap-remove). ok is false when tok never locked at
// this gateway (or already completed) — the confirmed driver calls
// Complete unconditionally per gateway at each transmission end.
//
//eflora:hotpath
func (g *Gateway) Complete(tok int) (Done, bool) {
	for i := range g.active {
		if g.active[i].tok != tok {
			continue
		}
		rx := g.active[i]
		last := len(g.active) - 1
		g.active[i] = g.active[last]
		g.active = g.active[:last]
		return g.verdict(rx), true
	}
	return Done{}, false
}

// verdict scores one completed reception and charges the counters.
func (g *Gateway) verdict(rx reception) Done {
	o := OutcomeFaded
	switch {
	case rx.collided:
		g.Counters.CollisionLosses++
		o = OutcomeCollided
	case rx.rxMW/g.cfg.NoiseMW >= g.cfg.Thresholds.SNRLin[rx.sf-lora.SF7]:
		o = OutcomeDelivered
	}
	return Done{Tok: rx.tok, Outcome: o, RxMW: rx.rxMW}
}

// AddAckWindow registers a half-duplex window [from, to) during which
// this gateway's downlink is in the air. Arrivals overlapping an open
// window are blocked when Config.HalfDuplex is set.
func (g *Gateway) AddAckWindow(from, to float64) {
	g.ackWins = append(g.ackWins, ackWin{from: from, to: to})
}
