// Batch is the struct-of-arrays entry point to the receiver state
// machine: one call consumes a whole transmission window laid out in
// parallel columns and produces the same verdicts, counters and
// carry-over state the scalar Arrive/FinishUpTo loop would — bit for
// bit. The scalar API stays for the confirmed and live drivers, whose
// events arrive one at a time; the batch drivers (sim.Run and the
// streaming window loop) trade it for two passes over columns:
//
//  1. a fused sequential sweep in arrival order — sensitivity,
//     half-duplex, the collision scan against the in-flight set and
//     demodulator capacity, the per-event order of the scalar API
//     inlined over the columns with one flag byte per entry — and
//  2. a token-order SNR-verdict pass emitting Done entries.
//
// The verdict pass cannot fuse into the sweep: a reception's collision
// mark can arrive from any later transmission that overlaps it, so its
// outcome is only final once the sweep has moved past its end time.
//
// The sweep's in-flight set is bounded by the demodulator capacity
// (locking is refused beyond it, and the carry-over from the previous
// window obeyed the same bound), so the per-arrival scan is a handful
// of comparisons over one small cache-resident slice. An earlier
// revision of this kernel partitioned the scan into per-(SF, channel)
// buckets; under the capacity bound the partitioning saved no
// comparisons worth the scattered chain-table traffic it introduced,
// and the fused direct sweep measured ~1.5x faster end to end. Revisit
// bucketing only if a receiver model ever drops the capacity bound.
// See DESIGN.md "Batch receiver kernel".
package engine

import (
	"eflora/internal/lora"
	"eflora/internal/slab"
)

// Window is one transmission window in struct-of-arrays form: column i
// across all slices describes one transmission, carrying token Tok0+i.
// Entries must be sorted by (StartS, Dev) — the same nondecreasing
// arrival order the scalar API demands. TpMW is the transmit power the
// driver combines with its per-gateway gain and fading model to build
// the received-power column Batch consumes; the kernel itself never
// reads it.
type Window struct {
	// Tok0 is the token of column 0; column i carries token Tok0 + i.
	Tok0   int
	Dev    []int32
	SF     []lora.SF
	Ch     []int32
	StartS []float64
	EndS   []float64
	TpMW   []float64
}

// Len reports the number of transmissions in the window.
func (w *Window) Len() int { return len(w.StartS) }

// Reset empties the window (retaining column capacity) and sets the
// token base for the next fill.
func (w *Window) Reset(tok0 int) {
	w.Tok0 = tok0
	w.Dev = w.Dev[:0]
	w.SF = w.SF[:0]
	w.Ch = w.Ch[:0]
	w.StartS = w.StartS[:0]
	w.EndS = w.EndS[:0]
	w.TpMW = w.TpMW[:0]
}

// Append adds one transmission to every column.
//
//eflora:hotpath
func (w *Window) Append(dev int, sf lora.SF, ch int, startS, endS, tpMW float64) {
	w.Dev = append(w.Dev, int32(dev))
	w.SF = append(w.SF, sf)
	w.Ch = append(w.Ch, int32(ch))
	w.StartS = append(w.StartS, startS)
	w.EndS = append(w.EndS, endS)
	w.TpMW = append(w.TpMW, tpMW)
}

// Grow ensures every column can hold n entries without reallocating,
// so a warmed window fills allocation-free.
func (w *Window) Grow(n int) {
	w.Dev = slab.Grow(w.Dev, n)[:len(w.Dev)]
	w.SF = slab.Grow(w.SF, n)[:len(w.SF)]
	w.Ch = slab.Grow(w.Ch, n)[:len(w.Ch)]
	w.StartS = slab.Grow(w.StartS, n)[:len(w.StartS)]
	w.EndS = slab.Grow(w.EndS, n)[:len(w.EndS)]
	w.TpMW = slab.Grow(w.TpMW, n)[:len(w.TpMW)]
}

// Per-entry resolution flags of the batch passes.
const (
	bfVisible  uint8 = 1 << iota // cleared sensitivity
	bfBlocked                    // lost to the gateway's own downlink
	bfDropped                    // no free demodulator
	bfLocked                     // occupies a demodulator
	bfCollided                   // corrupted by same-SF same-channel overlap
)

// openRx is one in-flight locked reception during the sweep: enough of
// its state to apply the collision rule, plus the cell index (carried
// active below nc, window entry nc+i) to mark it collided in place.
type openRx struct {
	end  float64
	rx   float64
	dev  int32
	ch   int32
	cell int32
	sf   lora.SF
}

// batchState holds the kernel's reusable pass buffers. They live on the
// Gateway so a warmed receiver runs Batch allocation-free; Reset leaves
// them alone (contents are rebuilt from scratch every call).
type batchState struct {
	flags []uint8  // per-window-entry resolution flags
	open  []openRx // in-flight locked receptions during the sweep
}

// markCollided marks the reception in cell c (carried active below nc,
// window entry at nc+i) corrupted.
func (g *Gateway) markCollided(c int32, nc int) {
	if int(c) < nc {
		g.active[c].collided = true
	} else {
		g.batch.flags[int(c)-nc] |= bfCollided
	}
}

// Batch runs the whole window through the receiver: every column entry
// arrives in order, every reception (carried or new) ending at or
// before cut completes, and one Done per verdict is appended to dst (a
// caller-owned reused buffer). rxMW is the received-power column at
// this gateway, parallel to the window. Unlike the scalar API, Batch
// also emits a Done for arrivals that never lock — OutcomeNoSignal
// below sensitivity, OutcomeCapacity for demodulator exhaustion and
// half-duplex blocking (the mapping the drivers applied by hand around
// Arrive) — so batch drivers consume a single verdict stream. Done
// order is carried completions first, then window entries in token
// order; all consumers key on Tok.
//
// Every StartS must lie below cut, and successive calls must not
// overlap in time: receptions with EndS > cut carry over to the next
// call exactly like the scalar active list.
//
//eflora:hotpath
func (g *Gateway) Batch(w *Window, rxMW []float64, cut float64, dst []Done) []Done {
	n := w.Len()
	b := &g.batch
	nc := len(g.active)

	flags := slab.GrowZero(b.flags, n)
	b.flags = flags
	sens := &g.cfg.Thresholds.SensitivityMW

	// Pass 1: fused sequential sweep in arrival order. open tracks the
	// locked receptions still in flight (the scalar active list), seeded
	// from the carry-over; every visible arrival prunes expired entries
	// — the FinishUpTo(start) the scalar drivers run per event, minus
	// the verdicts, which wait for pass 2 — then runs the scalar
	// Arrive's checks in the scalar order. The capacity bound caps
	// len(open), so the Grow below covers every append in the loop and a
	// warmed gateway sweeps allocation-free.
	open := slab.Grow(b.open, nc+g.cfg.Capacity)[:0]
	for i := range g.active {
		rx := &g.active[i]
		open = append(open, openRx{end: rx.endS, rx: rx.rxMW, dev: int32(rx.dev),
			ch: int32(rx.ch), cell: int32(i), sf: rx.sf})
	}
	for i := 0; i < n; i++ {
		start := w.StartS[i]
		if g.cfg.HalfDuplex {
			// Prune finished ACK windows at every arrival — including
			// below-sensitivity ones — exactly like the scalar Arrive.
			wins := g.ackWins[:0]
			for _, aw := range g.ackWins {
				if aw.to > start {
					wins = append(wins, aw)
				}
			}
			g.ackWins = wins
		}
		pi := rxMW[i]
		sf := w.SF[i]
		if pi < sens[sf-lora.SF7] {
			g.Counters.SensitivityMisses++
			continue
		}
		flags[i] = bfVisible
		live := open[:0]
		for _, a := range open {
			if a.end > start {
				live = append(live, a)
			}
		}
		open = live
		// Collision scan before the half-duplex and capacity checks: a
		// transmission that never locks is still RF energy on the air
		// and corrupts locked receptions all the same; collision marks
		// on the arrival itself only take effect if it locks.
		dev := w.Dev[i]
		ch := w.Ch[i]
		collided := false
		for j := range open {
			a := &open[j]
			if a.dev == dev || a.sf != sf || a.ch != ch {
				continue
			}
			if g.cfg.Capture {
				switch {
				case pi >= g.cfg.CaptureLin*a.rx:
					g.markCollided(a.cell, nc)
				case a.rx >= g.cfg.CaptureLin*pi:
					collided = true
				default:
					collided = true
					g.markCollided(a.cell, nc)
				}
			} else {
				collided = true
				g.markCollided(a.cell, nc)
			}
		}
		if g.cfg.HalfDuplex {
			blocked := false
			for _, aw := range g.ackWins {
				if aw.from < w.EndS[i] && start < aw.to {
					blocked = true
					break
				}
			}
			if blocked {
				flags[i] |= bfBlocked
				g.Counters.AckBlocked++
				continue
			}
		}
		if len(open) >= g.cfg.Capacity {
			flags[i] |= bfDropped
			g.Counters.CapacityDrops++
			continue
		}
		if collided {
			flags[i] |= bfCollided
		}
		flags[i] |= bfLocked
		open = append(open, openRx{end: w.EndS[i], rx: pi, dev: dev,
			ch: ch, cell: int32(nc + i), sf: sf})
	}
	b.open = open[:0]

	// Pass 2: verdicts. Carried receptions ending at or before cut
	// complete first (collision marks from pass 1 included), then every
	// window entry resolves in token order: failure Done, carry-over
	// into the active list, or completion verdict.
	keepAct := g.active[:0]
	for _, rx := range g.active {
		if rx.endS > cut {
			keepAct = append(keepAct, rx)
			continue
		}
		dst = append(dst, g.verdict(rx))
	}
	g.active = keepAct
	snr := &g.cfg.Thresholds.SNRLin
	for i := 0; i < n; i++ {
		f := flags[i]
		tok := w.Tok0 + i
		switch {
		case f&bfVisible == 0:
			dst = append(dst, Done{Tok: tok, Outcome: OutcomeNoSignal})
		case f&(bfBlocked|bfDropped) != 0:
			dst = append(dst, Done{Tok: tok, Outcome: OutcomeCapacity})
		case w.EndS[i] > cut:
			g.active = append(g.active, reception{
				tok: tok, dev: int(w.Dev[i]), ch: int(w.Ch[i]), sf: w.SF[i],
				endS: w.EndS[i], rxMW: rxMW[i], collided: f&bfCollided != 0,
			})
		default:
			o := OutcomeFaded
			switch {
			case f&bfCollided != 0:
				g.Counters.CollisionLosses++
				o = OutcomeCollided
			case rxMW[i]/g.cfg.NoiseMW >= snr[w.SF[i]-lora.SF7]:
				o = OutcomeDelivered
			}
			dst = append(dst, Done{Tok: tok, Outcome: o, RxMW: rxMW[i]})
		}
	}
	return dst
}
