package engine

import (
	"math"
	"testing"

	"eflora/internal/lora"
)

// fuzzStream decodes the fuzzer's byte string into a sorted event
// stream: every 5-byte group is one transmission (device, SF, channel,
// start delta, duration, power exponent around sensitivity), so any
// input is a valid stream and coverage guides the fuzzer straight at
// the interesting overlap structure.
func fuzzStream(data []byte) (*Window, []float64) {
	w := &Window{}
	rx := make([]float64, 0, len(data)/5)
	start := 0.0
	for len(data) >= 5 {
		dev := int(data[0] & 15)
		sf := lora.SF7 + lora.SF(data[1]%6)
		ch := int(data[1] >> 7)
		start += float64(data[2]) / 32
		dur := 0.01 + float64(data[3])/64
		w.Append(dev, sf, ch, start, start+dur, 1)
		sens := lora.DBmToMilliwatts(lora.SensitivityDBm(sf))
		rx = append(rx, sens*math.Pow(10, (float64(data[4])-32)/32))
		data = data[5:]
	}
	return w, rx
}

// FuzzEngineBatchVsScalar feeds the same event stream through the
// scalar Arrive/FinishUpTo loop and the Batch kernel, split at the same
// window cuts, and requires digest equality on per-token outcomes and
// counters — the differential pin that keeps the two code paths
// bit-identical.
func FuzzEngineBatchVsScalar(f *testing.F) {
	// Capture on/off over a plain overlap pair.
	pair := []byte{
		0, 0, 8, 64, 60,
		1, 0, 4, 64, 40,
	}
	f.Add(false, false, uint8(8), uint64(1), pair)
	f.Add(true, false, uint8(8), uint64(1), pair)
	// Capacity saturation: four concurrent arrivals into one demodulator.
	f.Add(false, false, uint8(1), uint64(2), []byte{
		0, 0, 8, 128, 60,
		1, 1, 0, 128, 60,
		2, 2, 0, 128, 60,
		3, 3, 0, 128, 60,
	})
	// Half-duplex blocking with arrivals straddling the ACK window.
	f.Add(false, true, uint8(8), uint64(3), []byte{
		0, 0, 8, 200, 60,
		1, 0, 8, 200, 60,
		2, 0, 8, 200, 60,
	})
	// Below-sensitivity mix under capture.
	f.Add(true, true, uint8(2), uint64(4), []byte{
		0, 0, 8, 64, 10,
		1, 0, 2, 64, 90,
		2, 0, 2, 64, 31,
	})
	f.Fuzz(func(t *testing.T, capture, halfDuplex bool, capacity uint8, cutSeed uint64, data []byte) {
		w, rx := fuzzStream(data)
		cfg := testConfig(capture, halfDuplex)
		cfg.Capacity = 1 + int(capacity%8)
		// Window cuts march through the stream with a seed-derived
		// stride, exercising single-call and many-window layouts alike.
		stride := 0.5 + float64(cutSeed%16)/2
		var cuts []float64
		if n := w.Len(); n > 0 {
			for c := stride; c < w.StartS[n-1]+stride; c += stride {
				cuts = append(cuts, c)
			}
		}
		cuts = append(cuts, math.Inf(1))
		var acks [][2]float64
		if halfDuplex {
			from := float64(cutSeed % 7)
			acks = append(acks, [2]float64{from, from + 1.5}, [2]float64{from + 3, from + 3})
		}
		diffStreams(t, cfg, w, rx, cuts, acks)
	})
}
