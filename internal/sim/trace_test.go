package sim

import (
	"bytes"
	"strings"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

func TestTraceCountsMatchResult(t *testing.T) {
	r := rng.New(81)
	net := &model.Network{
		Devices:  geo.UniformDisc(40, 3000, r),
		Gateways: geo.GridGateways(2, 3000),
	}
	p := model.DefaultParams()
	gains := model.Gains(net, p)
	a := model.NewAllocation(40, p.Plan)
	for i := range a.SF {
		sf, ok := model.MinFeasibleSF(gains, i, 14)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	res, err := Run(net, p, a, Config{PacketsPerDevice: 50, Seed: 82, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	totalAttempts := 0
	for _, at := range res.Attempts {
		totalAttempts += at
	}
	if len(res.Trace) != totalAttempts {
		t.Fatalf("trace length %d != total attempts %d", len(res.Trace), totalAttempts)
	}
	counts := OutcomeCounts(res.Trace)
	totalDelivered := 0
	for _, d := range res.Delivered {
		totalDelivered += d
	}
	if counts[OutcomeDelivered] != totalDelivered {
		t.Errorf("trace delivered %d != result %d", counts[OutcomeDelivered], totalDelivered)
	}
	// Delivered records carry a decoding gateway; others carry -1.
	for _, rec := range res.Trace {
		if rec.Outcome == OutcomeDelivered && (rec.Gateway < 0 || rec.Gateway >= 2) {
			t.Fatalf("delivered record without gateway: %+v", rec)
		}
		if rec.Outcome != OutcomeDelivered && rec.Gateway != -1 {
			t.Fatalf("undelivered record with gateway: %+v", rec)
		}
		if rec.Device < 0 || rec.Device >= 40 || rec.StartS < 0 {
			t.Fatalf("malformed record: %+v", rec)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	net, p, a := lonePair()
	res, err := Run(net, p, a, Config{PacketsPerDevice: 10, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace recorded without Config.Trace")
	}
}

func TestTraceOutOfRangeIsNoSignal(t *testing.T) {
	net := &model.Network{
		Devices:  []geo.Point{{X: 90000, Y: 0}},
		Gateways: []geo.Point{{}},
	}
	p := model.DefaultParams()
	a := model.NewAllocation(1, p.Plan)
	a.SF[0] = lora.SF12
	a.TPdBm[0] = 14
	res, err := Run(net, p, a, Config{PacketsPerDevice: 5, Seed: 84, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Trace {
		if rec.Outcome != OutcomeNoSignal {
			t.Fatalf("out-of-range packet outcome = %v", rec.Outcome)
		}
	}
}

func TestWriteTraceCSV(t *testing.T) {
	records := []PacketRecord{
		{Device: 0, StartS: 1.5, Outcome: OutcomeDelivered, Gateway: 1},
		{Device: 3, StartS: 2.25, Outcome: OutcomeCollided, Gateway: -1},
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "device,start_s,outcome,gateway" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1.500,delivered,1" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "3,2.250,collided,-1" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeDelivered: "delivered",
		OutcomeCollided:  "collided",
		OutcomeFaded:     "faded",
		OutcomeCapacity:  "capacity",
		OutcomeNoSignal:  "no-signal",
		Outcome(99):      "outcome(99)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", uint8(o), got, want)
		}
	}
}
