package sim

import (
	"math"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
	"eflora/internal/stats"
)

// TestModelSimConformance cross-validates the two implementations of the
// paper's physics: for every device, the analytical PRR of
// model.Evaluator (Eq. 10-13) must sit inside a confidence band around
// the packet simulator's empirical PRR estimated over many independent
// seeds. The band is the multi-seed CI half-width (z·σ̂/√seeds from
// stats.Summarize) plus a fixed modeling slack for the terms where the
// analysis is deliberately approximate (the shared-collision weighting,
// the capacity factor's independence assumption). A bug in either
// implementation — a wrong fading exponent, a dropped capacity term, a
// mis-counted collision window — moves one side and trips the bound.
func TestModelSimConformance(t *testing.T) {
	const (
		devices = 60
		gw      = 2
		seeds   = 16
		packets = 25
		// z99 is the two-sided 99% normal quantile for the per-device CI.
		z99 = 2.58
		// modelSlack absorbs the analytical approximations; calibrated on
		// the scenario below where the worst per-device gap sits near 0.05
		// (see the log line). Doubling it would let real physics bugs hide;
		// halving it flakes on honest Monte-Carlo noise.
		modelSlack = 0.08
	)
	r := rng.New(4242)
	net := &model.Network{
		Devices:  geo.UniformDisc(devices, 4000, r),
		Gateways: geo.GridGateways(gw, 4000),
	}
	p := model.DefaultParams()
	gains := model.Gains(net, p)
	a := model.NewAllocation(devices, p.Plan)
	tpLevels := p.Plan.TxPowerLevels()
	for i := 0; i < devices; i++ {
		sf, ok := model.MinFeasibleSF(gains, i, p.Plan.MaxTxPowerDBm)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = tpLevels[2+i%(len(tpLevels)-2)]
		a.Channel[i] = i % p.Plan.NumChannels()
	}

	ev, err := model.NewEvaluator(net, p, a, model.ModeExact)
	if err != nil {
		t.Fatal(err)
	}

	// perSeed[i] collects device i's empirical PRR from each seed.
	perSeed := make([][]float64, devices)
	for i := range perSeed {
		perSeed[i] = make([]float64, 0, seeds)
	}
	sc := new(Scratch)
	for s := 0; s < seeds; s++ {
		res, err := Run(net, p, a, Config{
			PacketsPerDevice: packets,
			Seed:             1000 + uint64(s)*7919,
			Scratch:          sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < devices; i++ {
			perSeed[i] = append(perSeed[i], res.PRR[i])
		}
	}

	var worst, worstCI float64
	worstDev := -1
	var devSum float64
	for i := 0; i < devices; i++ {
		sum := stats.Summarize(perSeed[i])
		ci := z99 * sum.Std / math.Sqrt(seeds)
		gap := math.Abs(ev.PRR(i) - sum.Mean)
		devSum += gap
		if gap > worst {
			worst, worstCI, worstDev = gap, ci, i
		}
		if gap > modelSlack+ci {
			t.Errorf("device %d (SF%d ch%d): model PRR %.4f vs sim %.4f ± %.4f (gap %.4f, slack %.2f)",
				i, a.SF[i], a.Channel[i], ev.PRR(i), sum.Mean, ci, gap, modelSlack)
		}
	}
	t.Logf("worst per-device gap %.4f (device %d, CI ±%.4f); mean gap %.4f",
		worst, worstDev, worstCI, devSum/devices)

	// The network-mean PRR averages out per-device modeling error, so it
	// must agree much tighter than any single device.
	var modelMean float64
	simAll := make([]float64, 0, devices*seeds)
	for i := 0; i < devices; i++ {
		modelMean += ev.PRR(i)
		simAll = append(simAll, perSeed[i]...)
	}
	modelMean /= devices
	simMean := stats.Mean(simAll)
	if gap := math.Abs(modelMean - simMean); gap > 0.02 {
		t.Errorf("network-mean PRR: model %.4f vs sim %.4f (gap %.4f > 0.02)", modelMean, simMean, gap)
	}
}
