package sim

import (
	"math"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"eflora/internal/geo"
	"eflora/internal/lora"
	"eflora/internal/model"
	"eflora/internal/rng"
)

// parallelScenario builds a deployment with enough gateways for the
// per-gateway fan-out to actually interleave.
func parallelScenario(t *testing.T) (*model.Network, model.Params, model.Allocation) {
	t.Helper()
	r := rng.New(21)
	net := &model.Network{
		Devices:  geo.UniformDisc(80, 3000, r),
		Gateways: geo.GridGateways(6, 3000),
	}
	p := model.DefaultParams()
	p.PacketIntervalS = 30
	a := model.NewAllocation(80, p.Plan)
	gains := model.Gains(net, p)
	for i := range a.SF {
		sf, ok := model.MinFeasibleSF(gains, i, 14)
		if !ok {
			sf = lora.MaxSF
		}
		a.SF[i] = sf
		a.TPdBm[i] = 14
		a.Channel[i] = i % 8
	}
	return net, p, a
}

func runsEqual(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if want.CollisionLosses != got.CollisionLosses ||
		want.CapacityDrops != got.CapacityDrops ||
		want.SensitivityMisses != got.SensitivityMisses {
		t.Fatalf("%s: counters diverged: (%d,%d,%d) vs (%d,%d,%d)", label,
			want.CollisionLosses, want.CapacityDrops, want.SensitivityMisses,
			got.CollisionLosses, got.CapacityDrops, got.SensitivityMisses)
	}
	for i := range want.Delivered {
		if want.Delivered[i] != got.Delivered[i] {
			t.Fatalf("%s: Delivered[%d] = %d vs %d", label, i, want.Delivered[i], got.Delivered[i])
		}
		if want.EE[i] != got.EE[i] {
			t.Fatalf("%s: EE[%d] = %v vs %v (must be bit-identical)", label, i, want.EE[i], got.EE[i])
		}
		if want.RetxAvgPowerW[i] != got.RetxAvgPowerW[i] {
			t.Fatalf("%s: RetxAvgPowerW[%d] diverged", label, i)
		}
	}
	if len(want.Trace) != len(got.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(want.Trace), len(got.Trace))
	}
	for i := range want.Trace {
		if want.Trace[i] != got.Trace[i] {
			t.Fatalf("%s: Trace[%d] = %+v vs %+v", label, i, want.Trace[i], got.Trace[i])
		}
	}
	for i := range want.MaxSNRdB {
		w, g := want.MaxSNRdB[i], got.MaxSNRdB[i]
		if w != g && !(math.IsInf(w, -1) && math.IsInf(g, -1)) {
			t.Fatalf("%s: MaxSNRdB[%d] = %v vs %v", label, i, w, g)
		}
	}
}

func TestRunBitIdenticalAcrossParallelism(t *testing.T) {
	net, p, a := parallelScenario(t)
	cfg := Config{PacketsPerDevice: 30, Seed: 42, Trace: true, MeasureSNR: true}

	cfg.Parallelism = 1
	seq, err := Run(net, p, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.NumCPU(), 0} {
		cfg.Parallelism = workers
		par, err := Run(net, p, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runsEqual(t, seq, par, "parallelism="+strconv.Itoa(workers))
	}
}

func TestRunConcurrentUseIsRaceFree(t *testing.T) {
	// Several goroutines each run the simulator (itself fanning out over
	// gateways) against the same shared network/params/allocation. Under
	// `go test -race` this fails on any unsynchronized shared write.
	net, p, a := parallelScenario(t)
	var wg sync.WaitGroup
	results := make([]*Result, 4)
	errs := make([]error, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(net, p, a, Config{
				PacketsPerDevice: 20, Seed: 42, Parallelism: 4, Trace: true,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < len(results); i++ {
		runsEqual(t, results[0], results[i], "concurrent caller")
	}
}
